package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"crowdtopk/internal/persist"
)

// cmdFsck checks a -data-dir offline: per-session snapshot/WAL health,
// quarantined sessions, and (with -repair) eager truncation of torn WAL
// tails. Exits nonzero when any session is unhealthy so scripts can gate a
// restart on it.
func cmdFsck(args []string) error {
	fs := flag.NewFlagSet("fsck", flag.ExitOnError)
	dataDir := fs.String("data-dir", "", "durable session store directory to check (required)")
	repair := fs.Bool("repair", false, "truncate repairable torn wal tails in place (run against a stopped server)")
	deep := fs.Bool("deep", false, "fully restore each snapshot and replay its wal instead of validating framing only (slow, exhaustive)")
	format := fs.String("format", "text", "output format: text or json")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dataDir == "" {
		return fmt.Errorf("fsck: -data-dir is required")
	}
	switch *format {
	case "text", "json":
	default:
		return fmt.Errorf("fsck: unknown -format %q (want text or json)", *format)
	}

	rep, err := persist.Fsck(*dataDir, persist.FsckOptions{Repair: *repair, Deep: *deep})
	if err != nil {
		return err
	}

	if *format == "json" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	} else {
		renderFsckText(rep)
	}
	if rep.Unhealthy > 0 {
		return fmt.Errorf("fsck: %d of %d sessions unhealthy", rep.Unhealthy, rep.Healthy+rep.Unhealthy)
	}
	return nil
}

func renderFsckText(rep *persist.FsckReport) {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "SESSION\tSTATE\tASKED\tWAL\tTORN\tHEALTH")
	for _, s := range rep.Sessions {
		health := "ok"
		switch {
		case s.SnapshotError != "":
			health = "snapshot: " + s.SnapshotError
		case s.WALError != "":
			health = "wal: " + s.WALError
		case s.ReplayError != "":
			health = "replay: " + s.ReplayError
		}
		torn := "-"
		if s.TornTailBytes > 0 {
			torn = fmt.Sprintf("%dB", s.TornTailBytes)
			if s.Repaired {
				torn += " (repaired)"
			}
		}
		fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%s\t%s\n", s.ID, s.State, s.Asked, s.WALRecords, torn, health)
	}
	for _, q := range rep.Quarantined {
		fmt.Fprintf(w, "%s\t%s\t-\t-\t-\tquarantined: %s\n", q.ID, "quarantined", q.Reason)
	}
	w.Flush()
	fmt.Printf("%d healthy, %d unhealthy, %d quarantined, %d torn tails (%d repaired)\n",
		rep.Healthy, rep.Unhealthy, len(rep.Quarantined), rep.TornTails, rep.Repaired)
}
