package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	crowdtopk "crowdtopk"
	"crowdtopk/internal/benchfmt"
	"crowdtopk/internal/crowd"
	"crowdtopk/internal/dataset"
	"crowdtopk/internal/dist"
	"crowdtopk/internal/service"
	"crowdtopk/internal/tpo"
	"crowdtopk/sdk"
)

// The loadgen subcommand measures serving capacity: N concurrent simulated
// crowd sessions drive a target server (or the in-process SDK) through the
// full session protocol — create, pull questions, answer with configurable
// accuracy, read the result, delete — and the harness sweeps concurrency
// levels, recording throughput, per-route latency percentiles, and
// shed/degraded counts into BENCH_serve.json (cmd/benchreport's schema, so
// the same diff tooling reads both benchmark files).

type lgOptions struct {
	target    string // base URL of a running serve; empty drives the in-process SDK
	levels    []int
	duration  time.Duration
	n         int
	k         int
	budget    int
	algorithm string
	accuracy  float64
	seed      int64
}

func cmdLoadgen(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ExitOnError)
	target := fs.String("target", "", "base URL of a running `crowdtopk serve` (e.g. http://127.0.0.1:8080); empty drives the in-process SDK")
	levels := fs.String("concurrency", "1,4,16", "comma-separated concurrency levels to sweep")
	duration := fs.Duration("duration", 10*time.Second, "measurement window per concurrency level")
	n := fs.Int("n", 12, "tuples per session dataset")
	k := fs.Int("k", 3, "result size K")
	budget := fs.Int("budget", 16, "crowd-answer budget per session")
	algorithm := fs.String("algorithm", "", "session algorithm (empty = server default)")
	accuracy := fs.Float64("accuracy", 0.9, "probability a simulated answer is correct")
	seed := fs.Int64("seed", 1, "workload seed (dataset, truth sampling, answer noise)")
	out := fs.String("out", "BENCH_serve.json", "output report path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts := lgOptions{
		target: strings.TrimRight(*target, "/"), duration: *duration,
		n: *n, k: *k, budget: *budget, algorithm: *algorithm,
		accuracy: *accuracy, seed: *seed,
	}
	for _, tok := range strings.Split(*levels, ",") {
		c, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || c < 1 {
			return fmt.Errorf("loadgen: bad concurrency level %q", tok)
		}
		opts.levels = append(opts.levels, c)
	}
	rep, err := runLoadgen(opts, os.Stderr)
	if err != nil {
		return err
	}
	if err := benchfmt.WriteFile(*out, rep); err != nil {
		return err
	}
	fmt.Printf("loadgen: wrote %s (%d results)\n", *out, len(rep.Results))
	return nil
}

// runLoadgen runs the full sweep and builds the report. Factored off the
// flag parsing so tests drive it against httptest servers.
func runLoadgen(opts lgOptions, progress io.Writer) (*benchfmt.Report, error) {
	ds, err := dataset.Generate(dataset.Spec{
		N: opts.n, Family: dataset.Uniform, Width: 2.0, Spacing: 0.5, Seed: opts.seed,
	})
	if err != nil {
		return nil, err
	}
	specs, err := dataset.SpecsOf(ds)
	if err != nil {
		return nil, err
	}
	tgt, err := newTarget(opts.target, specs)
	if err != nil {
		return nil, err
	}
	defer tgt.close()

	rep := &benchfmt.Report{
		Bench:     "ServeLoadgen",
		Benchtime: opts.duration.String(),
		GoOS:      runtime.GOOS,
		GoArch:    runtime.GOARCH,
		CPU:       fmt.Sprintf("%d logical CPUs", runtime.NumCPU()),
	}
	for _, c := range opts.levels {
		if progress != nil {
			fmt.Fprintf(progress, "loadgen: level c=%d for %s...\n", c, opts.duration)
		}
		res, err := runLevel(tgt, ds, opts, c)
		if err != nil {
			return nil, err
		}
		rep.Results = append(rep.Results, res...)
	}
	return rep, nil
}

// runLevel drives one concurrency level for the configured window and
// reports one Result per route plus a level total.
func runLevel(tgt lgTarget, ds []dist.Distribution, opts lgOptions, workers int) ([]benchfmt.Result, error) {
	rc := &recorder{lat: map[string][]time.Duration{}}
	ctx, cancel := context.WithTimeout(context.Background(), opts.duration)
	defer cancel()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(wid int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(opts.seed + int64(wid)*7919))
			for ctx.Err() == nil {
				runSession(ctx, tgt, ds, opts, rc, rng)
			}
		}(w)
	}
	wg.Wait()
	if rc.errors.Load() > 0 && rc.total() == 0 {
		return nil, fmt.Errorf("loadgen: c=%d produced only errors (%d) — is the target up?", workers, rc.errors.Load())
	}
	return rc.results(workers, opts.duration, tgt.degraded()), nil
}

// runSession plays one full session against the target: answers flow in
// whenever questions are pending, with per-answer correctness drawn at the
// configured accuracy against a freshly sampled ground-truth world.
func runSession(ctx context.Context, tgt lgTarget, ds []dist.Distribution, opts lgOptions, rc *recorder, rng *rand.Rand) {
	truth := crowd.SampleTruth(ds, rng)
	id, err := timed(ctx, rc, "create", func() (string, error) {
		return tgt.create(opts.k, opts.budget, opts.algorithm, rng.Int63())
	})
	if err != nil {
		return
	}
	defer func() {
		_, _ = timed(ctx, rc, "delete", func() (struct{}, error) { return struct{}{}, tgt.delete(id) })
	}()
	for ctx.Err() == nil {
		qs, state, err := timed2(ctx, rc, "questions", func() ([]tpo.Question, string, error) {
			return tgt.questions(id, 0)
		})
		if err != nil || len(qs) == 0 || state == "converged" || state == "exhausted" {
			break
		}
		answers := make([]wireAnswer, len(qs))
		for i, q := range qs {
			a := truth.Correct(q)
			yes := a.Yes
			if rng.Float64() >= opts.accuracy {
				yes = !yes
			}
			answers[i] = wireAnswer{I: q.I, J: q.J, Yes: yes}
		}
		if _, err := timed(ctx, rc, "answers", func() (struct{}, error) {
			return struct{}{}, tgt.answers(id, answers)
		}); err != nil {
			break
		}
	}
	_, _ = timed(ctx, rc, "result", func() (struct{}, error) { return struct{}{}, tgt.result(id) })
	rc.sessions.Add(1)
}

// errShed classifies an admission rejection (429/503): counted, never timed,
// and the worker backs off briefly instead of hot-spinning into the limiter.
var errShed = errors.New("shed")

// timed runs one target call, records its latency under route on success,
// and translates sheds into a short backoff.
func timed[T any](ctx context.Context, rc *recorder, route string, f func() (T, error)) (T, error) {
	start := time.Now()
	v, err := f()
	switch {
	case err == nil:
		rc.observe(route, time.Since(start))
	case errors.Is(err, errShed):
		rc.shed.Add(1)
		select {
		case <-ctx.Done():
		case <-time.After(10 * time.Millisecond):
		}
	default:
		rc.errors.Add(1)
	}
	return v, err
}

func timed2[A, B any](ctx context.Context, rc *recorder, route string, f func() (A, B, error)) (A, B, error) {
	var b B
	a, err := timed(ctx, rc, route, func() (A, error) {
		var err error
		var av A
		av, b, err = f()
		return av, err
	})
	return a, b, err
}

// recorder accumulates per-route latencies and level-wide counters.
type recorder struct {
	mu       sync.Mutex
	lat      map[string][]time.Duration
	shed     atomic.Int64
	errors   atomic.Int64
	sessions atomic.Int64
}

func (rc *recorder) observe(route string, d time.Duration) {
	rc.mu.Lock()
	rc.lat[route] = append(rc.lat[route], d)
	rc.mu.Unlock()
}

func (rc *recorder) total() int {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	n := 0
	for _, l := range rc.lat {
		n += len(l)
	}
	return n
}

// results renders the level's measurements: one Result per route with mean
// latency (ns_per_op) and p50/p95/p99 percentiles, plus a total row with
// request throughput and the shed/error/degraded counters.
func (rc *recorder) results(workers int, window time.Duration, degraded bool) []benchfmt.Result {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	routes := make([]string, 0, len(rc.lat))
	for r := range rc.lat {
		routes = append(routes, r)
	}
	sort.Strings(routes)
	var out []benchfmt.Result
	total := 0
	for _, r := range routes {
		lats := rc.lat[r]
		total += len(lats)
		sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
		var sum time.Duration
		for _, d := range lats {
			sum += d
		}
		out = append(out, benchfmt.Result{
			Name:    fmt.Sprintf("ServeLoadgen/c=%d/%s", workers, r),
			Iters:   int64(len(lats)),
			NsPerOp: float64(sum.Nanoseconds()) / float64(len(lats)),
			Metrics: map[string]float64{
				"p50_ns": float64(percentile(lats, 0.50).Nanoseconds()),
				"p95_ns": float64(percentile(lats, 0.95).Nanoseconds()),
				"p99_ns": float64(percentile(lats, 0.99).Nanoseconds()),
				"rps":    float64(len(lats)) / window.Seconds(),
			},
		})
	}
	deg := 0.0
	if degraded {
		deg = 1
	}
	out = append(out, benchfmt.Result{
		Name:  fmt.Sprintf("ServeLoadgen/c=%d/total", workers),
		Iters: int64(total),
		Metrics: map[string]float64{
			"rps":      float64(total) / window.Seconds(),
			"sessions": float64(rc.sessions.Load()),
			"shed":     float64(rc.shed.Load()),
			"errors":   float64(rc.errors.Load()),
			"degraded": deg,
		},
	})
	return out
}

// percentile reads the q-quantile of a sorted latency slice (nearest-rank).
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// ---- targets ----

type wireAnswer struct {
	I   int  `json:"i"`
	J   int  `json:"j"`
	Yes bool `json:"yes"`
}

// lgTarget abstracts the system under load: a remote serve process over
// HTTP, or the in-process SDK (useful to separate protocol cost from stack
// cost). Implementations translate admission rejections into errShed.
type lgTarget interface {
	create(k, budget int, algorithm string, seed int64) (string, error)
	questions(id string, n int) ([]tpo.Question, string, error)
	answers(id string, answers []wireAnswer) error
	result(id string) error
	delete(id string) error
	degraded() bool
	close()
}

func newTarget(base string, specs []dataset.DistSpec) (lgTarget, error) {
	if base != "" {
		return &httpTarget{base: base, specs: specs, c: &http.Client{Timeout: 60 * time.Second}}, nil
	}
	return newSDKTarget(specs)
}

// httpTarget speaks the v1 JSON protocol against a running serve.
type httpTarget struct {
	base  string
	specs []dataset.DistSpec
	c     *http.Client
}

func (t *httpTarget) do(method, path string, body, into any) error {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, t.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := t.c.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable:
		io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("%w: %s %s: %s", errShed, method, path, resp.Status)
	case resp.StatusCode >= 400:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("%s %s: %s: %s", method, path, resp.Status, msg)
	}
	if into == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(into)
}

func (t *httpTarget) create(k, budget int, algorithm string, seed int64) (string, error) {
	req := map[string]any{"tuples": t.specs, "k": k, "budget": budget, "seed": seed}
	if algorithm != "" {
		req["algorithm"] = algorithm
	}
	var info struct {
		ID string `json:"id"`
	}
	if err := t.do("POST", "/v1/sessions", req, &info); err != nil {
		return "", err
	}
	return info.ID, nil
}

func (t *httpTarget) questions(id string, n int) ([]tpo.Question, string, error) {
	path := "/v1/sessions/" + id + "/questions"
	if n > 0 {
		path += "?n=" + strconv.Itoa(n)
	}
	var view struct {
		State     string `json:"state"`
		Questions []struct {
			I int `json:"i"`
			J int `json:"j"`
		} `json:"questions"`
	}
	if err := t.do("GET", path, nil, &view); err != nil {
		return nil, "", err
	}
	qs := make([]tpo.Question, len(view.Questions))
	for i, q := range view.Questions {
		qs[i] = tpo.NewQuestion(q.I, q.J)
	}
	return qs, view.State, nil
}

func (t *httpTarget) answers(id string, answers []wireAnswer) error {
	return t.do("POST", "/v1/sessions/"+id+"/answers", map[string]any{"answers": answers}, nil)
}

func (t *httpTarget) result(id string) error {
	return t.do("GET", "/v1/sessions/"+id+"/result", nil, nil)
}

func (t *httpTarget) delete(id string) error {
	return t.do("DELETE", "/v1/sessions/"+id, nil, nil)
}

func (t *httpTarget) degraded() bool {
	var h struct {
		DegradedMode bool `json:"degraded_mode"`
	}
	if err := t.do("GET", "/health", nil, &h); err != nil {
		return false
	}
	return h.DegradedMode
}

func (t *httpTarget) close() {}

// sdkTarget drives the embedded service core directly — same protocol, no
// HTTP — so comparing it against an httpTarget run isolates codec cost.
type sdkTarget struct {
	client *sdk.Client
	ds     *crowdtopk.Dataset
}

func newSDKTarget(specs []dataset.DistSpec) (*sdkTarget, error) {
	scores := make([]crowdtopk.Uncertain, len(specs))
	for i, sp := range specs {
		if sp.Family != "uniform" || len(sp.Params) != 2 {
			return nil, fmt.Errorf("loadgen: sdk target supports the uniform dataset family, got %q", sp.Family)
		}
		lo, hi := sp.Params[0], sp.Params[1]
		scores[i] = crowdtopk.UniformScore((lo+hi)/2, hi-lo)
	}
	ds, err := crowdtopk.NewDataset(scores)
	if err != nil {
		return nil, err
	}
	client, err := sdk.New(sdk.Options{})
	if err != nil {
		return nil, err
	}
	return &sdkTarget{client: client, ds: ds}, nil
}

func (t *sdkTarget) create(k, budget int, algorithm string, seed int64) (string, error) {
	info, err := t.client.CreateSession(sdk.SessionConfig{
		Dataset: t.ds,
		Query: crowdtopk.Query{
			K: k, Budget: budget, Algorithm: crowdtopk.Algorithm(algorithm), Seed: seed,
		},
	})
	if err != nil {
		return "", sdkErr(err)
	}
	return info.ID, nil
}

func (t *sdkTarget) questions(id string, n int) ([]tpo.Question, string, error) {
	view, err := t.client.Questions(id, n)
	if err != nil {
		return nil, "", sdkErr(err)
	}
	qs := make([]tpo.Question, len(view.Questions))
	for i, q := range view.Questions {
		qs[i] = tpo.NewQuestion(q.I, q.J)
	}
	return qs, string(view.State), nil
}

func (t *sdkTarget) answers(id string, answers []wireAnswer) error {
	batch := make([]crowdtopk.Answer, len(answers))
	for i, a := range answers {
		batch[i] = crowdtopk.Answer{Q: crowdtopk.Question{I: a.I, J: a.J}, Yes: a.Yes}
	}
	_, err := t.client.SubmitAnswers(id, batch...)
	return sdkErr(err)
}

func (t *sdkTarget) result(id string) error {
	_, err := t.client.Result(id)
	return sdkErr(err)
}

func (t *sdkTarget) delete(id string) error { return sdkErr(t.client.Delete(id)) }

func (t *sdkTarget) degraded() bool { return t.client.Health().DegradedMode }

func (t *sdkTarget) close() { t.client.Close() }

// sdkErr maps the SDK's admission errors onto the shed classification the
// HTTP target derives from 429/503.
func sdkErr(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, service.ErrFull) || errors.Is(err, service.ErrRateLimited) || errors.Is(err, service.ErrOverloaded) {
		return fmt.Errorf("%w: %v", errShed, err)
	}
	return err
}
