package main

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"strings"

	"crowdtopk/internal/service"
)

// interactiveClient turns the terminal user into the crowd for a managed
// query session: it pulls each question the service plans, prompts on
// stdout and submits the y/n answer. It is just another service client —
// the same pull/answer loop a crowd-platform integration runs over HTTP or
// the SDK, with a crowd of one.
type interactiveClient struct {
	in    *bufio.Scanner
	out   io.Writer
	asked int
}

func newInteractiveClient(in io.Reader, out io.Writer) *interactiveClient {
	return &interactiveClient{in: bufio.NewScanner(in), out: out}
}

// run drives the session to termination, one question at a time, through
// the service's typed operations.
func (c *interactiveClient) run(svc *service.Service, id string) error {
	for {
		view, err := svc.Questions(context.Background(), id, 1)
		if err != nil {
			return err
		}
		if len(view.Questions) == 0 {
			return nil // converged or exhausted
		}
		q := view.Questions[0]
		yes := c.prompt(q.Prompt)
		if _, err := svc.Answers(context.Background(), id, []service.Answer{{I: q.I, J: q.J, Yes: yes}}); err != nil {
			return err
		}
	}
}

// prompt asks the user one question, re-prompting until it parses. EOF
// answers arbitrarily but deterministically so a piped session terminates
// instead of hanging.
func (c *interactiveClient) prompt(question string) bool {
	c.asked++
	for {
		fmt.Fprintf(c.out, "Q%d: %s [y/n] ", c.asked, question)
		if !c.in.Scan() {
			fmt.Fprintln(c.out, "(eof — assuming yes)")
			return true
		}
		switch strings.ToLower(strings.TrimSpace(c.in.Text())) {
		case "y", "yes":
			return true
		case "n", "no":
			return false
		default:
			fmt.Fprintln(c.out, "please answer y or n")
		}
	}
}
