package main

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"crowdtopk/internal/session"
	"crowdtopk/internal/tpo"
)

// interactiveClient turns the terminal user into the crowd for an
// asynchronous query session: it pulls each question the session plans,
// prompts on stdout and submits the y/n answer. It is just another session
// client — the same pull/answer loop a crowd-platform integration runs over
// HTTP, with a crowd of one.
type interactiveClient struct {
	in    *bufio.Scanner
	out   io.Writer
	names func(int) string
	asked int
}

func newInteractiveClient(in io.Reader, out io.Writer, names func(int) string) *interactiveClient {
	return &interactiveClient{in: bufio.NewScanner(in), out: out, names: names}
}

// run drives the session to termination, one question at a time.
func (c *interactiveClient) run(sess *session.Session) error {
	for {
		qs, _, err := sess.NextQuestions(1)
		if err != nil {
			return err
		}
		if len(qs) == 0 {
			return nil // converged or exhausted
		}
		yes := c.prompt(qs[0])
		if err := sess.SubmitAnswer(tpo.Answer{Q: qs[0], Yes: yes}); err != nil {
			return err
		}
	}
}

// prompt asks the user one question, re-prompting until it parses. EOF
// answers arbitrarily but deterministically so a piped session terminates
// instead of hanging.
func (c *interactiveClient) prompt(q tpo.Question) bool {
	c.asked++
	for {
		fmt.Fprintf(c.out, "Q%d: does %s rank above %s? [y/n] ", c.asked, c.names(q.I), c.names(q.J))
		if !c.in.Scan() {
			fmt.Fprintln(c.out, "(eof — assuming yes)")
			return true
		}
		switch strings.ToLower(strings.TrimSpace(c.in.Text())) {
		case "y", "yes":
			return true
		case "n", "no":
			return false
		default:
			fmt.Fprintln(c.out, "please answer y or n")
		}
	}
}
