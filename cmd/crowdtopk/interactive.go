package main

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"crowdtopk/internal/tpo"
)

// interactiveCrowd turns the terminal user into the crowd: every question
// the selection strategy picks is printed and answered on stdin. It is the
// real crowdsourcing loop with a crowd of one.
type interactiveCrowd struct {
	in    *bufio.Scanner
	out   io.Writer
	names func(int) string
	asked int
}

func newInteractiveCrowd(in io.Reader, out io.Writer, names func(int) string) *interactiveCrowd {
	return &interactiveCrowd{in: bufio.NewScanner(in), out: out, names: names}
}

// Ask implements crowd.Crowd.
func (c *interactiveCrowd) Ask(q tpo.Question) tpo.Answer {
	c.asked++
	for {
		fmt.Fprintf(c.out, "Q%d: does %s rank above %s? [y/n] ", c.asked, c.names(q.I), c.names(q.J))
		if !c.in.Scan() {
			// EOF: answer arbitrarily but deterministically so a piped
			// session terminates instead of hanging.
			fmt.Fprintln(c.out, "(eof — assuming yes)")
			return tpo.Answer{Q: q, Yes: true}
		}
		switch strings.ToLower(strings.TrimSpace(c.in.Text())) {
		case "y", "yes":
			return tpo.Answer{Q: q, Yes: true}
		case "n", "no":
			return tpo.Answer{Q: q, Yes: false}
		default:
			fmt.Fprintln(c.out, "please answer y or n")
		}
	}
}

// Reliability implements crowd.Crowd: interactive answers are trusted and
// prune the tree outright.
func (c *interactiveCrowd) Reliability() float64 { return 1 }
