package main

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"crowdtopk/internal/dataset"
	"crowdtopk/internal/session"
	"crowdtopk/internal/tpo"
)

func TestInteractiveClientParsesAnswers(t *testing.T) {
	in := strings.NewReader("y\nn\nYES\nno\n")
	var out bytes.Buffer
	c := newInteractiveClient(in, &out, func(id int) string { return fmt.Sprintf("item-%d", id) })
	q := tpo.NewQuestion(0, 1)
	wantYes := []bool{true, false, true, false}
	for i, want := range wantYes {
		if got := c.prompt(q); got != want {
			t.Fatalf("answer %d: got yes=%v, want %v", i, got, want)
		}
	}
	if got := out.String(); !strings.Contains(got, "item-0") || !strings.Contains(got, "item-1") {
		t.Fatalf("prompt does not name the items: %q", got)
	}
}

func TestInteractiveClientReprompts(t *testing.T) {
	in := strings.NewReader("maybe\nwhat\ny\n")
	var out bytes.Buffer
	c := newInteractiveClient(in, &out, func(id int) string { return "x" })
	if !c.prompt(tpo.NewQuestion(2, 3)) {
		t.Fatal("final answer should be yes")
	}
	if n := strings.Count(out.String(), "please answer"); n != 2 {
		t.Fatalf("expected 2 reprompts, saw %d", n)
	}
}

func TestInteractiveClientEOFTerminates(t *testing.T) {
	c := newInteractiveClient(strings.NewReader(""), &bytes.Buffer{}, func(id int) string { return "x" })
	// Deterministic fallback so piped sessions do not hang.
	if !c.prompt(tpo.NewQuestion(0, 1)) {
		t.Fatal("EOF fallback should answer yes")
	}
}

// TestInteractiveClientDrivesSession: the TUI is a session client — it runs
// a real session to termination, answering every planned question, and the
// session accounts for each answer.
func TestInteractiveClientDrivesSession(t *testing.T) {
	ds, err := dataset.Generate(dataset.Spec{N: 5, Width: 2.0, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := session.New(session.Config{Dists: ds, K: 2, Budget: 6})
	if err != nil {
		t.Fatal(err)
	}
	in := strings.NewReader(strings.Repeat("y\n", 64))
	var out bytes.Buffer
	c := newInteractiveClient(in, &out, func(id int) string { return fmt.Sprintf("t%d", id) })
	if err := c.run(sess); err != nil {
		t.Fatal(err)
	}
	if !sess.State().Terminal() {
		t.Fatalf("session not terminal after interactive run: %s", sess.State())
	}
	res := sess.Result()
	if res.Asked == 0 || res.Asked != c.asked {
		t.Fatalf("asked mismatch: session %d, client %d", res.Asked, c.asked)
	}
	if !strings.Contains(out.String(), "rank above") {
		t.Fatalf("no prompts rendered: %q", out.String())
	}
}
