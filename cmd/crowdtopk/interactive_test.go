package main

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"crowdtopk/internal/tpo"
)

func TestInteractiveCrowdParsesAnswers(t *testing.T) {
	in := strings.NewReader("y\nn\nYES\nno\n")
	var out bytes.Buffer
	c := newInteractiveCrowd(in, &out, func(id int) string { return fmt.Sprintf("item-%d", id) })
	q := tpo.NewQuestion(0, 1)
	wantYes := []bool{true, false, true, false}
	for i, want := range wantYes {
		a := c.Ask(q)
		if a.Yes != want {
			t.Fatalf("answer %d: got yes=%v, want %v", i, a.Yes, want)
		}
	}
	if got := out.String(); !strings.Contains(got, "item-0") || !strings.Contains(got, "item-1") {
		t.Fatalf("prompt does not name the items: %q", got)
	}
	if c.Reliability() != 1 {
		t.Fatal("interactive answers must be trusted")
	}
}

func TestInteractiveCrowdReprompts(t *testing.T) {
	in := strings.NewReader("maybe\nwhat\ny\n")
	var out bytes.Buffer
	c := newInteractiveCrowd(in, &out, func(id int) string { return "x" })
	a := c.Ask(tpo.NewQuestion(2, 3))
	if !a.Yes {
		t.Fatalf("final answer should be yes, got %v", a)
	}
	if n := strings.Count(out.String(), "please answer"); n != 2 {
		t.Fatalf("expected 2 reprompts, saw %d", n)
	}
}

func TestInteractiveCrowdEOFTerminates(t *testing.T) {
	c := newInteractiveCrowd(strings.NewReader(""), &bytes.Buffer{}, func(id int) string { return "x" })
	a := c.Ask(tpo.NewQuestion(0, 1))
	// Deterministic fallback so piped sessions do not hang.
	if !a.Yes {
		t.Fatalf("EOF fallback = %v", a)
	}
}
