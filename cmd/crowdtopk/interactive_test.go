package main

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"crowdtopk/internal/dataset"
	"crowdtopk/internal/service"
)

func TestInteractiveClientParsesAnswers(t *testing.T) {
	in := strings.NewReader("y\nn\nYES\nno\n")
	var out bytes.Buffer
	c := newInteractiveClient(in, &out)
	wantYes := []bool{true, false, true, false}
	for i, want := range wantYes {
		if got := c.prompt("does item-0 rank above item-1?"); got != want {
			t.Fatalf("answer %d: got yes=%v, want %v", i, got, want)
		}
	}
	if got := out.String(); !strings.Contains(got, "item-0") || !strings.Contains(got, "item-1") {
		t.Fatalf("prompt does not name the items: %q", got)
	}
}

func TestInteractiveClientReprompts(t *testing.T) {
	in := strings.NewReader("maybe\nwhat\ny\n")
	var out bytes.Buffer
	c := newInteractiveClient(in, &out)
	if !c.prompt("does x rank above x?") {
		t.Fatal("final answer should be yes")
	}
	if n := strings.Count(out.String(), "please answer"); n != 2 {
		t.Fatalf("expected 2 reprompts, saw %d", n)
	}
}

func TestInteractiveClientEOFTerminates(t *testing.T) {
	c := newInteractiveClient(strings.NewReader(""), &bytes.Buffer{})
	// Deterministic fallback so piped sessions do not hang.
	if !c.prompt("does x rank above y?") {
		t.Fatal("EOF fallback should answer yes")
	}
}

// TestInteractiveClientDrivesSession: the TUI is a service client — it runs
// a real managed session to termination, answering every planned question,
// and the service accounts for each answer.
func TestInteractiveClientDrivesSession(t *testing.T) {
	ds, err := dataset.Generate(dataset.Spec{N: 5, Width: 2.0, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := service.New(service.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	info, err := svc.CreateOrRestore(context.Background(), service.CreateRequest{Dists: ds, K: 2, Budget: 6})
	if err != nil {
		t.Fatal(err)
	}
	in := strings.NewReader(strings.Repeat("y\n", 64))
	var out bytes.Buffer
	c := newInteractiveClient(in, &out)
	if err := c.run(svc, info.ID); err != nil {
		t.Fatal(err)
	}
	res, err := svc.Result(context.Background(), info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res.State != "converged" && res.State != "exhausted" {
		t.Fatalf("session not terminal after interactive run: %s", res.State)
	}
	if res.Asked == 0 || res.Asked != c.asked {
		t.Fatalf("asked mismatch: service %d, client %d", res.Asked, c.asked)
	}
	if !strings.Contains(out.String(), "rank above") {
		t.Fatalf("no prompts rendered: %q", out.String())
	}
}
