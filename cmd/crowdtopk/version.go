package main

import (
	"fmt"

	"crowdtopk/internal/obs"
)

// cmdVersion prints the binary's build identity — the same fields exported
// as the crowdtopk_build_info gauge on /metrics and embedded in /health, so
// an operator can match a running server to a binary on disk.
func cmdVersion() error {
	bi := obs.GetBuildInfo()
	fmt.Printf("crowdtopk %s\n", bi.Version)
	fmt.Printf("  go:       %s\n", bi.GoVersion)
	if bi.Revision != "" {
		rev := bi.Revision
		if bi.Modified {
			rev += " (modified)"
		}
		fmt.Printf("  revision: %s\n", rev)
	}
	return nil
}
