// Command crowdtopk regenerates the paper's experiments, generates synthetic
// uncertain datasets, visualizes trees of possible orderings, and runs
// interactive top-K demos.
//
// Usage:
//
//	crowdtopk run  -exp fig1a [-n 20 -k 5 -trials 10 -budgets 0,5,10,20,30,40,50 -width 3.5 -workers 0 -quick]
//	crowdtopk gen  -n 20 -family uniform -width 2.0 -out data.csv
//	crowdtopk viz  -in data.csv -k 3 -out tree.dot
//	crowdtopk demo -n 6 -k 3 -budget 8 [-accuracy 0.8]
//	crowdtopk serve -addr :8080 [-workers 0 -ttl 30m -max-sessions 0]
//	crowdtopk fsck -data-dir /var/lib/crowdtopk [-repair -deep -format json]
//	crowdtopk loadgen [-target http://127.0.0.1:8080 -concurrency 1,4,16 -duration 10s -out BENCH_serve.json]
//	crowdtopk version
//	crowdtopk list
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"crowdtopk/internal/dataset"
	"crowdtopk/internal/engine"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "run":
		err = cmdRun(os.Args[2:])
	case "gen":
		err = cmdGen(os.Args[2:])
	case "viz":
		err = cmdViz(os.Args[2:])
	case "demo":
		err = cmdDemo(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "fsck":
		err = cmdFsck(os.Args[2:])
	case "loadgen":
		err = cmdLoadgen(os.Args[2:])
	case "version":
		err = cmdVersion()
	case "list":
		err = cmdList()
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "crowdtopk: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "crowdtopk:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `crowdtopk — crowdsourced top-K query processing over uncertain data

commands:
  run   regenerate a paper experiment (fig1a, fig1b, measures, noisy, nonuniform, scale)
  gen   generate a synthetic uncertain dataset as CSV
  viz   render the tree of possible orderings of a dataset as Graphviz DOT
  demo  run an end-to-end query against a simulated crowd
  serve run the asynchronous query-session HTTP API
  fsck  check (and optionally repair) a serve -data-dir offline
  loadgen  sweep concurrency levels against a serve (or the in-process SDK) and record BENCH_serve.json
  version  print the binary's build identity
  list  list available experiments and algorithms`)
}

func cmdList() error {
	fmt.Println("experiments:", strings.Join(engine.ExperimentNames(), ", "))
	fmt.Println("algorithms: ", strings.Join(engine.Algorithms(), ", "))
	fmt.Println("measures:    H, Hw, ORA, ORA-FR, MPO")
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	exp := fs.String("exp", "fig1a", "experiment id (see `crowdtopk list`)")
	n := fs.Int("n", 0, "number of tuples (0 = experiment default)")
	k := fs.Int("k", 0, "result size K")
	trials := fs.Int("trials", 0, "trials per configuration")
	budgets := fs.String("budgets", "", "comma-separated budgets, e.g. 0,5,10,20")
	width := fs.Float64("width", 0, "score support width (overlap control)")
	spacing := fs.Float64("spacing", 0, "score center spacing")
	seed := fs.Int64("seed", 0, "workload seed")
	measure := fs.String("measure", "", "uncertainty measure: H, Hw, ORA, MPO")
	grid := fs.Int("grid", 0, "integration grid size")
	round := fs.Int("round", 0, "incr round size")
	workers := fs.Int("workers", 0, "parallel workers for builds, trials and cells (0 = all CPUs, 1 = sequential; results are identical)")
	quick := fs.Bool("quick", false, "small smoke-test configuration")
	format := fs.String("format", "text", "output format: text, csv, json")
	verbose := fs.Bool("v", false, "log progress per experiment cell to stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}
	runner, ok := engine.Experiments[*exp]
	if !ok {
		return fmt.Errorf("unknown experiment %q (have: %s)", *exp, strings.Join(engine.ExperimentNames(), ", "))
	}
	opts := engine.ExpOptions{
		N: *n, K: *k, Trials: *trials, Seed: *seed,
		Width: *width, Spacing: *spacing, Measure: *measure,
		GridSize: *grid, RoundSize: *round, Workers: *workers, Quick: *quick,
	}
	if *verbose {
		opts.Progress = os.Stderr
	}
	if *budgets != "" {
		for _, tok := range strings.Split(*budgets, ",") {
			b, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil {
				return fmt.Errorf("bad budget %q: %w", tok, err)
			}
			opts.Budgets = append(opts.Budgets, b)
		}
	}
	tbl, err := runner(opts)
	if err != nil {
		return err
	}
	return tbl.Render(os.Stdout, *format)
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	n := fs.Int("n", 20, "number of tuples")
	family := fs.String("family", "uniform", "distribution family: uniform, gaussian, triangular")
	width := fs.Float64("width", 2.0, "support width")
	spacing := fs.Float64("spacing", 0.5, "center spacing")
	hetero := fs.Float64("hetero", 0, "width heterogeneity in [0,1)")
	seed := fs.Int64("seed", 1, "generator seed")
	out := fs.String("out", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ds, err := dataset.Generate(dataset.Spec{
		N: *n, Family: dataset.Family(*family), Width: *width,
		Spacing: *spacing, HeteroWidth: *hetero, Seed: *seed,
	})
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return dataset.WriteCSV(w, ds)
}
