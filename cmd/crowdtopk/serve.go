package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"crowdtopk/internal/server"
)

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "process-wide worker budget shared by all sessions' tree builds (0 = all CPUs)")
	ttl := fs.Duration("ttl", server.DefaultTTL, "evict sessions idle longer than this (0 = never)")
	maxSessions := fs.Int("max-sessions", 0, "maximum live sessions, creates beyond it get 503 (0 = unbounded)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	srv := server.New(server.Config{
		Workers:     *workers,
		TTL:         *ttl,
		MaxSessions: *maxSessions,
	})
	defer srv.Close()
	fmt.Fprintf(os.Stderr, "crowdtopk serve: listening on %s (workers=%d ttl=%s)\n", *addr, *workers, *ttl)
	return http.ListenAndServe(*addr, srv.Handler())
}
