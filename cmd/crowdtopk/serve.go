package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"crowdtopk/internal/persist"
	"crowdtopk/internal/server"
)

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "process-wide worker budget shared by all sessions' tree builds (0 = all CPUs)")
	ttl := fs.Duration("ttl", server.DefaultTTL, "evict sessions idle longer than this (0 = never); with -data-dir eviction moves them to disk instead of dropping them")
	maxSessions := fs.Int("max-sessions", 0, "maximum live in-memory sessions, creates beyond it get 503 (0 = unbounded)")
	dataDir := fs.String("data-dir", "", "durable session store directory; empty serves memory-only (sessions die with the process)")
	fsync := fs.String("fsync", string(persist.SyncAlways), "wal fsync policy with -data-dir: always (each answer batch durable) or none (page cache + flush on shutdown)")
	snapshotEvery := fs.Int("snapshot-every", persist.DefaultSnapshotEvery, "with -data-dir, compact a session's wal into a fresh snapshot after this many appended answers")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := server.Config{
		Workers:     *workers,
		TTL:         *ttl,
		MaxSessions: *maxSessions,
	}
	if *dataDir != "" {
		policy, err := persist.ParseSyncPolicy(*fsync)
		if err != nil {
			return err
		}
		store, err := persist.NewFile(persist.FileOptions{
			Dir:           *dataDir,
			SnapshotEvery: *snapshotEvery,
			Sync:          policy,
		})
		if err != nil {
			return err
		}
		cfg.Persist = store
	}
	srv, err := server.New(cfg) // recovers all persisted sessions on boot
	if err != nil {
		return err
	}
	defer srv.Close()
	if *dataDir != "" {
		fmt.Fprintf(os.Stderr, "crowdtopk serve: listening on %s (workers=%d ttl=%s data-dir=%s fsync=%s snapshot-every=%d)\n",
			*addr, *workers, *ttl, *dataDir, *fsync, *snapshotEvery)
	} else {
		fmt.Fprintf(os.Stderr, "crowdtopk serve: listening on %s (workers=%d ttl=%s, memory-only)\n", *addr, *workers, *ttl)
	}

	// Header and idle timeouts so slow clients cannot pin connections
	// forever (slowloris); read/write timeouts stay unset because large
	// checkpoint transfers on slow links are legitimate.
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	// Graceful shutdown: on SIGINT/SIGTERM stop accepting, drain in-flight
	// requests under a deadline, then flush every dirty session to the
	// durable store (srv.Close) so nothing acked is lost.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	select {
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
		stop() // a second signal kills hot instead of waiting for the drain
		fmt.Fprintln(os.Stderr, "crowdtopk serve: shutting down (draining requests, flushing sessions)")
		sctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil {
			fmt.Fprintf(os.Stderr, "crowdtopk serve: shutdown: %v\n", err)
		}
		srv.Close() // flush dirty sessions to disk, then close the store
		return nil
	}
}
