package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"crowdtopk/internal/obs"
	"crowdtopk/internal/persist"
	"crowdtopk/internal/server"
)

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "process-wide worker budget shared by all sessions' tree builds (0 = all CPUs)")
	ttl := fs.Duration("ttl", server.DefaultTTL, "evict sessions idle longer than this (0 = never); with -data-dir eviction moves them to disk instead of dropping them")
	maxSessions := fs.Int("max-sessions", 0, "maximum live in-memory sessions, creates beyond it get 503 (0 = unbounded)")
	dataDir := fs.String("data-dir", "", "durable session store directory; empty serves memory-only (sessions die with the process)")
	fsync := fs.String("fsync", string(persist.SyncAlways), "wal fsync policy with -data-dir: always (each answer batch durable) or none (page cache + flush on shutdown)")
	snapshotEvery := fs.Int("snapshot-every", persist.DefaultSnapshotEvery, "with -data-dir, compact a session's wal into a fresh snapshot after this many appended answers")
	logFormat := fs.String("log-format", "text", "structured log format on stderr: text or json")
	auditPath := fs.String("audit-log", "", "append-only NDJSON audit log of accepted answer batches; empty disables auditing")
	rateLimit := fs.Float64("rate-limit", 0, "per-client sustained requests per second, excess gets 429 with Retry-After (0 = unlimited)")
	rateBurst := fs.Int("rate-burst", 0, "per-client burst on top of -rate-limit (0 = one second's worth, at least 1)")
	maxInflight := fs.Int("max-inflight", 0, "cap on concurrently executing requests, excess gets 503 (0 = uncapped)")
	shutdownTimeout := fs.Duration("shutdown-timeout", 0, "bound on the final durable drain at shutdown; dirty sessions past it are abandoned with a logged list (0 = 10s default)")
	faultSpec := fs.String("fault-spec", "", "TESTING ONLY: inject durable-store faults, e.g. 'put.err.rate=0.2,latency=5ms,seed=1' (requires -data-dir)")
	traceSample := fs.Float64("trace-sample", 1, "head-sampling rate for request tracing in [0,1]; 0 disables tracing entirely (and /debug/traces answers 404)")
	slowMS := fs.Duration("slow-ms", 500*time.Millisecond, "requests slower than this are always traced and logged with their span breakdown")
	traceBuffer := fs.Int("trace-buffer", obs.DefaultTraceBuffer, "completed traces retained for /debug/traces")
	pprofFlag := fs.Bool("pprof", false, "mount the Go profiler at /debug/pprof (refused on a non-loopback -addr unless -pprof-public)")
	pprofPublic := fs.Bool("pprof-public", false, "allow -pprof on a non-loopback listener (exposes heap contents and CPU profiles to the network)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch *logFormat {
	case "text", "json":
	default:
		return fmt.Errorf("serve: unknown -log-format %q (want text or json)", *logFormat)
	}
	log := obs.NewLogger(os.Stderr, *logFormat)
	if *traceSample < 0 || *traceSample > 1 {
		return fmt.Errorf("serve: -trace-sample %g outside [0, 1]", *traceSample)
	}
	if *pprofFlag && !*pprofPublic && !loopbackAddr(*addr) {
		return fmt.Errorf("serve: refusing -pprof on non-loopback address %q (add -pprof-public to override)", *addr)
	}

	cfg := server.Config{
		Workers:         *workers,
		TTL:             *ttl,
		MaxSessions:     *maxSessions,
		Logger:          log,
		RateLimit:       *rateLimit,
		RateBurst:       *rateBurst,
		MaxInflight:     *maxInflight,
		ShutdownTimeout: *shutdownTimeout,
		EnablePprof:     *pprofFlag,
		Tracer: obs.NewTracer(obs.TracerConfig{
			SampleRate:    *traceSample,
			SlowThreshold: *slowMS,
			BufferSize:    *traceBuffer,
		}),
	}
	if *faultSpec != "" && *dataDir == "" {
		return errors.New("serve: -fault-spec requires -data-dir")
	}
	if *dataDir != "" {
		policy, err := persist.ParseSyncPolicy(*fsync)
		if err != nil {
			return err
		}
		store, err := persist.NewFile(persist.FileOptions{
			Dir:           *dataDir,
			SnapshotEvery: *snapshotEvery,
			Sync:          policy,
		})
		if err != nil {
			return err
		}
		cfg.Persist = store
		if *faultSpec != "" {
			spec, err := persist.ParseFaultSpec(*faultSpec)
			if err != nil {
				return err
			}
			cfg.Persist = persist.NewFaultStore(store, spec)
			log.Warn("crowdtopk serve: durable-store fault injection ACTIVE — testing only", "fault_spec", *faultSpec)
		}
	}
	if *auditPath != "" {
		f, err := os.OpenFile(*auditPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("serve: opening audit log: %w", err)
		}
		defer f.Close()
		cfg.Audit = obs.NewAuditLog(obs.AuditConfig{W: f})
	}
	srv, err := server.New(cfg) // recovers all persisted sessions on boot
	if err != nil {
		return err
	}
	defer srv.Close()
	log.Info("crowdtopk serve: listening",
		"addr", *addr,
		"workers", *workers,
		"ttl", ttl.String(),
		"data_dir", *dataDir,
		"fsync", *fsync,
		"audit_log", *auditPath,
		"rate_limit", *rateLimit,
		"max_inflight", *maxInflight,
		"trace_sample", *traceSample,
		"slow_ms", slowMS.String(),
		"pprof", *pprofFlag,
	)

	// Header and idle timeouts so slow clients cannot pin connections
	// forever (slowloris); read/write timeouts stay unset because large
	// checkpoint transfers on slow links are legitimate.
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	// Graceful shutdown: on SIGINT/SIGTERM stop accepting, drain in-flight
	// requests under a deadline, then flush every dirty session to the
	// durable store (srv.Close) so nothing acked is lost.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	select {
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
		stop() // a second signal kills hot instead of waiting for the drain
		log.Info("crowdtopk serve: shutting down", "drain_timeout", "15s")
		sctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil {
			log.Warn("crowdtopk serve: shutdown", "err", err)
		}
		srv.Close() // flush dirty sessions to disk, drain the audit log, close the store
		return nil
	}
}

// loopbackAddr reports whether the listen address binds only loopback. An
// empty host (":8080") binds every interface, so it is not loopback.
func loopbackAddr(addr string) bool {
	host, _, err := net.SplitHostPort(addr)
	if err != nil || host == "" {
		return false
	}
	if host == "localhost" {
		return true
	}
	ip := net.ParseIP(host)
	return ip != nil && ip.IsLoopback()
}
