package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"crowdtopk/internal/server"
)

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "process-wide worker budget shared by all sessions' tree builds (0 = all CPUs)")
	ttl := fs.Duration("ttl", server.DefaultTTL, "evict sessions idle longer than this (0 = never)")
	maxSessions := fs.Int("max-sessions", 0, "maximum live sessions, creates beyond it get 503 (0 = unbounded)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	srv := server.New(server.Config{
		Workers:     *workers,
		TTL:         *ttl,
		MaxSessions: *maxSessions,
	})
	defer srv.Close()
	fmt.Fprintf(os.Stderr, "crowdtopk serve: listening on %s (workers=%d ttl=%s)\n", *addr, *workers, *ttl)
	// Header and idle timeouts so slow clients cannot pin connections
	// forever (slowloris); read/write timeouts stay unset because large
	// checkpoint transfers on slow links are legitimate.
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	return hs.ListenAndServe()
}
