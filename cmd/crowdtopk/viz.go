package main

import (
	"flag"
	"fmt"
	"os"

	"crowdtopk/internal/dataset"
	"crowdtopk/internal/tpo"
)

func cmdViz(args []string) error {
	fs := flag.NewFlagSet("viz", flag.ExitOnError)
	in := fs.String("in", "", "dataset CSV (required; see `crowdtopk gen`)")
	k := fs.Int("k", 3, "tree depth K")
	grid := fs.Int("grid", 0, "integration grid size")
	maxLeaves := fs.Int("maxleaves", 0, "abort above this many orderings")
	out := fs.String("out", "", "output DOT file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("viz: -in is required")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	ds, err := dataset.ReadCSV(f)
	if err != nil {
		return err
	}
	tree, err := tpo.Build(ds, *k, tpo.BuildOptions{GridSize: *grid, MaxLeaves: *maxLeaves})
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		of, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer of.Close()
		w = of
	}
	fmt.Fprintf(os.Stderr, "tree: %d orderings over %d tuples (depth %d)\n",
		tree.NumLeaves(), len(tree.Tuples()), tree.Depth())
	return tree.WriteDOT(w)
}
