package main

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"crowdtopk/internal/benchfmt"
	"crowdtopk/internal/obs"
	"crowdtopk/internal/server"
)

// TestLoadgenSmokeHTTP drives a short single-concurrency loadgen sweep
// against an httptest server and asserts the BENCH_serve.json schema.
func TestLoadgenSmokeHTTP(t *testing.T) {
	srv, err := server.New(server.Config{
		Tracer: obs.NewTracer(obs.TracerConfig{SampleRate: 1}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	opts := lgOptions{
		target:   ts.URL,
		levels:   []int{1, 2},
		duration: 500 * time.Millisecond,
		n:        8, k: 2, budget: 6,
		accuracy: 0.9,
		seed:     1,
	}
	rep, err := runLoadgen(opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkReport(t, rep, opts.levels)

	// Round-trip through the file codec: what make bench-serve writes must
	// decode back identically.
	path := filepath.Join(t.TempDir(), "BENCH_serve.json")
	if err := benchfmt.WriteFile(path, rep); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"bench"`, `"benchtime"`, `"results"`, `"name"`, `"iterations"`, `"ns_per_op"`, `"metrics"`, `"p50_ns"`, `"p95_ns"`, `"p99_ns"`, `"rps"`} {
		if !strings.Contains(string(raw), key) {
			t.Errorf("BENCH_serve.json missing %s", key)
		}
	}
	back, err := benchfmt.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Results) != len(rep.Results) {
		t.Errorf("round-trip lost results: %d != %d", len(back.Results), len(rep.Results))
	}
	// The server side must have traced the generated load.
	var tr struct {
		Count int `json:"count"`
	}
	resp, err := ts.Client().Get(ts.URL + "/debug/traces?limit=5")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	if tr.Count == 0 {
		t.Error("loadgen traffic left no traces on the target")
	}
}

// TestLoadgenSDKTarget exercises the in-process path (no HTTP).
func TestLoadgenSDKTarget(t *testing.T) {
	opts := lgOptions{
		levels:   []int{1},
		duration: 300 * time.Millisecond,
		n:        8, k: 2, budget: 6,
		accuracy: 1,
		seed:     2,
	}
	rep, err := runLoadgen(opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkReport(t, rep, opts.levels)
}

// checkReport asserts the report's structural invariants: one total row per
// level carrying throughput, and per-route rows carrying the latency
// percentiles in ascending order.
func checkReport(t *testing.T, rep *benchfmt.Report, levels []int) {
	t.Helper()
	if rep.Bench != "ServeLoadgen" {
		t.Errorf("bench name %q", rep.Bench)
	}
	totals := 0
	for _, r := range rep.Results {
		if !strings.HasPrefix(r.Name, "ServeLoadgen/c=") {
			t.Errorf("result name %q", r.Name)
		}
		if strings.HasSuffix(r.Name, "/total") {
			totals++
			for _, key := range []string{"rps", "sessions", "shed", "errors", "degraded"} {
				if _, ok := r.Metrics[key]; !ok {
					t.Errorf("%s: missing metric %q", r.Name, key)
				}
			}
			continue
		}
		if r.Iters <= 0 || r.NsPerOp <= 0 {
			t.Errorf("%s: iters=%d ns_per_op=%g", r.Name, r.Iters, r.NsPerOp)
		}
		p50, p95, p99 := r.Metrics["p50_ns"], r.Metrics["p95_ns"], r.Metrics["p99_ns"]
		if p50 <= 0 || p95 < p50 || p99 < p95 {
			t.Errorf("%s: percentiles not ascending: p50=%g p95=%g p99=%g", r.Name, p50, p95, p99)
		}
		if r.Metrics["rps"] <= 0 {
			t.Errorf("%s: rps %g", r.Name, r.Metrics["rps"])
		}
	}
	if totals != len(levels) {
		t.Errorf("%d total rows for %d levels", totals, len(levels))
	}
}
