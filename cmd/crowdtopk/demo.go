package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"text/tabwriter"

	"crowdtopk/internal/crowd"
	"crowdtopk/internal/dataset"
	"crowdtopk/internal/engine"
	"crowdtopk/internal/service"
	"crowdtopk/internal/uncertainty"
)

func cmdDemo(args []string) error {
	fs := flag.NewFlagSet("demo", flag.ExitOnError)
	n := fs.Int("n", 6, "number of tuples")
	k := fs.Int("k", 3, "result size K")
	budget := fs.Int("budget", 8, "question budget")
	alg := fs.String("alg", engine.AlgT1On, "algorithm")
	measure := fs.String("measure", "MPO", "uncertainty measure")
	accuracy := fs.Float64("accuracy", 1.0, "simulated worker accuracy (0,1]")
	votes := fs.Int("votes", 1, "workers per question (majority vote)")
	width := fs.Float64("width", 2.0, "score support width")
	seed := fs.Int64("seed", 7, "seed")
	interactive := fs.Bool("interactive", false, "you are the crowd: answer the questions on stdin")
	if err := fs.Parse(args); err != nil {
		return err
	}

	ds, err := dataset.Generate(dataset.Spec{N: *n, Width: *width, Seed: *seed})
	if err != nil {
		return err
	}
	m, err := uncertainty.New(*measure)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))
	truth := crowd.SampleTruth(ds, rng)

	fmt.Printf("dataset: %d tuples with uncertain scores; query: top-%d, budget %d, %s/%s crowd accuracy %.2f\n",
		*n, *k, *budget, *alg, *measure, *accuracy)
	tw := tabwriter.NewWriter(os.Stdout, 4, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "tuple\tscore distribution\trealized score")
	for i, d := range ds {
		fmt.Fprintf(tw, "t%d\t%s\t%.3f\n", i, d, truth.Scores[i])
	}
	tw.Flush()

	if *interactive {
		// Interactive mode is a service client: the transport-agnostic core
		// plans the questions and conditions the orderings, the terminal
		// user is the crowd — the same loop a platform integration runs
		// over HTTP or the SDK.
		svc, err := service.New(service.Config{})
		if err != nil {
			return err
		}
		defer svc.Close()
		names := make([]string, len(ds))
		for i, d := range ds {
			names[i] = fmt.Sprintf("t%d %s", i, d)
		}
		info, err := svc.CreateOrRestore(context.Background(), service.CreateRequest{
			Dists: ds, Names: names, K: *k, Budget: *budget,
			Algorithm: *alg, Measure: *measure, Seed: *seed,
		})
		if err != nil {
			return err
		}
		client := newInteractiveClient(os.Stdin, os.Stdout)
		if err := client.run(svc, info.ID); err != nil {
			return err
		}
		res, err := svc.Result(context.Background(), info.ID)
		if err != nil {
			return err
		}
		fmt.Printf("\npossible orderings:  %d (asked %d questions, %s)\n", res.Orderings, res.Asked, res.State)
		fmt.Printf("answer:              %v (resolved=%v, uncertainty %.4f)\n", res.Ranking, res.Resolved, res.Uncertainty)
		return nil
	}

	var cr crowd.Crowd
	if *accuracy >= 1 && *votes <= 1 {
		cr = &crowd.PerfectOracle{Truth: truth}
	} else {
		pf, err := crowd.NewUniformPlatform(truth, 12, *accuracy, rng)
		if err != nil {
			return err
		}
		pf.Votes = *votes
		cr = pf
	}
	res, err := engine.Run(engine.Config{
		Dists: ds, K: *k, Budget: *budget, Algorithm: *alg,
		Measure: m, Crowd: cr, Truth: truth, Seed: *seed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("\nreal top-%d ordering: %v\n", *k, truth.TopK(*k))
	fmt.Printf("possible orderings:  %d → %d (asked %d questions)\n",
		res.InitialLeaves, res.FinalLeaves, res.Asked)
	fmt.Printf("distance to truth:   %.4f → %.4f\n", res.InitialDistance, res.FinalDistance)
	fmt.Printf("answer:              %v (resolved=%v)\n", res.FinalOrdering, res.Resolved)
	return nil
}
