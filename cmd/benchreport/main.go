// Command benchreport runs the selection, figure and persistence benchmarks
// with -benchmem and writes the parsed results to a machine-readable JSON
// file (BENCH_selection.json at the repository root, by convention). With
// -compare it also diffs the fresh run against a previously recorded file
// and prints per-benchmark ns/op and allocs/op ratios, so CI can surface
// hot-path regressions in PRs at a glance. The comparison is informational:
// hardware differs between the recording and CI machines, so it never fails
// the build on its own.
//
// Usage:
//
//	go run ./cmd/benchreport                        # 20x iterations, write BENCH_selection.json
//	go run ./cmd/benchreport -benchtime 1x \
//	    -out /tmp/bench.json -compare BENCH_selection.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"

	"crowdtopk/internal/benchfmt"
)

// defaultBench covers the residual-sweep primitives, the end-to-end figure
// benchmark they dominate, the durability family (WAL append, snapshot
// compaction, cold recovery), and the incremental family (live-engine
// per-answer update vs. full rebuild at several leaf-set sizes).
const defaultBench = "BenchmarkSelectionPrimitives|BenchmarkFig1b|BenchmarkPersist|BenchmarkIncremental"

// defaultPkgs are the packages holding those families (comma-separated for
// the -pkg flag; benchmark names are globally unique, so one report file
// can hold all of them).
const defaultPkgs = ".,./internal/persist"

func main() {
	bench := flag.String("bench", defaultBench, "benchmark regexp passed to go test -bench")
	benchtime := flag.String("benchtime", "20x", "go test -benchtime value")
	out := flag.String("out", "BENCH_selection.json", "output JSON path")
	compare := flag.String("compare", "", "previously recorded report to diff against (informational)")
	pkg := flag.String("pkg", defaultPkgs, "comma-separated packages to benchmark")
	flag.Parse()

	args := []string{"test", "-run", "^$",
		"-bench", *bench, "-benchmem", "-benchtime", *benchtime, "-count", "1"}
	args = append(args, strings.Split(*pkg, ",")...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: go test: %v\n%s", err, raw)
		os.Exit(1)
	}
	rep := parse(string(raw))
	rep.Bench = *bench
	rep.Benchtime = *benchtime

	if err := benchfmt.WriteFile(*out, rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("benchreport: %d benchmarks → %s\n", len(rep.Results), *out)

	if *compare != "" {
		if err := diff(*compare, rep); err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: compare: %v\n", err)
		}
	}
}

// parse extracts benchmark lines from go test output. Format per line:
//
//	BenchmarkName-8   <iters>   <v> ns/op   [<v> unit]...
func parse(out string) *benchfmt.Report {
	rep := &benchfmt.Report{}
	for _, line := range strings.Split(out, "\n") {
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		name := fields[0]
		// Strip the -<GOMAXPROCS> suffix, but only when it is all digits:
		// benchmark names themselves contain hyphens (T1-on, TB-off).
		if i := strings.LastIndex(name, "-"); i > 0 && i < len(name)-1 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := benchfmt.Result{Name: name, Iters: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BPerOp = v
			case "allocs/op":
				r.Allocs = v
			default:
				if r.Metrics == nil {
					r.Metrics = map[string]float64{}
				}
				r.Metrics[unit] = v
			}
		}
		rep.Results = append(rep.Results, r)
	}
	return rep
}

// diff prints fresh/recorded ratios for benchmarks present in both reports.
func diff(path string, fresh *benchfmt.Report) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base benchfmt.Report
	if err := json.Unmarshal(data, &base); err != nil {
		return err
	}
	byName := make(map[string]benchfmt.Result, len(base.Results))
	for _, r := range base.Results {
		byName[r.Name] = r
	}
	fmt.Printf("comparison against %s (ratio >1 = slower/more than recorded):\n", path)
	for _, r := range fresh.Results {
		b, ok := byName[r.Name]
		if !ok || b.NsPerOp == 0 {
			continue
		}
		line := fmt.Sprintf("  %-60s ns/op ×%.2f", r.Name, r.NsPerOp/b.NsPerOp)
		if b.Allocs > 0 {
			line += fmt.Sprintf("  allocs/op ×%.2f", r.Allocs/b.Allocs)
		}
		fmt.Println(line)
	}
	return nil
}
