// BenchmarkIncremental measures the steady-state per-answer selection cost
// of the live (incremental) engine against a full rebuild per answer — the
// serving-path scenario: a long-lived session receives trusted answers one at
// a time and re-plans after each. The live engine applies each answer as a
// dynamic update (tombstoned leaves, patched class aggregates) and reuses the
// arena for the next sweep; the rebuild family reconstructs the flat engine
// from the leaf set every time, as every selection step paid before the live
// engine existed.
package crowdtopk_test

import (
	"fmt"
	"testing"

	"crowdtopk/internal/dataset"
	"crowdtopk/internal/selection"
	"crowdtopk/internal/tpo"
	"crowdtopk/internal/uncertainty"
)

// incrAnswerSeq precomputes a fixed trusted-answer sequence for the workload:
// at each step the relevant question (and direction) killing the fewest
// leaves is chosen — the low-information answers a real crowd mostly returns
// — so tombstones accumulate slowly and the leaf set stays near its initial
// size for the whole sequence (the steady state the live engine targets).
// Tree construction is deterministic, so the sequence replays identically on
// a fresh build.
func incrAnswerSeq(b *testing.B, tree *tpo.Tree, steps int) []tpo.Answer {
	b.Helper()
	seq := make([]tpo.Answer, 0, steps)
	for len(seq) < steps {
		ls := tree.LeafSet()
		qs := ls.RelevantQuestions()
		if len(qs) == 0 {
			break
		}
		best, bestKill := tpo.Answer{}, -1
		for _, q := range qs {
			cons, incons := 0, 0
			ansYes := tpo.Answer{Q: q, Yes: true}
			for _, p := range ls.Paths {
				switch tpo.PathConsistency(p, ansYes) {
				case tpo.Consistent:
					cons++
				case tpo.Inconsistent:
					incons++
				}
			}
			// Answering Yes kills the inconsistent leaves and vice versa.
			if bestKill < 0 || incons < bestKill {
				best, bestKill = ansYes, incons
			}
			if cons < bestKill {
				best, bestKill = tpo.Answer{Q: q, Yes: false}, cons
			}
		}
		if err := tree.Prune(best); err != nil {
			b.Fatal(err)
		}
		seq = append(seq, best)
	}
	return seq
}

func BenchmarkIncremental(b *testing.B) {
	const k, steps = 5, 8
	for _, n := range []int{12, 16, 20} {
		ds, err := dataset.Generate(dataset.Spec{N: n, Width: 3.2, Seed: 2016})
		if err != nil {
			b.Fatal(err)
		}
		scratch, err := tpo.Build(ds, k, tpo.BuildOptions{})
		if err != nil {
			b.Fatal(err)
		}
		leaves := scratch.NumLeaves()
		seq := incrAnswerSeq(b, scratch, steps)
		if len(seq) < steps {
			b.Fatalf("N=%d: workload resolved after %d answers", n, len(seq))
		}
		for _, mName := range []string{"H", "MPO"} {
			meas, err := uncertainty.New(mName)
			if err != nil {
				b.Fatal(err)
			}
			for _, fam := range []string{"update", "rebuild"} {
				fam := fam
				b.Run(fmt.Sprintf("%s/%s/N=%d", fam, mName, n), func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						// Per-iteration setup is untimed: the steady state
						// under measurement starts with a session already
						// attached, mid-query.
						b.StopTimer()
						tree, err := tpo.Build(ds, k, tpo.BuildOptions{})
						if err != nil {
							b.Fatal(err)
						}
						ctx := &selection.Context{Tree: tree, Measure: meas}
						if fam == "update" {
							ctx.Live = selection.NewLiveEngine()
							if qs, _ := selection.QuestionResiduals(tree.LeafSet(), ctx); len(qs) == 0 {
								b.Fatal("no questions before the sequence")
							}
						}
						for _, a := range seq {
							// The tree transition and its snapshot are paid
							// identically by both families; only the
							// selection step — bring the engine current and
							// sweep (update) versus build-and-sweep
							// (rebuild) — is under the timer.
							if err := tree.Prune(a); err != nil {
								b.Fatal(err)
							}
							ls := tree.LeafSet()
							b.StartTimer()
							ctx.Live.Apply(ls, true)
							qs, _ := selection.QuestionResiduals(ls, ctx)
							b.StopTimer()
							if len(qs) == 0 {
								b.Fatal("no questions left mid-sequence")
							}
						}
					}
					// ns/op covers the whole sequence; expose the per-answer
					// denominator and workload scale alongside it.
					b.ReportMetric(float64(len(seq)), "answers/op")
					b.ReportMetric(float64(leaves), "leaves")
				})
			}
		}
	}
}
