package crowdtopk_test

import (
	"errors"
	"strings"
	"testing"

	crowdtopk "crowdtopk"
)

// TestScoreConstructorErrorsSurfaceCause: invalid construction parameters
// must travel inside the Uncertain and come out of NewDataset wrapped in
// ErrInvalidScore with the underlying reason, not as a bare "invalid score
// at index i".
func TestScoreConstructorErrorsSurfaceCause(t *testing.T) {
	cases := []struct {
		name  string
		score crowdtopk.Uncertain
		want  string // substring of the underlying cause
	}{
		{"negative sigma", crowdtopk.GaussianScore(1, -0.5), "σ=-0.5"},
		{"zero width", crowdtopk.UniformScore(1, 0), ""},
		{"bad mode", crowdtopk.TriangularScore(0, 5, 1), ""},
		{"bad histogram", crowdtopk.HistogramScore([]float64{0, 1}, []float64{-1}), ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if c.score.Valid() {
				t.Fatal("score unexpectedly valid")
			}
			if c.score.Err() == nil {
				t.Fatal("invalid score carries no error")
			}
			_, err := crowdtopk.NewDataset([]crowdtopk.Uncertain{
				crowdtopk.UniformScore(1, 1), c.score,
			})
			if !errors.Is(err, crowdtopk.ErrInvalidScore) {
				t.Fatalf("err = %v, want ErrInvalidScore", err)
			}
			if !strings.Contains(err.Error(), "index 1") {
				t.Errorf("error %q does not locate the bad score", err)
			}
			if !strings.Contains(err.Error(), c.score.Err().Error()) {
				t.Errorf("error %q does not carry the cause %q", err, c.score.Err())
			}
			if c.want != "" && !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
		})
	}
	// The zero Uncertain (never constructed) still errors, with a distinct
	// explanation.
	_, err := crowdtopk.NewDataset([]crowdtopk.Uncertain{{}})
	if !errors.Is(err, crowdtopk.ErrInvalidScore) {
		t.Fatalf("zero value err = %v, want ErrInvalidScore", err)
	}
}

// TestMeasureORAFootrule: the CLI advertises ORA-FR; the public constant
// must drive Process end to end.
func TestMeasureORAFootrule(t *testing.T) {
	ds := testDataset(t)
	cr, _, err := crowdtopk.SimulatedCrowd(ds, 1, 1, 11)
	if err != nil {
		t.Fatal(err)
	}
	res, err := crowdtopk.Process(ds, crowdtopk.Query{
		K: 3, Budget: 6, Seed: 11, Measure: crowdtopk.MeasureORAFootrule,
	}, cr)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ranking) != 3 {
		t.Fatalf("ranking = %v, want length 3", res.Ranking)
	}
}

// TestSimulatedCrowdValidatesVotes: non-positive vote counts are rejected
// instead of being silently reinterpreted.
func TestSimulatedCrowdValidatesVotes(t *testing.T) {
	ds := testDataset(t)
	for _, votes := range []int{0, -3} {
		if _, _, err := crowdtopk.SimulatedCrowd(ds, 0.8, votes, 1); err == nil {
			t.Errorf("votes=%d: expected an error", votes)
		}
	}
	// Even counts are legal: the platform rounds them up to the next odd
	// panel (see internal/crowd).
	if _, _, err := crowdtopk.SimulatedCrowd(ds, 0.8, 2, 1); err != nil {
		t.Errorf("votes=2: %v", err)
	}
}

// TestProcessWorkersDeterminism: a query answered with a sequential build
// and with a 4-worker build must produce the identical result — rankings,
// question counts and surviving orderings all pinned by the same tree.
func TestProcessWorkersDeterminism(t *testing.T) {
	run := func(workers int) *crowdtopk.Result {
		t.Helper()
		ds := testDataset(t)
		cr, _, err := crowdtopk.SimulatedCrowd(ds, 1, 1, 99)
		if err != nil {
			t.Fatal(err)
		}
		res, err := crowdtopk.Process(ds, crowdtopk.Query{K: 3, Budget: 12, Seed: 99, Workers: workers}, cr)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := run(1)
	par := run(4)
	if len(seq.Ranking) != len(par.Ranking) {
		t.Fatalf("rankings differ: %v vs %v", seq.Ranking, par.Ranking)
	}
	for i := range seq.Ranking {
		if seq.Ranking[i] != par.Ranking[i] {
			t.Fatalf("rankings differ: %v vs %v", seq.Ranking, par.Ranking)
		}
	}
	if seq.QuestionsAsked != par.QuestionsAsked || seq.Orderings != par.Orderings ||
		seq.Resolved != par.Resolved || seq.Uncertainty != par.Uncertainty {
		t.Fatalf("results differ: %+v vs %+v", seq, par)
	}
}
