package sdk_test

import (
	"bytes"
	"errors"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	crowdtopk "crowdtopk"
	"crowdtopk/sdk"
)

func testDataset(t *testing.T) *crowdtopk.Dataset {
	t.Helper()
	ds, err := crowdtopk.NewDataset([]crowdtopk.Uncertain{
		crowdtopk.UniformScore(1.0, 1.6),
		crowdtopk.UniformScore(1.4, 1.6),
		crowdtopk.UniformScore(1.8, 1.6),
		crowdtopk.UniformScore(2.2, 1.6),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.SetNames([]string{"a", "b", "c", "d"}); err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestLifecycle drives the full in-memory lifecycle through the public
// surface: create, questions, answers, result, checkpoint/restore, list,
// stats, delete.
func TestLifecycle(t *testing.T) {
	client, err := sdk.New(sdk.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	ds := testDataset(t)

	info, err := client.CreateSession(sdk.SessionConfig{
		Dataset: ds,
		Query:   crowdtopk.Query{K: 2, Budget: 6, Seed: 11},
	})
	if err != nil {
		t.Fatal(err)
	}
	if info.Tuples != 4 || info.Budget != 6 || info.ID == "" {
		t.Fatalf("create info %+v", info)
	}

	qs, err := client.Questions(info.ID, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs.Questions) != 1 {
		t.Fatalf("n=1 returned %d questions", len(qs.Questions))
	}
	q := qs.Questions[0]
	if !strings.Contains(q.Prompt, "rank above") {
		t.Fatalf("prompt %q not rendered through names", q.Prompt)
	}

	ack, err := client.SubmitAnswers(info.ID, crowdtopk.Answer{Q: crowdtopk.Question{I: q.I, J: q.J}, Yes: true})
	if err != nil {
		t.Fatal(err)
	}
	if ack.Accepted != 1 || ack.Asked != 1 {
		t.Fatalf("ack %+v", ack)
	}

	res, err := client.Result(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ranking) != 2 || len(res.Names) != 2 {
		t.Fatalf("result %+v", res)
	}

	var cp bytes.Buffer
	if err := client.Checkpoint(info.ID, &cp); err != nil {
		t.Fatal(err)
	}
	restored, err := client.RestoreSession(cp.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if restored.ID == info.ID || restored.Asked != 1 {
		t.Fatalf("restored %+v", restored)
	}

	list := client.List(0)
	if list.Total != 2 || len(list.Sessions) != 2 {
		t.Fatalf("list %+v", list)
	}
	if st := client.Stats(); st.Sessions != 2 || st.Store.Backend != "memory" {
		t.Fatalf("stats %+v", st)
	}

	for _, id := range []string{info.ID, restored.ID} {
		if err := client.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := client.Delete(info.ID); !errors.Is(err, sdk.ErrNotFound) {
		t.Fatalf("double delete: %v, want ErrNotFound", err)
	}
}

// TestTypedErrors pins the public failure taxonomy: ErrNotFound, ErrFull,
// and BatchError exposing the partial-accept count with an errors.Is-able
// cause.
func TestTypedErrors(t *testing.T) {
	client, err := sdk.New(sdk.Options{MaxSessions: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	ds := testDataset(t)

	if _, err := client.Result("s_nope"); !errors.Is(err, sdk.ErrNotFound) {
		t.Fatalf("unknown id: %v, want ErrNotFound", err)
	}

	cfg := sdk.SessionConfig{Dataset: ds, Query: crowdtopk.Query{K: 2, Budget: 6}}
	info, err := client.CreateSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.CreateSession(cfg); !errors.Is(err, sdk.ErrFull) {
		t.Fatalf("over-cap create: %v, want ErrFull", err)
	}

	// A batch that fails on its second answer keeps the first: the error
	// carries the accepted count and unwraps to its cause.
	qs, err := client.Questions(info.ID, 1)
	if err != nil {
		t.Fatal(err)
	}
	q := qs.Questions[0]
	_, err = client.SubmitAnswers(info.ID,
		crowdtopk.Answer{Q: crowdtopk.Question{I: q.I, J: q.J}, Yes: true},
		crowdtopk.Answer{Q: crowdtopk.Question{I: 0, J: 0}, Yes: true},
	)
	var batch *sdk.BatchError
	if !errors.As(err, &batch) {
		t.Fatalf("self-comparison: %v, want *sdk.BatchError", err)
	}
	if batch.Accepted != 1 {
		t.Fatalf("accepted = %d, want 1", batch.Accepted)
	}
	if res, err := client.Result(info.ID); err != nil || res.Asked != 1 {
		t.Fatalf("first answer lost: asked=%d err=%v", res.Asked, err)
	}

	if _, err := client.CreateSession(sdk.SessionConfig{Query: crowdtopk.Query{K: 1, Budget: 1}}); err == nil {
		t.Fatal("nil dataset accepted")
	}
	if _, err := client.RestoreSession(nil); err == nil {
		t.Fatal("empty checkpoint accepted")
	}
}

// TestNoNetHTTPInAPI enforces the layering contract mechanically: the sdk
// package must not import net/http (directly — transitive purity is implied
// by internal/service's own import set, which go vet's import graph keeps
// honest). Embedders get the serving stack without pulling in a server.
func TestNoNetHTTPInAPI(t *testing.T) {
	files, err := filepath.Glob("*.go")
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	for _, name := range files {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		src, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		f, err := parser.ParseFile(fset, name, src, parser.ImportsOnly)
		if err != nil {
			t.Fatal(err)
		}
		for _, imp := range f.Imports {
			if strings.Contains(imp.Path.Value, "net/http") {
				t.Errorf("%s imports %s", name, imp.Path.Value)
			}
		}
	}
}

// TestMetricsAndHealth pins the embedded observability surface: Metrics()
// returns a well-formed Prometheus exposition reflecting this client's
// sessions, and Health() reports readiness with reasons when unready.
func TestMetricsAndHealth(t *testing.T) {
	client, err := sdk.New(sdk.Options{MaxSessions: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	if h := client.Health(); !h.Ready || !h.BootScanDone || len(h.Reasons) != 0 {
		t.Fatalf("fresh client not ready: %+v", h)
	}
	if _, err := client.CreateSession(sdk.SessionConfig{
		Dataset: testDataset(t), Query: crowdtopk.Query{K: 2, Budget: 4},
	}); err != nil {
		t.Fatal(err)
	}
	if h := client.Health(); h.Ready || !h.PoolSaturated || len(h.Reasons) == 0 {
		t.Fatalf("saturated client still ready: %+v", h)
	}

	raw, err := client.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		"# TYPE crowdtopk_sessions_live gauge",
		"crowdtopk_sessions_live 1",
		"crowdtopk_pool_saturation",
		"crowdtopk_pcache_hit_rate",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("Metrics() missing %q", want)
		}
	}
}
