// Package sdk embeds the crowdtopk serving stack in-process: the same
// session lifecycle the HTTP API offers — create or restore, question
// delivery, answer intake, results, checkpoints, deletion, listing, stats —
// as direct Go calls on a Client, with no server, no sockets and no
// net/http anywhere in its API.
//
// A Client wraps the same transport-agnostic core (internal/service) that
// backs `crowdtopk serve`, so embedders get the full production behavior,
// not a toy: a concurrency-safe session store with TTL eviction, a shared
// worker budget across all sessions' tree builds, load shedding at the
// session cap, and — with Options.Storage — the durable two-tier store
// (write-ahead-logged answers, snapshot compaction, lazy hydration,
// eviction-to-disk, crash recovery on reopen). The parity suite in
// internal/server drives the HTTP e2e tests against this package too, so
// the two front doors cannot drift.
//
// Minimal lifecycle:
//
//	client, _ := sdk.New(sdk.Options{})
//	defer client.Close()
//	info, _ := client.CreateSession(sdk.SessionConfig{Dataset: ds, Query: crowdtopk.Query{K: 3, Budget: 20}})
//	for {
//		qs, _ := client.Questions(info.ID, 0)
//		if len(qs.Questions) == 0 {
//			break
//		}
//		for _, q := range qs.Questions {
//			ans := myCrowd.Ask(crowdtopk.Question{I: q.I, J: q.J})
//			client.SubmitAnswers(info.ID, ans)
//		}
//	}
//	res, _ := client.Result(info.ID)
//
// Use the root crowdtopk package instead when one synchronous query with a
// blocking Crowd callback is all you need (Process), or a single resumable
// session without ids, eviction or persistence (NewSession).
package sdk

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"time"

	crowdtopk "crowdtopk"
	"crowdtopk/internal/bridge"
	"crowdtopk/internal/persist"
	"crowdtopk/internal/service"
)

// Options tunes the embedded service core.
type Options struct {
	// Workers is the process-wide worker budget shared by every session's
	// tree builds and extensions (0 = all CPUs).
	Workers int
	// TTL evicts sessions idle longer than this (0 = never evict). With
	// Storage set, eviction moves the session to disk; without it the
	// session is dropped for good.
	TTL time.Duration
	// MaxSessions bounds live in-memory sessions; creates beyond it fail
	// with ErrFull (0 = unbounded).
	MaxSessions int
	// Storage optionally makes sessions durable on the local filesystem.
	Storage *Storage
	// Logger receives the core's structured operational logs (boot scan,
	// recovery, hydration, persist failures, evictions). nil disables
	// logging.
	Logger *slog.Logger
	// ShutdownTimeout bounds how long Close waits for the final durable
	// drain (0 = the service default of 10s). Sessions still dirty at the
	// deadline are abandoned with a logged list of ids — a wedged disk must
	// not hang the embedder's shutdown forever.
	ShutdownTimeout time.Duration
}

// Storage configures the durable file-backed session store: one directory
// per session holding a full snapshot plus a CRC-framed write-ahead log of
// the answers accepted since. Reopening a Client on the same directory
// recovers every persisted session, exactly like `crowdtopk serve
// -data-dir` does after a crash.
type Storage struct {
	// Dir is the data directory; sessions live under Dir/sessions/<id>/.
	Dir string
	// Fsync is the WAL durability policy: "always" (default — each
	// accepted answer batch survives power loss) or "none" (page cache,
	// flushed on Close).
	Fsync string
	// SnapshotEvery compacts a session's WAL into a fresh snapshot after
	// this many appended answers (0 = the store default).
	SnapshotEvery int
}

// Typed failures, for errors.Is. Session-level causes surface as the root
// package's errors (crowdtopk.ErrSessionDone, crowdtopk.ErrUnknownQuestion).
var (
	// ErrNotFound reports a session id the client does not hold (never
	// created, deleted, or evicted without durable storage).
	ErrNotFound = service.ErrNotFound
	// ErrFull reports that the client is at its MaxSessions capacity.
	ErrFull = service.ErrFull
	// ErrQuarantined reports a session whose durable copy was corrupt and
	// has been moved to the data dir's quarantine area. Unlike a transient
	// storage fault the condition is permanent until an operator intervenes
	// (crowdtopk fsck, restore from quarantine/, or Delete).
	ErrQuarantined = service.ErrQuarantined
)

// BatchError reports an answer batch that failed partway: Accepted answers
// were applied (and stay applied) before Err stopped the batch. Unwrap
// exposes Err so errors.Is classifies the batch by its cause.
type BatchError struct {
	Accepted int
	Err      error
}

func (e *BatchError) Error() string {
	return fmt.Sprintf("%v (after %d accepted answers)", e.Err, e.Accepted)
}

func (e *BatchError) Unwrap() error { return e.Err }

// Client is an in-process crowdtopk service. Create one with New; Close it
// when done (stopping background eviction and, with Storage, flushing every
// acknowledged answer to disk). All methods are safe for concurrent use.
type Client struct {
	svc *service.Service
}

// New builds a Client. With Options.Storage set it scans the directory so
// every previously persisted session is immediately addressable (sessions
// hydrate lazily on first access).
func New(opts Options) (*Client, error) {
	cfg := service.Config{
		Workers:         opts.Workers,
		TTL:             opts.TTL,
		MaxSessions:     opts.MaxSessions,
		Logger:          opts.Logger,
		ShutdownTimeout: opts.ShutdownTimeout,
	}
	if opts.Storage != nil {
		policy := persist.SyncAlways
		if opts.Storage.Fsync != "" {
			var err error
			if policy, err = persist.ParseSyncPolicy(opts.Storage.Fsync); err != nil {
				return nil, fmt.Errorf("sdk: %w", err)
			}
		}
		store, err := persist.NewFile(persist.FileOptions{
			Dir:           opts.Storage.Dir,
			SnapshotEvery: opts.Storage.SnapshotEvery,
			Sync:          policy,
		})
		if err != nil {
			return nil, fmt.Errorf("sdk: opening storage: %w", err)
		}
		cfg.Persist = store
	}
	svc, err := service.New(cfg)
	if err != nil {
		return nil, err
	}
	return &Client{svc: svc}, nil
}

// Close stops background eviction, flushes every dirty session to durable
// storage (when configured) and releases it. Idempotent.
func (c *Client) Close() { c.svc.Close() }

// Flush synchronously pushes every pending durable write to storage and
// syncs it — the durability barrier under Fsync "none". A no-op without
// Storage.
func (c *Client) Flush() { c.svc.Flush() }

// SessionCount reports the number of live (in-memory) sessions.
func (c *Client) SessionCount() int { return c.svc.SessionCount() }

// SessionConfig describes a new session.
type SessionConfig struct {
	// Dataset is the uncertain-score relation to query (required).
	Dataset *crowdtopk.Dataset
	// Query tunes K, Budget, Algorithm, Measure, RoundSize, GridSize,
	// MaxOrderings and Seed exactly as crowdtopk.Process does.
	// Query.Workers is ignored: sessions share the Client's worker budget.
	Query crowdtopk.Query
	// Reliability is the probability a submitted answer is correct: 1 —
	// and, for convenience, 0 — trusts answers outright, values in (0, 1)
	// apply the paper's Bayesian reweighting.
	Reliability float64
}

// SessionInfo describes a session right after creation or restore.
type SessionInfo struct {
	ID        string
	State     crowdtopk.SessionState
	Tuples    int
	Asked     int
	Budget    int
	Pending   int
	Orderings int
}

// CreateSession starts a managed asynchronous top-K query and returns its
// id and initial state. Creates beyond MaxSessions fail with ErrFull before
// any tree is built.
func (c *Client) CreateSession(cfg SessionConfig) (SessionInfo, error) {
	dists := bridge.DatasetDists(cfg.Dataset)
	if len(dists) == 0 {
		return SessionInfo{}, fmt.Errorf("sdk: nil or empty dataset")
	}
	info, err := c.svc.CreateOrRestore(context.Background(), service.CreateRequest{
		Dists:        dists,
		Names:        bridge.DatasetNames(cfg.Dataset),
		K:            cfg.Query.K,
		Budget:       cfg.Query.Budget,
		Algorithm:    string(cfg.Query.Algorithm),
		Measure:      string(cfg.Query.Measure),
		Reliability:  cfg.Reliability,
		RoundSize:    cfg.Query.RoundSize,
		Seed:         cfg.Query.Seed,
		GridSize:     cfg.Query.GridSize,
		MaxOrderings: cfg.Query.MaxOrderings,
	})
	if err != nil {
		return SessionInfo{}, err
	}
	return sessionInfo(info), nil
}

// RestoreSession resumes a session from a checkpoint envelope (produced by
// Checkpoint here, by the HTTP API, or by crowdtopk.Session.Checkpoint) and
// registers it under a fresh id. The envelope is self-contained and
// verified against its schema version and dataset digest.
func (c *Client) RestoreSession(checkpoint []byte) (SessionInfo, error) {
	if len(checkpoint) == 0 {
		return SessionInfo{}, fmt.Errorf("sdk: empty checkpoint")
	}
	info, err := c.svc.CreateOrRestore(context.Background(), service.CreateRequest{Checkpoint: checkpoint})
	if err != nil {
		return SessionInfo{}, err
	}
	return sessionInfo(info), nil
}

func sessionInfo(info service.SessionInfo) SessionInfo {
	return SessionInfo{
		ID:        info.ID,
		State:     crowdtopk.SessionState(info.State),
		Tuples:    info.Tuples,
		Asked:     info.Asked,
		Budget:    info.Budget,
		Pending:   info.Pending,
		Orderings: info.Orderings,
	}
}

// Question is one pending crowd task, with a prompt rendered through the
// dataset's tuple names.
type Question struct {
	I, J   int
	Prompt string
}

// Questions is the question-delivery view: the pending questions plus the
// lifecycle snapshot they were captured under.
type Questions struct {
	State     crowdtopk.SessionState
	Questions []Question
	Asked     int
	Budget    int
}

// Questions returns up to n pending questions (n < 1 returns all). The call
// is idempotent: questions stay pending until answered, so a crashed
// embedder pulls the same work again.
func (c *Client) Questions(id string, n int) (Questions, error) {
	view, err := c.svc.Questions(context.Background(), id, n)
	if err != nil {
		return Questions{}, err
	}
	out := Questions{
		State:     crowdtopk.SessionState(view.State),
		Questions: make([]Question, len(view.Questions)),
		Asked:     view.Asked,
		Budget:    view.Budget,
	}
	for i, q := range view.Questions {
		out.Questions[i] = Question{I: q.I, J: q.J, Prompt: q.Prompt}
	}
	return out, nil
}

// Ack acknowledges a fully accepted answer batch.
type Ack struct {
	State          crowdtopk.SessionState
	Accepted       int
	Asked          int
	Pending        int
	Contradictions int
}

// SubmitAnswers applies crowd answers in order. A batch that fails partway
// returns a *BatchError carrying how many answers were applied before the
// failure; the applied answers stay applied. Causes classify with
// errors.Is: crowdtopk.ErrSessionDone, crowdtopk.ErrUnknownQuestion.
func (c *Client) SubmitAnswers(id string, answers ...crowdtopk.Answer) (Ack, error) {
	batch := make([]service.Answer, len(answers))
	for i, a := range answers {
		batch[i] = service.Answer{I: a.Q.I, J: a.Q.J, Yes: a.Yes}
	}
	view, err := c.svc.Answers(context.Background(), id, batch)
	if err != nil {
		var be *service.BatchError
		if errors.As(err, &be) {
			return Ack{}, &BatchError{Accepted: be.Accepted, Err: be.Err}
		}
		return Ack{}, err
	}
	return Ack{
		State:          crowdtopk.SessionState(view.State),
		Accepted:       view.Accepted,
		Asked:          view.Asked,
		Pending:        view.Pending,
		Contradictions: view.Contradictions,
	}, nil
}

// Result is the session's current top-K belief.
type Result struct {
	State          crowdtopk.SessionState
	Ranking        []int
	Names          []string
	Resolved       bool
	Orderings      int
	Uncertainty    float64
	Asked          int
	Budget         int
	Pending        int
	Contradictions int
}

// Result reports the current top-K belief. It is valid in every state:
// mid-query it reflects the answers absorbed so far.
func (c *Client) Result(id string) (Result, error) {
	view, err := c.svc.Result(context.Background(), id)
	if err != nil {
		return Result{}, err
	}
	return Result{
		State:          crowdtopk.SessionState(view.State),
		Ranking:        view.Ranking,
		Names:          view.Names,
		Resolved:       view.Resolved,
		Orderings:      view.Orderings,
		Uncertainty:    view.Uncertainty,
		Asked:          view.Asked,
		Budget:         view.Budget,
		Pending:        view.Pending,
		Contradictions: view.Contradictions,
	}, nil
}

// Checkpoint writes the session's versioned JSON envelope to w.
func (c *Client) Checkpoint(id string, w io.Writer) error {
	return c.svc.Checkpoint(context.Background(), id, w)
}

// Delete drops the session from memory and, with Storage, from disk.
// Deleting an unknown id returns ErrNotFound.
func (c *Client) Delete(id string) error { return c.svc.Delete(context.Background(), id) }

// ListEntry is one row of the session listing. State, Asked and Pending are
// populated for live (hydrated) sessions only: reading them off a
// disk-resident session would force the hydration the listing avoids.
type ListEntry struct {
	ID          string
	State       crowdtopk.SessionState
	Asked       int
	Pending     int
	IdleSeconds float64
	Persisted   bool
	Hydrated    bool
	// PersistError is the session's most recent durable-write failure, empty
	// once a write succeeds again — the per-session view of the store-wide
	// PersistErrors counter.
	PersistError string
	// QuarantineReason is set (with State "quarantined") when the session's
	// durable copy was corrupt and has been moved to the quarantine area.
	QuarantineReason string
}

// List is one page of the session listing.
type List struct {
	Sessions []ListEntry
	// Total is the number of known sessions, which may exceed the page.
	Total int
}

// List snapshots up to limit known sessions (limit < 1 applies the service
// default of 100), sorted by id, including sessions resident only on disk.
func (c *Client) List(limit int) List {
	view := c.svc.List(limit)
	out := List{Sessions: make([]ListEntry, len(view.Sessions)), Total: view.Total}
	for i, e := range view.Sessions {
		out.Sessions[i] = ListEntry{
			ID:               e.ID,
			State:            crowdtopk.SessionState(e.State),
			Asked:            e.Asked,
			Pending:          e.Pending,
			IdleSeconds:      e.IdleSeconds,
			Persisted:        e.Persisted,
			Hydrated:         e.Hydrated,
			PersistError:     e.PersistError,
			QuarantineReason: e.QuarantineReason,
		}
	}
	return out
}

// PersistStats carries the durable backend's own activity counters.
type PersistStats struct {
	Snapshots         uint64
	WALAppends        uint64
	Replays           uint64
	RecoveredSessions uint64
	Fsyncs            uint64
	TornWALTails      uint64
	Quarantines       uint64
}

// StoreStats describes the session store's two tiers.
type StoreStats struct {
	// Backend names the durable tier: "memory" (none) or "file".
	Backend string
	// LiveSessions counts hydrated in-memory sessions; KnownSessions adds
	// the ones resident only on disk.
	LiveSessions  int
	KnownSessions int
	// DirtySessions counts sessions with accepted answers awaiting their
	// asynchronous durable write (0 means everything acked is on disk).
	DirtySessions   int
	EvictionsToDisk uint64
	HydrationHits   uint64
	HydrationMisses uint64
	PersistErrors   uint64
	// PersistRetries counts durable-write attempts that were retries of an
	// earlier failure; EvictionsRefused counts evictions the janitor declined
	// because acked answers were not yet durable.
	PersistRetries   uint64
	EvictionsRefused uint64
	// DegradedMode is true while the durable-tier circuit breaker is
	// non-closed; BreakerState names the breaker state ("closed", "open",
	// "half-open") and is empty without Storage.
	DegradedMode bool
	BreakerState string
	// QuarantinedSessions counts known sessions whose durable copies sit in
	// the quarantine area.
	QuarantinedSessions int
	// Persist is nil without Storage.
	Persist *PersistStats
}

// Stats is the operational snapshot: session counts, store tiers,
// persistence activity and the π-cache hit rate.
type Stats struct {
	Sessions int
	Store    StoreStats
	// PCacheHitRate is the process-wide pairwise-probability cache's
	// lifetime hit rate in [0, 1].
	PCacheHitRate float64
}

// Metrics renders the process-wide metrics registry in Prometheus text
// exposition format — byte-for-byte the body the HTTP server serves on
// GET /metrics, so embedders can wire it to their own /metrics route or
// push gateway without running the server.
func (c *Client) Metrics() ([]byte, error) {
	var buf bytes.Buffer
	if err := c.svc.WriteMetrics(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Health is the readiness snapshot: Ready is the conjunction the HTTP
// server's GET /ready reports (boot scan done, pool has capacity, durable
// writes succeeding); the flags break down why, and Reasons repeats the
// failing conditions in words.
type Health struct {
	Ready           bool
	BootScanDone    bool
	PoolSaturated   bool
	PersistErroring bool
	// DegradedMode is true while the durable-tier circuit breaker is open or
	// half-open: reads serve from the live tier, dirty sessions queue for
	// retry, and Ready is false. BreakerState names the breaker state.
	DegradedMode bool
	BreakerState string
	Reasons      []string
	// Build identity of the embedding binary, mirroring /health and the
	// crowdtopk_build_info gauge on Metrics().
	Version   string
	GoVersion string
	Revision  string
}

// Health reports the client's readiness state — the same decision the HTTP
// server's /ready endpoint makes. Cheap enough to probe every second.
func (c *Client) Health() Health {
	h := c.svc.Health()
	return Health{
		Ready:           h.Ready,
		BootScanDone:    h.BootScanDone,
		PoolSaturated:   h.PoolSaturated,
		PersistErroring: h.PersistErroring,
		DegradedMode:    h.DegradedMode,
		BreakerState:    h.BreakerState,
		Reasons:         h.Reasons,
		Version:         h.Version,
		GoVersion:       h.GoVersion,
		Revision:        h.Revision,
	}
}

// Stats reports the client's operational counters.
func (c *Client) Stats() Stats {
	st := c.svc.Stats()
	out := Stats{
		Sessions: st.Sessions,
		Store: StoreStats{
			Backend:         st.Store.Backend,
			LiveSessions:    st.Store.LiveSessions,
			KnownSessions:   st.Store.KnownSessions,
			DirtySessions:   st.Store.DirtySessions,
			EvictionsToDisk: st.Store.EvictionsToDisk,
			HydrationHits:   st.Store.HydrationHits,
			HydrationMisses: st.Store.HydrationMisses,
			PersistErrors:   st.Store.PersistErrors,

			PersistRetries:      st.Store.PersistRetries,
			EvictionsRefused:    st.Store.EvictionsRefused,
			DegradedMode:        st.Store.DegradedMode,
			BreakerState:        st.Store.BreakerState,
			QuarantinedSessions: st.Store.QuarantinedSessions,
		},
		PCacheHitRate: st.PCache.HitRate,
	}
	if p := st.Store.Persist; p != nil {
		out.Store.Persist = &PersistStats{
			Snapshots:         p.Snapshots,
			WALAppends:        p.WALAppends,
			Replays:           p.Replays,
			RecoveredSessions: p.RecoveredSessions,
			Fsyncs:            p.Fsyncs,
			TornWALTails:      p.TornTails,
			Quarantines:       p.Quarantines,
		}
	}
	return out
}
