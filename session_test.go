package crowdtopk_test

import (
	"bytes"
	"errors"
	"testing"

	crowdtopk "crowdtopk"
)

func sessionWorkload(t *testing.T) *crowdtopk.Dataset {
	t.Helper()
	scores := []crowdtopk.Uncertain{
		crowdtopk.UniformScore(1.0, 1.6),
		crowdtopk.UniformScore(1.3, 1.6),
		crowdtopk.UniformScore(1.6, 1.6),
		crowdtopk.UniformScore(1.9, 1.6),
		crowdtopk.UniformScore(2.2, 1.6),
		crowdtopk.UniformScore(2.5, 1.6),
	}
	ds, err := crowdtopk.NewDataset(scores)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestSessionMatchesProcess: the asynchronous public API driven to
// completion returns the result the synchronous Process call computes for
// the same workload, seed and crowd.
func TestSessionMatchesProcess(t *testing.T) {
	ds := sessionWorkload(t)
	query := crowdtopk.Query{K: 3, Budget: 30, Seed: 42}
	cr, _, err := crowdtopk.SimulatedCrowd(ds, 1, 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	want, err := crowdtopk.Process(ds, query, cr)
	if err != nil {
		t.Fatal(err)
	}

	sess, err := crowdtopk.NewSession(ds, query, 1)
	if err != nil {
		t.Fatal(err)
	}
	apiCrowd, _, err := crowdtopk.SimulatedCrowd(ds, 1, 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	if sess.State() != crowdtopk.SessionCreated {
		t.Fatalf("state = %s, want %s", sess.State(), crowdtopk.SessionCreated)
	}
	for !sess.State().Terminal() {
		qs, err := sess.NextQuestions(1)
		if err != nil {
			t.Fatal(err)
		}
		if len(qs) == 0 {
			break
		}
		if err := sess.SubmitAnswer(apiCrowd.Ask(qs[0])); err != nil {
			t.Fatal(err)
		}
	}
	got := sess.Result()
	if got.QuestionsAsked != want.QuestionsAsked || got.Resolved != want.Resolved || got.Orderings != want.Orderings {
		t.Fatalf("asked/resolved/orderings = %d/%v/%d, want %d/%v/%d",
			got.QuestionsAsked, got.Resolved, got.Orderings, want.QuestionsAsked, want.Resolved, want.Orderings)
	}
	for i := range want.Ranking {
		if got.Ranking[i] != want.Ranking[i] {
			t.Fatalf("ranking %v, want %v", got.Ranking, want.Ranking)
		}
		if got.Names[i] != want.Names[i] {
			t.Fatalf("names %v, want %v", got.Names, want.Names)
		}
	}
}

// TestSessionCheckpointPublic: the public checkpoint/restore round-trips a
// half-answered session and finishes with the straight-through result.
func TestSessionCheckpointPublic(t *testing.T) {
	ds := sessionWorkload(t)
	query := crowdtopk.Query{K: 3, Budget: 30, Seed: 42}
	cr, _, err := crowdtopk.SimulatedCrowd(ds, 1, 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	want, err := crowdtopk.Process(ds, query, cr)
	if err != nil {
		t.Fatal(err)
	}

	sess, err := crowdtopk.NewSession(ds, query, 1)
	if err != nil {
		t.Fatal(err)
	}
	apiCrowd, _, err := crowdtopk.SimulatedCrowd(ds, 1, 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		qs, err := sess.NextQuestions(1)
		if err != nil || len(qs) == 0 {
			t.Fatalf("questions: %v %v", qs, err)
		}
		if err := sess.SubmitAnswer(apiCrowd.Ask(qs[0])); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := sess.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := crowdtopk.RestoreSession(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for !restored.State().Terminal() {
		qs, err := restored.NextQuestions(1)
		if err != nil {
			t.Fatal(err)
		}
		if len(qs) == 0 {
			break
		}
		if err := restored.SubmitAnswer(apiCrowd.Ask(qs[0])); err != nil {
			t.Fatal(err)
		}
	}
	got := restored.Result()
	if got.QuestionsAsked != want.QuestionsAsked {
		t.Fatalf("asked = %d, want %d", got.QuestionsAsked, want.QuestionsAsked)
	}
	for i := range want.Ranking {
		if got.Ranking[i] != want.Ranking[i] {
			t.Fatalf("ranking %v, want %v", got.Ranking, want.Ranking)
		}
	}

	// Terminal sessions refuse answers with the typed sentinel.
	err = restored.SubmitAnswer(crowdtopk.Answer{Q: crowdtopk.Question{I: 0, J: 1}, Yes: true})
	if !errors.Is(err, crowdtopk.ErrSessionDone) {
		t.Fatalf("terminal submit error = %v, want ErrSessionDone", err)
	}
}

// TestSessionUnknownQuestion: answers to unissued questions are rejected
// with the typed sentinel.
func TestSessionUnknownQuestion(t *testing.T) {
	ds := sessionWorkload(t)
	sess, err := crowdtopk.NewSession(ds, crowdtopk.Query{K: 2, Budget: 5}, 1)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := sess.NextQuestions(1)
	if err != nil || len(qs) != 1 {
		t.Fatalf("questions: %v %v", qs, err)
	}
	// Pick a pair that is not the pending question.
	bad := crowdtopk.Question{I: 0, J: 1}
	if bad == qs[0] {
		bad = crowdtopk.Question{I: 0, J: 2}
		if bad == qs[0] {
			bad = crowdtopk.Question{I: 1, J: 2}
		}
	}
	err = sess.SubmitAnswer(crowdtopk.Answer{Q: bad, Yes: true})
	if !errors.Is(err, crowdtopk.ErrUnknownQuestion) {
		t.Fatalf("unissued answer error = %v, want ErrUnknownQuestion", err)
	}
}
