module crowdtopk

go 1.22
