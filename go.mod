module crowdtopk

go 1.21
