package engine

import (
	"fmt"
	"math"
	"time"

	"crowdtopk/internal/dataset"
	"crowdtopk/internal/tpo"
	"crowdtopk/internal/uncertainty"
)

// AblationGrid quantifies the numerical design choice DESIGN.md calls out:
// how the shared integration grid size trades construction time against
// leaf-probability accuracy. The error column is the maximum absolute leaf
// probability deviation from a 16k-point reference build. Build time is the
// reported value, so builds run sequentially regardless of o.Workers.
func AblationGrid(o ExpOptions) (*Table, error) {
	o = o.withDefaults()
	ds, err := dataset.Generate(dataset.Spec{
		N: o.N, Spacing: o.Spacing, Width: o.Width, Seed: o.Seed,
	})
	if err != nil {
		return nil, err
	}
	const refGrid = 16384
	ref, err := tpo.Build(ds, o.K, tpo.BuildOptions{GridSize: refGrid, Workers: 1})
	if err != nil {
		return nil, err
	}
	refProbs := leafProbIndex(ref)

	tbl := NewTable("Ablation: integration grid size vs accuracy and cost", "grid", nil)
	sizes := []int{128, 256, 512, 1024, 2048, 4096}
	if o.Quick {
		sizes = []int{128, 512, 2048}
	}
	for _, g := range sizes {
		start := time.Now()
		tree, err := tpo.Build(ds, o.K, tpo.BuildOptions{GridSize: g, Workers: 1})
		el := time.Since(start)
		if err != nil {
			return nil, fmt.Errorf("ablation grid=%d: %w", g, err)
		}
		maxErr := 0.0
		missing := 0
		probs := leafProbIndex(tree)
		for key, p := range refProbs {
			q, ok := probs[key]
			if !ok {
				missing++
				q = 0
			}
			if d := math.Abs(p - q); d > maxErr {
				maxErr = d
			}
		}
		tbl.Set("max leaf prob error", float64(g), maxErr)
		tbl.Set("build time (ms)", float64(g), float64(el.Milliseconds()))
		tbl.Set("leaves", float64(g), float64(tree.NumLeaves()))
		tbl.Set("missing orderings", float64(g), float64(missing))
	}
	tbl.Footnote = fmt.Sprintf("N=%d K=%d reference grid %d", o.N, o.K, refGrid)
	return tbl, nil
}

func leafProbIndex(t *tpo.Tree) map[string]float64 {
	ls := t.LeafSet()
	out := make(map[string]float64, ls.Len())
	for i, p := range ls.Paths {
		out[fmt.Sprint([]int(p))] = ls.W[i]
	}
	return out
}

// AblationEpsilon quantifies the branch-epsilon design choice in the
// expected-residual machinery: selection quality (final distance of C-off)
// versus selection cost, as negligible hypothetical-answer branches are
// pruned more aggressively. Select time is the reported value, so trials
// and builds run sequentially on one core regardless of o.Workers.
func AblationEpsilon(o ExpOptions) (*Table, error) {
	o = o.withDefaults()
	tbl := NewTable("Ablation: branch epsilon vs C-off quality and cost", "-log10(eps)", nil)
	budget := 10
	if len(o.Budgets) > 0 {
		budget = o.Budgets[len(o.Budgets)-1]
	}
	for _, eps := range []float64{1e-2, 1e-3, 1e-5, 1e-9} {
		cfg, err := o.config(AlgCOff)
		if err != nil {
			return nil, err
		}
		cfg.Workers = 1
		cfg.Build.Workers = 1
		cfg.Budget = budget
		cfg.BranchEpsilon = eps
		st, err := RunTrials(cfg, o.Trials)
		if err != nil {
			return nil, fmt.Errorf("ablation eps=%g: %w", eps, err)
		}
		x := -math.Log10(eps)
		tbl.Set("distance", x, st.MeanDistance)
		tbl.Set("select time (ms)", x, float64(st.MeanSelectTime.Milliseconds()))
	}
	tbl.Footnote = fmt.Sprintf("N=%d K=%d trials=%d algorithm=C-off budget=%d", o.N, o.K, o.Trials, budget)
	return tbl, nil
}

// AblationRoundSize sweeps the incr algorithm's questions-per-round n
// (§III.D says n is between 1 and B): small rounds approach online quality,
// large rounds approach offline batch cost. Total time is the reported
// value, so trials and builds run sequentially regardless of o.Workers.
func AblationRoundSize(o ExpOptions) (*Table, error) {
	o = o.withDefaults()
	budget := 20
	if o.Quick {
		budget = 8
	}
	tbl := NewTable("Ablation: incr round size n vs quality and cost", "n", nil)
	for _, n := range []int{1, 2, 5, 10, budget} {
		cfg, err := o.config(AlgIncr)
		if err != nil {
			return nil, err
		}
		cfg.Workers = 1
		cfg.Build.Workers = 1
		cfg.Budget = budget
		cfg.RoundSize = n
		st, err := RunTrials(cfg, o.Trials)
		if err != nil {
			return nil, fmt.Errorf("ablation round=%d: %w", n, err)
		}
		tbl.Set("distance", float64(n), st.MeanDistance)
		tbl.Set("total time (ms)", float64(n), float64(st.MeanTotalTime.Milliseconds()))
		tbl.Set("questions", float64(n), st.MeanAsked)
	}
	tbl.Footnote = fmt.Sprintf("N=%d K=%d trials=%d budget=%d", o.N, o.K, o.Trials, budget)
	return tbl, nil
}

// Trajectory reports the per-question convergence D(ω_r, T_K) of the online
// algorithm — the continuous view of Fig. 1(a)'s sampled budgets.
func Trajectory(o ExpOptions) (*Table, error) {
	o = o.withDefaults()
	budget := 0
	for _, b := range o.Budgets {
		if b > budget {
			budget = b
		}
	}
	tbl := NewTable("Convergence: distance after each answered question (T1-on)", "question", nil)
	m, err := uncertainty.New(o.Measure)
	if err != nil {
		return nil, err
	}
	cfg, err := o.config(AlgT1On)
	if err != nil {
		return nil, err
	}
	cfg.Budget = budget
	cfg.Measure = m
	cfg.RecordTrajectory = true
	// Average trajectories across trials (ragged tails padded with their
	// final value — early termination means the distance stays put).
	sums := make([]float64, budget+1)
	for trial := 0; trial < o.Trials; trial++ {
		c := cfg
		c.Seed = cfg.Seed*999983 + int64(trial)
		res, err := Run(c)
		if err != nil {
			return nil, fmt.Errorf("trajectory trial %d: %w", trial, err)
		}
		last := 0.0
		for i := 0; i <= budget; i++ {
			if i < len(res.Trajectory) {
				last = res.Trajectory[i]
			}
			sums[i] += last
		}
	}
	for i := 0; i <= budget; i++ {
		tbl.Set("mean distance", float64(i), sums[i]/float64(o.Trials))
	}
	tbl.Footnote = fmt.Sprintf("N=%d K=%d trials=%d measure=%s", o.N, o.K, o.Trials, o.Measure)
	return tbl, nil
}

func init() {
	Experiments["ablation-grid"] = AblationGrid
	Experiments["ablation-eps"] = AblationEpsilon
	Experiments["ablation-round"] = AblationRoundSize
	Experiments["trajectory"] = Trajectory
}
