package engine

import (
	"errors"
	"math/rand"
	"testing"

	"crowdtopk/internal/crowd"
	"crowdtopk/internal/dataset"
	"crowdtopk/internal/dist"
	"crowdtopk/internal/uncertainty"
)

// testWorkload returns a small but genuinely uncertain workload.
func testWorkload(t testing.TB, n int, seed int64) []dist.Distribution {
	t.Helper()
	ds, err := dataset.Generate(dataset.Spec{N: n, Width: 1.8, Spacing: 0.5, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func baseConfig(t testing.TB, alg string) Config {
	return Config{
		Dists:     testWorkload(t, 8, 7),
		K:         3,
		Budget:    6,
		Algorithm: alg,
		Seed:      11,
	}
}

func TestRunAllAlgorithmsReduceDistance(t *testing.T) {
	for _, alg := range []string{AlgNaive, AlgTBOff, AlgCOff, AlgT1On, AlgIncr} {
		t.Run(alg, func(t *testing.T) {
			st, err := RunTrials(baseConfig(t, alg), 8)
			if err != nil {
				t.Fatal(err)
			}
			if st.MeanAsked == 0 {
				t.Fatal("no questions asked")
			}
			if alg != AlgIncr && st.MeanDistance > st.MeanInitialDistance+1e-9 {
				t.Fatalf("%s: distance grew %g → %g", alg, st.MeanInitialDistance, st.MeanDistance)
			}
		})
	}
}

func TestRunUnknownAlgorithm(t *testing.T) {
	cfg := baseConfig(t, "bogus")
	if _, err := Run(cfg); !errors.Is(err, ErrUnknownAlgorithm) {
		t.Fatalf("err = %v", err)
	}
}

func TestInformedBeatsRandomOnAverage(t *testing.T) {
	// The headline claim of Fig. 1(a): informed selection reaches lower
	// distance than the random baseline at equal budget.
	const trials = 12
	random, err := RunTrials(baseConfig(t, AlgRandom), trials)
	if err != nil {
		t.Fatal(err)
	}
	t1, err := RunTrials(baseConfig(t, AlgT1On), trials)
	if err != nil {
		t.Fatal(err)
	}
	if t1.MeanDistance >= random.MeanDistance {
		t.Fatalf("T1-on mean distance %g not below random %g", t1.MeanDistance, random.MeanDistance)
	}
}

func TestOnlineEarlyTermination(t *testing.T) {
	// A huge budget must not be fully spent: T1-on stops when a single
	// ordering remains.
	cfg := baseConfig(t, AlgT1On)
	cfg.Budget = 10_000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resolved {
		t.Fatalf("tree not resolved after unlimited budget (leaves %d)", res.FinalLeaves)
	}
	if res.Asked >= cfg.Budget {
		t.Fatalf("asked %d questions, expected early termination", res.Asked)
	}
	if res.FinalDistance > 0.12 {
		// With perfect answers the surviving ordering is the real top-K up
		// to numerically pruned mass; allow a small slack.
		t.Fatalf("resolved to distance %g from the real ordering", res.FinalDistance)
	}
}

func TestPerfectCrowdResolvesToRealPrefix(t *testing.T) {
	cfg := baseConfig(t, AlgT1On)
	cfg.Budget = 1000
	cfg.Seed = 5
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resolved {
		t.Skipf("tree unresolved (numerics), distance %g", res.FinalDistance)
	}
	if res.FinalDistance > 1e-6 && res.Contradictions == 0 {
		t.Fatalf("resolved ordering %v has distance %g to the real prefix", res.FinalOrdering, res.FinalDistance)
	}
}

func TestNoisyCrowdReweights(t *testing.T) {
	cfg := baseConfig(t, AlgT1On)
	rng := rand.New(rand.NewSource(3))
	truth := crowd.SampleTruth(cfg.Dists, rng)
	pf, err := crowd.NewUniformPlatform(truth, 5, 0.8, rng)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Truth = truth
	cfg.Crowd = pf
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Reweighting never removes leaves outright, so with a noisy crowd the
	// tree can shrink only by renormalized zero-mass subtrees — resolution
	// to a single leaf is practically impossible at budget 6.
	if res.Resolved {
		t.Fatal("noisy crowd should not fully resolve the tree at small budget")
	}
	if res.Asked != cfg.Budget {
		t.Fatalf("asked %d, want the full budget %d", res.Asked, cfg.Budget)
	}
}

func TestNoisyWorseThanPerfect(t *testing.T) {
	const trials = 10
	perfect, err := RunTrials(baseConfig(t, AlgT1On), trials)
	if err != nil {
		t.Fatal(err)
	}
	noisy := baseConfig(t, AlgT1On)
	noisy.Crowd = nil
	noisyStats := &TrialStats{}
	// RunTrials with an injected noisy platform needs per-trial worlds, so
	// emulate it manually.
	var acc float64
	for i := 0; i < trials; i++ {
		cfg := baseConfig(t, AlgT1On)
		cfg.Seed = 991 + int64(i)
		rng := rand.New(rand.NewSource(cfg.Seed))
		truth := crowd.SampleTruth(cfg.Dists, rng)
		pf, err := crowd.NewUniformPlatform(truth, 5, 0.65, rng)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Truth = truth
		cfg.Crowd = pf
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		acc += res.FinalDistance
	}
	noisyStats.MeanDistance = acc / trials
	if noisyStats.MeanDistance <= perfect.MeanDistance {
		t.Fatalf("noisy crowd (%g) should do worse than perfect (%g)",
			noisyStats.MeanDistance, perfect.MeanDistance)
	}
}

func TestIncrExtendsToFullDepth(t *testing.T) {
	cfg := baseConfig(t, AlgIncr)
	cfg.Budget = 4
	cfg.RoundSize = 2
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FinalOrdering) != cfg.K {
		t.Fatalf("final ordering %v has length %d, want K=%d", res.FinalOrdering, len(res.FinalOrdering), cfg.K)
	}
	if res.Asked == 0 || res.Asked > cfg.Budget {
		t.Fatalf("asked %d of budget %d", res.Asked, cfg.Budget)
	}
}

func TestIncrCheaperThanFullBuildOnLargeTrees(t *testing.T) {
	// §III.D: incr avoids materializing orderings that pruning kills.
	ds := testWorkload(t, 14, 13)
	mk := func(alg string) Config {
		return Config{Dists: ds, K: 5, Budget: 12, Algorithm: alg, RoundSize: 4, Seed: 17}
	}
	full, err := Run(mk(AlgTBOff))
	if err != nil {
		t.Fatal(err)
	}
	inc, err := Run(mk(AlgIncr))
	if err != nil {
		t.Fatal(err)
	}
	if inc.TotalTime >= full.TotalTime {
		t.Logf("warning: incr %v not faster than TB-off %v on this instance (timing-sensitive)", inc.TotalTime, full.TotalTime)
	}
	if inc.FinalLeaves > full.InitialLeaves {
		t.Fatalf("incr final tree (%d leaves) larger than the full initial tree (%d)", inc.FinalLeaves, full.InitialLeaves)
	}
}

func TestBudgetZeroAsksNothing(t *testing.T) {
	for _, alg := range []string{AlgRandom, AlgTBOff, AlgT1On, AlgIncr} {
		cfg := baseConfig(t, alg)
		cfg.Budget = 0
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if res.Asked != 0 {
			t.Fatalf("%s asked %d questions with zero budget", alg, res.Asked)
		}
		if res.FinalDistance != res.InitialDistance && alg != AlgIncr {
			t.Fatalf("%s changed the tree without questions", alg)
		}
	}
}

func TestRunDeterministicForSeed(t *testing.T) {
	cfg := baseConfig(t, AlgT1On)
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.FinalDistance != b.FinalDistance || a.Asked != b.Asked {
		t.Fatalf("same seed, different outcomes: %+v vs %+v", a, b)
	}
}

func TestRunTrialsAggregation(t *testing.T) {
	st, err := RunTrials(baseConfig(t, AlgNaive), 5)
	if err != nil {
		t.Fatal(err)
	}
	if st.Trials != 5 || st.Algorithm != AlgNaive {
		t.Fatalf("stats header wrong: %+v", st)
	}
	if st.MeanDistance < 0 || st.StdDistance < 0 {
		t.Fatalf("negative aggregates: %+v", st)
	}
	if st.MeanTotalTime <= 0 {
		t.Fatal("timing not recorded")
	}
	if _, err := RunTrials(baseConfig(t, AlgNaive), 0); err == nil {
		t.Fatal("zero trials accepted")
	}
}

func TestMeasureSelectionAffectsRuns(t *testing.T) {
	cfg := baseConfig(t, AlgT1On)
	for _, name := range []string{"H", "Hw", "ORA", "MPO"} {
		m, err := uncertainty.New(name)
		if err != nil {
			t.Fatal(err)
		}
		c := cfg
		c.Measure = m
		res, err := Run(c)
		if err != nil {
			t.Fatalf("measure %s: %v", name, err)
		}
		if res.FinalDistance > res.InitialDistance+1e-9 {
			t.Fatalf("measure %s: distance grew", name)
		}
	}
}

func TestAStarAlgorithmsOnTinyInstance(t *testing.T) {
	cfg := Config{
		Dists:     testWorkload(t, 5, 23),
		K:         2,
		Budget:    2,
		Algorithm: AlgAStarOff,
		Measure:   uncertainty.Entropy{},
		Seed:      29,
	}
	offRes, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Algorithm = AlgAStarOn
	onRes, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The online variant sees answers, so it can only do at least as well
	// in expectation; on a single seed just require both to not regress.
	for _, r := range []*Result{offRes, onRes} {
		if r.FinalDistance > r.InitialDistance+1e-9 {
			t.Fatalf("%s distance grew", r.Algorithm)
		}
	}
	cfg.Algorithm = AlgExhaustive
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
}
