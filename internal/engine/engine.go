// Package engine runs the paper's uncertainty-reduction protocol end to end:
// build the TPO for a top-K query, select questions with a chosen strategy,
// pose them to a (simulated) crowd, prune or reweight the tree with the
// answers, and measure the residual distance to the real ordering. It is the
// harness behind every experiment in §IV.
package engine

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"crowdtopk/internal/crowd"
	"crowdtopk/internal/dist"
	"crowdtopk/internal/rank"
	"crowdtopk/internal/selection"
	"crowdtopk/internal/tpo"
	"crowdtopk/internal/uncertainty"
)

// Algorithm names accepted by Config.Algorithm.
const (
	AlgRandom     = "random"
	AlgNaive      = "naive"
	AlgTBOff      = "TB-off"
	AlgCOff       = "C-off"
	AlgAStarOff   = "A*-off"
	AlgExhaustive = "exhaustive"
	AlgT1On       = "T1-on"
	AlgAStarOn    = "A*-on"
	AlgIncr       = "incr"
)

// Algorithms lists every supported algorithm name.
func Algorithms() []string {
	return []string{AlgRandom, AlgNaive, AlgTBOff, AlgCOff, AlgAStarOff, AlgExhaustive, AlgT1On, AlgAStarOn, AlgIncr}
}

// ErrUnknownAlgorithm reports an unrecognized Config.Algorithm.
var ErrUnknownAlgorithm = errors.New("engine: unknown algorithm")

// Config describes one uncertainty-reduction run.
type Config struct {
	// Dists is the uncertain score model of the N tuples.
	Dists []dist.Distribution
	// K is the query's result size; Budget the number of crowd questions.
	K, Budget int
	// Algorithm selects the question-selection strategy (Alg* constants).
	Algorithm string
	// Measure drives selection; nil defaults to U_MPO (the paper's best
	// structure-aware measure).
	Measure uncertainty.Measure
	// Crowd answers the questions. Nil defaults to a PerfectOracle over
	// Truth.
	Crowd crowd.Crowd
	// Truth is the realized world; nil samples one from Dists using Seed.
	Truth *crowd.GroundTruth
	// Build configures TPO construction.
	Build tpo.BuildOptions
	// RoundSize is the incr algorithm's questions-per-round n (default 5).
	RoundSize int
	// Penalty is the top-K distance penalty parameter (default 1/2).
	Penalty float64
	// BranchEpsilon tunes the expected-residual recursion.
	BranchEpsilon float64
	// Seed drives all randomness of the run (truth sampling, noisy
	// workers, baseline shuffles).
	Seed int64
	// Workers bounds the number of concurrent trials in RunTrials and of
	// concurrent experiment cells; it is also forwarded to the TPO build
	// when Build.Workers is unset, and to the selection sweeps of a
	// standalone Run (where >1 fans candidate questions across that many
	// goroutines). Zero selects GOMAXPROCS for trials/cells. Results are
	// identical for every value: trials derive independent RNGs from Seed
	// and aggregate in trial order, and sweep residuals land in per-index
	// slots.
	Workers int
	// RecordTrajectory captures D(ω_r, T_K) after every answer into
	// Result.Trajectory (index 0 is the pre-question distance).
	RecordTrajectory bool
}

// Result reports one run.
type Result struct {
	Algorithm string
	// Asked is the number of questions actually posed (early termination
	// can leave budget unspent).
	Asked int
	// InitialDistance and FinalDistance are D(ω_r, T_K) before and after
	// uncertainty reduction.
	InitialDistance, FinalDistance float64
	// InitialUncertainty and FinalUncertainty are the measure's values.
	InitialUncertainty, FinalUncertainty float64
	// InitialLeaves and FinalLeaves count the orderings in the tree.
	InitialLeaves, FinalLeaves int
	// Resolved reports whether a single ordering remained.
	Resolved bool
	// Contradictions counts answers that conflicted with every remaining
	// ordering (skipped; only possible when trusted answers meet a tree
	// whose true prefix was numerically pruned).
	Contradictions int
	// BuildTime covers TPO construction/extension; SelectTime question
	// selection; ApplyTime pruning/reweighting. TotalTime is the sum.
	BuildTime, SelectTime, ApplyTime, TotalTime time.Duration
	// FinalOrdering is the representative ordering reported to the user.
	FinalOrdering rank.Ordering
	// Trajectory is D(ω_r, T_K) before questions and after each answer
	// (only with Config.RecordTrajectory; incr records at full depth only).
	Trajectory []float64
}

// Run executes one uncertainty-reduction trial.
func Run(cfg Config) (*Result, error) {
	if cfg.Measure == nil {
		cfg.Measure = uncertainty.MPO{Penalty: cfg.Penalty}
	}
	if cfg.RoundSize == 0 {
		cfg.RoundSize = 5
	}
	if cfg.Build.Workers == 0 {
		cfg.Build.Workers = cfg.Workers
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	truth := cfg.Truth
	if truth == nil {
		truth = crowd.SampleTruth(cfg.Dists, rng)
	}
	cr := cfg.Crowd
	if cr == nil {
		cr = &crowd.PerfectOracle{Truth: truth}
	}

	r := &Result{Algorithm: cfg.Algorithm}
	run := &runner{cfg: cfg, truth: truth, crowd: cr, rng: rng, res: r}
	var err error
	switch cfg.Algorithm {
	case AlgIncr:
		err = run.incremental()
	case AlgT1On, AlgAStarOn:
		err = run.online()
	case AlgRandom, AlgNaive, AlgTBOff, AlgCOff, AlgAStarOff, AlgExhaustive:
		err = run.offline()
	default:
		err = fmt.Errorf("%w: %q", ErrUnknownAlgorithm, cfg.Algorithm)
	}
	if err != nil {
		return nil, err
	}
	r.TotalTime = r.BuildTime + r.SelectTime + r.ApplyTime
	return r, nil
}

type runner struct {
	cfg   Config
	truth *crowd.GroundTruth
	crowd crowd.Crowd
	rng   *rand.Rand
	res   *Result
	tree  *tpo.Tree
}

func (r *runner) context() *selection.Context {
	return &selection.Context{
		Tree:          r.tree,
		Measure:       r.cfg.Measure,
		BranchEpsilon: r.cfg.BranchEpsilon,
		// Forwarded as-is: RunTrials and the experiment sweeps pin this to 1
		// so the worker budget stays spent at the outermost parallel level;
		// a standalone Run with Workers > 1 parallelizes its residual sweeps.
		Workers: r.cfg.Workers,
	}
}

// buildFull materializes the depth-K tree, recording timing and initial
// metrics.
func (r *runner) buildFull() error {
	start := time.Now()
	tree, err := tpo.Build(r.cfg.Dists, r.cfg.K, r.cfg.Build)
	r.res.BuildTime += time.Since(start)
	if err != nil {
		return err
	}
	r.tree = tree
	r.recordInitial()
	return nil
}

func (r *runner) recordInitial() {
	ls := r.tree.LeafSet()
	r.res.InitialLeaves = ls.Len()
	r.res.InitialUncertainty = r.cfg.Measure.Value(ls)
	r.res.InitialDistance = r.truth.Distance(ls, r.cfg.Penalty)
	if r.cfg.RecordTrajectory && r.tree.Depth() == r.cfg.K {
		r.res.Trajectory = append(r.res.Trajectory, r.res.InitialDistance)
	}
}

// recordStep appends the post-answer distance to the trajectory.
func (r *runner) recordStep() {
	if !r.cfg.RecordTrajectory || r.tree.Depth() != r.cfg.K {
		return
	}
	r.res.Trajectory = append(r.res.Trajectory, r.truth.Distance(r.tree.LeafSet(), r.cfg.Penalty))
}

func (r *runner) recordFinal() {
	ls := r.tree.LeafSet()
	r.res.FinalLeaves = ls.Len()
	r.res.FinalUncertainty = r.cfg.Measure.Value(ls)
	r.res.FinalDistance = r.truth.Distance(ls, r.cfg.Penalty)
	r.res.Resolved = ls.Len() <= 1
	r.res.FinalOrdering = uncertainty.Representative(r.cfg.Measure, ls)
}

// applyAnswer conditions the tree on an answer via the shared transition
// code (ApplyAnswer), recording timing and contradictions.
func (r *runner) applyAnswer(a tpo.Answer) error {
	start := time.Now()
	defer func() { r.res.ApplyTime += time.Since(start) }()
	contradicted, err := ApplyAnswer(r.tree, a, r.crowd.Reliability())
	if contradicted {
		r.res.Contradictions++
	}
	return err
}

func (r *runner) offline() error {
	if err := r.buildFull(); err != nil {
		return err
	}
	strat, err := OfflineStrategy(r.cfg.Algorithm, r.rng)
	if err != nil {
		return err
	}
	start := time.Now()
	batch, err := strat.SelectBatch(r.tree.LeafSet(), r.cfg.Budget, r.context())
	r.res.SelectTime += time.Since(start)
	if err != nil {
		return err
	}
	for _, q := range batch {
		a := r.crowd.Ask(q)
		r.res.Asked++
		if err := r.applyAnswer(a); err != nil {
			return err
		}
		r.recordStep()
	}
	r.recordFinal()
	return nil
}

func (r *runner) online() error {
	if err := r.buildFull(); err != nil {
		return err
	}
	strat, err := OnlineStrategy(r.cfg.Algorithm)
	if err != nil {
		return err
	}
	for r.res.Asked < r.cfg.Budget {
		start := time.Now()
		q, ok, err := strat.NextQuestion(r.tree.LeafSet(), r.cfg.Budget-r.res.Asked, r.context())
		r.res.SelectTime += time.Since(start)
		if err != nil {
			return err
		}
		if !ok {
			break // early termination: all uncertainty removed
		}
		a := r.crowd.Ask(q)
		r.res.Asked++
		if err := r.applyAnswer(a); err != nil {
			return err
		}
		r.recordStep()
	}
	r.recordFinal()
	return nil
}

// incremental implements the incr algorithm (§III.D): the TPO is built one
// level at a time, alternating construction with rounds of n questions and
// pruning, so that large trees are only materialized where the surviving
// orderings need them.
func (r *runner) incremental() error {
	start := time.Now()
	tree, err := tpo.StartIncremental(r.cfg.Dists, r.cfg.K, r.cfg.Build)
	r.res.BuildTime += time.Since(start)
	if err != nil {
		return err
	}
	r.tree = tree
	// Initial metrics must refer to the same depth-K space other
	// algorithms report; compute them from a throwaway full build? No —
	// the point of incr is avoiding that cost. Report the depth-1 state
	// and let the final metrics land at depth K.
	r.recordInitial()

	remaining := r.cfg.Budget
	for remaining > 0 {
		batch, buildTime, selectTime, err := PlanIncrRound(r.tree, r.cfg.K, r.cfg.RoundSize, remaining, r.context())
		r.res.BuildTime += buildTime
		r.res.SelectTime += selectTime
		if err != nil {
			return err
		}
		if len(batch) == 0 {
			break // tree fully built and certain
		}
		for _, q := range batch {
			a := r.crowd.Ask(q)
			r.res.Asked++
			if err := r.applyAnswer(a); err != nil {
				return err
			}
		}
		remaining -= len(batch)
	}
	// Materialize any missing levels so the reported result is a depth-K
	// tree comparable with the other algorithms.
	buildTime, err := ExtendToDepth(r.tree, r.cfg.K)
	r.res.BuildTime += buildTime
	if err != nil {
		return err
	}
	r.recordFinal()
	return nil
}
