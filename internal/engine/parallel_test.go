package engine

import (
	"testing"
)

// statsKey flattens the deterministic fields of TrialStats (everything but
// the wall-clock timings) for exact comparison.
func statsKey(st *TrialStats) [8]float64 {
	return [8]float64{
		st.MeanDistance, st.StdDistance, st.MeanInitialDistance,
		st.MeanAsked, st.MeanFinalLeaves, st.ResolvedFraction,
		st.MeanUncertainty, float64(st.Contradictions),
	}
}

// TestRunTrialsParallelDeterminism: trials scheduled across a worker pool
// must aggregate to exactly the statistics of the sequential loop — the
// per-trial RNGs derive from the seed, and aggregation folds results in
// trial order regardless of completion order.
func TestRunTrialsParallelDeterminism(t *testing.T) {
	o := ExpOptions{N: 10, K: 3, Trials: 6, Width: 2.0, Spacing: 0.5, Seed: 77}
	for _, alg := range []string{AlgT1On, AlgTBOff, AlgIncr} {
		cfg, err := ConfigFor(o, alg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Budget = 6

		seq := cfg
		seq.Workers = 1
		seq.Build.Workers = 1
		seqStats, err := RunTrials(seq, o.Trials)
		if err != nil {
			t.Fatalf("%s sequential: %v", alg, err)
		}

		par := cfg
		par.Workers = 4
		par.Build.Workers = 4
		parStats, err := RunTrials(par, o.Trials)
		if err != nil {
			t.Fatalf("%s parallel: %v", alg, err)
		}

		if statsKey(seqStats) != statsKey(parStats) {
			t.Errorf("%s: parallel stats %+v differ from sequential %+v", alg, parStats, seqStats)
		}
	}
}

// TestRunTrialsParallelFailureIsAnError: when trials run concurrently and
// one fails, RunTrials must return that trial's error — not panic. After a
// failure par.For skips unstarted trials, leaving nil slots in both the
// error and result slices; the aggregation must not dereference them.
func TestRunTrialsParallelFailureIsAnError(t *testing.T) {
	o := ExpOptions{N: 10, K: 3, Trials: 8, Width: 2.0, Spacing: 0.5, Seed: 5}
	cfg, err := ConfigFor(o, AlgT1On)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Budget = 2
	cfg.Workers = 4
	cfg.Build.MaxLeaves = 1 // every trial's build exceeds the leaf budget
	st, err := RunTrials(cfg, o.Trials)
	if err == nil {
		t.Fatalf("expected every trial to fail with ErrTooLarge, got stats %+v", st)
	}
}

// TestRunNoisyTrialValidatesVotes: the votes parameter is validated instead
// of being silently treated as a trusted single answer.
func TestRunNoisyTrialValidatesVotes(t *testing.T) {
	o := ExpOptions{Quick: true}
	cfg, err := ConfigFor(o, AlgT1On)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Budget = 3
	if _, err := RunNoisyTrial(cfg, 0.8, 0, 1); err == nil {
		t.Error("votes=0: expected an error")
	}
	if _, err := RunNoisyTrial(cfg, 0.8, -1, 1); err == nil {
		t.Error("votes=-1: expected an error")
	}
	if _, err := RunNoisyTrial(cfg, 0.8, 2, 1); err != nil {
		t.Errorf("votes=2 (rounded to 3 by the platform): %v", err)
	}
}
