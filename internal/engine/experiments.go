package engine

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"sync"
	"text/tabwriter"

	"crowdtopk/internal/crowd"
	"crowdtopk/internal/dataset"
	"crowdtopk/internal/par"
	"crowdtopk/internal/tpo"
	"crowdtopk/internal/uncertainty"
)

// Table is the printable result of one experiment: rows indexed by the swept
// parameter, one column per series (algorithm, measure, accuracy...).
type Table struct {
	Name     string
	XLabel   string
	Columns  []string
	XValues  []float64
	cells    map[string]map[float64]float64 // column -> x -> value
	Footnote string
}

// NewTable creates an empty experiment table.
func NewTable(name, xLabel string, columns []string) *Table {
	return &Table{
		Name:    name,
		XLabel:  xLabel,
		Columns: columns,
		cells:   make(map[string]map[float64]float64),
	}
}

// Set records a cell value.
func (t *Table) Set(column string, x, value float64) {
	if t.cells[column] == nil {
		t.cells[column] = make(map[float64]float64)
		found := false
		for _, c := range t.Columns {
			if c == column {
				found = true
			}
		}
		if !found {
			t.Columns = append(t.Columns, column)
		}
	}
	present := false
	for _, xv := range t.XValues {
		if xv == x {
			present = true
		}
	}
	if !present {
		t.XValues = append(t.XValues, x)
		sort.Float64s(t.XValues)
	}
	t.cells[column][x] = value
}

// Get returns a cell value (0 when absent) and whether it was recorded.
func (t *Table) Get(column string, x float64) (float64, bool) {
	m, ok := t.cells[column]
	if !ok {
		return 0, false
	}
	v, ok := m[x]
	return v, ok
}

// WriteTo renders the table as aligned text.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# %s\n", t.Name)
	tw := tabwriter.NewWriter(&sb, 4, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "%s", t.XLabel)
	for _, c := range t.Columns {
		fmt.Fprintf(tw, "\t%s", c)
	}
	fmt.Fprintln(tw)
	for _, x := range t.XValues {
		fmt.Fprintf(tw, "%g", x)
		for _, c := range t.Columns {
			if v, ok := t.Get(c, x); ok {
				fmt.Fprintf(tw, "\t%.4g", v)
			} else {
				fmt.Fprintf(tw, "\t-")
			}
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	if t.Footnote != "" {
		fmt.Fprintf(&sb, "%s\n", t.Footnote)
	}
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// ExpOptions parameterizes the experiment reproductions. The zero value
// selects the paper-scale defaults; Quick shrinks everything for smoke tests
// and benchmarks.
type ExpOptions struct {
	N, K      int
	Trials    int
	Budgets   []int
	Seed      int64
	Spacing   float64
	Width     float64
	RoundSize int
	GridSize  int
	Measure   string
	Quick     bool
	// Workers bounds the number of concurrent experiment cells and is
	// forwarded to per-cell trial and build parallelism. Zero selects
	// GOMAXPROCS. Experiments whose reported values are wall-clock or CPU
	// timings (fig1b, scale, the ablations) stay sequential regardless, so
	// their timing claims are not distorted by contention.
	Workers int
	// Progress, when non-nil, receives one line per completed experiment
	// cell (algorithm × budget), for long-running regenerations.
	Progress io.Writer
}

// progressMu serializes progress lines from concurrently finishing cells.
var progressMu sync.Mutex

// progress logs one completed cell.
func (o ExpOptions) progress(format string, args ...interface{}) {
	if o.Progress != nil {
		progressMu.Lock()
		defer progressMu.Unlock()
		fmt.Fprintf(o.Progress, format+"\n", args...)
	}
}

// cellJob is one experiment cell (one series × one x-value). Cells run
// concurrently, but their values land in the table in declaration order, so
// column order, row order and output bytes match a serial sweep exactly.
type cellJob struct {
	column string
	x      float64
	run    func() (float64, error)
}

// runCells evaluates the cells with up to `workers` in flight (0 =
// GOMAXPROCS) and fills tbl deterministically. The error of the
// lowest-index failing cell is returned, matching what a serial sweep would
// report first. The worker budget is consumed here, at the outermost
// parallel level: cellConfig strips inner parallelism from every cell's
// Config, so an experiment never multiplies goroutines across the cell,
// trial and build levels.
func runCells(tbl *Table, cells []cellJob, workers int) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	vals := make([]float64, len(cells))
	errs := par.For(len(cells), workers, func(_, i int) error {
		var err error
		vals[i], err = cells[i].run()
		return err
	})
	for i, err := range errs {
		if err != nil {
			return err
		}
		tbl.Set(cells[i].column, cells[i].x, vals[i])
	}
	return nil
}

// cellConfig prepares a Config for use inside one cell of a concurrent
// sweep: trials and builds run sequentially, because the worker budget is
// already spent on cell-level parallelism in runCells.
func cellConfig(cfg Config, budget int) Config {
	cfg.Budget = budget
	cfg.Workers = 1
	cfg.Build.Workers = 1
	return cfg
}

func (o ExpOptions) withDefaults() ExpOptions {
	if o.N == 0 {
		o.N = 20
	}
	if o.K == 0 {
		o.K = 5
	}
	if o.Trials == 0 {
		o.Trials = 10
	}
	if len(o.Budgets) == 0 {
		o.Budgets = []int{0, 5, 10, 20, 30, 40, 50}
	}
	if o.Spacing == 0 {
		o.Spacing = 0.5
	}
	if o.Width == 0 {
		// width/spacing = 7: each tuple's score overlaps ~6 neighbours on
		// each side, giving |Q_K| ≈ 54 relevant questions so the paper's
		// budget range (B ≤ 50) stays meaningful, at ≈6.6k orderings.
		o.Width = 3.5
	}
	if o.RoundSize == 0 {
		o.RoundSize = 5
	}
	if o.GridSize == 0 {
		o.GridSize = 512
	}
	if o.Measure == "" {
		o.Measure = "MPO"
	}
	if o.Seed == 0 {
		o.Seed = 2016
	}
	if o.Quick {
		o.N, o.K, o.Trials = 10, 3, 3
		o.Budgets = []int{0, 3, 6, 10}
	}
	return o
}

// ConfigFor builds the engine Config an experiment would use for the given
// algorithm — exposed for the CLI and benchmarks.
func ConfigFor(o ExpOptions, alg string) (Config, error) {
	return o.withDefaults().config(alg)
}

func (o ExpOptions) config(alg string) (Config, error) {
	ds, err := dataset.Generate(dataset.Spec{
		N: o.N, Spacing: o.Spacing, Width: o.Width, Seed: o.Seed,
	})
	if err != nil {
		return Config{}, err
	}
	m, err := uncertainty.New(o.Measure)
	if err != nil {
		return Config{}, err
	}
	return Config{
		Dists:     ds,
		K:         o.K,
		Algorithm: alg,
		Measure:   m,
		RoundSize: o.RoundSize,
		Build:     tpo.BuildOptions{GridSize: o.GridSize},
		// Hypothetical-answer branches below this probability cannot move
		// R_q by more than the branch mass itself; 1e-5 bounds the cell
		// blow-up of long conditional sequences without affecting which
		// question wins.
		BranchEpsilon: 1e-5,
		Seed:          o.Seed,
		Workers:       o.Workers,
	}, nil
}

// Fig1aAlgorithms are the series of Figure 1 (the "faster algorithms": the
// A* variants are excluded there just as in the paper).
var Fig1aAlgorithms = []string{AlgT1On, AlgTBOff, AlgCOff, AlgIncr, AlgNaive, AlgRandom}

// Fig1a reproduces Figure 1(a): the distance D(ω_r, T_K) between the real
// ordering and the tree, as the question budget B varies, for T1-on, TB-off,
// C-off, incr, naive and random.
func Fig1a(o ExpOptions) (*Table, error) {
	o = o.withDefaults()
	tbl := NewTable("Fig 1(a): distance to real ordering vs budget B", "B", nil)
	var cells []cellJob
	for _, alg := range Fig1aAlgorithms {
		cfg, err := o.config(alg)
		if err != nil {
			return nil, err
		}
		for _, b := range o.Budgets {
			alg, b, c := alg, b, cellConfig(cfg, b)
			cells = append(cells, cellJob{alg, float64(b), func() (float64, error) {
				st, err := RunTrials(c, o.Trials)
				if err != nil {
					return 0, fmt.Errorf("fig1a %s B=%d: %w", alg, b, err)
				}
				o.progress("fig1a %-8s B=%-3d distance=%.4f", alg, b, st.MeanDistance)
				return st.MeanDistance, nil
			}})
		}
	}
	if err := runCells(tbl, cells, o.Workers); err != nil {
		return nil, err
	}
	tbl.Footnote = fmt.Sprintf("N=%d K=%d trials=%d width/spacing=%.2f measure=%s",
		o.N, o.K, o.Trials, o.Width/o.Spacing, o.Measure)
	return tbl, nil
}

// Fig1b reproduces Figure 1(b): mean CPU time per run (seconds) of the
// faster algorithms as B varies. The reported value is a timing, so cells
// and trials run sequentially on one core regardless of o.Workers — running
// them concurrently would measure scheduler contention, not algorithm cost.
func Fig1b(o ExpOptions) (*Table, error) {
	o = o.withDefaults()
	tbl := NewTable("Fig 1(b): CPU time (s) vs budget B", "B", nil)
	for _, alg := range []string{AlgT1On, AlgTBOff, AlgCOff, AlgIncr} {
		cfg, err := o.config(alg)
		if err != nil {
			return nil, err
		}
		cfg.Workers = 1
		cfg.Build.Workers = 1
		for _, b := range o.Budgets {
			c := cfg
			c.Budget = b
			st, err := RunTrials(c, o.Trials)
			if err != nil {
				return nil, fmt.Errorf("fig1b %s B=%d: %w", alg, b, err)
			}
			tbl.Set(alg, float64(b), st.MeanTotalTime.Seconds())
			o.progress("fig1b %-8s B=%-3d time=%v", alg, b, st.MeanTotalTime)
		}
	}
	tbl.Footnote = fmt.Sprintf("N=%d K=%d trials=%d (relative ordering is the claim, not absolute seconds)",
		o.N, o.K, o.Trials)
	return tbl, nil
}

// MeasureComparison reproduces the §IV claim that structure-aware measures
// (U_MPO, U_Hw, U_ORA) drive selection better than plain entropy U_H: final
// distance of T1-on under each measure, as B varies.
func MeasureComparison(o ExpOptions) (*Table, error) {
	o = o.withDefaults()
	tbl := NewTable("Measure comparison: T1-on distance vs budget per measure", "B", nil)
	var cells []cellJob
	for _, m := range []string{"H", "Hw", "ORA", "MPO"} {
		oo := o
		oo.Measure = m
		cfg, err := oo.config(AlgT1On)
		if err != nil {
			return nil, err
		}
		for _, b := range o.Budgets {
			m, b, c := m, b, cellConfig(cfg, b)
			cells = append(cells, cellJob{"U_" + m, float64(b), func() (float64, error) {
				st, err := RunTrials(c, o.Trials)
				if err != nil {
					return 0, fmt.Errorf("measures %s B=%d: %w", m, b, err)
				}
				return st.MeanDistance, nil
			}})
		}
	}
	if err := runCells(tbl, cells, o.Workers); err != nil {
		return nil, err
	}
	tbl.Footnote = fmt.Sprintf("N=%d K=%d trials=%d algorithm=T1-on", o.N, o.K, o.Trials)
	return tbl, nil
}

// NoisyWorkers reproduces the §III.C/§IV noisy-crowd experiment: T1-on final
// distance vs budget for worker accuracies 1.0, 0.85, 0.7 and for a 3-vote
// majority of 0.7-accuracy workers.
func NoisyWorkers(o ExpOptions) (*Table, error) {
	o = o.withDefaults()
	tbl := NewTable("Noisy workers: T1-on distance vs budget per accuracy", "B", nil)
	type series struct {
		label    string
		accuracy float64
		votes    int
	}
	ss := []series{
		{"p=1.0", 1.0, 1},
		{"p=0.85", 0.85, 1},
		{"p=0.7", 0.7, 1},
		{"p=0.7 maj3", 0.7, 3},
	}
	var cells []cellJob
	for _, s := range ss {
		cfg, err := o.config(AlgT1On)
		if err != nil {
			return nil, err
		}
		for _, b := range o.Budgets {
			s, b, c := s, b, cellConfig(cfg, b)
			cells = append(cells, cellJob{s.label, float64(b), func() (float64, error) {
				acc := 0.0
				for trial := 0; trial < o.Trials; trial++ {
					res, err := RunNoisyTrial(c, s.accuracy, s.votes, c.Seed*7919+int64(trial))
					if err != nil {
						return 0, fmt.Errorf("noisy %s B=%d: %w", s.label, b, err)
					}
					acc += res.FinalDistance
				}
				return acc / float64(o.Trials), nil
			}})
		}
	}
	if err := runCells(tbl, cells, o.Workers); err != nil {
		return nil, err
	}
	tbl.Footnote = fmt.Sprintf("N=%d K=%d trials=%d (maj3 costs 3 worker answers per question)", o.N, o.K, o.Trials)
	return tbl, nil
}

// RunNoisyTrial wires a fresh world and a noisy majority-voting platform
// into one run — exposed for the noisy-crowd benchmarks. votes must be at
// least 1; even counts are rounded up to the next odd number by the platform
// so that majority aggregation can never tie (see crowd.Platform).
func RunNoisyTrial(cfg Config, accuracy float64, votes int, seed int64) (*Result, error) {
	if votes < 1 {
		return nil, fmt.Errorf("engine: votes = %d, need at least one worker answer per question", votes)
	}
	c := cfg
	c.Seed = seed
	rng := rand.New(rand.NewSource(seed))
	truth := crowd.SampleTruth(c.Dists, rng)
	c.Truth = truth
	if accuracy >= 1 && votes <= 1 {
		return Run(c)
	}
	pf, err := crowd.NewUniformPlatform(truth, 10, accuracy, rng)
	if err != nil {
		return nil, err
	}
	pf.Votes = votes
	c.Crowd = pf
	return Run(c)
}

// NonUniform reproduces the §IV claim that the algorithms also work with
// non-uniform tuple score distributions: T1-on distance vs budget for
// uniform, Gaussian and triangular score pdfs of equal support width.
func NonUniform(o ExpOptions) (*Table, error) {
	o = o.withDefaults()
	tbl := NewTable("Non-uniform score distributions: T1-on distance vs budget", "B", nil)
	var cells []cellJob
	for _, fam := range []dataset.Family{dataset.Uniform, dataset.Gaussian, dataset.Triangular} {
		ds, err := dataset.Generate(dataset.Spec{
			N: o.N, Spacing: o.Spacing, Width: o.Width, Family: fam, Seed: o.Seed,
		})
		if err != nil {
			return nil, err
		}
		m, err := uncertainty.New(o.Measure)
		if err != nil {
			return nil, err
		}
		cfg := Config{
			Dists: ds, K: o.K, Algorithm: AlgT1On, Measure: m,
			Build: tpo.BuildOptions{GridSize: o.GridSize}, Seed: o.Seed,
		}
		for _, b := range o.Budgets {
			fam, b, c := fam, b, cellConfig(cfg, b)
			cells = append(cells, cellJob{string(fam), float64(b), func() (float64, error) {
				st, err := RunTrials(c, o.Trials)
				if err != nil {
					return 0, fmt.Errorf("nonuniform %s B=%d: %w", fam, b, err)
				}
				return st.MeanDistance, nil
			}})
		}
	}
	if err := runCells(tbl, cells, o.Workers); err != nil {
		return nil, err
	}
	tbl.Footnote = fmt.Sprintf("N=%d K=%d trials=%d equal support width %g", o.N, o.K, o.Trials, o.Width)
	return tbl, nil
}

// Scalability reproduces the §III.D claim that incr suits large, highly
// uncertain datasets: full-build versus incremental time and tree size as N
// grows. Build times are the reported value, so the sweep runs sequentially
// on one core regardless of o.Workers.
func Scalability(o ExpOptions) (*Table, error) {
	o = o.withDefaults()
	ns := []int{8, 12, 16, 20, 24}
	if o.Quick {
		ns = []int{6, 9, 12}
	}
	tbl := NewTable("Scalability: build cost vs N (full vs incremental)", "N", nil)
	for _, n := range ns {
		oo := o
		oo.N = n
		fullCfg, err := oo.config(AlgTBOff)
		if err != nil {
			return nil, err
		}
		fullCfg.Budget = min(oo.RoundSize*2, 10)
		fullCfg.Workers = 1
		fullCfg.Build.Workers = 1
		incCfg := fullCfg
		incCfg.Algorithm = AlgIncr

		fullStats, err := RunTrials(fullCfg, o.Trials)
		if err != nil {
			return nil, fmt.Errorf("scale full N=%d: %w", n, err)
		}
		incStats, err := RunTrials(incCfg, o.Trials)
		if err != nil {
			return nil, fmt.Errorf("scale incr N=%d: %w", n, err)
		}
		tbl.Set("full build (s)", float64(n), fullStats.MeanBuildTime.Seconds())
		tbl.Set("incr build (s)", float64(n), incStats.MeanBuildTime.Seconds())
		tbl.Set("full leaves", float64(n), fullStats.MeanFinalLeaves)
		tbl.Set("incr leaves", float64(n), incStats.MeanFinalLeaves)
		tbl.Set("Δdistance", float64(n), incStats.MeanDistance-fullStats.MeanDistance)
	}
	tbl.Footnote = fmt.Sprintf("K=%d trials=%d budget=%d roundSize=%d", o.K, o.Trials, min(o.RoundSize*2, 10), o.RoundSize)
	return tbl, nil
}

// Experiments maps experiment ids to their runners, for the CLI.
var Experiments = map[string]func(ExpOptions) (*Table, error){
	"fig1a":      Fig1a,
	"fig1b":      Fig1b,
	"measures":   MeasureComparison,
	"noisy":      NoisyWorkers,
	"nonuniform": NonUniform,
	"scale":      Scalability,
}

// ExperimentNames returns the sorted experiment ids.
func ExperimentNames() []string {
	names := make([]string, 0, len(Experiments))
	for n := range Experiments {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
