package engine

import (
	"fmt"
	"runtime"
	"time"

	"crowdtopk/internal/numeric"
	"crowdtopk/internal/par"
)

// TrialStats aggregates repeated runs of the same configuration over
// independently sampled worlds.
type TrialStats struct {
	Algorithm string
	Trials    int

	MeanDistance, StdDistance     float64
	MeanInitialDistance           float64
	MeanAsked                     float64
	MeanFinalLeaves               float64
	ResolvedFraction              float64
	MeanUncertainty               float64
	MeanTotalTime                 time.Duration
	MeanBuildTime, MeanSelectTime time.Duration
	MeanApplyTime                 time.Duration
	Contradictions                int
}

// RunTrials executes cfg `trials` times with per-trial seeds derived from
// cfg.Seed, sampling a fresh world each time, and aggregates the results.
//
// Trials run concurrently, bounded by cfg.Workers (0 = GOMAXPROCS). The
// worker budget is consumed here, at the outermost parallel level: when
// trials run in parallel, each trial's build runs sequentially, so the
// goroutine count stays bounded by the budget instead of multiplying across
// nesting levels. Every trial owns an RNG derived from its seed, so the
// per-trial results — and, because aggregation folds them in trial order,
// the statistics — are identical for every worker count. A shared cfg.Crowd
// is the one stateful input a caller can inject; when present, trials run
// sequentially so the crowd observes the same question stream a serial
// caller would produce.
func RunTrials(cfg Config, trials int) (*TrialStats, error) {
	if trials < 1 {
		return nil, fmt.Errorf("engine: trials = %d", trials)
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > trials {
		workers = trials
	}
	if cfg.Crowd != nil {
		workers = 1 // external crowds are stateful and not ours to share
	}
	results := make([]*Result, trials)
	errs := par.For(trials, workers, func(_, t int) error {
		c := cfg
		c.Seed = cfg.Seed*1_000_003 + int64(t)
		c.Truth = nil // force a fresh world per trial
		if workers > 1 {
			c.Workers = 1 // the budget is spent on trial-level parallelism
			c.Build.Workers = 1
		}
		var err error
		results[t], err = Run(c)
		return err
	})

	// Check every trial's error before touching results: after a failure,
	// par.For skips trials it has not started yet, leaving BOTH errs[t] and
	// results[t] nil for the skipped indices — only an error-free run
	// guarantees every result is populated.
	for t, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("engine: trial %d: %w", t, err)
		}
	}

	dists := make([]float64, 0, trials)
	st := &TrialStats{Algorithm: cfg.Algorithm, Trials: trials}
	var totalNS, buildNS, selNS, applyNS float64
	for _, res := range results {
		dists = append(dists, res.FinalDistance)
		st.MeanInitialDistance += res.InitialDistance
		st.MeanAsked += float64(res.Asked)
		st.MeanFinalLeaves += float64(res.FinalLeaves)
		st.MeanUncertainty += res.FinalUncertainty
		if res.Resolved {
			st.ResolvedFraction++
		}
		st.Contradictions += res.Contradictions
		totalNS += float64(res.TotalTime)
		buildNS += float64(res.BuildTime)
		selNS += float64(res.SelectTime)
		applyNS += float64(res.ApplyTime)
	}
	n := float64(trials)
	st.MeanDistance = numeric.Mean(dists)
	st.StdDistance = numeric.StdDev(dists)
	st.MeanInitialDistance /= n
	st.MeanAsked /= n
	st.MeanFinalLeaves /= n
	st.MeanUncertainty /= n
	st.ResolvedFraction /= n
	st.MeanTotalTime = time.Duration(totalNS / n)
	st.MeanBuildTime = time.Duration(buildNS / n)
	st.MeanSelectTime = time.Duration(selNS / n)
	st.MeanApplyTime = time.Duration(applyNS / n)
	return st, nil
}
