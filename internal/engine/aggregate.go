package engine

import (
	"fmt"
	"time"

	"crowdtopk/internal/numeric"
)

// TrialStats aggregates repeated runs of the same configuration over
// independently sampled worlds.
type TrialStats struct {
	Algorithm string
	Trials    int

	MeanDistance, StdDistance     float64
	MeanInitialDistance           float64
	MeanAsked                     float64
	MeanFinalLeaves               float64
	ResolvedFraction              float64
	MeanUncertainty               float64
	MeanTotalTime                 time.Duration
	MeanBuildTime, MeanSelectTime time.Duration
	MeanApplyTime                 time.Duration
	Contradictions                int
}

// RunTrials executes cfg `trials` times with per-trial seeds derived from
// cfg.Seed, sampling a fresh world each time, and aggregates the results.
func RunTrials(cfg Config, trials int) (*TrialStats, error) {
	if trials < 1 {
		return nil, fmt.Errorf("engine: trials = %d", trials)
	}
	dists := make([]float64, 0, trials)
	st := &TrialStats{Algorithm: cfg.Algorithm, Trials: trials}
	var totalNS, buildNS, selNS, applyNS float64
	for t := 0; t < trials; t++ {
		c := cfg
		c.Seed = cfg.Seed*1_000_003 + int64(t)
		c.Truth = nil // force a fresh world per trial
		res, err := Run(c)
		if err != nil {
			return nil, fmt.Errorf("engine: trial %d: %w", t, err)
		}
		dists = append(dists, res.FinalDistance)
		st.MeanInitialDistance += res.InitialDistance
		st.MeanAsked += float64(res.Asked)
		st.MeanFinalLeaves += float64(res.FinalLeaves)
		st.MeanUncertainty += res.FinalUncertainty
		if res.Resolved {
			st.ResolvedFraction++
		}
		st.Contradictions += res.Contradictions
		totalNS += float64(res.TotalTime)
		buildNS += float64(res.BuildTime)
		selNS += float64(res.SelectTime)
		applyNS += float64(res.ApplyTime)
	}
	n := float64(trials)
	st.MeanDistance = numeric.Mean(dists)
	st.StdDistance = numeric.StdDev(dists)
	st.MeanInitialDistance /= n
	st.MeanAsked /= n
	st.MeanFinalLeaves /= n
	st.MeanUncertainty /= n
	st.ResolvedFraction /= n
	st.MeanTotalTime = time.Duration(totalNS / n)
	st.MeanBuildTime = time.Duration(buildNS / n)
	st.MeanSelectTime = time.Duration(selNS / n)
	st.MeanApplyTime = time.Duration(applyNS / n)
	return st, nil
}
