package engine

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"crowdtopk/internal/numeric"
)

func quickOpts() ExpOptions {
	return ExpOptions{Quick: true, Trials: 2, Seed: 7}
}

func TestTableSetGetAndColumns(t *testing.T) {
	tbl := NewTable("t", "x", []string{"a"})
	tbl.Set("a", 1, 0.5)
	tbl.Set("b", 2, 0.25) // new column appended on demand
	tbl.Set("a", 2, 0.75)
	if v, ok := tbl.Get("a", 1); !ok || v != 0.5 {
		t.Fatalf("Get(a,1) = %g, %v", v, ok)
	}
	if _, ok := tbl.Get("a", 99); ok {
		t.Fatal("absent x reported present")
	}
	if _, ok := tbl.Get("zzz", 1); ok {
		t.Fatal("absent column reported present")
	}
	if len(tbl.Columns) != 2 {
		t.Fatalf("columns = %v", tbl.Columns)
	}
	if len(tbl.XValues) != 2 || tbl.XValues[0] != 1 || tbl.XValues[1] != 2 {
		t.Fatalf("x values = %v (must be sorted, deduped)", tbl.XValues)
	}
	tbl.Set("a", 1, 0.9) // overwrite, no new x
	if len(tbl.XValues) != 2 {
		t.Fatalf("x values grew on overwrite: %v", tbl.XValues)
	}
}

func TestTableTextRendering(t *testing.T) {
	tbl := NewTable("My Experiment", "B", nil)
	tbl.Set("alg", 5, 0.125)
	tbl.Footnote = "note"
	var buf bytes.Buffer
	if _, err := tbl.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"My Experiment", "B", "alg", "0.125", "note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text output missing %q:\n%s", want, out)
		}
	}
}

func TestTableCSVAndJSON(t *testing.T) {
	tbl := NewTable("t", "x", nil)
	tbl.Set("s1", 1, 0.5)
	tbl.Set("s1", 2, 0.25)
	tbl.Set("s2", 1, 1.5)

	var csvBuf bytes.Buffer
	if err := tbl.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d: %q", len(lines), csvBuf.String())
	}
	if lines[0] != "x,s1,s2" {
		t.Fatalf("csv header = %q", lines[0])
	}
	// s2 has no value at x=2: empty cell.
	if !strings.HasSuffix(lines[2], ",") {
		t.Fatalf("missing cell not empty: %q", lines[2])
	}

	var jsonBuf bytes.Buffer
	if err := tbl.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		XValues []float64            `json:"x_values"`
		Series  map[string][]float64 `json:"series"`
	}
	if err := json.Unmarshal(jsonBuf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded.XValues) != 2 || len(decoded.Series["s1"]) != 2 {
		t.Fatalf("json decoded = %+v", decoded)
	}
}

func TestTableRenderFormats(t *testing.T) {
	tbl := NewTable("t", "x", nil)
	tbl.Set("a", 1, 1)
	for _, f := range []string{"", "text", "csv", "json"} {
		var buf bytes.Buffer
		if err := tbl.Render(&buf, f); err != nil {
			t.Fatalf("format %q: %v", f, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("format %q produced no output", f)
		}
	}
	if err := tbl.Render(&bytes.Buffer{}, "xml"); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestFig1aQuickShape(t *testing.T) {
	tbl, err := Fig1a(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	// All algorithms share the B=0 distance and improve (weakly) with B.
	base, ok := tbl.Get(AlgT1On, 0)
	if !ok {
		t.Fatal("missing B=0 cell")
	}
	for _, alg := range Fig1aAlgorithms {
		v0, ok := tbl.Get(alg, 0)
		if !ok || !numeric.AlmostEqual(v0, base, 1e-3) {
			t.Fatalf("%s B=0 distance %g != %g", alg, v0, base)
		}
		vEnd, ok := tbl.Get(alg, 10)
		if !ok {
			t.Fatalf("%s missing final budget", alg)
		}
		if vEnd > v0+1e-9 {
			t.Fatalf("%s distance grew with budget: %g → %g", alg, v0, vEnd)
		}
	}
	// The informed strategies must beat random at the final budget.
	t1, _ := tbl.Get(AlgT1On, 10)
	rd, _ := tbl.Get(AlgRandom, 10)
	if t1 > rd+1e-9 {
		t.Fatalf("T1-on (%g) worse than random (%g) at final budget", t1, rd)
	}
}

func TestFig1bQuickShape(t *testing.T) {
	tbl, err := Fig1b(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	// incr must be the cheapest algorithm at the largest budget.
	inc, ok := tbl.Get(AlgIncr, 10)
	if !ok {
		t.Fatal("missing incr cell")
	}
	for _, alg := range []string{AlgT1On, AlgTBOff, AlgCOff} {
		v, ok := tbl.Get(alg, 10)
		if !ok {
			t.Fatalf("missing %s cell", alg)
		}
		if v < inc {
			t.Fatalf("%s (%gs) cheaper than incr (%gs)", alg, v, inc)
		}
	}
}

func TestMeasureComparisonQuick(t *testing.T) {
	tbl, err := MeasureComparison(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, col := range []string{"U_H", "U_Hw", "U_ORA", "U_MPO"} {
		if _, ok := tbl.Get(col, 0); !ok {
			t.Fatalf("missing column %s", col)
		}
	}
}

func TestNoisyWorkersQuick(t *testing.T) {
	tbl, err := NoisyWorkers(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Perfect workers dominate noisy ones at the final budget.
	perfect, ok1 := tbl.Get("p=1.0", 10)
	noisy, ok2 := tbl.Get("p=0.7", 10)
	if !ok1 || !ok2 {
		t.Fatal("missing cells")
	}
	if perfect > noisy+1e-9 {
		t.Fatalf("perfect crowd (%g) worse than p=0.7 (%g)", perfect, noisy)
	}
}

func TestNonUniformQuick(t *testing.T) {
	tbl, err := NonUniform(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, fam := range []string{"uniform", "gaussian", "triangular"} {
		v0, ok0 := tbl.Get(fam, 0)
		vEnd, okE := tbl.Get(fam, 10)
		if !ok0 || !okE {
			t.Fatalf("missing cells for %s", fam)
		}
		if vEnd > v0+1e-9 {
			t.Fatalf("%s distance grew: %g → %g", fam, v0, vEnd)
		}
	}
}

func TestScalabilityQuick(t *testing.T) {
	tbl, err := Scalability(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.XValues) < 3 {
		t.Fatalf("x values = %v", tbl.XValues)
	}
	for _, x := range tbl.XValues {
		full, ok := tbl.Get("full leaves", x)
		if !ok {
			t.Fatalf("missing full leaves at N=%g", x)
		}
		if full <= 0 {
			t.Fatalf("full leaves = %g at N=%g", full, x)
		}
	}
}

func TestAblationGridQuick(t *testing.T) {
	tbl, err := AblationGrid(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Error must decrease as the grid refines.
	errs := make([]float64, 0, len(tbl.XValues))
	for _, x := range tbl.XValues {
		v, ok := tbl.Get("max leaf prob error", x)
		if !ok {
			t.Fatalf("missing error cell at grid=%g", x)
		}
		errs = append(errs, v)
	}
	for i := 1; i < len(errs); i++ {
		if errs[i] > errs[i-1]+1e-12 {
			t.Fatalf("grid refinement increased error: %v", errs)
		}
	}
}

func TestAblationEpsilonQuick(t *testing.T) {
	o := quickOpts()
	tbl, err := AblationEpsilon(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.XValues) != 4 {
		t.Fatalf("x values = %v", tbl.XValues)
	}
}

func TestAblationRoundSizeQuick(t *testing.T) {
	tbl, err := AblationRoundSize(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range tbl.XValues {
		q, ok := tbl.Get("questions", x)
		if !ok || q < 0 {
			t.Fatalf("questions at n=%g: %g, %v", x, q, ok)
		}
	}
}

func TestTrajectoryQuick(t *testing.T) {
	tbl, err := Trajectory(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Distances along the trajectory must be monotone non-increasing with
	// perfect answers.
	prev := 2.0
	for _, x := range tbl.XValues {
		v, ok := tbl.Get("mean distance", x)
		if !ok {
			t.Fatalf("missing trajectory cell at %g", x)
		}
		if v > prev+1e-9 {
			t.Fatalf("trajectory increased at question %g: %g → %g", x, prev, v)
		}
		prev = v
	}
}

func TestRecordTrajectoryInRun(t *testing.T) {
	cfg := baseConfig(t, AlgT1On)
	cfg.RecordTrajectory = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trajectory) != res.Asked+1 {
		t.Fatalf("trajectory length %d, want asked+1 = %d", len(res.Trajectory), res.Asked+1)
	}
	if res.Trajectory[0] != res.InitialDistance {
		t.Fatalf("trajectory[0] = %g, want initial distance %g", res.Trajectory[0], res.InitialDistance)
	}
	if res.Trajectory[len(res.Trajectory)-1] != res.FinalDistance {
		t.Fatalf("trajectory end = %g, want final %g", res.Trajectory[len(res.Trajectory)-1], res.FinalDistance)
	}
}

func TestExperimentRegistry(t *testing.T) {
	names := ExperimentNames()
	if len(names) < 8 {
		t.Fatalf("experiments registered: %v", names)
	}
	for _, want := range []string{"fig1a", "fig1b", "measures", "noisy", "nonuniform", "scale",
		"ablation-grid", "ablation-eps", "ablation-round", "trajectory"} {
		if _, ok := Experiments[want]; !ok {
			t.Fatalf("experiment %q missing from registry", want)
		}
	}
	// Sorted.
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
}

func TestConfigForAppliesDefaults(t *testing.T) {
	cfg, err := ConfigFor(ExpOptions{}, AlgT1On)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Dists) != 20 || cfg.K != 5 {
		t.Fatalf("defaults not applied: N=%d K=%d", len(cfg.Dists), cfg.K)
	}
	if cfg.BranchEpsilon != 1e-5 {
		t.Fatalf("branch epsilon default = %g", cfg.BranchEpsilon)
	}
}
