package engine

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV renders the table as CSV (header row, then one row per x value).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{t.XLabel}, t.Columns...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, x := range t.XValues {
		row := make([]string, 0, len(header))
		row = append(row, strconv.FormatFloat(x, 'g', -1, 64))
		for _, c := range t.Columns {
			if v, ok := t.Get(c, x); ok {
				row = append(row, strconv.FormatFloat(v, 'g', 8, 64))
			} else {
				row = append(row, "")
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// tableJSON is the stable JSON form of a Table.
type tableJSON struct {
	Name     string               `json:"name"`
	XLabel   string               `json:"x_label"`
	XValues  []float64            `json:"x_values"`
	Series   map[string][]float64 `json:"series"`
	Footnote string               `json:"footnote,omitempty"`
}

// WriteJSON renders the table as a single JSON document with one series per
// column, aligned to XValues (missing cells serialize as NaN-free nulls by
// being skipped: series always have len(XValues) entries with zero for
// absent cells, and an explicit mask is omitted for simplicity).
func (t *Table) WriteJSON(w io.Writer) error {
	out := tableJSON{
		Name:     t.Name,
		XLabel:   t.XLabel,
		XValues:  t.XValues,
		Series:   make(map[string][]float64, len(t.Columns)),
		Footnote: t.Footnote,
	}
	for _, c := range t.Columns {
		vals := make([]float64, len(t.XValues))
		for i, x := range t.XValues {
			v, _ := t.Get(c, x)
			vals[i] = v
		}
		out.Series[c] = vals
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Render writes the table in the requested format: "text" (default), "csv"
// or "json".
func (t *Table) Render(w io.Writer, format string) error {
	switch format {
	case "", "text":
		_, err := t.WriteTo(w)
		return err
	case "csv":
		return t.WriteCSV(w)
	case "json":
		return t.WriteJSON(w)
	default:
		return fmt.Errorf("engine: unknown table format %q (want text, csv or json)", format)
	}
}
