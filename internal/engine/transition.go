package engine

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"crowdtopk/internal/selection"
	"crowdtopk/internal/tpo"
)

// This file is the single home of the protocol's state transitions — how an
// answer conditions the tree, how strategies are instantiated by name, and
// how the incr algorithm plans a question round. Both execution paths
// consume it: the synchronous batch runner (Run) and the asynchronous
// session subsystem (internal/session), so the served protocol cannot drift
// from the one the experiments validate.

// ApplyAnswer conditions the tree on one crowd answer: trusted answers
// (reliability >= 1) prune inconsistent orderings outright, noisy answers
// apply the Bayesian reweighting of §III.C. A contradictory answer — one
// that conflicts with every remaining ordering, possible only when trusted
// answers meet a tree whose true prefix was numerically pruned at build
// time — carries no usable information: the tree is left unchanged and
// contradicted is true. Any other failure is a real error.
func ApplyAnswer(t *tpo.Tree, a tpo.Answer, reliability float64) (contradicted bool, err error) {
	if reliability >= 1 {
		err = t.Prune(a)
	} else {
		err = t.Reweight(a, reliability)
	}
	if errors.Is(err, tpo.ErrContradiction) {
		return true, nil
	}
	return false, err
}

// ApplyAnswerLive is ApplyAnswer for callers holding a live selection
// engine: after the tree is conditioned, the engine is brought in line with
// an in-place update (tombstoning pruned leaves, reweighting survivors)
// instead of being rebuilt on the next round. A contradicted answer leaves
// both the tree and the engine untouched. live may be nil.
func ApplyAnswerLive(ctx context.Context, t *tpo.Tree, a tpo.Answer, reliability float64, live *selection.LiveEngine) (contradicted bool, err error) {
	contradicted, err = ApplyAnswer(t, a, reliability)
	if err == nil && !contradicted {
		live.Sync(ctx, t, reliability >= 1)
	}
	return contradicted, err
}

// OfflineStrategy instantiates the named batch strategy. The rng drives the
// random baselines and is unused by the deterministic strategies.
func OfflineStrategy(name string, rng *rand.Rand) (selection.Offline, error) {
	switch name {
	case AlgRandom:
		return selection.NewRandom(rng), nil
	case AlgNaive:
		return selection.NewNaive(rng), nil
	case AlgTBOff:
		return selection.TBOff{}, nil
	case AlgCOff:
		return selection.COff{}, nil
	case AlgAStarOff:
		return selection.AStarOff{}, nil
	case AlgExhaustive:
		return selection.Exhaustive{}, nil
	default:
		return nil, fmt.Errorf("%w: %q is not offline", ErrUnknownAlgorithm, name)
	}
}

// OnlineStrategy instantiates the named one-question-at-a-time strategy.
func OnlineStrategy(name string) (selection.Online, error) {
	switch name {
	case AlgT1On:
		return selection.T1On{}, nil
	case AlgAStarOn:
		return selection.AStarOn{}, nil
	default:
		return nil, fmt.Errorf("%w: %q is not online", ErrUnknownAlgorithm, name)
	}
}

// IsOffline reports whether the named algorithm selects a whole batch up
// front (the offline strategies of §III.A and the random baselines).
func IsOffline(name string) bool {
	switch name {
	case AlgRandom, AlgNaive, AlgTBOff, AlgCOff, AlgAStarOff, AlgExhaustive:
		return true
	}
	return false
}

// IsOnline reports whether the named algorithm picks one question at a time
// conditioned on all previous answers (§III.B).
func IsOnline(name string) bool {
	return name == AlgT1On || name == AlgAStarOn
}

// PlanIncrRound runs the round head of the incr algorithm (§III.D): extend
// the tree level by level while there are not enough relevant questions to
// fill a round of min(roundSize, remaining), then select the round with the
// TB-off criterion. It returns an empty batch once the tree is fully built
// and no relevant question remains. buildTime and selectTime report where
// the wall-clock went, for the runner's timing breakdown.
func PlanIncrRound(t *tpo.Tree, k, roundSize, remaining int, ctx *selection.Context) (batch []tpo.Question, buildTime, selectTime time.Duration, err error) {
	if remaining <= 0 {
		return nil, 0, 0, nil
	}
	qs := t.LeafSet().RelevantQuestions()
	for t.Depth() < k && len(qs) < min(roundSize, remaining) {
		start := time.Now()
		err := t.Extend()
		buildTime += time.Since(start)
		if err != nil {
			return nil, buildTime, 0, err
		}
		// Extension changes the leaf universe in ways in-place updates do
		// not model; a held engine is stale from here.
		ctx.Live.Invalidate()
		qs = t.LeafSet().RelevantQuestions()
	}
	if len(qs) == 0 {
		return nil, buildTime, 0, nil
	}
	m := min(min(roundSize, remaining), len(qs))
	start := time.Now()
	batch, err = (selection.TBOff{}).SelectBatch(t.LeafSet(), m, ctx)
	selectTime = time.Since(start)
	if err != nil {
		return nil, buildTime, selectTime, err
	}
	return batch, buildTime, selectTime, nil
}

// ExtendToDepth materializes any missing tree levels up to depth k, so the
// reported result is a depth-k leaf set comparable across algorithms. It
// returns the construction time spent.
func ExtendToDepth(t *tpo.Tree, k int) (time.Duration, error) {
	var total time.Duration
	for t.Depth() < k {
		start := time.Now()
		err := t.Extend()
		total += time.Since(start)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
