// Package crowd simulates the crowdsourcing platform of the paper's
// evaluation: a ground-truth ordering drawn from the uncertain score model,
// and workers who answer pairwise comparison questions correctly with a
// configurable accuracy (§III.C). It substitutes for a real crowdsourcing
// marketplace — the algorithms only ever observe answers, and the simulated
// answer statistics (correct with probability p, independently per task) are
// exactly the paper's worker model.
package crowd

import (
	"fmt"
	"math/rand"
	"sort"

	"crowdtopk/internal/dist"
	"crowdtopk/internal/rank"
	"crowdtopk/internal/tpo"
)

// GroundTruth holds the realized scores of every tuple and the induced real
// ordering ω_r. In each simulation trial the "state of the world" is one
// draw from the joint score distribution; the crowd knows it, the query
// processor does not.
type GroundTruth struct {
	Scores []float64
	// Real is the full ordering of all tuples by decreasing realized score.
	Real rank.Ordering
}

// SampleTruth draws one world from the score model.
func SampleTruth(ds []dist.Distribution, rng *rand.Rand) *GroundTruth {
	scores := make([]float64, len(ds))
	for i, d := range ds {
		scores[i] = dist.Sample(d, rng)
	}
	return TruthFromScores(scores)
}

// TruthFromScores builds a ground truth from explicit scores (ties broken by
// tuple id, matching the deterministic tie rule of §I).
func TruthFromScores(scores []float64) *GroundTruth {
	g := &GroundTruth{Scores: append([]float64(nil), scores...)}
	g.Real = make(rank.Ordering, len(scores))
	for i := range g.Real {
		g.Real[i] = i
	}
	sort.SliceStable(g.Real, func(a, b int) bool {
		sa, sb := g.Scores[g.Real[a]], g.Scores[g.Real[b]]
		if sa != sb {
			return sa > sb
		}
		return g.Real[a] < g.Real[b]
	})
	return g
}

// Correct returns the true answer to q under this world.
func (g *GroundTruth) Correct(q tpo.Question) tpo.Answer {
	si, sj := g.Scores[q.I], g.Scores[q.J]
	yes := si > sj || (si == sj && q.I < q.J)
	return tpo.Answer{Q: q, Yes: yes}
}

// TopK returns the real top-k prefix ordering.
func (g *GroundTruth) TopK(k int) rank.Ordering { return g.Real.Prefix(k).Clone() }

// Distance computes the paper's quality metric D(ω_r, T_K): the
// probability-weighted generalized Kendall tau distance (penalty parameter
// p) between the orderings of the tree and the real top-K prefix, normalized
// to [0, 1].
func (g *GroundTruth) Distance(ls *tpo.LeafSet, penalty float64) float64 {
	if penalty == 0 {
		penalty = rank.DefaultPenalty
	}
	d := rank.NewTopKDist(g.TopK(ls.K), penalty)
	total := 0.0
	for i, p := range ls.Paths {
		if ls.W[i] == 0 {
			continue
		}
		total += ls.W[i] * d.Normalized(p)
	}
	return total
}

// String implements fmt.Stringer.
func (g *GroundTruth) String() string {
	return fmt.Sprintf("world %v", g.Real)
}
