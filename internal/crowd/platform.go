package crowd

import (
	"fmt"
	"math/rand"

	"crowdtopk/internal/tpo"
)

// Crowd is what the uncertainty-reduction engine sees: something that
// answers comparison questions with a known (assumed) reliability.
type Crowd interface {
	// Ask publishes the question and returns the (possibly aggregated)
	// answer.
	Ask(q tpo.Question) tpo.Answer
	// Reliability returns the probability that an Ask answer is correct,
	// used for the Bayesian reweighting of §III.C. 1 means answers may be
	// trusted for hard pruning.
	Reliability() float64
}

// Worker is a single crowd worker answering correctly with probability
// Accuracy and adversarially (flipped) otherwise.
type Worker struct {
	ID       string
	Accuracy float64
	rng      *rand.Rand
}

// NewWorker returns a worker with the given accuracy in (0, 1].
func NewWorker(id string, accuracy float64, rng *rand.Rand) (*Worker, error) {
	if accuracy <= 0 || accuracy > 1 {
		return nil, fmt.Errorf("crowd: worker accuracy %g outside (0, 1]", accuracy)
	}
	return &Worker{ID: id, Accuracy: accuracy, rng: rng}, nil
}

// Answer returns the worker's reply to q under the given world.
func (w *Worker) Answer(truth *GroundTruth, q tpo.Question) tpo.Answer {
	a := truth.Correct(q)
	if w.Accuracy < 1 && w.rng.Float64() >= w.Accuracy {
		a.Yes = !a.Yes
	}
	return a
}

// Assignment records one task routed to one worker, for audit and statistics.
type Assignment struct {
	Worker  string
	Q       tpo.Question
	A       tpo.Answer
	Correct bool
}

// Platform simulates a crowdsourcing marketplace: a pool of workers, random
// task routing, optional majority-vote aggregation, and cost accounting.
type Platform struct {
	truth   *GroundTruth
	workers []*Worker
	rng     *rand.Rand

	// Votes is the number of workers each Ask routes the question to; the
	// majority answer is returned. Non-positive values count as 1 (no
	// aggregation); even values are rounded up to the next odd number so a
	// majority always exists — an even panel can tie, and silently breaking
	// ties in one direction would bias answers while Reliability() reports
	// the accuracy of an odd panel. See effectiveVotes.
	Votes int
	// UnitCost is the monetary cost per worker-answer.
	UnitCost float64
	// Aggregation selects how multiple answers combine (MajorityVote by
	// default; WeightedVote uses qualification estimates).
	Aggregation Aggregation

	asked     int
	cost      float64
	log       []Assignment
	estimates map[string]float64 // qualification accuracy estimates by worker id
}

// NewPlatform builds a platform over the given world and worker pool.
func NewPlatform(truth *GroundTruth, workers []*Worker, rng *rand.Rand) (*Platform, error) {
	if truth == nil || len(workers) == 0 {
		return nil, fmt.Errorf("crowd: platform needs a world and at least one worker")
	}
	return &Platform{truth: truth, workers: workers, rng: rng, Votes: 1, UnitCost: 1}, nil
}

// NewUniformPlatform is a convenience constructor: n workers of identical
// accuracy.
func NewUniformPlatform(truth *GroundTruth, n int, accuracy float64, rng *rand.Rand) (*Platform, error) {
	workers := make([]*Worker, n)
	for i := range workers {
		w, err := NewWorker(fmt.Sprintf("w%02d", i), accuracy, rng)
		if err != nil {
			return nil, err
		}
		workers[i] = w
	}
	return NewPlatform(truth, workers, rng)
}

// effectiveVotes is the single authority on how many worker answers one Ask
// collects: Votes clamped to at least 1 and rounded up to the next odd
// number. Ask and Reliability both use it, so the Bayesian reweighting
// downstream always models exactly the aggregation the platform delivers.
func (p *Platform) effectiveVotes() int {
	v := p.Votes
	if v < 1 {
		v = 1
	}
	if v%2 == 0 {
		v++
	}
	return v
}

// Ask implements Crowd: the question is routed to effectiveVotes random
// workers and the aggregated answer returned (simple majority, or
// accuracy-weighted vote when Aggregation is WeightedVote).
func (p *Platform) Ask(q tpo.Question) tpo.Answer {
	if p.Aggregation == WeightedVote {
		return p.askWeighted(q)
	}
	votes := p.effectiveVotes()
	correct := p.truth.Correct(q)
	yes := 0
	for v := 0; v < votes; v++ {
		w := p.workers[p.rng.Intn(len(p.workers))]
		a := w.Answer(p.truth, q)
		p.asked++
		p.cost += p.UnitCost
		p.log = append(p.log, Assignment{Worker: w.ID, Q: q, A: a, Correct: a.Yes == correct.Yes})
		if a.Yes {
			yes++
		}
	}
	return tpo.Answer{Q: q, Yes: yes*2 > votes}
}

// Reliability implements Crowd: the majority-vote accuracy of the pool's
// mean worker accuracy over the panel size Ask actually uses.
func (p *Platform) Reliability() float64 {
	mean := 0.0
	for _, w := range p.workers {
		mean += w.Accuracy
	}
	mean /= float64(len(p.workers))
	return MajorityAccuracy(mean, p.effectiveVotes())
}

// WorkerAnswers returns how many individual worker answers were collected.
func (p *Platform) WorkerAnswers() int { return p.asked }

// Cost returns the total cost incurred.
func (p *Platform) Cost() float64 { return p.cost }

// Log returns the task-assignment audit trail.
func (p *Platform) Log() []Assignment { return p.log }

// CorrectFraction returns the empirical fraction of individually correct
// answers (0 when nothing was asked).
func (p *Platform) CorrectFraction() float64 {
	if len(p.log) == 0 {
		return 0
	}
	c := 0
	for _, a := range p.log {
		if a.Correct {
			c++
		}
	}
	return float64(c) / float64(len(p.log))
}

// MajorityAccuracy returns the probability that the majority of `votes`
// independent answers, each correct with probability p, is correct. votes is
// rounded up to the next odd number.
func MajorityAccuracy(p float64, votes int) float64 {
	if votes <= 1 {
		return p
	}
	if votes%2 == 0 {
		votes++
	}
	need := votes/2 + 1
	total := 0.0
	for k := need; k <= votes; k++ {
		total += binomPMF(votes, k, p)
	}
	if total > 1 {
		return 1
	}
	return total
}

func binomPMF(n, k int, p float64) float64 {
	c := 1.0
	for i := 0; i < k; i++ {
		c = c * float64(n-i) / float64(i+1)
	}
	pk := 1.0
	for i := 0; i < k; i++ {
		pk *= p
	}
	q := 1.0
	for i := 0; i < n-k; i++ {
		q *= 1 - p
	}
	return c * pk * q
}

// PerfectOracle is a Crowd that always answers correctly — the trusted-crowd
// setting of §III where answers prune the tree outright.
type PerfectOracle struct {
	Truth *GroundTruth
	count int
}

// Ask implements Crowd.
func (o *PerfectOracle) Ask(q tpo.Question) tpo.Answer {
	o.count++
	return o.Truth.Correct(q)
}

// Reliability implements Crowd.
func (o *PerfectOracle) Reliability() float64 { return 1 }

// Asked returns how many questions the oracle answered.
func (o *PerfectOracle) Asked() int { return o.count }
