package crowd

import (
	"math"
	"math/rand"
	"testing"

	"crowdtopk/internal/tpo"
)

// TestEvenVotesRoundedUpToOdd is the regression test for the even-votes
// bias: Ask used to collect an even panel and silently resolve ties as "No"
// (yes*2 > votes), while Reliability() modelled an odd panel via
// MajorityAccuracy — so the Bayesian reweighting used a reliability the
// platform did not deliver. Both now round through effectiveVotes: an even
// Votes setting convenes one extra worker, a majority always exists, and
// Reliability describes the panel Ask actually uses.
func TestEvenVotesRoundedUpToOdd(t *testing.T) {
	truth := TruthFromScores([]float64{2, 1})
	rng := rand.New(rand.NewSource(1))
	pf, err := NewUniformPlatform(truth, 8, 0.7, rng)
	if err != nil {
		t.Fatal(err)
	}
	pf.Votes = 4 // even: must behave exactly like 5

	if got, want := pf.Reliability(), MajorityAccuracy(pf.MeanAccuracy(), 5); got != want {
		t.Errorf("Reliability with Votes=4 = %v, want the 5-vote majority accuracy %v", got, want)
	}
	pf.Ask(tpo.NewQuestion(0, 1))
	// The old code collected exactly Votes (4) answers; the fixed platform
	// convenes the odd panel its reliability claims.
	if got := pf.WorkerAnswers(); got != 5 {
		t.Errorf("one Ask with Votes=4 collected %d worker answers, want 5", got)
	}
	if got, want := pf.Cost(), 5.0; got != want {
		t.Errorf("cost = %v, want %v", got, want)
	}
}

// TestVotesFloor: non-positive vote counts behave as a single answer in both
// Ask and Reliability.
func TestVotesFloor(t *testing.T) {
	truth := TruthFromScores([]float64{2, 1})
	rng := rand.New(rand.NewSource(2))
	pf, err := NewUniformPlatform(truth, 4, 0.9, rng)
	if err != nil {
		t.Fatal(err)
	}
	pf.Votes = 0
	if got := pf.Reliability(); math.Abs(got-0.9) > 1e-15 {
		t.Errorf("Reliability with Votes=0 = %v, want single-worker accuracy 0.9", got)
	}
	pf.Ask(tpo.NewQuestion(0, 1))
	if got := pf.WorkerAnswers(); got != 1 {
		t.Errorf("one Ask with Votes=0 collected %d worker answers, want 1", got)
	}
}

// TestEvenVotesNeverTie: with the odd panel, aggregate answers are decided
// by a strict majority — over many asks of an even-Votes platform with
// mediocre workers, the answer distribution must match what MajorityAccuracy
// predicts for the rounded panel (a tie-biased platform undershoots this
// badly, because every 2-2 split used to collapse to "No").
func TestEvenVotesNeverTie(t *testing.T) {
	truth := TruthFromScores([]float64{2, 1})
	rng := rand.New(rand.NewSource(3))
	pf, err := NewUniformPlatform(truth, 16, 0.7, rng)
	if err != nil {
		t.Fatal(err)
	}
	pf.Votes = 2 // behaves as 3
	q := tpo.NewQuestion(0, 1)
	const asks = 4000
	correct := 0
	for i := 0; i < asks; i++ {
		if pf.Ask(q).Yes == truth.Correct(q).Yes {
			correct++
		}
	}
	got := float64(correct) / asks
	want := MajorityAccuracy(0.7, 3) // 0.784
	// Old behavior: P(correct) = P(both right) = 0.49 — over 40σ away.
	if math.Abs(got-want) > 0.03 {
		t.Errorf("empirical majority accuracy %v, want ≈%v (Votes=2 rounded to 3)", got, want)
	}
	if got := pf.WorkerAnswers(); got != asks*3 {
		t.Errorf("worker answers = %d, want %d", got, asks*3)
	}
}
