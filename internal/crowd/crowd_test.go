package crowd

import (
	"math"
	"math/rand"
	"testing"

	"crowdtopk/internal/dist"
	"crowdtopk/internal/numeric"
	"crowdtopk/internal/rank"
	"crowdtopk/internal/tpo"
)

func TestTruthFromScoresOrdering(t *testing.T) {
	g := TruthFromScores([]float64{0.3, 0.9, 0.1, 0.9})
	// Scores: t1 = t3 = 0.9 (tie broken by id), t0 = 0.3, t2 = 0.1.
	want := rank.Ordering{1, 3, 0, 2}
	if !g.Real.Equal(want) {
		t.Fatalf("real ordering = %v, want %v", g.Real, want)
	}
	if got := g.TopK(2); !got.Equal(rank.Ordering{1, 3}) {
		t.Fatalf("TopK(2) = %v", got)
	}
}

func TestCorrectAnswers(t *testing.T) {
	g := TruthFromScores([]float64{0.2, 0.8})
	a := g.Correct(tpo.NewQuestion(0, 1))
	if a.Higher() != 1 {
		t.Fatalf("correct answer ranks %d higher, want 1", a.Higher())
	}
	// Tie: broken by lower id.
	g2 := TruthFromScores([]float64{0.5, 0.5})
	if a := g2.Correct(tpo.NewQuestion(0, 1)); a.Higher() != 0 {
		t.Fatalf("tie answer ranks %d higher, want 0", a.Higher())
	}
}

func TestSampleTruthWithinSupports(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ds := make([]dist.Distribution, 4)
	for i := range ds {
		u, err := dist.NewUniformAround(float64(i), 0.5)
		if err != nil {
			t.Fatal(err)
		}
		ds[i] = u
	}
	for trial := 0; trial < 50; trial++ {
		g := SampleTruth(ds, rng)
		for i, s := range g.Scores {
			lo, hi := ds[i].Support()
			if s < lo || s > hi {
				t.Fatalf("score %d = %g outside [%g, %g]", i, s, lo, hi)
			}
		}
		if len(g.Real) != 4 {
			t.Fatalf("real ordering size %d", len(g.Real))
		}
	}
}

func TestPerfectWorkerAlwaysCorrect(t *testing.T) {
	g := TruthFromScores([]float64{3, 1, 2})
	w, err := NewWorker("w", 1, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		q := tpo.NewQuestion(i%3, (i+1)%3)
		if got, want := w.Answer(g, q), g.Correct(q); got.Yes != want.Yes {
			t.Fatalf("perfect worker answered %v, truth %v", got, want)
		}
	}
}

func TestNoisyWorkerErrorRate(t *testing.T) {
	g := TruthFromScores([]float64{3, 1})
	rng := rand.New(rand.NewSource(3))
	w, err := NewWorker("w", 0.7, rng)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20_000
	correct := 0
	q := tpo.NewQuestion(0, 1)
	truth := g.Correct(q)
	for i := 0; i < n; i++ {
		if w.Answer(g, q).Yes == truth.Yes {
			correct++
		}
	}
	got := float64(correct) / n
	if math.Abs(got-0.7) > 0.02 {
		t.Fatalf("empirical accuracy %g, want ≈0.7", got)
	}
}

func TestNewWorkerValidation(t *testing.T) {
	for _, acc := range []float64{0, -1, 1.01} {
		if _, err := NewWorker("w", acc, nil); err == nil {
			t.Errorf("accuracy %g accepted", acc)
		}
	}
}

func TestPlatformAccounting(t *testing.T) {
	g := TruthFromScores([]float64{1, 2, 3})
	rng := rand.New(rand.NewSource(4))
	p, err := NewUniformPlatform(g, 5, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	p.UnitCost = 0.05
	for i := 0; i < 6; i++ {
		p.Ask(tpo.NewQuestion(0, 1))
	}
	if p.WorkerAnswers() != 6 {
		t.Fatalf("worker answers = %d", p.WorkerAnswers())
	}
	if !numeric.AlmostEqual(p.Cost(), 0.3, 1e-12) {
		t.Fatalf("cost = %g", p.Cost())
	}
	if len(p.Log()) != 6 {
		t.Fatalf("log size = %d", len(p.Log()))
	}
	if got := p.CorrectFraction(); got != 1 {
		t.Fatalf("perfect workers' correct fraction = %g", got)
	}
}

func TestPlatformMajorityVotingBoostsAccuracy(t *testing.T) {
	g := TruthFromScores([]float64{1, 2})
	q := tpo.NewQuestion(0, 1)
	truth := g.Correct(q)
	const trials = 10_000

	single := 0
	rng := rand.New(rand.NewSource(5))
	p1, err := NewUniformPlatform(g, 7, 0.7, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < trials; i++ {
		if p1.Ask(q).Yes == truth.Yes {
			single++
		}
	}

	voted := 0
	p3, err := NewUniformPlatform(g, 7, 0.7, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	p3.Votes = 3
	for i := 0; i < trials; i++ {
		if p3.Ask(q).Yes == truth.Yes {
			voted++
		}
	}
	fs, fv := float64(single)/trials, float64(voted)/trials
	if fv <= fs {
		t.Fatalf("3-vote majority accuracy %g not above single %g", fv, fs)
	}
	// Analytic: 0.7³ terms — majority of 3 at p=0.7 is 0.784.
	want := MajorityAccuracy(0.7, 3)
	if math.Abs(fv-want) > 0.02 {
		t.Fatalf("empirical majority accuracy %g vs analytic %g", fv, want)
	}
	if p3.WorkerAnswers() != 3*trials {
		t.Fatalf("worker answers = %d, want %d", p3.WorkerAnswers(), 3*trials)
	}
}

func TestMajorityAccuracy(t *testing.T) {
	cases := []struct {
		p     float64
		votes int
		want  float64
	}{
		{0.7, 1, 0.7},
		{0.7, 3, 0.7*0.7*0.7 + 3*0.7*0.7*0.3},
		{0.5, 5, 0.5},
		{1, 5, 1},
		{0.9, 2, MajorityAccuracy(0.9, 3)}, // even votes round up
	}
	for _, c := range cases {
		if got := MajorityAccuracy(c.p, c.votes); !numeric.AlmostEqual(got, c.want, 1e-9) {
			t.Errorf("MajorityAccuracy(%g, %d) = %g, want %g", c.p, c.votes, got, c.want)
		}
	}
}

func TestPlatformReliability(t *testing.T) {
	g := TruthFromScores([]float64{1, 2})
	p, err := NewUniformPlatform(g, 3, 0.8, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Reliability(); !numeric.AlmostEqual(got, 0.8, 1e-12) {
		t.Fatalf("reliability = %g", got)
	}
	p.Votes = 3
	if got := p.Reliability(); !numeric.AlmostEqual(got, MajorityAccuracy(0.8, 3), 1e-12) {
		t.Fatalf("3-vote reliability = %g", got)
	}
}

func TestPerfectOracle(t *testing.T) {
	g := TruthFromScores([]float64{1, 3, 2})
	o := &PerfectOracle{Truth: g}
	if o.Reliability() != 1 {
		t.Fatal("oracle reliability must be 1")
	}
	a := o.Ask(tpo.NewQuestion(1, 2))
	if a.Higher() != 1 {
		t.Fatalf("oracle ranked %d higher", a.Higher())
	}
	if o.Asked() != 1 {
		t.Fatalf("asked = %d", o.Asked())
	}
}

func TestDistanceMetric(t *testing.T) {
	g := TruthFromScores([]float64{3, 2, 1}) // real: 0,1,2
	exact := &tpo.LeafSet{K: 3, Paths: []rank.Ordering{{0, 1, 2}}, W: []float64{1}}
	if d := g.Distance(exact, 0); d != 0 {
		t.Fatalf("distance of the real ordering = %g", d)
	}
	// Reversal of the same 3-element set: 3 discordant pairs over the
	// disjoint-list maximum 3·3 + ½·6 = 12 → 0.25. (Distance 1 requires
	// disjoint top-K sets.)
	reversed := &tpo.LeafSet{K: 3, Paths: []rank.Ordering{{2, 1, 0}}, W: []float64{1}}
	if d := g.Distance(reversed, 0); !numeric.AlmostEqual(d, 0.25, 1e-12) {
		t.Fatalf("distance of the reversed ordering = %g, want 0.25", d)
	}
	mixed := &tpo.LeafSet{
		K:     3,
		Paths: []rank.Ordering{{0, 1, 2}, {2, 1, 0}},
		W:     []float64{0.5, 0.5},
	}
	if d := g.Distance(mixed, 0); !numeric.AlmostEqual(d, 0.125, 1e-12) {
		t.Fatalf("mixed distance = %g, want 0.125", d)
	}
	// Fully disjoint top-K set attains the maximum.
	disjoint := &tpo.LeafSet{K: 3, Paths: []rank.Ordering{{3, 4, 5}}, W: []float64{1}}
	g6 := TruthFromScores([]float64{6, 5, 4, 3, 2, 1})
	if d := g6.Distance(disjoint, 0); !numeric.AlmostEqual(d, 1, 1e-12) {
		t.Fatalf("disjoint distance = %g, want 1", d)
	}
}

func TestPlatformValidation(t *testing.T) {
	if _, err := NewPlatform(nil, nil, nil); err == nil {
		t.Fatal("platform without world/workers accepted")
	}
}
