package crowd

import (
	"math"
	"math/rand"
	"testing"

	"crowdtopk/internal/tpo"
)

func TestHeterogeneousPlatformAccuracyRange(t *testing.T) {
	g := TruthFromScores([]float64{1, 2, 3})
	rng := rand.New(rand.NewSource(1))
	p, err := NewHeterogeneousPlatform(g, PoolSpec{Workers: 200, MinAccuracy: 0.6}, rng)
	if err != nil {
		t.Fatal(err)
	}
	accs := p.WorkerAccuracies()
	if len(accs) != 200 {
		t.Fatalf("%d workers", len(accs))
	}
	var spread bool
	for _, a := range accs {
		if a < 0.51 || a > 1 {
			t.Fatalf("accuracy %g outside (0.5, 1]", a)
		}
		if math.Abs(a-accs[0]) > 0.05 {
			spread = true
		}
	}
	if !spread {
		t.Fatal("pool accuracies suspiciously homogeneous")
	}
	mean := p.MeanAccuracy()
	// Kumaraswamy(2,2) has mean ≈ 0.533: pool mean ≈ 0.6 + 0.4·0.533.
	if mean < 0.7 || mean > 0.9 {
		t.Fatalf("pool mean accuracy %g outside plausible band", mean)
	}
}

func TestHeterogeneousPlatformValidation(t *testing.T) {
	g := TruthFromScores([]float64{1, 2})
	rng := rand.New(rand.NewSource(2))
	if _, err := NewHeterogeneousPlatform(g, PoolSpec{Workers: -1}, rng); err == nil {
		t.Fatal("negative workers accepted")
	}
	if _, err := NewHeterogeneousPlatform(g, PoolSpec{Workers: 3, MinAccuracy: 1.2}, rng); err == nil {
		t.Fatal("min accuracy > 1 accepted")
	}
}

func TestKumaraswamyQuantile(t *testing.T) {
	// a = b = 1 is the uniform distribution.
	for _, p := range []float64{0, 0.25, 0.5, 0.75, 1} {
		if got := kumaraswamyQuantile(p, 1, 1); math.Abs(got-p) > 1e-12 {
			t.Fatalf("uniform quantile(%g) = %g", p, got)
		}
	}
	// Monotone for bell-shaped parameters.
	prev := -1.0
	for _, p := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		got := kumaraswamyQuantile(p, 2, 2)
		if got <= prev {
			t.Fatalf("quantile not monotone at %g", p)
		}
		prev = got
	}
}

func TestQualifyEstimatesTrackTrueAccuracy(t *testing.T) {
	g := TruthFromScores([]float64{5, 4, 3, 2, 1, 0})
	rng := rand.New(rand.NewSource(3))
	good, err := NewWorker("good", 0.95, rng)
	if err != nil {
		t.Fatal(err)
	}
	bad, err := NewWorker("bad", 0.55, rng)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPlatform(g, []*Worker{good, bad}, rng)
	if err != nil {
		t.Fatal(err)
	}
	var gold []tpo.Question
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			gold = append(gold, tpo.NewQuestion(i, j))
		}
	}
	// Repeat the gold set for a tighter estimate.
	gold = append(gold, gold...)
	results, err := p.Qualify(gold)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("%d results", len(results))
	}
	var estGood, estBad float64
	for _, r := range results {
		if r.Total != len(gold) {
			t.Fatalf("worker %s answered %d of %d gold questions", r.Worker, r.Total, len(gold))
		}
		switch r.Worker {
		case "good":
			estGood = r.Estimated
		case "bad":
			estBad = r.Estimated
		}
	}
	if estGood <= estBad {
		t.Fatalf("qualification cannot separate workers: good %g vs bad %g", estGood, estBad)
	}
	if math.Abs(estGood-0.95) > 0.12 || math.Abs(estBad-0.55) > 0.17 {
		t.Fatalf("estimates far from truth: %g (0.95), %g (0.55)", estGood, estBad)
	}
	// Accounting: gold answers are paid work.
	if p.WorkerAnswers() != 2*len(gold) {
		t.Fatalf("asked = %d, want %d", p.WorkerAnswers(), 2*len(gold))
	}
}

func TestQualifyValidation(t *testing.T) {
	g := TruthFromScores([]float64{1, 2})
	p, err := NewUniformPlatform(g, 2, 0.8, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Qualify(nil); err == nil {
		t.Fatal("empty gold set accepted")
	}
}

func TestEstimatedAccuracyFallbacks(t *testing.T) {
	g := TruthFromScores([]float64{1, 2})
	p, err := NewUniformPlatform(g, 1, 0.8, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if got := p.EstimatedAccuracy("w00"); got != 0.8 {
		t.Fatalf("unqualified fallback = %g, want true accuracy", got)
	}
	if got := p.EstimatedAccuracy("nobody"); got != 0.5 {
		t.Fatalf("unknown worker = %g, want 0.5", got)
	}
}

// TestWeightedVoteBeatsMajorityWithMixedPool is the payoff test: when the
// pool mixes experts with near-spammers, weighting answers by qualification
// estimates must outperform flat majority voting.
func TestWeightedVoteBeatsMajorityWithMixedPool(t *testing.T) {
	g := TruthFromScores([]float64{9, 7, 5, 3, 1})
	q := tpo.NewQuestion(0, 4)
	truthAns := g.Correct(q)

	run := func(agg Aggregation, seed int64) float64 {
		rng := rand.New(rand.NewSource(seed))
		var workers []*Worker
		// 2 experts, 5 near-spammers.
		for i := 0; i < 2; i++ {
			w, err := NewWorker(fmt2("e", i), 0.97, rng)
			if err != nil {
				t.Fatal(err)
			}
			workers = append(workers, w)
		}
		for i := 0; i < 5; i++ {
			w, err := NewWorker(fmt2("s", i), 0.55, rng)
			if err != nil {
				t.Fatal(err)
			}
			workers = append(workers, w)
		}
		p, err := NewPlatform(g, workers, rng)
		if err != nil {
			t.Fatal(err)
		}
		p.Aggregation = agg
		p.Votes = 5
		// Qualification on all pairs, repeated for stable estimates.
		var gold []tpo.Question
		for i := 0; i < 5; i++ {
			for j := i + 1; j < 5; j++ {
				gold = append(gold, tpo.NewQuestion(i, j))
			}
		}
		gold = append(gold, gold...)
		if _, err := p.Qualify(gold); err != nil {
			t.Fatal(err)
		}
		const trials = 3000
		correct := 0
		for i := 0; i < trials; i++ {
			if p.Ask(q).Yes == truthAns.Yes {
				correct++
			}
		}
		return float64(correct) / trials
	}

	maj := run(MajorityVote, 10)
	wei := run(WeightedVote, 10)
	if wei <= maj {
		t.Fatalf("weighted voting (%g) not better than majority (%g) on a mixed pool", wei, maj)
	}
}

func fmt2(prefix string, i int) string {
	return prefix + string(rune('0'+i))
}

func TestWeightedVoteSingleWorkerMatchesDirectAnswer(t *testing.T) {
	g := TruthFromScores([]float64{1, 2})
	rng := rand.New(rand.NewSource(11))
	p, err := NewUniformPlatform(g, 1, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	p.Aggregation = WeightedVote
	a := p.Ask(tpo.NewQuestion(0, 1))
	if a.Higher() != 1 {
		t.Fatalf("weighted single perfect worker answered %v", a)
	}
}
