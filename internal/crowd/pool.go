package crowd

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"crowdtopk/internal/tpo"
)

// Aggregation selects how a Platform combines multiple worker answers to
// one question.
type Aggregation int

// Aggregation modes.
const (
	// MajorityVote counts answers equally.
	MajorityVote Aggregation = iota
	// WeightedVote weights each answer by the log-odds of the worker's
	// estimated accuracy (the Bayes-optimal combination under conditional
	// independence). Workers without an estimate fall back to their true
	// accuracy if qualification has not run.
	WeightedVote
)

// PoolSpec describes a heterogeneous worker pool: accuracies are drawn as
// MinAccuracy + (1−MinAccuracy)·X with X ~ Kumaraswamy(A, B). The
// Kumaraswamy distribution is a Beta-like family with a closed-form
// quantile, so the pool is reproducible from a seed without numerical
// sampling machinery. A = B = 1 is uniform; A > 1, B > 1 is bell-shaped.
type PoolSpec struct {
	Workers     int
	MinAccuracy float64
	A, B        float64
}

func (s PoolSpec) withDefaults() PoolSpec {
	if s.Workers == 0 {
		s.Workers = 16
	}
	if s.MinAccuracy == 0 {
		s.MinAccuracy = 0.55
	}
	if s.A == 0 {
		s.A = 2
	}
	if s.B == 0 {
		s.B = 2
	}
	return s
}

// kumaraswamyQuantile returns the p-quantile of Kumaraswamy(a, b).
func kumaraswamyQuantile(p, a, b float64) float64 {
	return math.Pow(1-math.Pow(1-p, 1/b), 1/a)
}

// NewHeterogeneousPlatform builds a platform whose workers have accuracies
// drawn from the pool spec. Accuracies are clamped to (0.5, 1]: a worker
// below coin-flip accuracy is indistinguishable from an adversary and real
// platforms reject them at qualification.
func NewHeterogeneousPlatform(truth *GroundTruth, spec PoolSpec, rng *rand.Rand) (*Platform, error) {
	spec = spec.withDefaults()
	if spec.Workers < 1 {
		return nil, fmt.Errorf("crowd: pool needs at least one worker, got %d", spec.Workers)
	}
	if spec.MinAccuracy < 0 || spec.MinAccuracy >= 1 {
		return nil, fmt.Errorf("crowd: min accuracy %g outside [0, 1)", spec.MinAccuracy)
	}
	workers := make([]*Worker, spec.Workers)
	for i := range workers {
		acc := spec.MinAccuracy + (1-spec.MinAccuracy)*kumaraswamyQuantile(rng.Float64(), spec.A, spec.B)
		if acc <= 0.5 {
			acc = 0.51
		}
		if acc > 1 {
			acc = 1
		}
		w, err := NewWorker(fmt.Sprintf("w%02d", i), acc, rng)
		if err != nil {
			return nil, err
		}
		workers[i] = w
	}
	return NewPlatform(truth, workers, rng)
}

// QualificationResult reports one worker's gold-question performance.
type QualificationResult struct {
	Worker    string
	Correct   int
	Total     int
	Estimated float64 // Laplace-smoothed accuracy estimate
	True      float64
}

// Qualify runs a qualification round: every worker answers all the gold
// questions (whose true answers the platform knows), and the platform
// stores Laplace-smoothed accuracy estimates used by WeightedVote. Gold
// answers are accounted like normal work (cost and log).
func (p *Platform) Qualify(gold []tpo.Question) ([]QualificationResult, error) {
	if len(gold) == 0 {
		return nil, fmt.Errorf("crowd: qualification needs at least one gold question")
	}
	if p.estimates == nil {
		p.estimates = make(map[string]float64, len(p.workers))
	}
	results := make([]QualificationResult, 0, len(p.workers))
	for _, w := range p.workers {
		correct := 0
		for _, q := range gold {
			truthAns := p.truth.Correct(q)
			a := w.Answer(p.truth, q)
			p.asked++
			p.cost += p.UnitCost
			ok := a.Yes == truthAns.Yes
			p.log = append(p.log, Assignment{Worker: w.ID, Q: q, A: a, Correct: ok})
			if ok {
				correct++
			}
		}
		// Laplace smoothing keeps estimates off the 0/1 boundary where
		// log-odds weights diverge.
		est := (float64(correct) + 1) / (float64(len(gold)) + 2)
		p.estimates[w.ID] = est
		results = append(results, QualificationResult{
			Worker: w.ID, Correct: correct, Total: len(gold), Estimated: est, True: w.Accuracy,
		})
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Worker < results[j].Worker })
	return results, nil
}

// EstimatedAccuracy returns the qualification estimate for a worker (true
// accuracy when the worker was never qualified).
func (p *Platform) EstimatedAccuracy(workerID string) float64 {
	if est, ok := p.estimates[workerID]; ok {
		return est
	}
	for _, w := range p.workers {
		if w.ID == workerID {
			return w.Accuracy
		}
	}
	return 0.5
}

// askWeighted routes the question to effectiveVotes workers and combines
// their answers with log-odds weights. An odd panel cannot tie under equal
// weights; under unequal weights an exact zero score is vanishingly rare but
// still resolved consistently ("No") rather than silently.
func (p *Platform) askWeighted(q tpo.Question) tpo.Answer {
	votes := p.effectiveVotes()
	correct := p.truth.Correct(q)
	score := 0.0
	for v := 0; v < votes; v++ {
		w := p.workers[p.rng.Intn(len(p.workers))]
		a := w.Answer(p.truth, q)
		p.asked++
		p.cost += p.UnitCost
		p.log = append(p.log, Assignment{Worker: w.ID, Q: q, A: a, Correct: a.Yes == correct.Yes})
		acc := p.EstimatedAccuracy(w.ID)
		if acc >= 1 {
			acc = 1 - 1e-9
		}
		if acc <= 0 {
			acc = 1e-9
		}
		weight := math.Log(acc / (1 - acc))
		if a.Yes {
			score += weight
		} else {
			score -= weight
		}
	}
	return tpo.Answer{Q: q, Yes: score > 0}
}

// MeanAccuracy returns the pool's average true accuracy.
func (p *Platform) MeanAccuracy() float64 {
	total := 0.0
	for _, w := range p.workers {
		total += w.Accuracy
	}
	return total / float64(len(p.workers))
}

// WorkerAccuracies returns the true accuracy of every worker, sorted by id.
func (p *Platform) WorkerAccuracies() []float64 {
	ws := append([]*Worker(nil), p.workers...)
	sort.Slice(ws, func(i, j int) bool { return ws[i].ID < ws[j].ID })
	out := make([]float64, len(ws))
	for i, w := range ws {
		out[i] = w.Accuracy
	}
	return out
}
