// Package server exposes the asynchronous query sessions of
// internal/session over a JSON HTTP API, turning the library into a
// long-running service a real crowd platform can integrate with: create a
// session for a dataset, pull the currently best questions, push answers
// whenever workers return them, poll the result, and checkpoint/restore
// across deployments.
//
// Endpoints (see the README for curl examples):
//
//	POST   /v1/sessions                   create (from a dataset or a checkpoint)
//	GET    /v1/sessions                   list known sessions (limit parameter)
//	GET    /v1/sessions/{id}/questions    pull up to n pending questions
//	POST   /v1/sessions/{id}/answers      submit crowd answers
//	GET    /v1/sessions/{id}/result       current top-K belief
//	GET    /v1/sessions/{id}/checkpoint   versioned session envelope
//	DELETE /v1/sessions/{id}              drop the session
//	GET    /v1/stats                      store + persistence + π-cache + live-engine counters
//
// Sessions are held in a concurrency-safe store with TTL eviction and share
// one process-wide worker budget (internal/par.Budget): concurrent builds
// degrade to fewer workers each instead of oversubscribing the host, which
// never changes results.
//
// With a durable backend (Config.Persist, internal/persist), the in-memory
// table becomes a cache: every accepted answer is asynchronously appended to
// the backend's write-ahead log, idle sessions are evicted to disk instead
// of dropped, misses hydrate lazily from disk, and a restarted server
// recovers every persisted session — crowd answers that trickled in over
// hours survive a crash. Without a backend, behavior is unchanged: sessions
// die with the process (clients can still pull checkpoints themselves).
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"crowdtopk/internal/dataset"
	"crowdtopk/internal/engine"
	"crowdtopk/internal/par"
	"crowdtopk/internal/pcache"
	"crowdtopk/internal/persist"
	"crowdtopk/internal/selection"
	"crowdtopk/internal/session"
	"crowdtopk/internal/tpo"
)

// Config tunes the server.
type Config struct {
	// Workers is the process-wide worker budget shared by every session's
	// tree builds and extensions (0 = GOMAXPROCS).
	Workers int
	// TTL evicts sessions idle longer than this (0 = never evict). With a
	// durable backend eviction moves the session to disk; without one it
	// drops the session for good.
	TTL time.Duration
	// MaxSessions bounds live in-memory sessions; creates beyond it fail
	// with 503 (0 = unbounded). Lazy hydration of persisted sessions is
	// exempt: a session returning from disk is served, not shed.
	MaxSessions int
	// Persist optionally attaches a durable session store. The server owns
	// it from then on: Close flushes and closes it.
	Persist persist.Store
}

// DefaultTTL is the idle eviction default used by the serve subcommand.
const DefaultTTL = 30 * time.Minute

// Server routes the v1 API. Create with New, expose via Handler, and Close
// when done to stop the eviction janitor.
type Server struct {
	store *store
	pool  *par.Budget
	mux   *http.ServeMux
}

// New builds a server with its own session store and worker budget. With
// cfg.Persist set it also scans the backend so every persisted session is
// immediately addressable (sessions hydrate lazily on first access), and
// takes ownership of the backend.
func New(cfg Config) (*Server, error) {
	st, err := newStore(cfg.TTL, cfg.MaxSessions, cfg.Persist)
	if err != nil {
		return nil, err
	}
	s := &Server{
		store: st,
		pool:  par.NewBudget(cfg.Workers),
		mux:   http.NewServeMux(),
	}
	s.mux.HandleFunc("POST /v1/sessions", s.handleCreate)
	s.mux.HandleFunc("GET /v1/sessions", s.handleList)
	s.mux.HandleFunc("GET /v1/sessions/{id}/questions", s.handleQuestions)
	s.mux.HandleFunc("POST /v1/sessions/{id}/answers", s.handleAnswers)
	s.mux.HandleFunc("GET /v1/sessions/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /v1/sessions/{id}/checkpoint", s.handleCheckpoint)
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleDelete)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	return s, nil
}

// Handler returns the HTTP handler for the v1 API.
func (s *Server) Handler() http.Handler { return s.mux }

// Close stops background eviction, flushes every dirty session to the
// durable backend (when one is configured) and closes it, then drops all
// live sessions. Idempotent.
func (s *Server) Close() { s.store.close() }

// Flush synchronously pushes every pending durable write to the backend and
// syncs it. A no-op without a backend.
func (s *Server) Flush() { s.store.flush() }

// Sessions reports the number of live sessions (for stats and tests).
func (s *Server) Sessions() int { return s.store.len() }

// ---- wire types ----

// createRequest creates a session from a dataset, or — when Checkpoint is
// set — restores one from a session envelope (the other fields are then
// ignored: the envelope carries its own configuration).
type createRequest struct {
	Tuples       []dataset.DistSpec `json:"tuples,omitempty"`
	Names        []string           `json:"names,omitempty"`
	K            int                `json:"k,omitempty"`
	Budget       int                `json:"budget,omitempty"`
	Algorithm    string             `json:"algorithm,omitempty"`
	Measure      string             `json:"measure,omitempty"`
	Reliability  float64            `json:"reliability,omitempty"`
	RoundSize    int                `json:"round_size,omitempty"`
	Seed         int64              `json:"seed,omitempty"`
	GridSize     int                `json:"grid_size,omitempty"`
	MaxOrderings int                `json:"max_orderings,omitempty"`
	Checkpoint   json.RawMessage    `json:"checkpoint,omitempty"`
}

type sessionInfo struct {
	ID        string        `json:"id"`
	State     session.State `json:"state"`
	Tuples    int           `json:"tuples"`
	Asked     int           `json:"asked"`
	Budget    int           `json:"budget"`
	Pending   int           `json:"pending"`
	Orderings int           `json:"orderings"`
}

type questionJSON struct {
	I      int    `json:"i"`
	J      int    `json:"j"`
	Prompt string `json:"prompt"`
}

type questionsResponse struct {
	State     session.State  `json:"state"`
	Questions []questionJSON `json:"questions"`
	Asked     int            `json:"asked"`
	Budget    int            `json:"budget"`
}

type answerRequest struct {
	Answers []struct {
		I   int  `json:"i"`
		J   int  `json:"j"`
		Yes bool `json:"yes"`
	} `json:"answers"`
}

type answersResponse struct {
	State          session.State `json:"state"`
	Accepted       int           `json:"accepted"`
	Asked          int           `json:"asked"`
	Pending        int           `json:"pending"`
	Contradictions int           `json:"contradictions"`
}

type resultResponse struct {
	State          session.State `json:"state"`
	Ranking        []int         `json:"ranking"`
	Names          []string      `json:"names"`
	Resolved       bool          `json:"resolved"`
	Orderings      int           `json:"orderings"`
	Uncertainty    float64       `json:"uncertainty"`
	Asked          int           `json:"asked"`
	Budget         int           `json:"budget"`
	Pending        int           `json:"pending"`
	Contradictions int           `json:"contradictions"`
}

// storeStats is the /v1/stats view of the session store's two tiers.
type storeStats struct {
	// Backend names the durable tier: "memory" (none) or "file".
	Backend string `json:"backend"`
	// LiveSessions counts hydrated in-memory sessions; KnownSessions adds
	// the ones resident only in the durable backend.
	LiveSessions  int `json:"live_sessions"`
	KnownSessions int `json:"known_sessions"`
	// DirtySessions counts sessions with accepted answers awaiting their
	// asynchronous durable write (0 means everything acked is on disk).
	DirtySessions   int    `json:"dirty_sessions"`
	EvictionsToDisk uint64 `json:"evictions_to_disk"`
	HydrationHits   uint64 `json:"hydration_hits"`
	HydrationMisses uint64 `json:"hydration_misses"`
	PersistErrors   uint64 `json:"persist_errors"`
	// Persist carries the backend's own counters (snapshots, wal_appends,
	// replays, recovered_sessions, fsyncs) when it exposes them.
	Persist *persist.CounterSnapshot `json:"persist,omitempty"`
}

type statsResponse struct {
	Sessions int        `json:"sessions"`
	Store    storeStats `json:"store"`
	// PCache carries the π-cache counters cumulative since the last cache
	// reset; its hit_rate is the lifetime average, which barely moves on a
	// long-lived server no matter what the cache is doing right now.
	PCache pcache.Snapshot `json:"pcache"`
	// PCacheWindow reports hits/misses/hit_rate over the interval since the
	// previous /v1/stats call (each call closes the window and opens the
	// next), so the rate tracks current behavior after churn. The window is
	// process-global: with several scrapers, each sees the interval since
	// whoever asked last.
	PCacheWindow pcache.WindowSnapshot `json:"pcache_window"`
	// LiveEngine carries the incremental selection-engine counters: arena
	// reuses vs rebuilds, delta patches, stat resyncs and compactions.
	LiveEngine selection.LiveCounters `json:"selection_live"`
}

// listResponse is the GET /v1/sessions page.
type listResponse struct {
	Sessions []listEntryJSON `json:"sessions"`
	// Total is the number of known sessions, which may exceed the page.
	Total int `json:"total"`
}

type listEntryJSON struct {
	ID string `json:"id"`
	// State and Asked/Pending are reported for live sessions only: reading
	// them off a disk-resident session would force the hydration the
	// listing exists to avoid.
	State       session.State `json:"state,omitempty"`
	Asked       int           `json:"asked,omitempty"`
	Pending     int           `json:"pending,omitempty"`
	IdleSeconds float64       `json:"idle_seconds"`
	Persisted   bool          `json:"persisted"`
	Hydrated    bool          `json:"hydrated"`
}

// ---- handlers ----

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req createRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 64<<20)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	// Claim store capacity before the build: shedding load after paying for
	// tree construction would defend nothing.
	if err := s.store.reserve(); err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	var sess *session.Session
	var err error
	if len(req.Checkpoint) > 0 {
		sess, err = session.Restore(bytes.NewReader(req.Checkpoint), s.pool)
	} else {
		sess, err = s.createFromSpecs(&req)
	}
	if err != nil {
		s.store.unreserve()
		writeErr(w, statusFor(err), err)
		return
	}
	id, err := s.store.add(sess)
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	// Content-Type must be set before WriteHeader or it is ignored.
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	writeJSON(w, s.info(id, sess))
}

func (s *Server) createFromSpecs(req *createRequest) (*session.Session, error) {
	dists, err := dataset.FromSpecs(req.Tuples)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", session.ErrInvalidConfig, err)
	}
	return session.New(session.Config{
		Dists:       dists,
		Names:       req.Names,
		K:           req.K,
		Budget:      req.Budget,
		Algorithm:   req.Algorithm,
		Measure:     req.Measure,
		Reliability: req.Reliability,
		RoundSize:   req.RoundSize,
		Seed:        req.Seed,
		Build:       tpo.BuildOptions{GridSize: req.GridSize, MaxLeaves: req.MaxOrderings},
		Pool:        s.pool,
	})
}

func (s *Server) info(id string, sess *session.Session) sessionInfo {
	st := sess.Status()
	return sessionInfo{
		ID:        id,
		State:     st.State,
		Tuples:    sess.Len(),
		Asked:     st.Asked,
		Budget:    st.Budget,
		Pending:   st.Pending,
		Orderings: sess.Orderings(),
	}
}

func (s *Server) handleQuestions(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookup(w, r)
	if !ok {
		return
	}
	n := 0
	if raw := r.URL.Query().Get("n"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 1 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad question count %q", raw))
			return
		}
		n = v
	}
	// Questions and status come from one locked snapshot, so a concurrent
	// answer cannot make this response pair fresh questions with a terminal
	// state.
	qs, st, err := sess.NextQuestions(n)
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	out := questionsResponse{State: st.State, Asked: st.Asked, Budget: st.Budget, Questions: []questionJSON{}}
	for _, q := range qs {
		out.Questions = append(out.Questions, questionJSON{
			I:      q.I,
			J:      q.J,
			Prompt: fmt.Sprintf("does %s rank above %s?", sess.Name(q.I), sess.Name(q.J)),
		})
	}
	writeJSON(w, out)
}

func (s *Server) handleAnswers(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookup(w, r)
	if !ok {
		return
	}
	var req answerRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 8<<20)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if len(req.Answers) == 0 {
		writeErr(w, http.StatusBadRequest, errors.New("no answers in request"))
		return
	}
	accepted := 0
	for _, a := range req.Answers {
		if a.I == a.J {
			// Like any other mid-batch failure, report what was applied
			// before it so the client can reconcile.
			writeErrWith(w, http.StatusBadRequest,
				fmt.Errorf("answer %d compares tuple %d with itself", accepted, a.I),
				map[string]any{"accepted": accepted})
			return
		}
		err := sess.SubmitAnswer(tpo.Answer{Q: tpo.Question{I: a.I, J: a.J}, Yes: a.Yes})
		if err != nil {
			// Report what was applied before the failure so the client can
			// reconcile.
			writeErrWith(w, statusFor(err), err, map[string]any{"accepted": accepted})
			return
		}
		accepted++
	}
	st := sess.Status()
	writeJSON(w, answersResponse{
		State:          st.State,
		Accepted:       accepted,
		Asked:          st.Asked,
		Pending:        st.Pending,
		Contradictions: st.Contradictions,
	})
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookup(w, r)
	if !ok {
		return
	}
	res := sess.Result()
	names := make([]string, len(res.Ranking))
	for i, id := range res.Ranking {
		names[i] = sess.Name(id)
	}
	writeJSON(w, resultResponse{
		State:          res.State,
		Ranking:        append([]int{}, res.Ranking...),
		Names:          names,
		Resolved:       res.Resolved,
		Orderings:      res.Orderings,
		Uncertainty:    res.Uncertainty,
		Asked:          res.Asked,
		Budget:         res.Budget,
		Pending:        res.Pending,
		Contradictions: res.Contradictions,
	})
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookup(w, r)
	if !ok {
		return
	}
	// Serialize into memory first: Checkpoint holds the session lock, and
	// streaming straight to a slow client would pin that lock (and stall
	// the session's other requests) on TCP backpressure.
	var buf bytes.Buffer
	if err := sess.Checkpoint(&buf); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(buf.Bytes())
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if !s.store.remove(r.PathValue("id")) {
		writeErr(w, http.StatusNotFound, ErrNotFound)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// defaultListLimit bounds GET /v1/sessions pages unless the client asks for
// more; against a store with millions of persisted sessions an unbounded
// listing would be an accidental denial of service.
const defaultListLimit = 100

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	limit := defaultListLimit
	if raw := r.URL.Query().Get("limit"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 1 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad limit %q", raw))
			return
		}
		limit = v
	}
	items, total := s.store.list(limit)
	out := listResponse{Sessions: []listEntryJSON{}, Total: total}
	for _, it := range items {
		e := listEntryJSON{
			ID:          it.id,
			IdleSeconds: it.idle.Seconds(),
			Persisted:   it.persisted,
			Hydrated:    it.hydrated,
		}
		// The session object was captured inside the store's listing
		// snapshot; resolving the id again here would race concurrent
		// deletes and evictions into rows marked hydrated but carrying no
		// state.
		if it.sess != nil {
			st := it.sess.Status()
			e.State = st.State
			e.Asked = st.Asked
			e.Pending = st.Pending
		}
		out.Sessions = append(out.Sessions, e)
	}
	writeJSON(w, out)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := storeStats{
		Backend:         "memory",
		LiveSessions:    s.store.len(),
		KnownSessions:   s.store.known(),
		EvictionsToDisk: s.store.evictions.Load(),
		HydrationHits:   s.store.hydraHits.Load(),
		HydrationMisses: s.store.hydraMisses.Load(),
		PersistErrors:   s.store.persistErrors.Load(),
	}
	if s.store.disk != nil {
		st.Backend = "file"
		st.DirtySessions = s.store.bg.pending()
		if cs, ok := s.store.disk.(persist.CounterSource); ok {
			c := cs.Counters()
			st.Persist = &c
		}
	}
	writeJSON(w, statsResponse{
		Sessions:     s.store.len(),
		Store:        st,
		PCache:       pcache.Stats(),
		PCacheWindow: pcache.WindowStats(),
		LiveEngine:   selection.LiveEngineStats(),
	})
}

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (*session.Session, bool) {
	sess, err := s.store.get(r.PathValue("id"))
	if err != nil {
		// Only a genuine miss is a 404: a hydration failure (I/O error,
		// corrupt on-disk state) must surface as a server error, not
		// convince the client the session never existed.
		status := http.StatusInternalServerError
		if errors.Is(err, ErrNotFound) {
			status = http.StatusNotFound
		}
		writeErr(w, status, err)
		return nil, false
	}
	return sess, true
}

// ---- plumbing ----

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeErrWith(w, status, err, nil)
}

func writeErrWith(w http.ResponseWriter, status int, err error, extra map[string]any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	body := map[string]any{"error": err.Error()}
	for k, v := range extra {
		body[k] = v
	}
	_ = json.NewEncoder(w).Encode(body)
}

// statusFor maps the session subsystem's typed errors to HTTP statuses.
func statusFor(err error) int {
	var mismatch *tpo.MismatchError // session.MismatchError is the same type
	switch {
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrFull):
		return http.StatusServiceUnavailable
	case errors.Is(err, session.ErrDone), errors.Is(err, session.ErrUnknownQuestion):
		return http.StatusConflict
	case errors.Is(err, session.ErrInvalidConfig),
		errors.Is(err, session.ErrInvalidCheckpoint),
		errors.Is(err, engine.ErrUnknownAlgorithm),
		errors.As(err, &mismatch),
		errors.Is(err, tpo.ErrInvalidInput),
		errors.Is(err, tpo.ErrTooLarge):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

