// Package server exposes the transport-agnostic session core
// (internal/service) over a JSON HTTP API, turning the library into a
// long-running service a real crowd platform can integrate with: create a
// session for a dataset, pull the currently best questions, push answers
// whenever workers return them, poll the result, and checkpoint/restore
// across deployments.
//
// Endpoints (see the README for curl examples):
//
//	POST   /v1/sessions                   create (from a dataset or a checkpoint)
//	GET    /v1/sessions                   list known sessions (limit parameter)
//	GET    /v1/sessions/{id}/questions    pull up to n pending questions
//	POST   /v1/sessions/{id}/answers      submit crowd answers
//	GET    /v1/sessions/{id}/result       current top-K belief
//	GET    /v1/sessions/{id}/checkpoint   versioned session envelope
//	DELETE /v1/sessions/{id}              drop the session
//	GET    /v1/stats                      store + persistence + π-cache + live-engine counters
//	GET    /metrics                       Prometheus text exposition (process-wide registry)
//	GET    /health                        liveness: always 200 while serving, body has detail
//	GET    /ready                         readiness: 200 when traffic-ready, else 503
//	GET    /debug/traces                  recent request traces (route/min_ms/limit filters)
//	GET    /debug/pprof/...               Go profiler (only with Config.EnablePprof)
//
// This package is deliberately a codec: every handler decodes the request,
// calls the service, and encodes the result. All session orchestration —
// the store's two persistence tiers, the shared worker budget, load
// shedding, TTL eviction, graceful close — lives in internal/service, where
// the in-process SDK (crowdtopk/sdk) consumes it identically; statusFor is
// the one place the service's typed errors become HTTP statuses, and every
// response (including 404/405 for routes the mux does not know) uses the
// JSON error envelope.
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"

	"crowdtopk/internal/dataset"
	"crowdtopk/internal/engine"
	"crowdtopk/internal/obs"
	"crowdtopk/internal/service"
	"crowdtopk/internal/session"
	"crowdtopk/internal/tpo"
)

// Config tunes the server; it is the service core's configuration verbatim.
type Config = service.Config

// DefaultTTL is the idle eviction default used by the serve subcommand.
const DefaultTTL = service.DefaultTTL

// Server routes the v1 API. Create with New, expose via Handler, and Close
// when done to stop the eviction janitor.
type Server struct {
	svc *service.Service
	mux *http.ServeMux
	log *slog.Logger
}

// New builds a server over its own service core (session store + worker
// budget). With cfg.Persist set the core also scans the backend so every
// persisted session is immediately addressable (sessions hydrate lazily on
// first access), and takes ownership of the backend.
func New(cfg Config) (*Server, error) {
	svc, err := service.New(cfg)
	if err != nil {
		return nil, err
	}
	log := cfg.Logger
	if log == nil {
		log = obs.NopLogger()
	}
	s := &Server{svc: svc, mux: http.NewServeMux(), log: log}
	s.mux.HandleFunc("POST /v1/sessions", s.handleCreate)
	s.mux.HandleFunc("GET /v1/sessions", s.handleList)
	s.mux.HandleFunc("GET /v1/sessions/{id}/questions", s.handleQuestions)
	s.mux.HandleFunc("POST /v1/sessions/{id}/answers", s.handleAnswers)
	s.mux.HandleFunc("GET /v1/sessions/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /v1/sessions/{id}/checkpoint", s.handleCheckpoint)
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleDelete)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /health", s.handleHealth)
	s.mux.HandleFunc("GET /ready", s.handleReady)
	s.mux.HandleFunc("GET /debug/traces", s.handleTraces)
	if cfg.EnablePprof {
		registerPprof(s.mux)
	}
	return s, nil
}

// Handler returns the HTTP handler for the full surface: the v1 API plus the
// operational endpoints (/metrics, /health, /ready). The instrumentation
// middleware (latency histogram, request counter, structured access log)
// wraps admission control (429/503 with Retry-After when configured; probes
// are exempt) so shed requests are observed too. Unmatched routes and wrong
// methods answer with the JSON error envelope instead of the mux's text/plain
// defaults.
func (s *Server) Handler() http.Handler {
	return instrument(admission(jsonMuxErrors(s.mux), s.svc), s.svc.Tracer(), s.log)
}

// Close stops background eviction, flushes every dirty session to the
// durable backend (when one is configured) and closes it, then drops all
// live sessions. Idempotent.
func (s *Server) Close() { s.svc.Close() }

// Flush synchronously pushes every pending durable write to the backend and
// syncs it. A no-op without a backend.
func (s *Server) Flush() { s.svc.Flush() }

// Sessions reports the number of live sessions (for stats and tests).
func (s *Server) Sessions() int { return s.svc.SessionCount() }

// ---- wire types (request side; responses are the service views) ----

// createRequest creates a session from a dataset, or — when Checkpoint is
// set — restores one from a session envelope (the other fields are then
// ignored: the envelope carries its own configuration).
type createRequest struct {
	Tuples       []dataset.DistSpec `json:"tuples,omitempty"`
	Names        []string           `json:"names,omitempty"`
	K            int                `json:"k,omitempty"`
	Budget       int                `json:"budget,omitempty"`
	Algorithm    string             `json:"algorithm,omitempty"`
	Measure      string             `json:"measure,omitempty"`
	Reliability  float64            `json:"reliability,omitempty"`
	RoundSize    int                `json:"round_size,omitempty"`
	Seed         int64              `json:"seed,omitempty"`
	GridSize     int                `json:"grid_size,omitempty"`
	MaxOrderings int                `json:"max_orderings,omitempty"`
	Checkpoint   json.RawMessage    `json:"checkpoint,omitempty"`
}

type answerRequest struct {
	Answers []struct {
		I   int  `json:"i"`
		J   int  `json:"j"`
		Yes bool `json:"yes"`
	} `json:"answers"`
}

// ---- handlers: decode → service call → encode ----

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req createRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 64<<20)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	info, err := s.svc.CreateOrRestore(r.Context(), service.CreateRequest{
		Tuples:       req.Tuples,
		Names:        req.Names,
		K:            req.K,
		Budget:       req.Budget,
		Algorithm:    req.Algorithm,
		Measure:      req.Measure,
		Reliability:  req.Reliability,
		RoundSize:    req.RoundSize,
		Seed:         req.Seed,
		GridSize:     req.GridSize,
		MaxOrderings: req.MaxOrderings,
		Checkpoint:   req.Checkpoint,
	})
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSONStatus(w, http.StatusCreated, info)
}

func (s *Server) handleQuestions(w http.ResponseWriter, r *http.Request) {
	n := 0
	if raw := r.URL.Query().Get("n"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 1 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad question count %q", raw))
			return
		}
		n = v
	}
	out, err := s.svc.Questions(r.Context(), r.PathValue("id"), n)
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, out)
}

func (s *Server) handleAnswers(w http.ResponseWriter, r *http.Request) {
	var req answerRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 8<<20)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	answers := make([]service.Answer, len(req.Answers))
	for i, a := range req.Answers {
		answers[i] = service.Answer{I: a.I, J: a.J, Yes: a.Yes}
	}
	out, err := s.svc.Answers(r.Context(), r.PathValue("id"), answers)
	if err != nil {
		// A batch that failed partway reports what was applied before the
		// failure so the client can reconcile.
		var batch *service.BatchError
		if errors.As(err, &batch) {
			writeErrWith(w, statusFor(err), err, map[string]any{"accepted": batch.Accepted})
			return
		}
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, out)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	out, err := s.svc.Result(r.Context(), r.PathValue("id"))
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, out)
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	// Serialize into memory first: Checkpoint holds the session lock, and
	// streaming straight to a slow client would pin that lock (and stall
	// the session's other requests) on TCP backpressure.
	var buf bytes.Buffer
	if err := s.svc.Checkpoint(r.Context(), r.PathValue("id"), &buf); err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(buf.Bytes())
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if err := s.svc.Delete(r.Context(), r.PathValue("id")); err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	limit := 0 // service default
	if raw := r.URL.Query().Get("limit"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 1 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad limit %q", raw))
			return
		}
		limit = v
	}
	writeJSON(w, s.svc.List(limit))
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.svc.Stats())
}

// handleMetrics serves the Prometheus text exposition. Rendered into memory
// first so a failed render cannot leave a half-written scrape on the wire.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var buf bytes.Buffer
	if err := s.svc.WriteMetrics(&buf); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write(buf.Bytes())
}

// handleHealth is the liveness probe: the process is up and serving, so it
// always answers 200 — the body carries the readiness detail for humans.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.svc.Health())
}

// handleReady is the readiness probe: 200 only when the service can take
// traffic (boot scan done, pool has room, durable writes succeeding); 503
// with the same body otherwise so balancers drain without killing the pod.
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	h := s.svc.Health()
	status := http.StatusOK
	if !h.Ready {
		status = http.StatusServiceUnavailable
	}
	writeJSONStatus(w, status, h)
}

// ---- plumbing ----

// writeJSONStatus is the one place response status, Content-Type and body
// encoding meet: every JSON response (success or error) goes through it.
func writeJSONStatus(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeJSON(w http.ResponseWriter, v any) {
	writeJSONStatus(w, http.StatusOK, v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeErrWith(w, status, err, nil)
}

func writeErrWith(w http.ResponseWriter, status int, err error, extra map[string]any) {
	body := map[string]any{"error": err.Error()}
	for k, v := range extra {
		body[k] = v
	}
	writeJSONStatus(w, status, body)
}

// statusFor maps the service core's typed errors to HTTP statuses — the one
// place wire status semantics are decided.
func statusFor(err error) int {
	var storage *service.StorageError
	var mismatch *tpo.MismatchError // session.MismatchError is the same type
	switch {
	// A durable-tier failure is a server fault regardless of its cause:
	// check it before the client-error classes its wrapped cause could
	// match (a corrupted snapshot surfaces a digest MismatchError).
	case errors.As(err, &storage):
		return http.StatusInternalServerError
	// Quarantined is permanent-until-operator-action, not retryable: the
	// durable copy was corrupt and has been moved aside. 410 tells clients
	// to stop retrying (unlike the 500 a transient storage fault earns).
	case errors.Is(err, service.ErrQuarantined):
		return http.StatusGone
	case errors.Is(err, service.ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, service.ErrRateLimited):
		return http.StatusTooManyRequests
	case errors.Is(err, service.ErrFull), errors.Is(err, service.ErrOverloaded):
		return http.StatusServiceUnavailable
	case errors.Is(err, session.ErrDone), errors.Is(err, session.ErrUnknownQuestion):
		return http.StatusConflict
	case errors.Is(err, service.ErrBadInput),
		errors.Is(err, session.ErrInvalidConfig),
		errors.Is(err, session.ErrInvalidCheckpoint),
		errors.Is(err, engine.ErrUnknownAlgorithm),
		errors.As(err, &mismatch),
		errors.Is(err, tpo.ErrInvalidInput),
		errors.Is(err, tpo.ErrTooLarge):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}
