package server_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	crowdtopk "crowdtopk"
	"crowdtopk/internal/persist"
	"crowdtopk/internal/server"
	"crowdtopk/sdk"
)

// transport abstracts the two front doors — the HTTP codec and the embedded
// SDK — behind the operations the e2e scenarios exercise, so the exact same
// scenario drives both and their outcomes can be compared field for field.
// Both implementations normalize into the wire-shaped test structs
// (questionsResponse, resultResponse) the HTTP assertions already use.
type transport interface {
	create(t *testing.T, k, budget int, seed int64) string
	restore(t *testing.T, checkpoint []byte) string
	questions(t *testing.T, id string) questionsResponse
	answer(t *testing.T, id string, i, j int, yes bool)
	result(t *testing.T, id string) resultResponse
	checkpoint(t *testing.T, id string) []byte
	remove(t *testing.T, id string)
	waitDurable(t *testing.T)
	kill()     // abandon hot: no Shutdown, no Flush, no Close — like SIGKILL
	shutdown() // graceful close
}

// httpTransport serves the uniform workload through the full HTTP stack.
type httpTransport struct {
	specs []map[string]any
	srv   *server.Server
	ts    *httptest.Server
}

func newHTTPTransport(t *testing.T, store persist.Store) *httpTransport {
	t.Helper()
	specs, _ := uniformWorkload()
	srv := newServer(t, server.Config{Persist: store})
	ts := httptest.NewServer(srv.Handler())
	return &httpTransport{specs: specs, srv: srv, ts: ts}
}

func (h *httpTransport) create(t *testing.T, k, budget int, seed int64) string {
	t.Helper()
	var info sessionInfo
	if code := doJSON(t, h.ts.Client(), "POST", h.ts.URL+"/v1/sessions", map[string]any{
		"tuples": h.specs, "k": k, "budget": budget, "seed": seed,
	}, &info); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	return info.ID
}

func (h *httpTransport) restore(t *testing.T, checkpoint []byte) string {
	t.Helper()
	var info sessionInfo
	if code := doJSON(t, h.ts.Client(), "POST", h.ts.URL+"/v1/sessions",
		map[string]any{"checkpoint": json.RawMessage(checkpoint)}, &info); code != http.StatusCreated {
		t.Fatalf("restore: status %d", code)
	}
	return info.ID
}

func (h *httpTransport) questions(t *testing.T, id string) questionsResponse {
	t.Helper()
	var qs questionsResponse
	if code := doJSON(t, h.ts.Client(), "GET", h.ts.URL+"/v1/sessions/"+id+"/questions", nil, &qs); code != http.StatusOK {
		t.Fatalf("questions: status %d", code)
	}
	return qs
}

func (h *httpTransport) answer(t *testing.T, id string, i, j int, yes bool) {
	t.Helper()
	payload := map[string]any{"answers": []map[string]any{{"i": i, "j": j, "yes": yes}}}
	if code := doJSON(t, h.ts.Client(), "POST", h.ts.URL+"/v1/sessions/"+id+"/answers", payload, nil); code != http.StatusOK {
		t.Fatalf("answers: status %d", code)
	}
}

func (h *httpTransport) result(t *testing.T, id string) resultResponse {
	t.Helper()
	var res resultResponse
	if code := doJSON(t, h.ts.Client(), "GET", h.ts.URL+"/v1/sessions/"+id+"/result", nil, &res); code != http.StatusOK {
		t.Fatalf("result: status %d", code)
	}
	return res
}

func (h *httpTransport) checkpoint(t *testing.T, id string) []byte {
	t.Helper()
	resp, err := h.ts.Client().Get(h.ts.URL + "/v1/sessions/" + id + "/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint: status %d err %v", resp.StatusCode, err)
	}
	return raw
}

func (h *httpTransport) remove(t *testing.T, id string) {
	t.Helper()
	req, err := http.NewRequest("DELETE", h.ts.URL+"/v1/sessions/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := h.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: status %d", resp.StatusCode)
	}
}

func (h *httpTransport) waitDurable(t *testing.T) { waitDurable(t, h.ts) }

func (h *httpTransport) kill() { h.ts.Close() } // srv abandoned, never closed

func (h *httpTransport) shutdown() {
	h.ts.Close()
	h.srv.Close()
}

// sdkTransport runs the identical scenario through the embedded SDK —
// direct Go calls, no sockets — normalizing its typed views into the same
// wire-shaped structs for comparison.
type sdkTransport struct {
	ds     *crowdtopk.Dataset
	client *sdk.Client
}

func newSDKTransport(t *testing.T, storage *sdk.Storage) *sdkTransport {
	t.Helper()
	_, scores := uniformWorkload()
	ds, err := crowdtopk.NewDataset(scores)
	if err != nil {
		t.Fatal(err)
	}
	client, err := sdk.New(sdk.Options{Storage: storage})
	if err != nil {
		t.Fatal(err)
	}
	return &sdkTransport{ds: ds, client: client}
}

func (s *sdkTransport) create(t *testing.T, k, budget int, seed int64) string {
	t.Helper()
	info, err := s.client.CreateSession(sdk.SessionConfig{
		Dataset: s.ds,
		Query:   crowdtopk.Query{K: k, Budget: budget, Seed: seed},
	})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	return info.ID
}

func (s *sdkTransport) restore(t *testing.T, checkpoint []byte) string {
	t.Helper()
	info, err := s.client.RestoreSession(checkpoint)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	return info.ID
}

func (s *sdkTransport) questions(t *testing.T, id string) questionsResponse {
	t.Helper()
	view, err := s.client.Questions(id, 0)
	if err != nil {
		t.Fatalf("questions: %v", err)
	}
	out := questionsResponse{State: string(view.State), Asked: view.Asked, Budget: view.Budget}
	for _, q := range view.Questions {
		out.Questions = append(out.Questions, questionJSON{I: q.I, J: q.J, Prompt: q.Prompt})
	}
	return out
}

func (s *sdkTransport) answer(t *testing.T, id string, i, j int, yes bool) {
	t.Helper()
	ans := crowdtopk.Answer{Q: crowdtopk.Question{I: i, J: j}, Yes: yes}
	if _, err := s.client.SubmitAnswers(id, ans); err != nil {
		t.Fatalf("answers: %v", err)
	}
}

func (s *sdkTransport) result(t *testing.T, id string) resultResponse {
	t.Helper()
	res, err := s.client.Result(id)
	if err != nil {
		t.Fatalf("result: %v", err)
	}
	return resultResponse{
		State:       string(res.State),
		Ranking:     res.Ranking,
		Names:       res.Names,
		Resolved:    res.Resolved,
		Orderings:   res.Orderings,
		Uncertainty: res.Uncertainty,
		Asked:       res.Asked,
	}
}

func (s *sdkTransport) checkpoint(t *testing.T, id string) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.client.Checkpoint(id, &buf); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	return buf.Bytes()
}

func (s *sdkTransport) remove(t *testing.T, id string) {
	t.Helper()
	if err := s.client.Delete(id); err != nil {
		t.Fatalf("delete: %v", err)
	}
}

func (s *sdkTransport) waitDurable(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if s.client.Stats().Store.DirtySessions == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("persister did not drain")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func (s *sdkTransport) kill() {} // abandon the client without Close

func (s *sdkTransport) shutdown() { s.client.Close() }

// driveTransport answers every pending question with cr until the session
// terminates. checkpointAt >= 0 injects a checkpoint → delete → restore
// cycle once that many answers are in, continuing under the new id.
func driveTransport(t *testing.T, tr transport, id string, cr crowdtopk.Crowd, checkpointAt int) (resultResponse, string) {
	t.Helper()
	answered := 0
	for round := 0; round < 1000; round++ {
		qs := tr.questions(t, id)
		if len(qs.Questions) == 0 {
			if !terminal(qs.State) {
				t.Fatalf("no questions but state %q not terminal", qs.State)
			}
			break
		}
		for _, q := range qs.Questions {
			a := cr.Ask(crowdtopk.Question{I: q.I, J: q.J})
			tr.answer(t, id, q.I, q.J, a.Yes)
			answered++
			if checkpointAt >= 0 && answered == checkpointAt {
				cp := tr.checkpoint(t, id)
				tr.remove(t, id)
				id = tr.restore(t, cp)
				checkpointAt = -1
				break // the restored session may plan fresh questions; re-pull
			}
		}
	}
	return tr.result(t, id), id
}

// answerTransportUpTo submits answers until n are in (or the session
// terminates), returning how many were submitted.
func answerTransportUpTo(t *testing.T, tr transport, id string, cr crowdtopk.Crowd, n int) int {
	t.Helper()
	answered := 0
	for answered < n {
		qs := tr.questions(t, id)
		if len(qs.Questions) == 0 {
			return answered
		}
		for _, q := range qs.Questions {
			a := cr.Ask(crowdtopk.Question{I: q.I, J: q.J})
			tr.answer(t, id, q.I, q.J, a.Yes)
			answered++
			if answered >= n {
				break
			}
		}
	}
	return answered
}

// TestTransportParity is the anti-drift acceptance test for the layering:
// the same top-K query — straight through, and with a checkpoint → delete →
// restore cycle injected mid-query — must produce identical outcomes through
// the HTTP codec and the embedded SDK, both matching the synchronous
// Process() call on the same workload and seed.
func TestTransportParity(t *testing.T) {
	_, scores := uniformWorkload()
	ds, err := crowdtopk.NewDataset(scores)
	if err != nil {
		t.Fatal(err)
	}
	const k, budget, seed = 3, 30, 42
	cr, _, err := crowdtopk.SimulatedCrowd(ds, 1, 1, seed)
	if err != nil {
		t.Fatal(err)
	}
	want, err := crowdtopk.Process(ds, crowdtopk.Query{K: k, Budget: budget, Seed: seed}, cr)
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name         string
		checkpointAt int
	}{
		{"straight", -1},
		{"checkpoint-midway", 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			transports := []struct {
				name string
				open func(t *testing.T) transport
			}{
				{"http", func(t *testing.T) transport { return newHTTPTransport(t, nil) }},
				{"sdk", func(t *testing.T) transport { return newSDKTransport(t, nil) }},
			}
			results := make([]resultResponse, len(transports))
			for i, tp := range transports {
				tr := tp.open(t)
				id := tr.create(t, k, budget, seed)
				crowd, _, err := crowdtopk.SimulatedCrowd(ds, 1, 1, seed)
				if err != nil {
					t.Fatal(err)
				}
				res, _ := driveTransport(t, tr, id, crowd, tc.checkpointAt)
				tr.shutdown()

				if res.Asked != want.QuestionsAsked {
					t.Errorf("%s: asked = %d, want %d", tp.name, res.Asked, want.QuestionsAsked)
				}
				if res.Resolved != want.Resolved || res.Orderings != want.Orderings {
					t.Errorf("%s: resolved/orderings = %v/%d, want %v/%d",
						tp.name, res.Resolved, res.Orderings, want.Resolved, want.Orderings)
				}
				if len(res.Ranking) != len(want.Ranking) {
					t.Fatalf("%s: ranking %v, want %v", tp.name, res.Ranking, want.Ranking)
				}
				for j := range res.Ranking {
					if res.Ranking[j] != want.Ranking[j] {
						t.Fatalf("%s: ranking %v, want %v", tp.name, res.Ranking, want.Ranking)
					}
				}
				results[i] = res
			}
			// SDK ≡ HTTP, field for field — state, asked, resolved,
			// orderings, uncertainty and the full ranking.
			sameAPIResult(t, results[1], results[0])
		})
	}
}

// TestTransportParityCrashRecovery runs the kill-hot durability scenario
// through both front doors: a client killed mid-query (no Close, no Flush —
// abandoned, like SIGKILL) reopens on the same data directory, recovers the
// session from snapshot + WAL, and finishes identically to an uninterrupted
// run. The HTTP and SDK recoveries must also agree with each other.
func TestTransportParityCrashRecovery(t *testing.T) {
	_, scores := uniformWorkload()
	ds, err := crowdtopk.NewDataset(scores)
	if err != nil {
		t.Fatal(err)
	}
	const k, budget, seed = 3, 30, 42
	const snapshotEvery, killAfter = 4, 7

	factories := []struct {
		name string
		open func(t *testing.T, dir string) transport
	}{
		{"http", func(t *testing.T, dir string) transport {
			return newHTTPTransport(t, mustFile(t, dir, snapshotEvery))
		}},
		{"sdk", func(t *testing.T, dir string) transport {
			return newSDKTransport(t, &sdk.Storage{Dir: dir, SnapshotEvery: snapshotEvery})
		}},
	}

	finals := make(map[string]resultResponse)
	for _, f := range factories {
		t.Run(f.name, func(t *testing.T) {
			// The uninterrupted reference, persisted identically so the only
			// variable in the crash run is the kill itself.
			ref := f.open(t, t.TempDir())
			refID := ref.create(t, k, budget, seed)
			refCrowd, _, err := crowdtopk.SimulatedCrowd(ds, 1, 1, seed)
			if err != nil {
				t.Fatal(err)
			}
			want, _ := driveTransport(t, ref, refID, refCrowd, -1)
			ref.shutdown()

			dir := t.TempDir()
			tr1 := f.open(t, dir)
			id := tr1.create(t, k, budget, seed)
			cr, _, err := crowdtopk.SimulatedCrowd(ds, 1, 1, seed)
			if err != nil {
				t.Fatal(err)
			}
			if n := answerTransportUpTo(t, tr1, id, cr, killAfter); n != killAfter {
				t.Fatalf("only %d answers in before the kill point %d", n, killAfter)
			}
			tr1.waitDurable(t)
			tr1.kill()

			tr2 := f.open(t, dir)
			defer tr2.shutdown()
			// The same crowd continues where it left off (reliability-1
			// simulated crowds are stateless oracles).
			got, _ := driveTransport(t, tr2, id, cr, -1)
			sameAPIResult(t, got, want)
			finals[f.name] = got
		})
	}
	if len(finals) == 2 {
		sameAPIResult(t, finals["sdk"], finals["http"])
	}
}
