package server_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"

	"crowdtopk/internal/server"
)

// keysOf returns the sorted top-level field names of a JSON object.
func keysOf(t *testing.T, raw []byte) []string {
	t.Helper()
	var obj map[string]json.RawMessage
	if err := json.Unmarshal(raw, &obj); err != nil {
		t.Fatalf("not a JSON object: %q: %v", raw, err)
	}
	keys := make([]string, 0, len(obj))
	for k := range obj {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func wantKeys(t *testing.T, what string, raw []byte, want ...string) map[string]json.RawMessage {
	t.Helper()
	sort.Strings(want)
	got := keysOf(t, raw)
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("%s fields = %v, want %v", what, got, want)
	}
	var obj map[string]json.RawMessage
	if err := json.Unmarshal(raw, &obj); err != nil {
		t.Fatal(err)
	}
	return obj
}

// rawGET fetches url and returns the status and raw body.
func rawGET(t *testing.T, ts *httptest.Server, url string) (int, []byte) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + url)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

func rawPOST(t *testing.T, ts *httptest.Server, url string, body any) (int, []byte) {
	t.Helper()
	payload, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+url, "application/json", strings.NewReader(string(payload)))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

// TestWireCompatibility is the golden test for the /v1 wire format: it pins
// the exact JSON field set of every response the API produces, so a refactor
// that renames, drops or accidentally adds a field — in the codec or in the
// service views it now encodes directly — fails loudly instead of silently
// breaking deployed clients.
func TestWireCompatibility(t *testing.T) {
	specs, _ := uniformWorkload()
	srv := newServer(t, server.Config{Persist: mustFile(t, t.TempDir(), 0)})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// POST /v1/sessions → 201 session info.
	code, raw := rawPOST(t, ts, "/v1/sessions", map[string]any{"tuples": specs, "k": 2, "budget": 5})
	if code != http.StatusCreated {
		t.Fatalf("create: status %d: %s", code, raw)
	}
	info := wantKeys(t, "create", raw,
		"id", "state", "tuples", "asked", "budget", "pending", "orderings")
	var id string
	if err := json.Unmarshal(info["id"], &id); err != nil {
		t.Fatal(err)
	}

	// GET /v1/sessions/{id}/questions → questions view, with each question's
	// own field set.
	code, raw = rawGET(t, ts, "/v1/sessions/"+id+"/questions?n=1")
	if code != http.StatusOK {
		t.Fatalf("questions: status %d", code)
	}
	qv := wantKeys(t, "questions", raw, "state", "questions", "asked", "budget")
	var qlist []json.RawMessage
	if err := json.Unmarshal(qv["questions"], &qlist); err != nil || len(qlist) != 1 {
		t.Fatalf("questions array: %s (err %v)", qv["questions"], err)
	}
	wantKeys(t, "question", qlist[0], "i", "j", "prompt")
	var q struct{ I, J int }
	if err := json.Unmarshal(qlist[0], &q); err != nil {
		t.Fatal(err)
	}

	// POST /v1/sessions/{id}/answers → batch ack.
	code, raw = rawPOST(t, ts, "/v1/sessions/"+id+"/answers",
		map[string]any{"answers": []map[string]any{{"i": q.I, "j": q.J, "yes": true}}})
	if code != http.StatusOK {
		t.Fatalf("answers: status %d: %s", code, raw)
	}
	wantKeys(t, "answers", raw, "state", "accepted", "asked", "pending", "contradictions")

	// GET /v1/sessions/{id}/result → full result view.
	code, raw = rawGET(t, ts, "/v1/sessions/"+id+"/result")
	if code != http.StatusOK {
		t.Fatalf("result: status %d", code)
	}
	wantKeys(t, "result", raw,
		"state", "ranking", "names", "resolved", "orderings", "uncertainty",
		"asked", "budget", "pending", "contradictions")

	// GET /v1/sessions → listing. The session absorbed one answer and the
	// planner refilled its round, so asked and pending are both present —
	// they carry omitempty, exercised by the fresh-session case below.
	waitDurable(t, ts)
	code, raw = rawGET(t, ts, "/v1/sessions")
	if code != http.StatusOK {
		t.Fatalf("list: status %d", code)
	}
	lv := wantKeys(t, "list", raw, "sessions", "total")
	var entries []json.RawMessage
	if err := json.Unmarshal(lv["sessions"], &entries); err != nil || len(entries) != 1 {
		t.Fatalf("list entries: %s (err %v)", lv["sessions"], err)
	}
	wantKeys(t, "list entry", entries[0],
		"id", "state", "asked", "pending", "idle_seconds", "persisted", "hydrated")

	// A session that never absorbed an answer omits its zero-valued asked
	// rather than encoding 0 (pending stays: creation plans the first round).
	code, raw = rawPOST(t, ts, "/v1/sessions", map[string]any{"tuples": specs, "k": 2, "budget": 5})
	if code != http.StatusCreated {
		t.Fatalf("second create: status %d", code)
	}
	fresh := wantKeys(t, "second create", raw,
		"id", "state", "tuples", "asked", "budget", "pending", "orderings")
	var freshID string
	if err := json.Unmarshal(fresh["id"], &freshID); err != nil {
		t.Fatal(err)
	}
	code, raw = rawGET(t, ts, "/v1/sessions")
	if code != http.StatusOK {
		t.Fatalf("second list: status %d", code)
	}
	if err := json.Unmarshal(wantKeys(t, "second list", raw, "sessions", "total")["sessions"], &entries); err != nil {
		t.Fatal(err)
	}
	for _, entry := range entries {
		var e struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(entry, &e); err != nil {
			t.Fatal(err)
		}
		if e.ID == freshID {
			wantKeys(t, "fresh list entry", entry,
				"id", "state", "pending", "idle_seconds", "persisted", "hydrated")
		}
	}

	// GET /v1/stats → operational snapshot, nested sections included.
	code, raw = rawGET(t, ts, "/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	sv := wantKeys(t, "stats", raw,
		"sessions", "store", "pcache", "pcache_window", "selection_live")
	store := wantKeys(t, "stats.store", sv["store"],
		"backend", "live_sessions", "known_sessions", "dirty_sessions",
		"evictions_to_disk", "hydration_hits", "hydration_misses",
		"persist_errors", "persist_retries", "evictions_refused",
		"degraded_mode", "breaker_state", "quarantined_sessions", "persist")
	wantKeys(t, "stats.store.persist", store["persist"],
		"snapshots", "wal_appends", "replays", "recovered_sessions",
		"fsyncs", "torn_wal_tails", "quarantines")
	wantKeys(t, "stats.pcache", sv["pcache"],
		"hits", "misses", "entries", "resets", "hit_rate",
		"prewarm_pairs", "prewarm_ns")
	wantKeys(t, "stats.pcache_window", sv["pcache_window"], "hits", "misses", "hit_rate")
	wantKeys(t, "stats.selection_live", sv["selection_live"],
		"reuses", "rebuilds", "patches", "resyncs", "compactions", "invalidations")

	// GET /v1/sessions/{id}/checkpoint → the versioned envelope, with its
	// optional sections (answers, pending) populated mid-query.
	code, raw = rawGET(t, ts, "/v1/sessions/"+id+"/checkpoint")
	if code != http.StatusOK {
		t.Fatalf("checkpoint: status %d", code)
	}
	env := wantKeys(t, "checkpoint", raw,
		"schema", "kind", "dataset", "digest", "config", "state",
		"asked", "contradictions", "rng_draws", "answers", "pending", "leaves")
	wantKeys(t, "checkpoint.config", env["config"],
		"k", "budget", "algorithm", "measure", "reliability", "round_size", "seed")

	// Error envelope: a plain failure carries exactly {"error"}.
	code, raw = rawGET(t, ts, "/v1/sessions/s_nope/result")
	if code != http.StatusNotFound {
		t.Fatalf("unknown session: status %d", code)
	}
	wantKeys(t, "error", raw, "error")

	// A mid-batch failure adds the accepted count, nothing else.
	code, raw = rawPOST(t, ts, "/v1/sessions/"+id+"/answers",
		map[string]any{"answers": []map[string]any{{"i": 0, "j": 0, "yes": true}}})
	if code != http.StatusBadRequest {
		t.Fatalf("self-comparison: status %d", code)
	}
	wantKeys(t, "batch error", raw, "error", "accepted")
}

// TestMuxErrorsAreJSON: routing failures produced by the mux itself — paths
// that match nothing and methods a route does not allow — speak the same
// JSON error envelope as the handlers, not net/http's text/plain default.
func TestMuxErrorsAreJSON(t *testing.T) {
	srv := newServer(t, server.Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Unrouted path → JSON 404.
	resp, err := ts.Client().Get(ts.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unrouted path: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("404 Content-Type = %q, want application/json", ct)
	}
	wantKeys(t, "mux 404", raw, "error")

	// Wrong method on a real route → JSON 405, Allow header preserved.
	req, err := http.NewRequest("DELETE", ts.URL+"/v1/stats", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("wrong method: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("405 Content-Type = %q, want application/json", ct)
	}
	if allow := resp.Header.Get("Allow"); !strings.Contains(allow, "GET") {
		t.Fatalf("405 Allow = %q, want it to keep GET", allow)
	}
	wantKeys(t, "mux 405", raw, "error")

	// Handler-produced JSON bodies pass through untouched: a real 404 from
	// the session store still carries its own message.
	resp, err = ts.Client().Get(ts.URL + "/v1/sessions/s_nope/result")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(raw, &e); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e.Error, "no such session") {
		t.Fatalf("handler 404 message lost: %q", e.Error)
	}
}
