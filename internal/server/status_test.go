package server

import (
	"errors"
	"fmt"
	"net/http"
	"testing"

	"crowdtopk/internal/engine"
	"crowdtopk/internal/service"
	"crowdtopk/internal/session"
	"crowdtopk/internal/tpo"
)

// TestStatusFor pins the one error→status mapping the codec owns: every
// typed failure the service layer can surface, classified through wrapping,
// and the precedence rule that a storage failure is a server error even when
// its cause would otherwise read as a client mistake.
func TestStatusFor(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"not found", service.ErrNotFound, http.StatusNotFound},
		{"wrapped not found", fmt.Errorf("ctx: %w", service.ErrNotFound), http.StatusNotFound},
		{"at capacity", service.ErrFull, http.StatusServiceUnavailable},
		{"session done", session.ErrDone, http.StatusConflict},
		{"unknown question", session.ErrUnknownQuestion, http.StatusConflict},
		{"bad input", service.ErrBadInput, http.StatusBadRequest},
		{"invalid config", session.ErrInvalidConfig, http.StatusBadRequest},
		{"invalid checkpoint", session.ErrInvalidCheckpoint, http.StatusBadRequest},
		{"unknown algorithm", engine.ErrUnknownAlgorithm, http.StatusBadRequest},
		{"tpo invalid input", tpo.ErrInvalidInput, http.StatusBadRequest},
		{"tpo too large", tpo.ErrTooLarge, http.StatusBadRequest},
		{"checkpoint mismatch", &tpo.MismatchError{Field: "schema", Want: "1", Got: "9"}, http.StatusBadRequest},
		{"unclassified", errors.New("boom"), http.StatusInternalServerError},
		// A batch error classifies by its cause: the partial-accept count
		// changes the envelope, not the status.
		{"batch stopped by done", &service.BatchError{Accepted: 2, Err: session.ErrDone}, http.StatusConflict},
		{"batch stopped by bad input", &service.BatchError{Accepted: 1, Err: fmt.Errorf("%w: self-comparison", service.ErrBadInput)}, http.StatusBadRequest},
		// Storage failures win over whatever they wrap: a digest mismatch
		// found while hydrating from disk is corruption (500), not the
		// client's bad checkpoint (400).
		{"storage failure", &service.StorageError{Op: "hydrating", Err: errors.New("io")}, http.StatusInternalServerError},
		{"storage wrapping client-class cause", &service.StorageError{
			Op:  "hydrating session s_1",
			Err: &tpo.MismatchError{Field: "dataset digest", Want: "a", Got: "b"},
		}, http.StatusInternalServerError},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := statusFor(tc.err); got != tc.want {
				t.Errorf("statusFor(%v) = %d, want %d", tc.err, got, tc.want)
			}
		})
	}
}
