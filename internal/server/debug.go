package server

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"crowdtopk/internal/obs"
)

// tracesResponse is the /debug/traces wire shape: the retained traces
// (newest first) after filtering, plus the count so a dashboard can render
// "showing N" without re-counting.
type tracesResponse struct {
	Count  int             `json:"count"`
	Traces []obs.TraceData `json:"traces"`
}

// handleTraces serves the tracer's ring of retained traces as JSON, newest
// first. Query parameters: route (exact match on the root route label),
// min_ms (minimum root duration in milliseconds), limit (maximum traces
// returned). 404 when tracing is disabled — the ring does not exist, and a
// 404 distinguishes "not collecting" from "collecting, nothing retained".
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	tracer := s.svc.Tracer()
	if !tracer.Enabled() {
		writeErr(w, http.StatusNotFound, fmt.Errorf("tracing disabled (serve -trace-sample 0)"))
		return
	}
	f := obs.TraceFilter{Route: r.URL.Query().Get("route")}
	if raw := r.URL.Query().Get("min_ms"); raw != "" {
		ms, err := strconv.ParseFloat(raw, 64)
		if err != nil || ms < 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad min_ms %q", raw))
			return
		}
		f.MinDuration = time.Duration(ms * float64(time.Millisecond))
	}
	if raw := r.URL.Query().Get("limit"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 1 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad limit %q", raw))
			return
		}
		f.Limit = v
	}
	traces := tracer.Traces(f)
	if traces == nil {
		traces = []obs.TraceData{} // "traces": [] rather than null
	}
	writeJSON(w, tracesResponse{Count: len(traces), Traces: traces})
}

// registerPprof mounts the Go profiler under /debug/pprof/. Wired explicitly
// rather than via the net/http/pprof side-effect import so the handlers only
// exist on servers that opted in (Config.EnablePprof; the serve subcommand
// additionally refuses to enable it on a non-loopback listener unless
// -pprof-public is also given).
func registerPprof(mux *http.ServeMux) {
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}
