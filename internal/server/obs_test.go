package server_test

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"crowdtopk/internal/obs"
	"crowdtopk/internal/persist"
	"crowdtopk/internal/server"
	"crowdtopk/sdk"
)

// createSession posts a fresh uniform-workload session and returns its id.
func createSession(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	specs, _ := uniformWorkload()
	var info sessionInfo
	if code := doJSON(t, ts.Client(), "POST", ts.URL+"/v1/sessions",
		map[string]any{"tuples": specs, "k": 2, "budget": 6}, &info); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	return info.ID
}

var (
	// Label values are quoted strings that may themselves contain '{'/'}'
	// (route templates do), so the matcher walks quoted values, not braces.
	labelPair  = `[a-zA-Z_][a-zA-Z0-9_]*="(?:\\.|[^"\\])*"`
	sampleLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{` + labelPair + `(?:,` + labelPair + `)*\})? [^ ]+$`)
	helpLine   = regexp.MustCompile(`^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*( .*)?$`)
)

// scrape fetches /metrics, validates every line against the exposition
// grammar, and returns the body.
func scrape(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content-type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimRight(string(raw), "\n"), "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if !helpLine.MatchString(line) {
				t.Fatalf("malformed comment line: %q", line)
			}
			continue
		}
		if !sampleLine.MatchString(line) {
			t.Fatalf("malformed sample line: %q", line)
		}
	}
	return string(raw)
}

// TestMetricsEndpointCoversAllLayers drives real traffic through a persisted
// server and asserts the scrape carries every layer's families: HTTP latency
// histograms by route, WAL fsync latency, pool saturation, π-cache hit rate,
// session-state gauges — the acceptance surface of the observability issue.
func TestMetricsEndpointCoversAllLayers(t *testing.T) {
	disk, err := persist.NewFile(persist.FileOptions{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(t, server.Config{Persist: disk})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	id := createSession(t, ts)
	var qs questionsResponse
	if code := doJSON(t, ts.Client(), "GET", ts.URL+"/v1/sessions/"+id+"/questions?n=1", nil, &qs); code != 200 {
		t.Fatalf("questions: status %d", code)
	}
	if len(qs.Questions) > 0 {
		q := qs.Questions[0]
		if code := doJSON(t, ts.Client(), "POST", ts.URL+"/v1/sessions/"+id+"/answers",
			map[string]any{"answers": []map[string]any{{"i": q.I, "j": q.J, "yes": true}}}, nil); code != 200 {
			t.Fatalf("answers: status %d", code)
		}
	}
	srv.Flush() // force WAL activity so the fsync histogram has samples

	body := scrape(t, ts)
	for _, want := range []string{
		`crowdtopk_http_request_duration_seconds_bucket{route="/v1/sessions",le="+Inf"}`,
		`crowdtopk_http_requests_total{method="POST",route="/v1/sessions",status="201"}`,
		"crowdtopk_wal_fsync_seconds_bucket",
		"crowdtopk_wal_append_seconds_count",
		"crowdtopk_pool_saturation",
		"crowdtopk_pcache_hit_rate",
		`crowdtopk_sessions_by_state{state=`,
		"crowdtopk_sessions_live 1",
		"crowdtopk_answers_accepted_total",
		"crowdtopk_persist_activity_total{op=\"fsync\"}",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q", want)
		}
	}

	// The HTTP latency histogram must be internally consistent: the +Inf
	// bucket equals the count for the create route.
	inf := extractValue(t, body, `crowdtopk_http_request_duration_seconds_bucket{route="/v1/sessions",le="+Inf"}`)
	cnt := extractValue(t, body, `crowdtopk_http_request_duration_seconds_count{route="/v1/sessions"}`)
	if inf != cnt || cnt < 1 {
		t.Fatalf("+Inf bucket %v != count %v", inf, cnt)
	}
}

func extractValue(t *testing.T, body, prefix string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, prefix+" ") {
			v, err := strconv.ParseFloat(strings.TrimPrefix(line, prefix+" "), 64)
			if err != nil {
				t.Fatalf("parsing %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("no sample with prefix %q", prefix)
	return 0
}

// TestAdmissionRateLimitPerClient pins the acceptance criterion: a client
// over its token bucket gets 429 with a Retry-After header while a different
// client's requests keep succeeding.
func TestAdmissionRateLimitPerClient(t *testing.T) {
	srv := newServer(t, server.Config{RateLimit: 0.5, RateBurst: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(client string) *http.Response {
		req, err := http.NewRequest("GET", ts.URL+"/v1/stats", nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-Forwarded-For", client)
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	// Exhaust the abuser's burst of 2.
	for i := 0; i < 2; i++ {
		if resp := get("10.0.0.1"); resp.StatusCode != http.StatusOK {
			t.Fatalf("in-burst request %d: status %d", i, resp.StatusCode)
		}
	}
	resp := get("10.0.0.1")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-burst request: status %d, want 429", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After %q, want integer >= 1", resp.Header.Get("Retry-After"))
	}
	// The other client is unaffected.
	if resp := get("10.0.0.2"); resp.StatusCode != http.StatusOK {
		t.Fatalf("independent client: status %d, want 200", resp.StatusCode)
	}
	// Probes bypass admission even for the throttled client.
	req, _ := http.NewRequest("GET", ts.URL+"/health", nil)
	req.Header.Set("X-Forwarded-For", "10.0.0.1")
	hresp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("/health for throttled client: status %d", hresp.StatusCode)
	}
}

// TestAdmissionMaxInflight pins the overload path: with one inflight slot
// held by a stalled request, the next API request sheds with 503 and a
// Retry-After header; when the slot frees, requests flow again.
func TestAdmissionMaxInflight(t *testing.T) {
	srv := newServer(t, server.Config{MaxInflight: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Hold the only slot: a create whose body never finishes arriving keeps
	// its handler (and admission slot) pinned inside the JSON decoder.
	pr, pw := io.Pipe()
	req, err := http.NewRequest("POST", ts.URL+"/v1/sessions", pr)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := ts.Client().Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()

	// Wait until the stalled request occupies the slot, then expect a shed.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := ts.Client().Get(ts.URL + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("503 without Retry-After")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("never saw 503 while slot held (last status %d)", resp.StatusCode)
		}
		time.Sleep(10 * time.Millisecond)
	}

	pw.CloseWithError(io.ErrUnexpectedEOF) // release the stalled request
	<-done
	deadline = time.Now().Add(5 * time.Second)
	for {
		resp, err := ts.Client().Get(ts.URL + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot never released (status %d)", resp.StatusCode)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestHealthAndReadiness pins the probe semantics: /health always answers
// 200 while serving; /ready flips to 503 when the session pool saturates and
// recovers when capacity returns.
func TestHealthAndReadiness(t *testing.T) {
	srv := newServer(t, server.Config{MaxSessions: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	status := func(path string) int {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := status("/health"); got != http.StatusOK {
		t.Fatalf("/health: %d", got)
	}
	if got := status("/ready"); got != http.StatusOK {
		t.Fatalf("/ready before saturation: %d", got)
	}

	id := createSession(t, ts) // fills the single session slot
	if got := status("/ready"); got != http.StatusServiceUnavailable {
		t.Fatalf("/ready at saturation: %d, want 503", got)
	}
	if got := status("/health"); got != http.StatusOK {
		t.Fatalf("/health at saturation: %d, want 200 (liveness is not readiness)", got)
	}
	var body struct {
		Ready   bool     `json:"ready"`
		Reasons []string `json:"reasons"`
	}
	if code := doJSON(t, ts.Client(), "GET", ts.URL+"/ready", nil, &body); code != http.StatusServiceUnavailable {
		t.Fatalf("/ready body fetch: %d", code)
	}
	if body.Ready || len(body.Reasons) == 0 {
		t.Fatalf("unready body lacks reasons: %+v", body)
	}

	if code := doJSON(t, ts.Client(), "DELETE", ts.URL+"/v1/sessions/"+id, nil, nil); code != http.StatusNoContent {
		t.Fatalf("delete: %d", code)
	}
	if got := status("/ready"); got != http.StatusOK {
		t.Fatalf("/ready after capacity returned: %d", got)
	}
}

// blockedWriter models a hung audit sink: every Write blocks until the test
// releases it.
type blockedWriter struct{ release chan struct{} }

func (w *blockedWriter) Write(p []byte) (int, error) {
	<-w.release
	return len(p), nil
}

// TestStalledAuditSinkDoesNotBlockAnswers pins the acceptance criterion:
// with the audit sink wedged solid, answer submissions still complete
// promptly (events are dropped, not awaited) and the drops are counted.
func TestStalledAuditSinkDoesNotBlockAnswers(t *testing.T) {
	w := &blockedWriter{release: make(chan struct{})}
	audit := obs.NewAuditLog(obs.AuditConfig{W: w, Queue: 2, BatchSize: 1, FlushInterval: time.Millisecond})
	srv := newServer(t, server.Config{Audit: audit})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	id := createSession(t, ts)
	// Submit many single-answer batches; each emits one audit event into a
	// queue of 2 in front of a wedged writer, so most must drop.
	submitted := 0
	start := time.Now()
	for submitted < 6 {
		var qs questionsResponse
		if code := doJSON(t, ts.Client(), "GET",
			fmt.Sprintf("%s/v1/sessions/%s/questions?n=1", ts.URL, id), nil, &qs); code != 200 {
			t.Fatalf("questions: status %d", code)
		}
		if terminal(qs.State) || len(qs.Questions) == 0 {
			break
		}
		q := qs.Questions[0]
		if code := doJSON(t, ts.Client(), "POST",
			fmt.Sprintf("%s/v1/sessions/%s/answers", ts.URL, id),
			map[string]any{"answers": []map[string]any{{"i": q.I, "j": q.J, "yes": true}}}, nil); code != 200 {
			t.Fatalf("answers: status %d", code)
		}
		submitted++
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("answer path blocked behind the audit sink: %d batches took %s", submitted, elapsed)
	}
	if submitted < 3 {
		t.Fatalf("workload too small to contend the sink: %d batches", submitted)
	}
	if audit.Dropped() == 0 {
		t.Fatal("no dropped audit events counted despite a wedged sink")
	}
	body := scrape(t, ts)
	if !strings.Contains(body, "crowdtopk_audit_dropped_total") {
		t.Error("scrape missing crowdtopk_audit_dropped_total")
	}

	close(w.release) // unwedge so Close (via srv.Close) can drain
	srv.Close()
}

// TestMetricNameParityHTTPvsSDK pins the exposition parity discipline: the
// SDK's Client.Metrics() and the HTTP server's GET /metrics render the same
// registry, so after driving both front doors the family-name sets are
// identical — an embedder's dashboards work unchanged against either.
func TestMetricNameParityHTTPvsSDK(t *testing.T) {
	srv := newServer(t, server.Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	createSession(t, ts)
	httpNames := familyNames(t, scrape(t, ts))

	client, err := sdk.New(sdk.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	raw, err := client.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	sdkNames := familyNames(t, string(raw))

	if len(httpNames) == 0 {
		t.Fatal("HTTP scrape exposed no families")
	}
	for name := range httpNames {
		if !sdkNames[name] {
			t.Errorf("family %q exposed over HTTP but absent from sdk.Client.Metrics()", name)
		}
	}
	for name := range sdkNames {
		if !httpNames[name] {
			t.Errorf("family %q exposed by sdk.Client.Metrics() but absent over HTTP", name)
		}
	}
}

// familyNames extracts the set of metric family names from TYPE lines.
func familyNames(t *testing.T, body string) map[string]bool {
	t.Helper()
	names := make(map[string]bool)
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, _, _ := strings.Cut(rest, " ")
			names[name] = true
		}
	}
	return names
}
