package server

import (
	"encoding/json"
	"net/http"
	"strings"
)

// jsonMuxErrors wraps the API mux so its built-in error responses — 404 for
// unmatched routes, 405 for a known path with the wrong method — use the
// same JSON error envelope as every handler-written response, instead of
// http.ServeMux's text/plain defaults. Handler responses pass through
// untouched: they set Content-Type: application/json before writing their
// status, which is the discriminator.
func jsonMuxErrors(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		next.ServeHTTP(&jsonErrorWriter{ResponseWriter: w}, r)
	})
}

// jsonErrorWriter intercepts text/plain 404/405s at WriteHeader time,
// substituting the JSON envelope and swallowing the original body.
type jsonErrorWriter struct {
	http.ResponseWriter
	wroteHeader bool
	intercepted bool
}

func (w *jsonErrorWriter) WriteHeader(status int) {
	if w.wroteHeader {
		w.ResponseWriter.WriteHeader(status)
		return
	}
	w.wroteHeader = true
	if (status == http.StatusNotFound || status == http.StatusMethodNotAllowed) &&
		!strings.HasPrefix(w.Header().Get("Content-Type"), "application/json") {
		w.intercepted = true
		msg := "not found"
		if status == http.StatusMethodNotAllowed {
			msg = "method not allowed" // the mux's Allow header rides along
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Del("Content-Length") // the substituted body differs
		w.ResponseWriter.WriteHeader(status)
		_ = json.NewEncoder(w.ResponseWriter).Encode(map[string]any{"error": msg})
		return
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *jsonErrorWriter) Write(b []byte) (int, error) {
	if w.intercepted {
		// Drop the mux's plain-text body; the JSON envelope already went out.
		return len(b), nil
	}
	if !w.wroteHeader {
		w.wroteHeader = true // implicit 200: nothing to intercept
	}
	return w.ResponseWriter.Write(b)
}
