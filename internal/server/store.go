package server

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"sync"
	"time"

	"crowdtopk/internal/session"
)

// ErrNotFound reports a session id the store does not hold (never created,
// deleted, or evicted after its TTL).
var ErrNotFound = errors.New("server: no such session")

// ErrFull reports that the store is at its session capacity.
var ErrFull = errors.New("server: session limit reached")

// entry is one stored session. The session serializes its own transitions;
// the store only guards the map and the last-access stamp.
type entry struct {
	sess *session.Session

	mu       sync.Mutex // guards lastUsed
	lastUsed time.Time
}

func (e *entry) touch(now time.Time) {
	e.mu.Lock()
	e.lastUsed = now
	e.mu.Unlock()
}

func (e *entry) idleSince() time.Time {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.lastUsed
}

// store is a concurrency-safe session registry with TTL eviction: sessions
// idle longer than ttl are dropped by a janitor goroutine. Clients that
// checkpoint before going quiet can restore after eviction.
type store struct {
	ttl time.Duration
	max int

	mu       sync.Mutex
	sessions map[string]*entry
	reserved int // capacity claimed by creates still building (see reserve)

	stop      chan struct{}
	done      chan struct{}
	closeOnce sync.Once
}

func newStore(ttl time.Duration, max int) *store {
	s := &store{
		ttl:      ttl,
		max:      max,
		sessions: make(map[string]*entry),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go s.janitor()
	return s
}

// newID returns a fresh 128-bit random session id.
func newID() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", err
	}
	return "s_" + hex.EncodeToString(b[:]), nil
}

// reserve claims capacity for a session about to be built, so load shedding
// happens before the expensive tree construction rather than after it. The
// reservation is consumed by add or returned with unreserve.
func (s *store) reserve() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.max > 0 && len(s.sessions)+s.reserved >= s.max {
		return ErrFull
	}
	s.reserved++
	return nil
}

// unreserve returns a reservation whose build failed.
func (s *store) unreserve() {
	s.mu.Lock()
	s.reserved--
	s.mu.Unlock()
}

// add registers a session under a fresh id, consuming one reservation made
// with reserve (which guarantees room).
func (s *store) add(sess *session.Session) (string, error) {
	id, err := newID()
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reserved--
	if err != nil {
		return "", err
	}
	s.sessions[id] = &entry{sess: sess, lastUsed: now}
	return id, nil
}

// get returns the session and refreshes its TTL.
func (s *store) get(id string) (*session.Session, error) {
	s.mu.Lock()
	e, ok := s.sessions[id]
	s.mu.Unlock()
	if !ok {
		return nil, ErrNotFound
	}
	e.touch(time.Now())
	return e.sess, nil
}

// remove deletes a session; it reports whether the id existed.
func (s *store) remove(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.sessions[id]; !ok {
		return false
	}
	delete(s.sessions, id)
	return true
}

// len returns the number of live sessions.
func (s *store) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// close stops the janitor and drops every session. It is idempotent, so
// embedders that both defer Close and call it on a shutdown-signal path do
// not panic on the second call.
func (s *store) close() {
	s.closeOnce.Do(func() {
		close(s.stop)
		<-s.done
		s.mu.Lock()
		s.sessions = make(map[string]*entry)
		s.mu.Unlock()
	})
}

// janitor evicts idle sessions every ttl/4 (bounded to [1s, 1m] so tiny
// test TTLs still evict promptly and huge TTLs don't scan needlessly).
func (s *store) janitor() {
	defer close(s.done)
	if s.ttl <= 0 {
		<-s.stop // eviction disabled; just wait for close
		return
	}
	interval := s.ttl / 4
	if interval < time.Second {
		interval = s.ttl // sub-second TTLs (tests) sweep at TTL cadence
	}
	if interval > time.Minute {
		interval = time.Minute
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case now := <-tick.C:
			s.evictIdle(now)
		}
	}
}

func (s *store) evictIdle(now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for id, e := range s.sessions {
		if now.Sub(e.idleSince()) > s.ttl {
			delete(s.sessions, id)
		}
	}
}
