package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	crowdtopk "crowdtopk"
	"crowdtopk/internal/server"
)

// newServer builds a server, failing the test on a store error.
func newServer(t *testing.T, cfg server.Config) *server.Server {
	t.Helper()
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// doJSON performs one API call, decoding the response JSON into out (which
// may be nil) and returning the status code.
func doJSON(t *testing.T, client *http.Client, method, url string, body, out any) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && len(raw) > 0 {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, url, raw, err)
		}
	}
	return resp.StatusCode
}

// uniformWorkload is the golden-test workload: 6 overlapping uniform scores.
// specs is the wire form the API accepts; scores the public constructor form
// Process consumes — the same score model through both front doors.
func uniformWorkload() (specs []map[string]any, scores []crowdtopk.Uncertain) {
	centers := []float64{1.0, 1.3, 1.6, 1.9, 2.2, 2.5}
	const width = 1.6
	for _, c := range centers {
		specs = append(specs, map[string]any{
			"family": "uniform",
			"params": []float64{c - width/2, c + width/2},
		})
		scores = append(scores, crowdtopk.UniformScore(c, width))
	}
	return specs, scores
}

type sessionInfo struct {
	ID        string `json:"id"`
	State     string `json:"state"`
	Tuples    int    `json:"tuples"`
	Asked     int    `json:"asked"`
	Budget    int    `json:"budget"`
	Pending   int    `json:"pending"`
	Orderings int    `json:"orderings"`
}

type questionJSON struct {
	I      int    `json:"i"`
	J      int    `json:"j"`
	Prompt string `json:"prompt"`
}

type questionsResponse struct {
	State     string         `json:"state"`
	Questions []questionJSON `json:"questions"`
	Asked     int            `json:"asked"`
	Budget    int            `json:"budget"`
}

type resultResponse struct {
	State       string   `json:"state"`
	Ranking     []int    `json:"ranking"`
	Names       []string `json:"names"`
	Resolved    bool     `json:"resolved"`
	Orderings   int      `json:"orderings"`
	Uncertainty float64  `json:"uncertainty"`
	Asked       int      `json:"asked"`
}

func terminal(state string) bool { return state == "converged" || state == "exhausted" }

// driveOverAPI answers every pending question with cr until the session
// terminates, returning the result. checkpointAt >= 0 injects a full
// checkpoint → delete → restore cycle once that many answers are in,
// continuing under the new session id.
func driveOverAPI(t *testing.T, ts *httptest.Server, id string, cr crowdtopk.Crowd, checkpointAt int) (resultResponse, string) {
	t.Helper()
	base := ts.URL + "/v1/sessions/"
	answered := 0
	for round := 0; round < 1000; round++ {
		var qs questionsResponse
		if code := doJSON(t, ts.Client(), "GET", base+id+"/questions", nil, &qs); code != http.StatusOK {
			t.Fatalf("questions: status %d", code)
		}
		if len(qs.Questions) == 0 {
			if !terminal(qs.State) {
				t.Fatalf("no questions but state %q not terminal", qs.State)
			}
			break
		}
		for _, q := range qs.Questions {
			a := cr.Ask(crowdtopk.Question{I: q.I, J: q.J})
			payload := map[string]any{"answers": []map[string]any{{"i": q.I, "j": q.J, "yes": a.Yes}}}
			var ar struct {
				State string `json:"state"`
			}
			if code := doJSON(t, ts.Client(), "POST", base+id+"/answers", payload, &ar); code != http.StatusOK {
				t.Fatalf("answers: status %d", code)
			}
			answered++
			if checkpointAt >= 0 && answered == checkpointAt {
				id = checkpointRestore(t, ts, id)
				checkpointAt = -1
				break // the restored session may plan fresh questions; re-pull
			}
		}
	}
	var res resultResponse
	if code := doJSON(t, ts.Client(), "GET", base+id+"/result", nil, &res); code != http.StatusOK {
		t.Fatalf("result: status %d", code)
	}
	return res, id
}

// checkpointRestore pulls the session's checkpoint, deletes it server-side
// (simulating a crash or redeploy) and restores it as a new session.
func checkpointRestore(t *testing.T, ts *httptest.Server, id string) string {
	t.Helper()
	base := ts.URL + "/v1/sessions/"
	resp, err := ts.Client().Get(base + id + "/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint: status %d err %v", resp.StatusCode, err)
	}
	req, err := http.NewRequest("DELETE", base+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	del, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	del.Body.Close()
	if del.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: status %d", del.StatusCode)
	}
	var info sessionInfo
	if code := doJSON(t, ts.Client(), "POST", strings.TrimSuffix(base, "/"),
		map[string]any{"checkpoint": json.RawMessage(raw)}, &info); code != http.StatusCreated {
		t.Fatalf("restore: status %d", code)
	}
	return info.ID
}

// TestServedQueryMatchesProcess completes a top-K query entirely over the
// HTTP API and checks the ranking equals the synchronous Process() call on
// the same workload, same seed — once straight through, and once with a
// checkpoint → delete → restore injected mid-query.
func TestServedQueryMatchesProcess(t *testing.T) {
	specs, scores := uniformWorkload()
	ds, err := crowdtopk.NewDataset(scores)
	if err != nil {
		t.Fatal(err)
	}
	const k, budget, seed = 3, 30, 42
	cr, _, err := crowdtopk.SimulatedCrowd(ds, 1, 1, seed)
	if err != nil {
		t.Fatal(err)
	}
	want, err := crowdtopk.Process(ds, crowdtopk.Query{K: k, Budget: budget, Seed: seed}, cr)
	if err != nil {
		t.Fatal(err)
	}

	for _, checkpointAt := range []int{-1, 3} {
		name := "straight"
		if checkpointAt >= 0 {
			name = "checkpoint-midway"
		}
		t.Run(name, func(t *testing.T) {
			srv := newServer(t, server.Config{})
			defer srv.Close()
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()

			var info sessionInfo
			code := doJSON(t, ts.Client(), "POST", ts.URL+"/v1/sessions", map[string]any{
				"tuples": specs, "k": k, "budget": budget, "seed": seed,
			}, &info)
			if code != http.StatusCreated {
				t.Fatalf("create: status %d", code)
			}
			if info.State != "created" || info.Tuples != len(specs) {
				t.Fatalf("create info %+v", info)
			}

			apiCrowd, _, err := crowdtopk.SimulatedCrowd(ds, 1, 1, seed)
			if err != nil {
				t.Fatal(err)
			}
			res, _ := driveOverAPI(t, ts, info.ID, apiCrowd, checkpointAt)

			if res.Asked != want.QuestionsAsked {
				t.Errorf("asked = %d, want %d", res.Asked, want.QuestionsAsked)
			}
			if res.Resolved != want.Resolved || res.Orderings != want.Orderings {
				t.Errorf("resolved/orderings = %v/%d, want %v/%d", res.Resolved, res.Orderings, want.Resolved, want.Orderings)
			}
			if len(res.Ranking) != len(want.Ranking) {
				t.Fatalf("ranking %v, want %v", res.Ranking, want.Ranking)
			}
			for i := range res.Ranking {
				if res.Ranking[i] != want.Ranking[i] {
					t.Fatalf("ranking %v, want %v", res.Ranking, want.Ranking)
				}
			}
		})
	}
}

// TestConcurrentSessions drives several sessions on distinct datasets
// through one server at the same time; under -race this pins the store's
// and the shared worker budget's concurrency safety.
func TestConcurrentSessions(t *testing.T) {
	srv := newServer(t, server.Config{Workers: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const n = 4
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errs[i] = fmt.Errorf("panic: %v", r)
				}
			}()
			centers := []float64{1.0, 1.4, 1.8, 2.2, 2.6}
			var specs []map[string]any
			var scores []crowdtopk.Uncertain
			width := 1.4 + 0.2*float64(i) // distinct datasets per session
			for _, c := range centers {
				specs = append(specs, map[string]any{"family": "uniform", "params": []float64{c - width/2, c + width/2}})
				scores = append(scores, crowdtopk.UniformScore(c, width))
			}
			ds, err := crowdtopk.NewDataset(scores)
			if err != nil {
				errs[i] = err
				return
			}
			cr, _, err := crowdtopk.SimulatedCrowd(ds, 1, 1, int64(100+i))
			if err != nil {
				errs[i] = err
				return
			}
			var info sessionInfo
			if code := doJSON(t, ts.Client(), "POST", ts.URL+"/v1/sessions", map[string]any{
				"tuples": specs, "k": 2, "budget": 10, "algorithm": "incr",
			}, &info); code != http.StatusCreated {
				errs[i] = fmt.Errorf("create: status %d", code)
				return
			}
			res, _ := driveOverAPI(t, ts, info.ID, cr, -1)
			if !terminal(res.State) {
				errs[i] = fmt.Errorf("session %d not terminal: %+v", i, res)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("session %d: %v", i, err)
		}
	}
}

// TestServerErrorPaths pins the API's typed failure modes.
func TestServerErrorPaths(t *testing.T) {
	srv := newServer(t, server.Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Unknown session → 404.
	if code := doJSON(t, ts.Client(), "GET", ts.URL+"/v1/sessions/s_nope/result", nil, nil); code != http.StatusNotFound {
		t.Errorf("unknown id: status %d, want 404", code)
	}
	// Bad dataset → 400.
	if code := doJSON(t, ts.Client(), "POST", ts.URL+"/v1/sessions", map[string]any{
		"tuples": []map[string]any{{"family": "uniform", "params": []float64{2, 1}}}, "k": 1, "budget": 2,
	}, nil); code != http.StatusBadRequest {
		t.Errorf("bad dataset: status %d, want 400", code)
	}
	// Bad k → 400.
	specs, _ := uniformWorkload()
	if code := doJSON(t, ts.Client(), "POST", ts.URL+"/v1/sessions", map[string]any{
		"tuples": specs, "k": 99, "budget": 2,
	}, nil); code != http.StatusBadRequest {
		t.Errorf("bad k: status %d, want 400", code)
	}
	// Unknown measure is a client error, not a 500.
	if code := doJSON(t, ts.Client(), "POST", ts.URL+"/v1/sessions", map[string]any{
		"tuples": specs, "k": 2, "budget": 2, "measure": "bogus",
	}, nil); code != http.StatusBadRequest {
		t.Errorf("bad measure: status %d, want 400", code)
	}
	// Unknown algorithm likewise.
	if code := doJSON(t, ts.Client(), "POST", ts.URL+"/v1/sessions", map[string]any{
		"tuples": specs, "k": 2, "budget": 2, "algorithm": "bogus",
	}, nil); code != http.StatusBadRequest {
		t.Errorf("bad algorithm: status %d, want 400", code)
	}

	// Create a real session, then answer a question that was never issued →
	// 409 conflict.
	var info sessionInfo
	if code := doJSON(t, ts.Client(), "POST", ts.URL+"/v1/sessions", map[string]any{
		"tuples": specs, "k": 2, "budget": 5,
	}, &info); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	var qs questionsResponse
	if code := doJSON(t, ts.Client(), "GET", ts.URL+"/v1/sessions/"+info.ID+"/questions?n=1", nil, &qs); code != http.StatusOK {
		t.Fatalf("questions: status %d", code)
	}
	if len(qs.Questions) != 1 {
		t.Fatalf("n=1 returned %d questions", len(qs.Questions))
	}
	q := qs.Questions[0]
	other := map[string]any{"i": q.I, "j": q.J}
	// Find a pair that is not the pending question.
	for a := 0; a < len(specs); a++ {
		for b := a + 1; b < len(specs); b++ {
			if a != q.I || b != q.J {
				other = map[string]any{"i": a, "j": b, "yes": true}
			}
		}
	}
	if code := doJSON(t, ts.Client(), "POST", ts.URL+"/v1/sessions/"+info.ID+"/answers",
		map[string]any{"answers": []map[string]any{other}}, nil); code != http.StatusConflict {
		t.Errorf("unissued answer: status %d, want 409", code)
	}

	// A checkpoint with a corrupted digest → 400.
	resp, err := ts.Client().Get(ts.URL + "/v1/sessions/" + info.ID + "/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	corrupt := bytes.Replace(raw, []byte(`"digest":"sha256:`), []byte(`"digest":"sha256:00`), 1)
	if code := doJSON(t, ts.Client(), "POST", ts.URL+"/v1/sessions",
		map[string]any{"checkpoint": json.RawMessage(corrupt)}, nil); code != http.StatusBadRequest {
		t.Errorf("corrupt checkpoint: status %d, want 400", code)
	}

	// Structurally inconsistent checkpoints are client errors (400), not
	// 500s: an unknown state, an answer count that contradicts asked, and
	// an absurd RNG position (which must also be rejected without replaying
	// it — a crafted value near 2^64 would otherwise spin the CPU).
	var env map[string]any
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatal(err)
	}
	for name, mutate := range map[string]func(map[string]any){
		"unknown state":  func(e map[string]any) { e["state"] = "bogus" },
		"asked mismatch": func(e map[string]any) { e["asked"] = 7 },
		"huge rng_draws": func(e map[string]any) { e["rng_draws"] = float64(1 << 40) },
	} {
		e := map[string]any{}
		for k, v := range env {
			e[k] = v
		}
		mutate(e)
		bad, err := json.Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		if code := doJSON(t, ts.Client(), "POST", ts.URL+"/v1/sessions",
			map[string]any{"checkpoint": json.RawMessage(bad)}, nil); code != http.StatusBadRequest {
			t.Errorf("%s checkpoint: status %d, want 400", name, code)
		}
	}

	// A mid-batch self-comparison → 400 that still reports how many answers
	// were accepted before it, like every other mid-batch failure.
	var ackErr struct {
		Error    string `json:"error"`
		Accepted int    `json:"accepted"`
	}
	if code := doJSON(t, ts.Client(), "POST", ts.URL+"/v1/sessions/"+info.ID+"/answers",
		map[string]any{"answers": []map[string]any{
			{"i": q.I, "j": q.J, "yes": true},
			{"i": 0, "j": 0, "yes": true},
		}}, &ackErr); code != http.StatusBadRequest {
		t.Errorf("self-comparison: status %d, want 400", code)
	}
	if ackErr.Accepted != 1 {
		t.Errorf("self-comparison accepted = %d, want 1", ackErr.Accepted)
	}
}

// TestServerCloseIdempotent: embedders commonly both defer Close and call it
// on a shutdown-signal path; the second call must be a no-op, not a panic.
func TestServerCloseIdempotent(t *testing.T) {
	srv := newServer(t, server.Config{})
	srv.Close()
	srv.Close()
}

// TestStatsEndpoint: session counts and π-cache counters are exposed.
func TestStatsEndpoint(t *testing.T) {
	srv := newServer(t, server.Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	specs, _ := uniformWorkload()
	var info sessionInfo
	if code := doJSON(t, ts.Client(), "POST", ts.URL+"/v1/sessions", map[string]any{
		"tuples": specs, "k": 2, "budget": 3,
	}, &info); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	var stats struct {
		Sessions int `json:"sessions"`
		PCache   struct {
			Hits         int64   `json:"hits"`
			Misses       int64   `json:"misses"`
			Entries      int64   `json:"entries"`
			Resets       int64   `json:"resets"`
			HitRate      float64 `json:"hit_rate"`
			PrewarmPairs int64   `json:"prewarm_pairs"`
			PrewarmNanos int64   `json:"prewarm_ns"`
		} `json:"pcache"`
	}
	if code := doJSON(t, ts.Client(), "GET", ts.URL+"/v1/stats", nil, &stats); code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	if stats.Sessions != 1 {
		t.Errorf("sessions = %d, want 1", stats.Sessions)
	}
	if stats.PCache.Hits+stats.PCache.Misses == 0 {
		t.Error("pcache counters all zero after a session build")
	}
	// Session creation prewarms the π cache: the cold-start fill must be
	// visible (pair count and fill time), and the hit rate derivable.
	if stats.PCache.PrewarmPairs == 0 {
		t.Error("prewarm pair count zero after a session build")
	}
	if stats.PCache.PrewarmNanos <= 0 {
		t.Error("prewarm fill time not surfaced")
	}
	if stats.PCache.HitRate <= 0 || stats.PCache.HitRate > 1 {
		t.Errorf("hit rate = %g, want in (0, 1]", stats.PCache.HitRate)
	}
}

// TestTTLEviction: idle sessions are evicted by the janitor; active ones
// have their TTL refreshed by use.
func TestTTLEviction(t *testing.T) {
	srv := newServer(t, server.Config{TTL: 50 * time.Millisecond})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	specs, _ := uniformWorkload()
	var info sessionInfo
	if code := doJSON(t, ts.Client(), "POST", ts.URL+"/v1/sessions", map[string]any{
		"tuples": specs, "k": 2, "budget": 3,
	}, &info); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	// Each API call refreshes the TTL, so poll with gaps comfortably longer
	// than the TTL: an idle stretch must span a janitor sweep to evict.
	deadline := time.Now().Add(5 * time.Second)
	for {
		time.Sleep(150 * time.Millisecond)
		code := doJSON(t, ts.Client(), "GET", ts.URL+"/v1/sessions/"+info.ID+"/result", nil, nil)
		if code == http.StatusNotFound {
			break // evicted
		}
		if time.Now().After(deadline) {
			t.Fatal("session not evicted after TTL")
		}
	}
}

// TestMaxSessions: creates beyond the cap fail with 503 until a slot frees.
func TestMaxSessions(t *testing.T) {
	srv := newServer(t, server.Config{MaxSessions: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	specs, _ := uniformWorkload()
	body := map[string]any{"tuples": specs, "k": 2, "budget": 3}
	var info sessionInfo
	if code := doJSON(t, ts.Client(), "POST", ts.URL+"/v1/sessions", body, &info); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	if code := doJSON(t, ts.Client(), "POST", ts.URL+"/v1/sessions", body, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("over-cap create: status %d, want 503", code)
	}
	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/sessions/"+info.ID, nil)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if code := doJSON(t, ts.Client(), "POST", ts.URL+"/v1/sessions", body, nil); code != http.StatusCreated {
		t.Fatalf("post-delete create: status %d, want 201", code)
	}
}
