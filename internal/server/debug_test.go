package server_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"crowdtopk/internal/obs"
	"crowdtopk/internal/server"
)

// tracedServer builds a server with an always-sample tracer.
func tracedServer(t *testing.T, cfg server.Config) (*server.Server, *httptest.Server) {
	t.Helper()
	if cfg.Tracer == nil {
		cfg.Tracer = obs.NewTracer(obs.TracerConfig{SampleRate: 1})
	}
	srv := newServer(t, cfg)
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

type tracesResponse struct {
	Count  int             `json:"count"`
	Traces []obs.TraceData `json:"traces"`
}

// TestDebugTracesWireShape is the golden test for GET /debug/traces: drive a
// real request through the stack and pin the response's JSON field names and
// structure.
func TestDebugTracesWireShape(t *testing.T) {
	_, ts := tracedServer(t, server.Config{})
	id := createSession(t, ts)
	_ = id

	resp, err := ts.Client().Get(ts.URL + "/debug/traces?route=/v1/sessions&limit=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/traces status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("content-type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	// Pin the wire field names before decoding into typed structs.
	var loose struct {
		Count  int `json:"count"`
		Traces []map[string]json.RawMessage
	}
	if err := json.Unmarshal(raw, &loose); err != nil {
		t.Fatalf("decoding %s: %v", raw, err)
	}
	var tr tracesResponse
	if err := json.Unmarshal(raw, &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Count != 1 || len(tr.Traces) != 1 {
		t.Fatalf("count=%d traces=%d, want 1/1", tr.Count, len(tr.Traces))
	}
	td := tr.Traces[0]
	if td.Route != "/v1/sessions" || td.Status != 201 {
		t.Errorf("root: route=%q status=%d, want /v1/sessions 201", td.Route, td.Status)
	}
	if td.TraceID == "" || len(td.TraceID) != 32 {
		t.Errorf("trace_id %q not 32 hex chars", td.TraceID)
	}
	if !td.Sampled {
		t.Error("rate-1 trace not marked sampled")
	}
	// The create path must show the instrumented layers beneath the codec.
	names := map[string]bool{}
	for _, sp := range td.Spans {
		names[sp.Name] = true
	}
	for _, want := range []string{"http.request", "service.create", "session.build", "selection.plan"} {
		if !names[want] {
			t.Errorf("span %q missing from create trace (have %v)", want, names)
		}
	}
	// Raw JSON golden: field spellings the dashboard depends on.
	for _, key := range []string{`"trace_id"`, `"duration_ms"`, `"sampled"`, `"slow"`, `"spans"`,
		`"span_id"`, `"parent"`, `"start_ns"`, `"duration_ns"`, `"self_ns"`, `"attrs"`} {
		if !strings.Contains(string(raw), key) {
			t.Errorf("wire body missing %s", key)
		}
	}
}

// TestTracedRequestSelfTimeAttribution is the acceptance criterion: a traced
// request's component self-times sum to within 5% of the root duration.
func TestTracedRequestSelfTimeAttribution(t *testing.T) {
	_, ts := tracedServer(t, server.Config{})
	id := createSession(t, ts)

	// Drive answers through so selection/session spans appear too.
	for i := 0; i < 6; i++ {
		var qs questionsResponse
		if code := doJSON(t, ts.Client(), "GET", ts.URL+"/v1/sessions/"+id+"/questions?n=1", nil, &qs); code != 200 {
			t.Fatalf("questions: status %d", code)
		}
		if len(qs.Questions) == 0 {
			break
		}
		q := qs.Questions[0]
		if code := doJSON(t, ts.Client(), "POST", ts.URL+"/v1/sessions/"+id+"/answers",
			map[string]any{"answers": []map[string]any{{"i": q.I, "j": q.J, "yes": true}}}, nil); code != 200 {
			t.Fatalf("answers: status %d", code)
		}
	}

	var tr tracesResponse
	if code := doJSON(t, ts.Client(), "GET", ts.URL+"/debug/traces", nil, &tr); code != 200 {
		t.Fatalf("/debug/traces status %d", code)
	}
	if len(tr.Traces) < 3 {
		t.Fatalf("only %d traces retained", len(tr.Traces))
	}
	for _, td := range tr.Traces {
		var selfSum float64
		for _, ms := range obs.SelfTimeBreakdown(td) {
			selfSum += ms
		}
		root := td.DurationMS
		if root == 0 {
			continue
		}
		if diff := selfSum - root; diff > 0.05*root || diff < -0.05*root {
			t.Errorf("trace %s (%s): Σ component self %.3fms vs root %.3fms (%.1f%% off)",
				td.TraceID, td.Route, selfSum, root, 100*(selfSum-root)/root)
		}
	}
	// The attribution also lands on /metrics as per-component histograms.
	body := scrape(t, ts)
	for _, want := range []string{
		`crowdtopk_span_self_seconds_count{component="http"}`,
		`crowdtopk_span_self_seconds_count{component="service"}`,
		`crowdtopk_span_self_seconds_count{component="session"}`,
		`crowdtopk_traces_total{outcome="sampled"}`,
		`crowdtopk_build_info{version=`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
}

// TestTraceparentPropagation: a caller-supplied traceparent joins its trace
// id, records the remote parent, and the response echoes our root span as
// the new parent under the same trace id.
func TestTraceparentPropagation(t *testing.T) {
	_, ts := tracedServer(t, server.Config{})
	const inbound = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	req, _ := http.NewRequest("GET", ts.URL+"/v1/stats", nil)
	req.Header.Set("traceparent", inbound)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	echoed := resp.Header.Get("traceparent")
	gotID, gotSpan, _, err := obs.ParseTraceparent(echoed)
	if err != nil {
		t.Fatalf("response traceparent %q: %v", echoed, err)
	}
	if gotID.String() != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("response trace id %s did not join inbound trace", gotID)
	}
	if gotSpan.String() == "00f067aa0ba902b7" {
		t.Error("response span id should be our root span, not the caller's")
	}
	var tr tracesResponse
	if code := doJSON(t, ts.Client(), "GET", ts.URL+"/debug/traces?route=/v1/stats", nil, &tr); code != 200 {
		t.Fatalf("/debug/traces status %d", code)
	}
	if len(tr.Traces) == 0 || tr.Traces[0].ParentSpan != "00f067aa0ba902b7" {
		t.Fatalf("remote parent span not recorded: %+v", tr.Traces)
	}
	// A malformed traceparent starts a fresh trace instead of failing.
	req2, _ := http.NewRequest("GET", ts.URL+"/v1/stats", nil)
	req2.Header.Set("traceparent", "garbage")
	resp2, err := ts.Client().Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != 200 {
		t.Fatalf("malformed traceparent broke the request: %d", resp2.StatusCode)
	}
	if _, _, _, err := obs.ParseTraceparent(resp2.Header.Get("traceparent")); err != nil {
		t.Errorf("fresh traceparent not issued: %v", err)
	}
}

// TestDebugTracesDisabled: without a tracer the endpoint answers 404 — the
// SDK-parity default (no Tracer in Config) serves no debug ring.
func TestDebugTracesDisabled(t *testing.T) {
	srv := newServer(t, server.Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/debug/traces with tracing disabled: %d, want 404", resp.StatusCode)
	}
}

// TestDebugTracesBadParams pins the 400s for unparseable filters.
func TestDebugTracesBadParams(t *testing.T) {
	_, ts := tracedServer(t, server.Config{})
	for _, q := range []string{"min_ms=abc", "min_ms=-1", "limit=0", "limit=x"} {
		resp, err := ts.Client().Get(ts.URL + "/debug/traces?" + q)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("?%s: status %d, want 400", q, resp.StatusCode)
		}
	}
}

// TestPprofGate: the profiler only exists when EnablePprof is set.
func TestPprofGate(t *testing.T) {
	srvOff := newServer(t, server.Config{})
	defer srvOff.Close()
	tsOff := httptest.NewServer(srvOff.Handler())
	defer tsOff.Close()
	resp, err := tsOff.Client().Get(tsOff.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof without EnablePprof: %d, want 404", resp.StatusCode)
	}

	_, tsOn := tracedServer(t, server.Config{EnablePprof: true})
	resp2, err := tsOn.Client().Get(tsOn.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("pprof with EnablePprof: %d, want 200", resp2.StatusCode)
	}
}

// TestSlowRequestAuditAndLog: a request past the slow threshold lands in the
// trace ring marked slow even when head sampling would have dropped it.
func TestSlowRequestRetention(t *testing.T) {
	tracer := obs.NewTracer(obs.TracerConfig{SampleRate: 0.0000001, SlowThreshold: time.Nanosecond})
	_, ts := tracedServer(t, server.Config{Tracer: tracer})
	createSession(t, ts)
	traces := tracer.Traces(obs.TraceFilter{Route: "/v1/sessions"})
	if len(traces) == 0 || !traces[0].Slow {
		t.Fatalf("slow request not retained: %+v", traces)
	}
}
