package server_test

import (
	"bytes"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	crowdtopk "crowdtopk"
	"crowdtopk/internal/persist"
	"crowdtopk/internal/server"
)

// statsJSON mirrors the /v1/stats wire form the durability tests inspect.
type statsJSON struct {
	Sessions int `json:"sessions"`
	Store    struct {
		Backend         string `json:"backend"`
		LiveSessions    int    `json:"live_sessions"`
		KnownSessions   int    `json:"known_sessions"`
		DirtySessions   int    `json:"dirty_sessions"`
		EvictionsToDisk uint64 `json:"evictions_to_disk"`
		HydrationHits   uint64 `json:"hydration_hits"`
		HydrationMisses uint64 `json:"hydration_misses"`
		PersistErrors   uint64 `json:"persist_errors"`
		PersistRetries  uint64 `json:"persist_retries"`
		EvictionsRef    uint64 `json:"evictions_refused"`
		DegradedMode    bool   `json:"degraded_mode"`
		BreakerState    string `json:"breaker_state"`
		Quarantined     int    `json:"quarantined_sessions"`
		Persist         *struct {
			Snapshots         uint64 `json:"snapshots"`
			WALAppends        uint64 `json:"wal_appends"`
			Replays           uint64 `json:"replays"`
			RecoveredSessions uint64 `json:"recovered_sessions"`
			Fsyncs            uint64 `json:"fsyncs"`
		} `json:"persist"`
	} `json:"store"`
}

func getStats(t *testing.T, ts *httptest.Server) statsJSON {
	t.Helper()
	var st statsJSON
	if code := doJSON(t, ts.Client(), "GET", ts.URL+"/v1/stats", nil, &st); code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	return st
}

// waitDurable polls /v1/stats until the async persister has drained: every
// acknowledged answer is then on disk (fsync policy always), which is the
// moment a SIGKILL loses nothing.
func waitDurable(t *testing.T, ts *httptest.Server) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if st := getStats(t, ts); st.Store.DirtySessions == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("persister did not drain")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// answerUpTo pulls and answers questions until n answers are in (or the
// session terminates), returning how many were submitted.
func answerUpTo(t *testing.T, ts *httptest.Server, id string, cr crowdtopk.Crowd, n int) int {
	t.Helper()
	base := ts.URL + "/v1/sessions/"
	answered := 0
	for answered < n {
		var qs questionsResponse
		if code := doJSON(t, ts.Client(), "GET", base+id+"/questions", nil, &qs); code != http.StatusOK {
			t.Fatalf("questions: status %d", code)
		}
		if len(qs.Questions) == 0 {
			return answered
		}
		for _, q := range qs.Questions {
			a := cr.Ask(crowdtopk.Question{I: q.I, J: q.J})
			payload := map[string]any{"answers": []map[string]any{{"i": q.I, "j": q.J, "yes": a.Yes}}}
			if code := doJSON(t, ts.Client(), "POST", base+id+"/answers", payload, nil); code != http.StatusOK {
				t.Fatalf("answers: status %d", code)
			}
			answered++
			if answered >= n {
				break
			}
		}
	}
	return answered
}

func sameAPIResult(t *testing.T, got, want resultResponse) {
	t.Helper()
	if got.State != want.State || got.Asked != want.Asked ||
		got.Resolved != want.Resolved || got.Orderings != want.Orderings {
		t.Fatalf("state/asked/resolved/orderings = %s/%d/%v/%d, want %s/%d/%v/%d",
			got.State, got.Asked, got.Resolved, got.Orderings,
			want.State, want.Asked, want.Resolved, want.Orderings)
	}
	if math.Abs(got.Uncertainty-want.Uncertainty) > 1e-12 {
		t.Fatalf("uncertainty = %v, want %v", got.Uncertainty, want.Uncertainty)
	}
	if len(got.Ranking) != len(want.Ranking) {
		t.Fatalf("ranking %v, want %v", got.Ranking, want.Ranking)
	}
	for i := range got.Ranking {
		if got.Ranking[i] != want.Ranking[i] {
			t.Fatalf("ranking %v, want %v", got.Ranking, want.Ranking)
		}
	}
}

// TestCrashRecoveryMatchesUninterrupted is the durability acceptance test: a
// server killed hot mid-query (no Shutdown, no Flush — the process just
// stops, like SIGKILL) restarts on the same -data-dir, recovers the session
// from snapshot + WAL replay, and finishes with results identical to a run
// that was never interrupted. Runs once with the WAL intact across the whole
// query and once with an aggressive compaction cadence so the kill lands
// between snapshots.
func TestCrashRecoveryMatchesUninterrupted(t *testing.T) {
	specs, scores := uniformWorkload()
	ds, err := crowdtopk.NewDataset(scores)
	if err != nil {
		t.Fatal(err)
	}
	const k, budget, seed = 3, 30, 42

	// The uninterrupted reference run, served with persistence on so the
	// only variable in the crash runs is the kill itself.
	reference := func(t *testing.T, snapshotEvery int) resultResponse {
		store, err := persist.NewFile(persist.FileOptions{Dir: t.TempDir(), SnapshotEvery: snapshotEvery})
		if err != nil {
			t.Fatal(err)
		}
		srv := newServer(t, server.Config{Persist: store})
		defer srv.Close()
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		var info sessionInfo
		if code := doJSON(t, ts.Client(), "POST", ts.URL+"/v1/sessions", map[string]any{
			"tuples": specs, "k": k, "budget": budget, "seed": seed,
		}, &info); code != http.StatusCreated {
			t.Fatalf("create: status %d", code)
		}
		cr, _, err := crowdtopk.SimulatedCrowd(ds, 1, 1, seed)
		if err != nil {
			t.Fatal(err)
		}
		res, _ := driveOverAPI(t, ts, info.ID, cr, -1)
		return res
	}

	for _, tc := range []struct {
		name          string
		snapshotEvery int
		killAfter     int
	}{
		{"replay-from-initial-snapshot", 64, 5},
		{"kill-between-compactions", 4, 7},
	} {
		t.Run(tc.name, func(t *testing.T) {
			want := reference(t, tc.snapshotEvery)

			dir := t.TempDir()
			store, err := persist.NewFile(persist.FileOptions{Dir: dir, SnapshotEvery: tc.snapshotEvery})
			if err != nil {
				t.Fatal(err)
			}
			srv1 := newServer(t, server.Config{Persist: store})
			ts1 := httptest.NewServer(srv1.Handler())
			var info sessionInfo
			if code := doJSON(t, ts1.Client(), "POST", ts1.URL+"/v1/sessions", map[string]any{
				"tuples": specs, "k": k, "budget": budget, "seed": seed,
			}, &info); code != http.StatusCreated {
				t.Fatalf("create: status %d", code)
			}
			cr, _, err := crowdtopk.SimulatedCrowd(ds, 1, 1, seed)
			if err != nil {
				t.Fatal(err)
			}
			n := answerUpTo(t, ts1, info.ID, cr, tc.killAfter)
			if n != tc.killAfter {
				t.Fatalf("only %d answers in before the kill point %d", n, tc.killAfter)
			}
			waitDurable(t, ts1)
			// SIGKILL: stop routing requests and abandon the server without
			// Shutdown, Flush or Close. Open file handles and goroutines die
			// with the process in production; here they are simply never
			// used again.
			ts1.Close()

			srv2 := newServer(t, server.Config{Persist: mustFile(t, dir, tc.snapshotEvery)})
			defer srv2.Close()
			ts2 := httptest.NewServer(srv2.Handler())
			defer ts2.Close()

			// Boot recovery: the session is addressable before any request
			// touched it.
			st := getStats(t, ts2)
			if st.Store.KnownSessions != 1 || st.Store.LiveSessions != 0 {
				t.Fatalf("boot: known/live = %d/%d, want 1/0", st.Store.KnownSessions, st.Store.LiveSessions)
			}

			// The same crowd continues where it left off (reliability-1
			// simulated crowds are stateless oracles).
			got, _ := driveOverAPI(t, ts2, info.ID, cr, -1)
			sameAPIResult(t, got, want)

			st = getStats(t, ts2)
			if st.Store.HydrationHits != 1 {
				t.Errorf("hydration_hits = %d, want 1", st.Store.HydrationHits)
			}
			if st.Store.Persist == nil || st.Store.Persist.RecoveredSessions != 1 {
				t.Errorf("persist counters after recovery: %+v", st.Store.Persist)
			}
			if tc.name == "replay-from-initial-snapshot" && st.Store.Persist != nil &&
				st.Store.Persist.Replays != uint64(tc.killAfter) {
				t.Errorf("replays = %d, want %d", st.Store.Persist.Replays, tc.killAfter)
			}
		})
	}
}

func mustFile(t *testing.T, dir string, snapshotEvery int) *persist.File {
	t.Helper()
	store, err := persist.NewFile(persist.FileOptions{Dir: dir, SnapshotEvery: snapshotEvery})
	if err != nil {
		t.Fatal(err)
	}
	return store
}

// TestGracefulCloseFlushes: with the lenient fsync policy, Close is the
// durability barrier — a server closed cleanly loses nothing even though no
// per-answer fsync happened.
func TestGracefulCloseFlushes(t *testing.T) {
	specs, scores := uniformWorkload()
	ds, err := crowdtopk.NewDataset(scores)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	store, err := persist.NewFile(persist.FileOptions{Dir: dir, Sync: persist.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	srv1 := newServer(t, server.Config{Persist: store})
	ts1 := httptest.NewServer(srv1.Handler())
	var info sessionInfo
	if code := doJSON(t, ts1.Client(), "POST", ts1.URL+"/v1/sessions", map[string]any{
		"tuples": specs, "k": 2, "budget": 8, "seed": 7,
	}, &info); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	cr, _, err := crowdtopk.SimulatedCrowd(ds, 1, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	answerUpTo(t, ts1, info.ID, cr, 3)
	var want resultResponse
	if code := doJSON(t, ts1.Client(), "GET", ts1.URL+"/v1/sessions/"+info.ID+"/result", nil, &want); code != http.StatusOK {
		t.Fatalf("result: status %d", code)
	}
	ts1.Close()
	srv1.Close() // graceful: drains the persister, flushes, closes the store

	srv2 := newServer(t, server.Config{Persist: mustFile(t, dir, 0)})
	defer srv2.Close()
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	var got resultResponse
	if code := doJSON(t, ts2.Client(), "GET", ts2.URL+"/v1/sessions/"+info.ID+"/result", nil, &got); code != http.StatusOK {
		t.Fatalf("result after restart: status %d", code)
	}
	sameAPIResult(t, got, want)
}

// TestEvictionToDiskAndHydration: with a durable backend, the TTL janitor
// moves idle sessions to disk instead of dropping them, and the next access
// hydrates transparently — where the memory-only server would 404.
func TestEvictionToDiskAndHydration(t *testing.T) {
	specs, _ := uniformWorkload()
	dir := t.TempDir()
	srv := newServer(t, server.Config{TTL: 50 * time.Millisecond, Persist: mustFile(t, dir, 0)})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var info sessionInfo
	if code := doJSON(t, ts.Client(), "POST", ts.URL+"/v1/sessions", map[string]any{
		"tuples": specs, "k": 2, "budget": 5,
	}, &info); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	// Wait (without touching the session) until the janitor moved it out of
	// memory.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := getStats(t, ts)
		if st.Store.EvictionsToDisk >= 1 && st.Store.LiveSessions == 0 {
			if st.Store.KnownSessions != 1 {
				t.Fatalf("known_sessions = %d after eviction, want 1", st.Store.KnownSessions)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("session not evicted to disk: %+v", st.Store)
		}
		time.Sleep(20 * time.Millisecond)
	}
	// The session is still served: lazy hydration brings it back.
	var res resultResponse
	if code := doJSON(t, ts.Client(), "GET", ts.URL+"/v1/sessions/"+info.ID+"/result", nil, &res); code != http.StatusOK {
		t.Fatalf("result after eviction: status %d, want 200", code)
	}
	st := getStats(t, ts)
	if st.Store.HydrationHits < 1 {
		t.Errorf("hydration_hits = %d, want ≥ 1", st.Store.HydrationHits)
	}
	if st.Store.LiveSessions != 1 {
		t.Errorf("live_sessions = %d after hydration, want 1", st.Store.LiveSessions)
	}
}

// TestCorruptHydrationQuarantines: on-disk corruption discovered during lazy
// hydration moves the session to the quarantine area and surfaces as 410 Gone
// — a 404 would convince the client the session never existed, and a
// persistent 500 would page forever on a condition retries cannot fix. The
// quarantined session stays visible in the listing with a typed reason, and
// its directory survives under quarantine/ for forensics.
func TestCorruptHydrationQuarantines(t *testing.T) {
	specs, _ := uniformWorkload()
	dir := t.TempDir()
	srv1 := newServer(t, server.Config{Persist: mustFile(t, dir, 0)})
	ts1 := httptest.NewServer(srv1.Handler())
	var info sessionInfo
	if code := doJSON(t, ts1.Client(), "POST", ts1.URL+"/v1/sessions", map[string]any{
		"tuples": specs, "k": 2, "budget": 5,
	}, &info); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	waitDurable(t, ts1)
	ts1.Close()
	srv1.Close()

	snap := filepath.Join(dir, "sessions", info.ID, "snapshot.json")
	data, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	mangled := bytes.Replace(data, []byte(`"digest":"sha256:`), []byte(`"digest":"sha256:00`), 1)
	if err := os.WriteFile(snap, mangled, 0o644); err != nil {
		t.Fatal(err)
	}

	srv2 := newServer(t, server.Config{Persist: mustFile(t, dir, 0)})
	defer srv2.Close()
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	// First touch trips the quarantine; the status is 410, and it stays 410
	// on retry instead of re-attempting the doomed hydration.
	for i := 0; i < 2; i++ {
		if code := doJSON(t, ts2.Client(), "GET", ts2.URL+"/v1/sessions/"+info.ID+"/result", nil, nil); code != http.StatusGone {
			t.Fatalf("corrupt hydration (touch %d): status %d, want 410", i, code)
		}
	}
	// The session directory moved to the quarantine area with its marker.
	if _, err := os.Stat(filepath.Join(dir, "quarantine", info.ID, "quarantine.json")); err != nil {
		t.Errorf("quarantine marker: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "sessions", info.ID)); !os.IsNotExist(err) {
		t.Errorf("session dir still present after quarantine (err=%v)", err)
	}
	// The listing keeps the session visible with the typed reason.
	var list struct {
		Sessions []struct {
			ID               string `json:"id"`
			State            string `json:"state"`
			QuarantineReason string `json:"quarantine_reason"`
		} `json:"sessions"`
		Total int `json:"total"`
	}
	if code := doJSON(t, ts2.Client(), "GET", ts2.URL+"/v1/sessions", nil, &list); code != http.StatusOK {
		t.Fatalf("list: status %d", code)
	}
	found := false
	for _, e := range list.Sessions {
		if e.ID == info.ID {
			found = true
			if e.State != "quarantined" || e.QuarantineReason != "corrupt-snapshot" {
				t.Errorf("listed as %q/%q, want quarantined/corrupt-snapshot", e.State, e.QuarantineReason)
			}
		}
	}
	if !found {
		t.Errorf("quarantined session missing from listing: %+v", list)
	}
	if st := getStats(t, ts2); st.Store.Quarantined != 1 {
		t.Errorf("quarantined_sessions = %d, want 1", st.Store.Quarantined)
	}
	// An id that was never created is still a plain 404.
	if code := doJSON(t, ts2.Client(), "GET", ts2.URL+"/v1/sessions/s_unknown/result", nil, nil); code != http.StatusNotFound {
		t.Fatalf("unknown id: status %d, want 404", code)
	}
	// A restart on the same data dir boots cleanly — the boot scan lists the
	// quarantined session instead of failing startup — and still serves 410.
	srv3 := newServer(t, server.Config{Persist: mustFile(t, dir, 0)})
	defer srv3.Close()
	ts3 := httptest.NewServer(srv3.Handler())
	defer ts3.Close()
	if code := doJSON(t, ts3.Client(), "GET", ts3.URL+"/v1/sessions/"+info.ID+"/result", nil, nil); code != http.StatusGone {
		t.Fatalf("after restart: status %d, want 410", code)
	}
}

// TestSessionsListEndpoint pins the operability listing: ids, live status
// fields, persistence flags, and the limit parameter.
func TestSessionsListEndpoint(t *testing.T) {
	specs, _ := uniformWorkload()
	srv := newServer(t, server.Config{Persist: mustFile(t, t.TempDir(), 0)})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ids := map[string]bool{}
	for i := 0; i < 3; i++ {
		var info sessionInfo
		if code := doJSON(t, ts.Client(), "POST", ts.URL+"/v1/sessions", map[string]any{
			"tuples": specs, "k": 2, "budget": 5,
		}, &info); code != http.StatusCreated {
			t.Fatalf("create %d: status %d", i, code)
		}
		ids[info.ID] = true
	}
	waitDurable(t, ts)

	var list struct {
		Sessions []struct {
			ID          string  `json:"id"`
			State       string  `json:"state"`
			Asked       int     `json:"asked"`
			Pending     int     `json:"pending"`
			IdleSeconds float64 `json:"idle_seconds"`
			Persisted   bool    `json:"persisted"`
			Hydrated    bool    `json:"hydrated"`
		} `json:"sessions"`
		Total int `json:"total"`
	}
	if code := doJSON(t, ts.Client(), "GET", ts.URL+"/v1/sessions", nil, &list); code != http.StatusOK {
		t.Fatalf("list: status %d", code)
	}
	if list.Total != 3 || len(list.Sessions) != 3 {
		t.Fatalf("total/page = %d/%d, want 3/3", list.Total, len(list.Sessions))
	}
	for i, e := range list.Sessions {
		if !ids[e.ID] {
			t.Errorf("listed unknown id %q", e.ID)
		}
		if e.State != "created" || !e.Hydrated || !e.Persisted {
			t.Errorf("entry %d = %+v, want created/hydrated/persisted", i, e)
		}
		if e.IdleSeconds < 0 {
			t.Errorf("entry %d idle %v < 0", i, e.IdleSeconds)
		}
		if i > 0 && list.Sessions[i-1].ID > e.ID {
			t.Errorf("listing not sorted: %q before %q", list.Sessions[i-1].ID, e.ID)
		}
	}

	// limit pages the listing; total still reports the full count.
	if code := doJSON(t, ts.Client(), "GET", ts.URL+"/v1/sessions?limit=2", nil, &list); code != http.StatusOK {
		t.Fatalf("limited list: status %d", code)
	}
	if list.Total != 3 || len(list.Sessions) != 2 {
		t.Fatalf("limited total/page = %d/%d, want 3/2", list.Total, len(list.Sessions))
	}
	if code := doJSON(t, ts.Client(), "GET", ts.URL+"/v1/sessions?limit=0", nil, nil); code != http.StatusBadRequest {
		t.Fatalf("limit=0: status %d, want 400", code)
	}
	if code := doJSON(t, ts.Client(), "GET", ts.URL+"/v1/sessions?limit=x", nil, nil); code != http.StatusBadRequest {
		t.Fatalf("limit=x: status %d, want 400", code)
	}
}

// TestStatsDurabilityCounters: the store section of /v1/stats reports the
// backend and its persistence counters.
func TestStatsDurabilityCounters(t *testing.T) {
	specs, scores := uniformWorkload()
	ds, err := crowdtopk.NewDataset(scores)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("memory", func(t *testing.T) {
		srv := newServer(t, server.Config{})
		defer srv.Close()
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		st := getStats(t, ts)
		if st.Store.Backend != "memory" || st.Store.Persist != nil {
			t.Fatalf("memory-only store stats = %+v", st.Store)
		}
	})

	t.Run("file", func(t *testing.T) {
		srv := newServer(t, server.Config{Persist: mustFile(t, t.TempDir(), 0)})
		defer srv.Close()
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		var info sessionInfo
		if code := doJSON(t, ts.Client(), "POST", ts.URL+"/v1/sessions", map[string]any{
			"tuples": specs, "k": 2, "budget": 6, "seed": 3,
		}, &info); code != http.StatusCreated {
			t.Fatalf("create: status %d", code)
		}
		cr, _, err := crowdtopk.SimulatedCrowd(ds, 1, 1, 3)
		if err != nil {
			t.Fatal(err)
		}
		n := answerUpTo(t, ts, info.ID, cr, 4)
		waitDurable(t, ts)
		st := getStats(t, ts)
		if st.Store.Backend != "file" {
			t.Fatalf("backend = %q, want file", st.Store.Backend)
		}
		if st.Store.Persist == nil {
			t.Fatal("persist counters missing")
		}
		if st.Store.Persist.Snapshots < 1 {
			t.Errorf("snapshots = %d, want ≥ 1", st.Store.Persist.Snapshots)
		}
		if st.Store.Persist.WALAppends < uint64(n) {
			t.Errorf("wal_appends = %d, want ≥ %d", st.Store.Persist.WALAppends, n)
		}
		if st.Store.Persist.Fsyncs < 1 {
			t.Errorf("fsyncs = %d, want ≥ 1", st.Store.Persist.Fsyncs)
		}
	})
}
