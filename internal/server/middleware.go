package server

import (
	"errors"
	"log/slog"
	"math"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"crowdtopk/internal/obs"
	"crowdtopk/internal/service"
)

// HTTP-layer metric families. Labels stay low-cardinality: the route label is
// the normalized route template (see routeLabel), never the raw path, so a
// scanner probing random URLs cannot mint unbounded series.
var (
	mHTTPDuration = obs.Default.HistogramVec("crowdtopk_http_request_duration_seconds",
		"HTTP request latency in seconds, by route.", obs.DefBuckets, "route")
	mHTTPRequests = obs.Default.CounterVec("crowdtopk_http_requests_total",
		"HTTP requests, by method, route, and status class.", "method", "route", "status")
)

// routeLabel maps a request path onto its route template. Hand-rolled rather
// than read off the mux because http.Request.Pattern needs go1.23 and this
// module pins go1.22; the v1 surface is small enough that the mapping is a
// switch on path shape.
func routeLabel(path string) string {
	switch path {
	case "/metrics", "/health", "/ready", "/v1/stats", "/v1/sessions", "/debug/traces":
		return path
	}
	if strings.HasPrefix(path, "/debug/pprof/") || path == "/debug/pprof" {
		return "/debug/pprof"
	}
	rest, ok := strings.CutPrefix(path, "/v1/sessions/")
	if !ok || rest == "" {
		return "other"
	}
	id, sub, nested := strings.Cut(rest, "/")
	if id == "" {
		return "other"
	}
	if !nested {
		return "/v1/sessions/{id}"
	}
	switch sub {
	case "questions", "answers", "result", "checkpoint":
		return "/v1/sessions/{id}/" + sub
	}
	return "other"
}

// statusRecorder captures the response status for the metrics and access-log
// middleware; an implicit 200 (body written without WriteHeader) counts too.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (w *statusRecorder) WriteHeader(status int) {
	if w.status == 0 {
		w.status = status
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusRecorder) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// instrument is the observability middleware: every request is timed into the
// route-labeled latency histogram, counted by method/route/status, traced as
// the root http.request span (joining a caller's W3C traceparent when one is
// presented, and echoing ours back in the response header), and logged as one
// structured access line carrying the trace id.
func instrument(next http.Handler, tracer *obs.Tracer, log *slog.Logger) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		route := routeLabel(r.URL.Path)
		ctx, sp := tracer.StartRequest(r.Context(), "http.request", r.Header.Get("traceparent"))
		if sp != nil {
			w.Header().Set("traceparent", sp.Traceparent())
			r = r.WithContext(ctx)
		}
		rec := &statusRecorder{ResponseWriter: w}
		next.ServeHTTP(rec, r)
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		elapsed := time.Since(start)
		mHTTPDuration.With(route).Observe(elapsed.Seconds())
		mHTTPRequests.With(r.Method, route, strconv.Itoa(rec.status)).Inc()
		// Root attrs the tracer hoists into the retained TraceData for
		// /debug/traces filtering.
		sp.SetAttr("route", route)
		sp.SetAttr("method", r.Method)
		sp.SetAttr("status", rec.status)
		attrs := []any{
			"method", r.Method,
			"route", route,
			"path", r.URL.Path,
			"status", rec.status,
			"duration_ms", float64(elapsed.Microseconds()) / 1000,
			"client", clientKey(r),
		}
		if tid := sp.TraceID(); tid != "" {
			attrs = append(attrs, "trace", tid)
		}
		sp.End()
		log.Info("http request", attrs...)
	})
}

// clientKey identifies the caller for admission control: the first
// X-Forwarded-For hop when a proxy fronted the request, else the bare host of
// the remote address. Deployments that cannot trust XFF should strip it at
// the edge.
func clientKey(r *http.Request) string {
	if xff := r.Header.Get("X-Forwarded-For"); xff != "" {
		first, _, _ := strings.Cut(xff, ",")
		if c := strings.TrimSpace(first); c != "" {
			return c
		}
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// admission gates API traffic through the service core's admission
// controller. Operational probes (/metrics, /health, /ready) bypass it: a
// monitoring stack must be able to see an overloaded server being overloaded.
func admission(next http.Handler, svc *service.Service) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/metrics", "/health", "/ready":
			next.ServeHTTP(w, r)
			return
		}
		// Debug surfaces (/debug/traces, /debug/pprof) bypass admission for
		// the same reason the probes do: they exist to diagnose an overloaded
		// or degraded server.
		if strings.HasPrefix(r.URL.Path, "/debug/") {
			next.ServeHTTP(w, r)
			return
		}
		release, err := svc.Admit(clientKey(r))
		if err != nil {
			status := http.StatusServiceUnavailable
			retryAfter := 1.0 // seconds; overload clears as soon as a slot frees
			var rl *service.RateLimitError
			if errors.As(err, &rl) {
				status = http.StatusTooManyRequests
				retryAfter = rl.RetryAfter.Seconds()
			}
			w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(math.Max(retryAfter, 1)))))
			writeErr(w, status, err)
			return
		}
		defer release()
		next.ServeHTTP(w, r)
	})
}
