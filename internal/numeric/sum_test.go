package numeric

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKahanSumCancellations(t *testing.T) {
	// 1 + 1e-16 repeated: naive summation loses the small terms entirely.
	var k KahanSum
	k.Add(1)
	for i := 0; i < 10_000_000; i++ {
		k.Add(1e-16)
	}
	want := 1 + 1e-16*1e7
	if !AlmostEqual(k.Sum(), want, 1e-12) {
		t.Fatalf("KahanSum = %.17g, want %.17g", k.Sum(), want)
	}
}

func TestSumMatchesExactForIntegers(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 1000)
	var exact int64
	for i := range xs {
		v := int64(rng.Intn(2001) - 1000)
		xs[i] = float64(v)
		exact += v
	}
	if got := Sum(xs); got != float64(exact) {
		t.Fatalf("Sum = %g, want %d", got, exact)
	}
}

func TestNormalize(t *testing.T) {
	ws := []float64{1, 2, 3, 4}
	total := Normalize(ws)
	if total != 10 {
		t.Fatalf("returned total = %g, want 10", total)
	}
	if got := Sum(ws); !AlmostEqual(got, 1, 1e-12) {
		t.Fatalf("normalized sum = %g, want 1", got)
	}
	if !AlmostEqual(ws[3], 0.4, 1e-12) {
		t.Fatalf("ws[3] = %g, want 0.4", ws[3])
	}
}

func TestNormalizeZeroAndNegativeTotals(t *testing.T) {
	zero := []float64{0, 0}
	if total := Normalize(zero); total != 0 {
		t.Fatalf("zero-total Normalize returned %g", total)
	}
	if zero[0] != 0 || zero[1] != 0 {
		t.Fatal("zero-total Normalize must not modify the slice")
	}
	neg := []float64{1, -3}
	if total := Normalize(neg); total != -2 {
		t.Fatalf("negative-total Normalize returned %g", total)
	}
	if neg[0] != 1 {
		t.Fatal("negative-total Normalize must not modify the slice")
	}
}

func TestNormalizeQuickSumsToOne(t *testing.T) {
	f := func(raw []float64) bool {
		ws := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				ws = append(ws, math.Abs(v))
			}
		}
		total := Sum(ws)
		if total <= 0 || math.IsInf(total, 0) || math.IsNaN(total) {
			return true // nothing to check
		}
		Normalize(ws)
		return AlmostEqual(Sum(ws), 1, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestClamp(t *testing.T) {
	cases := []struct{ v, lo, hi, want float64 }{
		{5, 0, 1, 1}, {-5, 0, 1, 0}, {0.5, 0, 1, 0.5}, {0, 0, 1, 0}, {1, 0, 1, 1},
	}
	for _, c := range cases {
		if got := Clamp(c.v, c.lo, c.hi); got != c.want {
			t.Errorf("Clamp(%g, %g, %g) = %g, want %g", c.v, c.lo, c.hi, got, c.want)
		}
	}
}

func TestClampNonNegative(t *testing.T) {
	if got := ClampNonNegative(-1e-15, 1e-9); got != 0 {
		t.Errorf("tiny negative not clamped: %g", got)
	}
	if got := ClampNonNegative(-0.5, 1e-9); got != -0.5 {
		t.Errorf("large negative must be preserved, got %g", got)
	}
	if got := ClampNonNegative(0.25, 1e-9); got != 0.25 {
		t.Errorf("positive value altered: %g", got)
	}
}

func TestEntropyBits(t *testing.T) {
	cases := []struct {
		name string
		ws   []float64
		want float64
	}{
		{"certain", []float64{1}, 0},
		{"fair coin", []float64{0.5, 0.5}, 1},
		{"four-way uniform", []float64{0.25, 0.25, 0.25, 0.25}, 2},
		{"with zeros", []float64{0.5, 0, 0.5, 0}, 1},
		{"skewed", []float64{0.9, 0.1}, -(0.9*math.Log2(0.9) + 0.1*math.Log2(0.1))},
		{"empty", nil, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := EntropyBits(c.ws); !AlmostEqual(got, c.want, 1e-12) {
				t.Fatalf("EntropyBits = %g, want %g", got, c.want)
			}
		})
	}
}

func TestEntropyBitsBoundsQuick(t *testing.T) {
	// 0 <= H <= log2(n) for any normalized weight vector.
	f := func(raw []float64) bool {
		ws := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				ws = append(ws, math.Abs(v))
			}
		}
		if total := Sum(ws); total <= 0 || math.IsInf(total, 0) || math.IsNaN(total) {
			return true
		}
		Normalize(ws)
		h := EntropyBits(ws)
		n := 0
		for _, w := range ws {
			if w > 0 {
				n++
			}
		}
		return h >= 0 && h <= math.Log2(float64(n))+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLog2Safe(t *testing.T) {
	if got := Log2Safe(8); got != 3 {
		t.Errorf("Log2Safe(8) = %g", got)
	}
	if got := Log2Safe(0); got != 0 {
		t.Errorf("Log2Safe(0) = %g, want 0", got)
	}
	if got := Log2Safe(-4); got != 0 {
		t.Errorf("Log2Safe(-4) = %g, want 0", got)
	}
}
