package numeric

import (
	"errors"
	"fmt"
	"math"
)

// ErrNoBracket is returned by Bisect when the target is not bracketed by the
// supplied interval.
var ErrNoBracket = errors.New("numeric: root not bracketed")

// Bisect finds x in [lo, hi] with f(x) = target, assuming f is monotone
// non-decreasing on the interval (the CDF case). It runs until the bracket
// width falls below tol or 200 iterations, whichever comes first.
func Bisect(f func(float64) float64, lo, hi, target, tol float64) (float64, error) {
	flo, fhi := f(lo), f(hi)
	if math.IsNaN(flo) || math.IsNaN(fhi) {
		return 0, fmt.Errorf("numeric: Bisect over NaN values at bracket [%g, %g]", lo, hi)
	}
	if flo > fhi {
		return 0, fmt.Errorf("%w: f(%g)=%g > f(%g)=%g", ErrNoBracket, lo, flo, hi, fhi)
	}
	if target <= flo {
		return lo, nil
	}
	if target >= fhi {
		return hi, nil
	}
	for i := 0; i < 200 && hi-lo > tol; i++ {
		mid := lo + (hi-lo)/2
		if f(mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo + (hi-lo)/2, nil
}

// LinSpace returns n evenly spaced values from lo to hi inclusive.
func LinSpace(lo, hi float64, n int) []float64 {
	if n == 1 {
		return []float64{lo}
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	out[n-1] = hi
	return out
}

// ArgMax returns the index of the maximum of xs (first on ties) and the
// maximum itself. It panics on an empty slice.
func ArgMax(xs []float64) (int, float64) {
	if len(xs) == 0 {
		panic("numeric: ArgMax of empty slice")
	}
	bi, bv := 0, xs[0]
	for i, v := range xs[1:] {
		if v > bv {
			bi, bv = i+1, v
		}
	}
	return bi, bv
}

// ArgMin returns the index of the minimum of xs (first on ties) and the
// minimum itself. It panics on an empty slice.
func ArgMin(xs []float64) (int, float64) {
	if len(xs) == 0 {
		panic("numeric: ArgMin of empty slice")
	}
	bi, bv := 0, xs[0]
	for i, v := range xs[1:] {
		if v < bv {
			bi, bv = i+1, v
		}
	}
	return bi, bv
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Sum(xs) / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (n-1 denominator), or 0
// when fewer than two values are present.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var k KahanSum
	for _, x := range xs {
		d := x - m
		k.Add(d * d)
	}
	return math.Sqrt(k.Sum() / float64(len(xs)-1))
}
