package numeric

import (
	"errors"
	"math"
	"testing"
)

func TestBisectOnCDFLikeFunction(t *testing.T) {
	// Standard logistic CDF: closed-form quantile to compare against.
	f := func(x float64) float64 { return 1 / (1 + math.Exp(-x)) }
	for _, p := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		got, err := Bisect(f, -50, 50, p, 1e-12)
		if err != nil {
			t.Fatalf("Bisect(p=%g): %v", p, err)
		}
		want := math.Log(p / (1 - p))
		if !AlmostEqual(got, want, 1e-8) {
			t.Fatalf("quantile(%g) = %g, want %g", p, got, want)
		}
	}
}

func TestBisectClampsOutOfRangeTargets(t *testing.T) {
	f := func(x float64) float64 { return x }
	if got, err := Bisect(f, 2, 5, 1, 1e-12); err != nil || got != 2 {
		t.Fatalf("below-range target: got %g, %v; want 2, nil", got, err)
	}
	if got, err := Bisect(f, 2, 5, 9, 1e-12); err != nil || got != 5 {
		t.Fatalf("above-range target: got %g, %v; want 5, nil", got, err)
	}
}

func TestBisectRejectsDecreasingFunction(t *testing.T) {
	f := func(x float64) float64 { return -x }
	if _, err := Bisect(f, 0, 1, -0.5, 1e-12); !errors.Is(err, ErrNoBracket) {
		t.Fatalf("error = %v, want ErrNoBracket", err)
	}
}

func TestLinSpace(t *testing.T) {
	xs := LinSpace(1, 3, 5)
	want := []float64{1, 1.5, 2, 2.5, 3}
	for i := range want {
		if !AlmostEqual(xs[i], want[i], 1e-12) {
			t.Fatalf("LinSpace[%d] = %g, want %g", i, xs[i], want[i])
		}
	}
	if one := LinSpace(7, 9, 1); len(one) != 1 || one[0] != 7 {
		t.Fatalf("LinSpace n=1 = %v", one)
	}
}

func TestArgMaxArgMin(t *testing.T) {
	xs := []float64{3, -1, 7, 7, 2}
	if i, v := ArgMax(xs); i != 2 || v != 7 {
		t.Fatalf("ArgMax = (%d, %g), want (2, 7) — first on ties", i, v)
	}
	if i, v := ArgMin(xs); i != 1 || v != -1 {
		t.Fatalf("ArgMin = (%d, %g), want (1, -1)", i, v)
	}
}

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !AlmostEqual(m, 5, 1e-12) {
		t.Fatalf("Mean = %g, want 5", m)
	}
	// Sample stddev with n-1: variance = 32/7.
	if s := StdDev(xs); !AlmostEqual(s, math.Sqrt(32.0/7), 1e-12) {
		t.Fatalf("StdDev = %g, want %g", s, math.Sqrt(32.0/7))
	}
	if m := Mean(nil); m != 0 {
		t.Fatalf("Mean(nil) = %g", m)
	}
	if s := StdDev([]float64{1}); s != 0 {
		t.Fatalf("StdDev of singleton = %g", s)
	}
}
