package numeric

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestNewGridValidation(t *testing.T) {
	cases := []struct {
		name   string
		lo, hi float64
		n      int
	}{
		{"one point", 0, 1, 1},
		{"zero points", 0, 1, 0},
		{"negative points", 0, 1, -3},
		{"inverted bounds", 1, 0, 16},
		{"equal bounds", 2, 2, 16},
		{"nan lo", math.NaN(), 1, 16},
		{"nan hi", 0, math.NaN(), 16},
		{"inf hi", 0, math.Inf(1), 16},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := NewGrid(c.lo, c.hi, c.n); !errors.Is(err, ErrDegenerateGrid) {
				t.Fatalf("NewGrid(%g, %g, %d) error = %v, want ErrDegenerateGrid", c.lo, c.hi, c.n, err)
			}
		})
	}
}

func TestGridPoints(t *testing.T) {
	g := MustGrid(-2, 3, 11)
	if g.Len() != 11 {
		t.Fatalf("Len = %d, want 11", g.Len())
	}
	if g.X(0) != -2 || g.X(10) != 3 {
		t.Fatalf("endpoints = %g, %g; want -2, 3", g.X(0), g.X(10))
	}
	if !AlmostEqual(g.Step, 0.5, 1e-12) {
		t.Fatalf("Step = %g, want 0.5", g.Step)
	}
	for i := 1; i < g.Len(); i++ {
		if d := g.X(i) - g.X(i-1); !AlmostEqual(d, 0.5, 1e-12) {
			t.Fatalf("non-uniform step at %d: %g", i, d)
		}
	}
}

func TestGridIndex(t *testing.T) {
	g := MustGrid(0, 1, 5) // points 0, .25, .5, .75, 1
	cases := []struct {
		x    float64
		want int
	}{
		{-1, 0}, {0, 0}, {0.1, 0}, {0.25, 1}, {0.26, 1}, {0.49, 1},
		{0.5, 2}, {0.99, 3}, {1, 4}, {2, 4},
	}
	for _, c := range cases {
		if got := g.Index(c.x); got != c.want {
			t.Errorf("Index(%g) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestGridIndexInvariantQuick(t *testing.T) {
	g := MustGrid(-5, 7, 257)
	f := func(raw float64) bool {
		x := math.Mod(math.Abs(raw), 14) - 6 // roam a bit beyond the grid
		i := g.Index(x)
		if i < 0 || i >= g.Len() {
			return false
		}
		if x >= g.Lo && x <= g.Hi {
			// X(i) <= x and, unless at the top, x < X(i+1).
			if g.X(i) > x+1e-12 {
				return false
			}
			if i+1 < g.Len() && x >= g.X(i+1)+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInterpExactAtNodesAndLinearBetween(t *testing.T) {
	g := MustGrid(0, 4, 5)
	ys := []float64{0, 1, 4, 9, 16} // x^2 at integer points
	for i := 0; i < g.Len(); i++ {
		if got := g.Interp(ys, g.X(i)); !AlmostEqual(got, ys[i], 1e-12) {
			t.Errorf("Interp at node %d = %g, want %g", i, got, ys[i])
		}
	}
	if got := g.Interp(ys, 1.5); !AlmostEqual(got, 2.5, 1e-12) {
		t.Errorf("Interp(1.5) = %g, want 2.5 (linear between 1 and 4)", got)
	}
	if got := g.Interp(ys, -3); got != 0 {
		t.Errorf("Interp left of grid = %g, want clamp to 0", got)
	}
	if got := g.Interp(ys, 99); got != 16 {
		t.Errorf("Interp right of grid = %g, want clamp to 16", got)
	}
}

func TestTrapezoidPolynomials(t *testing.T) {
	g := MustGrid(0, 2, 2001)
	cases := []struct {
		name string
		f    func(float64) float64
		want float64
	}{
		{"constant", func(x float64) float64 { return 3 }, 6},
		{"linear", func(x float64) float64 { return x }, 2},
		{"quadratic", func(x float64) float64 { return x * x }, 8.0 / 3},
		{"sin", math.Sin, 1 - math.Cos(2)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := g.Trapezoid(g.Sample(c.f))
			if !AlmostEqual(got, c.want, 1e-5) {
				t.Fatalf("Trapezoid = %.10f, want %.10f", got, c.want)
			}
		})
	}
}

func TestCumTrapezoidLeftRightComplement(t *testing.T) {
	g := MustGrid(-1, 3, 501)
	ys := g.Sample(func(x float64) float64 { return math.Exp(-x * x) })
	total := g.Trapezoid(ys)
	left := g.CumTrapezoidLeft(ys, nil)
	right := g.CumTrapezoidRight(ys, nil)
	if left[0] != 0 || right[g.Len()-1] != 0 {
		t.Fatalf("boundary conditions violated: left[0]=%g right[n-1]=%g", left[0], right[g.Len()-1])
	}
	for i := 0; i < g.Len(); i += 25 {
		if s := left[i] + right[i]; !AlmostEqual(s, total, 1e-9) {
			t.Fatalf("left[%d]+right[%d] = %g, want total %g", i, i, s, total)
		}
	}
	// Monotonicity for a non-negative integrand.
	for i := 1; i < g.Len(); i++ {
		if left[i] < left[i-1]-1e-15 {
			t.Fatalf("left cumulative not monotone at %d", i)
		}
		if right[i] > right[i-1]+1e-15 {
			t.Fatalf("right cumulative not antitone at %d", i)
		}
	}
}

func TestCumTrapezoidAliasing(t *testing.T) {
	g := MustGrid(0, 1, 101)
	ys := g.Sample(func(x float64) float64 { return 1 + x })
	want := g.CumTrapezoidLeft(ys, nil)
	inPlace := append([]float64(nil), ys...)
	g.CumTrapezoidLeft(inPlace, inPlace)
	for i := range want {
		if !AlmostEqual(want[i], inPlace[i], 1e-12) {
			t.Fatalf("aliased CumTrapezoidLeft differs at %d: %g vs %g", i, inPlace[i], want[i])
		}
	}
	want = g.CumTrapezoidRight(ys, nil)
	inPlace = append([]float64(nil), ys...)
	g.CumTrapezoidRight(inPlace, inPlace)
	for i := range want {
		if !AlmostEqual(want[i], inPlace[i], 1e-12) {
			t.Fatalf("aliased CumTrapezoidRight differs at %d: %g vs %g", i, inPlace[i], want[i])
		}
	}
}

func TestTrapezoidPanicsOnLengthMismatch(t *testing.T) {
	g := MustGrid(0, 1, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched slice length")
		}
	}()
	g.Trapezoid(make([]float64, 7))
}
