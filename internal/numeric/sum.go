package numeric

import "math"

// KahanSum accumulates float64 values with compensated (Kahan–Babuška)
// summation. The zero value is ready to use.
type KahanSum struct {
	sum float64
	c   float64
}

// Add accumulates v.
func (k *KahanSum) Add(v float64) {
	t := k.sum + v
	if math.Abs(k.sum) >= math.Abs(v) {
		k.c += (k.sum - t) + v
	} else {
		k.c += (v - t) + k.sum
	}
	k.sum = t
}

// Sum returns the compensated total.
func (k *KahanSum) Sum() float64 { return k.sum + k.c }

// Sum returns the compensated sum of xs.
func Sum(xs []float64) float64 {
	var k KahanSum
	for _, x := range xs {
		k.Add(x)
	}
	return k.Sum()
}

// Normalize scales ws in place so it sums to 1 and returns the original sum.
// If the sum is zero or non-finite the slice is left untouched and the sum is
// returned for the caller to handle.
func Normalize(ws []float64) float64 {
	total := Sum(ws)
	if total <= 0 || math.IsNaN(total) || math.IsInf(total, 0) {
		return total
	}
	inv := 1 / total
	for i := range ws {
		ws[i] *= inv
	}
	return total
}

// Clamp returns v restricted to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ClampNonNegative zeroes tiny negative values produced by floating-point
// cancellation; values below -tol are preserved so genuine sign errors
// stay visible to tests.
func ClampNonNegative(v, tol float64) float64 {
	if v < 0 && v > -tol {
		return 0
	}
	return v
}

// AlmostEqual reports whether a and b differ by at most tol in absolute
// terms, or by tol relative to the larger magnitude when both are large.
func AlmostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	if d <= tol {
		return true
	}
	m := math.Max(math.Abs(a), math.Abs(b))
	return d <= tol*m
}

// Log2Safe returns log2(x), with 0 mapped to 0 so that entropy terms
// w*log2(w) vanish at w = 0 as they do in the limit.
func Log2Safe(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Log2(x)
}

// EntropyBits returns the Shannon entropy, in bits, of the weight vector ws.
// The weights are treated as already normalized; non-positive entries
// contribute zero, matching the w→0 limit of −w·log2 w.
func EntropyBits(ws []float64) float64 {
	var k KahanSum
	for _, w := range ws {
		if w > 0 {
			k.Add(-w * math.Log2(w))
		}
	}
	h := k.Sum()
	if h < 0 { // rounding can produce e.g. -1e-17 on a singleton
		return 0
	}
	return h
}
