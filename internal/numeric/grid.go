// Package numeric provides the small numerical substrate the rest of the
// library is built on: uniform grids, cumulative trapezoid integration,
// compensated (Kahan) summation, bisection root finding and tolerant float
// comparison. Go's standard library has no numerical-integration or
// statistics support, so probability computations over continuous score
// distributions are performed on shared uniform grids with the helpers
// defined here.
package numeric

import (
	"errors"
	"fmt"
	"math"
)

// ErrDegenerateGrid is returned when a grid cannot be constructed from the
// requested bounds or point count.
var ErrDegenerateGrid = errors.New("numeric: degenerate grid")

// Grid is a uniform partition of the closed interval [Lo, Hi] into n-1 equal
// steps (n points). All integrals in this library are evaluated on a Grid
// shared by every distribution involved, which makes products and chained
// cumulative integrals simple element-wise passes.
type Grid struct {
	Lo, Hi float64
	Step   float64
	points []float64
}

// NewGrid returns a uniform grid of n points spanning [lo, hi].
// n must be at least 2 and hi must exceed lo by a representable amount.
func NewGrid(lo, hi float64, n int) (*Grid, error) {
	if n < 2 {
		return nil, fmt.Errorf("%w: need at least 2 points, got %d", ErrDegenerateGrid, n)
	}
	if !(hi > lo) || math.IsNaN(lo) || math.IsNaN(hi) || math.IsInf(lo, 0) || math.IsInf(hi, 0) {
		return nil, fmt.Errorf("%w: invalid bounds [%g, %g]", ErrDegenerateGrid, lo, hi)
	}
	step := (hi - lo) / float64(n-1)
	if step <= 0 {
		return nil, fmt.Errorf("%w: step underflow on [%g, %g] with %d points", ErrDegenerateGrid, lo, hi, n)
	}
	pts := make([]float64, n)
	for i := range pts {
		pts[i] = lo + float64(i)*step
	}
	pts[n-1] = hi // avoid accumulated rounding on the last point
	return &Grid{Lo: lo, Hi: hi, Step: step, points: pts}, nil
}

// MustGrid is NewGrid for statically known-good arguments; it panics on error.
func MustGrid(lo, hi float64, n int) *Grid {
	g, err := NewGrid(lo, hi, n)
	if err != nil {
		panic(err)
	}
	return g
}

// Len returns the number of grid points.
func (g *Grid) Len() int { return len(g.points) }

// X returns the i-th grid point.
func (g *Grid) X(i int) float64 { return g.points[i] }

// Points returns the underlying point slice. Callers must not modify it.
func (g *Grid) Points() []float64 { return g.points }

// Sample evaluates f at every grid point into a freshly allocated slice.
func (g *Grid) Sample(f func(float64) float64) []float64 {
	ys := make([]float64, len(g.points))
	for i, x := range g.points {
		ys[i] = f(x)
	}
	return ys
}

// Index returns the largest i such that X(i) <= x, clamped to [0, Len()-1].
func (g *Grid) Index(x float64) int {
	if x <= g.Lo {
		return 0
	}
	if x >= g.Hi {
		return len(g.points) - 1
	}
	i := int((x - g.Lo) / g.Step)
	if i >= len(g.points) {
		i = len(g.points) - 1
	}
	// Guard against floating point placing us one cell too far right.
	for i > 0 && g.points[i] > x {
		i--
	}
	return i
}

// Interp linearly interpolates the sampled values ys (one per grid point) at
// x, clamping outside [Lo, Hi] to the boundary values.
func (g *Grid) Interp(ys []float64, x float64) float64 {
	if len(ys) != len(g.points) {
		panic(fmt.Sprintf("numeric: Interp with %d values on a %d-point grid", len(ys), len(g.points)))
	}
	if x <= g.Lo {
		return ys[0]
	}
	if x >= g.Hi {
		return ys[len(ys)-1]
	}
	i := g.Index(x)
	if i == len(ys)-1 {
		return ys[i]
	}
	t := (x - g.points[i]) / g.Step
	return ys[i]*(1-t) + ys[i+1]*t
}

// Trapezoid integrates the sampled values ys over the whole grid using the
// composite trapezoid rule.
func (g *Grid) Trapezoid(ys []float64) float64 {
	if len(ys) != len(g.points) {
		panic(fmt.Sprintf("numeric: Trapezoid with %d values on a %d-point grid", len(ys), len(g.points)))
	}
	var acc KahanSum
	for i := 1; i < len(ys); i++ {
		acc.Add((ys[i-1] + ys[i]) / 2 * g.Step)
	}
	return acc.Sum()
}

// CumTrapezoidLeft writes into dst the running integral from Lo to each grid
// point: dst[i] = ∫_{Lo}^{x_i} y dx. dst may alias ys. It returns dst
// (allocating when dst is nil).
func (g *Grid) CumTrapezoidLeft(ys, dst []float64) []float64 {
	n := len(g.points)
	if len(ys) != n {
		panic(fmt.Sprintf("numeric: CumTrapezoidLeft with %d values on a %d-point grid", len(ys), n))
	}
	if dst == nil {
		dst = make([]float64, n)
	}
	prev := ys[0]
	acc := 0.0
	dst[0] = 0
	for i := 1; i < n; i++ {
		cur := ys[i]
		acc += (prev + cur) / 2 * g.Step
		prev = cur
		dst[i] = acc
	}
	return dst
}

// CumTrapezoidRight writes into dst the tail integral from each grid point to
// Hi: dst[i] = ∫_{x_i}^{Hi} y dx. dst may alias ys. It returns dst
// (allocating when dst is nil).
func (g *Grid) CumTrapezoidRight(ys, dst []float64) []float64 {
	n := len(g.points)
	if len(ys) != n {
		panic(fmt.Sprintf("numeric: CumTrapezoidRight with %d values on a %d-point grid", len(ys), n))
	}
	if dst == nil {
		dst = make([]float64, n)
	}
	next := ys[n-1]
	acc := 0.0
	dst[n-1] = 0
	for i := n - 2; i >= 0; i-- {
		cur := ys[i]
		acc += (cur + next) / 2 * g.Step
		next = cur
		dst[i] = acc
	}
	return dst
}
