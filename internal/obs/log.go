package obs

import (
	"context"
	"io"
	"log/slog"
)

// NopLogger returns a logger whose handler reports every level disabled —
// the default for embedders that configured no logging. Call sites can log
// unconditionally; records cost one Enabled check.
func NopLogger() *slog.Logger { return slog.New(nopHandler{}) }

type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (nopHandler) WithAttrs([]slog.Attr) slog.Handler        { return nopHandler{} }
func (nopHandler) WithGroup(string) slog.Handler             { return nopHandler{} }

// NewLogger builds a structured logger in the named format: "json" selects
// NDJSON records, anything else the logfmt-style text handler. This is the
// -log-format flag's one interpretation point.
func NewLogger(w io.Writer, format string) *slog.Logger {
	if format == "json" {
		return slog.New(slog.NewJSONHandler(w, nil))
	}
	return slog.New(slog.NewTextHandler(w, nil))
}
