package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Audit metrics, registered on the Default registry so every audit log in
// the process reports through /metrics. Enqueued/dropped are producer-side;
// flushes and write errors are sink-side.
var (
	auditEvents = Default.Counter("crowdtopk_audit_events_total",
		"Audit events accepted into the queue.")
	auditDropped = Default.Counter("crowdtopk_audit_dropped_total",
		"Audit events dropped because the queue was full.")
	auditFlushes = Default.Counter("crowdtopk_audit_flushes_total",
		"Audit batches flushed to the sink.")
	auditFlushErrors = Default.Counter("crowdtopk_audit_flush_errors_total",
		"Audit batch writes that returned an error.")
)

// AuditConfig tunes an AuditLog.
type AuditConfig struct {
	// W receives flushed batches as NDJSON (one event per line). Required.
	W io.Writer
	// Queue bounds the number of events buffered between the producers and
	// the flusher (0 = 1024). When the queue is full events are dropped and
	// counted, never blocking the producer.
	Queue int
	// BatchSize caps how many events one Write to W carries (0 = 64).
	BatchSize int
	// FlushInterval flushes a non-empty partial batch at least this often
	// (0 = 1s).
	FlushInterval time.Duration
}

// AuditLog is a buffered asynchronous event sink modeled on OPA's
// decision-log plugin: producers enqueue without ever blocking (events are
// dropped and counted when the queue is full), and one background goroutine
// drains the queue in batches, writing each batch to the sink with a single
// Write. A stalled sink therefore stalls only the audit trail: answer
// handling keeps its latency and the drop counter records the loss.
type AuditLog struct {
	cfg AuditConfig

	mu     sync.RWMutex // excludes Log against Close's channel close
	closed bool
	q      chan []byte

	dropped Counter // also mirrored into the process counters above
	done    chan struct{}
}

// NewAuditLog starts the background flusher. Close the log to drain it.
func NewAuditLog(cfg AuditConfig) *AuditLog {
	if cfg.Queue <= 0 {
		cfg.Queue = 1024
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 64
	}
	if cfg.FlushInterval <= 0 {
		cfg.FlushInterval = time.Second
	}
	a := &AuditLog{
		cfg:  cfg,
		q:    make(chan []byte, cfg.Queue),
		done: make(chan struct{}),
	}
	go a.loop()
	return a
}

// Log marshals the event and enqueues it. It never blocks: when the queue is
// full (the sink is slow or stalled) the event is dropped and counted. Events
// that cannot be marshaled are dropped the same way — an audit trail must not
// be able to fail the operation it audits.
func (a *AuditLog) Log(event any) {
	b, err := json.Marshal(event)
	if err != nil {
		a.drop()
		return
	}
	a.mu.RLock()
	defer a.mu.RUnlock()
	if a.closed {
		a.drop()
		return
	}
	select {
	case a.q <- b:
		auditEvents.Inc()
	default:
		a.drop()
	}
}

func (a *AuditLog) drop() {
	a.dropped.Inc()
	auditDropped.Inc()
}

// Dropped reports how many events this log has dropped (queue full, closed,
// or unmarshalable).
func (a *AuditLog) Dropped() uint64 { return a.dropped.Value() }

// Pending reports how many events sit in the queue right now.
func (a *AuditLog) Pending() int { return len(a.q) }

// Close stops intake, drains everything already queued to the sink, and
// stops the flusher. Idempotent.
func (a *AuditLog) Close() {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		<-a.done
		return
	}
	a.closed = true
	close(a.q)
	a.mu.Unlock()
	<-a.done
}

// loop drains the queue: it blocks for the first event, then
// opportunistically gathers up to BatchSize more (waiting at most
// FlushInterval for stragglers) and writes the batch in one call.
func (a *AuditLog) loop() {
	defer close(a.done)
	var batch bytes.Buffer
	for {
		b, ok := <-a.q
		if !ok {
			return
		}
		batch.Reset()
		batch.Write(b)
		batch.WriteByte('\n')
		n := 1
		timer := time.NewTimer(a.cfg.FlushInterval)
	gather:
		for n < a.cfg.BatchSize {
			select {
			case b, ok := <-a.q:
				if !ok {
					break gather
				}
				batch.Write(b)
				batch.WriteByte('\n')
				n++
			case <-timer.C:
				break gather
			}
		}
		timer.Stop()
		if _, err := a.cfg.W.Write(batch.Bytes()); err != nil {
			auditFlushErrors.Inc()
		}
		auditFlushes.Inc()
	}
}
