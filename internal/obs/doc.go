// Package obs is the dependency-free observability core of the crowdtopk
// serving stack: a metrics registry (atomic counters, gauges and fixed-bucket
// histograms, plus scrape-time func collectors over counters other packages
// already keep) with a hand-rolled Prometheus text exposition writer, and a
// buffered asynchronous audit-log sink with a bounded queue, batch flushing
// and dropped-event accounting.
//
// Every layer of the stack instruments itself through the package-level
// Default registry: the HTTP codec (internal/server) records request latency
// by route and status class, the service core (internal/service) records
// session lifecycle transitions, store tiers, pool saturation and admission
// decisions, and the persistence layer (internal/persist) records WAL append,
// fsync and snapshot latencies. One registry means one exposition: the HTTP
// GET /metrics endpoint and the SDK's Client.Metrics() render the identical
// byte stream, so dashboards built against either front door agree.
//
// The registry is deliberately tiny rather than a client_golang clone: fixed
// label sets per family, cumulative histogram buckets recomputed at scrape
// time (so le="+Inf" always equals _count even under concurrent observation),
// and idempotent registration so independent subsystems — and repeated
// service constructions in tests — can claim the same family without
// coordinating. Func collectors re-register by replacement, which lets each
// new Service instance point the gauges at its own store.
//
// The audit log follows OPA's decision-log plugin discipline: producers never
// block — an event that cannot be queued is dropped and counted — and a
// single background goroutine batches queued events into NDJSON writes, so a
// stalled sink slows nothing but the audit trail itself.
package obs
