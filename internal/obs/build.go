package obs

import (
	"runtime"
	"runtime/debug"
	"sync"
)

// BuildInfo identifies the running binary: module version, Go toolchain, and
// the VCS revision stamped by `go build` when the source tree is a
// repository. The same fields surface in three places — the
// crowdtopk_build_info gauge on /metrics, the /health body, and the
// `crowdtopk version` subcommand — so an operator can join a scrape, a probe
// and a shell onto one build.
type BuildInfo struct {
	Version   string `json:"version"`
	GoVersion string `json:"go_version"`
	Revision  string `json:"revision,omitempty"`
	// Modified reports a dirty working tree at build time.
	Modified bool `json:"modified,omitempty"`
}

var (
	buildOnce sync.Once
	buildInfo BuildInfo
)

// GetBuildInfo reads the binary's embedded build metadata once and caches it.
func GetBuildInfo() BuildInfo {
	buildOnce.Do(func() {
		buildInfo = BuildInfo{Version: "unknown", GoVersion: runtime.Version()}
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		if bi.Main.Version != "" {
			buildInfo.Version = bi.Main.Version
		}
		if bi.GoVersion != "" {
			buildInfo.GoVersion = bi.GoVersion
		}
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				buildInfo.Revision = s.Value
			case "vcs.modified":
				buildInfo.Modified = s.Value == "true"
			}
		}
	})
	return buildInfo
}

func init() {
	// Standard build-info idiom: a constant-1 gauge whose labels carry the
	// identity, so dashboards join build metadata onto any other series.
	Default.RegisterFunc("crowdtopk_build_info",
		"Build identity of the running binary: constant 1, labeled with version, Go toolchain and VCS revision.",
		kindGauge, []string{"version", "go_version", "revision"},
		func() []Sample {
			bi := GetBuildInfo()
			return []Sample{{Labels: []string{bi.Version, bi.GoVersion, bi.Revision}, Value: 1}}
		})
}
