package obs

import (
	"context"
	crand "crypto/rand"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// This file is the request-tracing core: context-carried spans with monotonic
// timings and typed attributes, assembled into one span tree per request. The
// tree is the unit of everything downstream — the ring buffer behind
// GET /debug/traces, the slow-request log, and the per-component self-time
// histograms that give /metrics latency attribution. Dependency-free by
// design, like the metrics registry above it: the serving stack must not drag
// an OpenTelemetry SDK into a reproduction of a selection-algorithm paper.
//
// Sampling is deterministic head sampling on the trace id (a keyed
// integer hash compared against the rate), so a request keeps or drops its
// trace identically across processes sharing a seed — and a fixed-seed test
// can pin the exact decisions. Retention is decided once, at root-span end:
// a trace is kept when it was head-sampled or when its total duration
// crossed the slow threshold (always-sample-on-slow), so the ring never
// misses the requests an operator actually hunts.

// TraceID is the 16-byte W3C trace id.
type TraceID [16]byte

// IsZero reports the invalid all-zero id.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// String renders the id as 32 lowercase hex characters.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// SpanID is the 8-byte W3C parent/span id.
type SpanID [8]byte

// IsZero reports the invalid all-zero id.
func (id SpanID) IsZero() bool { return id == SpanID{} }

// String renders the id as 16 lowercase hex characters.
func (id SpanID) String() string { return hex.EncodeToString(id[:]) }

// ParseTraceparent parses a W3C traceparent header value
// (version-traceid-parentid-flags, all lowercase hex). Future versions
// (anything but 00, except the forbidden ff) are accepted with trailing
// fields ignored, per the spec's forward-compatibility rule.
func ParseTraceparent(h string) (id TraceID, parent SpanID, sampled bool, err error) {
	parts := strings.Split(h, "-")
	if len(parts) < 4 {
		return id, parent, false, fmt.Errorf("obs: traceparent: want 4 fields, got %d", len(parts))
	}
	ver := parts[0]
	if len(ver) != 2 || !isLowerHex(ver) {
		return id, parent, false, fmt.Errorf("obs: traceparent: bad version %q", ver)
	}
	if ver == "ff" {
		return id, parent, false, fmt.Errorf("obs: traceparent: forbidden version ff")
	}
	if ver == "00" && len(parts) != 4 {
		return id, parent, false, fmt.Errorf("obs: traceparent: version 00 wants exactly 4 fields, got %d", len(parts))
	}
	if len(parts[1]) != 32 || !isLowerHex(parts[1]) {
		return id, parent, false, fmt.Errorf("obs: traceparent: bad trace id %q", parts[1])
	}
	if len(parts[2]) != 16 || !isLowerHex(parts[2]) {
		return id, parent, false, fmt.Errorf("obs: traceparent: bad parent id %q", parts[2])
	}
	if len(parts[3]) != 2 || !isLowerHex(parts[3]) {
		return id, parent, false, fmt.Errorf("obs: traceparent: bad flags %q", parts[3])
	}
	hex.Decode(id[:], []byte(parts[1]))
	hex.Decode(parent[:], []byte(parts[2]))
	if id.IsZero() {
		return TraceID{}, SpanID{}, false, fmt.Errorf("obs: traceparent: all-zero trace id")
	}
	if parent.IsZero() {
		return TraceID{}, SpanID{}, false, fmt.Errorf("obs: traceparent: all-zero parent id")
	}
	var flags [1]byte
	hex.Decode(flags[:], []byte(parts[3]))
	return id, parent, flags[0]&0x01 != 0, nil
}

// FormatTraceparent renders a version-00 traceparent header value.
func FormatTraceparent(id TraceID, span SpanID, sampled bool) string {
	flags := "00"
	if sampled {
		flags = "01"
	}
	return "00-" + id.String() + "-" + span.String() + "-" + flags
}

func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// ---- tracer ----

// DefaultTraceBuffer is the completed-trace ring size when
// TracerConfig.BufferSize is zero.
const DefaultTraceBuffer = 256

// TracerConfig tunes a Tracer.
type TracerConfig struct {
	// SampleRate is the deterministic head-sampling rate in [0, 1]: the
	// fraction of trace ids retained regardless of duration. 0 disables
	// tracing entirely (StartRequest returns no span and the request path
	// pays nothing); 1 retains every trace.
	SampleRate float64
	// SlowThreshold marks a finished request slow when its root span's
	// duration reaches it: the trace is retained even when not head-sampled,
	// and OnSlow fires. 0 disables the slow path.
	SlowThreshold time.Duration
	// BufferSize bounds the ring of retained completed traces
	// (0 = DefaultTraceBuffer).
	BufferSize int
	// Seed keys the sampling hash, so distinct deployments can decorrelate
	// their sampled sets while any fixed seed stays reproducible.
	Seed uint64
	// OnSlow, when set, runs synchronously at root-span end for every slow
	// trace (after it is in the ring). The serving layer wires it to the
	// structured log and the audit log.
	OnSlow func(TraceData)
}

// Tracer owns head sampling, the completed-trace ring, and the component
// self-time histograms. A nil *Tracer is valid and permanently disabled.
type Tracer struct {
	rate float64
	slow time.Duration
	size int
	seed uint64

	mu     sync.Mutex
	onSlow func(TraceData)
	ring   []TraceData // newest at (next-1+size)%size once full
	next   int
	filled bool
}

// NewTracer builds a tracer. Rates outside [0, 1] are clamped.
func NewTracer(cfg TracerConfig) *Tracer {
	rate := cfg.SampleRate
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	size := cfg.BufferSize
	if size <= 0 {
		size = DefaultTraceBuffer
	}
	return &Tracer{
		rate:   rate,
		slow:   cfg.SlowThreshold,
		size:   size,
		seed:   cfg.Seed,
		onSlow: cfg.OnSlow,
		ring:   make([]TraceData, size),
	}
}

// Enabled reports whether the tracer records anything at all. Rate 0 turns
// the whole machinery off: with sampling disabled and nothing retained, the
// per-request cost is one comparison.
func (t *Tracer) Enabled() bool { return t != nil && t.rate > 0 }

// SlowThreshold returns the configured slow cutoff (0 when disabled or nil).
func (t *Tracer) SlowThreshold() time.Duration {
	if t == nil {
		return 0
	}
	return t.slow
}

// SetOnSlow replaces the slow-trace callback (the serving layer wires it
// after construction, once it owns a logger and audit sink).
func (t *Tracer) SetOnSlow(fn func(TraceData)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.onSlow = fn
	t.mu.Unlock()
}

// Sampled reports the deterministic head-sampling decision for a trace id:
// a keyed 64-bit mix of the id compared against the rate. The decision is a
// pure function of (seed, id), so it is identical across restarts and across
// processes sharing a seed.
func (t *Tracer) Sampled(id TraceID) bool {
	if t == nil || t.rate <= 0 {
		return false
	}
	if t.rate >= 1 {
		return true
	}
	// FNV-1a over the id bytes, keyed by folding the seed in first.
	h := uint64(14695981039346656037)
	for _, b := range [8]byte{
		byte(t.seed), byte(t.seed >> 8), byte(t.seed >> 16), byte(t.seed >> 24),
		byte(t.seed >> 32), byte(t.seed >> 40), byte(t.seed >> 48), byte(t.seed >> 56),
	} {
		h = (h ^ uint64(b)) * 1099511628211
	}
	for _, b := range id {
		h = (h ^ uint64(b)) * 1099511628211
	}
	// Top 53 bits → uniform float in [0, 1).
	return float64(h>>11)/float64(1<<53) < t.rate
}

// ---- spans ----

// Attr is one typed span attribute.
type Attr struct {
	Key   string
	Value any
}

// spanRec is one node of a trace's span tree. Start/end carry the monotonic
// clock reading (time.Now retains it), so durations are immune to wall-clock
// steps.
type spanRec struct {
	name   string
	id     SpanID
	parent int32 // index into trace.spans; -1 for the root
	start  time.Time
	end    time.Time
	attrs  []Attr
}

// trace is one in-flight request's span collection.
type trace struct {
	tracer  *Tracer
	id      TraceID
	remote  SpanID // parent span id from an incoming traceparent, zero otherwise
	sampled bool   // head-sampling decision (fixed at StartRequest)

	mu    sync.Mutex
	spans []spanRec
	seq   uint64 // span-id counter; ids need only be unique within the trace
}

// Span is a handle onto one node of a request's span tree. The zero of the
// API is nil: every method no-ops on a nil receiver, so instrumented code
// never branches on whether tracing is on.
type Span struct {
	t   *trace
	idx int32
}

type spanCtxKey struct{}

// ContextWithSpan returns ctx carrying sp as the current span.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, sp)
}

// SpanFrom returns the current span carried by ctx (nil when none).
func SpanFrom(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(spanCtxKey{}).(*Span)
	return sp
}

// TraceIDFrom returns the hex trace id carried by ctx, or "" when the
// request is untraced — the join key between a trace, its audit events and
// its access-log line.
func TraceIDFrom(ctx context.Context) string {
	if sp := SpanFrom(ctx); sp != nil && sp.t != nil {
		return sp.t.id.String()
	}
	return ""
}

// StartRequest opens a new trace with its root span. traceparent, when
// parseable, supplies the trace id (and remote parent) so the trace joins a
// caller's distributed trace; a malformed or absent header starts a fresh
// id. When the tracer is disabled the context is returned untouched with a
// nil span: the request records nothing.
func (t *Tracer) StartRequest(ctx context.Context, name, traceparent string) (context.Context, *Span) {
	if !t.Enabled() {
		return ctx, nil
	}
	var tr *trace
	if traceparent != "" {
		if id, parent, _, err := ParseTraceparent(traceparent); err == nil {
			tr = &trace{tracer: t, id: id, remote: parent}
		}
	}
	if tr == nil {
		var id TraceID
		if _, err := crand.Read(id[:]); err != nil || id.IsZero() {
			return ctx, nil
		}
		tr = &trace{tracer: t, id: id}
	}
	tr.sampled = t.Sampled(tr.id)
	tr.spans = append(tr.spans, spanRec{
		name:   name,
		id:     tr.nextSpanID(),
		parent: -1,
		start:  time.Now(),
	})
	sp := &Span{t: tr, idx: 0}
	return ContextWithSpan(ctx, sp), sp
}

// nextSpanID derives a within-trace-unique span id from the trace id and a
// counter; global uniqueness is not needed (ids only ever meet inside this
// trace and its traceparent propagation).
func (tr *trace) nextSpanID() SpanID {
	tr.seq++
	var id SpanID
	copy(id[:], tr.id[:8])
	for i := 0; i < 8; i++ {
		id[i] ^= byte(tr.seq >> (8 * i))
	}
	if id.IsZero() {
		id[7] = 1
	}
	return id
}

// StartSpan opens a child of the current span in ctx and returns the child
// context and span. With no current span (tracing off, or an untraced
// caller) it returns ctx unchanged and a nil span — both safe to use.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFrom(ctx)
	if parent == nil || parent.t == nil {
		return ctx, nil
	}
	tr := parent.t
	tr.mu.Lock()
	idx := int32(len(tr.spans))
	tr.spans = append(tr.spans, spanRec{
		name:   name,
		id:     tr.nextSpanID(),
		parent: parent.idx,
		start:  time.Now(),
	})
	tr.mu.Unlock()
	sp := &Span{t: tr, idx: idx}
	return ContextWithSpan(ctx, sp), sp
}

// SetAttr attaches one typed attribute (last write wins is not needed:
// attributes are append-only and rendered in order). No-op on nil.
func (s *Span) SetAttr(key string, value any) {
	if s == nil || s.t == nil {
		return
	}
	s.t.mu.Lock()
	rec := &s.t.spans[s.idx]
	rec.attrs = append(rec.attrs, Attr{Key: key, Value: value})
	s.t.mu.Unlock()
}

// TraceID returns the hex trace id ("" on nil).
func (s *Span) TraceID() string {
	if s == nil || s.t == nil {
		return ""
	}
	return s.t.id.String()
}

// Traceparent renders the propagation header identifying this span as the
// parent — the value the HTTP layer echoes to clients and would forward to
// downstream calls. Empty on nil.
func (s *Span) Traceparent() string {
	if s == nil || s.t == nil {
		return ""
	}
	s.t.mu.Lock()
	id := s.t.spans[s.idx].id
	s.t.mu.Unlock()
	return FormatTraceparent(s.t.id, id, s.t.sampled)
}

// End closes the span. Ending the root span finishes the trace: self-times
// are attributed into the component histograms, the retention decision is
// made (sampled || slow), and OnSlow fires for slow traces. No-op on nil;
// a second End on the same span is ignored.
func (s *Span) End() {
	if s == nil || s.t == nil {
		return
	}
	tr := s.t
	tr.mu.Lock()
	rec := &tr.spans[s.idx]
	if rec.end.IsZero() {
		rec.end = time.Now()
	}
	root := s.idx == 0
	tr.mu.Unlock()
	if root {
		tr.tracer.finish(tr)
	}
}

// ---- trace completion: attribution, retention, slow path ----

// Span self-time attribution, derived once per finished trace. The component
// label is the span-name prefix before the first dot (http.request →
// "http", selection.plan → "selection"), keeping cardinality to the
// layer count.
var mSpanSelf = Default.HistogramVec("crowdtopk_span_self_seconds",
	"Per-component self time attributed from request span trees, in seconds.",
	DefBuckets, "component")

var mTraces = Default.CounterVec("crowdtopk_traces_total",
	"Finished request traces by retention outcome: sampled, slow (retained past the threshold without being head-sampled), dropped.",
	"outcome")

// TraceData is one completed trace as served by GET /debug/traces — the wire
// shape is pinned by the server's golden test. Span timings are nanoseconds
// (not a coarser unit) so the self-time identity Σ self_ns == root
// duration_ns holds exactly over a properly nested tree.
type TraceData struct {
	TraceID    string     `json:"trace_id"`
	ParentSpan string     `json:"parent_span,omitempty"` // remote parent from traceparent
	Route      string     `json:"route,omitempty"`
	Status     int        `json:"status,omitempty"`
	Start      time.Time  `json:"start"`
	DurationMS float64    `json:"duration_ms"`
	Sampled    bool       `json:"sampled"`
	Slow       bool       `json:"slow"`
	Spans      []SpanData `json:"spans"`
}

// SpanData is one span node. Parent is the index of the parent span in
// Spans (-1 for the root); StartNS is the offset from the trace start.
type SpanData struct {
	Name       string         `json:"name"`
	SpanID     string         `json:"span_id"`
	Parent     int            `json:"parent"`
	StartNS    int64          `json:"start_ns"`
	DurationNS int64          `json:"duration_ns"`
	SelfNS     int64          `json:"self_ns"`
	Attrs      map[string]any `json:"attrs,omitempty"`
}

// Component returns the span name's component prefix (before the first dot).
func Component(name string) string {
	if i := strings.IndexByte(name, '.'); i > 0 {
		return name[:i]
	}
	return name
}

// finish runs once per trace, at root End: build the TraceData, attribute
// self-times into the component histograms, retain when sampled or slow, and
// fire the slow callback.
func (t *Tracer) finish(tr *trace) {
	tr.mu.Lock()
	spans := tr.spans
	tr.mu.Unlock()
	if len(spans) == 0 {
		return
	}
	rootEnd := spans[0].end

	td := TraceData{
		TraceID: tr.id.String(),
		Start:   spans[0].start,
		Sampled: tr.sampled,
		Spans:   make([]SpanData, len(spans)),
	}
	if !tr.remote.IsZero() {
		td.ParentSpan = tr.remote.String()
	}
	childSum := make([]int64, len(spans))
	for i := range spans {
		rec := &spans[i]
		end := rec.end
		if end.IsZero() || end.After(rootEnd) {
			// A span left open (or racing past root End) is clamped to the
			// root's end so the attribution identity survives instrumentation
			// bugs instead of going negative.
			end = rootEnd
		}
		dur := end.Sub(rec.start).Nanoseconds()
		if dur < 0 {
			dur = 0
		}
		sd := SpanData{
			Name:       rec.name,
			SpanID:     rec.id.String(),
			Parent:     int(rec.parent),
			StartNS:    rec.start.Sub(spans[0].start).Nanoseconds(),
			DurationNS: dur,
		}
		for _, a := range rec.attrs {
			if sd.Attrs == nil {
				sd.Attrs = make(map[string]any, len(rec.attrs))
			}
			sd.Attrs[a.Key] = a.Value
		}
		td.Spans[i] = sd
		if p := rec.parent; p >= 0 {
			childSum[p] += dur
		}
	}
	for i := range td.Spans {
		self := td.Spans[i].DurationNS - childSum[i]
		if self < 0 {
			self = 0 // overlapping children can oversubscribe a parent
		}
		td.Spans[i].SelfNS = self
		mSpanSelf.With(Component(td.Spans[i].Name)).Observe(float64(self) / 1e9)
	}
	rootDur := time.Duration(td.Spans[0].DurationNS)
	td.DurationMS = float64(td.Spans[0].DurationNS) / 1e6
	td.Slow = t.slow > 0 && rootDur >= t.slow
	if v, ok := td.Spans[0].Attrs["route"].(string); ok {
		td.Route = v
	}
	switch v := td.Spans[0].Attrs["status"].(type) {
	case int:
		td.Status = v
	case int64:
		td.Status = int(v)
	}

	switch {
	case td.Sampled:
		mTraces.With("sampled").Inc()
	case td.Slow:
		mTraces.With("slow").Inc()
	default:
		mTraces.With("dropped").Inc()
		return
	}

	t.mu.Lock()
	t.ring[t.next] = td
	t.next++
	if t.next == t.size {
		t.next = 0
		t.filled = true
	}
	onSlow := t.onSlow
	t.mu.Unlock()
	if td.Slow && onSlow != nil {
		onSlow(td)
	}
}

// TraceFilter selects traces from the ring.
type TraceFilter struct {
	// Route keeps only traces whose root route label matches exactly.
	Route string
	// MinDuration keeps only traces at least this long.
	MinDuration time.Duration
	// Limit bounds the result count (0 = everything retained).
	Limit int
}

// Traces snapshots the retained traces, newest first, applying the filter.
func (t *Tracer) Traces(f TraceFilter) []TraceData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	n := t.next
	if t.filled {
		n = t.size
	}
	out := make([]TraceData, 0, n)
	for i := 0; i < n; i++ {
		// Walk backwards from the most recently written slot.
		idx := (t.next - 1 - i + t.size) % t.size
		td := t.ring[idx]
		if f.Route != "" && td.Route != f.Route {
			continue
		}
		if f.MinDuration > 0 && time.Duration(td.Spans[0].DurationNS) < f.MinDuration {
			continue
		}
		out = append(out, td)
		if f.Limit > 0 && len(out) == f.Limit {
			break
		}
	}
	t.mu.Unlock()
	return out
}

// SelfTimeBreakdown folds a trace's span self-times into per-component
// totals, in milliseconds — the shape the slow-request log emits.
func SelfTimeBreakdown(td TraceData) map[string]float64 {
	out := make(map[string]float64)
	for _, sp := range td.Spans {
		out[Component(sp.Name)] += float64(sp.SelfNS) / 1e6
	}
	return out
}

// FormatBreakdown renders a breakdown map as "comp=1.2ms comp=0.3ms",
// descending by time — one log-friendly string.
func FormatBreakdown(b map[string]float64) string {
	type kv struct {
		k string
		v float64
	}
	items := make([]kv, 0, len(b))
	for k, v := range b {
		items = append(items, kv{k, v})
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].v != items[j].v {
			return items[i].v > items[j].v
		}
		return items[i].k < items[j].k
	})
	var sb strings.Builder
	for i, it := range items {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%s=%.2fms", it.k, it.v)
	}
	return sb.String()
}
