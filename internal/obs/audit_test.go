package obs

import (
	"bufio"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// chanWriter gates every Write on an explicit release, simulating a stalled
// audit sink.
type chanWriter struct {
	mu      sync.Mutex
	buf     strings.Builder
	release chan struct{}
}

func (w *chanWriter) Write(p []byte) (int, error) {
	<-w.release
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.WriteString(string(p))
}

func (w *chanWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

type event struct {
	Kind string `json:"kind"`
	N    int    `json:"n"`
}

func TestAuditFlushesNDJSON(t *testing.T) {
	w := &chanWriter{release: make(chan struct{})}
	close(w.release) // never stall
	a := NewAuditLog(AuditConfig{W: w, Queue: 16, BatchSize: 4, FlushInterval: time.Millisecond})
	for i := 0; i < 10; i++ {
		a.Log(event{Kind: "answers", N: i})
	}
	a.Close()
	sc := bufio.NewScanner(strings.NewReader(w.String()))
	seen := 0
	for sc.Scan() {
		var e event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %d not JSON: %q: %v", seen, sc.Text(), err)
		}
		if e.N != seen {
			t.Fatalf("events out of order: got n=%d at line %d", e.N, seen)
		}
		seen++
	}
	if seen != 10 {
		t.Fatalf("flushed %d events, want 10", seen)
	}
	if a.Dropped() != 0 {
		t.Fatalf("dropped %d events on an unstalled sink", a.Dropped())
	}
}

func TestAuditStalledSinkNeverBlocksProducers(t *testing.T) {
	w := &chanWriter{release: make(chan struct{})} // every Write blocks
	a := NewAuditLog(AuditConfig{W: w, Queue: 4, BatchSize: 1, FlushInterval: time.Millisecond})

	// Far more events than queue+inflight can hold. Log must return promptly
	// for every one of them even though the sink never completes a write.
	done := make(chan struct{})
	go func() {
		for i := 0; i < 100; i++ {
			a.Log(event{Kind: "answers", N: i})
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Log blocked on a stalled sink")
	}
	if a.Dropped() == 0 {
		t.Fatal("expected drops with a stalled sink and a full queue")
	}
	if a.Dropped() >= 100 {
		t.Fatalf("dropped all %d events; queue absorbed none", a.Dropped())
	}

	// Unstall and close: everything still queued must reach the sink.
	close(w.release)
	a.Close()
	kept := uint64(100) - a.Dropped()
	lines := strings.Count(w.String(), "\n")
	if uint64(lines) != kept {
		t.Fatalf("sink got %d events, want %d (100 logged - %d dropped)", lines, kept, a.Dropped())
	}
}

func TestAuditLogAfterCloseDrops(t *testing.T) {
	w := &chanWriter{release: make(chan struct{})}
	close(w.release)
	a := NewAuditLog(AuditConfig{W: w})
	a.Close()
	a.Log(event{Kind: "late"}) // must not panic on the closed channel
	if a.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", a.Dropped())
	}
}
