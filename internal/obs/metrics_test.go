package obs

import (
	"math"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// parseExposition is a line-by-line parser of the Prometheus text format:
// enough of the real scrape grammar (HELP/TYPE headers, sample lines with
// optional label sets) to round-trip what the writer produces. It fails the
// test on any line that matches neither form.
type parsedMetric struct {
	name   string
	labels map[string]string
	value  float64
}

type parsedFamily struct {
	name, typ, help string
	samples         []parsedMetric
}

func parseExposition(t *testing.T, text string) map[string]*parsedFamily {
	t.Helper()
	fams := make(map[string]*parsedFamily)
	var cur *parsedFamily
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, ok := strings.Cut(rest, " ")
			if !ok {
				t.Fatalf("line %d: malformed HELP: %q", ln+1, line)
			}
			cur = &parsedFamily{name: name, help: help}
			fams[name] = cur
		case strings.HasPrefix(line, "# TYPE "):
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, typ, ok := strings.Cut(rest, " ")
			if !ok || (typ != "counter" && typ != "gauge" && typ != "histogram") {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			if cur == nil || cur.name != name {
				t.Fatalf("line %d: TYPE %s without preceding HELP", ln+1, name)
			}
			cur.typ = typ
		case strings.HasPrefix(line, "#"):
			t.Fatalf("line %d: unknown comment form: %q", ln+1, line)
		default:
			m := parseSample(t, ln+1, line)
			if cur == nil {
				t.Fatalf("line %d: sample %q before any family header", ln+1, line)
			}
			base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(m.name,
				"_bucket"), "_sum"), "_count")
			if base != cur.name && m.name != cur.name {
				t.Fatalf("line %d: sample %q outside its family (%s)", ln+1, m.name, cur.name)
			}
			cur.samples = append(cur.samples, m)
		}
	}
	return fams
}

func parseSample(t *testing.T, ln int, line string) parsedMetric {
	t.Helper()
	m := parsedMetric{labels: map[string]string{}}
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		m.name = rest[:i]
		end := strings.LastIndexByte(rest, '}')
		if end < i {
			t.Fatalf("line %d: unterminated label set: %q", ln, line)
		}
		for _, pair := range splitLabels(rest[i+1 : end]) {
			k, v, ok := strings.Cut(pair, "=")
			if !ok || len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
				t.Fatalf("line %d: malformed label %q", ln, pair)
			}
			m.labels[k] = unescape(v[1 : len(v)-1])
		}
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		var ok bool
		m.name, rest, ok = strings.Cut(rest, " ")
		if !ok {
			t.Fatalf("line %d: no value: %q", ln, line)
		}
	}
	for _, r := range m.name {
		if !(r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')) {
			t.Fatalf("line %d: invalid metric name %q", ln, m.name)
		}
	}
	val := strings.TrimSpace(rest)
	switch val {
	case "+Inf":
		m.value = math.Inf(1)
	case "-Inf":
		m.value = math.Inf(-1)
	default:
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("line %d: bad value %q: %v", ln, val, err)
		}
		m.value = v
	}
	return m
}

// splitLabels splits a{...} label body on commas outside quotes.
func splitLabels(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

func unescape(s string) string {
	r := strings.NewReplacer(`\\`, `\`, `\"`, `"`, `\n`, "\n")
	return r.Replace(s)
}

func TestExpositionRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_ops_total", "Operations.").Add(7)
	r.CounterVec("test_requests_total", "Requests.", "route", "status").
		With(`/v1/sessions/{id}`, "200").Add(3)
	r.Gauge("test_temp", "Temp.").Set(-1.5)
	r.GaugeFunc("test_live", "Live.", func() float64 { return 42 })
	h := r.Histogram("test_latency_seconds", "Latency.", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	hv := r.HistogramVec("test_route_seconds", "Route latency.", []float64{0.1}, "route")
	hv.With("a").Observe(0.01)
	hv.With("b").Observe(3)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	fams := parseExposition(t, b.String())

	if f := fams["test_ops_total"]; f == nil || f.typ != "counter" || f.samples[0].value != 7 {
		t.Fatalf("test_ops_total = %+v", f)
	}
	if f := fams["test_requests_total"]; f == nil ||
		f.samples[0].labels["route"] != "/v1/sessions/{id}" || f.samples[0].labels["status"] != "200" {
		t.Fatalf("test_requests_total = %+v", f)
	}
	if f := fams["test_temp"]; f == nil || f.typ != "gauge" || f.samples[0].value != -1.5 {
		t.Fatalf("test_temp = %+v", f)
	}
	if f := fams["test_live"]; f == nil || f.samples[0].value != 42 {
		t.Fatalf("test_live = %+v", f)
	}

	// Histogram semantics: buckets cumulative and monotone, le="+Inf" equals
	// _count, _sum is the observation total.
	f := fams["test_latency_seconds"]
	if f == nil || f.typ != "histogram" {
		t.Fatalf("test_latency_seconds = %+v", f)
	}
	checkHistogram(t, f.samples, map[string]float64{"0.01": 1, "0.1": 3, "1": 4, "+Inf": 5}, 5, 5.605)

	// Families must be sorted by name for a stable scrape diff.
	var names []string
	for _, line := range strings.Split(b.String(), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			names = append(names, strings.Fields(line)[2])
		}
	}
	if !sort.StringsAreSorted(names) {
		t.Errorf("families not sorted: %v", names)
	}
}

// checkHistogram asserts the scraped bucket/sum/count invariants.
func checkHistogram(t *testing.T, samples []parsedMetric, buckets map[string]float64, count uint64, sum float64) {
	t.Helper()
	var gotCount, inf float64
	gotSum := math.NaN()
	prev := -1.0
	for _, s := range samples {
		switch {
		case strings.HasSuffix(s.name, "_bucket"):
			le := s.labels["le"]
			if want, ok := buckets[le]; ok && s.value != want {
				t.Errorf("bucket le=%s = %v, want %v", le, s.value, want)
			}
			if s.value < prev {
				t.Errorf("bucket le=%s = %v not monotone (prev %v)", le, s.value, prev)
			}
			prev = s.value
			if le == "+Inf" {
				inf = s.value
			}
		case strings.HasSuffix(s.name, "_sum"):
			gotSum = s.value
		case strings.HasSuffix(s.name, "_count"):
			gotCount = s.value
		}
	}
	if gotCount != float64(count) {
		t.Errorf("_count = %v, want %d", gotCount, count)
	}
	if inf != gotCount {
		t.Errorf(`le="+Inf" bucket %v != _count %v`, inf, gotCount)
	}
	if math.Abs(gotSum-sum) > 1e-9 {
		t.Errorf("_sum = %v, want %v", gotSum, sum)
	}
}

func TestRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("test_x_total", "X.")
	b := r.Counter("test_x_total", "X.")
	if a != b {
		t.Fatal("re-registration returned a different counter")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("counters not shared")
	}

	// Func collectors replace on re-registration (a new Service instance
	// re-points the family at its own store).
	r.GaugeFunc("test_y", "Y.", func() float64 { return 1 })
	r.GaugeFunc("test_y", "Y.", func() float64 { return 2 })
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "test_y 2") {
		t.Fatalf("replaced collector not used:\n%s", sb.String())
	}

	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("test_x_total", "X.")
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("test_esc_total", "Esc.", "v").With("a\"b\\c\nd").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	fams := parseExposition(t, b.String())
	got := fams["test_esc_total"].samples[0].labels["v"]
	if got != "a\"b\\c\nd" {
		t.Fatalf("escaped label round-trip = %q", got)
	}
}
