package obs

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	const h = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	id, parent, sampled, err := ParseTraceparent(h)
	if err != nil {
		t.Fatalf("ParseTraceparent(%q): %v", h, err)
	}
	if got := id.String(); got != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("trace id = %s", got)
	}
	if got := parent.String(); got != "00f067aa0ba902b7" {
		t.Errorf("parent span = %s", got)
	}
	if !sampled {
		t.Error("sampled flag not parsed")
	}
	if got := FormatTraceparent(id, parent, sampled); got != h {
		t.Errorf("FormatTraceparent round-trip = %q, want %q", got, h)
	}
	// Flags other than the sampled bit drop on re-render; the ids survive.
	id2, parent2, _, err := ParseTraceparent(FormatTraceparent(id, parent, false))
	if err != nil || id2 != id || parent2 != parent {
		t.Errorf("unsampled round-trip: id=%v parent=%v err=%v", id2, parent2, err)
	}
}

func TestParseTraceparentMalformed(t *testing.T) {
	valid := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	cases := []struct {
		name string
		h    string
	}{
		{"empty", ""},
		{"garbage", "not-a-traceparent"},
		{"too few fields", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7"},
		{"version ff", strings.Replace(valid, "00-", "ff-", 1)},
		{"uppercase hex", strings.ToUpper(valid)},
		{"short trace id", "00-4bf92f3577b34da6-00f067aa0ba902b7-01"},
		{"short span id", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa-01"},
		{"zero trace id", "00-00000000000000000000000000000000-00f067aa0ba902b7-01"},
		{"zero span id", "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01"},
		{"non-hex version", "zz-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"},
		{"non-hex flags", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-zz"},
		{"version 00 extra field", valid + "-extra"},
	}
	for _, tc := range cases {
		if _, _, _, err := ParseTraceparent(tc.h); err == nil {
			t.Errorf("%s: ParseTraceparent(%q) accepted, want error", tc.name, tc.h)
		}
	}
	// A future version may carry trailing fields.
	future := strings.Replace(valid, "00-", "01-", 1) + "-whatever"
	if _, _, _, err := ParseTraceparent(future); err != nil {
		t.Errorf("future version with trailing field rejected: %v", err)
	}
}

func TestSamplingDeterministic(t *testing.T) {
	a := NewTracer(TracerConfig{SampleRate: 0.3, Seed: 42})
	b := NewTracer(TracerConfig{SampleRate: 0.3, Seed: 42})
	other := NewTracer(TracerConfig{SampleRate: 0.3, Seed: 43})
	sampled, differs := 0, 0
	const trials = 4096
	for i := 0; i < trials; i++ {
		var id TraceID
		id[0], id[1], id[2] = byte(i), byte(i>>8), byte(i>>16)
		id[15] = 0xa5
		if a.Sampled(id) != b.Sampled(id) {
			t.Fatalf("same seed disagrees on id %v", id)
		}
		if a.Sampled(id) {
			sampled++
		}
		if a.Sampled(id) != other.Sampled(id) {
			differs++
		}
	}
	frac := float64(sampled) / trials
	if frac < 0.2 || frac > 0.4 {
		t.Errorf("sample fraction %.3f far from configured 0.3", frac)
	}
	if differs == 0 {
		t.Error("different seeds produced identical sampling sets")
	}
	// Boundary rates.
	if !NewTracer(TracerConfig{SampleRate: 1}).Sampled(TraceID{1}) {
		t.Error("rate 1 must sample everything")
	}
	if NewTracer(TracerConfig{SampleRate: 0}).Sampled(TraceID{1}) {
		t.Error("rate 0 must sample nothing")
	}
}

func TestDisabledTracerIsInert(t *testing.T) {
	var nilTracer *Tracer
	for _, tr := range []*Tracer{nil, NewTracer(TracerConfig{SampleRate: 0})} {
		if tr.Enabled() {
			t.Fatal("disabled tracer reports Enabled")
		}
		ctx, sp := tr.StartRequest(context.Background(), "http.request", "")
		if sp != nil {
			t.Fatal("disabled tracer returned a span")
		}
		_, child := StartSpan(ctx, "service.op")
		if child != nil {
			t.Fatal("child span materialized under a disabled tracer")
		}
		// All span methods must be nil-safe.
		child.SetAttr("k", 1)
		child.End()
		sp.End()
		if got := TraceIDFrom(ctx); got != "" {
			t.Fatalf("TraceIDFrom on untraced ctx = %q", got)
		}
	}
	_ = nilTracer
}

func TestSpanTreeSelfTimes(t *testing.T) {
	tr := NewTracer(TracerConfig{SampleRate: 1})
	ctx, root := tr.StartRequest(context.Background(), "http.request", "")
	root.SetAttr("route", "/v1/sessions")
	root.SetAttr("status", 201)
	ctx2, svc := StartSpan(ctx, "service.create")
	_, leaf := StartSpan(ctx2, "session.build")
	time.Sleep(2 * time.Millisecond)
	leaf.End()
	svc.End()
	_, leaf2 := StartSpan(ctx, "persist.hydrate") // second child of root
	leaf2.End()
	root.End()

	traces := tr.Traces(TraceFilter{})
	if len(traces) != 1 {
		t.Fatalf("retained %d traces, want 1", len(traces))
	}
	td := traces[0]
	if td.Route != "/v1/sessions" || td.Status != 201 {
		t.Errorf("root attrs not hoisted: route=%q status=%d", td.Route, td.Status)
	}
	if len(td.Spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(td.Spans))
	}
	// The self-time identity: every span's duration equals its self time plus
	// its children's durations, so summing self over the tree gives exactly
	// the root duration.
	var selfSum int64
	for _, sp := range td.Spans {
		selfSum += sp.SelfNS
		if sp.SelfNS < 0 || sp.SelfNS > sp.DurationNS {
			t.Errorf("span %s: self %d outside [0, %d]", sp.Name, sp.SelfNS, sp.DurationNS)
		}
	}
	if selfSum != td.Spans[0].DurationNS {
		t.Errorf("Σ self = %d, root duration = %d", selfSum, td.Spans[0].DurationNS)
	}
	// Parent indices form a tree rooted at 0.
	if td.Spans[0].Parent != -1 {
		t.Errorf("root parent = %d", td.Spans[0].Parent)
	}
	for i, sp := range td.Spans[1:] {
		if sp.Parent < 0 || sp.Parent > i {
			t.Errorf("span %d parent %d is not an earlier span", i+1, sp.Parent)
		}
	}
	bd := SelfTimeBreakdown(td)
	if len(bd) != 4 { // http, service, session, persist
		t.Errorf("breakdown components = %v", bd)
	}
	if bd["session"] <= 0 {
		t.Errorf("session self time %.3fms, want > 0 (slept 2ms)", bd["session"])
	}
	if s := FormatBreakdown(bd); !strings.Contains(s, "session=") {
		t.Errorf("FormatBreakdown = %q", s)
	}
}

func TestUnendedSpanClamped(t *testing.T) {
	tr := NewTracer(TracerConfig{SampleRate: 1})
	ctx, root := tr.StartRequest(context.Background(), "http.request", "")
	StartSpan(ctx, "service.leak") // never ended
	root.End()
	td := tr.Traces(TraceFilter{})[0]
	if got := td.Spans[1].DurationNS; got > td.Spans[0].DurationNS {
		t.Errorf("leaked span duration %d exceeds root %d", got, td.Spans[0].DurationNS)
	}
}

func TestTraceRingAndFilter(t *testing.T) {
	tr := NewTracer(TracerConfig{SampleRate: 1, BufferSize: 4})
	emit := func(route string, d time.Duration) {
		_, root := tr.StartRequest(context.Background(), "http.request", "")
		root.SetAttr("route", route)
		if d > 0 {
			time.Sleep(d)
		}
		root.End()
	}
	for i := 0; i < 6; i++ { // overflow the 4-slot ring
		emit("/v1/stats", 0)
	}
	emit("/health", 3*time.Millisecond)
	all := tr.Traces(TraceFilter{})
	if len(all) != 4 {
		t.Fatalf("ring holds %d traces, want 4", len(all))
	}
	if all[0].Route != "/health" {
		t.Errorf("newest-first order violated: first route %q", all[0].Route)
	}
	if got := tr.Traces(TraceFilter{Route: "/health"}); len(got) != 1 {
		t.Errorf("route filter returned %d", len(got))
	}
	if got := tr.Traces(TraceFilter{MinDuration: 2 * time.Millisecond}); len(got) != 1 {
		t.Errorf("min-duration filter returned %d", len(got))
	}
	if got := tr.Traces(TraceFilter{Limit: 2}); len(got) != 2 {
		t.Errorf("limit filter returned %d", len(got))
	}
}

func TestSlowRetentionAndCallback(t *testing.T) {
	var slow []TraceData
	tr := NewTracer(TracerConfig{
		SampleRate:    0.000001, // head sampling effectively off, but enabled
		SlowThreshold: time.Millisecond,
		OnSlow:        func(td TraceData) { slow = append(slow, td) },
	})
	_, fast := tr.StartRequest(context.Background(), "http.request", "")
	fast.End()
	_, root := tr.StartRequest(context.Background(), "http.request", "")
	time.Sleep(2 * time.Millisecond)
	root.End()
	got := tr.Traces(TraceFilter{})
	if len(got) != 1 || !got[0].Slow {
		t.Fatalf("slow trace not retained: %+v", got)
	}
	if len(slow) != 1 {
		t.Fatalf("OnSlow fired %d times, want 1", len(slow))
	}
}

func TestComponent(t *testing.T) {
	for name, want := range map[string]string{
		"http.request":   "http",
		"selection.plan": "selection",
		"persist":        "persist",
		".weird":         ".weird",
	} {
		if got := Component(name); got != want {
			t.Errorf("Component(%q) = %q, want %q", name, got, want)
		}
	}
}
