package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Default is the process-wide registry every subsystem instruments itself
// through. Transports render it verbatim: the HTTP /metrics endpoint and the
// SDK's Metrics() are both WritePrometheus over this registry.
var Default = NewRegistry()

// DefBuckets are the default latency histogram bounds, in seconds. They span
// sub-millisecond WAL appends to multi-second cold tree builds.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10,
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. Registration is idempotent per (name, kind, labels):
// asking for an existing family returns it, so independent packages — and
// repeated service constructions in tests — can claim the same family
// without coordinating. A kind or label-shape mismatch panics: that is a
// programming error, not an operational condition.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// family is one named metric family: fixed kind, help and label names, and
// either a set of registered series or a scrape-time collect func.
type family struct {
	name    string
	help    string
	kind    string
	labels  []string
	buckets []float64 // histogram families only

	mu      sync.Mutex
	series  map[string]any // label-values key -> *Counter/*Gauge/*Histogram
	order   []string       // insertion order of series keys
	collect func() []Sample
}

// Sample is one scrape-time reading from a func collector: the label values
// (matching the family's label names positionally) and the current value.
type Sample struct {
	Labels []string
	Value  float64
}

// lookup returns (creating if needed) the family, enforcing shape.
func (r *Registry) lookup(name, help, kind string, labels []string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s%v, was %s%v",
				name, kind, labels, f.kind, f.labels))
		}
		return f
	}
	f := &family{
		name:    name,
		help:    help,
		kind:    kind,
		labels:  append([]string(nil), labels...),
		buckets: buckets,
		series:  make(map[string]any),
	}
	r.families[name] = f
	return f
}

// seriesFor returns (creating via mk if needed) the series for the label
// values.
func (f *family) seriesFor(values []string, mk func() any) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[key]
	if !ok {
		s = mk()
		f.series[key] = s
		f.order = append(f.order, key)
	}
	return s
}

// ---- counters ----

// Counter is a monotonically increasing value.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Counter registers (or returns) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.lookup(name, help, kindCounter, nil, nil)
	return f.seriesFor(nil, func() any { return &Counter{} }).(*Counter)
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// CounterVec registers (or returns) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.lookup(name, help, kindCounter, labels, nil)}
}

// With returns the counter for the label values, creating it on first use.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.seriesFor(values, func() any { return &Counter{} }).(*Counter)
}

// ---- gauges ----

// Gauge is a value that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d (CAS loop; safe for concurrent use).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value reads the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Gauge registers (or returns) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.lookup(name, help, kindGauge, nil, nil)
	return f.seriesFor(nil, func() any { return &Gauge{} }).(*Gauge)
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// GaugeVec registers (or returns) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.lookup(name, help, kindGauge, labels, nil)}
}

// With returns the gauge for the label values, creating it on first use.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.seriesFor(values, func() any { return &Gauge{} }).(*Gauge)
}

// ---- histograms ----

// Histogram counts observations into fixed buckets. Bucket counts are
// per-bound (not cumulative) internally; the exposition writer accumulates
// them at scrape time, which keeps le="+Inf" exactly equal to _count even
// while observations race the scrape.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Uint64 // len(bounds)+1; last = overflow
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count reads the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Histogram registers (or returns) an unlabeled histogram with the given
// bucket upper bounds (must be sorted ascending; nil selects DefBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	f := r.lookup(name, help, kindHistogram, nil, buckets)
	return f.seriesFor(nil, func() any { return newHistogram(f.buckets) }).(*Histogram)
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// HistogramVec registers (or returns) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	return &HistogramVec{f: r.lookup(name, help, kindHistogram, labels, buckets)}
}

// With returns the histogram for the label values, creating it on first use.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.seriesFor(values, func() any { return newHistogram(v.f.buckets) }).(*Histogram)
}

// ---- func collectors ----

// RegisterFunc registers a scrape-time collector: collect runs on every
// exposition and its samples are rendered under the family. Re-registering
// the same name replaces the collector — each new Service instance points
// the family at its own store — so the shape (kind, labels) must match.
func (r *Registry) RegisterFunc(name, help, kind string, labels []string, collect func() []Sample) {
	f := r.lookup(name, help, kind, labels, nil)
	f.mu.Lock()
	f.collect = collect
	f.mu.Unlock()
}

// GaugeFunc registers an unlabeled gauge read at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.RegisterFunc(name, help, kindGauge, nil, func() []Sample {
		return []Sample{{Value: fn()}}
	})
}

// CounterFunc registers an unlabeled counter read at scrape time (the
// underlying value must be monotonic; the registry only renders it).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.RegisterFunc(name, help, kindCounter, nil, func() []Sample {
		return []Sample{{Value: fn()}}
	})
}

// Names returns the sorted registered family names (for parity tests).
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ---- exposition ----

// WritePrometheus renders the registry in Prometheus text exposition format
// (version 0.0.4): families sorted by name, each with # HELP and # TYPE
// headers, histogram series expanded into cumulative _bucket/_sum/_count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	families := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		families = append(families, f)
	}
	r.mu.Unlock()
	sort.Slice(families, func(i, j int) bool { return families[i].name < families[j].name })

	var b strings.Builder
	for _, f := range families {
		f.render(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (f *family) render(b *strings.Builder) {
	b.WriteString("# HELP ")
	b.WriteString(f.name)
	b.WriteByte(' ')
	b.WriteString(escapeHelp(f.help))
	b.WriteString("\n# TYPE ")
	b.WriteString(f.name)
	b.WriteByte(' ')
	b.WriteString(f.kind)
	b.WriteByte('\n')

	f.mu.Lock()
	if f.collect != nil {
		samples := f.collect
		f.mu.Unlock()
		for _, s := range samples() {
			writeSample(b, f.name, f.labels, s.Labels, s.Value)
		}
		return
	}
	keys := append([]string(nil), f.order...)
	series := make([]any, len(keys))
	for i, k := range keys {
		series[i] = f.series[k]
	}
	f.mu.Unlock()

	// Stable output: series sorted by label values.
	idx := make([]int, len(keys))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return keys[idx[i]] < keys[idx[j]] })
	for _, i := range idx {
		values := splitKey(keys[i], len(f.labels))
		switch s := series[i].(type) {
		case *Counter:
			writeSample(b, f.name, f.labels, values, float64(s.Value()))
		case *Gauge:
			writeSample(b, f.name, f.labels, values, s.Value())
		case *Histogram:
			var cum uint64
			for bi, bound := range s.bounds {
				cum += s.counts[bi].Load()
				writeSample(b, f.name+"_bucket", append(f.labels, "le"),
					append(append([]string(nil), values...), formatFloat(bound)), float64(cum))
			}
			cum += s.counts[len(s.bounds)].Load()
			writeSample(b, f.name+"_bucket", append(f.labels, "le"),
				append(append([]string(nil), values...), "+Inf"), float64(cum))
			writeSample(b, f.name+"_sum", f.labels, values, math.Float64frombits(s.sumBits.Load()))
			writeSample(b, f.name+"_count", f.labels, values, float64(cum))
		}
	}
}

func splitKey(key string, n int) []string {
	if n == 0 {
		return nil
	}
	return strings.Split(key, "\xff")
}

func writeSample(b *strings.Builder, name string, labels, values []string, v float64) {
	b.WriteString(name)
	if len(labels) > 0 {
		b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(l)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(values[i]))
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatFloat(v))
	b.WriteByte('\n')
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}
