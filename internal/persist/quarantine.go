package persist

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Typed quarantine reasons. They travel to /v1/sessions so an operator can
// tell at a glance what class of damage took a session out of service.
const (
	ReasonCorruptSnapshot = "corrupt-snapshot"
	ReasonMissingSnapshot = "missing-snapshot"
	ReasonCorruptWAL      = "corrupt-wal"
	ReasonUnreadable      = "unreadable"
)

// QuarantineInfo describes one quarantined session.
type QuarantineInfo struct {
	ID     string `json:"id"`
	Reason string `json:"reason"`
	Detail string `json:"detail,omitempty"`
	Time   string `json:"time,omitempty"` // RFC 3339, when it was quarantined
}

// Quarantiner is implemented by backends that can move a damaged session out
// of the serving path instead of failing on it forever. The serving layer
// quarantines on any ErrCorrupt hydration and lists the result with
// state=quarantined; the data stays on disk for forensics and `crowdtopk
// fsck`.
type Quarantiner interface {
	// Quarantine moves the session's data to the quarantine area with a
	// typed reason. ErrNotFound when the store holds nothing for id.
	Quarantine(id, reason, detail string) error
	// Quarantined lists everything currently in the quarantine area.
	Quarantined() ([]QuarantineInfo, error)
}

// ScanResult is what a boot scan found: the recoverable session ids, the
// sessions sitting in quarantine (pre-existing and newly moved), and entries
// the scan skipped because they are not usable session directories.
type ScanResult struct {
	IDs         []string
	Quarantined []QuarantineInfo
	Skipped     []string
}

// Scanner is implemented by backends with a richer boot scan than List: one
// that quarantines obviously-unrecoverable session directories (present but
// missing their snapshot) and skips stray entries instead of failing the
// whole scan. The serving layer prefers it over List at startup so one bad
// directory cannot hold the boot hostage.
type Scanner interface {
	Scan() (ScanResult, error)
}

// QuarantineReasonFor classifies a hydration error into a typed quarantine
// reason plus a human detail string. It understands *CorruptError paths;
// anything else is ReasonUnreadable.
func QuarantineReasonFor(err error) (reason, detail string) {
	var ce *CorruptError
	if errors.As(err, &ce) {
		detail = ce.Err.Error()
		switch {
		case strings.HasSuffix(ce.Path, "wal.log"):
			return ReasonCorruptWAL, detail
		case strings.Contains(detail, "snapshot is missing"):
			return ReasonMissingSnapshot, detail
		default:
			return ReasonCorruptSnapshot, detail
		}
	}
	return ReasonUnreadable, err.Error()
}

// quarantineMarker is the metadata file name inside a quarantined session's
// directory. It must fail ValidateID so a quarantine dir re-scanned as a
// session root can never mistake it for a session.
const quarantineMarker = "quarantine.json"

func (f *File) quarantineRoot() string { return filepath.Join(filepath.Dir(f.dir), "quarantine") }

// Quarantine moves the session's directory to <data-dir>/quarantine/<id>/,
// drops a quarantine.json marker with the typed reason inside it, and
// tombstones the id so racing Puts cannot resurrect the directory. An older
// quarantine of the same id is superseded.
func (f *File) Quarantine(id, reason, detail string) error {
	if err := ValidateID(id); err != nil {
		return err
	}
	st, err := f.state(id)
	if err != nil {
		return err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	src := f.sessionDir(id)
	if _, serr := os.Stat(src); errors.Is(serr, fs.ErrNotExist) {
		return ErrNotFound
	}
	if st.wal != nil {
		_ = st.wal.Close()
		st.wal = nil
	}
	qroot := f.quarantineRoot()
	if err := os.MkdirAll(qroot, 0o755); err != nil {
		return fmt.Errorf("persist: creating quarantine area: %w", err)
	}
	dst := filepath.Join(qroot, id)
	if err := os.RemoveAll(dst); err != nil {
		return fmt.Errorf("persist: clearing stale quarantine for %s: %w", id, err)
	}
	if err := os.Rename(src, dst); err != nil {
		return fmt.Errorf("persist: quarantining %s: %w", id, err)
	}
	info := QuarantineInfo{ID: id, Reason: reason, Detail: detail, Time: time.Now().UTC().Format(time.RFC3339)}
	if data, merr := json.Marshal(info); merr == nil {
		// Best effort: a missing marker degrades the listing, not recovery.
		_ = os.WriteFile(filepath.Join(dst, quarantineMarker), append(data, '\n'), 0o644)
	}
	f.syncDir(qroot)
	f.syncDir(f.dir)
	st.deleted = true
	f.c.quarantines.Add(1)
	return nil
}

// Quarantined lists the quarantine area, sorted by id.
func (f *File) Quarantined() ([]QuarantineInfo, error) {
	entries, err := os.ReadDir(f.quarantineRoot())
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("persist: listing quarantine area: %w", err)
	}
	var infos []QuarantineInfo
	for _, e := range entries {
		if !e.IsDir() || ValidateID(e.Name()) != nil {
			continue
		}
		infos = append(infos, readQuarantineMarker(f.quarantineRoot(), e.Name()))
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].ID < infos[j].ID })
	return infos, nil
}

// readQuarantineMarker loads a quarantined session's marker, degrading to an
// "unknown reason" entry when the marker is missing or unreadable.
func readQuarantineMarker(qroot, id string) QuarantineInfo {
	info := QuarantineInfo{ID: id, Reason: ReasonUnreadable, Detail: "quarantine marker missing"}
	data, err := os.ReadFile(filepath.Join(qroot, id, quarantineMarker))
	if err != nil {
		return info
	}
	var m QuarantineInfo
	if json.Unmarshal(data, &m) == nil && m.Reason != "" {
		m.ID = id
		return m
	}
	return info
}

// Scan is the boot scan: it walks the sessions root, returning every id that
// has at least a snapshot to recover from, quarantining session directories
// that provably cannot be recovered (directory present, snapshot missing),
// and skipping stray entries — one damaged directory must never abort a
// boot. The root itself being unreadable is still fatal: that is a data-dir
// problem, not a session problem.
func (f *File) Scan() (ScanResult, error) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return ScanResult{}, ErrClosed
	}
	f.mu.Unlock()
	entries, err := os.ReadDir(f.dir)
	if err != nil {
		return ScanResult{}, fmt.Errorf("persist: scanning %s: %w", f.dir, err)
	}
	var res ScanResult
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() || ValidateID(name) != nil {
			res.Skipped = append(res.Skipped, name)
			continue
		}
		if _, serr := os.Stat(f.snapPath(name)); serr != nil {
			if errors.Is(serr, fs.ErrNotExist) {
				// The WAL is a delta over a base that is gone: unrecoverable,
				// move it aside so hydration never trips over it.
				if qerr := f.Quarantine(name, ReasonMissingSnapshot, "session directory exists but snapshot is missing"); qerr != nil {
					res.Skipped = append(res.Skipped, name)
				}
			} else {
				res.Skipped = append(res.Skipped, name)
			}
			continue
		}
		res.IDs = append(res.IDs, name)
	}
	sort.Strings(res.IDs)
	// Includes anything Scan just moved plus quarantines from prior boots.
	q, qerr := f.Quarantined()
	if qerr != nil {
		return res, nil
	}
	res.Quarantined = q
	return res, nil
}
