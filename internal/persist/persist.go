// Package persist gives query sessions a durable, pluggable home. The
// serving layer (internal/server) holds live sessions in memory; a Store is
// where they go to survive idle eviction, graceful shutdowns and crashes.
//
// Two backends implement the Store interface:
//
//   - Memory: a sharded in-process map. Nothing survives the process; it is
//     the cache tier the server always runs, and a standalone store for
//     tests and memory-only deployments.
//   - File: one directory per session holding a periodic full snapshot (the
//     session checkpoint envelope from internal/session, reused verbatim)
//     plus an append-only, CRC-framed write-ahead log of the answers
//     accepted since that snapshot. Put appends the answer delta and
//     compacts into a fresh snapshot every SnapshotEvery answers; Get
//     restores the snapshot and replays the WAL tail through the session's
//     own SubmitAnswer transition, so a recovered session is
//     indistinguishable from one that never went down. A torn final record
//     (the crash landed mid-append) is dropped and the log truncated;
//     corruption anywhere else fails loudly with a *CorruptError.
//
// The design follows the usual WAL discipline (etcd's wal, OPA's disk
// store): length+CRC framing per record, monotonically increasing sequence
// numbers so replay after a half-finished compaction is idempotent, atomic
// snapshot replacement via rename, and an fsync policy the operator chooses
// (durability per answer vs. throughput).
package persist

import (
	"errors"
	"fmt"
	"sync/atomic"

	"crowdtopk/internal/session"
)

// ErrNotFound reports a session id the store holds nothing for.
var ErrNotFound = errors.New("persist: session not found")

// ErrCorrupt is the errors.Is target for any on-disk state that cannot be
// trusted: a WAL record failing its CRC with intact data after it, an
// undecodable snapshot, a snapshot whose dataset digest does not match, or a
// replay the session itself rejects. Inspect the *CorruptError for details.
var ErrCorrupt = errors.New("persist: corrupt session data")

// ErrInvalidID reports a session id unusable as a storage key (empty, too
// long, or containing characters outside [A-Za-z0-9._-]).
var ErrInvalidID = errors.New("persist: invalid session id")

// ErrClosed reports an operation on a closed store.
var ErrClosed = errors.New("persist: store closed")

// CorruptError wraps the cause of a corruption verdict with where it was
// found. errors.Is(err, ErrCorrupt) matches it; errors.As exposes the path.
type CorruptError struct {
	ID   string // session id
	Path string // offending file
	Err  error  // underlying cause
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("persist: session %s: corrupt data in %s: %v", e.ID, e.Path, e.Err)
}

func (e *CorruptError) Unwrap() error { return e.Err }

// Is makes errors.Is(err, ErrCorrupt) true for every CorruptError.
func (e *CorruptError) Is(target error) bool { return target == ErrCorrupt }

// Store is a durable (or at least authoritative) home for sessions. The
// serving layer treats its in-memory table as a cache over one of these.
//
// Implementations must be safe for concurrent use. Put with the same id must
// be cheap when called repeatedly: the file backend appends only the answers
// accepted since the previous Put and snapshots periodically.
type Store interface {
	// Put records the session's current state under id, replacing or
	// extending whatever the store already holds for it.
	Put(id string, sess *session.Session) error
	// Get rebuilds the stored session. It returns ErrNotFound when the
	// store holds nothing for id and an error matching ErrCorrupt when it
	// holds something it cannot trust.
	Get(id string) (*session.Session, error)
	// Delete removes every trace of the session. Deleting an unknown id
	// returns ErrNotFound.
	Delete(id string) error
	// List returns the ids of all stored sessions, sorted.
	List() ([]string, error)
	// Flush makes every accepted Put durable (fsync under lenient sync
	// policies). It is a no-op for stores that are always current.
	Flush() error
	// Close flushes and releases resources. The store is unusable after.
	Close() error
}

// CounterSource is implemented by backends that track persistence activity;
// the serving layer surfaces these in GET /v1/stats.
type CounterSource interface {
	Counters() CounterSnapshot
}

// CounterSnapshot is a point-in-time read of a backend's activity counters,
// in the wire form /v1/stats embeds.
type CounterSnapshot struct {
	// Snapshots counts full checkpoint envelopes written (initial writes
	// and compactions).
	Snapshots uint64 `json:"snapshots"`
	// WALAppends counts answer records appended to write-ahead logs.
	WALAppends uint64 `json:"wal_appends"`
	// Replays counts WAL records replayed through SubmitAnswer during Get.
	Replays uint64 `json:"replays"`
	// RecoveredSessions counts sessions successfully rebuilt by Get.
	RecoveredSessions uint64 `json:"recovered_sessions"`
	// Fsyncs counts File.Sync calls (WAL appends under SyncAlways,
	// snapshot writes, directory syncs, flushes).
	Fsyncs uint64 `json:"fsyncs"`
	// TornTails counts recoveries that dropped a torn trailing WAL record.
	TornTails uint64 `json:"torn_wal_tails"`
	// Quarantines counts session directories moved to the quarantine area
	// because their on-disk state could not be trusted.
	Quarantines uint64 `json:"quarantines"`
}

// counters is the shared atomic implementation behind CounterSnapshot.
type counters struct {
	snapshots, walAppends, replays, recovered, fsyncs, tornTails, quarantines atomic.Uint64
}

func (c *counters) snapshot() CounterSnapshot {
	return CounterSnapshot{
		Snapshots:         c.snapshots.Load(),
		WALAppends:        c.walAppends.Load(),
		Replays:           c.replays.Load(),
		RecoveredSessions: c.recovered.Load(),
		Fsyncs:            c.fsyncs.Load(),
		TornTails:         c.tornTails.Load(),
		Quarantines:       c.quarantines.Load(),
	}
}

// maxIDLen bounds storage keys; server ids are 34 bytes ("s_" + 32 hex).
const maxIDLen = 128

// ValidateID rejects ids unusable as storage keys. The file backend maps the
// id straight to a directory name, so the character set is restricted to
// names that cannot traverse, hide, or collide across platforms.
func ValidateID(id string) error {
	if id == "" || len(id) > maxIDLen {
		return fmt.Errorf("%w: %q", ErrInvalidID, id)
	}
	if id[0] == '.' {
		return fmt.Errorf("%w: %q", ErrInvalidID, id)
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return fmt.Errorf("%w: %q", ErrInvalidID, id)
		}
	}
	return nil
}
