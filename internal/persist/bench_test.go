package persist

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"crowdtopk/internal/tpo"
)

// The persist benchmark family, recorded by `make bench` / cmd/benchreport
// alongside the selection family:
//
//	BenchmarkPersistWALAppend    one answer record appended (per fsync policy)
//	BenchmarkPersistSnapshot     one full checkpoint compaction
//	BenchmarkPersistColdRecovery snapshot restore + WAL replay of a session

func BenchmarkPersistWALAppend(b *testing.B) {
	for _, sync := range []SyncPolicy{SyncNone, SyncAlways} {
		b.Run(fmt.Sprintf("sync=%s", sync), func(b *testing.B) {
			w, err := os.Create(filepath.Join(b.TempDir(), "wal.log"))
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			batch := []tpo.Answer{{Q: tpo.NewQuestion(3, 5), Yes: true}}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := appendWAL(w, uint64(i), batch); err != nil {
					b.Fatal(err)
				}
				if sync == SyncAlways {
					if err := w.Sync(); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

func BenchmarkPersistSnapshot(b *testing.B) {
	st, err := NewFile(FileOptions{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	s, cr := newTestSession(b, 7, 3, 12)
	answerN(b, s, cr, 5, nil)
	if err := st.Put("s_bench", s); err != nil {
		b.Fatal(err)
	}
	fs, err := st.state("s_bench")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs.mu.Lock()
		err := st.writeSnapshot("s_bench", fs, s)
		fs.mu.Unlock()
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPersistColdRecovery(b *testing.B) {
	// One snapshot at zero answers plus the whole query in the WAL: the
	// worst-case recovery (full tree rebuild + full replay).
	dir := b.TempDir()
	st, err := NewFile(FileOptions{Dir: dir, SnapshotEvery: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	s, cr := newTestSession(b, 7, 3, 12)
	if err := st.Put("s_bench", s); err != nil {
		b.Fatal(err)
	}
	// Stop short of the budget: a terminal Put compacts, which would empty
	// the WAL this benchmark exists to replay.
	replayed := answerN(b, s, cr, 5, func() {
		if err := st.Put("s_bench", s); err != nil {
			b.Fatal(err)
		}
	})
	if s.State().Terminal() {
		b.Fatalf("session terminal after %d answers; WAL compacted away", replayed)
	}
	if err := st.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(replayed), "replays/op")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cold, err := NewFile(FileOptions{Dir: dir})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := cold.Get("s_bench"); err != nil {
			b.Fatal(err)
		}
		if err := cold.Close(); err != nil {
			b.Fatal(err)
		}
	}
}
