package persist

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// -torture.seed reruns the randomized torture schedules under a chosen seed;
// the default keeps CI deterministic while a soak loop can sweep seeds:
//
//	for s in $(seq 100); do go test -run Torture -torture.seed=$s ./internal/persist/; done
var tortureSeed = flag.Int64("torture.seed", 1, "seed for the randomized persistence torture schedules")

func TestParseFaultSpec(t *testing.T) {
	spec, err := ParseFaultSpec("put.err.rate=0.25, get.err.every=3,put.torn.every=7,put.torn.rate=0.1,latency=2ms,wedge.after=50,seed=42")
	if err != nil {
		t.Fatal(err)
	}
	if spec.ErrRate[OpPut] != 0.25 || spec.ErrEvery[OpGet] != 3 || spec.TornEvery != 7 ||
		spec.TornRate != 0.1 || spec.Latency != 2*time.Millisecond || spec.WedgeAfter != 50 || spec.Seed != 42 {
		t.Fatalf("parsed spec = %+v", spec)
	}
	if spec, err := ParseFaultSpec(""); err != nil || spec.Latency != 0 {
		t.Fatalf("empty spec: %+v, %v", spec, err)
	}
	for _, bad := range []string{
		"nonsense", "put.err.rate=2", "put.err.every=0", "teleport.err.rate=0.5",
		"latency=-1s", "wedge.after=x", "put.torn.rate=nan",
	} {
		if _, err := ParseFaultSpec(bad); err == nil {
			t.Errorf("ParseFaultSpec(%q) accepted", bad)
		}
	}
}

// TestFaultStoreSchedule pins the deterministic injection surface: every-Nth
// failures land exactly on schedule, injected errors are classifiable, wedged
// operations block until released, and Heal restores the naked backend.
func TestFaultStoreSchedule(t *testing.T) {
	s, _ := newTestSession(t, 5, 2, 6)
	fs := NewFaultStore(NewMemory(), FaultSpec{ErrEvery: map[Op]int{OpPut: 3}})
	var errs int
	for i := 1; i <= 9; i++ {
		err := fs.Put("s_a", s)
		if i%3 == 0 {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("put %d: %v, want injected", i, err)
			}
			errs++
		} else if err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	if errs != 3 || fs.InjectedFaults() != 3 {
		t.Fatalf("injected %d faults (counter %d), want 3", errs, fs.InjectedFaults())
	}

	// A wedged store blocks callers until Unwedge releases them.
	fs.Wedge()
	done := make(chan error, 1)
	go func() { done <- fs.Put("s_a", s) }()
	select {
	case err := <-done:
		t.Fatalf("wedged put returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	fs.Unwedge()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("unwedged put: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("unwedged put still blocked")
	}

	// Heal clears the schedule entirely.
	fs.SetSpec(FaultSpec{ErrRate: map[Op]float64{OpPut: 1}})
	if err := fs.Put("s_a", s); !errors.Is(err, ErrInjected) {
		t.Fatalf("rate-1 put: %v, want injected", err)
	}
	fs.Heal()
	for i := 0; i < 5; i++ {
		if err := fs.Put("s_a", s); err != nil {
			t.Fatalf("healed put: %v", err)
		}
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestTornPutThenRetryRecoversAll is the damaged-tail regression test: a torn
// WAL append (partial frame on disk, Put reports failure) followed by a
// successful retry must leave every acknowledged answer recoverable. Without
// the truncate-before-append repair the retried frames land after the garbage
// and recovery silently drops them as a "torn tail".
func TestTornPutThenRetryRecoversAll(t *testing.T) {
	dir := t.TempDir()
	inner, err := NewFile(FileOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	fs := NewFaultStore(inner, FaultSpec{})
	s, cr := newTestSession(t, 7, 3, 12)
	if err := fs.Put("s_t", s); err != nil {
		t.Fatal(err)
	}
	answerN(t, s, cr, 3, nil)
	if err := fs.Put("s_t", s); err != nil {
		t.Fatal(err)
	}

	// Tear the next put: its delta reaches the disk cut short.
	fs.SetSpec(FaultSpec{TornRate: 1})
	answerN(t, s, cr, 2, nil)
	if err := fs.Put("s_t", s); !errors.Is(err, ErrInjected) {
		t.Fatalf("torn put: %v, want injected", err)
	}
	if fs.TornPuts() != 1 {
		t.Fatalf("torn puts = %d, want 1", fs.TornPuts())
	}

	// The retry (as the service's persister would issue) must succeed and
	// must not bury the re-sent records behind the partial frame.
	fs.Heal()
	answerN(t, s, cr, 1, nil)
	if err := fs.Put("s_t", s); err != nil {
		t.Fatalf("retry put: %v", err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := NewFile(FileOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	got, err := st2.Get("s_t")
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, got, s)
}

// TestTorturePersist is the randomized persistence torture harness:
// concurrent sessions write through a FaultStore over the file backend with
// probabilistic injected errors and torn WAL appends, the "process" is killed
// hot between cycles (the store is abandoned, never flushed or closed), and
// after every crash each session must recover every answer whose Put was
// acknowledged — more is acceptable (a torn batch persists a prefix), less is
// data loss.
func TestTorturePersist(t *testing.T) {
	if testing.Short() {
		t.Skip("torture harness is seconds-long; skipped with -short")
	}
	const (
		sessions = 4
		cycles   = 3
		rounds   = 6 // put attempts per session per cycle
	)
	dir := t.TempDir()
	root := rand.New(rand.NewSource(*tortureSeed))

	type track struct {
		id      string
		durable int // asked high-water of the last acknowledged Put
		live    int // answers submitted to the live session
		done    bool
	}
	tracks := make([]*track, sessions)
	for i := range tracks {
		tracks[i] = &track{id: fmt.Sprintf("s_torture%d", i)}
	}

	for cycle := 0; cycle < cycles; cycle++ {
		inner, err := NewFile(FileOptions{Dir: dir, SnapshotEvery: 5})
		if err != nil {
			t.Fatalf("cycle %d: reopen: %v", cycle, err)
		}
		fs := NewFaultStore(inner, FaultSpec{
			Seed:     root.Int63() + 1,
			ErrRate:  map[Op]float64{OpPut: 0.3},
			TornRate: 0.2,
		})

		var wg sync.WaitGroup
		errc := make(chan error, sessions)
		for _, tr := range tracks {
			wg.Add(1)
			go func(tr *track, seed int64) {
				defer wg.Done()
				// Recover (or create) the live copy. Get is not injected for
				// this schedule, so failures here are real corruption.
				sess, cr := newTestSession(t, 6, 2, 24)
				if cycle > 0 {
					switch got, err := fs.Get(tr.id); {
					case errors.Is(err, ErrNotFound) && tr.durable == 0:
						// Every Put last cycle was injected before anything
						// reached disk; starting over is the correct recovery.
						tr.live = 0
					case err != nil:
						errc <- fmt.Errorf("%s cycle %d: recover: %w", tr.id, cycle, err)
						return
					default:
						recovered := got.Status().Asked
						if recovered < tr.durable || recovered > tr.live {
							errc <- fmt.Errorf("%s cycle %d: recovered %d answers, want in [%d, %d]",
								tr.id, cycle, recovered, tr.durable, tr.live)
							return
						}
						sess = got
						tr.live = recovered
						tr.durable = recovered
					}
				}
				rng := rand.New(rand.NewSource(seed))
				for r := 0; r < rounds && !sess.State().Terminal(); r++ {
					tr.live += answerN(t, sess, cr, 1+rng.Intn(3), nil)
					if err := fs.Put(tr.id, sess); err != nil {
						if !errors.Is(err, ErrInjected) {
							errc <- fmt.Errorf("%s cycle %d round %d: put: %w", tr.id, cycle, r, err)
							return
						}
						continue // dirty; a later round retries with more answers
					}
					tr.durable = sess.Status().Asked
				}
				tr.done = sess.State().Terminal()
				errc <- nil
			}(tr, root.Int63())
		}
		wg.Wait()
		close(errc)
		for err := range errc {
			if err != nil {
				t.Fatal(err)
			}
		}
		// Crash: abandon the store hot. No Flush, no Close — open handles die
		// with the "process".
		_ = inner
	}

	// Final verification pass over a healed backend: everything every session
	// ever acknowledged is present and the sessions replay cleanly.
	final, err := NewFile(FileOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer final.Close()
	onDisk := 0
	for _, tr := range tracks {
		got, err := final.Get(tr.id)
		if tr.durable == 0 && errors.Is(err, ErrNotFound) {
			continue // nothing was ever acknowledged for this session
		}
		if err != nil {
			t.Fatalf("%s: final recover: %v", tr.id, err)
		}
		onDisk++
		asked := got.Status().Asked
		if asked < tr.durable || asked > tr.live {
			t.Errorf("%s: final state has %d answers, want in [%d, %d]", tr.id, asked, tr.durable, tr.live)
		}
	}

	// The data dir survived the torture in fsck-clean shape (torn tails are
	// healthy by design — recovery tolerates them — but report them).
	rep, err := Fsck(dir, FsckOptions{Deep: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Unhealthy != 0 {
		t.Fatalf("fsck after torture: %d unhealthy sessions: %+v", rep.Unhealthy, rep.Sessions)
	}
	if rep.Healthy != onDisk {
		t.Fatalf("fsck after torture: %d healthy sessions, want %d", rep.Healthy, onDisk)
	}
}

// TestFsckReportsAndRepairs pins the offline checker: a healthy dir, a torn
// tail (repairable), and a corrupt snapshot (unhealthy) are each classified,
// and -repair truncates the torn tail in place.
func TestFsckReportsAndRepairs(t *testing.T) {
	dir := t.TempDir()
	st, err := NewFile(FileOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s, cr := newTestSession(t, 6, 2, 10)
	if err := st.Put("s_clean", s); err != nil {
		t.Fatal(err)
	}
	answerN(t, s, cr, 3, func() {
		if err := st.Put("s_clean", s); err != nil {
			t.Fatal(err)
		}
	})

	fs := NewFaultStore(st, FaultSpec{})
	s2, cr2 := newTestSession(t, 6, 2, 10)
	if err := fs.Put("s_torn", s2); err != nil {
		t.Fatal(err)
	}
	answerN(t, s2, cr2, 2, nil)
	if err := fs.Put("s_torn", s2); err != nil {
		t.Fatal(err)
	}
	fs.SetSpec(FaultSpec{TornRate: 1})
	answerN(t, s2, cr2, 1, nil)
	if err := fs.Put("s_torn", s2); !errors.Is(err, ErrInjected) {
		t.Fatalf("torn put: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	rep, err := Fsck(dir, FsckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Healthy != 2 || rep.Unhealthy != 0 || rep.TornTails != 1 || rep.Repaired != 0 {
		t.Fatalf("report = %d healthy / %d unhealthy / %d torn / %d repaired, want 2/0/1/0",
			rep.Healthy, rep.Unhealthy, rep.TornTails, rep.Repaired)
	}

	rep, err = Fsck(dir, FsckOptions{Repair: true, Deep: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TornTails != 1 || rep.Repaired != 1 {
		t.Fatalf("repair run: %d torn / %d repaired, want 1/1", rep.TornTails, rep.Repaired)
	}
	rep, err = Fsck(dir, FsckOptions{Deep: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TornTails != 0 || rep.Unhealthy != 0 {
		t.Fatalf("after repair: %d torn / %d unhealthy, want 0/0", rep.TornTails, rep.Unhealthy)
	}
}
