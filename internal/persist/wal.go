package persist

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"crowdtopk/internal/tpo"
)

// WAL record framing. Each accepted answer becomes one self-checking record:
//
//	seq     uint64  little-endian — index of the answer in the session log
//	length  uint32  little-endian — payload byte count
//	payload []byte  JSON {"i":…,"j":…,"yes":…}
//	crc     uint32  little-endian — IEEE CRC-32 over seq‖length‖payload
//
// The sequence number makes replay idempotent across the compaction crash
// window: a snapshot that was renamed into place before the old log was
// truncated simply causes the low-seq records to be skipped. The CRC plus
// the declared extent distinguish a torn final append (file ends before the
// record's extent — tolerated, truncated away) from corruption in place
// (extent present but the CRC or payload lies — a *CorruptError).

const (
	walHeaderLen = 12 // seq (8) + length (4)
	walCRCLen    = 4
	// maxWALPayload bounds a record's declared payload so a corrupt length
	// field cannot drive a huge allocation. Answer payloads are ~40 bytes.
	maxWALPayload = 1 << 16
)

// errTornTail is the internal marker readWAL attaches to a tail that looks
// like a crash landed mid-append. Recovery tolerates it; it never escapes
// the package.
var errTornTail = errors.New("persist: torn wal tail")

// walPayload is one answer on disk.
type walPayload struct {
	I   int  `json:"i"`
	J   int  `json:"j"`
	Yes bool `json:"yes"`
}

// walRecord is one decoded record.
type walRecord struct {
	Seq    uint64
	Answer tpo.Answer
}

// encodeWAL frames answers as records seqStart, seqStart+1, … into one
// contiguous buffer (a single write per Put keeps the torn-tail window to at
// most one batch).
func encodeWAL(seqStart uint64, answers []tpo.Answer) ([]byte, error) {
	var buf []byte
	scratch := make([]byte, walHeaderLen)
	for k, a := range answers {
		payload, err := json.Marshal(walPayload{I: a.Q.I, J: a.Q.J, Yes: a.Yes})
		if err != nil {
			return nil, fmt.Errorf("persist: encoding wal record: %w", err)
		}
		binary.LittleEndian.PutUint64(scratch[0:8], seqStart+uint64(k))
		binary.LittleEndian.PutUint32(scratch[8:12], uint32(len(payload)))
		crc := crc32.NewIEEE()
		_, _ = crc.Write(scratch)
		_, _ = crc.Write(payload)
		buf = append(buf, scratch...)
		buf = append(buf, payload...)
		buf = binary.LittleEndian.AppendUint32(buf, crc.Sum32())
	}
	return buf, nil
}

// appendWAL encodes answers and writes them to w in one buffer.
func appendWAL(w io.Writer, seqStart uint64, answers []tpo.Answer) error {
	buf, err := encodeWAL(seqStart, answers)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// readWAL decodes every intact record from data. It returns the records, the
// byte offset just past the last intact record (the length recovery should
// truncate the log to), whether a torn tail was dropped, and — for
// corruption that is not a plausible torn append — an error wrapping the
// reason (the caller turns it into a *CorruptError).
func readWAL(data []byte) (recs []walRecord, validEnd int64, torn bool, err error) {
	off := 0
	var prevSeq uint64
	for off < len(data) {
		rest := data[off:]
		if len(rest) < walHeaderLen {
			return recs, int64(off), true, nil
		}
		seq := binary.LittleEndian.Uint64(rest[0:8])
		plen := int(binary.LittleEndian.Uint32(rest[8:12]))
		// Validate the length before the extent: appendWAL writes each batch
		// as one contiguous buffer, so a torn append that left a complete
		// header always carries the true (small) length — an intact header
		// declaring an oversized payload is provably corruption, and must
		// not be mistaken for a torn tail (which would silently truncate
		// every durable record after it).
		if plen > maxWALPayload {
			return recs, int64(off), false, fmt.Errorf("record at offset %d declares %d payload bytes (max %d)", off, plen, maxWALPayload)
		}
		extent := walHeaderLen + plen + walCRCLen
		if len(rest) < extent {
			// The file ends inside this record's declared extent: exactly
			// what a crash mid-append leaves behind.
			return recs, int64(off), true, nil
		}
		payload := rest[walHeaderLen : walHeaderLen+plen]
		want := binary.LittleEndian.Uint32(rest[walHeaderLen+plen : extent])
		crc := crc32.NewIEEE()
		_, _ = crc.Write(rest[:walHeaderLen])
		_, _ = crc.Write(payload)
		if got := crc.Sum32(); got != want {
			return recs, int64(off), false, fmt.Errorf("record at offset %d fails crc: got %08x want %08x", off, got, want)
		}
		var p walPayload
		if err := json.Unmarshal(payload, &p); err != nil {
			return recs, int64(off), false, fmt.Errorf("record at offset %d payload undecodable: %v", off, err)
		}
		if len(recs) > 0 && seq <= prevSeq {
			return recs, int64(off), false, fmt.Errorf("record at offset %d breaks seq monotonicity: %d after %d", off, seq, prevSeq)
		}
		recs = append(recs, walRecord{Seq: seq, Answer: tpo.Answer{Q: tpo.Question{I: p.I, J: p.J}, Yes: p.Yes}})
		prevSeq = seq
		off += extent
	}
	return recs, int64(off), false, nil
}
