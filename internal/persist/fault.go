package persist

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"crowdtopk/internal/session"
)

// ErrInjected marks a failure manufactured by a FaultStore. Callers treat it
// like any other backend error — that is the point — but tests and operators
// reading logs can tell a chaos-run fault from a real one with errors.Is.
var ErrInjected = errors.New("persist: injected fault")

// Op names one Store operation class for fault targeting.
type Op string

// The operation classes a FaultSpec can target.
const (
	OpPut    Op = "put"
	OpGet    Op = "get"
	OpDelete Op = "delete"
	OpList   Op = "list"
	OpFlush  Op = "flush"
)

var allOps = []Op{OpPut, OpGet, OpDelete, OpList, OpFlush}

// FaultSpec is a deterministic, seedable fault schedule for a FaultStore.
// Schedules are reproducible: the same spec over the same operation sequence
// injects the same faults (rates draw from one seeded generator).
type FaultSpec struct {
	// Seed feeds the generator behind ErrRate/TornRate draws and torn-write
	// cut sizes (0 seeds with 1, so the zero spec is still deterministic).
	Seed int64
	// Latency is injected before every operation.
	Latency time.Duration
	// ErrEvery fails every Nth operation of the keyed class.
	ErrEvery map[Op]int
	// ErrRate fails the keyed class with this probability per operation.
	ErrRate map[Op]float64
	// TornEvery turns every Nth Put into a torn write: the WAL append is
	// deliberately cut short, leaving a partial frame on disk, and the Put
	// reports failure — what a crash or full disk mid-append produces. Only
	// effective over a *File backend; elsewhere it degrades to a plain
	// injected error.
	TornEvery int
	// TornRate tears Puts with this probability.
	TornRate float64
	// WedgeAfter wedges the store (every operation blocks) once this many
	// operations have executed; 0 never auto-wedges. Unwedge or Heal
	// releases the blocked callers.
	WedgeAfter int
}

// ParseFaultSpec decodes the -fault-spec wire form: comma-separated clauses
//
//	<op>.err.every=N    fail every Nth <op> (put, get, delete, list, flush)
//	<op>.err.rate=P     fail <op> with probability P in [0,1]
//	put.torn.every=N    tear every Nth put (short WAL write + failure)
//	put.torn.rate=P     tear puts with probability P
//	latency=DUR         sleep DUR before every operation (e.g. 5ms)
//	wedge.after=N       block every operation once N operations have run
//	seed=N              seed the probability draws
//
// e.g. "put.err.rate=0.2,put.torn.every=7,latency=2ms,seed=42".
func ParseFaultSpec(s string) (FaultSpec, error) {
	spec := FaultSpec{ErrEvery: map[Op]int{}, ErrRate: map[Op]float64{}}
	for _, clause := range strings.Split(s, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		key, val, ok := strings.Cut(clause, "=")
		if !ok {
			return FaultSpec{}, fmt.Errorf("persist: fault spec clause %q: want key=value", clause)
		}
		switch {
		case key == "latency":
			d, err := time.ParseDuration(val)
			if err != nil || d < 0 {
				return FaultSpec{}, fmt.Errorf("persist: fault spec latency %q: %v", val, err)
			}
			spec.Latency = d
		case key == "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return FaultSpec{}, fmt.Errorf("persist: fault spec seed %q: %v", val, err)
			}
			spec.Seed = n
		case key == "wedge.after":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return FaultSpec{}, fmt.Errorf("persist: fault spec wedge.after %q: want a positive count", val)
			}
			spec.WedgeAfter = n
		case key == "put.torn.every":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return FaultSpec{}, fmt.Errorf("persist: fault spec put.torn.every %q: want a positive count", val)
			}
			spec.TornEvery = n
		case key == "put.torn.rate":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil || !(p >= 0 && p <= 1) { // ! form rejects NaN too
				return FaultSpec{}, fmt.Errorf("persist: fault spec put.torn.rate %q: want a probability", val)
			}
			spec.TornRate = p
		case strings.HasSuffix(key, ".err.every"):
			op, err := faultOp(strings.TrimSuffix(key, ".err.every"))
			if err != nil {
				return FaultSpec{}, err
			}
			n, aerr := strconv.Atoi(val)
			if aerr != nil || n < 1 {
				return FaultSpec{}, fmt.Errorf("persist: fault spec %s=%q: want a positive count", key, val)
			}
			spec.ErrEvery[op] = n
		case strings.HasSuffix(key, ".err.rate"):
			op, err := faultOp(strings.TrimSuffix(key, ".err.rate"))
			if err != nil {
				return FaultSpec{}, err
			}
			p, perr := strconv.ParseFloat(val, 64)
			if perr != nil || !(p >= 0 && p <= 1) { // ! form rejects NaN too
				return FaultSpec{}, fmt.Errorf("persist: fault spec %s=%q: want a probability", key, val)
			}
			spec.ErrRate[op] = p
		default:
			return FaultSpec{}, fmt.Errorf("persist: unknown fault spec clause %q", clause)
		}
	}
	return spec, nil
}

func faultOp(s string) (Op, error) {
	for _, op := range allOps {
		if s == string(op) {
			return op, nil
		}
	}
	return "", fmt.Errorf("persist: unknown fault spec op %q", s)
}

// FaultStore wraps a Store with deterministic fault injection: scheduled
// errors, probabilistic errors, injected latency, torn WAL writes (over a
// *File backend) and a wedged mode where every operation blocks until the
// store is unwedged. It is how the torture tests — and `crowdtopk serve
// -fault-spec` chaos runs — produce the failures disks and remote backends
// produce in production, on demand and reproducibly.
//
// FaultStore forwards the optional backend interfaces (CounterSource,
// Scanner, Quarantiner) so the serving layer's boot scan, quarantine and
// stats behave exactly as they would over the naked backend.
type FaultStore struct {
	inner Store

	mu      sync.Mutex
	spec    FaultSpec
	rng     *rand.Rand
	opCount map[Op]uint64
	total   uint64
	wedged  bool
	unwedge chan struct{}

	injected atomic.Uint64
	tornPuts atomic.Uint64
}

// NewFaultStore wraps inner with the given fault schedule.
func NewFaultStore(inner Store, spec FaultSpec) *FaultStore {
	seed := spec.Seed
	if seed == 0 {
		seed = 1
	}
	return &FaultStore{
		inner:   inner,
		spec:    spec,
		rng:     rand.New(rand.NewSource(seed)),
		opCount: make(map[Op]uint64),
	}
}

// SetSpec replaces the fault schedule (operation counters keep running; the
// probability generator is reseeded). Heal() is SetSpec with the zero spec
// plus an unwedge.
func (f *FaultStore) SetSpec(spec FaultSpec) {
	seed := spec.Seed
	if seed == 0 {
		seed = 1
	}
	f.mu.Lock()
	f.spec = spec
	f.rng = rand.New(rand.NewSource(seed))
	f.mu.Unlock()
}

// Heal clears every configured fault and releases wedged callers: the
// backend behaves like the naked inner store from here on.
func (f *FaultStore) Heal() {
	f.mu.Lock()
	f.spec = FaultSpec{}
	f.unwedgeLocked()
	f.mu.Unlock()
}

// Wedge blocks every subsequent operation until Unwedge (or Heal, or Close).
func (f *FaultStore) Wedge() {
	f.mu.Lock()
	f.wedgeLocked()
	f.mu.Unlock()
}

// Unwedge releases every blocked operation.
func (f *FaultStore) Unwedge() {
	f.mu.Lock()
	f.unwedgeLocked()
	f.mu.Unlock()
}

func (f *FaultStore) wedgeLocked() {
	if !f.wedged {
		f.wedged = true
		f.unwedge = make(chan struct{})
	}
}

func (f *FaultStore) unwedgeLocked() {
	if f.wedged {
		f.wedged = false
		close(f.unwedge)
	}
}

// InjectedFaults reports how many operations failed by injection (torn puts
// included).
func (f *FaultStore) InjectedFaults() uint64 { return f.injected.Load() }

// TornPuts reports how many Puts were turned into torn writes.
func (f *FaultStore) TornPuts() uint64 { return f.tornPuts.Load() }

// before runs the common fault pipeline for one operation: count it, apply
// latency, block while wedged, then decide scheduled/probabilistic failure.
func (f *FaultStore) before(op Op) error {
	f.mu.Lock()
	f.total++
	f.opCount[op]++
	n := f.opCount[op]
	sp := f.spec
	if sp.WedgeAfter > 0 && f.total >= uint64(sp.WedgeAfter) {
		f.wedgeLocked()
	}
	wedged := f.wedged
	gate := f.unwedge
	inject := false
	if e := sp.ErrEvery[op]; e > 0 && n%uint64(e) == 0 {
		inject = true
	}
	if r := sp.ErrRate[op]; r > 0 && f.rng.Float64() < r {
		inject = true
	}
	f.mu.Unlock()
	if sp.Latency > 0 {
		time.Sleep(sp.Latency)
	}
	if wedged {
		<-gate
	}
	if inject {
		f.injected.Add(1)
		return fmt.Errorf("%w: %s #%d", ErrInjected, op, n)
	}
	return nil
}

// tearNow decides (deterministically, under the seeded generator) whether
// this Put becomes a torn write, and how many bytes to cut from its tail.
func (f *FaultStore) tearNow() (bool, int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	sp := f.spec
	tear := false
	if sp.TornEvery > 0 && f.opCount[OpPut]%uint64(sp.TornEvery) == 0 {
		tear = true
	}
	if sp.TornRate > 0 && f.rng.Float64() < sp.TornRate {
		tear = true
	}
	if !tear {
		return false, 0
	}
	return true, 1 + f.rng.Intn(walHeaderLen+walCRCLen)
}

// Put forwards to the inner store unless the schedule injects an error or —
// over a file backend — a torn write.
func (f *FaultStore) Put(id string, sess *session.Session) error {
	if err := f.before(OpPut); err != nil {
		return err
	}
	if tear, cut := f.tearNow(); tear {
		f.injected.Add(1)
		f.tornPuts.Add(1)
		if file, ok := f.inner.(*File); ok {
			return file.putTorn(id, sess, cut)
		}
		return fmt.Errorf("%w: torn put (backend cannot tear)", ErrInjected)
	}
	return f.inner.Put(id, sess)
}

// Get forwards to the inner store unless the schedule injects an error.
func (f *FaultStore) Get(id string) (*session.Session, error) {
	if err := f.before(OpGet); err != nil {
		return nil, err
	}
	return f.inner.Get(id)
}

// Delete forwards to the inner store unless the schedule injects an error.
func (f *FaultStore) Delete(id string) error {
	if err := f.before(OpDelete); err != nil {
		return err
	}
	return f.inner.Delete(id)
}

// List forwards to the inner store unless the schedule injects an error.
func (f *FaultStore) List() ([]string, error) {
	if err := f.before(OpList); err != nil {
		return nil, err
	}
	return f.inner.List()
}

// Flush forwards to the inner store unless the schedule injects an error.
func (f *FaultStore) Flush() error {
	if err := f.before(OpFlush); err != nil {
		return err
	}
	return f.inner.Flush()
}

// Close releases wedged callers and closes the inner store. Shutdown is
// never fault-injected: a chaos run must still exit cleanly.
func (f *FaultStore) Close() error {
	f.Unwedge()
	return f.inner.Close()
}

// Counters forwards the inner backend's activity counters (zero snapshot
// when the backend tracks none), keeping /v1/stats intact under injection.
func (f *FaultStore) Counters() CounterSnapshot {
	if cs, ok := f.inner.(CounterSource); ok {
		return cs.Counters()
	}
	return CounterSnapshot{}
}

// Scan forwards the boot scan; a backend without one degrades to List.
func (f *FaultStore) Scan() (ScanResult, error) {
	if sc, ok := f.inner.(Scanner); ok {
		return sc.Scan()
	}
	ids, err := f.inner.List()
	return ScanResult{IDs: ids}, err
}

// Quarantine forwards to the inner backend when it supports quarantining.
func (f *FaultStore) Quarantine(id, reason, detail string) error {
	if q, ok := f.inner.(Quarantiner); ok {
		return q.Quarantine(id, reason, detail)
	}
	return fmt.Errorf("persist: backend %T cannot quarantine", f.inner)
}

// Quarantined forwards the quarantine listing (empty when unsupported).
func (f *FaultStore) Quarantined() ([]QuarantineInfo, error) {
	if q, ok := f.inner.(Quarantiner); ok {
		return q.Quarantined()
	}
	return nil, nil
}
