package persist

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"crowdtopk/internal/crowd"
	"crowdtopk/internal/dataset"
	"crowdtopk/internal/dist"
	"crowdtopk/internal/session"
)

func testDists(t testing.TB, n int, seed int64) []dist.Distribution {
	t.Helper()
	ds, err := dataset.Generate(dataset.Spec{N: n, Width: 2.2, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// newTestSession builds a deterministic session plus the oracle that answers
// its questions truthfully.
func newTestSession(t testing.TB, n, k, budget int) (*session.Session, crowd.Crowd) {
	t.Helper()
	ds := testDists(t, n, 5)
	truth := crowd.SampleTruth(ds, rand.New(rand.NewSource(99)))
	s, err := session.New(session.Config{Dists: ds, K: k, Budget: budget, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	return s, &crowd.PerfectOracle{Truth: truth}
}

// answerN submits up to n answers (all pending when n < 1), returning how
// many were accepted. after runs after every accepted answer — the tests'
// stand-in for the server's dirty hook.
func answerN(t testing.TB, s *session.Session, cr crowd.Crowd, n int, after func()) int {
	t.Helper()
	accepted := 0
	for n < 1 || accepted < n {
		qs, _, err := s.NextQuestions(0)
		if err != nil {
			t.Fatal(err)
		}
		if len(qs) == 0 {
			return accepted
		}
		for _, q := range qs {
			if err := s.SubmitAnswer(cr.Ask(q)); err != nil {
				t.Fatal(err)
			}
			accepted++
			if after != nil {
				after()
			}
			if n >= 1 && accepted >= n {
				return accepted
			}
		}
	}
	return accepted
}

// sameResult fails the test unless the two sessions report identical top-K
// beliefs.
func sameResult(t *testing.T, got, want *session.Session) {
	t.Helper()
	g, w := got.Result(), want.Result()
	if g.State != w.State || g.Asked != w.Asked || g.Orderings != w.Orderings || g.Resolved != w.Resolved {
		t.Fatalf("state/asked/orderings/resolved = %s/%d/%d/%v, want %s/%d/%d/%v",
			g.State, g.Asked, g.Orderings, g.Resolved, w.State, w.Asked, w.Orderings, w.Resolved)
	}
	if !reflect.DeepEqual(g.Ranking, w.Ranking) {
		t.Fatalf("ranking %v, want %v", g.Ranking, w.Ranking)
	}
	if math.Abs(g.Uncertainty-w.Uncertainty) > 1e-9 {
		t.Fatalf("uncertainty %v, want %v", g.Uncertainty, w.Uncertainty)
	}
}

func TestValidateID(t *testing.T) {
	for _, id := range []string{"s_abc123", "a", "A-b_c.9"} {
		if err := ValidateID(id); err != nil {
			t.Errorf("ValidateID(%q) = %v, want nil", id, err)
		}
	}
	long := make([]byte, maxIDLen+1)
	for i := range long {
		long[i] = 'a'
	}
	for _, id := range []string{"", ".", "..", ".hidden", "a/b", "a\\b", "a b", "ü", string(long)} {
		if err := ValidateID(id); !errors.Is(err, ErrInvalidID) {
			t.Errorf("ValidateID(%q) = %v, want ErrInvalidID", id, err)
		}
	}
}

func TestMemoryStore(t *testing.T) {
	m := NewMemory()
	if _, err := m.Get("s_a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("empty get: %v, want ErrNotFound", err)
	}
	s, _ := newTestSession(t, 5, 2, 4)
	for _, id := range []string{"s_b", "s_a", "s_c"} {
		if err := m.Put(id, s); err != nil {
			t.Fatal(err)
		}
	}
	got, err := m.Get("s_a")
	if err != nil || got != s {
		t.Fatalf("get = %p, %v; want the stored pointer", got, err)
	}
	ids, err := m.List()
	if err != nil || !reflect.DeepEqual(ids, []string{"s_a", "s_b", "s_c"}) {
		t.Fatalf("list = %v, %v", ids, err)
	}
	if m.Len() != 3 {
		t.Fatalf("len = %d, want 3", m.Len())
	}
	if err := m.Delete("s_b"); err != nil {
		t.Fatal(err)
	}
	if err := m.Delete("s_b"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v, want ErrNotFound", err)
	}
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if _, err := m.Get("s_a"); !errors.Is(err, ErrClosed) {
		t.Fatalf("get after close: %v, want ErrClosed", err)
	}
}

// TestFileRoundTrip: a session persisted answer by answer (as the server's
// dirty hook does) recovers from a fresh store instance with an identical
// belief, and both copies driven to completion stay identical.
func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := NewFile(FileOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s, cr := newTestSession(t, 7, 3, 12)
	if err := st.Put("s_x", s); err != nil { // initial snapshot, zero answers
		t.Fatal(err)
	}
	answerN(t, s, cr, 5, func() {
		if err := st.Put("s_x", s); err != nil {
			t.Fatal(err)
		}
	})
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := NewFile(FileOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	got, err := st2.Get("s_x")
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, got, s)
	c := st2.Counters()
	if c.RecoveredSessions != 1 || c.Replays != 5 {
		t.Fatalf("counters = %+v, want 1 recovery with 5 replays", c)
	}

	// Driving both to completion keeps them identical: recovery reproduced
	// the full state machine, not just the belief.
	answerN(t, s, cr, 0, nil)
	answerN(t, got, cr, 0, nil)
	sameResult(t, got, s)
	if !got.State().Terminal() {
		t.Fatalf("state %s not terminal", got.State())
	}
}

// TestFileCompaction: the WAL folds into a fresh snapshot every
// SnapshotEvery answers, and a terminal session compacts immediately.
func TestFileCompaction(t *testing.T) {
	dir := t.TempDir()
	st, err := NewFile(FileOptions{Dir: dir, SnapshotEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	s, cr := newTestSession(t, 7, 3, 12)
	if err := st.Put("s_x", s); err != nil {
		t.Fatal(err)
	}
	answerN(t, s, cr, 0, func() {
		if err := st.Put("s_x", s); err != nil {
			t.Fatal(err)
		}
	})
	if !s.State().Terminal() {
		t.Fatalf("session not terminal after exhausting the budget")
	}
	c := st.Counters()
	if c.Snapshots < 2 {
		t.Fatalf("snapshots = %d, want ≥ 2 (initial + compactions)", c.Snapshots)
	}
	// Terminal Put compacts, so no WAL remains.
	if _, err := os.Stat(filepath.Join(dir, "sessions", "s_x", "wal.log")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("wal still present after terminal compaction: %v", err)
	}

	st2, err := NewFile(FileOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	got, err := st2.Get("s_x")
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, got, s)
}

// TestCompactionCrashWindow: a crash after the snapshot rename but before
// the WAL truncation leaves low-seq records behind; recovery must skip them
// by sequence number instead of double-applying.
func TestCompactionCrashWindow(t *testing.T) {
	dir := t.TempDir()
	st, err := NewFile(FileOptions{Dir: dir, SnapshotEvery: 100})
	if err != nil {
		t.Fatal(err)
	}
	s, cr := newTestSession(t, 7, 3, 12)
	if err := st.Put("s_x", s); err != nil {
		t.Fatal(err)
	}
	answerN(t, s, cr, 4, func() {
		if err := st.Put("s_x", s); err != nil {
			t.Fatal(err)
		}
	})
	walPath := filepath.Join(dir, "sessions", "s_x", "wal.log")
	stale, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// Force a compaction (covers the 4 answers), then put the stale WAL
	// back, as if the crash hit between rename and truncate.
	fs, err := st.state("s_x")
	if err != nil {
		t.Fatal(err)
	}
	fs.mu.Lock()
	err = st.writeSnapshot("s_x", fs, s)
	fs.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, stale, 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := NewFile(FileOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	got, err := st2.Get("s_x")
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, got, s)
	if c := st2.Counters(); c.Replays != 0 {
		t.Fatalf("replays = %d, want 0 (all records below the snapshot)", c.Replays)
	}
}

// TestWALRecoveryTails pins the recovery semantics of damaged WALs: a torn
// tail is tolerated (the crash landed mid-append), everything else is a
// typed corruption error.
func TestWALRecoveryTails(t *testing.T) {
	// prep writes a session dir with 4 WAL records and returns its path
	// plus the session that produced it (for expectations).
	prep := func(t *testing.T) (dir string, s *session.Session) {
		dir = t.TempDir()
		st, err := NewFile(FileOptions{Dir: dir, SnapshotEvery: 100})
		if err != nil {
			t.Fatal(err)
		}
		s, cr := newTestSession(t, 7, 3, 12)
		if err := st.Put("s_x", s); err != nil {
			t.Fatal(err)
		}
		answerN(t, s, cr, 4, func() {
			if err := st.Put("s_x", s); err != nil {
				t.Fatal(err)
			}
		})
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
		return dir, s
	}

	t.Run("truncated tail tolerated", func(t *testing.T) {
		dir, s := prep(t)
		walPath := filepath.Join(dir, "sessions", "s_x", "wal.log")
		data, err := os.ReadFile(walPath)
		if err != nil {
			t.Fatal(err)
		}
		// Chop into the last record: recovery keeps the intact prefix.
		if err := os.WriteFile(walPath, data[:len(data)-5], 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := NewFile(FileOptions{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		got, err := st.Get("s_x")
		if err != nil {
			t.Fatal(err)
		}
		if asked := got.Status().Asked; asked != 3 {
			t.Fatalf("asked = %d, want 3 (torn 4th record dropped)", asked)
		}
		c := st.Counters()
		if c.TornTails != 1 || c.Replays != 3 {
			t.Fatalf("counters = %+v, want 1 torn tail and 3 replays", c)
		}
		// The log was truncated to its intact prefix, so re-persisting the
		// re-delivered answer and recovering again is clean.
		recovered, err := os.ReadFile(walPath)
		if err != nil {
			t.Fatal(err)
		}
		if len(recovered) >= len(data)-5 {
			t.Fatalf("wal not truncated: %d bytes, had %d", len(recovered), len(data)-5)
		}
		_ = s
	})

	t.Run("inflated length field is corruption, not a torn tail", func(t *testing.T) {
		dir, _ := prep(t)
		walPath := filepath.Join(dir, "sessions", "s_x", "wal.log")
		data, err := os.ReadFile(walPath)
		if err != nil {
			t.Fatal(err)
		}
		// Blow up the first record's length field: the declared extent now
		// overshoots the file, which must read as corruption (an intact
		// header always carries the true length) — treating it as a torn
		// tail would silently discard every durable record after it.
		data[8+3] = 0x40 // length little-endian → ~2^30
		if err := os.WriteFile(walPath, data, 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := NewFile(FileOptions{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		if _, err := st.Get("s_x"); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("get = %v, want ErrCorrupt", err)
		}
		if c := st.Counters(); c.TornTails != 0 {
			t.Fatalf("torn_wal_tails = %d, want 0", c.TornTails)
		}
	})

	t.Run("mid-log corruption is typed", func(t *testing.T) {
		dir, _ := prep(t)
		walPath := filepath.Join(dir, "sessions", "s_x", "wal.log")
		data, err := os.ReadFile(walPath)
		if err != nil {
			t.Fatal(err)
		}
		// Flip a payload byte in the first record: its extent is intact, so
		// this is bit rot, not a torn append.
		data[walHeaderLen+2] ^= 0xff
		if err := os.WriteFile(walPath, data, 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := NewFile(FileOptions{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		_, err = st.Get("s_x")
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("get = %v, want ErrCorrupt", err)
		}
		var ce *CorruptError
		if !errors.As(err, &ce) || ce.ID != "s_x" {
			t.Fatalf("corrupt error detail: %v", err)
		}
	})

	t.Run("snapshot digest mismatch is typed", func(t *testing.T) {
		dir, _ := prep(t)
		snapPath := filepath.Join(dir, "sessions", "s_x", "snapshot.json")
		data, err := os.ReadFile(snapPath)
		if err != nil {
			t.Fatal(err)
		}
		mangled := bytes.Replace(data, []byte(`"digest":"sha256:`), []byte(`"digest":"sha256:00`), 1)
		if bytes.Equal(mangled, data) {
			t.Fatal("digest field not found in snapshot")
		}
		if err := os.WriteFile(snapPath, mangled, 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := NewFile(FileOptions{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		_, err = st.Get("s_x")
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("get = %v, want ErrCorrupt", err)
		}
		var mm *session.MismatchError
		if !errors.As(err, &mm) || mm.Field != "dataset digest" {
			t.Fatalf("want wrapped digest MismatchError, got %v", err)
		}
	})

	t.Run("missing snapshot with wal is typed", func(t *testing.T) {
		dir, _ := prep(t)
		if err := os.Remove(filepath.Join(dir, "sessions", "s_x", "snapshot.json")); err != nil {
			t.Fatal(err)
		}
		st, err := NewFile(FileOptions{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		if _, err := st.Get("s_x"); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("get = %v, want ErrCorrupt", err)
		}
	})
}

func TestFileListDeleteNotFound(t *testing.T) {
	dir := t.TempDir()
	st, err := NewFile(FileOptions{Dir: dir, Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Get("s_missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get missing: %v, want ErrNotFound", err)
	}
	if err := st.Delete("s_missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("delete missing: %v, want ErrNotFound", err)
	}
	if _, err := st.Get("../escape"); !errors.Is(err, ErrInvalidID) {
		t.Fatalf("traversal id: %v, want ErrInvalidID", err)
	}

	s, cr := newTestSession(t, 5, 2, 4)
	for _, id := range []string{"s_b", "s_a"} {
		if err := st.Put(id, s); err != nil {
			t.Fatal(err)
		}
	}
	answerN(t, s, cr, 2, func() {
		if err := st.Put("s_a", s); err != nil {
			t.Fatal(err)
		}
	})
	if err := st.Flush(); err != nil { // SyncNone: flush is the durability point
		t.Fatal(err)
	}
	ids, err := st.List()
	if err != nil || !reflect.DeepEqual(ids, []string{"s_a", "s_b"}) {
		t.Fatalf("list = %v, %v", ids, err)
	}
	if err := st.Delete("s_a"); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Get("s_a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get after delete: %v, want ErrNotFound", err)
	}
	// A Put racing a Delete must not resurrect the directory.
	if err := st.Put("s_a", s); !errors.Is(err, ErrNotFound) {
		t.Fatalf("put after delete: %v, want ErrNotFound", err)
	}
	ids, err = st.List()
	if err != nil || !reflect.DeepEqual(ids, []string{"s_b"}) {
		t.Fatalf("list after delete = %v, %v", ids, err)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	if p, err := ParseSyncPolicy("always"); err != nil || p != SyncAlways {
		t.Fatalf("always: %v %v", p, err)
	}
	if p, err := ParseSyncPolicy("none"); err != nil || p != SyncNone {
		t.Fatalf("none: %v %v", p, err)
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("bogus policy accepted")
	}
}
