package persist

import (
	"time"

	"crowdtopk/internal/obs"
)

// Durability latency histograms, on the process-wide registry. These are the
// numbers persister tuning is blind without: how long an answer-batch WAL
// append takes, how much of that is the fsync, and how long snapshot
// compactions stall a session's persistence pipeline.
var (
	walAppendSeconds = obs.Default.Histogram("crowdtopk_wal_append_seconds",
		"WAL answer-batch append latency in seconds (framing + write, excluding fsync).", nil)
	walFsyncSeconds = obs.Default.Histogram("crowdtopk_wal_fsync_seconds",
		"WAL fsync latency in seconds (SyncAlways appends, flushes).", nil)
	snapshotSeconds = obs.Default.Histogram("crowdtopk_snapshot_write_seconds",
		"Full snapshot write latency in seconds (checkpoint + fsync + rename).", nil)
	recoverSeconds = obs.Default.Histogram("crowdtopk_recover_seconds",
		"Session recovery latency in seconds (snapshot restore + WAL replay).", nil)
)

// observeSince records time since start into h.
func observeSince(h *obs.Histogram, start time.Time) {
	h.Observe(time.Since(start).Seconds())
}
