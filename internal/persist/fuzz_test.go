package persist

import (
	"testing"

	"crowdtopk/internal/tpo"
)

// fuzzSeedWAL builds a small valid WAL buffer for seeding the corpus.
func fuzzSeedWAL(tb testing.TB) []byte {
	buf, err := encodeWAL(3, []tpo.Answer{
		{Q: tpo.Question{I: 0, J: 1}, Yes: true},
		{Q: tpo.Question{I: 2, J: 4}, Yes: false},
		{Q: tpo.Question{I: 1, J: 3}, Yes: true},
	})
	if err != nil {
		tb.Fatal(err)
	}
	return buf
}

// FuzzReadWAL throws arbitrary bytes at the WAL frame parser. The parser is
// the crash-recovery front line — it reads whatever a kill, a torn append or
// bit rot left on disk — so it must never panic, never over-allocate from a
// corrupt length field, and always report a truncation point inside the
// input. Torn tails and corruption must stay mutually exclusive: a torn
// verdict truncates the log, so issuing it for in-place corruption would
// silently destroy durable records.
func FuzzReadWAL(f *testing.F) {
	valid := fuzzSeedWAL(f)
	f.Add([]byte{})
	f.Add(valid)
	f.Add(valid[:len(valid)-3])           // torn inside the final CRC
	f.Add(valid[:walHeaderLen-2])         // torn inside the first header
	f.Add(append([]byte{0xff}, valid...)) // garbage header
	flipped := append([]byte(nil), valid...)
	flipped[walHeaderLen+1] ^= 0x40 // payload bit flip → CRC mismatch
	f.Add(flipped)
	oversize := append([]byte(nil), valid...)
	oversize[8] = 0xff // declared length 0xffff_ff.. → over maxWALPayload
	oversize[9] = 0xff
	oversize[10] = 0xff
	f.Add(oversize)

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, validEnd, torn, err := readWAL(data)
		if validEnd < 0 || validEnd > int64(len(data)) {
			t.Fatalf("validEnd %d outside [0, %d]", validEnd, len(data))
		}
		if torn && err != nil {
			t.Fatalf("torn and corrupt at once: %v", err)
		}
		if err == nil && !torn && validEnd != int64(len(data)) {
			t.Fatalf("clean parse consumed %d of %d bytes", validEnd, len(data))
		}
		for i := 1; i < len(recs); i++ {
			if recs[i].Seq <= recs[i-1].Seq {
				t.Fatalf("non-monotonic seqs escaped the parser: %d after %d", recs[i].Seq, recs[i-1].Seq)
			}
		}
		// The reported truncation point must itself parse cleanly — recovery
		// truncates to validEnd and then trusts the remainder.
		again, end2, torn2, err2 := readWAL(data[:validEnd])
		if err2 != nil || torn2 || end2 != validEnd || len(again) != len(recs) {
			t.Fatalf("truncation point unstable: %d recs to %d (torn=%v err=%v), first pass %d recs to %d",
				len(again), end2, torn2, err2, len(recs), validEnd)
		}
	})
}
