package persist

import (
	"bytes"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"time"

	"crowdtopk/internal/par"
	"crowdtopk/internal/session"
)

// SyncPolicy selects how eagerly the file backend calls fsync on WAL
// appends. Snapshots are always synced and atomically renamed regardless of
// the policy: they are the recovery base.
type SyncPolicy string

const (
	// SyncAlways fsyncs the WAL after every appended answer batch: an
	// acknowledged answer survives power loss, at the price of one fsync
	// per accepted batch.
	SyncAlways SyncPolicy = "always"
	// SyncNone leaves WAL durability to the OS page cache (plus Flush on
	// graceful shutdown): a hard crash may lose the most recent answers,
	// which the crowd platform would then be asked to re-deliver.
	SyncNone SyncPolicy = "none"
)

// ParseSyncPolicy maps the -fsync flag value to a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch SyncPolicy(s) {
	case SyncAlways:
		return SyncAlways, nil
	case SyncNone:
		return SyncNone, nil
	}
	return "", fmt.Errorf("persist: unknown fsync policy %q (want %q or %q)", s, SyncAlways, SyncNone)
}

// DefaultSnapshotEvery is the compaction cadence: after this many answers
// accumulate in a session's WAL, Put folds them into a fresh snapshot and
// truncates the log.
const DefaultSnapshotEvery = 64

// FileOptions configures a file-backed store.
type FileOptions struct {
	// Dir is the data directory; sessions live under Dir/sessions/<id>/.
	Dir string
	// SnapshotEvery compacts a session's WAL into a fresh snapshot after
	// this many appended answers (0 = DefaultSnapshotEvery).
	SnapshotEvery int
	// Sync is the WAL fsync policy (empty = SyncAlways).
	Sync SyncPolicy
	// Pool optionally lends recoveries the process-wide worker budget for
	// their tree rebuilds.
	Pool *par.Budget
}

// File is the durable Store: one directory per session holding a full
// snapshot (the session checkpoint envelope, reused verbatim) plus an
// append-only CRC-framed WAL of the answers accepted since. See the package
// comment for the recovery semantics.
type File struct {
	dir           string // <Dir>/sessions
	snapshotEvery int
	sync          SyncPolicy
	pool          *par.Budget
	c             counters

	mu       sync.Mutex
	sessions map[string]*fileSession
	closed   bool
}

// fileSession is the in-memory bookkeeping for one session's directory. Its
// lock serializes that session's disk operations; distinct sessions do not
// contend.
type fileSession struct {
	mu         sync.Mutex
	wal        *os.File // append handle, opened lazily
	walCount   int      // records currently in the WAL
	walSize    int64    // bytes of intact records in the WAL file
	walDamaged bool     // a failed append may have left a partial frame past walSize
	persisted  int      // answers durably recorded (snapshot + WAL); -1 = unknown
	deleted    bool     // Delete won a race; late Puts must not resurrect the dir
}

// NewFile opens (creating if needed) a file-backed store rooted at
// opts.Dir.
func NewFile(opts FileOptions) (*File, error) {
	if opts.Dir == "" {
		return nil, errors.New("persist: file store needs a directory")
	}
	if opts.SnapshotEvery <= 0 {
		opts.SnapshotEvery = DefaultSnapshotEvery
	}
	if opts.Sync == "" {
		opts.Sync = SyncAlways
	}
	if _, err := ParseSyncPolicy(string(opts.Sync)); err != nil {
		return nil, err
	}
	root := filepath.Join(opts.Dir, "sessions")
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("persist: creating %s: %w", root, err)
	}
	return &File{
		dir:           root,
		snapshotEvery: opts.SnapshotEvery,
		sync:          opts.Sync,
		pool:          opts.Pool,
		sessions:      make(map[string]*fileSession),
	}, nil
}

// Counters reports the store's activity counters.
func (f *File) Counters() CounterSnapshot { return f.c.snapshot() }

func (f *File) sessionDir(id string) string { return filepath.Join(f.dir, id) }
func (f *File) snapPath(id string) string   { return filepath.Join(f.dir, id, "snapshot.json") }
func (f *File) walPath(id string) string    { return filepath.Join(f.dir, id, "wal.log") }

// state returns (creating if needed) the session's bookkeeping entry.
func (f *File) state(id string) (*fileSession, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, ErrClosed
	}
	st, ok := f.sessions[id]
	if !ok {
		st = &fileSession{persisted: -1}
		f.sessions[id] = st
	}
	return st, nil
}

// Put appends the answers accepted since the previous Put to the session's
// WAL (fsyncing per policy) and compacts into a fresh snapshot when the WAL
// has grown past SnapshotEvery or the session reached a terminal state. The
// first Put for an id this store instance has no bookkeeping for writes a
// full snapshot.
func (f *File) Put(id string, sess *session.Session) error {
	if err := ValidateID(id); err != nil {
		return err
	}
	st, err := f.state(id)
	if err != nil {
		return err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.deleted {
		return ErrNotFound
	}
	delta, total := sess.AnswersSince(max(st.persisted, 0))
	if st.persisted < 0 || st.persisted > total {
		// Unknown on-disk state (fresh session, or a session this instance
		// never loaded) — or bookkeeping that cannot match this session
		// object. Re-base on a full snapshot.
		return f.writeSnapshot(id, st, sess)
	}
	if len(delta) > 0 {
		if err := f.openWALForAppend(id, st); err != nil {
			return err
		}
		buf, err := encodeWAL(uint64(st.persisted), delta)
		if err != nil {
			return fmt.Errorf("persist: appending wal for %s: %w", id, err)
		}
		start := time.Now()
		if _, err := st.wal.Write(buf); err != nil {
			// The kernel may have persisted a prefix of the buffer before
			// failing: everything past walSize is now suspect, and the next
			// append must truncate it first or recovery would mistake the
			// partial frame for a torn tail and drop the retried records.
			st.walDamaged = true
			return fmt.Errorf("persist: appending wal for %s: %w", id, err)
		}
		st.walSize += int64(len(buf))
		observeSince(walAppendSeconds, start)
		if f.sync == SyncAlways {
			start = time.Now()
			if err := st.wal.Sync(); err != nil {
				return fmt.Errorf("persist: syncing wal for %s: %w", id, err)
			}
			observeSince(walFsyncSeconds, start)
			f.c.fsyncs.Add(1)
		}
		f.c.walAppends.Add(uint64(len(delta)))
		st.walCount += len(delta)
		st.persisted = total
	}
	if st.walCount >= f.snapshotEvery || (st.walCount > 0 && sess.Status().State.Terminal()) {
		return f.writeSnapshot(id, st, sess)
	}
	return nil
}

// openWALForAppend lazily opens the session's WAL append handle and, when a
// previous failed append may have left a partial frame behind, truncates the
// file back to its last intact byte so retried records land clean. Called
// with st.mu held.
func (f *File) openWALForAppend(id string, st *fileSession) error {
	if st.wal == nil {
		w, err := os.OpenFile(f.walPath(id), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("persist: opening wal for %s: %w", id, err)
		}
		st.wal = w
	}
	if st.walDamaged {
		if err := st.wal.Truncate(st.walSize); err != nil {
			return fmt.Errorf("persist: truncating damaged wal tail for %s: %w", id, err)
		}
		st.walDamaged = false
	}
	return nil
}

// putTorn is the torn-write hook behind FaultStore: it performs Put's WAL
// append but deliberately cuts the last cut bytes off the encoded batch,
// leaving a partial frame on disk — what a crash or full disk mid-append
// produces — then reports failure without advancing any bookkeeping, exactly
// as a real short write would.
func (f *File) putTorn(id string, sess *session.Session, cut int) error {
	if err := ValidateID(id); err != nil {
		return err
	}
	st, err := f.state(id)
	if err != nil {
		return err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.deleted {
		return ErrNotFound
	}
	delta, total := sess.AnswersSince(max(st.persisted, 0))
	if st.persisted < 0 || st.persisted > total || len(delta) == 0 {
		// Snapshot-path Puts have no append to tear; fail them plainly.
		return fmt.Errorf("%w: torn put for %s (snapshot path)", ErrInjected, id)
	}
	if err := f.openWALForAppend(id, st); err != nil {
		return err
	}
	buf, err := encodeWAL(uint64(st.persisted), delta)
	if err != nil {
		return err
	}
	if cut < 1 {
		cut = 1
	}
	if cut >= len(buf) {
		cut = len(buf) - 1
	}
	if _, err := st.wal.Write(buf[:len(buf)-cut]); err != nil {
		st.walDamaged = true
		return fmt.Errorf("persist: appending wal for %s: %w", id, err)
	}
	st.walDamaged = true
	return fmt.Errorf("%w: torn wal append for %s (%d of %d bytes)", ErrInjected, id, len(buf)-cut, len(buf))
}

// writeSnapshot checkpoints the session, atomically replaces snapshot.json,
// and truncates the WAL. Called with st.mu held. The rename-then-truncate
// order is crash-safe: a crash between the two leaves low-seq WAL records
// that recovery skips by sequence number.
func (f *File) writeSnapshot(id string, st *fileSession, sess *session.Session) error {
	defer observeSince(snapshotSeconds, time.Now())
	var buf bytes.Buffer
	if err := sess.Checkpoint(&buf); err != nil {
		return fmt.Errorf("persist: checkpointing %s: %w", id, err)
	}
	info, err := session.PeekCheckpoint(buf.Bytes())
	if err != nil {
		return fmt.Errorf("persist: checkpointing %s: %w", id, err)
	}
	dir := f.sessionDir(id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("persist: creating %s: %w", dir, err)
	}
	tmp := f.snapPath(id) + ".tmp"
	w, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("persist: writing snapshot for %s: %w", id, err)
	}
	_, werr := w.Write(buf.Bytes())
	if werr == nil {
		// Snapshots sync regardless of policy: they are the recovery base,
		// and one fsync per compaction (not per answer) is cheap.
		werr = w.Sync()
		f.c.fsyncs.Add(1)
	}
	if cerr := w.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("persist: writing snapshot for %s: %w", id, werr)
	}
	if err := os.Rename(tmp, f.snapPath(id)); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("persist: replacing snapshot for %s: %w", id, err)
	}
	f.syncDir(dir)
	// The snapshot covers everything: drop the WAL.
	if st.wal != nil {
		_ = st.wal.Close()
		st.wal = nil
	}
	if err := os.Remove(f.walPath(id)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("persist: truncating wal for %s: %w", id, err)
	}
	st.walCount = 0
	st.walSize = 0
	st.walDamaged = false
	st.persisted = info.Asked
	f.c.snapshots.Add(1)
	return nil
}

// syncDir best-effort-fsyncs a directory so a rename survives power loss.
func (f *File) syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	if d.Sync() == nil {
		f.c.fsyncs.Add(1)
	}
	_ = d.Close()
}

// Get rebuilds the session: restore the snapshot, then replay the WAL tail
// through the session's own SubmitAnswer transition. Records the snapshot
// already covers are skipped by sequence number; a torn final record is
// dropped and the log truncated to its last intact byte; any other
// inconsistency is a *CorruptError.
func (f *File) Get(id string) (*session.Session, error) {
	if err := ValidateID(id); err != nil {
		return nil, err
	}
	st, err := f.state(id)
	if err != nil {
		return nil, err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.deleted {
		return nil, ErrNotFound
	}
	defer observeSince(recoverSeconds, time.Now())
	snap, err := os.ReadFile(f.snapPath(id))
	if errors.Is(err, fs.ErrNotExist) {
		if _, derr := os.Stat(f.sessionDir(id)); derr == nil {
			// A session directory without its snapshot cannot be recovered:
			// the WAL is a delta over a base that is gone.
			return nil, &CorruptError{ID: id, Path: f.snapPath(id), Err: errors.New("session directory exists but snapshot is missing")}
		}
		return nil, ErrNotFound
	}
	if err != nil {
		return nil, fmt.Errorf("persist: reading snapshot for %s: %w", id, err)
	}
	sess, err := session.Restore(bytes.NewReader(snap), f.pool)
	if err != nil {
		// Digest/schema/kind mismatches and undecodable envelopes all mean
		// the base cannot be trusted.
		return nil, &CorruptError{ID: id, Path: f.snapPath(id), Err: err}
	}
	base := sess.Status().Asked

	walData, err := os.ReadFile(f.walPath(id))
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("persist: reading wal for %s: %w", id, err)
	}
	recs, validEnd, torn, rerr := readWAL(walData)
	if rerr != nil {
		return nil, &CorruptError{ID: id, Path: f.walPath(id), Err: rerr}
	}
	replayed := 0
	for _, rec := range recs {
		if rec.Seq < uint64(base) {
			continue // covered by the snapshot (compaction crash window)
		}
		if rec.Seq != uint64(base+replayed) {
			return nil, &CorruptError{ID: id, Path: f.walPath(id),
				Err: fmt.Errorf("wal gap: record seq %d where %d was expected", rec.Seq, base+replayed)}
		}
		if err := sess.SubmitAnswer(rec.Answer); err != nil {
			return nil, &CorruptError{ID: id, Path: f.walPath(id),
				Err: fmt.Errorf("replaying record seq %d: %w", rec.Seq, err)}
		}
		replayed++
	}
	if torn {
		f.c.tornTails.Add(1)
		if err := os.Truncate(f.walPath(id), validEnd); err != nil {
			return nil, fmt.Errorf("persist: truncating torn wal for %s: %w", id, err)
		}
	}
	if st.wal != nil {
		_ = st.wal.Close()
		st.wal = nil
	}
	st.walCount = len(recs)
	st.walSize = validEnd
	st.walDamaged = false
	st.persisted = base + replayed
	f.c.replays.Add(uint64(replayed))
	f.c.recovered.Add(1)
	return sess, nil
}

// Delete removes the session's directory and bookkeeping.
func (f *File) Delete(id string) error {
	if err := ValidateID(id); err != nil {
		return err
	}
	st, err := f.state(id)
	if err != nil {
		return err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.deleted {
		return ErrNotFound
	}
	if st.wal != nil {
		_ = st.wal.Close()
		st.wal = nil
	}
	if _, serr := os.Stat(f.sessionDir(id)); errors.Is(serr, fs.ErrNotExist) {
		return ErrNotFound
	}
	if err := os.RemoveAll(f.sessionDir(id)); err != nil {
		return fmt.Errorf("persist: deleting %s: %w", id, err)
	}
	// Tombstone rather than forget: a Put queued behind this Delete (the
	// async persister racing a DELETE request) must not resurrect the
	// directory. Ids are random and never reused, so tombstones are tiny.
	st.deleted = true
	return nil
}

// List returns the ids of every stored session, sorted (os.ReadDir order).
func (f *File) List() ([]string, error) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil, ErrClosed
	}
	f.mu.Unlock()
	entries, err := os.ReadDir(f.dir)
	if err != nil {
		return nil, fmt.Errorf("persist: listing %s: %w", f.dir, err)
	}
	var ids []string
	for _, e := range entries {
		if e.IsDir() && ValidateID(e.Name()) == nil {
			ids = append(ids, e.Name())
		}
	}
	return ids, nil
}

// Flush fsyncs every open WAL, making all accepted Puts durable under any
// sync policy (the graceful-shutdown path relies on this with SyncNone).
func (f *File) Flush() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return ErrClosed
	}
	states := make([]*fileSession, 0, len(f.sessions))
	for _, st := range f.sessions {
		states = append(states, st)
	}
	f.mu.Unlock()
	var first error
	for _, st := range states {
		st.mu.Lock()
		if st.wal != nil {
			start := time.Now()
			if err := st.wal.Sync(); err != nil && first == nil {
				first = fmt.Errorf("persist: flush: %w", err)
			} else if err == nil {
				observeSince(walFsyncSeconds, start)
				f.c.fsyncs.Add(1)
			}
		}
		st.mu.Unlock()
	}
	return first
}

// Close flushes and releases every open file. The store is unusable after;
// Close is idempotent.
func (f *File) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	states := make([]*fileSession, 0, len(f.sessions))
	for _, st := range f.sessions {
		states = append(states, st)
	}
	f.closed = true
	f.mu.Unlock()
	var first error
	for _, st := range states {
		st.mu.Lock()
		if st.wal != nil {
			if err := st.wal.Sync(); err == nil {
				f.c.fsyncs.Add(1)
			} else if first == nil {
				first = fmt.Errorf("persist: close: %w", err)
			}
			if err := st.wal.Close(); err != nil && first == nil {
				first = fmt.Errorf("persist: close: %w", err)
			}
			st.wal = nil
		}
		st.mu.Unlock()
	}
	return first
}
