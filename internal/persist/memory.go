package persist

import (
	"hash/fnv"
	"sort"
	"sync"

	"crowdtopk/internal/session"
)

// memShards is the fixed shard count of the in-memory store. 32 shards keep
// lock contention negligible for the session counts one process serves while
// costing a few hundred bytes when idle.
const memShards = 32

// Memory is the sharded in-memory Store: the serving layer's live-session
// table (its cache tier over a durable backend) and the sole store of
// memory-only deployments, where sessions deliberately die with the process.
// All methods are safe for concurrent use; operations on distinct ids in
// distinct shards do not contend.
type Memory struct {
	shards [memShards]memShard
	closed sync.Once
	dead   chan struct{}
}

type memShard struct {
	mu sync.RWMutex
	m  map[string]*session.Session
}

// NewMemory returns an empty sharded in-memory store.
func NewMemory() *Memory {
	s := &Memory{dead: make(chan struct{})}
	for i := range s.shards {
		s.shards[i].m = make(map[string]*session.Session)
	}
	return s
}

func (s *Memory) shard(id string) *memShard {
	h := fnv.New32a()
	_, _ = h.Write([]byte(id))
	return &s.shards[h.Sum32()%memShards]
}

func (s *Memory) isClosed() bool {
	select {
	case <-s.dead:
		return true
	default:
		return false
	}
}

// Put stores (or replaces) the session under id.
func (s *Memory) Put(id string, sess *session.Session) error {
	if err := ValidateID(id); err != nil {
		return err
	}
	if s.isClosed() {
		return ErrClosed
	}
	sh := s.shard(id)
	sh.mu.Lock()
	sh.m[id] = sess
	sh.mu.Unlock()
	return nil
}

// Get returns the stored session.
func (s *Memory) Get(id string) (*session.Session, error) {
	if s.isClosed() {
		return nil, ErrClosed
	}
	sh := s.shard(id)
	sh.mu.RLock()
	sess, ok := sh.m[id]
	sh.mu.RUnlock()
	if !ok {
		return nil, ErrNotFound
	}
	return sess, nil
}

// Delete removes the session.
func (s *Memory) Delete(id string) error {
	if s.isClosed() {
		return ErrClosed
	}
	sh := s.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.m[id]; !ok {
		return ErrNotFound
	}
	delete(sh.m, id)
	return nil
}

// List returns all stored ids, sorted.
func (s *Memory) List() ([]string, error) {
	if s.isClosed() {
		return nil, ErrClosed
	}
	var ids []string
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for id := range sh.m {
			ids = append(ids, id)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(ids)
	return ids, nil
}

// Len reports the number of stored sessions.
func (s *Memory) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// Flush is a no-op: memory is always current.
func (s *Memory) Flush() error { return nil }

// Close drops every session and marks the store unusable. Idempotent.
func (s *Memory) Close() error {
	s.closed.Do(func() {
		close(s.dead)
		for i := range s.shards {
			sh := &s.shards[i]
			sh.mu.Lock()
			sh.m = make(map[string]*session.Session)
			sh.mu.Unlock()
		}
	})
	return nil
}
