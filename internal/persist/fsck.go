package persist

import (
	"bytes"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"

	"crowdtopk/internal/par"
	"crowdtopk/internal/session"
)

// FsckOptions configures an offline data-dir health check.
type FsckOptions struct {
	// Repair truncates repairable torn WAL tails in place (the same repair
	// recovery applies lazily, done eagerly and reported).
	Repair bool
	// Deep fully restores each snapshot (digest verification, tree rebuild)
	// and replays its WAL through the session transition instead of only
	// validating framing — slow but exhaustive.
	Deep bool
	// Pool optionally lends deep restores the process worker budget.
	Pool *par.Budget
}

// SessionFsck is the health report for one stored session.
type SessionFsck struct {
	ID            string `json:"id"`
	State         string `json:"state,omitempty"`
	Asked         int    `json:"asked"`
	WALRecords    int    `json:"wal_records"`
	TornTailBytes int64  `json:"torn_tail_bytes,omitempty"`
	Repaired      bool   `json:"repaired,omitempty"`
	SnapshotError string `json:"snapshot_error,omitempty"`
	WALError      string `json:"wal_error,omitempty"`
	ReplayError   string `json:"replay_error,omitempty"`
	Healthy       bool   `json:"healthy"`
}

// FsckReport is the health report for a whole data directory.
type FsckReport struct {
	Dir         string           `json:"dir"`
	Sessions    []SessionFsck    `json:"sessions"`
	Quarantined []QuarantineInfo `json:"quarantined,omitempty"`
	Healthy     int              `json:"healthy"`
	Unhealthy   int              `json:"unhealthy"`
	TornTails   int              `json:"torn_tails"`
	Repaired    int              `json:"repaired"`
}

// Fsck walks a file-backed store's data directory offline and reports
// per-session snapshot/WAL health, optionally repairing truncatable torn WAL
// tails. A torn tail alone does not make a session unhealthy — recovery
// tolerates it — but it is reported so an operator knows a crash landed
// mid-append. Run it against a stopped server (or a copy): it opens files a
// live server is appending to.
func Fsck(dir string, opts FsckOptions) (*FsckReport, error) {
	if dir == "" {
		return nil, errors.New("persist: fsck needs a data directory")
	}
	root := filepath.Join(dir, "sessions")
	rep := &FsckReport{Dir: dir}
	entries, err := os.ReadDir(root)
	if errors.Is(err, fs.ErrNotExist) {
		// A data dir that never persisted a session is trivially healthy,
		// but a path that does not exist at all is an operator typo.
		if _, derr := os.Stat(dir); derr != nil {
			return nil, fmt.Errorf("persist: fsck: %w", derr)
		}
		return rep, nil
	}
	if err != nil {
		return nil, fmt.Errorf("persist: fsck: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() || ValidateID(e.Name()) != nil {
			continue
		}
		s := fsckSession(root, e.Name(), opts)
		rep.Sessions = append(rep.Sessions, s)
		if s.Healthy {
			rep.Healthy++
		} else {
			rep.Unhealthy++
		}
		if s.TornTailBytes > 0 {
			rep.TornTails++
		}
		if s.Repaired {
			rep.Repaired++
		}
	}
	sort.Slice(rep.Sessions, func(i, j int) bool { return rep.Sessions[i].ID < rep.Sessions[j].ID })
	qroot := filepath.Join(dir, "quarantine")
	if qents, qerr := os.ReadDir(qroot); qerr == nil {
		for _, e := range qents {
			if e.IsDir() && ValidateID(e.Name()) == nil {
				rep.Quarantined = append(rep.Quarantined, readQuarantineMarker(qroot, e.Name()))
			}
		}
		sort.Slice(rep.Quarantined, func(i, j int) bool { return rep.Quarantined[i].ID < rep.Quarantined[j].ID })
	}
	return rep, nil
}

// fsckSession checks one session directory without mutating it (except the
// opted-in torn-tail truncation).
func fsckSession(root, id string, opts FsckOptions) SessionFsck {
	s := SessionFsck{ID: id}
	snapPath := filepath.Join(root, id, "snapshot.json")
	walPath := filepath.Join(root, id, "wal.log")

	snap, err := os.ReadFile(snapPath)
	var sess *session.Session
	switch {
	case errors.Is(err, fs.ErrNotExist):
		s.SnapshotError = "snapshot missing (wal is a delta over a base that is gone)"
	case err != nil:
		s.SnapshotError = err.Error()
	case opts.Deep:
		sess, err = session.Restore(bytes.NewReader(snap), opts.Pool)
		if err != nil {
			s.SnapshotError = err.Error()
		} else {
			st := sess.Status()
			s.State = string(st.State)
			s.Asked = st.Asked
		}
	default:
		info, perr := session.PeekCheckpoint(snap)
		if perr != nil {
			s.SnapshotError = perr.Error()
		} else {
			s.State = string(info.State)
			s.Asked = info.Asked
		}
	}

	walData, err := os.ReadFile(walPath)
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		s.WALError = err.Error()
	} else if len(walData) > 0 {
		recs, validEnd, torn, rerr := readWAL(walData)
		s.WALRecords = len(recs)
		if rerr != nil {
			s.WALError = rerr.Error()
		}
		if torn {
			s.TornTailBytes = int64(len(walData)) - validEnd
			if opts.Repair {
				if terr := os.Truncate(walPath, validEnd); terr != nil {
					s.WALError = terr.Error()
				} else {
					s.Repaired = true
				}
			}
		}
		if opts.Deep && sess != nil && rerr == nil {
			s.ReplayError = fsckReplay(sess, recs)
			if s.ReplayError == "" {
				s.Asked = sess.Status().Asked
			}
		}
	}
	s.Healthy = s.SnapshotError == "" && s.WALError == "" && s.ReplayError == ""
	return s
}

// fsckReplay replays decoded WAL records through the restored session the
// same way recovery does, returning the first inconsistency as a string.
func fsckReplay(sess *session.Session, recs []walRecord) string {
	base := sess.Status().Asked
	replayed := 0
	for _, rec := range recs {
		if rec.Seq < uint64(base) {
			continue // covered by the snapshot (compaction crash window)
		}
		if rec.Seq != uint64(base+replayed) {
			return fmt.Sprintf("wal gap: record seq %d where %d was expected", rec.Seq, base+replayed)
		}
		if err := sess.SubmitAnswer(rec.Answer); err != nil {
			return fmt.Sprintf("replaying record seq %d: %v", rec.Seq, err)
		}
		replayed++
	}
	return ""
}
