// Package service is the transport-agnostic core of the crowdtopk serving
// stack: every session operation the system offers — create or restore,
// question delivery, answer intake with partial-batch accounting, result and
// checkpoint retrieval, deletion, listing, stats — as typed Go calls over
// typed request/response structs and typed errors, with no notion of HTTP.
//
// The Service owns everything a long-running deployment needs regardless of
// how requests arrive: the two-tier session store (live in-memory cache over
// an optional durable persist.Store, with asynchronous write-behind, lazy
// hydration and TTL eviction-to-disk), the process-wide par.Budget worker
// pool shared by all sessions' tree builds, reservation-before-build load
// shedding, and graceful close (drain the persister, flush, release).
//
// Transports are thin codecs over this core: internal/server decodes HTTP
// requests into these calls and encodes the results (mapping the typed
// errors to statuses in exactly one place), and the public crowdtopk/sdk
// package exposes the same lifecycle to in-process embedders with no server
// at all. Both speak to the same Service, so behavior cannot drift between
// them — the parity suite in internal/server pins that.
package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"time"

	"crowdtopk/internal/dataset"
	"crowdtopk/internal/dist"
	"crowdtopk/internal/obs"
	"crowdtopk/internal/par"
	"crowdtopk/internal/pcache"
	"crowdtopk/internal/persist"
	"crowdtopk/internal/selection"
	"crowdtopk/internal/session"
	"crowdtopk/internal/tpo"
)

// Config tunes the service core.
type Config struct {
	// Workers is the process-wide worker budget shared by every session's
	// tree builds and extensions (0 = GOMAXPROCS).
	Workers int
	// TTL evicts sessions idle longer than this (0 = never evict). With a
	// durable backend eviction moves the session to disk; without one it
	// drops the session for good.
	TTL time.Duration
	// MaxSessions bounds live in-memory sessions; creates beyond it fail
	// with ErrFull (0 = unbounded). Lazy hydration of persisted sessions is
	// exempt: a session returning from disk is served, not shed.
	MaxSessions int
	// Persist optionally attaches a durable session store. The service owns
	// it from then on: Close flushes and closes it.
	Persist persist.Store
	// Logger receives structured operational logs: boot scan, recovery,
	// hydration, persist failures, evictions. nil disables logging.
	Logger *slog.Logger
	// Audit optionally attaches an answer audit log: the service emits one
	// event per accepted answer batch and owns the log from then on (Close
	// drains it).
	Audit *obs.AuditLog
	// RateLimit admits at most this many requests per second per client
	// through Admit, sustained, with RateBurst headroom (0 = unlimited).
	RateLimit float64
	// RateBurst is the per-client token-bucket depth (0 = one second's worth
	// of RateLimit, at least 1).
	RateBurst int
	// MaxInflight caps concurrently admitted requests across all clients;
	// excess requests fail fast with ErrOverloaded instead of queueing into
	// the shared worker pool (0 = uncapped).
	MaxInflight int
	// ShutdownTimeout bounds how long Close waits for the final durable
	// drain (0 = DefaultShutdownTimeout). A wedged backend must not hang
	// SIGTERM forever; sessions still dirty at the deadline are abandoned
	// with a logged list of ids.
	ShutdownTimeout time.Duration
	// Tracer optionally attaches the request tracer: every operation then
	// records a span tree (service op, session transitions, selection
	// phases, hydration), slow requests are logged with their breakdown and
	// audited with the trace id, and /metrics gains per-component self-time
	// histograms. nil (or a rate-0 tracer) disables tracing.
	Tracer *obs.Tracer
	// EnablePprof is consumed by HTTP transports (internal/server) to mount
	// net/http/pprof under /debug/pprof; the service core ignores it. It
	// lives here because the server's Config is this struct verbatim.
	EnablePprof bool
}

// DefaultTTL is the idle eviction default used by the serve subcommand and
// the SDK.
const DefaultTTL = 30 * time.Minute

// DefaultShutdownTimeout bounds the Close-time durable drain when
// Config.ShutdownTimeout is zero.
const DefaultShutdownTimeout = 10 * time.Second

// ErrBadInput reports a request the service cannot act on: a malformed
// answer batch, an out-of-range argument. Transports map it to their
// invalid-argument failure (HTTP 400).
var ErrBadInput = errors.New("service: invalid argument")

// BatchError reports an answer batch that failed partway: Accepted answers
// were applied (and stay applied) before Err stopped the batch. Unwrap
// exposes Err so errors.Is/As classify the batch by its cause.
type BatchError struct {
	Accepted int
	Err      error
}

func (e *BatchError) Error() string {
	return fmt.Sprintf("%v (after %d accepted answers)", e.Err, e.Accepted)
}

func (e *BatchError) Unwrap() error { return e.Err }

// StorageError reports a durable-tier failure (hydration I/O, on-disk
// corruption). It is typed so transports can report a server-side fault even
// when the wrapped cause would otherwise classify as client input — a
// corrupted snapshot must not convince anyone the request was wrong.
type StorageError struct {
	Op  string
	Err error
}

func (e *StorageError) Error() string { return fmt.Sprintf("service: %s: %v", e.Op, e.Err) }

func (e *StorageError) Unwrap() error { return e.Err }

// ErrQuarantined is the errors.Is target for requests against a session
// whose durable copy was corrupt and has been moved to the quarantine area.
// Unlike a transient StorageError the condition is permanent until an
// operator intervenes (fsck, restore from the quarantine dir, or delete), so
// transports map it to a "gone" failure rather than a retryable 5xx.
var ErrQuarantined = errors.New("service: session quarantined")

// QuarantinedError identifies which session is quarantined and why (one of
// the persist.Reason* constants).
type QuarantinedError struct {
	ID     string
	Reason string
}

func (e *QuarantinedError) Error() string {
	return fmt.Sprintf("service: session %s quarantined (%s): durable copy is unrecoverable", e.ID, e.Reason)
}

// Is makes errors.Is(err, ErrQuarantined) true for every QuarantinedError.
func (e *QuarantinedError) Is(target error) bool { return target == ErrQuarantined }

// Service is the engine-facing session core. Create one with New and Close
// it when done; all methods are safe for concurrent use.
type Service struct {
	store  *store
	pool   *par.Budget
	gate   *gate
	audit  *obs.AuditLog
	log    *slog.Logger
	tracer *obs.Tracer
}

// New builds a service with its own session store and worker budget. With
// cfg.Persist set it also scans the backend so every persisted session is
// immediately addressable (sessions hydrate lazily on first access), and
// takes ownership of the backend. The new service also claims the
// process-wide metric collectors (sessions, pool, π-cache, persistence).
func New(cfg Config) (*Service, error) {
	logger := cfg.Logger
	if logger == nil {
		logger = obs.NopLogger()
	}
	// Breaker transitions are operator-grade events: counted, and written to
	// the audit log so a degraded-mode episode leaves a durable trace next
	// to the answers it may have delayed.
	onBreaker := func(from, to string) {
		mBreakerTransitions.With(to).Inc()
		if cfg.Audit != nil {
			cfg.Audit.Log(auditBreakerEvent{
				Time: time.Now().UTC().Format(time.RFC3339Nano),
				Kind: "degraded_mode",
				From: from,
				To:   to,
			})
		}
	}
	st, err := newStore(cfg.TTL, cfg.MaxSessions, cfg.Persist, logger, cfg.ShutdownTimeout, onBreaker)
	if err != nil {
		return nil, err
	}
	s := &Service{
		store:  st,
		pool:   par.NewBudget(cfg.Workers),
		gate:   newGate(cfg.RateLimit, cfg.RateBurst, cfg.MaxInflight),
		audit:  cfg.Audit,
		log:    logger,
		tracer: cfg.Tracer,
	}
	if s.tracer.Enabled() {
		s.tracer.SetOnSlow(s.onSlowTrace)
	}
	s.registerCollectors()
	return s, nil
}

// Tracer returns the attached request tracer (nil when tracing is off).
// Transports start their root spans through it and serve its trace ring.
func (s *Service) Tracer() *obs.Tracer { return s.tracer }

// onSlowTrace is the tracer's slow-request callback: the full span breakdown
// goes to the structured log, and — when an audit log is attached — a
// slow_request event joins the trace id to the durable audit stream.
func (s *Service) onSlowTrace(td obs.TraceData) {
	breakdown := obs.SelfTimeBreakdown(td)
	s.log.Warn("slow request",
		"trace", td.TraceID,
		"route", td.Route,
		"status", td.Status,
		"duration_ms", td.DurationMS,
		"spans", len(td.Spans),
		"breakdown", obs.FormatBreakdown(breakdown),
	)
	if s.audit != nil {
		s.audit.Log(auditSlowEvent{
			Time:       time.Now().UTC().Format(time.RFC3339Nano),
			Kind:       "slow_request",
			Trace:      td.TraceID,
			Route:      td.Route,
			Status:     td.Status,
			DurationMS: td.DurationMS,
			Breakdown:  breakdown,
		})
	}
}

// auditSlowEvent is the audit-log record for a slow request: the trace id
// joins it to the retained trace in /debug/traces and to the request's
// access-log line.
type auditSlowEvent struct {
	Time       string             `json:"time"`
	Kind       string             `json:"kind"` // "slow_request"
	Trace      string             `json:"trace"`
	Route      string             `json:"route,omitempty"`
	Status     int                `json:"status,omitempty"`
	DurationMS float64            `json:"duration_ms"`
	Breakdown  map[string]float64 `json:"breakdown_ms"`
}

// Close stops background eviction, flushes every dirty session to the
// durable backend (when one is configured) and closes it, drops all live
// sessions, then drains the audit log. Idempotent.
func (s *Service) Close() {
	s.store.close()
	if s.audit != nil {
		s.audit.Close()
	}
}

// Flush synchronously pushes every pending durable write to the backend and
// syncs it. A no-op without a backend.
func (s *Service) Flush() { s.store.flush() }

// SessionCount reports the number of live (in-memory) sessions.
func (s *Service) SessionCount() int { return s.store.len() }

// Admit runs the admission decision for one request from client: the
// per-client token bucket first, then the global max-inflight cap. On
// success the returned release must be called when the request finishes; on
// failure release is nil and the error is a *RateLimitError (client over its
// sustained rate; carries RetryAfter) or ErrOverloaded (server at capacity).
// With neither mechanism configured every request is admitted for free.
func (s *Service) Admit(client string) (release func(), err error) {
	if s.gate == nil {
		return func() {}, nil
	}
	release, err = s.gate.admit(client)
	if err != nil {
		reason := "inflight"
		if errors.Is(err, ErrRateLimited) {
			reason = "rate"
		}
		mAdmissionRejected.With(reason).Inc()
	}
	return release, err
}

// HealthView is the health/readiness snapshot. Ready is the conjunction the
// serving layer reports on GET /ready: the durable backend's boot scan
// completed, the session pool has capacity for another create, the most
// recent durable write did not fail, and the durable tier's circuit breaker
// is closed.
type HealthView struct {
	Ready           bool `json:"ready"`
	BootScanDone    bool `json:"boot_scan_done"`
	PoolSaturated   bool `json:"pool_saturated"`
	PersistErroring bool `json:"persist_erroring"`
	// DegradedMode: the durable-tier breaker is open (or probing): the
	// service serves from the live tier, queues dirty sessions, and refuses
	// evictions until the backend heals.
	DegradedMode bool     `json:"degraded_mode"`
	BreakerState string   `json:"breaker_state,omitempty"`
	Reasons      []string `json:"reasons,omitempty"`
	// Build identity, mirroring the crowdtopk_build_info gauge on /metrics:
	// the probe and the scrape agree on which binary answered.
	Version   string `json:"version"`
	GoVersion string `json:"go_version"`
	Revision  string `json:"revision,omitempty"`
}

// Health reports liveness-adjacent readiness state. It is cheap enough to
// probe every second.
func (s *Service) Health() HealthView {
	bi := obs.GetBuildInfo()
	h := HealthView{
		Version:         bi.Version,
		GoVersion:       bi.GoVersion,
		Revision:        bi.Revision,
		BootScanDone:    s.store.bootScanned.Load(),
		PoolSaturated:   s.store.saturated(),
		PersistErroring: s.store.persistFailing.Load(),
		DegradedMode:    s.store.degraded(),
		BreakerState:    s.store.breakerState(),
	}
	if !h.BootScanDone {
		h.Reasons = append(h.Reasons, "store boot scan in progress")
	}
	if h.PoolSaturated {
		h.Reasons = append(h.Reasons, "session pool saturated")
	}
	if h.PersistErroring {
		h.Reasons = append(h.Reasons, "durable writes failing")
	}
	if h.DegradedMode {
		h.Reasons = append(h.Reasons, "durable tier degraded (circuit breaker "+h.BreakerState+")")
	}
	h.Ready = len(h.Reasons) == 0
	return h
}

// WriteMetrics renders the process-wide metrics registry in Prometheus text
// exposition format — the one body both GET /metrics and the SDK's
// Client.Metrics() serve.
func (s *Service) WriteMetrics(w io.Writer) error {
	return obs.Default.WritePrometheus(w)
}

// ---- typed requests and views ----
//
// The view structs carry the canonical wire field names in their JSON tags:
// the HTTP codec encodes them directly, so the public API surface is defined
// here once and pinned by internal/server's wire golden test.

// CreateRequest creates a session from a dataset — given either as wire
// specs (Tuples, the HTTP path) or as kernel distributions (Dists, the
// in-process path; used when Tuples is empty) — or, when Checkpoint is set,
// restores one from a session envelope (the other fields are then ignored:
// the envelope carries its own configuration).
type CreateRequest struct {
	Tuples       []dataset.DistSpec
	Dists        []dist.Distribution
	Names        []string
	K            int
	Budget       int
	Algorithm    string
	Measure      string
	Reliability  float64
	RoundSize    int
	Seed         int64
	GridSize     int
	MaxOrderings int
	Checkpoint   []byte
}

// SessionInfo describes a session right after creation.
type SessionInfo struct {
	ID        string        `json:"id"`
	State     session.State `json:"state"`
	Tuples    int           `json:"tuples"`
	Asked     int           `json:"asked"`
	Budget    int           `json:"budget"`
	Pending   int           `json:"pending"`
	Orderings int           `json:"orderings"`
}

// Question is one pending crowd task, with a rendered prompt.
type Question struct {
	I      int    `json:"i"`
	J      int    `json:"j"`
	Prompt string `json:"prompt"`
}

// QuestionsView is the question-delivery response: the pending questions
// plus the lifecycle snapshot they were captured under.
type QuestionsView struct {
	State     session.State `json:"state"`
	Questions []Question    `json:"questions"`
	Asked     int           `json:"asked"`
	Budget    int           `json:"budget"`
}

// Answer is one crowd answer to an issued question: Yes means I ranks
// above J.
type Answer struct {
	I, J int
	Yes  bool
}

// AnswersView acknowledges a fully accepted answer batch.
type AnswersView struct {
	State          session.State `json:"state"`
	Accepted       int           `json:"accepted"`
	Asked          int           `json:"asked"`
	Pending        int           `json:"pending"`
	Contradictions int           `json:"contradictions"`
}

// ResultView is the current top-K belief.
type ResultView struct {
	State          session.State `json:"state"`
	Ranking        []int         `json:"ranking"`
	Names          []string      `json:"names"`
	Resolved       bool          `json:"resolved"`
	Orderings      int           `json:"orderings"`
	Uncertainty    float64       `json:"uncertainty"`
	Asked          int           `json:"asked"`
	Budget         int           `json:"budget"`
	Pending        int           `json:"pending"`
	Contradictions int           `json:"contradictions"`
}

// ListView is one page of the session listing.
type ListView struct {
	Sessions []ListEntry `json:"sessions"`
	// Total is the number of known sessions, which may exceed the page.
	Total int `json:"total"`
}

// ListEntry is one row of the session listing.
type ListEntry struct {
	ID string `json:"id"`
	// State and Asked/Pending are reported for live sessions only: reading
	// them off a disk-resident session would force the hydration the
	// listing exists to avoid.
	State       session.State `json:"state,omitempty"`
	Asked       int           `json:"asked,omitempty"`
	Pending     int           `json:"pending,omitempty"`
	IdleSeconds float64       `json:"idle_seconds"`
	Persisted   bool          `json:"persisted"`
	Hydrated    bool          `json:"hydrated"`
	// PersistError is the session's most recent durable-write failure, empty
	// after a successful persist — the signal that finds stuck-dirty
	// sessions without grepping logs.
	PersistError string `json:"persist_error,omitempty"`
	// QuarantineReason is set (with State "quarantined") when the session's
	// durable copy was corrupt and has been moved to the quarantine area:
	// one of corrupt-snapshot, missing-snapshot, corrupt-wal, unreadable.
	QuarantineReason string `json:"quarantine_reason,omitempty"`
}

// StateQuarantined is the listing state for sessions whose durable copy has
// been quarantined; it never appears in session lifecycle transitions.
const StateQuarantined session.State = "quarantined"

// StoreStats is the stats view of the session store's two tiers.
type StoreStats struct {
	// Backend names the durable tier: "memory" (none) or "file".
	Backend string `json:"backend"`
	// LiveSessions counts hydrated in-memory sessions; KnownSessions adds
	// the ones resident only in the durable backend.
	LiveSessions  int `json:"live_sessions"`
	KnownSessions int `json:"known_sessions"`
	// DirtySessions counts sessions with accepted answers awaiting their
	// asynchronous durable write (0 means everything acked is on disk).
	DirtySessions   int    `json:"dirty_sessions"`
	EvictionsToDisk uint64 `json:"evictions_to_disk"`
	HydrationHits   uint64 `json:"hydration_hits"`
	HydrationMisses uint64 `json:"hydration_misses"`
	PersistErrors   uint64 `json:"persist_errors"`
	// PersistRetries counts durable-write attempts that were retries of a
	// failure; EvictionsRefused counts evictions the janitor refused because
	// the session's acked answers were not yet durable.
	PersistRetries   uint64 `json:"persist_retries"`
	EvictionsRefused uint64 `json:"evictions_refused"`
	// DegradedMode mirrors the durable-tier breaker being non-closed;
	// BreakerState is its state name (absent in memory-only mode).
	DegradedMode bool   `json:"degraded_mode"`
	BreakerState string `json:"breaker_state,omitempty"`
	// QuarantinedSessions counts known sessions whose durable copies sit in
	// the quarantine area.
	QuarantinedSessions int `json:"quarantined_sessions"`
	// Persist carries the backend's own counters (snapshots, wal_appends,
	// replays, recovered_sessions, fsyncs) when it exposes them.
	Persist *persist.CounterSnapshot `json:"persist,omitempty"`
}

// Stats is the full operational snapshot.
type Stats struct {
	Sessions int        `json:"sessions"`
	Store    StoreStats `json:"store"`
	// PCache carries the π-cache counters cumulative since the last cache
	// reset; its hit_rate is the lifetime average, which barely moves on a
	// long-lived server no matter what the cache is doing right now.
	PCache pcache.Snapshot `json:"pcache"`
	// PCacheWindow reports hits/misses/hit_rate over the interval since the
	// previous Stats call (each call closes the window and opens the next),
	// so the rate tracks current behavior after churn. The window is
	// process-global: with several scrapers, each sees the interval since
	// whoever asked last.
	PCacheWindow pcache.WindowSnapshot `json:"pcache_window"`
	// LiveEngine carries the incremental selection-engine counters: arena
	// reuses vs rebuilds, delta patches, stat resyncs and compactions.
	LiveEngine selection.LiveCounters `json:"selection_live"`
}

// ---- operations ----

// CreateOrRestore builds a session from the request's dataset, or restores
// one from its checkpoint envelope, registers it under a fresh id and
// returns its initial state. Store capacity is claimed before the build so
// load shedding (ErrFull) happens before the expensive tree construction
// rather than after it.
func (s *Service) CreateOrRestore(ctx context.Context, req CreateRequest) (SessionInfo, error) {
	ctx, sp := obs.StartSpan(ctx, "service.create")
	defer sp.End()
	if err := s.store.reserve(); err != nil {
		return SessionInfo{}, err
	}
	var sess *session.Session
	var err error
	// The build span covers checkpoint decode or tree construction plus the
	// pcache prewarm inside session.New — the dominant cost of a create.
	bctx, bsp := obs.StartSpan(ctx, "session.build")
	if len(req.Checkpoint) > 0 {
		bsp.SetAttr("origin", "restore")
		sess, err = session.Restore(bytes.NewReader(req.Checkpoint), s.pool)
	} else {
		bsp.SetAttr("origin", "fresh")
		bsp.SetAttr("tuples", len(req.Tuples)+len(req.Dists))
		sess, err = s.createSessionCtx(bctx, &req)
	}
	bsp.End()
	if err != nil {
		s.store.unreserve()
		return SessionInfo{}, err
	}
	id, err := s.store.add(sess)
	if err != nil {
		return SessionInfo{}, err
	}
	origin := "fresh"
	if len(req.Checkpoint) > 0 {
		origin = "restore"
	}
	mSessionsCreated.With(origin).Inc()
	info := s.info(id, sess)
	mTransitions.With(string(info.State)).Inc()
	sp.SetAttr("session", id)
	s.log.Info("session created", "session", id, "origin", origin,
		"tuples", info.Tuples, "state", string(info.State),
		"trace", obs.TraceIDFrom(ctx))
	return info, nil
}

// createSessionCtx builds a fresh session from the request's dataset fields.
func (s *Service) createSessionCtx(ctx context.Context, req *CreateRequest) (*session.Session, error) {
	dists := req.Dists
	if len(dists) == 0 {
		var err error
		dists, err = dataset.FromSpecs(req.Tuples)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", session.ErrInvalidConfig, err)
		}
	}
	return session.NewCtx(ctx, session.Config{
		Dists:       dists,
		Names:       req.Names,
		K:           req.K,
		Budget:      req.Budget,
		Algorithm:   req.Algorithm,
		Measure:     req.Measure,
		Reliability: req.Reliability,
		RoundSize:   req.RoundSize,
		Seed:        req.Seed,
		Build:       tpo.BuildOptions{GridSize: req.GridSize, MaxLeaves: req.MaxOrderings},
		Pool:        s.pool,
	})
}

func (s *Service) info(id string, sess *session.Session) SessionInfo {
	st := sess.Status()
	return SessionInfo{
		ID:        id,
		State:     st.State,
		Tuples:    sess.Len(),
		Asked:     st.Asked,
		Budget:    st.Budget,
		Pending:   st.Pending,
		Orderings: sess.Orderings(),
	}
}

// Questions returns up to n pending questions (n < 1 returns all) with
// rendered prompts. Questions and lifecycle state come from one locked
// snapshot, so a concurrent answer cannot pair fresh questions with a
// terminal state.
func (s *Service) Questions(ctx context.Context, id string, n int) (QuestionsView, error) {
	ctx, sp := obs.StartSpan(ctx, "service.questions")
	defer sp.End()
	sp.SetAttr("session", id)
	sess, err := s.store.get(ctx, id)
	if err != nil {
		return QuestionsView{}, err
	}
	qs, st, err := sess.NextQuestions(n)
	if err != nil {
		return QuestionsView{}, err
	}
	out := QuestionsView{State: st.State, Asked: st.Asked, Budget: st.Budget, Questions: []Question{}}
	for _, q := range qs {
		out.Questions = append(out.Questions, Question{
			I:      q.I,
			J:      q.J,
			Prompt: fmt.Sprintf("does %s rank above %s?", sess.Name(q.I), sess.Name(q.J)),
		})
	}
	mQuestionsServed.Add(uint64(len(out.Questions)))
	sp.SetAttr("questions", len(out.Questions))
	return out, nil
}

// Answers applies a batch of crowd answers in order. A batch that fails
// partway returns a *BatchError carrying how many answers were applied
// before the failure, so the caller can reconcile; the applied answers stay
// applied. Every batch with at least one accepted answer also emits one
// asynchronous audit event (session, answers, outcome, residual delta) when
// an audit log is attached — auditing never blocks the answer path.
func (s *Service) Answers(ctx context.Context, id string, answers []Answer) (AnswersView, error) {
	ctx, sp := obs.StartSpan(ctx, "service.answers")
	defer sp.End()
	sp.SetAttr("session", id)
	sp.SetAttr("batch", len(answers))
	sess, err := s.store.get(ctx, id)
	if err != nil {
		return AnswersView{}, err
	}
	if len(answers) == 0 {
		return AnswersView{}, fmt.Errorf("%w: no answers in request", ErrBadInput)
	}
	before := sess.Status()
	orderingsBefore := sess.Orderings()
	accepted := 0
	var batchErr error
	for _, a := range answers {
		if a.I == a.J {
			batchErr = &BatchError{Accepted: accepted,
				Err: fmt.Errorf("%w: answer %d compares tuple %d with itself", ErrBadInput, accepted, a.I)}
			break
		}
		if err := sess.SubmitAnswerCtx(ctx, tpo.Answer{Q: tpo.Question{I: a.I, J: a.J}, Yes: a.Yes}); err != nil {
			batchErr = &BatchError{Accepted: accepted, Err: err}
			break
		}
		accepted++
	}
	st := sess.Status()
	if accepted > 0 {
		mAnswersAccepted.Add(uint64(accepted))
		if d := st.Contradictions - before.Contradictions; d > 0 {
			mContradictions.Add(uint64(d))
		}
		if st.State != before.State {
			mTransitions.With(string(st.State)).Inc()
		}
	}
	sp.SetAttr("accepted", accepted)
	s.auditAnswers(ctx, id, answers, accepted, before, st, orderingsBefore, sess.Orderings(), batchErr)
	if batchErr != nil {
		return AnswersView{}, batchErr
	}
	return AnswersView{
		State:          st.State,
		Accepted:       accepted,
		Asked:          st.Asked,
		Pending:        st.Pending,
		Contradictions: st.Contradictions,
	}, nil
}

// auditAnswerEvent is the audit-log record for one answer batch: the spend
// event of the crowd budget. OrderingsBefore/After is the residual delta —
// how much of the candidate-ordering space this batch eliminated.
type auditAnswerEvent struct {
	Time            string        `json:"time"`
	Kind            string        `json:"kind"`
	Session         string        `json:"session"`
	Answers         []auditAnswer `json:"answers"`
	Accepted        int           `json:"accepted"`
	State           string        `json:"state"`
	Asked           int           `json:"asked"`
	Contradictions  int           `json:"contradictions"`
	OrderingsBefore int           `json:"orderings_before"`
	OrderingsAfter  int           `json:"orderings_after"`
	Error           string        `json:"error,omitempty"`
	// Trace joins the event to the request's retained trace and access-log
	// line; empty for untraced requests.
	Trace string `json:"trace,omitempty"`
}

type auditAnswer struct {
	I   int  `json:"i"`
	J   int  `json:"j"`
	Yes bool `json:"yes"`
}

// auditBreakerEvent is the audit-log record for a durable-tier circuit
// breaker transition: when the service entered or left degraded mode and
// through which states.
type auditBreakerEvent struct {
	Time string `json:"time"`
	Kind string `json:"kind"` // "degraded_mode"
	From string `json:"from"`
	To   string `json:"to"`
}

// auditAnswers emits the batch's audit event. Enqueueing never blocks; a
// stalled sink drops events and counts the loss.
func (s *Service) auditAnswers(ctx context.Context, id string, answers []Answer, accepted int,
	before, after session.Status, ordBefore, ordAfter int, batchErr error) {
	if s.audit == nil || accepted == 0 {
		return
	}
	ev := auditAnswerEvent{
		Trace:           obs.TraceIDFrom(ctx),
		Time:            time.Now().UTC().Format(time.RFC3339Nano),
		Kind:            "answers",
		Session:         id,
		Answers:         make([]auditAnswer, 0, len(answers)),
		Accepted:        accepted,
		State:           string(after.State),
		Asked:           after.Asked,
		Contradictions:  after.Contradictions - before.Contradictions,
		OrderingsBefore: ordBefore,
		OrderingsAfter:  ordAfter,
	}
	for _, a := range answers {
		ev.Answers = append(ev.Answers, auditAnswer{I: a.I, J: a.J, Yes: a.Yes})
	}
	if batchErr != nil {
		ev.Error = batchErr.Error()
	}
	s.audit.Log(ev)
}

// Result reports the session's current top-K belief (valid in every state).
func (s *Service) Result(ctx context.Context, id string) (ResultView, error) {
	ctx, sp := obs.StartSpan(ctx, "service.result")
	defer sp.End()
	sp.SetAttr("session", id)
	sess, err := s.store.get(ctx, id)
	if err != nil {
		return ResultView{}, err
	}
	_, rsp := obs.StartSpan(ctx, "session.result")
	res := sess.Result()
	rsp.End()
	names := make([]string, len(res.Ranking))
	for i, tid := range res.Ranking {
		names[i] = sess.Name(tid)
	}
	return ResultView{
		State:          res.State,
		Ranking:        append([]int{}, res.Ranking...),
		Names:          names,
		Resolved:       res.Resolved,
		Orderings:      res.Orderings,
		Uncertainty:    res.Uncertainty,
		Asked:          res.Asked,
		Budget:         res.Budget,
		Pending:        res.Pending,
		Contradictions: res.Contradictions,
	}, nil
}

// Checkpoint writes the session's versioned JSON envelope to w. Callers
// serving slow sinks should buffer: the write happens under the session
// lock, and backpressure would pin it.
func (s *Service) Checkpoint(ctx context.Context, id string, w io.Writer) error {
	ctx, sp := obs.StartSpan(ctx, "service.checkpoint")
	defer sp.End()
	sp.SetAttr("session", id)
	sess, err := s.store.get(ctx, id)
	if err != nil {
		return err
	}
	_, csp := obs.StartSpan(ctx, "session.checkpoint")
	defer csp.End()
	return sess.Checkpoint(w)
}

// Delete drops the session from every tier. Deleting an unknown id returns
// ErrNotFound.
func (s *Service) Delete(ctx context.Context, id string) error {
	_, sp := obs.StartSpan(ctx, "service.delete")
	defer sp.End()
	sp.SetAttr("session", id)
	if !s.store.remove(id) {
		return ErrNotFound
	}
	return nil
}

// DefaultListLimit bounds List pages when the caller does not choose a
// limit; against a store with millions of persisted sessions an unbounded
// listing would be an accidental denial of service.
const DefaultListLimit = 100

// List snapshots up to limit known sessions (limit < 1 applies
// DefaultListLimit), sorted by id for stable pagination. Live sessions
// carry their lifecycle counters; disk-resident ones are listed without
// forcing the hydration the listing exists to avoid.
func (s *Service) List(limit int) ListView {
	if limit < 1 {
		limit = DefaultListLimit
	}
	items, total := s.store.list(limit)
	out := ListView{Sessions: []ListEntry{}, Total: total}
	for _, it := range items {
		e := ListEntry{
			ID:           it.id,
			IdleSeconds:  it.idle.Seconds(),
			Persisted:    it.persisted,
			Hydrated:     it.hydrated,
			PersistError: it.persistErr,
		}
		if it.quarantined {
			e.State = StateQuarantined
			e.QuarantineReason = it.quarReason
		}
		// The session object was captured inside the store's listing
		// snapshot; resolving the id again here would race concurrent
		// deletes and evictions into rows marked hydrated but carrying no
		// state.
		if it.sess != nil {
			st := it.sess.Status()
			e.State = st.State
			e.Asked = st.Asked
			e.Pending = st.Pending
		}
		out.Sessions = append(out.Sessions, e)
	}
	return out
}

// Stats assembles the operational snapshot: store tiers, persistence
// counters, π-cache lifetime and window rates, live-engine counters.
func (s *Service) Stats() Stats {
	st := StoreStats{
		Backend:         "memory",
		LiveSessions:    s.store.len(),
		KnownSessions:   s.store.known(),
		EvictionsToDisk: s.store.evictions.Load(),
		HydrationHits:   s.store.hydraHits.Load(),
		HydrationMisses: s.store.hydraMisses.Load(),
		PersistErrors:   s.store.persistErrors.Load(),
	}
	if s.store.disk != nil {
		st.Backend = "file"
		st.DirtySessions = s.store.bg.pending()
		st.PersistRetries = s.store.bg.retryCount()
		st.EvictionsRefused = s.store.evictionsRefused.Load()
		st.DegradedMode = s.store.degraded()
		st.BreakerState = s.store.breakerState()
		st.QuarantinedSessions = s.store.quarantinedCount()
		if cs, ok := s.store.disk.(persist.CounterSource); ok {
			c := cs.Counters()
			st.Persist = &c
		}
	}
	return Stats{
		Sessions:     s.store.len(),
		Store:        st,
		PCache:       pcache.Stats(),
		PCacheWindow: pcache.WindowStats(),
		LiveEngine:   selection.LiveEngineStats(),
	}
}
