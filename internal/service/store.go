package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"crowdtopk/internal/obs"
	"crowdtopk/internal/persist"
	"crowdtopk/internal/session"
)

// ErrNotFound reports a session id the store does not hold (never created,
// deleted, or — in memory-only mode — evicted after its TTL).
var ErrNotFound = errors.New("service: no such session")

// ErrFull reports that the store is at its session capacity.
var ErrFull = errors.New("service: session limit reached")

// meta is the store's bookkeeping for one known session — live or resident
// only in the durable backend. All fields are guarded by store.mu; the
// session itself lives in the memory tier and serializes its own
// transitions.
type meta struct {
	lastUsed time.Time
	// hydrated: the session object is in the memory tier.
	hydrated bool
	// persisted: a durable copy exists (possibly stale while dirty).
	persisted bool
	// dirtyGen counts accepted answers (and other persist-worthy events);
	// persistedGen is the dirtyGen value the last successful persist
	// covered. dirtyGen > persistedGen means durable work is pending.
	dirtyGen, persistedGen uint64
	// lastErr is the most recent durable-write failure for this session
	// (empty after a successful persist). Surfaced in the session listing so
	// operators can find stuck-dirty sessions without grepping logs.
	lastErr string
	// quarantined: the durable copy was corrupt and has been moved to the
	// quarantine area; the id is listed (state=quarantined) but not
	// servable. quarantineReason is one of the persist.Reason* constants.
	quarantined      bool
	quarantineReason string
}

// store layers the server's session registry over the persist subsystem:
// live sessions sit in a sharded in-memory tier (persist.Memory), and — when
// a durable backend is configured — every accepted answer is asynchronously
// appended to it, idle sessions are evicted to it instead of dropped, and
// misses hydrate from it lazily. Without a durable backend the behavior is
// exactly the pre-persistence server: TTL eviction drops sessions for good.
type store struct {
	ttl          time.Duration
	max          int
	log          *slog.Logger
	closeTimeout time.Duration // bound on the shutdown drain

	live *persist.Memory // hydrated sessions (the cache tier)
	disk persist.Store   // nil in memory-only mode
	bg   *persister      // nil in memory-only mode
	brk  *breaker        // nil in memory-only mode

	// bootScanned flips once the durable backend's id scan completed (true
	// from construction in memory-only mode); persistFailing tracks whether
	// the most recent durable write failed. Both feed readiness.
	bootScanned    atomic.Bool
	persistFailing atomic.Bool

	mu        sync.Mutex
	meta      map[string]*meta
	hydrating map[string]chan struct{} // singleflight per hydrating id
	reserved  int                      // capacity claimed by creates still building
	hydrated  int                      // count of meta entries with hydrated=true

	evictions        atomic.Uint64 // sessions moved memory → disk by the janitor
	evictionsRefused atomic.Uint64 // evictions refused to protect unpersisted answers
	hydraHits        atomic.Uint64 // lazy loads that found the session on disk
	hydraMisses      atomic.Uint64 // misses that found nothing anywhere
	persistErrors    atomic.Uint64 // failed durable writes (answers stay live)
	quarantines      atomic.Uint64 // corrupt sessions moved aside by this process

	stop      chan struct{}
	done      chan struct{}
	closeOnce sync.Once
}

// newStore builds the registry. With a durable backend it scans the backend
// once so every persisted session is addressable immediately after a
// restart (the scan reads ids only; sessions hydrate lazily on first
// access). Individual unreadable session directories are skipped (or
// quarantined, for backends that can) with a warning — startup fails only
// when the data dir itself is unusable. onBreaker, if non-nil, observes
// durable-tier circuit breaker transitions (for audit/metrics).
func newStore(ttl time.Duration, max int, disk persist.Store, log *slog.Logger,
	closeTimeout time.Duration, onBreaker func(from, to string)) (*store, error) {
	if closeTimeout <= 0 {
		closeTimeout = DefaultShutdownTimeout
	}
	s := &store{
		ttl:          ttl,
		max:          max,
		log:          log,
		closeTimeout: closeTimeout,
		live:         persist.NewMemory(),
		disk:         disk,
		meta:         make(map[string]*meta),
		hydrating:    make(map[string]chan struct{}),
		stop:         make(chan struct{}),
		done:         make(chan struct{}),
	}
	if disk != nil {
		start := time.Now()
		var ids []string
		var quarantined []persist.QuarantineInfo
		if sc, ok := disk.(persist.Scanner); ok {
			res, err := sc.Scan()
			if err != nil {
				return nil, fmt.Errorf("service: scanning persisted sessions: %w", err)
			}
			ids = res.IDs
			quarantined = res.Quarantined
			for _, name := range res.Skipped {
				s.log.Warn("store: boot scan skipped unusable entry", "entry", name)
			}
		} else {
			var err error
			ids, err = disk.List()
			if err != nil {
				return nil, fmt.Errorf("service: scanning persisted sessions: %w", err)
			}
		}
		now := time.Now()
		for _, id := range ids {
			s.meta[id] = &meta{lastUsed: now, persisted: true}
		}
		for _, q := range quarantined {
			s.meta[q.ID] = &meta{lastUsed: now, quarantined: true, quarantineReason: q.Reason}
		}
		s.brk = newBreaker(func(from, to breakerState) {
			s.log.Warn("store: durable-tier breaker transition", "from", string(from), "to", string(to))
			if onBreaker != nil {
				onBreaker(string(from), string(to))
			}
		})
		s.bg = newPersister(s.persistOne, s.brk, log)
		s.log.Info("store: boot scan complete", "persisted_sessions", len(ids),
			"quarantined_sessions", len(quarantined), "duration", time.Since(start))
	}
	s.bootScanned.Store(true)
	go s.janitor()
	return s, nil
}

// newID returns a fresh 128-bit random session id.
func newID() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", err
	}
	return "s_" + hex.EncodeToString(b[:]), nil
}

// reserve claims capacity for a session about to be built, so load shedding
// happens before the expensive tree construction rather than after it. The
// reservation is consumed by add or returned with unreserve. Capacity
// bounds hydrated (in-memory) sessions: disk residency is not load.
func (s *store) reserve() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.max > 0 && s.hydrated+s.reserved >= s.max {
		return ErrFull
	}
	s.reserved++
	return nil
}

// unreserve returns a reservation whose build failed.
func (s *store) unreserve() {
	s.mu.Lock()
	s.reserved--
	s.mu.Unlock()
}

// add registers a session under a fresh id, consuming one reservation made
// with reserve (which guarantees room). With a durable backend the new
// session is queued for its initial snapshot right away.
func (s *store) add(sess *session.Session) (string, error) {
	id, err := newID()
	now := time.Now()
	s.mu.Lock()
	s.reserved--
	if err != nil {
		s.mu.Unlock()
		return "", err
	}
	s.meta[id] = &meta{lastUsed: now, hydrated: true, dirtyGen: 1}
	s.hydrated++
	s.mu.Unlock()
	if err := s.live.Put(id, sess); err != nil {
		// Roll the registration back: a meta entry without a live session
		// would hold a MaxSessions slot forever.
		s.mu.Lock()
		if m := s.meta[id]; m != nil && m.hydrated {
			s.hydrated--
		}
		delete(s.meta, id)
		s.mu.Unlock()
		return "", err
	}
	s.watch(id, sess)
	if s.bg != nil {
		s.bg.enqueue(id) // initial snapshot: durable before the first answer
	}
	return id, nil
}

// watch wires the session's dirty-answer hook to the async persister: every
// accepted answer bumps the dirty generation and queues a durable write.
func (s *store) watch(id string, sess *session.Session) {
	if s.bg == nil {
		return
	}
	sess.SetDirtyHook(func() { s.markDirty(id, sess) })
}

// markDirty records an accepted answer on sess. The session reference
// matters: a request handler can hold a session across a TTL eviction and
// still accept an answer on it — the answer was acked, so the store
// re-attaches the very object that accepted it rather than letting the
// write vanish with an unreachable pointer. A deleted session (meta gone)
// stays deleted.
func (s *store) markDirty(id string, sess *session.Session) {
	s.mu.Lock()
	m := s.meta[id]
	if m == nil {
		s.mu.Unlock()
		return
	}
	m.dirtyGen++
	cur, err := s.live.Get(id)
	if err != nil || cur != sess {
		// The handler outlived sess's residency: a TTL eviction released it
		// (err != nil), or a lazy hydration raced this answer and re-loaded
		// the older disk copy under the same id (cur != sess) — a fork.
		// Either way the resident object is missing the answer that was just
		// acked on sess, and the durable write this call queues would persist
		// a copy without it. Re-attach sess — unless the resident fork has
		// itself accepted strictly more answers, in which case the lines
		// cannot be merged and we keep the one holding more acked progress
		// (ties favor sess: in the eviction→hydration race the disk copy cur
		// was loaded from is a prefix of sess's history).
		if err != nil || sess.Status().Asked >= cur.Status().Asked {
			if perr := s.live.Put(id, sess); perr == nil {
				if !m.hydrated {
					m.hydrated = true
					s.hydrated++
				}
				m.lastUsed = time.Now()
			}
		}
	}
	s.mu.Unlock()
	s.bg.enqueue(id)
}

// persistOne writes one session's pending state to the durable backend. It
// runs on the persister goroutine, the janitor's eviction path, and Flush —
// never under s.mu, because a file-backend Put fsyncs. The error return
// feeds the persister's retry/backoff loop and the circuit breaker; a nil
// return also covers "nothing to do".
func (s *store) persistOne(id string) error {
	s.mu.Lock()
	m := s.meta[id]
	if m == nil || !m.hydrated || m.quarantined {
		s.mu.Unlock()
		return nil
	}
	gen := m.dirtyGen
	if m.persisted && gen == m.persistedGen {
		s.mu.Unlock()
		return nil
	}
	s.mu.Unlock()
	sess, err := s.live.Get(id)
	if err != nil {
		return nil // evicted or deleted in the window
	}
	if err := s.disk.Put(id, sess); err != nil {
		// The answers are still live in memory; the persister retries with
		// backoff until the write lands, so a transient disk error heals
		// itself without waiting for the next accepted answer.
		s.persistErrors.Add(1)
		s.persistFailing.Store(true)
		s.log.Warn("store: durable write failed", "session", id, "error", err)
		s.mu.Lock()
		if m2 := s.meta[id]; m2 != nil {
			m2.lastErr = err.Error()
		}
		s.mu.Unlock()
		return err
	}
	s.persistFailing.Store(false)
	s.mu.Lock()
	if m2 := s.meta[id]; m2 != nil {
		m2.persisted = true
		m2.lastErr = ""
		if m2.persistedGen < gen {
			m2.persistedGen = gen
		}
	}
	s.mu.Unlock()
	return nil
}

// get returns the session and refreshes its TTL, lazily hydrating from the
// durable backend when the session is not in memory (evicted, or created by
// a previous process).
func (s *store) get(ctx context.Context, id string) (*session.Session, error) {
	for {
		s.mu.Lock()
		m := s.meta[id]
		if m != nil && m.quarantined {
			reason := m.quarantineReason
			s.mu.Unlock()
			return nil, &QuarantinedError{ID: id, Reason: reason}
		}
		if m != nil && m.hydrated {
			m.lastUsed = time.Now()
			s.mu.Unlock()
			sess, err := s.live.Get(id)
			if err != nil {
				if s.disk != nil {
					continue // a remove/evict won the window; retry resolves it
				}
				return nil, ErrNotFound
			}
			return sess, nil
		}
		// Unknown ids are misses even with a durable backend: the boot scan
		// registered every persisted session, so there is nothing to probe
		// the disk for (and probing on arbitrary ids would let clients turn
		// 404s into disk reads).
		if m == nil || s.disk == nil {
			s.mu.Unlock()
			return nil, ErrNotFound
		}
		// Hydration singleflight: wait for an in-flight load of the same id
		// rather than rebuilding the tree twice.
		if ch, ok := s.hydrating[id]; ok {
			s.mu.Unlock()
			<-ch
			continue
		}
		ch := make(chan struct{})
		s.hydrating[id] = ch
		s.mu.Unlock()

		// The hydration span covers the durable read, WAL replay and tree
		// rebuild — the cold-start cost a request pays when it lands on a
		// disk-resident session.
		_, hsp := obs.StartSpan(ctx, "persist.hydrate")
		hsp.SetAttr("session", id)
		sess, err := s.hydrate(id)
		hsp.End()

		s.mu.Lock()
		delete(s.hydrating, id)
		s.mu.Unlock()
		close(ch)
		return sess, err
	}
}

// hydrate loads one session from the durable backend into the memory tier.
// Runs outside s.mu (recovery rebuilds the tree); the caller holds the
// singleflight slot for id.
func (s *store) hydrate(id string) (*session.Session, error) {
	sess, err := s.disk.Get(id)
	if errors.Is(err, persist.ErrNotFound) {
		s.hydraMisses.Add(1)
		s.mu.Lock()
		if m := s.meta[id]; m != nil && !m.hydrated {
			delete(s.meta, id) // the backend lost it out from under us
		}
		s.mu.Unlock()
		return nil, ErrNotFound
	}
	if err != nil {
		if errors.Is(err, persist.ErrCorrupt) {
			if q := s.quarantine(id, err); q != nil {
				return nil, q
			}
		}
		// A durable-tier failure, not a client mistake: wrap it so transports
		// report a server-side error even when the underlying cause (say, a
		// digest mismatch from a corrupted snapshot) would otherwise read as
		// invalid client input.
		return nil, &StorageError{Op: "hydrating session " + id, Err: err}
	}
	s.mu.Lock()
	m := s.meta[id]
	if m == nil {
		// Deleted while we were loading: the DELETE was acknowledged, so
		// the disk copy we just read must not come back to life.
		s.mu.Unlock()
		return nil, ErrNotFound
	}
	if m.hydrated {
		// Re-attached while we were loading (markDirty on an in-flight
		// answer): the live object is strictly newer than the disk copy we
		// read — keep it.
		s.mu.Unlock()
		live, lerr := s.live.Get(id)
		if lerr != nil {
			return nil, ErrNotFound // gone again already; client retries
		}
		return live, nil
	}
	if err := s.live.Put(id, sess); err != nil {
		s.mu.Unlock()
		return nil, err
	}
	m.hydrated = true
	s.hydrated++
	m.persisted = true
	m.persistedGen = m.dirtyGen // the restored state is durable by definition
	m.lastUsed = time.Now()
	s.mu.Unlock()
	s.watch(id, sess)
	s.hydraHits.Add(1)
	s.log.Info("store: session hydrated from durable backend", "session", id)
	return sess, nil
}

// quarantine moves a corrupt session's durable data out of the serving path
// (when the backend supports it) and marks its meta entry quarantined, so
// the id stops 500ing on every hydration and is listed with a typed reason
// instead. Returns the error to serve, or nil when the backend cannot
// quarantine (the caller falls back to a plain storage error).
func (s *store) quarantine(id string, cause error) error {
	q, ok := s.disk.(persist.Quarantiner)
	if !ok {
		return nil
	}
	reason, detail := persist.QuarantineReasonFor(cause)
	if err := q.Quarantine(id, reason, detail); err != nil {
		s.log.Warn("store: quarantining corrupt session failed", "session", id, "error", err)
		return nil
	}
	s.mu.Lock()
	if m := s.meta[id]; m != nil && !m.hydrated {
		m.quarantined = true
		m.quarantineReason = reason
		m.persisted = false
		m.lastErr = ""
	}
	s.mu.Unlock()
	s.quarantines.Add(1)
	s.log.Warn("store: corrupt session quarantined",
		"session", id, "reason", reason, "detail", detail)
	return &QuarantinedError{ID: id, Reason: reason}
}

// remove deletes a session from every tier; it reports whether the id
// existed.
func (s *store) remove(id string) bool {
	s.mu.Lock()
	m := s.meta[id]
	if m == nil {
		s.mu.Unlock()
		return false
	}
	if m.hydrated {
		s.hydrated--
	}
	delete(s.meta, id)
	s.mu.Unlock()
	_ = s.live.Delete(id)
	if s.disk != nil {
		_ = s.disk.Delete(id) // ErrNotFound fine: never persisted yet
	}
	return true
}

// len returns the number of live (in-memory) sessions.
func (s *store) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hydrated
}

// known returns the number of sessions the store can serve, including those
// resident only in the durable backend.
func (s *store) known() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.meta)
}

// saturated reports whether the store is at its live-session capacity —
// every further create would shed with ErrFull.
func (s *store) saturated() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.max > 0 && s.hydrated+s.reserved >= s.max
}

// stateCounts tallies live sessions by lifecycle state (plus "disk" for
// sessions resident only in the durable backend) for the session-state
// gauges. It snapshots the live set under s.mu, then reads each session's
// state outside it: Status takes the session's own lock, and a session
// mid-answer would otherwise stall every scrape.
func (s *store) stateCounts() map[string]int {
	s.mu.Lock()
	sessions := make([]*session.Session, 0, s.hydrated)
	disk, quarantined := 0, 0
	for id, m := range s.meta {
		if m.quarantined {
			quarantined++
			continue
		}
		if !m.hydrated {
			disk++
			continue
		}
		if sess, err := s.live.Get(id); err == nil {
			sessions = append(sessions, sess)
		}
	}
	s.mu.Unlock()
	counts := make(map[string]int)
	if disk > 0 {
		counts["disk"] = disk
	}
	if quarantined > 0 {
		counts["quarantined"] = quarantined
	}
	for _, sess := range sessions {
		counts[string(sess.State())]++
	}
	return counts
}

// listItem is one row of the store's session listing.
type listItem struct {
	id          string
	idle        time.Duration
	hydrated    bool
	persisted   bool
	persistErr  string
	quarantined bool
	quarReason  string
	// sess is the resident session object, captured under the same lock
	// hold that read hydrated. Re-resolving the id after list returns would
	// race deletes and evictions, producing rows that claim a live session
	// but carry none of its state; nil here means the row is disk-only.
	sess *session.Session
}

// list snapshots up to limit known sessions, sorted by id for a stable
// pagination order. Each row is internally consistent: hydrated is true iff
// sess is the object that was resident at snapshot time (listing must not
// refresh TTLs, so the capture bypasses get).
func (s *store) list(limit int) (items []listItem, total int) {
	now := time.Now()
	s.mu.Lock()
	ids := make([]string, 0, len(s.meta))
	for id := range s.meta {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	total = len(ids)
	if limit > 0 && limit < len(ids) {
		ids = ids[:limit]
	}
	items = make([]listItem, 0, len(ids))
	for _, id := range ids {
		m := s.meta[id]
		it := listItem{
			id:          id,
			idle:        now.Sub(m.lastUsed),
			hydrated:    m.hydrated,
			persisted:   m.persisted,
			persistErr:  m.lastErr,
			quarantined: m.quarantined,
			quarReason:  m.quarantineReason,
		}
		if it.hydrated {
			if sess, err := s.live.Get(id); err == nil {
				it.sess = sess
			} else {
				// add registers meta before the memory tier holds the
				// session; in that window the row is not usefully live yet.
				it.hydrated = false
			}
		}
		items = append(items, it)
	}
	s.mu.Unlock()
	return items, total
}

// flush pushes every pending durable write to the backend and syncs it —
// the graceful-shutdown barrier.
func (s *store) flush() {
	if s.bg == nil {
		return
	}
	s.bg.flush()
	// Catch stragglers the queue never saw (e.g. a markDirty racing the
	// flush): persist anything still marked dirty, synchronously.
	s.mu.Lock()
	var pending []string
	for id, m := range s.meta {
		if m.hydrated && (!m.persisted || m.dirtyGen > m.persistedGen) {
			pending = append(pending, id)
		}
	}
	s.mu.Unlock()
	for _, id := range pending {
		_ = s.persistOne(id)
	}
	_ = s.disk.Flush()
}

// degraded reports whether the durable tier's circuit breaker is non-closed:
// writes are being withheld and the service is serving from the live tier
// only. Always false in memory-only mode.
func (s *store) degraded() bool { return s.brk != nil && s.brk.degraded() }

// breakerState returns the durable-tier breaker state ("" in memory-only
// mode) for stats.
func (s *store) breakerState() string {
	if s.brk == nil {
		return ""
	}
	return string(s.brk.currentState())
}

// quarantinedCount counts known sessions currently marked quarantined.
func (s *store) quarantinedCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, m := range s.meta {
		if m.quarantined {
			n++
		}
	}
	return n
}

// close stops the janitor and the persister (pushing pending writes under
// the shutdown deadline — a wedged backend must not hang SIGTERM forever),
// then drops every live session. It is idempotent, so embedders that both
// defer Close and call it on a shutdown-signal path do not panic on the
// second call.
func (s *store) close() {
	s.closeOnce.Do(func() {
		close(s.stop)
		<-s.done
		if s.bg != nil {
			deadline := time.Now().Add(s.closeTimeout)
			left := s.bg.stopAndDrain(deadline)
			if len(left) > 0 {
				s.log.Warn("store: shutdown drain abandoned dirty sessions",
					"count", len(left), "sessions", left,
					"timeout", s.closeTimeout.String())
			} else {
				// Catch stragglers the queue never saw (a markDirty racing
				// the drain), then sync the backend.
				s.mu.Lock()
				var pending []string
				for id, m := range s.meta {
					if m.hydrated && (!m.persisted || m.dirtyGen > m.persistedGen) {
						pending = append(pending, id)
					}
				}
				s.mu.Unlock()
				for _, id := range pending {
					_ = s.persistOne(id)
				}
			}
			// Flush and close under what remains of the deadline: both can
			// block indefinitely on a wedged backend.
			done := make(chan struct{})
			go func() {
				defer close(done)
				_ = s.disk.Flush()
				_ = s.disk.Close()
			}()
			remain := time.Until(deadline)
			if remain < 100*time.Millisecond {
				remain = 100 * time.Millisecond
			}
			select {
			case <-done:
				s.log.Info("store: drained and closed durable backend")
			case <-time.After(remain):
				s.log.Warn("store: durable backend close timed out", "timeout", s.closeTimeout.String())
			}
		}
		s.mu.Lock()
		s.meta = make(map[string]*meta)
		s.hydrated = 0
		s.mu.Unlock()
		_ = s.live.Close()
	})
}

// janitor evicts idle sessions every ttl/4 (bounded to [1s, 1m] so tiny
// test TTLs still evict promptly and huge TTLs don't scan needlessly).
func (s *store) janitor() {
	defer close(s.done)
	if s.ttl <= 0 {
		<-s.stop // eviction disabled; just wait for close
		return
	}
	interval := s.ttl / 4
	if interval < time.Second {
		interval = s.ttl // sub-second TTLs (tests) sweep at TTL cadence
	}
	if interval > time.Minute {
		interval = time.Minute
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case now := <-tick.C:
			s.evictIdle(now)
		}
	}
}

// evictIdle moves idle live sessions out of memory: dropped for good in
// memory-only mode (the original TTL semantics), persisted to the durable
// backend and released otherwise — the memory tier is then just a cache.
func (s *store) evictIdle(now time.Time) {
	s.mu.Lock()
	var idle []string
	for id, m := range s.meta {
		if m.hydrated && now.Sub(m.lastUsed) > s.ttl {
			idle = append(idle, id)
		}
	}
	if s.disk == nil {
		for _, id := range idle {
			if m := s.meta[id]; m != nil && m.hydrated {
				s.hydrated--
			}
			delete(s.meta, id)
		}
		s.mu.Unlock()
		for _, id := range idle {
			_ = s.live.Delete(id)
		}
		return
	}
	s.mu.Unlock()
	for _, id := range idle {
		s.evictToDisk(id, now)
	}
}

// evictToDisk persists one idle session and releases its memory, unless it
// became active (or accepted answers) while we were writing — then it stays
// live and the next sweep retries. While the durable tier is degraded the
// janitor does not touch the backend at all: eviction switches to
// refuse-instead-of-drop, so acked answers are never lost to a broken disk,
// and the retry loop (not the janitor) owns getting them durable.
func (s *store) evictToDisk(id string, now time.Time) {
	if s.degraded() {
		s.evictionsRefused.Add(1)
		s.bg.enqueue(id)
		return
	}
	_ = s.persistOne(id)
	s.mu.Lock()
	m := s.meta[id]
	if m == nil || !m.hydrated {
		s.mu.Unlock()
		return
	}
	if now.Sub(m.lastUsed) <= s.ttl {
		s.mu.Unlock()
		return // touched while persisting
	}
	if !m.persisted || m.dirtyGen > m.persistedGen {
		// Persist failed or raced an answer: the session must stay live, and
		// the retry loop must own it — without the re-enqueue nothing would
		// try again until the next accepted answer.
		s.mu.Unlock()
		s.evictionsRefused.Add(1)
		s.bg.enqueue(id)
		return
	}
	m.hydrated = false
	s.hydrated--
	_ = s.live.Delete(id)
	s.mu.Unlock()
	s.evictions.Add(1)
	s.log.Debug("store: idle session evicted to disk", "session", id)
}
