package service

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"crowdtopk/internal/dist"
	"crowdtopk/internal/obs"
	"crowdtopk/internal/persist"
	"crowdtopk/internal/tpo"
)

// testBreaker builds a breaker on a fake clock, recording transitions.
func testBreaker() (*breaker, *fakeClock, *[]string) {
	transitions := &[]string{}
	var mu sync.Mutex
	b := newBreaker(func(from, to breakerState) {
		mu.Lock()
		*transitions = append(*transitions, fmt.Sprintf("%s→%s", from, to))
		mu.Unlock()
	})
	clk := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	b.now = clk.now
	return b, clk, transitions
}

// TestBreakerLifecycle pins the three-state machine: threshold failures open
// it, the cooldown gates the half-open probe, a failed probe re-opens with a
// doubled cooldown, and a success closes it and resets the ladder.
func TestBreakerLifecycle(t *testing.T) {
	b, clk, transitions := testBreaker()
	if b.degraded() {
		t.Fatal("new breaker is degraded")
	}
	// Below the threshold nothing happens; a success resets the count.
	for i := 0; i < breakerThreshold-1; i++ {
		b.failure()
	}
	b.success()
	for i := 0; i < breakerThreshold-1; i++ {
		b.failure()
	}
	if b.currentState() != breakerClosed {
		t.Fatalf("state %s before threshold, want closed", b.currentState())
	}
	b.failure() // crosses the threshold
	if b.currentState() != breakerOpen || !b.degraded() {
		t.Fatalf("state %s after threshold, want open", b.currentState())
	}
	// While the cooldown runs, writes are withheld with a usable wait.
	if ok, wait := b.allow(); ok || wait <= 0 || wait > breakerCooldownMin {
		t.Fatalf("allow during cooldown = %v, %v", ok, wait)
	}
	// Cooldown expiry admits exactly one probe (state: half-open).
	clk.advance(breakerCooldownMin)
	if ok, _ := b.allow(); !ok {
		t.Fatal("probe not admitted after cooldown")
	}
	if b.currentState() != breakerHalfOpen {
		t.Fatalf("state %s during probe, want half-open", b.currentState())
	}
	// A failed probe re-opens with a doubled cooldown.
	b.failure()
	if b.currentState() != breakerOpen {
		t.Fatalf("state %s after failed probe, want open", b.currentState())
	}
	clk.advance(breakerCooldownMin) // first cooldown has doubled: not yet
	if ok, wait := b.allow(); ok || wait <= 0 {
		t.Fatalf("allow before doubled cooldown = %v, %v", ok, wait)
	}
	clk.advance(breakerCooldownMin)
	if ok, _ := b.allow(); !ok {
		t.Fatal("second probe not admitted")
	}
	// A successful probe closes the breaker for good.
	b.success()
	if b.currentState() != breakerClosed || b.degraded() {
		t.Fatalf("state %s after successful probe, want closed", b.currentState())
	}
	want := []string{
		"closed→open", "open→half-open", "half-open→open",
		"open→half-open", "half-open→closed",
	}
	if fmt.Sprint(*transitions) != fmt.Sprint(want) {
		t.Fatalf("transitions %v, want %v", *transitions, want)
	}
}

func TestBreakerCooldownCapped(t *testing.T) {
	b, clk, _ := testBreaker()
	for i := 0; i < breakerThreshold; i++ {
		b.failure()
	}
	for i := 0; i < 40; i++ { // fail probes far past the doubling cap
		clk.advance(breakerCooldownMax)
		if ok, _ := b.allow(); !ok {
			t.Fatalf("probe %d not admitted after max cooldown", i)
		}
		b.failure()
	}
	if _, wait := b.allow(); wait > breakerCooldownMax {
		t.Fatalf("cooldown %v exceeds cap %v", wait, breakerCooldownMax)
	}
}

// flakyBackend fails each session's first failures writes, then succeeds.
type flakyBackend struct {
	mu       sync.Mutex
	failures int
	attempts map[string]int
}

func (f *flakyBackend) persist(id string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.attempts == nil {
		f.attempts = make(map[string]int)
	}
	f.attempts[id]++
	if f.attempts[id] <= f.failures {
		return fmt.Errorf("flaky: attempt %d", f.attempts[id])
	}
	return nil
}

// TestPersisterRetriesUntilSuccess: transient write failures drain on their
// own through backoff retries — no flush, no operator.
func TestPersisterRetriesUntilSuccess(t *testing.T) {
	fb := &flakyBackend{failures: 1}
	p := newPersister(fb.persist, newBreaker(nil), obs.NopLogger())
	for _, id := range []string{"s_a", "s_b", "s_c"} {
		p.enqueue(id)
	}
	deadline := time.Now().Add(10 * time.Second)
	for p.pending() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("persister did not drain: %d pending", p.pending())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got := p.retryCount(); got != 3 {
		t.Errorf("retries = %d, want 3 (one per session)", got)
	}
	if left := p.stopAndDrain(time.Now().Add(time.Second)); len(left) != 0 {
		t.Errorf("left dirty: %v", left)
	}
}

// TestPersisterFlushBoundedOverBrokenBackend: flush over a dead backend gives
// every dirty session one immediate attempt and returns — it must not spin or
// block until the backend heals. The sessions stay dirty (acked answers are
// never dropped); a later flush over a healed backend drains them.
func TestPersisterFlushBoundedOverBrokenBackend(t *testing.T) {
	var healed sync.Map
	persistFn := func(id string) error {
		if _, ok := healed.Load("yes"); ok {
			return nil
		}
		return errors.New("disk on fire")
	}
	p := newPersister(persistFn, newBreaker(nil), obs.NopLogger())
	p.enqueue("s_a")
	p.enqueue("s_b")
	start := time.Now()
	p.flush()
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("flush over broken backend took %v", d)
	}
	if n := p.pending(); n != 2 {
		t.Fatalf("pending after failed flush = %d, want 2", n)
	}
	healed.Store("yes", true)
	p.flush()
	if n := p.pending(); n != 0 {
		t.Fatalf("pending after healed flush = %d, want 0", n)
	}
	p.stopAndDrain(time.Now().Add(time.Second))
}

// TestPersisterParksAfterBudget: a session whose writes keep failing is
// parked after its retry budget — still dirty, still queued, just off the
// fast retry ladder — and a new enqueue (new acked answers) re-arms it.
func TestPersisterParksAfterBudget(t *testing.T) {
	var ok sync.Map
	persistFn := func(id string) error {
		if _, healed := ok.Load("yes"); healed {
			return nil
		}
		return errors.New("still broken")
	}
	p := newPersister(persistFn, newBreaker(nil), obs.NopLogger())
	p.enqueue("s_park")
	deadline := time.Now().Add(30 * time.Second)
	for p.parkEvents.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("session never parked")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if n := p.pending(); n != 1 {
		t.Fatalf("parked session left the queue: pending = %d", n)
	}
	// New acked answers re-arm the parked session; with the backend healed
	// the next attempt drains it without waiting out the parked cadence.
	ok.Store("yes", true)
	p.enqueue("s_park")
	deadline = time.Now().Add(10 * time.Second)
	for p.pending() > 0 {
		if time.Now().After(deadline) {
			t.Fatal("re-armed session did not drain")
		}
		time.Sleep(2 * time.Millisecond)
	}
	p.stopAndDrain(time.Now().Add(time.Second))
}

// TestStopAndDrainDeadlineOverWedgedBackend: a write wedged mid-flight must
// not hang shutdown — stopAndDrain returns at its deadline and reports the
// session as left dirty.
func TestStopAndDrainDeadlineOverWedgedBackend(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	persistFn := func(id string) error {
		started <- struct{}{}
		<-release
		return nil
	}
	t.Cleanup(func() { close(release) })
	p := newPersister(persistFn, newBreaker(nil), obs.NopLogger())
	p.enqueue("s_wedged")
	<-started // the write is wedged in flight now
	start := time.Now()
	left := p.stopAndDrain(time.Now().Add(200 * time.Millisecond))
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("stopAndDrain took %v despite 200ms deadline", d)
	}
	if len(left) != 1 || left[0] != "s_wedged" {
		t.Fatalf("left = %v, want [s_wedged]", left)
	}
}

// TestEvictionRefusedWhileDegradedOrDirty pins the no-drop eviction rules: a
// degraded store refuses to evict at all, and a healthy store refuses to
// drop a session whose latest answers have not reached disk, re-enqueueing
// it so the retry loop owns the write.
func TestEvictionRefusedWhileDegradedOrDirty(t *testing.T) {
	disk, err := persist.NewFile(persist.FileOptions{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	fs := persist.NewFaultStore(disk, persist.FaultSpec{})
	st, err := newStore(time.Minute, 0, fs, obs.NopLogger(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(st.close)
	id, err := st.add(storeTestSession(t))
	if err != nil {
		t.Fatal(err)
	}
	waitPending(t, st, 0)

	// Degraded mode refuses every eviction outright.
	for i := 0; i < breakerThreshold; i++ {
		st.brk.failure()
	}
	st.evictToDisk(id, time.Now())
	if got := st.evictionsRefused.Load(); got != 1 {
		t.Fatalf("evictions_refused = %d after degraded evict, want 1", got)
	}
	if _, err := st.get(context.Background(), id); err != nil {
		t.Fatalf("session dropped by refused eviction: %v", err)
	}
	st.brk.success() // back to closed

	// A persist-failed eviction keeps the session live and hands the write
	// to the retry loop instead of dropping acked answers.
	fs.SetSpec(persist.FaultSpec{ErrRate: map[persist.Op]float64{persist.OpPut: 1}})
	sess, err := st.get(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	qs, _, err := sess.NextQuestions(1)
	if err != nil || len(qs) == 0 {
		t.Fatalf("questions: %v (%d)", err, len(qs))
	}
	if err := sess.SubmitAnswer(tpo.Answer{Q: qs[0], Yes: true}); err != nil {
		t.Fatal(err)
	}
	st.markDirty(id, sess)
	// Evict "from the future" so the idle-TTL guard does not mask the
	// dirty-session refusal this test pins.
	st.evictToDisk(id, time.Now().Add(2*time.Minute))
	if got := st.evictionsRefused.Load(); got != 2 {
		t.Fatalf("evictions_refused = %d after dirty evict, want 2", got)
	}
	if _, err := st.get(context.Background(), id); err != nil {
		t.Fatalf("dirty session dropped by eviction: %v", err)
	}
	fs.Heal()
	waitPending(t, st, 0)
}

// waitPending polls until the store's persister queue is n deep.
func waitPending(t *testing.T, st *store, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for st.bg.pending() != n {
		if time.Now().After(deadline) {
			t.Fatalf("persister pending = %d, want %d", st.bg.pending(), n)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestWedgedBackendBoundsClose: a store whose backend wedges mid-write still
// closes within its shutdown deadline instead of hanging SIGTERM forever.
func TestWedgedBackendBoundsClose(t *testing.T) {
	disk, err := persist.NewFile(persist.FileOptions{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	fs := persist.NewFaultStore(disk, persist.FaultSpec{})
	st, err := newStore(time.Minute, 0, fs, obs.NopLogger(), 300*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	id, err := st.add(storeTestSession(t))
	if err != nil {
		t.Fatal(err)
	}
	waitPending(t, st, 0)

	fs.Wedge()
	sess, err := st.get(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	qs, _, err := sess.NextQuestions(1)
	if err != nil || len(qs) == 0 {
		t.Fatalf("questions: %v (%d)", err, len(qs))
	}
	if err := sess.SubmitAnswer(tpo.Answer{Q: qs[0], Yes: true}); err != nil {
		t.Fatal(err)
	}
	st.markDirty(id, sess) // the persister will wedge on this write

	start := time.Now()
	done := make(chan struct{})
	go func() { st.close(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("close hung on a wedged backend")
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("close took %v with a 300ms shutdown budget", d)
	}
}

// serviceSessionDists builds kernel distributions for in-process creates.
func serviceSessionDists(t *testing.T, n int) []dist.Distribution {
	t.Helper()
	ds := make([]dist.Distribution, n)
	for i := range ds {
		u, err := dist.NewUniformAround(float64(i)*0.5, 1.8)
		if err != nil {
			t.Fatal(err)
		}
		ds[i] = u
	}
	return ds
}

// TestServiceDegradedModeAndAutoRecovery is the service-level acceptance
// path: a failing durable backend opens the breaker (degraded mode: /ready
// refuses, answers still ack from the live tier), and once the backend heals
// the half-open probe recovers everything — dirty queue to zero, breaker
// closed, ready again — with no operator action. A restart on the same dir
// then proves every acked answer was durable.
func TestServiceDegradedModeAndAutoRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("breaker recovery waits out real cooldowns; skipped with -short")
	}
	dir := t.TempDir()
	disk, err := persist.NewFile(persist.FileOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	fs := persist.NewFaultStore(disk, persist.FaultSpec{})
	svc, err := New(Config{Persist: fs, Logger: obs.NopLogger()})
	if err != nil {
		t.Fatal(err)
	}

	info, err := svc.CreateOrRestore(context.Background(), CreateRequest{
		Dists: serviceSessionDists(t, 6), K: 2, Budget: 40, Reliability: 0.9, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	id := info.ID
	waitStats(t, svc, func(s Stats) bool { return s.Store.DirtySessions == 0 })
	if h := svc.Health(); !h.Ready || h.DegradedMode {
		t.Fatalf("healthy baseline: %+v", h)
	}

	// Break the backend and keep acking answers from the live tier.
	fs.SetSpec(persist.FaultSpec{ErrRate: map[persist.Op]float64{persist.OpPut: 1}})
	rng := rand.New(rand.NewSource(3))
	acked := info.Asked
	submit := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			qv, err := svc.Questions(context.Background(), id, 1)
			if err != nil {
				t.Fatal(err)
			}
			if len(qv.Questions) == 0 {
				return
			}
			q := qv.Questions[0]
			av, err := svc.Answers(context.Background(), id, []Answer{{I: q.I, J: q.J, Yes: rng.Intn(2) == 0}})
			if err != nil {
				t.Fatalf("answers while degraded: %v", err)
			}
			acked += av.Accepted
		}
	}
	submit(3)
	waitStats(t, svc, func(s Stats) bool { return s.Store.DegradedMode })
	h := svc.Health()
	if h.Ready || !h.DegradedMode || h.BreakerState == string(breakerClosed) {
		t.Fatalf("degraded health: %+v", h)
	}
	if len(h.Reasons) == 0 {
		t.Fatal("degraded health carries no reason")
	}
	st := svc.Stats()
	if st.Store.DirtySessions == 0 || !st.Store.DegradedMode {
		t.Fatalf("degraded stats: %+v", st.Store)
	}
	// Still serving: reads and writes keep working off the live tier.
	submit(2)
	if _, err := svc.Result(context.Background(), id); err != nil {
		t.Fatalf("result while degraded: %v", err)
	}

	// Heal and wait: the half-open probe must recover everything by itself.
	fs.Heal()
	waitStats(t, svc, func(s Stats) bool {
		return s.Store.DirtySessions == 0 && !s.Store.DegradedMode
	})
	if h := svc.Health(); !h.Ready || h.BreakerState != string(breakerClosed) {
		t.Fatalf("recovered health: %+v", h)
	}
	if svc.Stats().Store.PersistRetries == 0 {
		t.Error("recovery recorded no persist retries")
	}
	svc.Close()

	// Every acked answer survived: a fresh service on the same dir recovers
	// the session with the full answer count.
	svc2, err := New(Config{Persist: mustOpenFile(t, dir), Logger: obs.NopLogger()})
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	qv, err := svc2.Questions(context.Background(), id, 1)
	if err != nil {
		t.Fatalf("recovered session: %v", err)
	}
	if qv.Asked != acked {
		t.Fatalf("recovered asked = %d, want %d acked answers", qv.Asked, acked)
	}
}

// waitStats polls the service's stats until cond holds.
func waitStats(t *testing.T, svc *Service, cond func(Stats) bool) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for !cond(svc.Stats()) {
		if time.Now().After(deadline) {
			t.Fatalf("stats never converged: %+v", svc.Stats().Store)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func mustOpenFile(t *testing.T, dir string) *persist.File {
	t.Helper()
	f, err := persist.NewFile(persist.FileOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	return f
}
