package service

import (
	"errors"
	"testing"
	"time"
)

// fakeClock drives the gate's token refill deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func testGate(rate float64, burst, maxInflight int) (*gate, *fakeClock) {
	g := newGate(rate, burst, maxInflight)
	clk := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	if g != nil {
		g.now = clk.now
	}
	return g, clk
}

// TestGateDisabled pins the zero-config fast path: no gate at all.
func TestGateDisabled(t *testing.T) {
	if g := newGate(0, 0, 0); g != nil {
		t.Fatal("disabled gate should be nil")
	}
}

// TestGateRateLimitIsolatesClients pins the core admission property: one
// client exhausting its bucket gets 429-shaped errors with a usable
// Retry-After, while a different client keeps being admitted.
func TestGateRateLimitIsolatesClients(t *testing.T) {
	g, clk := testGate(1, 2, 0) // 1 token/s, burst 2
	for i := 0; i < 2; i++ {
		if _, err := g.admit("abuser"); err != nil {
			t.Fatalf("admit %d within burst: %v", i, err)
		}
	}
	_, err := g.admit("abuser")
	if !errors.Is(err, ErrRateLimited) {
		t.Fatalf("over-burst admit: got %v, want ErrRateLimited", err)
	}
	var rl *RateLimitError
	if !errors.As(err, &rl) || rl.RetryAfter <= 0 || rl.RetryAfter > time.Second {
		t.Fatalf("RetryAfter out of range: %+v", rl)
	}
	// Another client is unaffected by the abuser's empty bucket.
	if _, err := g.admit("polite"); err != nil {
		t.Fatalf("independent client blocked: %v", err)
	}
	// After the advertised wait the abuser has a token again.
	clk.advance(rl.RetryAfter + time.Millisecond)
	if _, err := g.admit("abuser"); err != nil {
		t.Fatalf("admit after refill: %v", err)
	}
}

// TestGateInflightCap pins the global shed path: at capacity every client is
// told ErrOverloaded without its bucket being charged, and releasing a slot
// readmits immediately.
func TestGateInflightCap(t *testing.T) {
	g, _ := testGate(100, 100, 2)
	rel1, err := g.admit("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.admit("b"); err != nil {
		t.Fatal(err)
	}
	if _, err := g.admit("c"); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("at cap: got %v, want ErrOverloaded", err)
	}
	// The shed must not have charged c's bucket: after release, c is
	// admitted with its full burst intact.
	rel1()
	if got := g.inflightNow(); got != 1 {
		t.Fatalf("inflight after release: %d, want 1", got)
	}
	if _, err := g.admit("c"); err != nil {
		t.Fatalf("admit after release: %v", err)
	}
}

// TestGatePrune pins the bounded-memory property: fully-refilled buckets are
// reclaimable, so idle clients do not grow the map forever.
func TestGatePrune(t *testing.T) {
	g, clk := testGate(10, 10, 0)
	if _, err := g.admit("old"); err != nil {
		t.Fatal(err)
	}
	clk.advance(10 * time.Second) // far past full refill
	g.mu.Lock()
	g.pruneLocked(clk.now())
	_, kept := g.clients["old"]
	g.mu.Unlock()
	if kept {
		t.Fatal("fully-refilled bucket not pruned")
	}
}
