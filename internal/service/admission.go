package service

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"
)

// ErrRateLimited is the errors.Is target for per-client rate limiting; the
// concrete error is a *RateLimitError carrying the suggested retry delay.
// Transports map it to HTTP 429 with a Retry-After header.
var ErrRateLimited = errors.New("service: client rate limit exceeded")

// ErrOverloaded reports that the service is at its max-inflight request
// capacity. Transports map it to HTTP 503 with a short Retry-After: unlike a
// rate-limit verdict it is not the caller's fault, just bad timing.
var ErrOverloaded = errors.New("service: too many requests in flight")

// RateLimitError is the concrete rate-limit verdict: which client was over
// its token bucket and how long until a token is available.
type RateLimitError struct {
	Client     string
	RetryAfter time.Duration
}

func (e *RateLimitError) Error() string {
	return fmt.Sprintf("service: client %q over rate limit (retry in %s)", e.Client, e.RetryAfter.Round(time.Millisecond))
}

// Is makes errors.Is(err, ErrRateLimited) true for every RateLimitError.
func (e *RateLimitError) Is(target error) bool { return target == ErrRateLimited }

// maxTrackedClients bounds the per-client bucket map; beyond it, buckets idle
// long enough to have fully refilled are pruned (they carry no state a fresh
// bucket wouldn't).
const maxTrackedClients = 16384

// gate is the admission controller: a token bucket per client (sustained
// rate + burst) in front of a global max-inflight cap. One abusive client
// drains only its own bucket — everyone else's requests, and the shared
// worker pool behind them, keep flowing.
type gate struct {
	rate        float64 // tokens per second per client; <= 0 disables
	burst       float64 // bucket depth
	maxInflight int     // <= 0 disables
	now         func() time.Time

	mu       sync.Mutex
	clients  map[string]*tokenBucket
	inflight int
}

type tokenBucket struct {
	tokens float64
	last   time.Time
}

// newGate builds the controller; returns nil when both mechanisms are off so
// the Admit fast path is one nil check.
func newGate(rate float64, burst, maxInflight int) *gate {
	if rate <= 0 && maxInflight <= 0 {
		return nil
	}
	b := float64(burst)
	if b <= 0 {
		// Default burst: a second's worth of tokens, at least 1 — small
		// enough that a runaway loop trips quickly, large enough that an
		// honest client's batch of follow-up calls is not punished.
		b = math.Max(1, rate)
	}
	return &gate{
		rate:        rate,
		burst:       b,
		maxInflight: maxInflight,
		now:         time.Now,
		clients:     make(map[string]*tokenBucket),
	}
}

// admit charges one request to client's bucket and claims an inflight slot.
// On success the returned release must be called when the request finishes;
// on failure release is nil and the error is a *RateLimitError or
// ErrOverloaded.
func (g *gate) admit(client string) (release func(), err error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	// Inflight first: an overloaded server sheds without charging anyone's
	// bucket, so clients retrying after a 503 are not also rate-limited.
	if g.maxInflight > 0 && g.inflight >= g.maxInflight {
		return nil, ErrOverloaded
	}
	if g.rate > 0 {
		now := g.now()
		tb, ok := g.clients[client]
		if !ok {
			if len(g.clients) >= maxTrackedClients {
				g.pruneLocked(now)
			}
			tb = &tokenBucket{tokens: g.burst, last: now}
			g.clients[client] = tb
		}
		tb.tokens = math.Min(g.burst, tb.tokens+now.Sub(tb.last).Seconds()*g.rate)
		tb.last = now
		if tb.tokens < 1 {
			wait := time.Duration((1 - tb.tokens) / g.rate * float64(time.Second))
			return nil, &RateLimitError{Client: client, RetryAfter: wait}
		}
		tb.tokens--
	}
	if g.maxInflight > 0 {
		g.inflight++
		return func() {
			g.mu.Lock()
			g.inflight--
			g.mu.Unlock()
		}, nil
	}
	return func() {}, nil
}

// pruneLocked drops buckets that have fully refilled: a client absent long
// enough to be back at full burst is indistinguishable from a new one.
func (g *gate) pruneLocked(now time.Time) {
	refill := time.Duration(g.burst / g.rate * float64(time.Second))
	for id, tb := range g.clients {
		if now.Sub(tb.last) > refill {
			delete(g.clients, id)
		}
	}
}

// inflightNow reports the current inflight count (for the gauge).
func (g *gate) inflightNow() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inflight
}
