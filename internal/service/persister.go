package service

import "sync"

// persister coalesces dirty-session notifications and writes them to the
// durable backend from one background goroutine. Sessions are persisted
// whole-delta at a time: many answers accepted while a write is in flight
// collapse into the next write, so a hot session costs one disk append per
// drain, not per answer.
type persister struct {
	persist func(id string) // the store's persistOne

	mu       sync.Mutex
	cond     *sync.Cond
	dirty    map[string]struct{}
	inflight bool
	stopped  bool
	done     chan struct{}
}

func newPersister(persist func(string)) *persister {
	p := &persister{
		persist: persist,
		dirty:   make(map[string]struct{}),
		done:    make(chan struct{}),
	}
	p.cond = sync.NewCond(&p.mu)
	go p.loop()
	return p
}

// enqueue marks a session dirty. Duplicate marks coalesce.
func (p *persister) enqueue(id string) {
	p.mu.Lock()
	if !p.stopped {
		p.dirty[id] = struct{}{}
		p.cond.Broadcast()
	}
	p.mu.Unlock()
}

// pending reports how many sessions await a durable write (including the
// one being written right now).
func (p *persister) pending() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := len(p.dirty)
	if p.inflight {
		n++
	}
	return n
}

// flush blocks until every enqueued session has been written.
func (p *persister) flush() {
	p.mu.Lock()
	for len(p.dirty) > 0 || p.inflight {
		p.cond.Wait()
	}
	p.mu.Unlock()
}

// stopAndDrain writes everything still queued, then stops the goroutine.
func (p *persister) stopAndDrain() {
	p.mu.Lock()
	p.stopped = true
	p.cond.Broadcast()
	p.mu.Unlock()
	<-p.done
}

func (p *persister) loop() {
	defer close(p.done)
	p.mu.Lock()
	for {
		for len(p.dirty) == 0 && !p.stopped {
			p.cond.Wait()
		}
		if len(p.dirty) == 0 { // stopped and drained
			p.mu.Unlock()
			return
		}
		var id string
		for k := range p.dirty {
			id = k
			break
		}
		delete(p.dirty, id)
		p.inflight = true
		p.mu.Unlock()

		p.persist(id)

		p.mu.Lock()
		p.inflight = false
		p.cond.Broadcast()
	}
}
