package service

import (
	"log/slog"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"crowdtopk/internal/obs"
)

// Retry policy for failed durable writes.
const (
	// retryBaseDelay and retryMaxDelay bound the exponential backoff between
	// retries of one session's failed write (jitter on top).
	retryBaseDelay = 25 * time.Millisecond
	retryMaxDelay  = 5 * time.Second
	// retryBudget is how many consecutive failed attempts a session gets at
	// backoff cadence before it is parked at parkedRetryEvery. Parked
	// sessions stay dirty and stay queued — acked answers are never dropped
	// — they just stop competing for attempts until the backend shows life.
	retryBudget      = 6
	parkedRetryEvery = 30 * time.Second
)

// mPersistBackoffWait records the retry/backoff waits the persister schedules
// after failed durable writes — the "where did durability latency go" stage
// the WAL/fsync/snapshot histograms in internal/persist cannot see.
var mPersistBackoffWait = obs.Default.Histogram("crowdtopk_persist_backoff_wait_seconds",
	"Scheduled retry/backoff wait before re-attempting a failed durable write, in seconds.", nil)

// retryEntry is the persister's bookkeeping for one dirty session.
type retryEntry struct {
	attempts int       // consecutive failures in this dirty cycle
	due      time.Time // earliest next attempt (zero = immediately)
	parked   bool      // retry budget exhausted; slow cadence until a success
	lastGen  uint64    // latest urgency generation this entry was attempted in
}

// persister coalesces dirty-session notifications and writes them to the
// durable backend from one background goroutine. Sessions are persisted
// whole-delta at a time: many answers accepted while a write is in flight
// collapse into the next write, so a hot session costs one disk append per
// drain, not per answer.
//
// Failed writes are retried with exponential backoff + jitter under a
// per-session budget, and every outcome feeds the circuit breaker: while it
// is open only the half-open probe touches the backend, so a dead disk sees
// one write per cooldown instead of a retry storm. flush and stopAndDrain
// declare an urgency generation — every dirty session gets one immediate
// attempt regardless of backoff or breaker — which is what bounds a
// graceful shutdown over a broken backend.
type persister struct {
	persist func(id string) error // the store's persistOne
	brk     *breaker
	log     *slog.Logger

	mu         sync.Mutex
	cond       *sync.Cond
	rng        *rand.Rand // backoff jitter; guarded by mu
	dirty      map[string]*retryEntry
	inflight   bool
	inflightID string
	stopped    bool
	flushing   int    // active flush calls (urgent mode)
	gen        uint64 // urgency generation, bumped by flush/stopAndDrain
	done       chan struct{}

	retries    atomic.Uint64 // persist attempts that were retries of a failure
	parkEvents atomic.Uint64 // sessions that exhausted their retry budget
}

func newPersister(persist func(string) error, brk *breaker, log *slog.Logger) *persister {
	p := &persister{
		persist: persist,
		brk:     brk,
		log:     log,
		rng:     rand.New(rand.NewSource(time.Now().UnixNano())),
		dirty:   make(map[string]*retryEntry),
		done:    make(chan struct{}),
	}
	p.cond = sync.NewCond(&p.mu)
	go p.loop()
	return p
}

// enqueue marks a session dirty. Duplicate marks coalesce; a parked session
// gets a fresh retry budget (new acked answers mean new urgency, and the
// backend may have healed without a breaker probe noticing yet).
func (p *persister) enqueue(id string) {
	p.mu.Lock()
	if !p.stopped {
		if e, ok := p.dirty[id]; ok {
			if e.parked {
				e.parked = false
				e.attempts = 0
				e.due = time.Time{}
			}
		} else {
			p.dirty[id] = &retryEntry{}
		}
		p.cond.Broadcast()
	}
	p.mu.Unlock()
}

// pending reports how many sessions await a durable write (including the
// one being written right now).
func (p *persister) pending() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := len(p.dirty)
	if p.inflight {
		n++
	}
	return n
}

// retryCount reports how many persist attempts were retries of a failure.
func (p *persister) retryCount() uint64 { return p.retries.Load() }

// flush pushes every dirty session to the backend: each gets one immediate
// attempt regardless of backoff or breaker state, then flush returns — so a
// healthy backend drains fully, and a broken one costs one failed write per
// dirty session instead of blocking forever.
func (p *persister) flush() {
	p.mu.Lock()
	p.gen++
	gen := p.gen
	p.flushing++
	for _, e := range p.dirty {
		e.due = time.Time{}
	}
	p.cond.Broadcast()
	for {
		if !p.inflight && (len(p.dirty) == 0 || p.allAttemptedLocked(gen)) {
			break
		}
		p.cond.Wait()
	}
	p.flushing--
	p.mu.Unlock()
}

// allAttemptedLocked reports whether every dirty session has been attempted
// at least once in generation gen or later. Called with p.mu held.
func (p *persister) allAttemptedLocked(gen uint64) bool {
	for _, e := range p.dirty {
		if e.lastGen < gen {
			return false
		}
	}
	return true
}

// stopAndDrain gives every dirty session one final write attempt and stops
// the goroutine, never blocking past deadline: a wedged backend must not
// hang SIGTERM. It returns the ids left dirty (abandoned in memory; their
// durable copies are stale), empty on a clean drain.
func (p *persister) stopAndDrain(deadline time.Time) (left []string) {
	p.mu.Lock()
	p.stopped = true
	p.gen++
	gen := p.gen
	for _, e := range p.dirty {
		e.due = time.Time{}
	}
	p.cond.Broadcast()
	for {
		if !p.inflight && (len(p.dirty) == 0 || p.allAttemptedLocked(gen)) {
			break
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			break
		}
		p.timedWaitLocked(remain)
	}
	if p.inflightID != "" {
		left = append(left, p.inflightID)
	}
	for id := range p.dirty {
		left = append(left, id)
	}
	sort.Strings(left)
	p.mu.Unlock()
	return left
}

// timedWaitLocked waits on the condvar, waking after at most d. Called with
// p.mu held.
func (p *persister) timedWaitLocked(d time.Duration) {
	if d < time.Millisecond {
		d = time.Millisecond
	}
	t := time.AfterFunc(d, func() {
		p.mu.Lock()
		p.cond.Broadcast()
		p.mu.Unlock()
	})
	p.cond.Wait()
	t.Stop()
}

// pickLocked chooses the next session to attempt: in urgent mode (flush or
// drain) anything not yet attempted this generation, otherwise anything past
// its due time — earliest due first, so backoff order is respected. Called
// with p.mu held.
func (p *persister) pickLocked(urgent bool, now time.Time) (string, *retryEntry) {
	var bestID string
	var best *retryEntry
	for id, e := range p.dirty {
		if urgent {
			if e.lastGen >= p.gen {
				continue
			}
		} else if e.due.After(now) {
			continue
		}
		if best == nil || e.due.Before(best.due) {
			best, bestID = e, id
		}
	}
	return bestID, best
}

// nextDueLocked returns how long until the earliest dirty session is due
// (zero when something is due already, a long poll when nothing is queued).
// Called with p.mu held.
func (p *persister) nextDueLocked(now time.Time) time.Duration {
	wake := time.Second
	for _, e := range p.dirty {
		if d := e.due.Sub(now); d < wake {
			wake = d
		}
	}
	return wake
}

// backoff is the wait before retry number attempts, with jitter. Called with
// p.mu held (the jitter source is guarded by it).
func (p *persister) backoff(attempts int) time.Duration {
	shift := attempts - 1
	if shift > 8 { // 25ms << 8 is already past the cap
		shift = 8
	}
	d := retryBaseDelay << shift
	if d > retryMaxDelay {
		d = retryMaxDelay
	}
	return d + time.Duration(p.rng.Int63n(int64(d)/2+1))
}

// unparkAllLocked resets every parked session to immediate retry — called
// after any successful write, which proves the backend is alive again.
// Called with p.mu held.
func (p *persister) unparkAllLocked() {
	for _, e := range p.dirty {
		if e.parked {
			e.parked = false
			e.attempts = 0
			e.due = time.Time{}
		}
	}
}

func (p *persister) loop() {
	defer close(p.done)
	p.mu.Lock()
	for {
		if p.stopped && (len(p.dirty) == 0 || p.allAttemptedLocked(p.gen)) {
			p.mu.Unlock()
			return
		}
		if len(p.dirty) == 0 {
			p.cond.Wait()
			continue
		}
		now := time.Now()
		urgent := p.stopped || p.flushing > 0
		if !urgent {
			// Breaker gate: while open, wait out the cooldown; allow() then
			// admits this goroutine as the single half-open probe.
			if ok, wait := p.brk.allow(); !ok {
				p.timedWaitLocked(wait)
				continue
			}
		}
		id, entry := p.pickLocked(urgent, now)
		if id == "" {
			// Everything is backing off (or already attempted this urgent
			// generation): sleep until the earliest due time or a new mark.
			p.timedWaitLocked(p.nextDueLocked(now))
			continue
		}
		delete(p.dirty, id)
		if entry.attempts > 0 {
			p.retries.Add(1)
		}
		attempted := *entry
		attempted.lastGen = p.gen
		p.inflight = true
		p.inflightID = id
		p.mu.Unlock()

		err := p.persist(id)
		if err == nil {
			p.brk.success()
		} else {
			p.brk.failure()
		}

		p.mu.Lock()
		p.inflight = false
		p.inflightID = ""
		if err == nil {
			// Any success proves the backend is alive: retry parked sessions
			// right away instead of waiting out their slow cadence.
			p.unparkAllLocked()
			p.cond.Broadcast()
			continue
		}
		if cur, ok := p.dirty[id]; ok {
			// Re-marked while the failed write was in flight: keep the fresh
			// entry (due immediately) but carry the attempt bookkeeping so
			// the backoff ladder and urgency accounting stay truthful.
			cur.attempts = attempted.attempts + 1
			cur.lastGen = attempted.lastGen
		} else {
			attempted.attempts++
			if p.stopped {
				// Final drain attempt failed; leave the entry for the
				// left-dirty report and let the exit condition see it.
			} else if attempted.attempts >= retryBudget {
				if !attempted.parked {
					p.parkEvents.Add(1)
					if p.log != nil {
						p.log.Warn("persister: retry budget exhausted, parking session",
							"session", id, "attempts", attempted.attempts, "retry_every", parkedRetryEvery.String())
					}
				}
				attempted.parked = true
				wait := parkedRetryEvery + p.backoff(1)
				mPersistBackoffWait.Observe(wait.Seconds())
				attempted.due = now.Add(wait)
			} else {
				wait := p.backoff(attempted.attempts)
				mPersistBackoffWait.Observe(wait.Seconds())
				attempted.due = now.Add(wait)
			}
			p.dirty[id] = &attempted
		}
		p.cond.Broadcast()
	}
}
