package service

import (
	"crowdtopk/internal/obs"
	"crowdtopk/internal/pcache"
	"crowdtopk/internal/persist"
	"crowdtopk/internal/selection"
)

// Process-wide event counters: shared by every Service in the process (tests
// build many; a deployment runs one), so they register once at package init.
var (
	mTransitions = obs.Default.CounterVec("crowdtopk_session_transitions_total",
		"Session lifecycle transitions, by state entered.", "state")
	mAnswersAccepted = obs.Default.Counter("crowdtopk_answers_accepted_total",
		"Crowd answers accepted and applied.")
	mContradictions = obs.Default.Counter("crowdtopk_answer_contradictions_total",
		"Accepted answers that contradicted the current belief.")
	mQuestionsServed = obs.Default.Counter("crowdtopk_questions_served_total",
		"Questions delivered to callers.")
	mSessionsCreated = obs.Default.CounterVec("crowdtopk_sessions_created_total",
		"Sessions created, by origin.", "origin") // fresh | restore
	mAdmissionRejected = obs.Default.CounterVec("crowdtopk_admission_rejected_total",
		"Requests rejected at admission, by reason.", "reason") // rate | inflight
	mBreakerTransitions = obs.Default.CounterVec("crowdtopk_breaker_transitions_total",
		"Durable-tier circuit breaker transitions, by state entered.", "state") // closed | open | half-open
)

// registerCollectors points the scrape-time gauge/counter families at this
// Service's store and pool. Re-registration replaces the previous Service's
// collectors (obs func families are replace-on-register), so the last
// constructed Service owns the families — exactly one runs in a deployment.
func (s *Service) registerCollectors() {
	r := obs.Default
	st := s.store

	r.GaugeFunc("crowdtopk_sessions_live",
		"Hydrated in-memory sessions.", func() float64 { return float64(st.len()) })
	r.GaugeFunc("crowdtopk_sessions_known",
		"Known sessions including disk-resident ones.", func() float64 { return float64(st.known()) })
	r.GaugeFunc("crowdtopk_sessions_dirty",
		"Sessions with accepted answers awaiting their durable write.", func() float64 {
			if st.bg == nil {
				return 0
			}
			return float64(st.bg.pending())
		})
	r.RegisterFunc("crowdtopk_sessions_by_state",
		"Live sessions by lifecycle state.", "gauge", []string{"state"}, func() []obs.Sample {
			counts := st.stateCounts()
			out := make([]obs.Sample, 0, len(counts))
			for state, n := range counts {
				out = append(out, obs.Sample{Labels: []string{state}, Value: float64(n)})
			}
			return out
		})
	r.CounterFunc("crowdtopk_evictions_to_disk_total",
		"Idle sessions moved memory to disk.", func() float64 { return float64(st.evictions.Load()) })
	r.CounterFunc("crowdtopk_hydration_hits_total",
		"Lazy loads that found the session on disk.", func() float64 { return float64(st.hydraHits.Load()) })
	r.CounterFunc("crowdtopk_hydration_misses_total",
		"Lazy loads that found nothing anywhere.", func() float64 { return float64(st.hydraMisses.Load()) })
	r.CounterFunc("crowdtopk_persist_errors_total",
		"Failed durable writes (answers stay live).", func() float64 { return float64(st.persistErrors.Load()) })
	r.CounterFunc("crowdtopk_persist_retries_total",
		"Durable-write attempts that were retries of a failure.", func() float64 {
			if st.bg == nil {
				return 0
			}
			return float64(st.bg.retryCount())
		})
	r.CounterFunc("crowdtopk_evictions_refused_total",
		"Evictions refused because acked answers were not yet durable.",
		func() float64 { return float64(st.evictionsRefused.Load()) })
	r.GaugeFunc("crowdtopk_degraded_mode",
		"1 while the durable-tier circuit breaker is non-closed (degraded serving).",
		func() float64 {
			if st.degraded() {
				return 1
			}
			return 0
		})
	r.GaugeFunc("crowdtopk_sessions_quarantined",
		"Known sessions whose durable copies sit in the quarantine area.",
		func() float64 { return float64(st.quarantinedCount()) })
	r.CounterFunc("crowdtopk_quarantines_total",
		"Corrupt sessions moved to the quarantine area by this process.",
		func() float64 { return float64(st.quarantines.Load()) })

	pool := s.pool
	r.GaugeFunc("crowdtopk_pool_workers_in_use",
		"Worker-pool slots currently granted.", func() float64 { return float64(pool.InUse()) })
	r.GaugeFunc("crowdtopk_pool_workers_cap",
		"Worker-pool slot capacity.", func() float64 { return float64(pool.Cap()) })
	r.GaugeFunc("crowdtopk_pool_saturation",
		"Worker-pool saturation in [0,1]: in_use / cap.", func() float64 {
			return float64(pool.InUse()) / float64(pool.Cap())
		})

	gate := s.gate
	r.GaugeFunc("crowdtopk_admission_inflight",
		"Requests currently admitted and executing.", func() float64 {
			if gate == nil {
				return 0
			}
			return float64(gate.inflightNow())
		})

	// π-cache: hits/misses reset with pcache.Reset (rare, counted), so the
	// totals are "since last reset" — the resets counter disambiguates.
	r.CounterFunc("crowdtopk_pcache_hits_total",
		"Pairwise-probability cache hits since the last cache reset.",
		func() float64 { return float64(pcache.Stats().Hits) })
	r.CounterFunc("crowdtopk_pcache_misses_total",
		"Pairwise-probability cache misses since the last cache reset.",
		func() float64 { return float64(pcache.Stats().Misses) })
	r.CounterFunc("crowdtopk_pcache_resets_total",
		"Wholesale pairwise-probability cache clears.",
		func() float64 { return float64(pcache.Stats().Resets) })
	r.GaugeFunc("crowdtopk_pcache_entries",
		"Pairwise-probability cache resident entries.",
		func() float64 { return float64(pcache.Stats().Entries) })
	r.GaugeFunc("crowdtopk_pcache_hit_rate",
		"Pairwise-probability cache lifetime hit rate in [0,1].",
		func() float64 { return pcache.Stats().HitRate })

	r.RegisterFunc("crowdtopk_live_engine_events_total",
		"Incremental selection-engine events.", "counter", []string{"event"}, func() []obs.Sample {
			c := selection.LiveEngineStats()
			return []obs.Sample{
				{Labels: []string{"reuse"}, Value: float64(c.Reuses)},
				{Labels: []string{"rebuild"}, Value: float64(c.Rebuilds)},
				{Labels: []string{"patch"}, Value: float64(c.Patches)},
				{Labels: []string{"resync"}, Value: float64(c.Resyncs)},
				{Labels: []string{"compaction"}, Value: float64(c.Compactions)},
				{Labels: []string{"invalidation"}, Value: float64(c.Invalidations)},
			}
		})

	if cs, ok := st.disk.(persist.CounterSource); ok {
		r.RegisterFunc("crowdtopk_persist_activity_total",
			"Durable-store activity.", "counter", []string{"op"}, func() []obs.Sample {
				c := cs.Counters()
				return []obs.Sample{
					{Labels: []string{"snapshot"}, Value: float64(c.Snapshots)},
					{Labels: []string{"wal_append"}, Value: float64(c.WALAppends)},
					{Labels: []string{"replay"}, Value: float64(c.Replays)},
					{Labels: []string{"recover"}, Value: float64(c.RecoveredSessions)},
					{Labels: []string{"fsync"}, Value: float64(c.Fsyncs)},
					{Labels: []string{"torn_tail"}, Value: float64(c.TornTails)},
					{Labels: []string{"quarantine"}, Value: float64(c.Quarantines)},
				}
			})
	}
}
