package service

import (
	"sync"
	"time"
)

// breakerState is one of the circuit breaker's three states. The string
// values travel to /v1/stats and the audit log.
type breakerState string

const (
	// breakerClosed: the durable backend is healthy; writes flow normally.
	breakerClosed breakerState = "closed"
	// breakerOpen: consecutive failures crossed the threshold; writes are
	// withheld until the cooldown expires, then one probe is allowed.
	breakerOpen breakerState = "open"
	// breakerHalfOpen: the cooldown expired and a single probe write is in
	// flight; its outcome closes or re-opens the breaker.
	breakerHalfOpen breakerState = "half-open"
)

const (
	// breakerThreshold is how many consecutive durable-write failures open
	// the breaker.
	breakerThreshold = 5
	// breakerCooldownMin/Max bound the open-state cooldown before a
	// half-open probe; it doubles per failed probe.
	breakerCooldownMin = 500 * time.Millisecond
	breakerCooldownMax = 30 * time.Second
)

// breaker is a circuit breaker over the durable backend, fed by the
// persister: consecutive write failures open it, which puts the service in
// degraded mode (live-tier serving, dirty sessions queued, /ready 503);
// periodic half-open probes close it again once the backend heals, with no
// operator action. Only the persister goroutine attempts writes while the
// breaker is non-closed, so a broken disk sees one probe per cooldown, not a
// retry storm.
type breaker struct {
	mu           sync.Mutex
	state        breakerState
	consecutive  int // consecutive failures while closed
	opens        int // consecutive open episodes without an intervening success
	probeAt      time.Time
	now          func() time.Time            // test seam
	onTransition func(from, to breakerState) // called outside the lock
}

func newBreaker(onTransition func(from, to breakerState)) *breaker {
	return &breaker{state: breakerClosed, now: time.Now, onTransition: onTransition}
}

// setState transitions and returns the notification to run after unlocking
// (the callback logs, audits and bumps metrics — never under b.mu).
func (b *breaker) setState(to breakerState) func() {
	from := b.state
	if from == to {
		return nil
	}
	b.state = to
	if b.onTransition == nil {
		return nil
	}
	cb := b.onTransition
	return func() { cb(from, to) }
}

// allow reports whether a durable write may be attempted now; when the
// breaker is open it also returns how long until the next half-open probe.
func (b *breaker) allow() (ok bool, wait time.Duration) {
	b.mu.Lock()
	var notify func()
	switch b.state {
	case breakerClosed, breakerHalfOpen:
		ok = true
	case breakerOpen:
		if now := b.now(); !now.Before(b.probeAt) {
			notify = b.setState(breakerHalfOpen)
			ok = true // this caller is the probe
		} else {
			wait = b.probeAt.Sub(now)
		}
	}
	b.mu.Unlock()
	if notify != nil {
		notify()
	}
	return ok, wait
}

// success records a successful durable write, closing the breaker.
func (b *breaker) success() {
	b.mu.Lock()
	b.consecutive = 0
	b.opens = 0
	notify := b.setState(breakerClosed)
	b.mu.Unlock()
	if notify != nil {
		notify()
	}
}

// failure records a failed durable write, opening the breaker when the
// consecutive-failure threshold is crossed (immediately for a failed
// half-open probe, with a doubled cooldown).
func (b *breaker) failure() {
	b.mu.Lock()
	var notify func()
	switch b.state {
	case breakerClosed:
		b.consecutive++
		if b.consecutive >= breakerThreshold {
			b.opens = 1
			b.probeAt = b.now().Add(b.cooldown())
			notify = b.setState(breakerOpen)
		}
	case breakerHalfOpen:
		b.opens++
		b.probeAt = b.now().Add(b.cooldown())
		notify = b.setState(breakerOpen)
	case breakerOpen:
		// A non-probe failure while open (an eviction raced the transition):
		// nothing new to learn.
	}
	b.mu.Unlock()
	if notify != nil {
		notify()
	}
}

// cooldown is the open-state wait before the next probe: exponential in the
// number of consecutive open episodes, bounded. Called with b.mu held.
func (b *breaker) cooldown() time.Duration {
	shift := b.opens - 1
	if shift > 10 { // 500ms << 10 is already past the cap
		shift = 10
	}
	d := breakerCooldownMin << shift
	if d > breakerCooldownMax {
		d = breakerCooldownMax
	}
	return d
}

// currentState reads the state without side effects.
func (b *breaker) currentState() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// degraded reports whether the durable tier is currently distrusted (open or
// probing). The serving layer maps this to /ready 503 and the
// degraded_mode gauge.
func (b *breaker) degraded() bool { return b.currentState() != breakerClosed }
