package service

import (
	"context"
	"testing"
	"time"

	"crowdtopk/internal/dist"
	"crowdtopk/internal/obs"
	"crowdtopk/internal/persist"
	"crowdtopk/internal/session"
	"crowdtopk/internal/tpo"
)

// storeTestSession builds a small session directly (no HTTP) for white-box
// store tests.
func storeTestSession(t *testing.T) *session.Session {
	t.Helper()
	ds := make([]dist.Distribution, 5)
	for i := range ds {
		u, err := dist.NewUniformAround(float64(i)*0.5, 1.6)
		if err != nil {
			t.Fatal(err)
		}
		ds[i] = u
	}
	s, err := session.New(session.Config{Dists: ds, K: 2, Budget: 4})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// newDiskStore builds a store over a file backend with a TTL long enough
// that the janitor never interferes; tests drive eviction explicitly.
func newDiskStore(t *testing.T) *store {
	t.Helper()
	disk, err := persist.NewFile(persist.FileOptions{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	st, err := newStore(time.Minute, 0, disk, obs.NopLogger(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(st.close)
	return st
}

// TestMarkDirtyReattachesEvictedSession pins the stale-handler path: a
// request handler that held the session across a TTL eviction can still
// accept an answer, and the dirty hook must bring that very object back into
// the memory tier so the acked answer reaches the durable backend.
func TestMarkDirtyReattachesEvictedSession(t *testing.T) {
	st := newDiskStore(t)
	sess := storeTestSession(t)
	id, err := st.add(sess)
	if err != nil {
		t.Fatal(err)
	}
	qs, _, err := sess.NextQuestions(1)
	if err != nil || len(qs) == 0 {
		t.Fatalf("no question issued (err %v)", err)
	}
	st.evictToDisk(id, time.Now().Add(time.Hour))
	if n := st.len(); n != 0 {
		t.Fatalf("session not evicted: %d live", n)
	}
	// The held handler's answer lands on the evicted object.
	if err := sess.SubmitAnswer(tpo.Answer{Q: qs[0], Yes: true}); err != nil {
		t.Fatal(err)
	}
	if n := st.len(); n != 1 {
		t.Fatalf("dirty hook did not re-attach: %d live", n)
	}
	if cur, err := st.live.Get(id); err != nil || cur != sess {
		t.Fatalf("memory tier holds %p (err %v), want the answering object %p", cur, err, sess)
	}
	// The answer is durable: a restore from the backend sees it.
	st.flush()
	re, err := st.disk.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := re.Status().Asked, sess.Status().Asked; got != want || want == 0 {
		t.Fatalf("restored session has %d answers, live fork has %d", got, want)
	}
}

// TestMarkDirtyResolvesHydrationFork covers the race the plain re-attach
// misses: after the eviction, a lazy hydration loads a second object for the
// same id from disk; the held handler then accepts an answer on the original.
// Two forks now exist and the resident one is missing an acked answer — the
// store must swap the fork with more accepted progress back in, or the
// durable write triggered by the answer would persist a copy without it.
func TestMarkDirtyResolvesHydrationFork(t *testing.T) {
	st := newDiskStore(t)
	sess := storeTestSession(t)
	id, err := st.add(sess)
	if err != nil {
		t.Fatal(err)
	}
	qs, _, err := sess.NextQuestions(1)
	if err != nil || len(qs) == 0 {
		t.Fatalf("no question issued (err %v)", err)
	}
	st.evictToDisk(id, time.Now().Add(time.Hour))
	cur, err := st.get(context.Background(), id) // lazy hydration: a distinct object for the same id
	if err != nil {
		t.Fatal(err)
	}
	if cur == sess {
		t.Fatal("hydration returned the evicted object; fork not reproduced")
	}
	if err := sess.SubmitAnswer(tpo.Answer{Q: qs[0], Yes: true}); err != nil {
		t.Fatal(err)
	}
	if got, err := st.live.Get(id); err != nil || got != sess {
		t.Fatalf("store kept the stale hydrated fork (err %v)", err)
	}
	st.flush()
	re, err := st.disk.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if got := re.Status().Asked; got != 1 {
		t.Fatalf("durable copy has %d answers, want 1 (the acked answer was lost)", got)
	}
}

// TestListRowsInternallyConsistent pins the listing snapshot semantics: the
// session object is captured under the same lock hold that read the
// hydration flag, so rows can neither claim a live session they cannot show
// (meta present, memory tier empty) nor lose an already-captured one to a
// concurrent delete.
func TestListRowsInternallyConsistent(t *testing.T) {
	st, err := newStore(time.Minute, 0, nil, obs.NopLogger(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(st.close)
	sess := storeTestSession(t)
	id, err := st.add(sess)
	if err != nil {
		t.Fatal(err)
	}

	items, total := st.list(0)
	if total != 1 || len(items) != 1 || !items[0].hydrated || items[0].sess != sess {
		t.Fatalf("live row not captured: total %d, items %+v", total, items)
	}

	// A meta entry whose session is not (yet) in the memory tier — the add
	// window, or a racing delete — must not be listed as hydrated.
	st.mu.Lock()
	st.meta["s_ghost"] = &meta{lastUsed: time.Now(), hydrated: true}
	st.hydrated++
	st.mu.Unlock()
	items, _ = st.list(0)
	found := false
	for _, it := range items {
		if it.id == "s_ghost" {
			found = true
			if it.hydrated || it.sess != nil {
				t.Fatalf("ghost row claims a live session: %+v", it)
			}
		}
	}
	if !found {
		t.Fatal("ghost row missing from listing")
	}

	// A delete after the snapshot cannot invalidate a captured row: the
	// handler can still read consistent state off it.
	items, _ = st.list(0)
	var row listItem
	for _, it := range items {
		if it.id == id {
			row = it
		}
	}
	st.remove(id)
	if row.sess == nil {
		t.Fatal("captured row lost its session")
	}
	if got := row.sess.Status(); got.Asked != 0 {
		t.Fatalf("captured row state inconsistent: %+v", got)
	}
}
