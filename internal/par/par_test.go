package par

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{1, 3, 8, 100} {
		var done [50]atomic.Int32
		errs := For(50, workers, func(_, i int) error {
			done[i].Add(1)
			return nil
		})
		if err := FirstError(errs); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range done {
			if got := done[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestForWorkerIdsAreDistinctSlots(t *testing.T) {
	const workers = 4
	var slots [workers]atomic.Int32
	For(200, workers, func(w, _ int) error {
		slots[w].Add(1) // out-of-range w would panic
		return nil
	})
}

func TestForFailFast(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int32
	errs := For(1000, 1, func(_, i int) error {
		ran.Add(1)
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(FirstError(errs), boom) {
		t.Fatalf("FirstError = %v", FirstError(errs))
	}
	if got := ran.Load(); got != 4 {
		t.Fatalf("sequential run executed %d indices after failure at 3", got)
	}
	// Parallel: unstarted indices are skipped; total executed is far below n.
	ran.Store(0)
	errs = For(1000, 4, func(_, i int) error {
		ran.Add(1)
		if i == 0 {
			return boom
		}
		return nil
	})
	if !errors.Is(FirstError(errs), boom) {
		t.Fatalf("parallel FirstError = %v", FirstError(errs))
	}
	if got := ran.Load(); got == 1000 {
		t.Fatal("parallel run did not skip any work after failure")
	}
}

func TestForZeroN(t *testing.T) {
	if errs := For(0, 4, func(_, _ int) error { t.Fatal("called"); return nil }); len(errs) != 0 {
		t.Fatalf("errs = %v", errs)
	}
}
