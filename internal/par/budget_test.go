package par

import (
	"sync"
	"testing"
)

func TestBudgetGrantsBetweenOneAndWant(t *testing.T) {
	b := NewBudget(4)
	if b.Cap() != 4 {
		t.Fatalf("Cap = %d, want 4", b.Cap())
	}
	got := b.Acquire(3)
	if got != 3 {
		t.Fatalf("uncontended Acquire(3) = %d, want 3", got)
	}
	// One slot left: a second consumer gets exactly it, without blocking on
	// the rest.
	second := b.Acquire(8)
	if second != 1 {
		t.Fatalf("contended Acquire = %d, want 1", second)
	}
	b.Release(got)
	b.Release(second)
	// Whole budget free again: want < 1 asks for as much as possible, which
	// leaves one slot of headroom so late arrivals never fully serialize.
	all := b.Acquire(0)
	if all != 3 {
		t.Fatalf("Acquire(0) = %d, want 3 (cap-1 headroom)", all)
	}
	// The headroom slot is immediately grantable without blocking.
	if late := b.Acquire(1); late != 1 {
		t.Fatalf("late arrival = %d, want 1", late)
	} else {
		b.Release(late)
	}
	b.Release(all)
	// An explicit full-budget want is honored exactly.
	if exact := b.Acquire(4); exact != 4 {
		t.Fatalf("Acquire(4) = %d, want 4", exact)
	} else {
		b.Release(exact)
	}
}

func TestBudgetNeverOversubscribes(t *testing.T) {
	const slots = 3
	b := NewBudget(slots)
	var mu sync.Mutex
	inUse, peak := 0, 0
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				got := b.Acquire(2)
				mu.Lock()
				inUse += got
				if inUse > peak {
					peak = inUse
				}
				mu.Unlock()
				mu.Lock()
				inUse -= got
				mu.Unlock()
				b.Release(got)
			}
		}()
	}
	wg.Wait()
	if peak > slots {
		t.Fatalf("peak concurrent slots = %d, budget is %d", peak, slots)
	}
	if inUse != 0 {
		t.Fatalf("slots leaked: %d still in use", inUse)
	}
}
