// Package par provides the one bounded index-worker pool shared by the TPO
// builder, the trial runner and the experiment sweeps. Keeping the pattern
// in one place keeps its semantics uniform: work is identified by index,
// results land in caller-owned per-index slots (so output order never
// depends on scheduling), and a failure stops unstarted work.
package par

import (
	"sync"
	"sync/atomic"
)

// For runs fn(worker, i) for every i in [0, n), using up to `workers`
// goroutines; workers is clamped to [1, n]. The worker argument identifies
// the executing goroutine (in [0, clamped workers)), so callers can keep
// per-worker scratch in a slice. Once any fn returns a non-nil error,
// indices not yet started are skipped (already-running calls finish); with
// one worker this is a plain fail-fast loop. The returned slice holds fn's
// error per index — nil for successes and for skipped indices — so callers
// can surface the lowest-index error deterministically (see FirstError).
func For(n, workers int, fn func(worker, i int) error) []error {
	errs := make([]error, n)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if errs[i] = fn(0, i); errs[i] != nil {
				break
			}
		}
		return errs
	}
	var failed atomic.Bool
	ch := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range ch {
				if failed.Load() {
					continue
				}
				if errs[i] = fn(w, i); errs[i] != nil {
					failed.Store(true)
				}
			}
		}(w)
	}
	for i := 0; i < n; i++ {
		ch <- i
	}
	close(ch)
	wg.Wait()
	return errs
}

// FirstError returns the lowest-index non-nil error, or nil. Reporting the
// lowest index (rather than whichever goroutine failed first on the clock)
// matches what a sequential pass over the same work would have hit first.
func FirstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
