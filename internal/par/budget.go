package par

import "runtime"

// Budget is a process-level pool of worker slots shared by independent
// consumers of For — long-lived server sessions building or extending trees
// concurrently. Each consumer asks for the parallelism it would like and is
// granted what is currently free, never less than one slot, so progress is
// guaranteed without queueing: under contention concurrent builds degrade to
// fewer workers each instead of serializing behind one another. Degrading is
// safe because every parallel operation in this repository produces results
// identical for any worker count.
type Budget struct {
	slots chan struct{}
}

// NewBudget returns a budget of n worker slots; n < 1 selects GOMAXPROCS.
func NewBudget(n int) *Budget {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Budget{slots: make(chan struct{}, n)}
}

// Cap returns the total number of slots.
func (b *Budget) Cap() int { return cap(b.slots) }

// InUse returns the number of slots currently granted. InUse/Cap is the
// pool-saturation signal the serving layer exports as a gauge.
func (b *Budget) InUse() int { return len(b.slots) }

// Acquire claims between 1 and want slots: it blocks until the first slot is
// free, then opportunistically takes more up to want without waiting.
// want < 1 (or beyond the budget) asks for as much as possible, which on a
// multi-slot budget is capped at cap-1: a greedy default consumer always
// leaves one slot of headroom, so a concurrent consumer arriving mid-build
// degrades to one worker instead of serializing behind the whole build. An
// explicit want equal to the full budget is honored exactly. The grant must
// be returned with Release.
func (b *Budget) Acquire(want int) int {
	if want < 1 || want > cap(b.slots) {
		want = cap(b.slots)
		if want > 1 {
			want-- // headroom for late arrivals
		}
	}
	b.slots <- struct{}{}
	got := 1
	for got < want {
		select {
		case b.slots <- struct{}{}:
			got++
		default:
			return got
		}
	}
	return got
}

// Release returns a grant obtained from Acquire.
func (b *Budget) Release(got int) {
	for i := 0; i < got; i++ {
		<-b.slots
	}
}
