package dist

import (
	"math"

	"crowdtopk/internal/numeric"
)

// probGridSize is the resolution of the quadrature fallback in ProbGreater.
// 4097 points keeps the trapezoid error on piecewise-linear CDFs well below
// the 1e-3 tolerances used throughout while staying cheap enough for the
// O(N²) pairwise sweeps of question selection.
const probGridSize = 4097

// ProbGreater returns P(A > B) for independent scores A ~ a and B ~ b.
//
// This is the single hottest function of TPO processing (every tree build
// and every leaf split consumes π_ij values), so pairs with closed forms
// never touch a grid:
//
//   - point masses compare directly,
//   - disjoint supports are 0 or 1,
//   - uniform/uniform integrates the piecewise-quadratic ∫ F_b over a's
//     support exactly,
//   - Gaussian/Gaussian uses Φ((μ_a−μ_b)/√(σ_a²+σ_b²)); the ±4σ truncation
//     perturbs this by less than 1e−4, far below grid error at any
//     practical resolution.
//
// Everything else evaluates ∫ f_a(x)·F_b(x) dx by trapezoid quadrature on a
// probGridSize-point grid over a's support (the integrand vanishes outside
// it).
func ProbGreater(a, b Distribution) float64 {
	if a == b {
		return 0.5 // identical continuous scores: exact by symmetry
	}
	pa, aPt := a.(*Point)
	pb, bPt := b.(*Point)
	switch {
	case aPt && bPt:
		switch {
		case pa.X > pb.X:
			return 1
		case pa.X < pb.X:
			return 0
		default:
			return 0.5 // ties split evenly, matching ProbGreater(d, d) = ½
		}
	case aPt:
		return clamp01(b.CDF(pa.X))
	case bPt:
		return clamp01(1 - a.CDF(pb.X))
	}

	alo, ahi := a.Support()
	blo, bhi := b.Support()
	if alo >= bhi {
		return 1
	}
	if ahi <= blo {
		return 0
	}

	if ua, ok := a.(*Uniform); ok {
		if ub, ok := b.(*Uniform); ok {
			return probGreaterUniform(ua, ub)
		}
	}
	if ga, ok := a.(*Gaussian); ok {
		if gb, ok := b.(*Gaussian); ok {
			return stdNormCDF((ga.Mu - gb.Mu) / math.Hypot(ga.Sigma, gb.Sigma))
		}
	}
	return probGreaterGrid(a, b)
}

// probGreaterUniform is the exact closed form for two overlapping uniforms:
// P(A > B) = (1/|A|) ∫_{a.Lo}^{a.Hi} F_b(x) dx, with the CDF antiderivative
// evaluated piecewise.
func probGreaterUniform(a, b *Uniform) float64 {
	area := b.cdfIntegralTo(a.Hi) - b.cdfIntegralTo(a.Lo)
	return clamp01(area / (a.Hi - a.Lo))
}

// probGreaterGrid is the quadrature fallback: trapezoid integration of
// f_a·F_b over a's support (the integrand vanishes elsewhere, and gridding
// only [alo, ahi] keeps full resolution when a is much narrower than b).
func probGreaterGrid(a, b Distribution) float64 {
	alo, ahi := a.Support()
	g, err := numeric.NewGrid(alo, ahi, probGridSize)
	if err != nil {
		// Degenerate overlapping zero-width supports: indistinguishable.
		return 0.5
	}
	ys := g.Sample(a.PDF)
	for i, x := range g.Points() {
		ys[i] *= b.CDF(x)
	}
	return clamp01(g.Trapezoid(ys))
}
