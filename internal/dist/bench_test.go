// Benchmarks for the distribution kernel's hot path. ProbGreater dominates
// TPO construction and question scoring (every π_ij consults it), so the
// analytic fast paths must stay measurably ahead of the grid fallback —
// compare the analytic/* timings against their matching grid-forced/*
// rows, which run the same pairs through the quadrature fallback.
package dist

import (
	"math/rand"
	"testing"
)

// benchSink defeats dead-code elimination across all benchmarks.
var benchSink float64

func benchPairs(b *testing.B) (uu, gg, ug, tp [2]Distribution) {
	b.Helper()
	u1, err := NewUniform(0, 1.4)
	if err != nil {
		b.Fatal(err)
	}
	u2, err := NewUniform(0.5, 2)
	if err != nil {
		b.Fatal(err)
	}
	g1, err := NewGaussian(0.6, 0.3)
	if err != nil {
		b.Fatal(err)
	}
	g2, err := NewGaussian(1.1, 0.4)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := NewTriangular(0, 0.8, 2)
	if err != nil {
		b.Fatal(err)
	}
	pw, err := NewPiecewiseUniform([]float64{0, 0.6, 1.3, 2}, []float64{2, 5, 3})
	if err != nil {
		b.Fatal(err)
	}
	return [2]Distribution{u1, u2}, [2]Distribution{g1, g2}, [2]Distribution{u1, g2}, [2]Distribution{tr, pw}
}

// BenchmarkProbGreater measures each evaluation path of the kernel's
// hottest function. The analytic rows (uniform/uniform, gaussian/gaussian)
// must come in far below the grid rows; grid-forced rows re-run the
// closed-form pairs through the quadrature fallback to isolate the speedup
// on identical inputs.
func BenchmarkProbGreater(b *testing.B) {
	uu, gg, ug, tp := benchPairs(b)
	b.Run("analytic/uniform-uniform", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchSink = ProbGreater(uu[0], uu[1])
		}
	})
	b.Run("analytic/gaussian-gaussian", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchSink = ProbGreater(gg[0], gg[1])
		}
	})
	b.Run("grid-forced/uniform-uniform", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchSink = probGreaterGrid(uu[0], uu[1])
		}
	})
	b.Run("grid-forced/gaussian-gaussian", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchSink = probGreaterGrid(gg[0], gg[1])
		}
	})
	b.Run("grid/uniform-gaussian", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchSink = ProbGreater(ug[0], ug[1])
		}
	})
	b.Run("grid/triangular-piecewise", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchSink = ProbGreater(tp[0], tp[1])
		}
	})
}

// BenchmarkSample measures world sampling, the per-trial setup cost of
// every simulated experiment.
func BenchmarkSample(b *testing.B) {
	uu, gg, _, tp := benchPairs(b)
	cases := []struct {
		name string
		d    Distribution
	}{
		{"uniform", uu[0]},
		{"gaussian", gg[0]},
		{"triangular", tp[0]},
		{"piecewise", tp[1]},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			for i := 0; i < b.N; i++ {
				benchSink = Sample(c.d, rng)
			}
		})
	}
}
