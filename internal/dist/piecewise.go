package dist

import (
	"fmt"
	"sort"

	"crowdtopk/internal/numeric"
)

// PiecewiseUniform is a histogram score model: constant density within each
// bin, with bin mass proportional to the supplied weights. It is the bridge
// from empirical score estimates (review histograms, sensor readings) to the
// continuous machinery of this package.
type PiecewiseUniform struct {
	edges   []float64 // len(bins)+1, strictly increasing
	weights []float64 // normalized bin masses, len(bins)
	cum     []float64 // CDF at each edge; cum[0] = 0, cum[len(edges)-1] = 1
	mean    float64
}

// NewPiecewiseUniform returns the histogram distribution with the given bin
// edges (len = bins+1, strictly increasing) and non-negative bin weights
// (len = bins, positive total). Weights are normalized internally.
func NewPiecewiseUniform(edges, weights []float64) (*PiecewiseUniform, error) {
	if len(edges) < 2 || len(weights) != len(edges)-1 {
		return nil, fmt.Errorf("%w: %d edges with %d weights", ErrInvalidParams, len(edges), len(weights))
	}
	for i, e := range edges {
		if !finite(e) || (i > 0 && !(e > edges[i-1])) {
			return nil, fmt.Errorf("%w: edges must be finite and strictly increasing, got %v", ErrInvalidParams, edges)
		}
	}
	var total numeric.KahanSum
	for _, w := range weights {
		if !finite(w) || w < 0 {
			return nil, fmt.Errorf("%w: bin weights must be finite and non-negative, got %v", ErrInvalidParams, weights)
		}
		total.Add(w)
	}
	if total.Sum() <= 0 {
		return nil, fmt.Errorf("%w: zero total bin weight", ErrInvalidParams)
	}
	p := &PiecewiseUniform{
		edges:   append([]float64(nil), edges...),
		weights: append([]float64(nil), weights...),
		cum:     make([]float64, len(edges)),
	}
	inv := 1 / total.Sum()
	var acc, meanAcc numeric.KahanSum
	for i := range p.weights {
		p.weights[i] *= inv
		acc.Add(p.weights[i])
		p.cum[i+1] = acc.Sum()
		meanAcc.Add(p.weights[i] * (p.edges[i] + p.edges[i+1]) / 2)
	}
	p.cum[len(p.cum)-1] = 1 // absorb rounding on the last edge
	p.mean = meanAcc.Sum()
	return p, nil
}

// Mean implements Distribution.
func (p *PiecewiseUniform) Mean() float64 { return p.mean }

// Edges returns a copy of the bin edges (len = bins+1).
func (p *PiecewiseUniform) Edges() []float64 {
	return append([]float64(nil), p.edges...)
}

// Weights returns a copy of the normalized bin masses (len = bins).
func (p *PiecewiseUniform) Weights() []float64 {
	return append([]float64(nil), p.weights...)
}

// Support implements Distribution.
func (p *PiecewiseUniform) Support() (float64, float64) {
	return p.edges[0], p.edges[len(p.edges)-1]
}

// bin returns the index i with edges[i] <= x < edges[i+1], clamping x inside
// the support. Callers must ensure x is within the support bounds.
func (p *PiecewiseUniform) bin(x float64) int {
	i := sort.SearchFloat64s(p.edges, x)
	// SearchFloat64s returns the first edge >= x; the enclosing bin starts
	// one earlier unless x sits exactly on that edge.
	if i > 0 && (i == len(p.edges) || p.edges[i] != x) {
		i--
	}
	if i >= len(p.weights) {
		i = len(p.weights) - 1
	}
	return i
}

// PDF implements Distribution.
func (p *PiecewiseUniform) PDF(x float64) float64 {
	lo, hi := p.Support()
	if x < lo || x > hi {
		return 0
	}
	i := p.bin(x)
	return p.weights[i] / (p.edges[i+1] - p.edges[i])
}

// CDF implements Distribution.
func (p *PiecewiseUniform) CDF(x float64) float64 {
	lo, hi := p.Support()
	if x <= lo {
		return 0
	}
	if x >= hi {
		return 1
	}
	i := p.bin(x)
	t := (x - p.edges[i]) / (p.edges[i+1] - p.edges[i])
	return p.cum[i] + t*p.weights[i]
}

// String implements fmt.Stringer.
func (p *PiecewiseUniform) String() string {
	return fmt.Sprintf("PW[%g, %g; %d bins]", p.edges[0], p.edges[len(p.edges)-1], len(p.weights))
}
