package dist

import "fmt"

// Point is a degenerate distribution concentrated at X — a score known
// exactly. It has no density; PDF reports zero everywhere and consumers that
// need densities (the TPO grid construction) reject point-mass tuples
// explicitly via the zero-width support.
type Point struct {
	X float64
}

// NewPoint returns the point mass at x.
func NewPoint(x float64) *Point { return &Point{X: x} }

// Mean implements Distribution.
func (p *Point) Mean() float64 { return p.X }

// Support implements Distribution.
func (p *Point) Support() (float64, float64) { return p.X, p.X }

// PDF implements Distribution. A point mass has no density; see the type
// comment.
func (p *Point) PDF(float64) float64 { return 0 }

// CDF implements Distribution.
func (p *Point) CDF(x float64) float64 {
	if x < p.X {
		return 0
	}
	return 1
}

// String implements fmt.Stringer.
func (p *Point) String() string { return fmt.Sprintf("δ(%g)", p.X) }
