package dist

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"crowdtopk/internal/numeric"
)

// testPairs returns one distribution of every concrete family, all
// overlapping on (roughly) [0, 2], so every pairwise combination exercises
// either an analytic path or the grid fallback.
func testPairs(t *testing.T) []Distribution {
	t.Helper()
	u, err := NewUniform(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	ua, err := NewUniformAround(1.2, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGaussian(1, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := NewGaussian(1.4, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewTriangular(0.2, 0.9, 1.8)
	if err != nil {
		t.Fatal(err)
	}
	pw, err := NewPiecewiseUniform([]float64{0, 0.5, 1.2, 2}, []float64{1, 3, 2})
	if err != nil {
		t.Fatal(err)
	}
	return []Distribution{u, ua, g, g2, tr, pw}
}

func TestConstructorValidation(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	if _, err := NewUniform(1, 1); !errors.Is(err, ErrInvalidParams) {
		t.Errorf("empty uniform err = %v", err)
	}
	if _, err := NewUniform(2, 1); !errors.Is(err, ErrInvalidParams) {
		t.Errorf("inverted uniform err = %v", err)
	}
	if _, err := NewUniform(nan, 1); !errors.Is(err, ErrInvalidParams) {
		t.Errorf("NaN uniform err = %v", err)
	}
	if _, err := NewUniformAround(0, -1); !errors.Is(err, ErrInvalidParams) {
		t.Errorf("negative width err = %v", err)
	}
	if _, err := NewGaussian(0, 0); !errors.Is(err, ErrInvalidParams) {
		t.Errorf("zero sigma err = %v", err)
	}
	if _, err := NewGaussian(inf, 1); !errors.Is(err, ErrInvalidParams) {
		t.Errorf("infinite mu err = %v", err)
	}
	if _, err := NewTriangular(0, 2, 1); !errors.Is(err, ErrInvalidParams) {
		t.Errorf("mode above hi err = %v", err)
	}
	if _, err := NewTriangular(0, -1, 1); !errors.Is(err, ErrInvalidParams) {
		t.Errorf("mode below lo err = %v", err)
	}
	if _, err := NewPiecewiseUniform([]float64{0}, []float64{1}); !errors.Is(err, ErrInvalidParams) {
		t.Errorf("single edge err = %v", err)
	}
	if _, err := NewPiecewiseUniform([]float64{0, 1, 1}, []float64{1, 1}); !errors.Is(err, ErrInvalidParams) {
		t.Errorf("non-increasing edges err = %v", err)
	}
	if _, err := NewPiecewiseUniform([]float64{0, 1}, []float64{-1}); !errors.Is(err, ErrInvalidParams) {
		t.Errorf("negative weight err = %v", err)
	}
	if _, err := NewPiecewiseUniform([]float64{0, 1, 2}, []float64{0, 0}); !errors.Is(err, ErrInvalidParams) {
		t.Errorf("zero total weight err = %v", err)
	}
}

// TestCDFShape checks, for every family, that the CDF is monotone
// non-decreasing, stays in [0, 1], saturates at the support bounds, and is
// consistent with the PDF (density integrates to ≈1).
func TestCDFShape(t *testing.T) {
	for _, d := range testPairs(t) {
		lo, hi := d.Support()
		if !(hi > lo) {
			t.Fatalf("%v: degenerate support [%g, %g]", d, lo, hi)
		}
		if c := d.CDF(lo - 1); c != 0 {
			t.Errorf("%v: CDF below support = %g", d, c)
		}
		if c := d.CDF(hi + 1); c != 1 {
			t.Errorf("%v: CDF above support = %g", d, c)
		}
		prev := -1.0
		for i := 0; i <= 400; i++ {
			x := lo + (hi-lo)*float64(i)/400
			c := d.CDF(x)
			if c < 0 || c > 1 {
				t.Fatalf("%v: CDF(%g) = %g outside [0, 1]", d, x, c)
			}
			if c < prev {
				t.Fatalf("%v: CDF not monotone at %g: %g < %g", d, x, c, prev)
			}
			prev = c
			if p := d.PDF(x); p < 0 {
				t.Fatalf("%v: negative density %g at %g", d, p, x)
			}
		}
		g := numeric.MustGrid(lo, hi, 8193)
		if mass := g.Trapezoid(g.Sample(d.PDF)); !numeric.AlmostEqual(mass, 1, 2e-3) {
			t.Errorf("%v: density integrates to %g", d, mass)
		}
		if m := d.Mean(); m < lo || m > hi {
			t.Errorf("%v: mean %g outside support [%g, %g]", d, m, lo, hi)
		}
	}
}

// TestProbGreaterComplement is the core pairwise invariant: for continuous
// scores, P(A > B) + P(B > A) = 1 for every (ordered) pair, whichever
// evaluation path each direction takes.
func TestProbGreaterComplement(t *testing.T) {
	ds := testPairs(t)
	for i, a := range ds {
		for j, b := range ds {
			p, q := ProbGreater(a, b), ProbGreater(b, a)
			if p < 0 || p > 1 {
				t.Fatalf("P(%v > %v) = %g outside [0, 1]", a, b, p)
			}
			if !numeric.AlmostEqual(p+q, 1, 1e-3) {
				t.Errorf("pair (%d, %d): P(A>B) + P(B>A) = %g + %g = %g", i, j, p, q, p+q)
			}
			if i == j && !numeric.AlmostEqual(p, 0.5, 1e-9) {
				t.Errorf("self comparison %v: %g, want 0.5", a, p)
			}
		}
	}
}

// TestProbGreaterAnalyticMatchesQuadrature pins the analytic fast paths to
// the quadrature fallback they replace.
func TestProbGreaterAnalyticMatchesQuadrature(t *testing.T) {
	u1, _ := NewUniform(0, 1)
	u2, _ := NewUniform(0.3, 1.7)
	g1, _ := NewGaussian(0.4, 0.25)
	g2, _ := NewGaussian(0.7, 0.4)
	cases := []struct {
		name string
		a, b Distribution
	}{
		{"uniform/uniform", u1, u2},
		{"uniform/uniform-nested", u2, u1},
		{"gaussian/gaussian", g1, g2},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			fast := ProbGreater(c.a, c.b)
			slow := probGreaterGrid(c.a, c.b)
			if !numeric.AlmostEqual(fast, slow, 2e-3) {
				t.Fatalf("analytic %g vs quadrature %g", fast, slow)
			}
		})
	}
}

// TestProbGreaterNarrowVsWide: the quadrature fallback must keep full
// resolution when a is orders of magnitude narrower than b (regression: a
// grid spanning the union of supports sampled a's density at ~1 point).
func TestProbGreaterNarrowVsWide(t *testing.T) {
	narrow, err := NewTriangular(49.99, 50, 50.01)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := NewTriangular(0, 50, 100)
	if err != nil {
		t.Fatal(err)
	}
	// F_wide is ≈0.5 and locally symmetric across narrow's support.
	if p := ProbGreater(narrow, wide); !numeric.AlmostEqual(p, 0.5, 1e-3) {
		t.Fatalf("P(narrow > wide) = %g, want ≈0.5", p)
	}
	p, q := ProbGreater(narrow, wide), ProbGreater(wide, narrow)
	if !numeric.AlmostEqual(p+q, 1, 1e-3) {
		t.Fatalf("complement: %g + %g = %g", p, q, p+q)
	}
}

// TestRepeatedConditioningFlattens: conditioning an already-conditioned
// belief must re-wrap the original base, not chain truncation views.
func TestRepeatedConditioningFlattens(t *testing.T) {
	g, _ := NewGaussian(1, 0.5) // support [-1, 3]
	bound1, _ := NewUniform(1.2, 2.5)
	bound2, _ := NewUniform(1.1, 2.0)
	_, once, err := ConditionOnOrder(bound1, g)
	if err != nil {
		t.Fatal(err)
	}
	_, twice, err := ConditionOnOrder(bound2, once)
	if err != nil {
		t.Fatal(err)
	}
	tw, ok := twice.(*truncated)
	if !ok {
		t.Fatalf("twice-conditioned gaussian is %T", twice)
	}
	if _, nested := tw.base.(*truncated); nested {
		t.Fatal("repeated conditioning chained truncated wrappers instead of flattening")
	}
	if lo, hi := tw.Support(); lo != -1 || hi != 2.0 {
		t.Fatalf("twice-conditioned support [%g, %g], want [-1, 2]", lo, hi)
	}
	if c := tw.CDF(hi(t, tw)); !numeric.AlmostEqual(c, 1, 1e-9) {
		t.Fatalf("flattened CDF(hi) = %g", c)
	}
}

func hi(t *testing.T, d Distribution) float64 {
	t.Helper()
	_, h := d.Support()
	return h
}

func TestProbGreaterDisjointAndPoint(t *testing.T) {
	lowU, _ := NewUniform(0, 1)
	highU, _ := NewUniform(2, 3)
	if p := ProbGreater(highU, lowU); p != 1 {
		t.Errorf("disjoint above = %g", p)
	}
	if p := ProbGreater(lowU, highU); p != 0 {
		t.Errorf("disjoint below = %g", p)
	}
	mid := NewPoint(0.25)
	if p := ProbGreater(mid, lowU); !numeric.AlmostEqual(p, 0.25, 1e-12) {
		t.Errorf("P(δ(0.25) > U[0,1]) = %g, want 0.25", p)
	}
	if p := ProbGreater(lowU, mid); !numeric.AlmostEqual(p, 0.75, 1e-12) {
		t.Errorf("P(U[0,1] > δ(0.25)) = %g, want 0.75", p)
	}
	if p := ProbGreater(NewPoint(1), NewPoint(1)); p != 0.5 {
		t.Errorf("equal points = %g, want 0.5", p)
	}
	if p := ProbGreater(NewPoint(2), NewPoint(1)); p != 1 {
		t.Errorf("higher point = %g, want 1", p)
	}
}

// TestConditionOnOrderNormalization: conditioning must yield properly
// normalized distributions on the truncated supports.
func TestConditionOnOrderNormalization(t *testing.T) {
	ds := testPairs(t)
	for i, winner := range ds {
		for j, loser := range ds {
			if i == j {
				continue
			}
			w, l, err := ConditionOnOrder(winner, loser)
			if err != nil {
				t.Fatalf("pair (%d, %d): %v", i, j, err)
			}
			for _, d := range []Distribution{w, l} {
				lo, hi := d.Support()
				g := numeric.MustGrid(lo, hi, 8193)
				if mass := g.Trapezoid(g.Sample(d.PDF)); !numeric.AlmostEqual(mass, 1, 2e-3) {
					t.Errorf("pair (%d, %d): conditioned mass %g", i, j, mass)
				}
				if c := d.CDF(hi); !numeric.AlmostEqual(c, 1, 1e-9) {
					t.Errorf("pair (%d, %d): conditioned CDF(hi) = %g", i, j, c)
				}
			}
			// Support algebra: the winner keeps nothing below the loser's
			// minimum, the loser nothing above the winner's maximum.
			wlo, whi := winner.Support()
			llo, lhi := loser.Support()
			nwlo, nwhi := w.Support()
			nllo, nlhi := l.Support()
			if nwlo < math.Max(wlo, llo)-1e-12 || nwhi > whi+1e-12 {
				t.Errorf("pair (%d, %d): winner support [%g, %g] → [%g, %g]", i, j, wlo, whi, nwlo, nwhi)
			}
			if nlhi > math.Min(lhi, whi)+1e-12 || nllo < llo-1e-12 {
				t.Errorf("pair (%d, %d): loser support [%g, %g] → [%g, %g]", i, j, llo, lhi, nllo, nlhi)
			}
		}
	}
}

func TestConditionOnOrderImpossible(t *testing.T) {
	low, _ := NewUniform(0, 1)
	high, _ := NewUniform(2, 3)
	if _, _, err := ConditionOnOrder(low, high); !errors.Is(err, ErrImpossible) {
		t.Fatalf("impossible conditioning err = %v", err)
	}
	// The possible direction conditions to the unchanged inputs.
	w, l, err := ConditionOnOrder(high, low)
	if err != nil {
		t.Fatal(err)
	}
	if w != Distribution(high) || l != Distribution(low) {
		t.Fatal("conditioning on an implied order should return the inputs unchanged")
	}
}

func TestConditionOnOrderUniformStaysUniform(t *testing.T) {
	a, _ := NewUniform(0, 2)
	b, _ := NewUniform(1, 3)
	w, l, err := ConditionOnOrder(a, b)
	if err != nil {
		t.Fatal(err)
	}
	wu, ok := w.(*Uniform)
	if !ok {
		t.Fatalf("conditioned uniform winner is %T", w)
	}
	if wu.Lo != 1 || wu.Hi != 2 {
		t.Fatalf("winner = %v, want U[1, 2]", wu)
	}
	lu, ok := l.(*Uniform)
	if !ok {
		t.Fatalf("conditioned uniform loser is %T", l)
	}
	if lu.Lo != 1 || lu.Hi != 2 {
		t.Fatalf("loser = %v, want U[1, 2]", lu)
	}
}

// TestSampleConvergesToMean: under a fixed seed, the empirical mean of many
// draws must converge to Mean() and every draw must land in the support.
func TestSampleConvergesToMean(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 200_000
	for _, d := range testPairs(t) {
		lo, hi := d.Support()
		var acc numeric.KahanSum
		for i := 0; i < n; i++ {
			x := Sample(d, rng)
			if x < lo || x > hi {
				t.Fatalf("%v: sample %g outside [%g, %g]", d, x, lo, hi)
			}
			acc.Add(x)
		}
		emp := acc.Sum() / n
		// 4σ/√n of the widest family here is well under 0.01.
		if math.Abs(emp-d.Mean()) > 0.01 {
			t.Errorf("%v: empirical mean %g vs analytic %g", d, emp, d.Mean())
		}
	}
}

// TestSampleTruncatedByInversion covers the generic bisection sampler via a
// conditioned (truncated) Gaussian.
func TestSampleTruncatedByInversion(t *testing.T) {
	g, _ := NewGaussian(1, 0.5) // support [-1, 3]
	u, _ := NewUniform(1.2, 2)  // truncates the loser above 2
	_, l, err := ConditionOnOrder(u, g)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := l.(*truncated); !ok {
		t.Fatalf("conditioned gaussian is %T, want generic truncation", l)
	}
	rng := rand.New(rand.NewSource(11))
	lo, hi := l.Support()
	var acc numeric.KahanSum
	const n = 50_000
	for i := 0; i < n; i++ {
		x := Sample(l, rng)
		if x < lo || x > hi {
			t.Fatalf("sample %g outside [%g, %g]", x, lo, hi)
		}
		acc.Add(x)
	}
	if emp := acc.Sum() / n; math.Abs(emp-l.Mean()) > 0.01 {
		t.Errorf("empirical mean %g vs analytic %g", emp, l.Mean())
	}
}

func TestMeanRanking(t *testing.T) {
	a, _ := NewUniform(0, 1)    // mean 0.5
	b, _ := NewGaussian(2, 0.1) // mean 2
	c, _ := NewUniform(1, 2)    // mean 1.5
	d := NewPoint(0.5)          // mean 0.5, ties with a → lower id first
	got := MeanRanking([]Distribution{a, b, c, d})
	want := []int{1, 2, 0, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MeanRanking = %v, want %v", got, want)
		}
	}
}

func TestWidthAndOverlaps(t *testing.T) {
	a, _ := NewUniform(0, 1)
	b, _ := NewUniform(0.5, 2)
	c, _ := NewUniform(1, 3)
	if w := Width(b); !numeric.AlmostEqual(w, 1.5, 1e-12) {
		t.Errorf("Width = %g", w)
	}
	if !Overlaps(a, b) || !Overlaps(b, a) {
		t.Error("overlapping supports not detected")
	}
	if Overlaps(a, c) {
		t.Error("touching supports must not count as overlap")
	}
}

func TestSharedGrid(t *testing.T) {
	a, _ := NewUniform(-1, 1)
	g, _ := NewGaussian(2, 0.5) // support [0, 4]
	grid, err := SharedGrid([]Distribution{a, g}, 101)
	if err != nil {
		t.Fatal(err)
	}
	if grid.Lo != -1 || grid.Hi != 4 {
		t.Fatalf("grid spans [%g, %g], want [-1, 4]", grid.Lo, grid.Hi)
	}
	if grid.Len() != 101 {
		t.Fatalf("grid Len = %d", grid.Len())
	}
	if !numeric.AlmostEqual(grid.Step, 0.05, 1e-12) {
		t.Fatalf("grid Step = %g", grid.Step)
	}
	// Defaulting: n < 2 selects the 1024-point default.
	grid, err = SharedGrid([]Distribution{a}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if grid.Len() != 1024 {
		t.Fatalf("default grid Len = %d", grid.Len())
	}
	if _, err := SharedGrid(nil, 16); !errors.Is(err, ErrInvalidParams) {
		t.Fatalf("empty input err = %v", err)
	}
	if _, err := SharedGrid([]Distribution{NewPoint(1)}, 16); err == nil {
		t.Fatal("zero-width union must fail")
	}
}

func TestGaussianMoments(t *testing.T) {
	g, _ := NewGaussian(3, 0.5)
	if g.Mean() != 3 {
		t.Fatalf("mean = %g", g.Mean())
	}
	lo, hi := g.Support()
	if lo != 1 || hi != 5 {
		t.Fatalf("support [%g, %g], want ±4σ = [1, 5]", lo, hi)
	}
	if c := g.CDF(3); !numeric.AlmostEqual(c, 0.5, 1e-9) {
		t.Fatalf("CDF at the mean = %g", c)
	}
	// Truncated-vs-untruncated CDF difference is bounded by the tail mass.
	if c := g.CDF(3.5); math.Abs(c-stdNormCDF(1)) > 1e-4 {
		t.Fatalf("CDF(μ+σ) = %g, want ≈Φ(1) = %g", c, stdNormCDF(1))
	}
}
