// Package dist models the uncertain tuple scores of the paper as bounded
// continuous probability distributions, and provides the probabilistic
// primitives everything above it is built on: pairwise dominance
// probabilities P(X > Y) (the π_ij driving TPO construction and leaf
// splitting), conditioning on crowd-asserted orderings, sampling worlds for
// simulation, and the shared evaluation grid the quadrature-based paths run
// on.
//
// Two evaluation strategies coexist. Where a closed form exists —
// uniform/uniform, (truncated) Gaussian pairs, point masses, disjoint
// supports — ProbGreater uses it directly; every other pair falls back to
// trapezoid quadrature of ∫ f_a(x)·F_b(x) dx on a grid over the left
// operand's support, built from the internal/numeric primitives. The analytic paths
// matter: ProbGreater is the hottest function in TPO construction (see
// BenchmarkProbGreater for the measured gap).
package dist

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"crowdtopk/internal/numeric"
)

// Errors reported by this package.
var (
	// ErrInvalidParams reports distribution parameters outside the valid
	// domain (non-finite values, empty supports, negative scales, ...).
	ErrInvalidParams = errors.New("dist: invalid distribution parameters")
	// ErrImpossible reports conditioning on an event of probability zero.
	ErrImpossible = errors.New("dist: conditioning on an impossible event")
)

// Distribution is a bounded univariate score distribution. Support returns
// the closed interval [lo, hi] outside of which the density is zero; PDF and
// CDF are total functions (zero density and saturated CDF outside the
// support). All implementations are immutable after construction and safe
// for concurrent use.
type Distribution interface {
	// Mean returns the expected value.
	Mean() float64
	// Support returns the smallest closed interval carrying all the mass.
	Support() (lo, hi float64)
	// PDF evaluates the probability density at x.
	PDF(x float64) float64
	// CDF evaluates the cumulative distribution P(X <= x).
	CDF(x float64) float64
}

// Width returns the length of the support interval.
func Width(d Distribution) float64 {
	lo, hi := d.Support()
	return hi - lo
}

// Overlaps reports whether the supports of a and b intersect on an interval
// of positive length (touching endpoints do not count: the shared mass there
// is zero).
func Overlaps(a, b Distribution) bool {
	alo, ahi := a.Support()
	blo, bhi := b.Support()
	return alo < bhi && blo < ahi
}

// MeanRanking returns the tuple indices ordered by decreasing expected
// score, ties broken by lower index — the ranking a system ignoring
// uncertainty would report.
func MeanRanking(ds []Distribution) []int {
	idx := make([]int, len(ds))
	means := make([]float64, len(ds))
	for i, d := range ds {
		idx[i] = i
		means[i] = d.Mean()
	}
	sort.Slice(idx, func(a, b int) bool {
		ma, mb := means[idx[a]], means[idx[b]]
		if ma != mb {
			return ma > mb
		}
		return idx[a] < idx[b] // explicit tie-break: lower id first
	})
	return idx
}

// SharedGrid returns a uniform evaluation grid of n points spanning the
// union of the supports of ds. Every quadrature in a computation must run on
// one shared grid so that products of sampled PDFs/CDFs and chained
// cumulative integrals are simple element-wise passes. n < 2 selects a
// 1024-point grid.
func SharedGrid(ds []Distribution, n int) (*numeric.Grid, error) {
	if len(ds) == 0 {
		return nil, fmt.Errorf("%w: no distributions to span", ErrInvalidParams)
	}
	if n < 2 {
		n = 1024
	}
	lo, hi := ds[0].Support()
	for _, d := range ds[1:] {
		dlo, dhi := d.Support()
		if dlo < lo {
			lo = dlo
		}
		if dhi > hi {
			hi = dhi
		}
	}
	g, err := numeric.NewGrid(lo, hi, n)
	if err != nil {
		return nil, fmt.Errorf("dist: shared grid over [%g, %g]: %w", lo, hi, err)
	}
	return g, nil
}

// clamp01 restricts a probability to [0, 1], absorbing quadrature noise.
func clamp01(p float64) float64 { return numeric.Clamp(p, 0, 1) }

// finite reports whether every argument is a finite float.
func finite(xs ...float64) bool {
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}
