package dist

import (
	"math"
	"math/rand"
	"sort"

	"crowdtopk/internal/numeric"
)

// Sample draws one value from d using rng. Known families use direct
// (inverse-CDF or rejection) samplers; anything else inverts the CDF by
// bisection. Draws always land inside the support.
func Sample(d Distribution, rng *rand.Rand) float64 {
	switch v := d.(type) {
	case *Point:
		return v.X
	case *Uniform:
		return v.Lo + rng.Float64()*(v.Hi-v.Lo)
	case *Gaussian:
		// Rejection against the ±4σ truncation; acceptance ≈ 0.99994.
		for {
			x := v.Mu + v.Sigma*rng.NormFloat64()
			if lo, hi := v.Support(); x >= lo && x <= hi {
				return x
			}
		}
	case *Triangular:
		return sampleTriangular(v, rng.Float64())
	case *PiecewiseUniform:
		return samplePiecewise(v, rng.Float64())
	default:
		return sampleByInversion(d, rng.Float64())
	}
}

// sampleTriangular inverts the triangular CDF in closed form.
func sampleTriangular(t *Triangular, u float64) float64 {
	fc := (t.Mode - t.Lo) / (t.Hi - t.Lo)
	if u < fc {
		return t.Lo + math.Sqrt(u*(t.Hi-t.Lo)*(t.Mode-t.Lo))
	}
	return t.Hi - math.Sqrt((1-u)*(t.Hi-t.Lo)*(t.Hi-t.Mode))
}

// samplePiecewise picks a bin by its cumulative mass, then a uniform
// position inside it.
func samplePiecewise(p *PiecewiseUniform, u float64) float64 {
	// First edge with cum >= u bounds the selected bin on the right.
	i := sort.SearchFloat64s(p.cum, u)
	if i == 0 {
		i = 1
	}
	if i >= len(p.cum) {
		i = len(p.cum) - 1
	}
	bin := i - 1
	w := p.weights[bin]
	t := 0.5
	if w > 0 {
		t = (u - p.cum[bin]) / w
	}
	return p.edges[bin] + t*(p.edges[bin+1]-p.edges[bin])
}

// sampleByInversion finds CDF⁻¹(u) by bisection on the support.
func sampleByInversion(d Distribution, u float64) float64 {
	lo, hi := d.Support()
	if !(hi > lo) {
		return lo
	}
	x, err := numeric.Bisect(d.CDF, lo, hi, u, (hi-lo)*1e-12)
	if err != nil {
		return (lo + hi) / 2
	}
	return x
}
