package dist

import "fmt"

// Uniform is the uniform distribution on [Lo, Hi] — the paper's default
// score model (a value known only to lie in an interval).
type Uniform struct {
	Lo, Hi float64
}

// NewUniform returns the uniform distribution on [lo, hi]. It fails unless
// both bounds are finite and hi exceeds lo.
func NewUniform(lo, hi float64) (*Uniform, error) {
	if !finite(lo, hi) || !(hi > lo) {
		return nil, fmt.Errorf("%w: uniform on [%g, %g]", ErrInvalidParams, lo, hi)
	}
	return &Uniform{Lo: lo, Hi: hi}, nil
}

// NewUniformAround returns the uniform distribution on
// [center−width/2, center+width/2]. width must be positive and finite.
func NewUniformAround(center, width float64) (*Uniform, error) {
	if !finite(center, width) || width <= 0 {
		return nil, fmt.Errorf("%w: uniform around %g with width %g", ErrInvalidParams, center, width)
	}
	return NewUniform(center-width/2, center+width/2)
}

// Mean implements Distribution.
func (u *Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }

// Support implements Distribution.
func (u *Uniform) Support() (float64, float64) { return u.Lo, u.Hi }

// PDF implements Distribution.
func (u *Uniform) PDF(x float64) float64 {
	if x < u.Lo || x > u.Hi {
		return 0
	}
	return 1 / (u.Hi - u.Lo)
}

// CDF implements Distribution.
func (u *Uniform) CDF(x float64) float64 {
	if x <= u.Lo {
		return 0
	}
	if x >= u.Hi {
		return 1
	}
	return (x - u.Lo) / (u.Hi - u.Lo)
}

// String implements fmt.Stringer.
func (u *Uniform) String() string { return fmt.Sprintf("U[%g, %g]", u.Lo, u.Hi) }

// cdfIntegralTo returns ∫_{−∞}^{t} F(x) dx, the antiderivative of the CDF
// used by the closed-form uniform/uniform dominance probability.
func (u *Uniform) cdfIntegralTo(t float64) float64 {
	switch {
	case t <= u.Lo:
		return 0
	case t >= u.Hi:
		return (u.Hi-u.Lo)/2 + (t - u.Hi)
	default:
		d := t - u.Lo
		return d * d / (2 * (u.Hi - u.Lo))
	}
}
