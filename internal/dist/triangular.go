package dist

import "fmt"

// Triangular is the triangular distribution on [Lo, Hi] with the given Mode
// — a minimal skewed score model (e.g. an expert estimate with asymmetric
// confidence).
type Triangular struct {
	Lo, Mode, Hi float64
}

// NewTriangular returns the triangular distribution. It requires finite
// lo <= mode <= hi with hi > lo.
func NewTriangular(lo, mode, hi float64) (*Triangular, error) {
	if !finite(lo, mode, hi) || !(hi > lo) || mode < lo || mode > hi {
		return nil, fmt.Errorf("%w: triangular(%g, %g, %g)", ErrInvalidParams, lo, mode, hi)
	}
	return &Triangular{Lo: lo, Mode: mode, Hi: hi}, nil
}

// Mean implements Distribution.
func (t *Triangular) Mean() float64 { return (t.Lo + t.Mode + t.Hi) / 3 }

// Support implements Distribution.
func (t *Triangular) Support() (float64, float64) { return t.Lo, t.Hi }

// PDF implements Distribution.
func (t *Triangular) PDF(x float64) float64 {
	switch {
	case x < t.Lo || x > t.Hi:
		return 0
	case x < t.Mode:
		return 2 * (x - t.Lo) / ((t.Hi - t.Lo) * (t.Mode - t.Lo))
	case x > t.Mode:
		return 2 * (t.Hi - x) / ((t.Hi - t.Lo) * (t.Hi - t.Mode))
	default: // x == Mode; the Lo == Mode and Hi == Mode edges peak here too
		return 2 / (t.Hi - t.Lo)
	}
}

// CDF implements Distribution.
func (t *Triangular) CDF(x float64) float64 {
	switch {
	case x <= t.Lo:
		return 0
	case x >= t.Hi:
		return 1
	case x <= t.Mode:
		d := x - t.Lo
		return d * d / ((t.Hi - t.Lo) * (t.Mode - t.Lo))
	default:
		d := t.Hi - x
		return 1 - d*d/((t.Hi-t.Lo)*(t.Hi-t.Mode))
	}
}

// String implements fmt.Stringer.
func (t *Triangular) String() string {
	return fmt.Sprintf("Tri(%g, %g, %g)", t.Lo, t.Mode, t.Hi)
}
