package dist

import (
	"fmt"
	"math"
)

// gaussHalfWidth is the truncation point of the Gaussian score model, in
// standard deviations: the library works on bounded supports, so Gaussian
// scores carry their mass on [μ−4σ, μ+4σ] and the density is renormalized by
// the retained mass (erf(4/√2) ≈ 1 − 6.3e−5).
const gaussHalfWidth = 4.0

// gaussRetained is the probability mass of a standard normal within
// ±gaussHalfWidth.
var gaussRetained = math.Erf(gaussHalfWidth / math.Sqrt2)

// gaussTailMass is the mass of one truncated tail, Φ(−gaussHalfWidth).
var gaussTailMass = (1 - gaussRetained) / 2

const invSqrt2Pi = 0.3989422804014326779399460599343818684759

// Gaussian is a normal distribution with mean Mu and standard deviation
// Sigma, truncated at ±4σ and renormalized (see gaussHalfWidth). The
// symmetric truncation leaves the mean exactly Mu.
type Gaussian struct {
	Mu, Sigma float64
}

// NewGaussian returns the truncated Gaussian score distribution. Sigma must
// be positive and finite.
func NewGaussian(mu, sigma float64) (*Gaussian, error) {
	if !finite(mu, sigma) || sigma <= 0 {
		return nil, fmt.Errorf("%w: gaussian(μ=%g, σ=%g)", ErrInvalidParams, mu, sigma)
	}
	return &Gaussian{Mu: mu, Sigma: sigma}, nil
}

// Mean implements Distribution.
func (g *Gaussian) Mean() float64 { return g.Mu }

// Support implements Distribution.
func (g *Gaussian) Support() (float64, float64) {
	w := gaussHalfWidth * g.Sigma
	return g.Mu - w, g.Mu + w
}

// PDF implements Distribution.
func (g *Gaussian) PDF(x float64) float64 {
	z := (x - g.Mu) / g.Sigma
	if z < -gaussHalfWidth || z > gaussHalfWidth {
		return 0
	}
	return invSqrt2Pi * math.Exp(-z*z/2) / (g.Sigma * gaussRetained)
}

// CDF implements Distribution.
func (g *Gaussian) CDF(x float64) float64 {
	z := (x - g.Mu) / g.Sigma
	if z <= -gaussHalfWidth {
		return 0
	}
	if z >= gaussHalfWidth {
		return 1
	}
	return clamp01((stdNormCDF(z) - gaussTailMass) / gaussRetained)
}

// String implements fmt.Stringer.
func (g *Gaussian) String() string { return fmt.Sprintf("N(%g, %g²)", g.Mu, g.Sigma) }

// stdNormCDF is the standard normal CDF Φ(z), evaluated via the
// complementary error function for accuracy in the tails.
func stdNormCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}
