package dist

import (
	"fmt"
	"math"

	"crowdtopk/internal/numeric"
)

// truncMeanGridSize is the quadrature resolution used to precompute the mean
// of a generically truncated distribution at construction time.
const truncMeanGridSize = 4097

// ConditionOnOrder refines two score beliefs with a trusted assertion
// "winner ranks above loser": the winner's distribution is truncated below
// the loser's minimum possible score, and the loser's above the winner's
// maximum possible score (values there are incompatible with the assertion).
// Both results are renormalized; the inputs are unchanged. It fails with
// ErrImpossible when the assertion has probability zero under the supports
// (the winner cannot reach the loser's minimum).
//
// This interval conditioning is the support-level projection of the exact
// joint posterior — it keeps the two beliefs independent and
// family-closed where possible (uniforms stay uniform), which is what the
// incremental re-querying workflow needs.
func ConditionOnOrder(winner, loser Distribution) (Distribution, Distribution, error) {
	_, whi := winner.Support()
	llo, _ := loser.Support()
	if !(whi > llo) {
		return nil, nil, fmt.Errorf("%w: winner support tops out at %g, below the loser's minimum %g", ErrImpossible, whi, llo)
	}
	w, err := truncate(winner, llo, math.Inf(1))
	if err != nil {
		return nil, nil, fmt.Errorf("dist: conditioning winner: %w", err)
	}
	l, err := truncate(loser, math.Inf(-1), whi)
	if err != nil {
		return nil, nil, fmt.Errorf("dist: conditioning loser: %w", err)
	}
	return w, l, nil
}

// truncate restricts d to [lo, hi] ∩ support(d) and renormalizes. The input
// is returned unchanged when the bounds do not bite (distributions are
// immutable, so sharing is safe). Uniforms truncate within their family;
// anything else is wrapped in a renormalizing truncated view.
func truncate(d Distribution, lo, hi float64) (Distribution, error) {
	dlo, dhi := d.Support()
	nlo, nhi := math.Max(dlo, lo), math.Min(dhi, hi)
	if p, ok := d.(*Point); ok {
		if p.X < lo || p.X > hi {
			return nil, fmt.Errorf("%w: point mass at %g outside [%g, %g]", ErrImpossible, p.X, lo, hi)
		}
		return d, nil
	}
	if !(nhi > nlo) {
		return nil, fmt.Errorf("%w: support [%g, %g] does not meet [%g, %g]", ErrImpossible, dlo, dhi, lo, hi)
	}
	if nlo == dlo && nhi == dhi {
		return d, nil
	}
	if _, ok := d.(*Uniform); ok {
		return NewUniform(nlo, nhi)
	}
	// Flatten repeated conditioning: truncating a truncated view re-wraps
	// the original base with tighter bounds instead of chaining wrappers,
	// keeping PDF/CDF evaluation O(1) across any number of answers.
	base := d
	if tb, ok := d.(*truncated); ok {
		base = tb.base
	}
	cLo, cHi := base.CDF(nlo), base.CDF(nhi)
	mass := cHi - cLo
	if mass <= 1e-12 {
		return nil, fmt.Errorf("%w: negligible mass %g on [%g, %g]", ErrImpossible, mass, nlo, nhi)
	}
	t := &truncated{base: base, lo: nlo, hi: nhi, cLo: cLo, mass: mass}
	t.mean = t.computeMean()
	return t, nil
}

// truncated is a renormalizing restriction of an arbitrary base distribution
// to [lo, hi]. Used for families that are not closed under truncation
// (Gaussian, triangular, histograms).
type truncated struct {
	base   Distribution
	lo, hi float64
	cLo    float64 // base CDF at lo
	mass   float64 // base mass retained on [lo, hi]
	mean   float64 // precomputed at construction
}

// computeMean evaluates E[X | X ∈ [lo, hi]] by trapezoid quadrature of
// x·f(x) over the truncated support.
func (t *truncated) computeMean() float64 {
	g, err := numeric.NewGrid(t.lo, t.hi, truncMeanGridSize)
	if err != nil {
		return (t.lo + t.hi) / 2
	}
	ys := make([]float64, g.Len())
	for i, x := range g.Points() {
		ys[i] = x * t.base.PDF(x)
	}
	return g.Trapezoid(ys) / t.mass
}

// Mean implements Distribution.
func (t *truncated) Mean() float64 { return t.mean }

// Support implements Distribution.
func (t *truncated) Support() (float64, float64) { return t.lo, t.hi }

// PDF implements Distribution.
func (t *truncated) PDF(x float64) float64 {
	if x < t.lo || x > t.hi {
		return 0
	}
	return t.base.PDF(x) / t.mass
}

// CDF implements Distribution.
func (t *truncated) CDF(x float64) float64 {
	if x <= t.lo {
		return 0
	}
	if x >= t.hi {
		return 1
	}
	return clamp01((t.base.CDF(x) - t.cLo) / t.mass)
}

// String implements fmt.Stringer.
func (t *truncated) String() string {
	return fmt.Sprintf("%v|[%g, %g]", t.base, t.lo, t.hi)
}
