package session

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"

	"crowdtopk/internal/dataset"
	"crowdtopk/internal/par"
	"crowdtopk/internal/pcache"
	"crowdtopk/internal/selection"
	"crowdtopk/internal/tpo"
)

// Schema is the session checkpoint envelope version. Bump on incompatible
// changes; Restore rejects other versions with a *MismatchError.
const Schema = 1

// envelopeKind tags session checkpoints so unrelated JSON (including bare
// leaf-set checkpoints) is rejected early.
const envelopeKind = "crowdtopk/session"

// maxRNGReplay bounds the checkpointed RNG position Restore is willing to
// replay. Only the random offline baselines draw from the session RNG — one
// shuffle over at most n(n-1)/2 candidate pairs — so any position a real
// session can reach is far below this ceiling (it allows n ≈ 23k, well past
// what TPO construction can hold). Without the bound a crafted checkpoint
// with rng_draws near 2^64 would pin a CPU inside burn for years.
const maxRNGReplay = 1 << 28

// MismatchError reports a checkpoint that cannot be restored: wrong schema
// version, wrong payload kind, or a dataset digest that does not match the
// dataset carried in the envelope. It is the same type the embedded
// leaf-set payload uses, so callers handle one error for both layers.
type MismatchError = tpo.MismatchError

// pairJSON is a question on the wire.
type pairJSON struct {
	I int `json:"i"`
	J int `json:"j"`
}

// answerJSON is an accepted answer on the wire.
type answerJSON struct {
	I   int  `json:"i"`
	J   int  `json:"j"`
	Yes bool `json:"yes"`
}

// configJSON is the session configuration on the wire (worker counts and
// pool wiring are runtime concerns and deliberately absent: the restoring
// process supplies its own).
type configJSON struct {
	K           int     `json:"k"`
	Budget      int     `json:"budget"`
	Algorithm   string  `json:"algorithm"`
	Measure     string  `json:"measure"`
	Reliability float64 `json:"reliability"`
	RoundSize   int     `json:"round_size"`
	Seed        int64   `json:"seed"`
	GridSize    int     `json:"grid_size,omitempty"`
	MaxLeaves   int     `json:"max_orderings,omitempty"`
	ProbEpsilon float64 `json:"prob_epsilon,omitempty"`
}

// envelope is the versioned on-disk form of a whole session: everything
// needed to resume mid-query in a fresh process — the dataset (with content
// digest), the configuration, the lifecycle position (state, answer log,
// pending questions, RNG position) and the conditioned leaf set in its own
// versioned sub-envelope.
type envelope struct {
	Schema         int                `json:"schema"`
	Kind           string             `json:"kind"`
	Dataset        []dataset.DistSpec `json:"dataset"`
	Digest         string             `json:"digest"`
	Names          []string           `json:"names,omitempty"`
	Config         configJSON         `json:"config"`
	State          State              `json:"state"`
	Asked          int                `json:"asked"`
	Contradictions int                `json:"contradictions"`
	RNGDraws       uint64             `json:"rng_draws"`
	Pending        []pairJSON         `json:"pending,omitempty"`
	Answers        []answerJSON       `json:"answers,omitempty"`
	Leaves         json.RawMessage    `json:"leaves"`
}

// Checkpoint serializes the full session state as a versioned JSON envelope.
// The stream is self-contained: Restore needs nothing but it (and optionally
// a worker pool for the new process).
func (s *Session) Checkpoint(w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	specs, err := dataset.SpecsOf(s.cfg.Dists)
	if err != nil {
		return fmt.Errorf("session: checkpoint: %w", err)
	}
	var leaves bytes.Buffer
	if err := s.tree.LeafSet().WriteCheckpoint(&leaves, s.digest); err != nil {
		return fmt.Errorf("session: checkpoint: %w", err)
	}
	env := envelope{
		Schema:  Schema,
		Kind:    envelopeKind,
		Dataset: specs,
		Digest:  s.digest,
		Names:   s.cfg.Names,
		Config: configJSON{
			K:           s.cfg.K,
			Budget:      s.cfg.Budget,
			Algorithm:   s.cfg.Algorithm,
			Measure:     s.cfg.Measure,
			Reliability: s.cfg.Reliability,
			RoundSize:   s.cfg.RoundSize,
			Seed:        s.cfg.Seed,
			GridSize:    s.cfg.Build.GridSize,
			MaxLeaves:   s.cfg.Build.MaxLeaves,
			ProbEpsilon: s.cfg.Build.ProbEpsilon,
		},
		State:          s.state,
		Asked:          s.asked,
		Contradictions: s.contra,
		RNGDraws:       s.src.draws,
		Leaves:         json.RawMessage(leaves.Bytes()),
	}
	for _, q := range s.pending {
		env.Pending = append(env.Pending, pairJSON{I: q.I, J: q.J})
	}
	for _, a := range s.answers {
		env.Answers = append(env.Answers, answerJSON{I: a.Q.I, J: a.Q.J, Yes: a.Yes})
	}
	return json.NewEncoder(w).Encode(&env)
}

// EnvelopeInfo is the cheap header subset of a session checkpoint: the
// lifecycle position a storage layer needs to index a snapshot (which answer
// prefix it covers, whether the session is terminal) without restoring it.
type EnvelopeInfo struct {
	State State
	Asked int
}

// PeekCheckpoint decodes the envelope header from serialized checkpoint
// bytes, validating kind and schema exactly like Restore, without rebuilding
// the dataset or the tree. The persistence layer uses it to stamp snapshot
// metadata right after Checkpoint produced the bytes.
func PeekCheckpoint(data []byte) (EnvelopeInfo, error) {
	var head struct {
		Schema int    `json:"schema"`
		Kind   string `json:"kind"`
		State  State  `json:"state"`
		Asked  int    `json:"asked"`
	}
	if err := json.Unmarshal(data, &head); err != nil {
		return EnvelopeInfo{}, fmt.Errorf("%w: decoding: %v", ErrInvalidCheckpoint, err)
	}
	if head.Kind != envelopeKind {
		return EnvelopeInfo{}, &MismatchError{Field: "kind", Want: envelopeKind, Got: fmt.Sprintf("%q", head.Kind)}
	}
	if head.Schema != Schema {
		return EnvelopeInfo{}, &MismatchError{Field: "schema", Want: fmt.Sprint(Schema), Got: fmt.Sprint(head.Schema)}
	}
	if !head.State.valid() {
		return EnvelopeInfo{}, fmt.Errorf("%w: unknown state %q", ErrInvalidCheckpoint, head.State)
	}
	if head.Asked < 0 {
		return EnvelopeInfo{}, fmt.Errorf("%w: negative asked %d", ErrInvalidCheckpoint, head.Asked)
	}
	return EnvelopeInfo{State: head.State, Asked: head.Asked}, nil
}

// Restore rebuilds a session from a Checkpoint stream, in this process or
// any other: the dataset is reconstructed from its wire form and verified
// against the recorded content digest (and the leaf payload's own digest),
// the tree is rebuilt from the conditioned leaf set with the original leaf
// enumeration order, and the RNG is replayed to its recorded position. pool
// optionally attaches the restoring process's shared worker budget.
func Restore(r io.Reader, pool *par.Budget) (*Session, error) {
	var env envelope
	if err := json.NewDecoder(r).Decode(&env); err != nil {
		return nil, fmt.Errorf("%w: decoding: %v", ErrInvalidCheckpoint, err)
	}
	if env.Kind != envelopeKind {
		return nil, &MismatchError{Field: "kind", Want: envelopeKind, Got: fmt.Sprintf("%q", env.Kind)}
	}
	if env.Schema != Schema {
		return nil, &MismatchError{Field: "schema", Want: fmt.Sprint(Schema), Got: fmt.Sprint(env.Schema)}
	}
	dists, err := dataset.FromSpecs(env.Dataset)
	if err != nil {
		return nil, fmt.Errorf("%w: restoring dataset: %v", ErrInvalidConfig, err)
	}
	digest, err := dataset.Digest(dists)
	if err != nil {
		return nil, fmt.Errorf("%w: restoring dataset: %v", ErrInvalidConfig, err)
	}
	if env.Digest != digest {
		return nil, &MismatchError{Field: "dataset digest", Want: digest, Got: env.Digest}
	}
	if !env.State.valid() {
		return nil, fmt.Errorf("%w: unknown state %q", ErrInvalidCheckpoint, env.State)
	}
	if env.Asked != len(env.Answers) {
		return nil, fmt.Errorf("%w: asked=%d but %d answers", ErrInvalidCheckpoint, env.Asked, len(env.Answers))
	}
	if env.RNGDraws > maxRNGReplay {
		return nil, fmt.Errorf("%w: rng_draws %d exceeds replay bound %d", ErrInvalidCheckpoint, env.RNGDraws, uint64(maxRNGReplay))
	}

	cfg := Config{
		Dists:       dists,
		Names:       env.Names,
		K:           env.Config.K,
		Budget:      env.Config.Budget,
		Algorithm:   env.Config.Algorithm,
		Measure:     env.Config.Measure,
		Reliability: env.Config.Reliability,
		RoundSize:   env.Config.RoundSize,
		Seed:        env.Config.Seed,
		Build: tpo.BuildOptions{
			GridSize:    env.Config.GridSize,
			MaxLeaves:   env.Config.MaxLeaves,
			ProbEpsilon: env.Config.ProbEpsilon,
		},
		Pool: pool,
	}
	m, err := validate(&cfg)
	if err != nil {
		return nil, err
	}
	// plan never issues more questions than the remaining budget, so a
	// checkpoint that does is crafted — and would let a restored session
	// accept answers past Budget.
	if n := len(env.Pending); n > cfg.Budget-env.Asked {
		return nil, fmt.Errorf("%w: %d pending questions with budget %d and asked %d", ErrInvalidCheckpoint, n, cfg.Budget, env.Asked)
	}

	ls, err := tpo.ReadCheckpoint(bytes.NewReader(env.Leaves), digest)
	if err != nil {
		return nil, fmt.Errorf("session: restoring leaves: %w", err)
	}
	// As in New: fill the π cache up front (with whatever share of the pool
	// is free) so the restored session's first sweep runs hot.
	if pool != nil {
		got := pool.Acquire(cfg.Build.Workers)
		pcache.Prewarm(dists, got)
		pool.Release(got)
	} else {
		pcache.Prewarm(dists, cfg.Build.Workers)
	}
	tree, err := tpo.FromLeafSet(dists, cfg.K, ls, cfg.Build)
	if err != nil {
		return nil, fmt.Errorf("session: restoring tree: %w", err)
	}

	s := &Session{
		cfg:     cfg,
		measure: m,
		digest:  digest,
		tree:    tree,
		live:    selection.NewLiveEngine(),
		state:   env.State,
		asked:   env.Asked,
		contra:  env.Contradictions,
	}
	s.initRNG(env.RNGDraws)
	for _, p := range env.Pending {
		if p.I == p.J || p.I < 0 || p.J < 0 || p.I >= len(dists) || p.J >= len(dists) {
			return nil, fmt.Errorf("%w: invalid pending question (%d, %d)", ErrInvalidCheckpoint, p.I, p.J)
		}
		s.pending = append(s.pending, tpo.NewQuestion(p.I, p.J))
	}
	for _, a := range env.Answers {
		if a.I == a.J || a.I < 0 || a.J < 0 || a.I >= len(dists) || a.J >= len(dists) {
			return nil, fmt.Errorf("%w: invalid answer (%d, %d)", ErrInvalidCheckpoint, a.I, a.J)
		}
		yes := a.Yes
		if a.I > a.J {
			// NewQuestion swaps the pair into canonical I < J order; the
			// answer flips with it, mirroring SubmitAnswer (Checkpoint
			// always writes canonical pairs, but a hand-edited envelope
			// must not restore with inverted semantics).
			yes = !yes
		}
		s.answers = append(s.answers, tpo.Answer{Q: tpo.NewQuestion(a.I, a.J), Yes: yes})
	}
	// A non-terminal session always has questions planned; a checkpoint
	// written between rounds (or hand-trimmed) may not — replan.
	if !s.state.Terminal() && len(s.pending) == 0 {
		if err := s.plan(context.Background()); err != nil {
			return nil, err
		}
	}
	return s, nil
}
