// Package session inverts the engine's synchronous crowd callback into a
// long-lived, resumable query state machine. Where engine.Run drives a
// Crowd's Ask method and blocks until the budget is spent, a Session hands
// out the next best questions (NextQuestions), absorbs answers whenever they
// arrive (SubmitAnswer) — minutes or hours later, in any order within a
// round — and reports the current top-K belief at any time (Result). The
// whole session round-trips through a versioned JSON checkpoint
// (Checkpoint/Restore), so a crashed or redeployed server resumes mid-query
// instead of re-asking the crowd.
//
// Both this package and the batch runner consume the transition code
// extracted into internal/engine (ApplyAnswer, the strategy factories,
// PlanIncrRound), so the served protocol and the experiment protocol cannot
// drift.
//
// Lifecycle:
//
//	Created ──NextQuestions──▶ AwaitingAnswers ──SubmitAnswer──▶ ... ─┬─▶ Converged  (single ordering remains)
//	   │                                                              └─▶ Exhausted  (questions spent, uncertainty remains)
//	   └───────────── (budget 0 or nothing to ask) ───────────────────┴──────▲
//
// All methods are safe for concurrent use; a Session serializes its own
// transitions with an internal lock.
package session

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"crowdtopk/internal/dataset"
	"crowdtopk/internal/dist"
	"crowdtopk/internal/engine"
	"crowdtopk/internal/obs"
	"crowdtopk/internal/par"
	"crowdtopk/internal/pcache"
	"crowdtopk/internal/rank"
	"crowdtopk/internal/selection"
	"crowdtopk/internal/tpo"
	"crowdtopk/internal/uncertainty"
)

// State is a session lifecycle phase.
type State string

// Session states. Converged and Exhausted are terminal.
const (
	// Created: the tree is built and questions are planned, but none have
	// been delivered yet.
	Created State = "created"
	// AwaitingAnswers: questions have been handed out and the session is
	// waiting for the crowd.
	AwaitingAnswers State = "awaiting_answers"
	// Converged: a single ordering remains; the query is answered.
	Converged State = "converged"
	// Exhausted: no further questions will be asked (budget spent or the
	// strategy found nothing more worth asking) but several orderings
	// remain possible.
	Exhausted State = "exhausted"
)

// Terminal reports whether the session will accept no further answers.
func (s State) Terminal() bool { return s == Converged || s == Exhausted }

// valid reports whether s is one of the defined states (used when restoring
// checkpoints).
func (s State) valid() bool {
	switch s {
	case Created, AwaitingAnswers, Converged, Exhausted:
		return true
	}
	return false
}

// Errors reported by session operations.
var (
	// ErrDone reports an answer submitted to a terminal session.
	ErrDone = errors.New("session: already converged or exhausted")
	// ErrUnknownQuestion reports an answer to a question the session has
	// not issued (or has already accepted an answer for).
	ErrUnknownQuestion = errors.New("session: answer to a question not currently issued")
	// ErrInvalidConfig reports an unusable session configuration.
	ErrInvalidConfig = errors.New("session: invalid config")
	// ErrInvalidCheckpoint reports a checkpoint stream that is structurally
	// unusable: not decodable, or internally inconsistent. Mismatched
	// schema/kind/digest are reported as *MismatchError instead.
	ErrInvalidCheckpoint = errors.New("session: invalid checkpoint")
)

// Config describes one asynchronous query session.
type Config struct {
	// Dists is the uncertain score model of the N tuples.
	Dists []dist.Distribution
	// Names optionally attaches human-readable tuple names (len N); they
	// ride along in checkpoints for rendering on the other side.
	Names []string
	// K is the result size; Budget the maximum number of crowd answers
	// accepted. Budget 0 creates an immediately terminal session that
	// reports the prior belief.
	K, Budget int
	// Algorithm selects the question strategy by engine.Alg* name
	// (default T1-on, the paper's best cost/quality tradeoff for
	// interactive use).
	Algorithm string
	// Measure names the uncertainty measure (default MPO).
	Measure string
	// Reliability is the probability a submitted answer is correct: 1
	// prunes orderings outright, lower values apply the Bayesian
	// reweighting of §III.C. Default 1.
	Reliability float64
	// RoundSize is the incr algorithm's questions per round (default 5).
	RoundSize int
	// Build tunes TPO construction.
	Build tpo.BuildOptions
	// Seed drives the random baselines' question shuffles.
	Seed int64
	// Pool optionally shares a process-wide worker budget with other
	// sessions: tree builds and extensions run with whatever share is
	// free (results are identical for any share). Nil uses Build.Workers
	// as-is.
	Pool *par.Budget
}

// Session is a resumable uncertainty-reduction query. Create one with New,
// resume one with Restore.
type Session struct {
	mu sync.Mutex

	cfg     Config
	measure uncertainty.Measure
	digest  string // content hash of cfg.Dists, stamped into checkpoints

	tree    *tpo.Tree
	live    *selection.LiveEngine // selection engine kept current across answers
	online  selection.Online      // non-nil for online algorithms
	src     *countingSource
	rng     *rand.Rand
	state   State
	pending []tpo.Question // issued (or planned) questions awaiting answers
	answers []tpo.Answer   // accepted answers, in submission order
	asked   int
	contra  int

	dirtyHook func() // runs (outside the lock) after every accepted answer
}

// New validates the configuration, builds the initial tree and plans the
// first questions. The session starts in Created (or directly in a terminal
// state when there is nothing to ask).
func New(cfg Config) (*Session, error) {
	return NewCtx(context.Background(), cfg)
}

// NewCtx is New carrying a request context for tracing: the build and the
// first planning sweep attribute their time to the creating request's span
// tree. The context does not cancel the build.
func NewCtx(ctx context.Context, cfg Config) (*Session, error) {
	m, err := validate(&cfg)
	if err != nil {
		return nil, err
	}
	digest, err := dataset.Digest(cfg.Dists)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidConfig, err)
	}

	s := &Session{cfg: cfg, measure: m, digest: digest, state: Created, live: selection.NewLiveEngine()}
	s.initRNG(0)
	if err := s.withWorkers(func(workers int) error {
		// Bulk-fill the pairwise π cache before building: the build and the
		// first residual sweep of a cold dataset then find every pair hot,
		// and the fill cost lands in the stats endpoint's prewarm counters
		// instead of smeared over the first NextQuestions call.
		pcache.Prewarm(cfg.Dists, workers)
		opt := cfg.Build
		opt.Workers = workers
		var err error
		if cfg.Algorithm == engine.AlgIncr {
			s.tree, err = tpo.StartIncremental(cfg.Dists, cfg.K, opt)
		} else {
			s.tree, err = tpo.Build(cfg.Dists, cfg.K, opt)
		}
		return err
	}); err != nil {
		return nil, err
	}
	if err := s.plan(ctx); err != nil {
		return nil, err
	}
	return s, nil
}

// validate applies defaults, checks the configuration and instantiates the
// measure. Both entry points (New and checkpoint Restore) consume it, so
// the two cannot drift on what a usable configuration is.
func validate(cfg *Config) (uncertainty.Measure, error) {
	if len(cfg.Dists) == 0 {
		return nil, fmt.Errorf("%w: empty dataset", ErrInvalidConfig)
	}
	if cfg.Names != nil && len(cfg.Names) != len(cfg.Dists) {
		return nil, fmt.Errorf("%w: %d names for %d tuples", ErrInvalidConfig, len(cfg.Names), len(cfg.Dists))
	}
	if cfg.K < 1 || cfg.K > len(cfg.Dists) {
		return nil, fmt.Errorf("%w: k=%d with %d tuples", ErrInvalidConfig, cfg.K, len(cfg.Dists))
	}
	if cfg.Budget < 0 {
		return nil, fmt.Errorf("%w: negative budget %d", ErrInvalidConfig, cfg.Budget)
	}
	applyDefaults(cfg)
	if cfg.Reliability <= 0 || cfg.Reliability > 1 {
		return nil, fmt.Errorf("%w: reliability %g outside (0, 1]", ErrInvalidConfig, cfg.Reliability)
	}
	if !engine.IsOffline(cfg.Algorithm) && !engine.IsOnline(cfg.Algorithm) && cfg.Algorithm != engine.AlgIncr {
		return nil, fmt.Errorf("%w: %q", engine.ErrUnknownAlgorithm, cfg.Algorithm)
	}
	m, err := uncertainty.New(cfg.Measure)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidConfig, err)
	}
	return m, nil
}

func applyDefaults(cfg *Config) {
	if cfg.Algorithm == "" {
		cfg.Algorithm = engine.AlgT1On
	}
	if cfg.Measure == "" {
		cfg.Measure = "MPO"
	}
	if cfg.Reliability == 0 {
		cfg.Reliability = 1
	}
	if cfg.RoundSize == 0 {
		cfg.RoundSize = 5
	}
}

// initRNG seeds the counting source and burns `draws` values (checkpoint
// restore replays the source to the recorded position).
func (s *Session) initRNG(draws uint64) {
	s.src = newCountingSource(s.cfg.Seed)
	s.src.burn(draws)
	s.rng = rand.New(s.src)
}

// withWorkers runs f with the parallelism this session may use right now:
// its configured worker count when it has no pool, otherwise whatever share
// of the shared budget is currently free (at least one slot).
func (s *Session) withWorkers(f func(workers int) error) error {
	if s.cfg.Pool == nil {
		return f(s.cfg.Build.Workers)
	}
	got := s.cfg.Pool.Acquire(s.cfg.Build.Workers)
	defer s.cfg.Pool.Release(got)
	return f(got)
}

func (s *Session) context() *selection.Context {
	// The residual sweeps draw their parallelism from the shared pool (when
	// configured) for the duration of each sweep, exactly like builds and
	// extensions do through withWorkers; selected questions are identical
	// for any share.
	return &selection.Context{
		Tree:    s.tree,
		Measure: s.measure,
		Workers: s.cfg.Build.Workers,
		Pool:    s.cfg.Pool,
		Live:    s.live,
	}
}

// plan fills the pending question list after construction or after the
// previous questions were all answered, and settles terminal states. It
// runs with s.mu held (or on a session not yet shared).
func (s *Session) plan(ctx context.Context) error {
	if s.state.Terminal() {
		return nil
	}
	if len(s.pending) > 0 {
		return nil
	}
	remaining := s.cfg.Budget - s.asked
	if remaining <= 0 {
		return s.finish(ctx)
	}
	ctx, sp := obs.StartSpan(ctx, "selection.plan")
	defer sp.End()
	sp.SetAttr("algorithm", s.cfg.Algorithm)
	switch {
	case engine.IsOffline(s.cfg.Algorithm):
		// Offline strategies commit to the whole batch before any answer
		// (§III.A); the batch is planned once, right after construction.
		if s.asked > 0 {
			return s.finish(ctx) // batch consumed
		}
		strat, err := engine.OfflineStrategy(s.cfg.Algorithm, s.rng)
		if err != nil {
			return err
		}
		batch, err := strat.SelectBatch(s.tree.LeafSet(), remaining, s.context())
		if err != nil {
			return err
		}
		if len(batch) == 0 {
			return s.finish(ctx)
		}
		s.pending = batch
	case engine.IsOnline(s.cfg.Algorithm):
		if s.online == nil {
			strat, err := engine.OnlineStrategy(s.cfg.Algorithm)
			if err != nil {
				return err
			}
			s.online = strat
		}
		q, ok, err := s.online.NextQuestion(s.tree.LeafSet(), remaining, s.context())
		if err != nil {
			return err
		}
		if !ok {
			return s.finish(ctx) // early termination: all uncertainty removed
		}
		s.pending = []tpo.Question{q}
	default: // incr
		var batch []tpo.Question
		var buildMS, selectMS time.Duration
		err := s.withWorkers(func(workers int) error {
			s.tree.SetWorkers(workers)
			// The pool share is already held for this round: the context
			// reuses it directly rather than re-acquiring (two sessions
			// nesting pool acquisitions could deadlock each other).
			sctx := &selection.Context{Tree: s.tree, Measure: s.measure, Workers: workers, Live: s.live}
			var build, sel time.Duration
			var err error
			batch, build, sel, err = engine.PlanIncrRound(s.tree, s.cfg.K, s.cfg.RoundSize, remaining, sctx)
			buildMS, selectMS = build, sel
			return err
		})
		if err != nil {
			return err
		}
		sp.SetAttr("build_ms", float64(buildMS)/float64(time.Millisecond))
		sp.SetAttr("select_ms", float64(selectMS)/float64(time.Millisecond))
		if len(batch) == 0 {
			return s.finish(ctx) // tree fully built and certain
		}
		s.pending = batch
	}
	sp.SetAttr("batch", len(s.pending))
	return nil
}

// finish settles the terminal state: the tree is materialized to depth K
// (the incr algorithm may still owe levels) and the session converges or
// exhausts depending on whether a single ordering remains.
func (s *Session) finish(ctx context.Context) error {
	_, sp := obs.StartSpan(ctx, "session.finish")
	defer sp.End()
	if err := s.withWorkers(func(workers int) error {
		s.tree.SetWorkers(workers)
		_, err := engine.ExtendToDepth(s.tree, s.cfg.K)
		return err
	}); err != nil {
		return err
	}
	// The extension (if any) changed the leaf universe, and a terminal
	// session selects no further questions either way: drop the held engine
	// and release the arena/index memory.
	s.live.Invalidate()
	s.pending = nil
	if s.tree.LeafSet().Len() <= 1 {
		s.state = Converged
	} else {
		s.state = Exhausted
	}
	return nil
}

// State returns the current lifecycle state.
func (s *Session) State() State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// NextQuestions returns up to n pending questions for the crowd (n < 1
// returns all of them) together with the Status they were issued under —
// one atomic snapshot, so a concurrent answer cannot pair fresh questions
// with a terminal state in the caller's view. The call is idempotent —
// questions stay pending until answered, so a crashed client pulls the
// same work again. Online strategies expose one question at a time by
// construction: the next best question is only defined once the previous
// answer has conditioned the tree. A terminal session returns an empty
// slice.
func (s *Session) NextQuestions(n int) ([]tpo.Question, Status, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var qs []tpo.Question
	if !s.state.Terminal() {
		if len(s.pending) > 0 && s.state == Created {
			s.state = AwaitingAnswers
		}
		if n < 1 || n > len(s.pending) {
			n = len(s.pending)
		}
		qs = append([]tpo.Question(nil), s.pending[:n]...)
	}
	return qs, s.status(), nil
}

// SubmitAnswer accepts one crowd answer for a currently issued question,
// conditions the tree with the session's reliability (prune or reweight via
// the shared engine transition), and plans further questions once the
// outstanding ones are all answered. Answers may arrive in any order within
// the issued set and in either orientation of the pair. A contradictory
// answer is absorbed (counted, tree unchanged) exactly as in the batch
// engine.
func (s *Session) SubmitAnswer(a tpo.Answer) error {
	return s.SubmitAnswerCtx(context.Background(), a)
}

// SubmitAnswerCtx is SubmitAnswer carrying a request context for tracing:
// the apply and any follow-up planning sweep land in the caller's span tree.
func (s *Session) SubmitAnswerCtx(ctx context.Context, a tpo.Answer) error {
	s.mu.Lock()
	err := s.submitLocked(ctx, a)
	hook := s.dirtyHook
	s.mu.Unlock()
	// The hook fires outside the lock: a persistence layer reacting to it may
	// immediately call back into Answers/Checkpoint, which take the lock.
	if err == nil && hook != nil {
		hook()
	}
	return err
}

func (s *Session) submitLocked(ctx context.Context, a tpo.Answer) error {
	if s.state.Terminal() {
		return fmt.Errorf("%w (state %s)", ErrDone, s.state)
	}
	if a.Q.I == a.Q.J {
		return fmt.Errorf("%w: self-comparison t%d", ErrUnknownQuestion, a.Q.I)
	}
	// Canonicalize: questions are stored with I < J.
	if a.Q.I > a.Q.J {
		a = tpo.Answer{Q: tpo.NewQuestion(a.Q.J, a.Q.I), Yes: !a.Yes}
	}
	found := -1
	for i, q := range s.pending {
		if q == a.Q {
			found = i
			break
		}
	}
	if found < 0 {
		return fmt.Errorf("%w: %v", ErrUnknownQuestion, a.Q)
	}
	// Condition the tree first: on a real apply error the answer is not
	// accepted, so the question stays pending and the answer log (and any
	// later Checkpoint) never records an answer that did not condition the
	// tree.
	// The apply span closes before any follow-up planning, so plan() below
	// parents its selection.plan span on the request (ctx), not on the
	// already-ended apply span — keeping the tree properly nested for the
	// self-time identity.
	applyCtx, sp := obs.StartSpan(ctx, "session.apply")
	sp.SetAttr("i", a.Q.I)
	sp.SetAttr("j", a.Q.J)
	sp.SetAttr("yes", a.Yes)
	contradicted, err := engine.ApplyAnswerLive(applyCtx, s.tree, a, s.cfg.Reliability, s.live)
	sp.SetAttr("contradicted", contradicted)
	sp.End()
	if err != nil {
		return err
	}
	s.pending = append(s.pending[:found], s.pending[found+1:]...)
	s.answers = append(s.answers, a)
	s.asked++
	if contradicted {
		s.contra++
	}
	if s.state == Created {
		s.state = AwaitingAnswers
	}
	if len(s.pending) == 0 {
		return s.plan(ctx)
	}
	return nil
}

// Result reports the current top-K belief.
type Result struct {
	// State is the lifecycle state the result was computed in.
	State State
	// Ranking is the representative ordering under the session's measure
	// (the single survivor when Resolved). Until an incr session
	// terminates it may be shorter than K: the incremental tree only
	// materializes the levels its questions needed so far.
	Ranking rank.Ordering
	// Resolved reports whether a single ordering remains.
	Resolved bool
	// Orderings is the number of orderings still possible.
	Orderings int
	// Uncertainty is the measure's current value.
	Uncertainty float64
	// Asked counts accepted answers; Budget the configured maximum.
	Asked, Budget int
	// Pending counts questions currently awaiting answers.
	Pending int
	// Contradictions counts absorbed contradictory answers.
	Contradictions int
}

// Status is the cheap subset of Result: lifecycle counters that need no
// sweep over the leaf set. Serving hot paths (question polls, answer acks)
// report it instead of computing the full belief.
type Status struct {
	State          State
	Asked, Budget  int
	Pending        int
	Contradictions int
}

// Status reports the lifecycle counters without computing the
// representative ranking or the measure value (both O(orderings)).
func (s *Session) Status() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.status()
}

// status builds the counter snapshot with s.mu held.
func (s *Session) status() Status {
	return Status{
		State:          s.state,
		Asked:          s.asked,
		Budget:         s.cfg.Budget,
		Pending:        len(s.pending),
		Contradictions: s.contra,
	}
}

// SetDirtyHook registers f to run after every accepted answer (nil clears
// it). The hook is invoked outside the session lock, so it may call back
// into the session (Answers, Checkpoint, Status) — a persistence layer uses
// it to learn the session has durable work pending without polling.
func (s *Session) SetDirtyHook(f func()) {
	s.mu.Lock()
	s.dirtyHook = f
	s.mu.Unlock()
}

// AnswersSince returns a copy of the accepted answers from index from on
// (submission order), plus the total accepted count. Persistence layers
// append exactly this tail to their WAL — copying the whole log on every
// persisted answer would make a long session's writes O(n²) cumulative —
// and replaying it through SubmitAnswer on a restored checkpoint reproduces
// the session state (every transition is deterministic given the
// checkpointed RNG position). A from outside [0, total] returns a nil tail
// and the total, signalling the caller's bookkeeping is stale.
func (s *Session) AnswersSince(from int) ([]tpo.Answer, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.answers)
	if from < 0 || from > n {
		return nil, n
	}
	return append([]tpo.Answer(nil), s.answers[from:]...), n
}

// Orderings counts the orderings still possible (without snapshotting them).
func (s *Session) Orderings() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tree.NumLeaves()
}

// Result computes the current top-K belief with uncertainty. It is valid in
// every state: mid-query it reports the partially conditioned belief.
func (s *Session) Result() *Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	ls := s.tree.LeafSet()
	return &Result{
		State:          s.state,
		Ranking:        uncertainty.Representative(s.measure, ls),
		Resolved:       ls.Len() <= 1,
		Orderings:      ls.Len(),
		Uncertainty:    s.measure.Value(ls),
		Asked:          s.asked,
		Budget:         s.cfg.Budget,
		Pending:        len(s.pending),
		Contradictions: s.contra,
	}
}

// Name returns the tuple's configured name (t<id> when unnamed).
func (s *Session) Name(id int) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cfg.Names != nil && id >= 0 && id < len(s.cfg.Names) {
		return s.cfg.Names[id]
	}
	return fmt.Sprintf("t%d", id)
}

// Names returns the configured tuple names (nil when unnamed).
func (s *Session) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.cfg.Names...)
}

// Len returns the number of tuples in the session's dataset.
func (s *Session) Len() int { return len(s.cfg.Dists) }

// countingSource wraps the standard PRNG source and counts how many values
// have been drawn, so a checkpoint can record the exact generator position
// and a restore can replay to it. Both Int63 and Uint64 advance the
// underlying generator by one step, so replaying n draws through either
// method reproduces the state.
type countingSource struct {
	src   rand.Source64
	draws uint64
}

func newCountingSource(seed int64) *countingSource {
	return &countingSource{src: rand.NewSource(seed).(rand.Source64)}
}

func (c *countingSource) Int63() int64 {
	c.draws++
	return c.src.Int63()
}

func (c *countingSource) Uint64() uint64 {
	c.draws++
	return c.src.Uint64()
}

func (c *countingSource) Seed(seed int64) {
	c.src.Seed(seed)
	c.draws = 0
}

func (c *countingSource) burn(n uint64) {
	for i := uint64(0); i < n; i++ {
		c.src.Uint64()
	}
	c.draws = n
}
