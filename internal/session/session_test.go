package session

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"

	"crowdtopk/internal/crowd"
	"crowdtopk/internal/dataset"
	"crowdtopk/internal/dist"
	"crowdtopk/internal/engine"
	"crowdtopk/internal/par"
	"crowdtopk/internal/tpo"
	"crowdtopk/internal/uncertainty"
)

func testDists(t *testing.T, n int, seed int64) []dist.Distribution {
	t.Helper()
	ds, err := dataset.Generate(dataset.Spec{N: n, Width: 2.2, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// drive answers every question the session asks with cr until the session
// terminates, pulling `batch` questions at a time (batch < 1 pulls all
// pending).
func drive(t *testing.T, s *Session, cr crowd.Crowd, batch int) {
	t.Helper()
	for i := 0; i < 10_000; i++ {
		qs, _, err := s.NextQuestions(batch)
		if err != nil {
			t.Fatal(err)
		}
		if len(qs) == 0 {
			if !s.State().Terminal() {
				t.Fatalf("no questions but state %s is not terminal", s.State())
			}
			return
		}
		for _, q := range qs {
			if err := s.SubmitAnswer(cr.Ask(q)); err != nil {
				t.Fatal(err)
			}
		}
	}
	t.Fatal("session did not terminate")
}

// TestSessionMatchesEngine: for every algorithm, a session fed by the same
// crowd reproduces the batch engine's result — ranking, question count,
// surviving orderings and resolution — because both consume the same
// extracted transition code.
func TestSessionMatchesEngine(t *testing.T) {
	ds := testDists(t, 7, 5)
	truth := crowd.SampleTruth(ds, rand.New(rand.NewSource(99)))
	algs := []string{
		engine.AlgT1On, engine.AlgAStarOn,
		engine.AlgTBOff, engine.AlgCOff, engine.AlgAStarOff,
		engine.AlgRandom, engine.AlgNaive,
		engine.AlgIncr,
	}
	for _, alg := range algs {
		alg := alg
		t.Run(alg, func(t *testing.T) {
			const k, budget, seed = 3, 12, 17
			m, err := uncertainty.New("MPO")
			if err != nil {
				t.Fatal(err)
			}
			// Truth is passed explicitly so the engine's RNG is consumed
			// only by the strategy, matching the session's RNG stream for
			// the random baselines.
			want, err := engine.Run(engine.Config{
				Dists: ds, K: k, Budget: budget, Algorithm: alg,
				Measure: m, Crowd: &crowd.PerfectOracle{Truth: truth},
				Truth: truth, Seed: seed,
			})
			if err != nil {
				t.Fatal(err)
			}

			s, err := New(Config{Dists: ds, K: k, Budget: budget, Algorithm: alg, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			drive(t, s, &crowd.PerfectOracle{Truth: truth}, 0)
			got := s.Result()

			if got.Asked != want.Asked {
				t.Errorf("asked = %d, want %d", got.Asked, want.Asked)
			}
			if got.Orderings != want.FinalLeaves {
				t.Errorf("orderings = %d, want %d", got.Orderings, want.FinalLeaves)
			}
			if got.Resolved != want.Resolved {
				t.Errorf("resolved = %v, want %v", got.Resolved, want.Resolved)
			}
			if len(got.Ranking) != len(want.FinalOrdering) {
				t.Fatalf("ranking %v, want %v", got.Ranking, want.FinalOrdering)
			}
			for i := range got.Ranking {
				if got.Ranking[i] != want.FinalOrdering[i] {
					t.Fatalf("ranking %v, want %v", got.Ranking, want.FinalOrdering)
				}
			}
			if math.Abs(got.Uncertainty-want.FinalUncertainty) > 1e-9 {
				t.Errorf("uncertainty = %v, want %v", got.Uncertainty, want.FinalUncertainty)
			}
			wantState := Exhausted
			if want.Resolved {
				wantState = Converged
			}
			if got.State != wantState {
				t.Errorf("state = %s, want %s", got.State, wantState)
			}
		})
	}
}

// TestSessionNoisyMatchesEngine: with reliability < 1 the session reweights
// exactly as the engine does for the same worker answers.
func TestSessionNoisyMatchesEngine(t *testing.T) {
	ds := testDists(t, 6, 11)
	truth := crowd.SampleTruth(ds, rand.New(rand.NewSource(4)))
	const k, budget, accuracy = 2, 10, 0.8
	newCrowd := func() crowd.Crowd {
		pf, err := crowd.NewUniformPlatform(truth, 16, accuracy, rand.New(rand.NewSource(7)))
		if err != nil {
			t.Fatal(err)
		}
		return pf
	}
	m, err := uncertainty.New("MPO")
	if err != nil {
		t.Fatal(err)
	}
	want, err := engine.Run(engine.Config{
		Dists: ds, K: k, Budget: budget, Algorithm: engine.AlgT1On,
		Measure: m, Crowd: newCrowd(), Truth: truth, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}

	cr := newCrowd()
	s, err := New(Config{Dists: ds, K: k, Budget: budget, Algorithm: engine.AlgT1On, Reliability: cr.Reliability()})
	if err != nil {
		t.Fatal(err)
	}
	drive(t, s, cr, 0)
	got := s.Result()
	if got.Asked != want.Asked || got.Orderings != want.FinalLeaves {
		t.Fatalf("asked/orderings = %d/%d, want %d/%d", got.Asked, got.Orderings, want.Asked, want.FinalLeaves)
	}
	for i := range got.Ranking {
		if got.Ranking[i] != want.FinalOrdering[i] {
			t.Fatalf("ranking %v, want %v", got.Ranking, want.FinalOrdering)
		}
	}
	if math.Abs(got.Uncertainty-want.FinalUncertainty) > 1e-9 {
		t.Fatalf("uncertainty = %v, want %v", got.Uncertainty, want.FinalUncertainty)
	}
}

// TestSessionCheckpointRestoreMidQuery: a session checkpointed and restored
// after half its answers finishes with the same result as one that ran
// straight through — for a full-tree strategy and for incr, whose tree is
// only partially built at the checkpoint.
func TestSessionCheckpointRestoreMidQuery(t *testing.T) {
	for _, alg := range []string{engine.AlgT1On, engine.AlgIncr, engine.AlgTBOff} {
		alg := alg
		t.Run(alg, func(t *testing.T) {
			ds := testDists(t, 7, 5)
			truth := crowd.SampleTruth(ds, rand.New(rand.NewSource(99)))
			const k, budget = 3, 12

			straight, err := New(Config{Dists: ds, K: k, Budget: budget, Algorithm: alg, Seed: 3})
			if err != nil {
				t.Fatal(err)
			}
			drive(t, straight, &crowd.PerfectOracle{Truth: truth}, 0)
			want := straight.Result()

			s, err := New(Config{Dists: ds, K: k, Budget: budget, Algorithm: alg, Seed: 3})
			if err != nil {
				t.Fatal(err)
			}
			cr := &crowd.PerfectOracle{Truth: truth}
			half := want.Asked / 2
			for s.Result().Asked < half && !s.State().Terminal() {
				qs, _, err := s.NextQuestions(1)
				if err != nil {
					t.Fatal(err)
				}
				if len(qs) == 0 {
					break
				}
				if err := s.SubmitAnswer(cr.Ask(qs[0])); err != nil {
					t.Fatal(err)
				}
			}

			var buf bytes.Buffer
			if err := s.Checkpoint(&buf); err != nil {
				t.Fatal(err)
			}
			restored, err := Restore(&buf, nil)
			if err != nil {
				t.Fatal(err)
			}
			if restored.Result().Asked != s.Result().Asked {
				t.Fatalf("restored asked = %d, want %d", restored.Result().Asked, s.Result().Asked)
			}
			drive(t, restored, cr, 0)
			got := restored.Result()

			if got.Asked != want.Asked || got.Orderings != want.Orderings || got.Resolved != want.Resolved {
				t.Fatalf("asked/orderings/resolved = %d/%d/%v, want %d/%d/%v",
					got.Asked, got.Orderings, got.Resolved, want.Asked, want.Orderings, want.Resolved)
			}
			for i := range got.Ranking {
				if got.Ranking[i] != want.Ranking[i] {
					t.Fatalf("ranking %v, want %v", got.Ranking, want.Ranking)
				}
			}
			if got.State != want.State {
				t.Fatalf("state = %s, want %s", got.State, want.State)
			}
		})
	}
}

// TestSessionStateMachine pins lifecycle transitions and the typed errors.
func TestSessionStateMachine(t *testing.T) {
	ds := testDists(t, 5, 2)
	truth := crowd.SampleTruth(ds, rand.New(rand.NewSource(12)))
	s, err := New(Config{Dists: ds, K: 2, Budget: 8})
	if err != nil {
		t.Fatal(err)
	}
	if s.State() != Created {
		t.Fatalf("initial state = %s, want %s", s.State(), Created)
	}
	// Unknown answers are rejected before any question is issued.
	if err := s.SubmitAnswer(tpo.Answer{Q: tpo.NewQuestion(0, 1), Yes: true}); !errors.Is(err, ErrUnknownQuestion) {
		// The first planned question might be (0,1); in that case pick a
		// question that is certainly not pending.
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
	}
	qs, _, err := s.NextQuestions(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 1 {
		t.Fatalf("NextQuestions = %v", qs)
	}
	if s.State() != AwaitingAnswers {
		t.Fatalf("state after delivery = %s, want %s", s.State(), AwaitingAnswers)
	}
	// Redelivery returns the same question.
	again, _, err := s.NextQuestions(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != 1 || again[0] != qs[0] {
		t.Fatalf("redelivery %v, want %v", again, qs)
	}
	// Answers are accepted in either orientation of the pair.
	a := truth.Correct(qs[0])
	flipped := tpo.Answer{Q: tpo.Question{I: a.Q.J, J: a.Q.I}, Yes: !a.Yes}
	if err := s.SubmitAnswer(flipped); err != nil {
		t.Fatalf("flipped orientation rejected: %v", err)
	}
	// Answering the same question again fails typed.
	if err := s.SubmitAnswer(a); !errors.Is(err, ErrUnknownQuestion) {
		t.Fatalf("duplicate answer error = %v, want ErrUnknownQuestion", err)
	}
	drive(t, s, &crowd.PerfectOracle{Truth: truth}, 0)
	if !s.State().Terminal() {
		t.Fatalf("driven session not terminal: %s", s.State())
	}
	if err := s.SubmitAnswer(a); !errors.Is(err, ErrDone) {
		t.Fatalf("terminal submit error = %v, want ErrDone", err)
	}
	if qs, _, err := s.NextQuestions(5); err != nil || len(qs) != 0 {
		t.Fatalf("terminal NextQuestions = %v, %v", qs, err)
	}
}

// TestSessionZeroBudget: a session with nothing to ask is terminal at
// creation and still reports the prior belief.
func TestSessionZeroBudget(t *testing.T) {
	ds := testDists(t, 5, 2)
	s, err := New(Config{Dists: ds, K: 2, Budget: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !s.State().Terminal() {
		t.Fatalf("state = %s, want terminal", s.State())
	}
	res := s.Result()
	if res.Orderings < 1 || len(res.Ranking) == 0 {
		t.Fatalf("prior result unusable: %+v", res)
	}
}

// TestRestoreRejectsMismatches: schema, kind and digest corruption fail with
// typed errors instead of silently mis-resuming.
func TestRestoreRejectsMismatches(t *testing.T) {
	ds := testDists(t, 5, 2)
	s, err := New(Config{Dists: ds, K: 2, Budget: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.String()

	var mm *MismatchError
	if _, err := Restore(bytes.NewReader([]byte(`{"schema":1,"kind":"other"}`)), nil); !errors.As(err, &mm) || mm.Field != "kind" {
		t.Fatalf("kind mismatch = %v", err)
	}
	bad := bytes.Replace([]byte(good), []byte(`"schema":1`), []byte(`"schema":99`), 1)
	if _, err := Restore(bytes.NewReader(bad), nil); !errors.As(err, &mm) || mm.Field != "schema" {
		t.Fatalf("schema mismatch = %v", err)
	}
	bad = bytes.Replace([]byte(good), []byte(`"digest":"sha256:`), []byte(`"digest":"sha256:00`), 1)
	if _, err := Restore(bytes.NewReader(bad), nil); !errors.As(err, &mm) || mm.Field != "dataset digest" {
		t.Fatalf("digest mismatch = %v", err)
	}
}

// TestRestoreBoundsRNGReplay: a crafted checkpoint with an absurd RNG
// position is rejected with a typed error instead of spinning the CPU
// replaying up to 2^64 draws.
func TestRestoreBoundsRNGReplay(t *testing.T) {
	ds := testDists(t, 5, 2)
	s, err := New(Config{Dists: ds, K: 2, Budget: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	var env envelope
	if err := json.Unmarshal(buf.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	env.RNGDraws = math.MaxUint64
	b, err := json.Marshal(&env)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Restore(bytes.NewReader(b), nil); !errors.Is(err, ErrInvalidCheckpoint) {
		t.Fatalf("excessive rng_draws = %v, want ErrInvalidCheckpoint", err)
	}
}

// TestRestoreRejectsPendingOverBudget: a crafted checkpoint whose pending
// list exceeds the remaining budget is rejected — otherwise the restored
// session would accept answers past Budget.
func TestRestoreRejectsPendingOverBudget(t *testing.T) {
	ds := testDists(t, 5, 2)
	s, err := New(Config{Dists: ds, K: 2, Budget: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	var env envelope
	if err := json.Unmarshal(buf.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	env.Pending = []pairJSON{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 2}} // 5 > budget 4
	b, err := json.Marshal(&env)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Restore(bytes.NewReader(b), nil); !errors.Is(err, ErrInvalidCheckpoint) {
		t.Fatalf("pending over budget = %v, want ErrInvalidCheckpoint", err)
	}
}

// TestRestoreCanonicalizesAnswers: a checkpoint carrying answers in
// non-canonical (I > J) orientation restores them flipped along with the
// pair — mirroring SubmitAnswer — so the restored answer log keeps the same
// semantics instead of silently inverting.
func TestRestoreCanonicalizesAnswers(t *testing.T) {
	ds := testDists(t, 5, 2)
	truth := crowd.SampleTruth(ds, rand.New(rand.NewSource(12)))
	s, err := New(Config{Dists: ds, K: 2, Budget: 4})
	if err != nil {
		t.Fatal(err)
	}
	qs, _, err := s.NextQuestions(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) == 0 {
		t.Fatal("no questions planned")
	}
	for _, q := range qs {
		if err := s.SubmitAnswer(truth.Correct(q)); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := s.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	var env envelope
	if err := json.Unmarshal(buf.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if len(env.Answers) == 0 {
		t.Fatal("checkpoint carries no answers")
	}
	// Rewrite each answer in the opposite orientation with the same
	// semantics: (j, i, !yes) states the same fact as (i, j, yes).
	for i, a := range env.Answers {
		env.Answers[i] = answerJSON{I: a.J, J: a.I, Yes: !a.Yes}
	}
	b, err := json.Marshal(&env)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(bytes.NewReader(b), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(restored.answers) != len(s.answers) {
		t.Fatalf("restored %d answers, want %d", len(restored.answers), len(s.answers))
	}
	for i := range s.answers {
		if restored.answers[i] != s.answers[i] {
			t.Fatalf("answer %d = %+v, want %+v", i, restored.answers[i], s.answers[i])
		}
	}
}

// TestSessionSharedPool: sessions created concurrently against one worker
// budget complete correctly (run under -race this also pins the pool's
// concurrency safety).
func TestSessionSharedPool(t *testing.T) {
	pool := par.NewBudget(2)
	var wg sync.WaitGroup
	errs := make([]error, 4)
	results := make([]*Result, 4)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ds, err := dataset.Generate(dataset.Spec{N: 6, Width: 2.0, Seed: int64(i + 1)})
			if err != nil {
				errs[i] = err
				return
			}
			truth := crowd.SampleTruth(ds, rand.New(rand.NewSource(int64(i))))
			s, err := New(Config{Dists: ds, K: 2, Budget: 6, Algorithm: engine.AlgIncr, Pool: pool})
			if err != nil {
				errs[i] = err
				return
			}
			cr := &crowd.PerfectOracle{Truth: truth}
			for {
				qs, _, err := s.NextQuestions(0)
				if err != nil {
					errs[i] = err
					return
				}
				if len(qs) == 0 {
					break
				}
				for _, q := range qs {
					if err := s.SubmitAnswer(cr.Ask(q)); err != nil {
						errs[i] = err
						return
					}
				}
			}
			results[i] = s.Result()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
		if results[i] == nil || !results[i].State.Terminal() {
			t.Fatalf("session %d did not terminate: %+v", i, results[i])
		}
	}
}
