package session

import (
	"bytes"
	"testing"

	"crowdtopk/internal/dataset"
	"crowdtopk/internal/tpo"
)

// fuzzSeedEnvelope builds a valid mid-query checkpoint envelope for the
// corpus: restored state with accepted answers and pending questions is the
// richest decode path.
func fuzzSeedEnvelope(tb testing.TB) []byte {
	ds, err := dataset.Generate(dataset.Spec{N: 5, Width: 2.2, Seed: 9})
	if err != nil {
		tb.Fatal(err)
	}
	s, err := New(Config{Dists: ds, K: 2, Budget: 6, Seed: 4})
	if err != nil {
		tb.Fatal(err)
	}
	qs, _, err := s.NextQuestions(2)
	if err != nil {
		tb.Fatal(err)
	}
	if len(qs) > 0 {
		if err := s.SubmitAnswer(tpo.Answer{Q: qs[0], Yes: true}); err != nil {
			tb.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := s.Checkpoint(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzCheckpointDecode throws arbitrary bytes at both checkpoint decoders:
// PeekCheckpoint (the boot scan's shallow metadata read) and Restore (the
// full hydration path, digest check and tree rebuild included). Checkpoints
// cross trust boundaries — the HTTP restore endpoint accepts client-supplied
// envelopes, and a disk can hand back anything — so neither decoder may
// panic, and whatever Restore accepts must be internally consistent enough
// to serve questions.
func FuzzCheckpointDecode(f *testing.F) {
	valid := fuzzSeedEnvelope(f)
	f.Add([]byte{})
	f.Add([]byte("{}"))
	f.Add([]byte(`{"version":1}`))
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	tampered := append([]byte(nil), valid...)
	if i := bytes.Index(tampered, []byte(`"digest"`)); i >= 0 && i+20 < len(tampered) {
		tampered[i+15] ^= 0x01
	}
	f.Add(tampered)

	f.Fuzz(func(t *testing.T, data []byte) {
		// The shallow peek must never panic, whatever the bytes.
		_, _ = PeekCheckpoint(data)

		s, err := Restore(bytes.NewReader(data), nil)
		if err != nil {
			return
		}
		// Restore accepted the envelope: the session must actually work.
		st := s.Status()
		if st.Asked < 0 || st.Asked > st.Budget {
			t.Fatalf("restored inconsistent status %+v", st)
		}
		if _, _, err := s.NextQuestions(1); err != nil && !s.State().Terminal() {
			t.Fatalf("restored session cannot serve questions: %v", err)
		}
	})
}
