package session

import (
	"math"
	"math/rand"
	"testing"

	"crowdtopk/internal/engine"
	"crowdtopk/internal/selection"
	"crowdtopk/internal/tpo"
	"crowdtopk/internal/uncertainty"
)

// These tests pin that the session's live-engine path stays in lockstep with
// the raw engine transitions at every step — not just in the final result —
// under the updates that stress the in-place arena: noisy reweighting
// (including answers against the current evidence) and trusted prunes with
// absorbed contradictions.

// TestNoisyLockstepEngineVsSession drives a noisy-reliability T1-on session
// with seeded random answers while mirroring every transition through
// engine.ApplyAnswer on a twin tree with a stateless selection context. The
// session (live arena, reweighted in place) and the mirror (fresh engine per
// step) must ask the same question at every step and end in the same belief.
func TestNoisyLockstepEngineVsSession(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		ds := testDists(t, 6, 40+seed)
		const k, budget = 3, 10
		const rel = 0.85
		s, err := New(Config{Dists: ds, K: k, Budget: budget, Algorithm: engine.AlgT1On, Measure: "H", Reliability: rel, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		mirror, err := tpo.Build(ds, k, tpo.BuildOptions{})
		if err != nil {
			t.Fatal(err)
		}
		m := uncertainty.Entropy{}
		rng := rand.New(rand.NewSource(seed))
		for step := 0; ; step++ {
			qs, _, err := s.NextQuestions(1)
			if err != nil {
				t.Fatal(err)
			}
			if len(qs) == 0 {
				if !s.State().Terminal() {
					t.Fatalf("seed %d: no questions in non-terminal state %s", seed, s.State())
				}
				break
			}
			wantQ, ok, err := (selection.T1On{}).NextQuestion(mirror.LeafSet(), budget, &selection.Context{Tree: mirror, Measure: m})
			if err != nil {
				t.Fatal(err)
			}
			if !ok || qs[0] != wantQ {
				t.Fatalf("seed %d step %d: session asks %v, engine path asks %v (ok=%v)", seed, step, qs[0], wantQ, ok)
			}
			// Random side: roughly a third of the answers go against the
			// currently heavier branch, so the Bayesian update re-raises
			// down-weighted leaves on the session's tombstone-free reweights.
			a := tpo.Answer{Q: qs[0], Yes: rng.Intn(3) != 0}
			if err := s.SubmitAnswer(a); err != nil {
				t.Fatal(err)
			}
			if _, err := engine.ApplyAnswer(mirror, a, rel); err != nil {
				t.Fatal(err)
			}
			if step > 3*budget {
				t.Fatalf("seed %d: session did not terminate", seed)
			}
		}
		got := s.Result()
		ls := mirror.LeafSet()
		if got.Orderings != ls.Len() {
			t.Fatalf("seed %d: session holds %d orderings, mirror %d", seed, got.Orderings, ls.Len())
		}
		if want := m.Value(ls); math.Abs(got.Uncertainty-want) > 1e-12 {
			t.Fatalf("seed %d: uncertainty %v, mirror %v", seed, got.Uncertainty, want)
		}
		wantRank := uncertainty.Representative(s.measure, ls)
		if len(got.Ranking) != len(wantRank) {
			t.Fatalf("seed %d: ranking %v, mirror %v", seed, got.Ranking, wantRank)
		}
		for i := range wantRank {
			if got.Ranking[i] != wantRank[i] {
				t.Fatalf("seed %d: ranking %v, mirror %v", seed, got.Ranking, wantRank)
			}
		}
	}
}

// TestTrustedContradictionLockstep stresses absorbed contradictions on a
// tombstoned arena: an offline TB-off batch is committed up front, random
// trusted answers prune as they land, and later questions in the batch can
// contradict every remaining ordering. The session must absorb exactly the
// contradictions the engine transition reports and keep its belief identical
// to the mirrored tree.
func TestTrustedContradictionLockstep(t *testing.T) {
	sawContradiction := false
	for seed := int64(0); seed < 6; seed++ {
		ds := testDists(t, 6, 60+seed)
		const k, budget = 3, 8
		s, err := New(Config{Dists: ds, K: k, Budget: budget, Algorithm: engine.AlgTBOff, Measure: "H", Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		mirror, err := tpo.Build(ds, k, tpo.BuildOptions{})
		if err != nil {
			t.Fatal(err)
		}
		qs, _, err := s.NextQuestions(0)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		contra := 0
		for _, q := range qs {
			a := tpo.Answer{Q: q, Yes: rng.Intn(2) == 0}
			if err := s.SubmitAnswer(a); err != nil {
				t.Fatal(err)
			}
			contradicted, err := engine.ApplyAnswer(mirror, a, 1)
			if err != nil {
				t.Fatal(err)
			}
			if contradicted {
				contra++
			}
			if got, want := s.Orderings(), mirror.NumLeaves(); got != want {
				t.Fatalf("seed %d after %v: session holds %d orderings, mirror %d", seed, a, got, want)
			}
		}
		if st := s.Status(); st.Contradictions != contra {
			t.Fatalf("seed %d: session absorbed %d contradictions, mirror %d", seed, st.Contradictions, contra)
		}
		sawContradiction = sawContradiction || contra > 0
		got := s.Result()
		ls := mirror.LeafSet()
		m := uncertainty.Entropy{}
		if got.Orderings != ls.Len() || math.Abs(got.Uncertainty-m.Value(ls)) > 1e-12 {
			t.Fatalf("seed %d: result (%d, %v) diverged from mirror (%d, %v)",
				seed, got.Orderings, got.Uncertainty, ls.Len(), m.Value(ls))
		}
	}
	if !sawContradiction {
		t.Fatal("no seed produced an absorbed contradiction; widen the seed range")
	}
}
