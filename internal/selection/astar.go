package selection

import (
	"container/heap"
	"fmt"

	"crowdtopk/internal/tpo"
)

// AStarOff is the best-first-search offline algorithm (§III.A): it explores
// the space of question subsets with A*, guided by the admissible heuristic
// f(S) = E[U(S)] − (B − |S|)·maxDrop, where maxDrop is the measure's bound
// on the expected-uncertainty reduction a single binary question can achieve
// (1 bit for the entropy measures).
//
// Theorem 3.2: A*-off is offline-optimal. That guarantee holds for measures
// with a positive MaxDropPerQuestion whose expected value is monotone under
// conditioning (U_H, U_Hw). For U_ORA/U_MPO the heuristic degenerates to 0
// and the search is exhaustive best-first — still correct on small inputs
// but without the pruning guarantee.
type AStarOff struct{}

// Name implements Offline.
func (AStarOff) Name() string { return "A*-off" }

// searchState is a node of the A* subset search. Questions are stored as
// indices into the canonically sorted Q_K; children only append indices
// greater than the last, so every subset is generated exactly once.
type searchState struct {
	picks []int   // ascending indices into qk
	eu    float64 // E[U(picks)]
	f     float64 // eu - remaining*maxDrop (admissible lower bound)
}

type stateHeap []*searchState

func (h stateHeap) Len() int            { return len(h) }
func (h stateHeap) Less(i, j int) bool  { return h[i].f < h[j].f }
func (h stateHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *stateHeap) Push(x interface{}) { *h = append(*h, x.(*searchState)) }
func (h *stateHeap) Pop() interface{} {
	old := *h
	n := len(old)
	s := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return s
}

// SelectBatch implements Offline.
func (AStarOff) SelectBatch(ls *tpo.LeafSet, budget int, ctx *Context) ([]tpo.Question, error) {
	if err := validateBudget(budget); err != nil {
		return nil, err
	}
	eng := engineFor(ls, ctx)
	qk := eng.Questions()
	if budget > len(qk) {
		budget = len(qk)
	}
	if budget == 0 {
		return nil, nil
	}
	maxDrop := ctx.Measure.MaxDropPerQuestion()
	if maxDrop < 0 {
		maxDrop = 0
	}
	root := &searchState{eu: ctx.Measure.Value(ls)}
	root.f = lowerBound(root.eu, budget, maxDrop)
	h := &stateHeap{root}
	heap.Init(h)
	expansions := 0
	toQuestions := func(picks []int) []tpo.Question {
		out := make([]tpo.Question, len(picks))
		for i, p := range picks {
			out[i] = qk[p]
		}
		return out
	}
	for h.Len() > 0 {
		s := heap.Pop(h).(*searchState)
		if len(s.picks) == budget {
			return toQuestions(s.picks), nil
		}
		expansions++
		if expansions > ctx.maxExpansions() {
			return nil, fmt.Errorf("%w: %d states popped (budget %d over %d questions)",
				ErrSearchBudget, expansions, budget, len(qk))
		}
		// A complete set reached through zero uncertainty cannot improve:
		// extend directly with the lexicographically smallest remaining
		// questions instead of enumerating equal-value siblings.
		if s.eu <= tieEpsilon {
			picks := s.picks
			next := 0
			if len(picks) > 0 {
				next = picks[len(picks)-1] + 1
			}
			for len(picks) < budget && next < len(qk) {
				picks = append(picks, next)
				next++
			}
			if len(picks) == budget {
				return toQuestions(picks), nil
			}
			continue
		}
		start := 0
		if len(s.picks) > 0 {
			start = s.picks[len(s.picks)-1] + 1
		}
		// Prune states that cannot reach a full budget set.
		for qi := start; qi < len(qk); qi++ {
			if len(qk)-qi < budget-len(s.picks) {
				break
			}
			picks := append(append([]int(nil), s.picks...), qi)
			child := &searchState{picks: picks}
			child.eu = eng.ExpectedResidual(toQuestions(picks))
			child.f = lowerBound(child.eu, budget-len(picks), maxDrop)
			heap.Push(h, child)
		}
	}
	return nil, fmt.Errorf("selection: A*-off found no complete question set (|Q_K|=%d, budget %d)", len(qk), budget)
}

func lowerBound(eu float64, remaining int, maxDrop float64) float64 {
	lb := eu - float64(remaining)*maxDrop
	if lb < 0 {
		return 0
	}
	return lb
}

// AStarOn is the best-first-search online algorithm (§III.B): at each step it
// runs A*-off with the remaining budget on the current (pruned) tree and asks
// the first question of the optimal batch.
type AStarOn struct{}

// Name implements Online.
func (AStarOn) Name() string { return "A*-on" }

// NextQuestion implements Online.
func (AStarOn) NextQuestion(ls *tpo.LeafSet, remaining int, ctx *Context) (tpo.Question, bool, error) {
	if remaining < 1 {
		return tpo.Question{}, false, nil
	}
	batch, err := (AStarOff{}).SelectBatch(ls, remaining, ctx)
	if err != nil {
		return tpo.Question{}, false, err
	}
	if len(batch) == 0 {
		return tpo.Question{}, false, nil
	}
	return batch[0], true, nil
}

// Exhaustive is a reference offline strategy that enumerates every subset of
// Q_K of the requested size and returns the one with minimal expected
// residual uncertainty. It is exponential and exists to verify offline
// optimality of A*-off in tests and benchmarks (E7).
type Exhaustive struct{}

// Name implements Offline.
func (Exhaustive) Name() string { return "exhaustive" }

// SelectBatch implements Offline.
func (Exhaustive) SelectBatch(ls *tpo.LeafSet, budget int, ctx *Context) ([]tpo.Question, error) {
	if err := validateBudget(budget); err != nil {
		return nil, err
	}
	eng := engineFor(ls, ctx)
	qk := eng.Questions()
	if budget > len(qk) {
		budget = len(qk)
	}
	if budget == 0 {
		return nil, nil
	}
	var best []tpo.Question
	bestR := 0.0
	cur := make([]tpo.Question, 0, budget)
	var rec func(start int)
	rec = func(start int) {
		if len(cur) == budget {
			r := eng.ExpectedResidual(cur)
			if best == nil || r < bestR-tieEpsilon {
				best = append([]tpo.Question(nil), cur...)
				bestR = r
			}
			return
		}
		for i := start; i <= len(qk)-(budget-len(cur)); i++ {
			cur = append(cur, qk[i])
			rec(i + 1)
			cur = cur[:len(cur)-1]
		}
	}
	rec(0)
	return best, nil
}

// BatchValue returns the expected residual uncertainty of a batch — a
// convenience for comparing strategies in tests and reports.
func BatchValue(ls *tpo.LeafSet, qs []tpo.Question, ctx *Context) float64 {
	return ExpectedResidual(ls, qs, ctx)
}
