package selection

import (
	"math/rand"
	"testing"

	"crowdtopk/internal/numeric"
	"crowdtopk/internal/tpo"
	"crowdtopk/internal/uncertainty"
)

// referenceResidual is a direct recursive implementation of R_Q used only to
// cross-check the partition-based production code.
func referenceResidual(ls *tpo.LeafSet, qs []tpo.Question, ctx *Context, branchMass float64) float64 {
	if branchMass < ctx.branchEpsilon() || ls.Len() <= 1 {
		return 0
	}
	if len(qs) == 0 {
		return branchMass * ctx.Measure.Value(ls)
	}
	q := qs[0]
	pi := ctx.pairProb(q.I, q.J)
	yes, no := ls.Split(q, pi)
	total := 0.0
	if m := yes.Mass(); m > 0 {
		total += referenceResidual(yes.Normalized(), qs[1:], ctx, branchMass*m)
	}
	if m := no.Mass(); m > 0 {
		total += referenceResidual(no.Normalized(), qs[1:], ctx, branchMass*m)
	}
	return total
}

func TestExpectedResidualMatchesReferenceRecursion(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	for trial := 0; trial < 15; trial++ {
		tree := buildTestTree(t, int64(300+trial), 6, 3)
		ls := tree.LeafSet()
		ctx := ctxFor(tree, uncertainty.Entropy{})
		qk := ls.RelevantQuestions()
		if len(qk) < 3 {
			continue
		}
		// Random subsequence of up to 4 questions.
		n := 1 + rng.Intn(4)
		qs := make([]tpo.Question, 0, n)
		for _, i := range rng.Perm(len(qk))[:min(n, len(qk))] {
			qs = append(qs, qk[i])
		}
		got := ExpectedResidual(ls, qs, ctx)
		want := referenceResidual(ls, qs, ctx, 1)
		if !numeric.AlmostEqual(got, want, 1e-9) {
			t.Fatalf("trial %d: partition residual %g vs reference %g for %v", trial, got, want, qs)
		}
	}
}

func TestSplitCellsEquivalentToPartition(t *testing.T) {
	tree := buildTestTree(t, 60, 6, 3)
	ls := tree.LeafSet()
	ctx := ctxFor(tree, uncertainty.Entropy{})
	qk := ls.RelevantQuestions()
	if len(qk) < 3 {
		t.Skip("not enough questions")
	}
	qs := qk[:3]
	direct := Partition(ls, qs, ctx)
	stepwise := Partition(ls, nil, ctx)
	for _, q := range qs {
		stepwise = SplitCells(stepwise, q, ctx)
	}
	if len(direct) != len(stepwise) {
		t.Fatalf("cell counts differ: %d vs %d", len(direct), len(stepwise))
	}
	for i := range direct {
		if !numeric.AlmostEqual(direct[i].Mass(), stepwise[i].Mass(), 1e-12) {
			t.Fatalf("cell %d mass %g vs %g", i, direct[i].Mass(), stepwise[i].Mass())
		}
	}
}

func TestSplitResidualMatchesExtendedPartition(t *testing.T) {
	tree := buildTestTree(t, 61, 6, 3)
	ls := tree.LeafSet()
	ctx := ctxFor(tree, uncertainty.MPO{})
	qk := ls.RelevantQuestions()
	if len(qk) < 4 {
		t.Skip("not enough questions")
	}
	prefix := qk[:2]
	cells := Partition(ls, prefix, ctx)
	for _, q := range qk[2:4] {
		fast := splitResidual(cells, q, ctx)
		slow := ExpectedResidual(ls, append(append([]tpo.Question(nil), prefix...), q), ctx)
		if !numeric.AlmostEqual(fast, slow, 1e-9) {
			t.Fatalf("splitResidual %g vs full recursion %g for %v", fast, slow, q)
		}
	}
}

func TestPartitionMassConservation(t *testing.T) {
	// Total mass across active cells plus resolved/negligible mass must
	// not exceed 1, and with epsilon 0-ish it must be within float error
	// of 1 minus the resolved mass.
	tree := buildTestTree(t, 62, 6, 3)
	ls := tree.LeafSet()
	ctx := ctxFor(tree, uncertainty.Entropy{})
	ctx.BranchEpsilon = 1e-15
	qk := ls.RelevantQuestions()
	if len(qk) < 3 {
		t.Skip("not enough questions")
	}
	cells := Partition(ls, qk[:3], ctx)
	active := 0.0
	for _, c := range cells {
		active += c.Mass()
	}
	if active > 1+1e-9 {
		t.Fatalf("active mass %g exceeds 1", active)
	}
}

func TestPartitionDropsResolvedCells(t *testing.T) {
	tree := buildTestTree(t, 63, 5, 3)
	ls := tree.LeafSet()
	ctx := ctxFor(tree, uncertainty.Entropy{})
	qk := ls.RelevantQuestions()
	cells := Partition(ls, qk, ctx) // split on every relevant question
	for _, c := range cells {
		if c.Len() <= 1 {
			t.Fatalf("resolved cell retained (len %d)", c.Len())
		}
	}
}
