package selection

import (
	"math"
	"math/rand"
	"testing"

	"crowdtopk/internal/rank"
	"crowdtopk/internal/tpo"
	"crowdtopk/internal/uncertainty"
)

// The flat residual engine must reproduce the slice-of-LeafSet reference
// semantics exactly (within tieEpsilon): these tests drive both paths over
// seeded random trees for every measure and every strategy.

// refExpectedResidual is the pre-engine implementation: partition the leaf
// set with the exported LeafSet helpers and fold measure values of
// normalized copies.
func refExpectedResidual(ls *tpo.LeafSet, qs []tpo.Question, ctx *Context) float64 {
	return residualOfCells(Partition(ls, qs, ctx), ctx)
}

func allMeasures() []uncertainty.Measure {
	return []uncertainty.Measure{
		uncertainty.Entropy{},
		uncertainty.NewWeightedEntropy(0),
		uncertainty.MPO{Penalty: rank.DefaultPenalty},
		uncertainty.ORA{Penalty: rank.DefaultPenalty, Footrule: true},
	}
}

func TestFlatEngineMatchesReferenceResiduals(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		tree := buildTestTree(t, 400+seed, 6, 3)
		ls := tree.LeafSet()
		rng := rand.New(rand.NewSource(seed))
		for _, m := range allMeasures() {
			ctx := ctxFor(tree, m)
			e := NewResidualEngine(ls, ctx)
			if e.arena == nil {
				t.Fatal("tree leaf set did not take the flat path")
			}
			qs, rs := e.QuestionResiduals()
			want := ls.RelevantQuestions()
			if len(qs) != len(want) {
				t.Fatalf("%s: engine Q_K has %d questions, reference %d", m.Name(), len(qs), len(want))
			}
			for i := range qs {
				if qs[i] != want[i] {
					t.Fatalf("%s: question %d = %v, reference %v", m.Name(), i, qs[i], want[i])
				}
				ref := refExpectedResidual(ls, qs[i:i+1], ctx)
				if math.Abs(rs[i]-ref) > tieEpsilon {
					t.Fatalf("%s: R_%v = %.17g, reference %.17g (Δ=%g)",
						m.Name(), qs[i], rs[i], ref, rs[i]-ref)
				}
			}
			// Random multi-question subsets exercise partition/splitCells.
			for trial := 0; trial < 5 && len(qs) >= 2; trial++ {
				n := 2 + rng.Intn(3)
				sub := make([]tpo.Question, 0, n)
				for _, i := range rng.Perm(len(qs))[:min(n, len(qs))] {
					sub = append(sub, qs[i])
				}
				got := e.ExpectedResidual(sub)
				ref := refExpectedResidual(ls, sub, ctx)
				if math.Abs(got-ref) > tieEpsilon {
					t.Fatalf("%s: R_%v = %.17g, reference %.17g", m.Name(), sub, got, ref)
				}
			}
		}
	}
}

// TestParallelResidualsMatchSequential pins that the parallel sweep returns
// bit-identical residuals for any worker count (run under -race in CI).
func TestParallelResidualsMatchSequential(t *testing.T) {
	for _, m := range allMeasures() {
		tree := buildTestTree(t, 77, 7, 3)
		ls := tree.LeafSet()
		seqCtx := ctxFor(tree, m)
		qsSeq, rsSeq := QuestionResiduals(ls, seqCtx)
		parCtx := ctxFor(tree, m)
		parCtx.Workers = 8
		qsPar, rsPar := QuestionResiduals(ls, parCtx)
		if len(qsSeq) != len(qsPar) {
			t.Fatalf("%s: question counts differ: %d vs %d", m.Name(), len(qsSeq), len(qsPar))
		}
		for i := range qsSeq {
			if qsSeq[i] != qsPar[i] || rsSeq[i] != rsPar[i] {
				t.Fatalf("%s: %v/%g sequential vs %v/%g parallel at %d",
					m.Name(), qsSeq[i], rsSeq[i], qsPar[i], rsPar[i], i)
			}
		}
	}
}

// referenceTBOff / referenceCOff / referenceT1On are the pre-engine strategy
// implementations, expressed with the legacy slice-of-LeafSet helpers.
func referenceTBOff(ls *tpo.LeafSet, budget int, ctx *Context) []tpo.Question {
	qs := ls.RelevantQuestions()
	rs := make([]float64, len(qs))
	for i, q := range qs {
		rs[i] = refExpectedResidual(ls, []tpo.Question{q}, ctx)
	}
	idx := make([]int, len(qs))
	for i := range idx {
		idx[i] = i
	}
	sortByResidual(idx, qs, rs)
	if budget < len(idx) {
		idx = idx[:budget]
	}
	out := make([]tpo.Question, len(idx))
	for i, j := range idx {
		out[i] = qs[j]
	}
	return out
}

func referenceCOff(ls *tpo.LeafSet, budget int, ctx *Context) []tpo.Question {
	out, err := selectConditionalSlow(ls, budget, ctx)
	if err != nil {
		panic(err)
	}
	return out
}

func referenceT1On(ls *tpo.LeafSet, ctx *Context) (tpo.Question, bool) {
	qs := ls.RelevantQuestions()
	if len(qs) == 0 {
		return tpo.Question{}, false
	}
	rs := make([]float64, len(qs))
	for i, q := range qs {
		rs[i] = refExpectedResidual(ls, []tpo.Question{q}, ctx)
	}
	q, _ := bestQuestion(qs, rs)
	return q, true
}

func sameBatch(a, b []tpo.Question) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestStrategiesMatchReferenceBatches drives every residual-driven strategy
// against its reference implementation on seeded random trees: the flat
// engine must select byte-identical batches.
func TestStrategiesMatchReferenceBatches(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		tree := buildTestTree(t, 500+seed, 6, 3)
		ls := tree.LeafSet()
		for _, m := range []uncertainty.Measure{uncertainty.Entropy{}, uncertainty.MPO{Penalty: rank.DefaultPenalty}} {
			ctx := ctxFor(tree, m)
			pctx := ctxFor(tree, m)
			pctx.Workers = 4 // batches must not depend on sweep parallelism

			tb, err := (TBOff{}).SelectBatch(ls, 4, pctx)
			if err != nil {
				t.Fatal(err)
			}
			if want := referenceTBOff(ls, 4, ctx); !sameBatch(tb, want) {
				t.Fatalf("seed %d %s: TB-off %v, reference %v", seed, m.Name(), tb, want)
			}

			co, err := (COff{}).SelectBatch(ls, 4, pctx)
			if err != nil {
				t.Fatal(err)
			}
			if want := referenceCOff(ls, 4, ctx); !sameBatch(co, want) {
				t.Fatalf("seed %d %s: C-off %v, reference %v", seed, m.Name(), co, want)
			}

			q, ok, err := (T1On{}).NextQuestion(ls, 1, pctx)
			if err != nil {
				t.Fatal(err)
			}
			refQ, refOK := referenceT1On(ls, ctx)
			if ok != refOK || q != refQ {
				t.Fatalf("seed %d %s: T1-on %v/%v, reference %v/%v", seed, m.Name(), q, ok, refQ, refOK)
			}
		}
	}
}

// TestAStarAndExhaustiveAgreeOnEngine re-pins Theorem 3.2 through the new
// engine: A*-off and exhaustive search find batches of equal expected
// residual entropy, and A*-on returns the head of the A*-off batch.
func TestAStarAndExhaustiveAgreeOnEngine(t *testing.T) {
	tree := buildTestTree(t, 31, 5, 3)
	ls := tree.LeafSet()
	ctx := ctxFor(tree, uncertainty.Entropy{})
	for _, budget := range []int{1, 2, 3} {
		a, err := (AStarOff{}).SelectBatch(ls, budget, ctx)
		if err != nil {
			t.Fatal(err)
		}
		ex, err := (Exhaustive{}).SelectBatch(ls, budget, ctx)
		if err != nil {
			t.Fatal(err)
		}
		ra, re := BatchValue(ls, a, ctx), BatchValue(ls, ex, ctx)
		if math.Abs(ra-re) > 1e-9 {
			t.Fatalf("B=%d: A* residual %g vs exhaustive %g", budget, ra, re)
		}
		q, ok, err := (AStarOn{}).NextQuestion(ls, budget, ctx)
		if err != nil || !ok {
			t.Fatalf("A*-on: %v %v", ok, err)
		}
		if q != a[0] {
			t.Fatalf("A*-on head %v != A*-off head %v", q, a[0])
		}
	}
}

// TestFlatEngineRaggedFallback pins the fallback: a hand-built leaf set with
// uneven path lengths cannot take the arena layout but must still produce
// reference residuals.
func TestFlatEngineRaggedFallback(t *testing.T) {
	ls := &tpo.LeafSet{
		K: 3,
		Paths: []rank.Ordering{
			{0, 1, 2},
			{1, 0}, // ragged on purpose
			{2, 1, 0},
		},
		W: []float64{0.5, 0.3, 0.2},
	}
	ctx := &Context{
		Measure:  uncertainty.Entropy{},
		PairProb: func(i, j int) float64 { return 0.5 },
	}
	e := NewResidualEngine(ls, ctx)
	if e.arena != nil {
		t.Fatal("ragged leaf set unexpectedly took the flat path")
	}
	q := tpo.NewQuestion(0, 2)
	got := e.ExpectedResidual([]tpo.Question{q})
	want := refExpectedResidual(ls, []tpo.Question{q}, ctx)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("fallback residual %g, reference %g", got, want)
	}
	qs, rs := e.QuestionResiduals()
	for i, rq := range qs {
		if ref := refExpectedResidual(ls, qs[i:i+1], ctx); math.Abs(rs[i]-ref) > 1e-12 {
			t.Fatalf("fallback R_%v = %g, reference %g", rq, rs[i], ref)
		}
	}
}

// TestFillDistRowMatchesTopKDist pins the specialized Kendall row builder
// against the generic distancer: for the default (dyadic) penalty every
// distance is a sum of exactly representable terms, so the floats must be
// identical.
func TestFillDistRowMatchesTopKDist(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		tree := buildTestTree(t, 600+seed, 7, 3)
		ls := tree.LeafSet()
		ctx := ctxFor(tree, uncertainty.MPO{})
		e := NewResidualEngine(ls, ctx)
		if e.arena == nil {
			t.Fatal("no arena")
		}
		rng := rand.New(rand.NewSource(seed))
		for trial := 0; trial < 4; trial++ {
			ref := int32(rng.Intn(e.arena.n))
			row := e.arena.DistRow(ref, rank.DefaultPenalty)
			d := rank.NewTopKDist(e.arena.paths[ref], rank.DefaultPenalty)
			for i, p := range e.arena.paths {
				if want := d.Normalized(p); row[i] != want {
					t.Fatalf("seed %d ref %d leaf %d: fast row %.17g, TopKDist %.17g",
						seed, ref, i, row[i], want)
				}
			}
		}
	}
}

// TestArenaPrefixGroups pins the group invariant the U_Hw evaluation relies
// on: equal group id at level l iff equal path prefix of length l.
func TestArenaPrefixGroups(t *testing.T) {
	tree := buildTestTree(t, 9, 6, 3)
	ls := tree.LeafSet()
	a, ok := NewArena(ls)
	if !ok {
		t.Fatal("no arena")
	}
	a.groupsOnce.Do(a.buildGroups)
	for l := 1; l <= a.k; l++ {
		seen := map[int32]string{}
		distinct := map[string]bool{}
		for i := 0; i < a.n; i++ {
			prefix := ls.Paths[i][:l].String()
			distinct[prefix] = true
			g := a.groups[(l-1)*a.n+i]
			if prev, ok := seen[g]; ok {
				if prev != prefix {
					t.Fatalf("level %d: group %d holds prefixes %s and %s", l, g, prev, prefix)
				}
			} else {
				seen[g] = prefix
			}
		}
		if len(seen) != int(a.groupN[l-1]) || len(distinct) != len(seen) {
			t.Fatalf("level %d: %d group ids, groupN=%d, %d distinct prefixes",
				l, len(seen), a.groupN[l-1], len(distinct))
		}
	}
}

// TestDensePiMatrixMatchesTree pins that the dense matrix the engine builds
// returns exactly the tree's π for both orientations.
func TestDensePiMatrixMatchesTree(t *testing.T) {
	tree := buildTestTree(t, 13, 5, 3)
	ls := tree.LeafSet()
	ctx := ctxFor(tree, uncertainty.Entropy{})
	NewResidualEngine(ls, ctx) // builds ctx.pim
	if ctx.pim == nil {
		t.Fatal("engine did not build the dense π matrix")
	}
	tuples := ls.Tuples()
	for _, i := range tuples {
		for _, j := range tuples {
			got, ok := ctx.pim.lookup(i, j)
			if !ok {
				t.Fatalf("pair (%d,%d) missing from dense matrix", i, j)
			}
			if want := tree.ProbGreater(i, j); got != want {
				t.Fatalf("π(%d,%d) = %.17g dense, %.17g tree", i, j, got, want)
			}
		}
	}
}
