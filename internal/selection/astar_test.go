package selection

import (
	"errors"
	"testing"

	"crowdtopk/internal/numeric"
	"crowdtopk/internal/uncertainty"
)

// TestAStarOffMatchesExhaustive verifies Theorem 3.2 (offline optimality of
// A*-off) against full enumeration on small instances, for both entropy
// measures where the heuristic is admissible.
func TestAStarOffMatchesExhaustive(t *testing.T) {
	for _, mName := range []string{"H", "Hw"} {
		m, err := uncertainty.New(mName)
		if err != nil {
			t.Fatal(err)
		}
		for seed := int64(40); seed < 45; seed++ {
			tree := buildTestTree(t, seed, 5, 3)
			ls := tree.LeafSet()
			ctx := ctxFor(tree, m)
			for _, budget := range []int{1, 2, 3} {
				ex, err := (Exhaustive{}).SelectBatch(ls, budget, ctx)
				if err != nil {
					t.Fatal(err)
				}
				as, err := (AStarOff{}).SelectBatch(ls, budget, ctx)
				if err != nil {
					t.Fatal(err)
				}
				vEx := BatchValue(ls, ex, ctx)
				vAs := BatchValue(ls, as, ctx)
				if !numeric.AlmostEqual(vEx, vAs, 1e-9) {
					t.Fatalf("measure %s seed %d budget %d: A* value %g != exhaustive %g (batches %v vs %v)",
						mName, seed, budget, vAs, vEx, as, ex)
				}
			}
		}
	}
}

func TestAStarOffBeatsOrMatchesGreedyStrategies(t *testing.T) {
	tree := buildTestTree(t, 50, 5, 3)
	ls := tree.LeafSet()
	ctx := ctxFor(tree, uncertainty.Entropy{})
	const budget = 3
	batchA, err := (AStarOff{}).SelectBatch(ls, budget, ctx)
	if err != nil {
		t.Fatal(err)
	}
	vA := BatchValue(ls, batchA, ctx)
	for _, s := range []Offline{TBOff{}, COff{}} {
		batch, err := s.SelectBatch(ls, budget, ctx)
		if err != nil {
			t.Fatal(err)
		}
		if v := BatchValue(ls, batch, ctx); v < vA-1e-9 {
			t.Fatalf("%s batch value %g beats optimal A* %g", s.Name(), v, vA)
		}
	}
}

func TestAStarOffBudgetLargerThanQK(t *testing.T) {
	tree := buildTestTree(t, 51, 4, 2)
	ls := tree.LeafSet()
	ctx := ctxFor(tree, uncertainty.Entropy{})
	qk := ls.RelevantQuestions()
	batch, err := (AStarOff{}).SelectBatch(ls, len(qk)+5, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(qk) {
		t.Fatalf("batch %d, want clamped to |Q_K| = %d", len(batch), len(qk))
	}
}

func TestAStarOffExpansionBudget(t *testing.T) {
	tree := buildTestTree(t, 52, 6, 3)
	ls := tree.LeafSet()
	ctx := ctxFor(tree, uncertainty.Entropy{})
	ctx.MaxExpansions = 2
	_, err := (AStarOff{}).SelectBatch(ls, 3, ctx)
	if !errors.Is(err, ErrSearchBudget) {
		t.Fatalf("err = %v, want ErrSearchBudget", err)
	}
}

func TestAStarOnReturnsFirstOfOptimalBatch(t *testing.T) {
	tree := buildTestTree(t, 53, 5, 3)
	ls := tree.LeafSet()
	ctx := ctxFor(tree, uncertainty.Entropy{})
	q, ok, err := (AStarOn{}).NextQuestion(ls, 2, ctx)
	if err != nil || !ok {
		t.Fatalf("NextQuestion: %v, ok=%v", err, ok)
	}
	batch, err := (AStarOff{}).SelectBatch(ls, 2, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if q != batch[0] {
		t.Fatalf("A*-on question %v != first of A*-off batch %v", q, batch)
	}
}

func TestAStarOnZeroRemaining(t *testing.T) {
	tree := buildTestTree(t, 54, 4, 2)
	ls := tree.LeafSet()
	ctx := ctxFor(tree, uncertainty.Entropy{})
	_, ok, err := (AStarOn{}).NextQuestion(ls, 0, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("A*-on with zero budget must not return a question")
	}
}

func TestExhaustiveFindsResolvingPairOverGreedyTrap(t *testing.T) {
	// Regression-style sanity: on any instance, the exhaustive batch of
	// size 2 is at least as good as the greedy C-off batch of size 2.
	tree := buildTestTree(t, 55, 5, 3)
	ls := tree.LeafSet()
	ctx := ctxFor(tree, uncertainty.Entropy{})
	ex, err := (Exhaustive{}).SelectBatch(ls, 2, ctx)
	if err != nil {
		t.Fatal(err)
	}
	co, err := (COff{}).SelectBatch(ls, 2, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if BatchValue(ls, ex, ctx) > BatchValue(ls, co, ctx)+1e-9 {
		t.Fatal("exhaustive worse than greedy — enumeration is broken")
	}
}

func TestAStarWithDistanceMeasureStillReturnsBatch(t *testing.T) {
	// With ORA/MPO the heuristic degenerates to zero; the search must still
	// return a complete batch on small instances.
	tree := buildTestTree(t, 56, 4, 2)
	ls := tree.LeafSet()
	ctx := ctxFor(tree, uncertainty.MPO{})
	batch, err := (AStarOff{}).SelectBatch(ls, 2, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) == 0 {
		t.Fatal("empty batch")
	}
}
