package selection

import (
	"math/rand"

	"crowdtopk/internal/tpo"
)

// Random is the §IV baseline that picks budget questions uniformly at random
// among all tuple comparisons present in the tree — including irrelevant
// ones whose answer cannot prune anything.
type Random struct {
	rng *rand.Rand
}

// NewRandom returns the Random baseline driven by rng.
func NewRandom(rng *rand.Rand) *Random { return &Random{rng: rng} }

// Name implements Offline.
func (*Random) Name() string { return "random" }

// SelectBatch implements Offline. When the budget covers every pair the
// historical full-shuffle draw sequence is preserved; below that, the
// questions are drawn by a sparse partial Fisher–Yates that samples without
// replacement in O(budget) space — the old code materialized and shuffled
// all O(n²) pairs even for a budget of one.
func (r *Random) SelectBatch(ls *tpo.LeafSet, budget int, _ *Context) ([]tpo.Question, error) {
	if err := validateBudget(budget); err != nil {
		return nil, err
	}
	tuples := ls.Tuples()
	total := len(tuples) * (len(tuples) - 1) / 2
	if budget >= total {
		all := make([]tpo.Question, 0, total)
		for a := 0; a < len(tuples); a++ {
			for b := a + 1; b < len(tuples); b++ {
				all = append(all, tpo.NewQuestion(tuples[a], tuples[b]))
			}
		}
		r.rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
		return all, nil
	}
	// Partial Fisher–Yates over the virtual pair sequence: swaps that a full
	// shuffle would have applied are tracked sparsely, so only the first
	// `budget` positions are ever materialized.
	swaps := make(map[int]int, 2*budget)
	at := func(i int) int {
		if v, ok := swaps[i]; ok {
			return v
		}
		return i
	}
	out := make([]tpo.Question, 0, budget)
	for i := 0; i < budget; i++ {
		j := i + r.rng.Intn(total-i)
		vi, vj := at(i), at(j)
		swaps[i], swaps[j] = vj, vi
		out = append(out, pairAt(tuples, vj))
	}
	return out, nil
}

// pairAt decodes the p-th pair of the row-major upper-triangle enumeration
// of tuple pairs — the same order the full materialization produces.
func pairAt(tuples []int, p int) tpo.Question {
	for a := 0; ; a++ {
		row := len(tuples) - a - 1
		if p < row {
			return tpo.NewQuestion(tuples[a], tuples[a+1+p])
		}
		p -= row
	}
}

// Naive is the §IV baseline that avoids irrelevant comparisons: budget
// questions drawn uniformly without replacement from the relevant set Q_K.
type Naive struct {
	rng *rand.Rand
}

// NewNaive returns the Naive baseline driven by rng.
func NewNaive(rng *rand.Rand) *Naive { return &Naive{rng: rng} }

// Name implements Offline.
func (*Naive) Name() string { return "naive" }

// SelectBatch implements Offline.
func (n *Naive) SelectBatch(ls *tpo.LeafSet, budget int, _ *Context) ([]tpo.Question, error) {
	if err := validateBudget(budget); err != nil {
		return nil, err
	}
	qk := ls.RelevantQuestions()
	n.rng.Shuffle(len(qk), func(i, j int) { qk[i], qk[j] = qk[j], qk[i] })
	if budget < len(qk) {
		qk = qk[:budget]
	}
	return qk, nil
}

// TBOff is the Top-B offline algorithm (§III.A): it scores every relevant
// question independently by its expected residual uncertainty R_q and
// returns the B questions with the largest expected uncertainty reduction
// (equivalently, the lowest R_q).
type TBOff struct{}

// Name implements Offline.
func (TBOff) Name() string { return "TB-off" }

// SelectBatch implements Offline.
func (TBOff) SelectBatch(ls *tpo.LeafSet, budget int, ctx *Context) ([]tpo.Question, error) {
	if err := validateBudget(budget); err != nil {
		return nil, err
	}
	qs, rs := QuestionResiduals(ls, ctx)
	idx := make([]int, len(qs))
	for i := range idx {
		idx[i] = i
	}
	// Sort ascending by residual, lexicographic on ties for determinism.
	sortByResidual(idx, qs, rs)
	if budget < len(idx) {
		idx = idx[:budget]
	}
	out := make([]tpo.Question, len(idx))
	for i, j := range idx {
		out[i] = qs[j]
	}
	return out, nil
}

func sortByResidual(idx []int, qs []tpo.Question, rs []float64) {
	lessIdx := func(a, b int) bool {
		if rs[a] < rs[b]-tieEpsilon {
			return true
		}
		if rs[b] < rs[a]-tieEpsilon {
			return false
		}
		return questionLess(qs[a], qs[b])
	}
	// Insertion sort: len(Q_K) is at most a few hundred here and the
	// comparator is cheap; avoids an extra closure-allocating dependency.
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && lessIdx(idx[j], idx[j-1]); j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
}

// COff is the Conditional offline algorithm (§III.A): questions are chosen
// one at a time, each minimizing the expected residual uncertainty
// R_{q1..qi,q}(T_K) conditioned on the previously selected (but still
// unanswered) questions.
type COff struct{}

// Name implements Offline.
func (COff) Name() string { return "C-off" }

// SelectBatch implements Offline. The partition of the leaf set induced by
// the questions chosen so far is maintained incrementally over the flat
// residual engine, so evaluating the (i+1)-th candidate costs one indexed
// split of the current cells instead of a fresh recursion over all i+1
// questions; the candidate loop fans across the context's sweep workers.
func (COff) SelectBatch(ls *tpo.LeafSet, budget int, ctx *Context) ([]tpo.Question, error) {
	if err := validateBudget(budget); err != nil {
		return nil, err
	}
	e := engineFor(ls, ctx)
	if e.arena == nil {
		return selectConditionalSlow(ls, budget, ctx)
	}
	qk := e.Questions()
	cells := e.partition(nil)
	var chosen []tpo.Question
	chosenSet := make(map[tpo.Question]bool)
	for len(chosen) < budget && len(chosen) < len(qk) && len(cells) > 0 {
		rs := e.splitResiduals(cells, qk, func(q tpo.Question) bool { return chosenSet[q] })
		bestQ := tpo.Question{I: -1}
		bestR := 0.0
		for i, q := range qk {
			if chosenSet[q] {
				continue
			}
			if r := rs[i]; bestQ.I == -1 || r < bestR-tieEpsilon {
				bestQ, bestR = q, r
			}
		}
		if bestQ.I == -1 {
			break
		}
		chosen = append(chosen, bestQ)
		chosenSet[bestQ] = true
		cells = e.splitCells(cells, bestQ)
	}
	return chosen, nil
}

// selectConditionalSlow is C-off over the slice-of-LeafSet adapter, used for
// ragged (hand-built) leaf sets the arena cannot represent.
func selectConditionalSlow(ls *tpo.LeafSet, budget int, ctx *Context) ([]tpo.Question, error) {
	qk := ls.RelevantQuestions()
	sortQuestions(qk)
	cells := Partition(ls, nil, ctx)
	var chosen []tpo.Question
	chosenSet := make(map[tpo.Question]bool)
	for len(chosen) < budget && len(chosen) < len(qk) && len(cells) > 0 {
		bestQ := tpo.Question{I: -1}
		bestR := 0.0
		for _, q := range qk {
			if chosenSet[q] {
				continue
			}
			r := splitResidual(cells, q, ctx)
			if bestQ.I == -1 || r < bestR-tieEpsilon {
				bestQ, bestR = q, r
			}
		}
		if bestQ.I == -1 {
			break
		}
		chosen = append(chosen, bestQ)
		chosenSet[bestQ] = true
		cells = SplitCells(cells, bestQ, ctx)
	}
	return chosen, nil
}

// T1On is the Top-1 online algorithm (§III.B): at every step it asks the
// single question minimizing the expected residual uncertainty of the
// current (already pruned) tree, terminating early once a unique ordering
// remains.
type T1On struct{}

// Name implements Online.
func (T1On) Name() string { return "T1-on" }

// NextQuestion implements Online.
func (T1On) NextQuestion(ls *tpo.LeafSet, _ int, ctx *Context) (tpo.Question, bool, error) {
	qs, rs := QuestionResiduals(ls, ctx)
	if len(qs) == 0 {
		return tpo.Question{}, false, nil
	}
	q, _ := bestQuestion(qs, rs)
	return q, true, nil
}
