package selection

import (
	"context"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"crowdtopk/internal/numeric"
	"crowdtopk/internal/obs"
	"crowdtopk/internal/rank"
	"crowdtopk/internal/tpo"
	"crowdtopk/internal/uncertainty"
)

// This file makes the flat engine a live structure that survives across
// selection rounds. Applying an accepted answer becomes a dynamic update —
// pruned leaves are tombstoned (weight zeroed in place), survivors are
// reweighted in place, and the per-question per-class aggregates of the
// ConsistencyIndex are patched — instead of re-snapshotting the leaf set and
// rebuilding the O(leaves·pairs) classification from scratch on the next
// round. Steady-state cost per accepted answer is O(removed·pairs + pairs),
// proportional to what the answer actually changed.
//
// Tombstone representation: a dead leaf keeps its slot (paths, class bytes,
// dense ids, prefix groups and distance rows stay valid) and carries w == 0.
// Every consumer of the arena already skips or is immune to zero weights —
// Kahan summation over interleaved zeros is an exact no-op, splitCell drops
// them, the entropy aggregates exclude them, the MPO dot and argmax cannot
// select them — so a tombstoned arena is observationally identical to the
// compacted snapshot a fresh engine would build. Once tombstones exceed a
// quarter of the slots the engine compacts (lazily, inside the same update)
// by filtering the per-leaf arrays through the alive-slot mapping; see
// compactLocked.

const (
	// liveCompactFrac: compact when dead slots exceed 1/liveCompactFrac of
	// the arena. Keeps the dead-slot scan overhead bounded at a constant
	// factor while amortizing rebuilds over many updates.
	liveCompactFrac = 4
	// liveResyncEvery forces a full aggregate recomputation after this many
	// consecutive delta patches, bounding the accumulated floating-point
	// drift of the scaled entropy numerators far below tieEpsilon.
	liveResyncEvery = 32
)

// mApplyPhase attributes answer-application wall time to its three phases:
// the in-place delta patch, the periodic full aggregate resync, and the lazy
// tombstone compaction. Together with the selection.patch/resync/compact
// spans it answers "where did the apply go" per request and in aggregate.
var mApplyPhase = obs.Default.HistogramVec("crowdtopk_selection_apply_seconds",
	"Live-engine answer application time by phase (patch, resync, compact), in seconds.",
	obs.DefBuckets, "phase")

// Package-wide live-engine counters, exported through LiveEngineStats for the
// serving layer's /v1/stats. Atomics, like internal/pcache's counters.
var (
	liveReuses        atomic.Int64
	liveRebuilds      atomic.Int64
	livePatches       atomic.Int64
	liveResyncs       atomic.Int64
	liveCompactions   atomic.Int64
	liveInvalidations atomic.Int64
)

// LiveCounters is a point-in-time snapshot of the process-wide live-engine
// activity: how often a selection round reused the held engine vs. built one
// from scratch, how many answers were applied as in-place patches, and how
// often the maintenance paths (aggregate resync, tombstone compaction,
// invalidation) ran.
type LiveCounters struct {
	Reuses        int64 `json:"reuses"`
	Rebuilds      int64 `json:"rebuilds"`
	Patches       int64 `json:"patches"`
	Resyncs       int64 `json:"resyncs"`
	Compactions   int64 `json:"compactions"`
	Invalidations int64 `json:"invalidations"`
}

// LiveEngineStats returns the process-wide counters.
func LiveEngineStats() LiveCounters {
	return LiveCounters{
		Reuses:        liveReuses.Load(),
		Rebuilds:      liveRebuilds.Load(),
		Patches:       livePatches.Load(),
		Resyncs:       liveResyncs.Load(),
		Compactions:   liveCompactions.Load(),
		Invalidations: liveInvalidations.Load(),
	}
}

// LiveEngine holds a ResidualEngine alive across selection rounds and keeps
// it in sync with the tree through answer application. A session owns one
// LiveEngine for its lifetime and passes it to strategies via Context.Live;
// strategies then obtain their engine through engineFor, which reuses the
// held engine when its (tombstoned) arena still matches the leaf set and
// rebuilds otherwise.
//
// Concurrency: the engine's own sweeps parallelize internally, but rounds
// and answer applications must not overlap — the session's lock already
// serializes them. The LiveEngine mutex protects the held-engine pointer and
// bookkeeping against concurrent Invalidate/stats calls, not concurrent use
// of the returned engine.
type LiveEngine struct {
	mu          sync.Mutex
	eng         *ResidualEngine
	dead        int // tombstoned slots in the held arena
	sinceResync int // delta patches since the last full aggregate recompute

	snap *tpo.LeafSet // reusable snapshot buffer for Sync

	// applyUpdate scratch, reused across answers.
	deadIdx []int32
	deadW   []float64
	survIdx []int32
	survOld []float64
	survNew []float64
	dirty   []dirtyClass

	// Weight-order cache for the tie guard. rank holds the alive arena slots
	// sorted non-strictly by weight; a trusted renormalization divides every
	// survivor by one common total — a monotone map — so the order survives
	// across answers and each update only filters out the pruned slots
	// instead of re-sorting. Anything else that touches weights (noisy
	// reweight, compaction, attach) invalidates it.
	rank      []int32
	rankValid bool
	posOf     []int32   // arena slot -> survivor position this answer, -1 otherwise
	merged    []float64 // new weights where a strict order became a tie
}

// dirtyClass marks a (question, class) pair whose argmax leaf was removed and
// must be rescanned.
type dirtyClass struct {
	q  int32
	cl byte
}

// NewLiveEngine returns an empty live engine; the first selection round
// populates it.
func NewLiveEngine() *LiveEngine {
	return &LiveEngine{}
}

// Invalidate discards the held engine (and the snapshot buffer). Call it
// whenever the tree changes shape in a way updates do not model — depth
// extension — or to release the arena's memory on terminal sessions. Safe on
// a nil receiver.
func (l *LiveEngine) Invalidate() {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.drop()
	l.snap = nil
	l.mu.Unlock()
}

// drop discards the held engine and resets bookkeeping. Caller holds l.mu.
func (l *LiveEngine) drop() {
	if l.eng != nil {
		liveInvalidations.Add(1)
	}
	l.eng = nil
	l.dead = 0
	l.sinceResync = 0
	l.rankValid = false
}

// Sync brings the held engine in line with the tree after an accepted
// answer. pruneOnly reports that the answer was applied with full trust
// (reliability 1): survivors were only renormalized, never individually
// reweighted, which enables the cheap aggregate delta patch; noisy updates
// change every weight and take the full aggregate recompute. When no engine
// is held, Sync is a no-op — the next round builds (and attaches) one.
// Safe on a nil receiver.
func (l *LiveEngine) Sync(ctx context.Context, t *tpo.Tree, pruneOnly bool) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.eng == nil {
		return
	}
	l.snap = t.LeafSetInto(l.snap)
	l.applyLocked(ctx, l.snap, pruneOnly)
}

// Apply is Sync for callers that already hold the post-answer leaf set
// (tests and benchmarks). The engine may retain fresh's backing arrays if a
// compaction triggers; callers must treat fresh as consumed.
func (l *LiveEngine) Apply(fresh *tpo.LeafSet, pruneOnly bool) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.eng == nil {
		return
	}
	l.applyLocked(context.Background(), fresh, pruneOnly)
}

// applyLocked diffs the held arena against the post-answer leaf set and
// patches the engine in place. On any structural surprise it drops the
// engine — correctness never depends on the patch succeeding, only speed
// does. Caller holds l.mu.
func (l *LiveEngine) applyLocked(ctx context.Context, fresh *tpo.LeafSet, pruneOnly bool) {
	patchStart := time.Now()
	e := l.eng
	a := e.arena
	if fresh.K != a.k || fresh.Len() == 0 || fresh.Len() > a.n {
		l.drop()
		return
	}
	// Diff pass: alive arena leaves and fresh leaves are both subsequences
	// of the original leaf enumeration with distinct paths, so a single
	// forward walk pairs them unambiguously. An alive leaf missing from
	// fresh was pruned by this answer.
	l.deadIdx, l.deadW = l.deadIdx[:0], l.deadW[:0]
	l.survIdx, l.survOld, l.survNew = l.survIdx[:0], l.survOld[:0], l.survNew[:0]
	j, m := 0, fresh.Len()
	for i := 0; i < a.n; i++ {
		w := a.w[i]
		if w == 0 {
			continue
		}
		if j < m && a.paths[i].Equal(fresh.Paths[j]) {
			if fresh.W[j] <= 0 {
				// A zero-weight tree leaf would leave the arena and the
				// tree permanently out of step; trees drop zero-mass
				// leaves on renormalization, so treat this as structural.
				l.drop()
				return
			}
			l.survIdx = append(l.survIdx, int32(i))
			l.survOld = append(l.survOld, w)
			l.survNew = append(l.survNew, fresh.W[j])
			j++
		} else {
			l.deadIdx = append(l.deadIdx, int32(i))
			l.deadW = append(l.deadW, w)
		}
	}
	if j != m {
		l.drop() // fresh holds a leaf the arena does not: not an update we model
		return
	}

	// Commit the new weights: tombstone the removed leaves, store the
	// survivors' post-renormalization weights verbatim — the arena then
	// holds exactly the floats a fresh snapshot would.
	for _, i := range l.deadIdx {
		a.w[i] = 0
	}
	for p, i := range l.survIdx {
		a.w[i] = l.survNew[p]
	}
	e.rootMass = numeric.Sum(a.w)
	livePatches.Add(1)
	l.dead += len(l.deadIdx)

	// Refresh the aggregates. The delta patch is only sound for trusted
	// prunes (survivor weights all scaled by one common factor) whose
	// renormalization preserved the survivors' weight order — otherwise the
	// cached argmaxes may silently point at the wrong leaf. Everything else
	// takes the full recompute, as does every liveResyncEvery-th patch to
	// cap numeric drift.
	if !pruneOnly {
		// Individually reweighted survivors: the maintained weight order is
		// no longer meaningful.
		l.rankValid = false
	}
	delta := pruneOnly && l.sinceResync < liveResyncEvery-1 && l.orderPreserved()
	if delta {
		delta = e.patchStats(l.deadIdx, l.deadW, l.survDelta(), l.merged, &l.dirty)
	}
	if delta {
		l.sinceResync++
		mApplyPhase.With("patch").Observe(time.Since(patchStart).Seconds())
		_, psp := obs.StartSpan(ctx, "selection.patch")
		psp.SetAttr("dead", len(l.deadIdx))
		psp.End()
	} else {
		// Attribute the diff+commit walk to the resync it culminated in: the
		// full recompute dominates, and splitting sub-millisecond prep out of
		// it would double the span count for no diagnostic value.
		_, rsp := obs.StartSpan(ctx, "selection.resync")
		rsp.SetAttr("dead", len(l.deadIdx))
		e.index.recomputeStats()
		rsp.End()
		liveResyncs.Add(1)
		mApplyPhase.With("resync").Observe(time.Since(patchStart).Seconds())
		l.sinceResync = 0
	}

	// Lazy compaction: once tombstones dominate, squeeze the dead slots out.
	// Everything the engine holds is either per-leaf (filtered through the
	// slot renumbering) or per-question and invariant under it (the question
	// universe, π, classification bytes, distance rows — all functions of
	// the immutable paths), so compaction never re-derives anything; the
	// expensive O(leaves·pairs) classification is paid exactly once per
	// engine lifetime. On a structural surprise, fall back to a fresh build.
	if l.dead*liveCompactFrac > a.n {
		compactStart := time.Now()
		_, csp := obs.StartSpan(ctx, "selection.compact")
		csp.SetAttr("dead", l.dead)
		csp.SetAttr("slots", a.n)
		defer func() {
			csp.End()
			mApplyPhase.With("compact").Observe(time.Since(compactStart).Seconds())
		}()
		if !l.compactLocked(fresh) {
			ne := NewResidualEngine(fresh, e.ctx)
			if ne.arena == nil {
				l.drop()
				return
			}
			l.eng = ne
			l.dead, l.sinceResync = 0, 0
			l.rankValid = false
		}
		// Either way the engine may now retain the snapshot's backing
		// arrays (ne via NewArena aliasing, compactLocked via ls), so
		// detach the reusable buffer — the next Sync allocates a new one.
		if fresh == l.snap {
			l.snap = nil
		}
		liveCompactions.Add(1)
	}
}

// compactLocked rewrites the held engine without its tombstoned slots: every
// per-leaf array (weights, flat tuples, dense ids, paths, classification
// columns, cached distance rows, the maintained weight order) is filtered
// through the alive-slot mapping, and the per-question state — universe, π,
// aggregates — carries over untouched, with only the cached argmax slots
// renumbered. The compacted engine differs from a from-scratch build in one
// invisible way: its question universe (and tuple set) may be a superset of
// what the shrunken leaf set spans; every consumer works off the relevant
// list and per-class aggregates, which are exact either way. sinceResync is
// deliberately preserved — unlike a fresh build, filtering does not resync
// the drift-bounded aggregate floats, so the periodic recompute schedule
// keeps its place. Caller holds l.mu. Returns false (engine untouched) when
// the alive slots do not pair with fresh.
func (l *LiveEngine) compactLocked(fresh *tpo.LeafSet) bool {
	e := l.eng
	a := e.arena
	ci := e.index
	if cap(l.posOf) < a.n {
		l.posOf = make([]int32, a.n)
	}
	newSlot, m := l.posOf[:a.n], 0
	for i := 0; i < a.n; i++ {
		if a.w[i] == 0 {
			newSlot[i] = -1
			continue
		}
		newSlot[i] = int32(m)
		m++
	}
	if m != fresh.Len() || m == 0 {
		return false
	}
	k := a.k
	na := &Arena{
		k:      k,
		n:      m,
		flat:   make([]int, m*k),
		w:      make([]float64, m),
		paths:  make([]rank.Ordering, m),
		tuples: a.tuples,
		tidx:   a.tidx,
		dense:  make([]int32, m*k),
	}
	for i, s := range newSlot {
		if s < 0 {
			continue
		}
		copy(na.flat[int(s)*k:(int(s)+1)*k], a.flat[i*k:(i+1)*k])
		copy(na.dense[int(s)*k:(int(s)+1)*k], a.dense[i*k:(i+1)*k])
		na.w[s] = a.w[i]
	}
	for i := 0; i < m; i++ {
		na.paths[i] = rank.Ordering(na.flat[i*k : (i+1)*k : (i+1)*k])
	}
	na.migrateRowsFrom(a, newSlot)

	nq := len(ci.all)
	class := make([]byte, nq*m)
	for q := 0; q < nq; q++ {
		src := ci.class[q*a.n : (q+1)*a.n]
		dst := class[q*m : (q+1)*m]
		for i, s := range newSlot {
			if s >= 0 {
				dst[s] = src[i]
			}
		}
	}
	ci.arena = na
	ci.class = class
	for q := range ci.stats {
		st := &ci.stats[q]
		for cl := 0; cl < 3; cl++ {
			if at := st.maxAt[cl]; at >= 0 {
				st.maxAt[cl] = newSlot[at]
			}
		}
	}
	if l.rankValid {
		out := l.rank[:0]
		for _, idx := range l.rank {
			if s := newSlot[idx]; s >= 0 {
				out = append(out, s)
			}
		}
		l.rank = out
	}
	l.eng = &ResidualEngine{ctx: e.ctx, ls: fresh, arena: na, index: ci, rootMass: numeric.Sum(na.w)}
	l.dead = 0
	return true
}

// survDelta returns the common renormalization scale of a trusted prune:
// (new survivor mass)/(old survivor mass). Exact arithmetic is not required
// — the scaled aggregates are consumed through tieEpsilon-insensitive
// comparisons and periodically resynced.
func (l *LiveEngine) survDelta() float64 {
	var on, nn numeric.KahanSum
	for p := range l.survIdx {
		on.Add(l.survOld[p])
		nn.Add(l.survNew[p])
	}
	o := on.Sum()
	if o == 0 {
		return 1
	}
	return nn.Sum() / o
}

// orderPreserved reports whether the survivors' old and new weights induce
// the same order. Renormalization divides every survivor by one common
// total, which cannot invert a strict order, but rounding can merge two
// near-equal weights (leaf masses are products of the same π factors in
// different orders, so ulp-distance pairs are common) into an exact tie —
// and the cached argmaxes break ties by position, so a merge at a class
// maximum would make them diverge from what a fresh build computes. Merges
// are therefore not a failure: the merged values are collected into
// l.merged and patchStats rescans exactly the classes whose maximum sits at
// one. Only a genuine order change (tie split, inversion) — impossible
// under a common-scale renormalization and hence evidence the update is not
// one — reports false, sending the caller to the full recompute.
//
// The weight order itself is read from l.rank, (re)sorted only when a
// non-renormalizing event invalidated it; in steady state the check is a
// single filtering walk.
func (l *LiveEngine) orderPreserved() bool {
	l.merged = l.merged[:0]
	n := len(l.survIdx)
	a := l.eng.arena
	// posOf maps arena slots to this answer's survivor positions.
	if cap(l.posOf) < a.n {
		l.posOf = make([]int32, a.n)
	}
	pos := l.posOf[:a.n]
	for i := range pos {
		pos[i] = -1
	}
	for p, idx := range l.survIdx {
		pos[idx] = int32(p)
	}
	if !l.rankValid {
		if cap(l.rank) < n {
			l.rank = make([]int32, n)
		}
		l.rank = append(l.rank[:0], l.survIdx...)
		sort.Slice(l.rank, func(x, y int) bool {
			return l.survOld[pos[l.rank[x]]] < l.survOld[pos[l.rank[y]]]
		})
		l.rankValid = true
	}
	// Walk the maintained order, dropping slots pruned by this answer, and
	// compare each adjacent surviving pair. A merge between non-adjacent
	// survivors implies a merge on some adjacent pair at the same value, so
	// adjacent checks see every merged value.
	out, prev, ok := l.rank[:0], int32(-1), true
	for _, idx := range l.rank {
		p := pos[idx]
		if p < 0 {
			continue
		}
		if prev >= 0 {
			po, co := l.survOld[prev], l.survOld[p]
			pn, cn := l.survNew[prev], l.survNew[p]
			switch {
			case po > co || (po == co && pn != cn) || (po < co && pn > cn):
				// Inversion or tie split: not a common-scale renormalization
				// (or the maintained order went stale) — fail safe.
				ok = false
			case po < co && pn == cn:
				if k := len(l.merged); k == 0 || l.merged[k-1] != cn {
					l.merged = append(l.merged, cn)
				}
			}
		}
		out = append(out, idx)
		prev = p
	}
	l.rank = out
	if !ok {
		l.rankValid = false
		return false
	}
	return true
}

// patchStats applies a trusted prune to the per-question class aggregates as
// a delta: subtract each removed leaf's contribution, rescale the survivors'
// sums by the common renormalization factor S, and resync the cached maxima
// against the committed weights. Classes whose argmax leaf was removed — or
// whose maximum sits at a weight where renormalization merged a strict order
// into a tie (merged), so position tie-breaking may now pick an earlier leaf
// — are rescanned. Returns false (aggregates half-updated are never
// observed — the caller then recomputes from scratch) when the dirty set is
// large enough that rescans would approach the recompute cost anyway.
func (e *ResidualEngine) patchStats(deadIdx []int32, deadW []float64, scale float64, merged []float64, dirtyBuf *[]dirtyClass) bool {
	ci := e.index
	a := e.arena
	n, nq := a.n, len(ci.all)
	dirty := (*dirtyBuf)[:0]
	defer func() { *dirtyBuf = dirty }()
	for p, idx := range deadIdx {
		w := deadW[p]
		var wl float64
		if w > 0 {
			wl = w * math.Log2(w)
		}
		for q := 0; q < nq; q++ {
			cl := ci.class[q*n+int(idx)]
			st := &ci.stats[q]
			st.cnt[cl]--
			if st.cnt[cl] == 0 {
				// Exact emptiness: subtraction would leave rounding
				// residue and a phantom relevant class.
				st.w[cl], st.wlog[cl] = 0, 0
			} else {
				st.w[cl] -= w
				st.wlog[cl] -= wl
			}
			if st.maxAt[cl] == idx {
				dirty = append(dirty, dirtyClass{int32(q), cl})
			}
		}
	}
	lgS := math.Log2(scale)
	for q := 0; q < nq; q++ {
		st := &ci.stats[q]
		for cl := 0; cl < 3; cl++ {
			if st.cnt[cl] == 0 {
				continue
			}
			// Survivor weights went w -> S·w, so Σw·log2 w becomes
			// S·Σw·log2 w + S·log2(S)·Σw (over the pre-scale sums).
			st.wlog[cl] = scale*st.wlog[cl] + scale*lgS*st.w[cl]
			st.w[cl] *= scale
		}
	}
	// The committed arena weights are the exact post-renormalization
	// floats, so resync every surviving argmax's cached value from them
	// (the scaled copy above is only drift-bounded, not exact).
	for q := range ci.stats {
		st := &ci.stats[q]
		for cl := 0; cl < 3; cl++ {
			at := st.maxAt[cl]
			if at < 0 {
				continue
			}
			st.maxW[cl] = a.w[at]
			// Merged values are few (usually zero); a linear probe beats any
			// set structure at this size.
			for _, v := range merged {
				if st.maxW[cl] == v {
					dirty = append(dirty, dirtyClass{int32(q), byte(cl)})
					break
				}
			}
		}
	}
	if len(dirty) > nq {
		return false
	}
	for _, d := range dirty {
		st := &ci.stats[d.q]
		row := ci.class[int(d.q)*n:][:n]
		at, best := int32(-1), 0.0
		for i := 0; i < n; i++ {
			if row[i] != d.cl {
				continue
			}
			if w := a.w[i]; w > best { // tombstones (w == 0) can never win
				at, best = int32(i), w
			}
		}
		st.maxAt[d.cl], st.maxW[d.cl] = at, best
	}
	// Q_K may only shrink under pruning; the class counts are exact, so
	// rebuild the relevant list from them (cnt > 0 ⟺ w > 0 here: trusted
	// prunes never zero a survivor's weight).
	ci.relevant = ci.relevant[:0]
	for q := 0; q < nq; q++ {
		if ci.stats[q].cnt[classConsistent] > 0 && ci.stats[q].cnt[classInconsistent] > 0 {
			ci.relevant = append(ci.relevant, int32(q))
		}
	}
	return true
}

// recomputeStats rebuilds the per-question aggregates and the relevant list
// from the arena's current weights, leaving stats byte-identical to what
// NewConsistencyIndex would produce on the equivalent compacted snapshot:
// same accumulation order (leaf-outer, question-inner), same guards, and
// tombstoned leaves contribute exactly nothing. The classification rows and
// π are untouched — classification depends only on paths, which updates
// never change.
func (ci *ConsistencyIndex) recomputeStats() {
	a := ci.arena
	nq := len(ci.all)
	for q := range ci.stats {
		ci.stats[q] = classStats{maxAt: [3]int32{-1, -1, -1}}
	}
	for leaf := 0; leaf < a.n; leaf++ {
		w := a.w[leaf]
		if w == 0 {
			continue
		}
		var wl float64
		if w > 0 {
			wl = w * math.Log2(w)
		}
		for q := 0; q < nq; q++ {
			cl := ci.class[q*a.n+leaf]
			st := &ci.stats[q]
			st.cnt[cl]++
			st.w[cl] += w
			st.wlog[cl] += wl
			if w > st.maxW[cl] {
				st.maxW[cl] = w
				st.maxAt[cl] = int32(leaf)
			}
		}
	}
	ci.relevant = ci.relevant[:0]
	for q := 0; q < nq; q++ {
		if ci.stats[q].w[classConsistent] > 0 && ci.stats[q].w[classInconsistent] > 0 {
			ci.relevant = append(ci.relevant, int32(q))
		}
	}
}

// tombstoneSafe reports whether a measure's evaluation is invariant under
// zero-weight leaves in its view. The entropy family and MPO skip or are
// arithmetically immune to them; ORA is excluded because its aggregation
// input enumerates every view leaf — tombstone paths would enter the
// Kemeny/footrule candidate construction and could change the aggregate.
func tombstoneSafe(m uncertainty.Measure) bool {
	switch m.(type) {
	case uncertainty.Entropy, uncertainty.WeightedEntropy, uncertainty.MPO:
		return true
	}
	return false
}

// matches reports whether the engine's (tombstoned) arena represents exactly
// this leaf set: same depth, and the alive arena leaves pair 1:1, in order,
// with bitwise-equal weights and equal paths. Sessions snapshot the same
// tree the updates tracked, so steady state is a cheap O(alive) confirm.
func (e *ResidualEngine) matches(ls *tpo.LeafSet) bool {
	a := e.arena
	if a == nil || ls.K != a.k {
		return false
	}
	j, m := 0, ls.Len()
	for i := 0; i < a.n; i++ {
		w := a.w[i]
		if w == 0 {
			continue
		}
		if j >= m || ls.W[j] != w || !a.paths[i].Equal(ls.Paths[j]) {
			return false
		}
		j++
	}
	return j == m
}

// engineFor returns the residual engine strategies should evaluate ls
// through: the context's live engine when one is attached and current, a
// fresh build otherwise. The fresh build is attached to the live engine so
// subsequent rounds (after in-place updates) can reuse it.
func engineFor(ls *tpo.LeafSet, ctx *Context) *ResidualEngine {
	if ctx.Live == nil {
		return NewResidualEngine(ls, ctx)
	}
	return ctx.Live.engineFor(ls, ctx)
}

func (l *LiveEngine) engineFor(ls *tpo.LeafSet, ctx *Context) *ResidualEngine {
	l.mu.Lock()
	defer l.mu.Unlock()
	if ctx.Measure == nil || !tombstoneSafe(ctx.Measure) {
		l.drop()
		return NewResidualEngine(ls, ctx)
	}
	if e := l.eng; e != nil && e.matches(ls) {
		// Rebind to the caller's context/leaf set: knobs (workers, pool,
		// epsilons) may differ per round. The dense π matrix carries over —
		// it covers a superset of the tuples in play.
		if ctx.pim == nil {
			ctx.pim = e.ctx.pim
		}
		e.ctx = ctx
		e.ls = ls
		liveReuses.Add(1)
		return e
	}
	e := NewResidualEngine(ls, ctx)
	liveRebuilds.Add(1)
	if e.arena == nil {
		l.drop()
		return e
	}
	if l.eng != nil {
		liveInvalidations.Add(1)
	}
	l.eng = e
	l.dead, l.sinceResync = 0, 0
	l.rankValid = false
	return e
}
