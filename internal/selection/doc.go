// Package selection implements the paper's question-selection strategies for
// uncertainty reduction (§III): the offline algorithms TB-off, C-off and
// A*-off (offline-optimal), the online algorithms T1-on and A*-on, the
// Random and Naive baselines of §IV, and an exhaustive-search reference used
// to verify offline optimality on small instances.
//
// All strategies evaluate candidate questions through the expected residual
// uncertainty R_Q(T_K): the expectation, over the possible answers to the
// question set Q, of the uncertainty of the tree pruned by those answers.
//
// # Evaluation engine
//
// Strategies evaluate through a ResidualEngine: the leaf set is snapshotted
// into a flat Arena (paths in one backing array, weights in one vector),
// every candidate question's per-leaf classification is precomputed into a
// ConsistencyIndex together with per-class aggregates (mass, count,
// Σ w·log2 w, argmax), and partition cells are index/weight views over the
// shared arena. Single-question residuals are O(1) per question for U_H and
// one fused dot pass for U_MPO.
//
// # Live engine
//
// Building that index is O(leaves·pairs) — too much to repeat per answer
// when serving. A LiveEngine keeps one ResidualEngine alive across selection
// rounds and applies accepted answers as in-place updates instead:
//
//   - Pruned leaves are tombstoned: the slot stays (paths, classification
//     bytes, prefix groups, distance rows remain valid) and the weight is
//     zeroed. Every consumer already treats zero-weight leaves as absent,
//     and compensated summation over interleaved zeros is an exact no-op,
//     so a tombstoned arena evaluates identically to a fresh compacted one.
//   - Survivor weights are overwritten with the tree's post-renormalization
//     values verbatim.
//   - For trusted (reliability-1) answers the per-class aggregates are
//     patched: removed leaves' contributions are subtracted, the survivor
//     sums are rescaled by the common renormalization factor, and cached
//     argmaxes are resynced (rescanning only classes whose argmax died).
//     Noisy answers reweight every leaf individually, so they take a full
//     aggregate recompute — still far cheaper than re-snapshotting and
//     re-classifying.
//
// Aggregate deltas are resynced in full every 32 patches (and whenever an
// update turns out not to be the common-scale renormalization the patch
// assumes), keeping float drift orders of magnitude below the engine's 1e-12
// selection tie epsilon. Renormalization rounding can merge near-equal
// survivor weights into exact ties; the affected class maxima are rescanned
// in place rather than forcing a resync. Once tombstones exceed a quarter of
// the arena the engine lazily compacts by filtering every per-leaf array
// through the alive-slot mapping — the question universe, π, classification
// bytes and cached distance rows all survive the renumbering, so compaction
// re-derives nothing. Either way, selection output is byte-identical
// to a from-scratch engine — the cross-check suite in live_test.go pins this
// for all strategies across interleaved answer sequences.
//
// Sessions own a LiveEngine and hand it to strategies via Context.Live;
// answer application keeps it in sync through engine.ApplyAnswerLive. ORA
// measures bypass the live path (their rank-aggregation input enumerates
// every view leaf, so tombstones are not transparent to them). Process-wide
// activity counters are exported through LiveEngineStats for the serving
// layer's /v1/stats.
package selection
