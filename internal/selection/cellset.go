package selection

import (
	"math"
	"sync"

	"crowdtopk/internal/numeric"
	"crowdtopk/internal/rank"
	"crowdtopk/internal/tpo"
	"crowdtopk/internal/uncertainty"
)

// This file is the flat, index-based residual engine. The expected-residual
// sweep R_Q(T_K) drives every selection strategy, and the slice-of-LeafSet
// formulation re-materialized whole leaf sets — cloning paths, reallocating
// weight vectors, and normalizing a copy per measure evaluation — for every
// candidate question × partition cell. Here the leaf set is snapshotted once
// into an Arena (paths flattened into one backing array, weights in one
// vector), every candidate question's leaf classification is precomputed
// into a ConsistencyIndex, and partition cells are index/weight views over
// the shared arena, so splitting is a branch-light linear pass with zero
// path copies.

// Arena is a cache-friendly snapshot of a leaf set. Partition cells
// reference leaves by index into it. Paths, dense ids, prefix groups and
// distance rows are immutable for the arena's lifetime; the weight vector is
// not — the live engine (live.go) tombstones pruned leaves by zeroing w[i]
// and overwrites survivor weights in place, which every consumer treats as
// equivalent to the leaf being absent (zero weights are skipped by splits,
// aggregates, argmaxes, and are exact no-ops under compensated summation).
type Arena struct {
	k, n  int
	flat  []int           // n·k tuple ids; leaf i is flat[i*k : (i+1)*k]
	w     []float64       // leaf weights as snapshotted (normalized for tree roots)
	paths []rank.Ordering // zero-copy slice headers into flat

	tuples []int         // sorted distinct tuple ids
	tidx   map[int]int32 // tuple id -> index into tuples
	dense  []int32       // n·k: flat with tuple ids replaced by dense indices

	// groups[(l-1)*n+i] is leaf i's dense prefix-group id at level l: two
	// leaves share it iff their paths agree on the first l entries. groupN
	// counts distinct groups per level. U_Hw aggregates with these instead
	// of hashing path prefixes. Built lazily (guarded by groupsOnce) since
	// only prefix-marginal measures consult them.
	groupsOnce sync.Once
	groups     []int32
	groupN     []int32

	// Per-reference normalized-distance rows for U_MPO (see DistRow),
	// shared by every cell and worker of a sweep.
	rowMu      sync.Mutex
	rows       map[int32][]float64
	rowPenalty float64
	rowPosR    []int32 // scratch: ref positions per tuple (under rowMu)
	rowPr      []int32 // scratch: ref positions per probe slot (under rowMu)
}

// NewArena snapshots ls. ok is false when the leaf paths are not uniformly
// of length ls.K — the flat layout requires the rectangular shape every tree
// leaf set has — in which case callers fall back to the slice-based path.
func NewArena(ls *tpo.LeafSet) (*Arena, bool) {
	n, k := ls.Len(), ls.K
	for _, p := range ls.Paths {
		if len(p) != k {
			return nil, false
		}
	}
	a := &Arena{k: k, n: n}
	if flat, ok := ls.Flat(); ok {
		a.flat = flat // tree snapshots are already contiguous
	} else {
		a.flat = make([]int, n*k)
		for i, p := range ls.Paths {
			copy(a.flat[i*k:], p)
		}
	}
	a.w = append([]float64(nil), ls.W...)
	a.paths = make([]rank.Ordering, n)
	for i := 0; i < n; i++ {
		a.paths[i] = rank.Ordering(a.flat[i*k : (i+1)*k : (i+1)*k])
	}
	a.tuples = tupleSet(a.flat, ls)
	a.tidx = make(map[int]int32, len(a.tuples))
	for i, id := range a.tuples {
		a.tidx[id] = int32(i)
	}
	a.dense = make([]int32, n*k)
	for i, id := range a.flat {
		a.dense[i] = a.tidx[id]
	}
	return a, true
}

// tupleSet returns the sorted distinct ids in flat — rank.Union semantics
// with a dense-marks fast path for the small non-negative ids real datasets
// use (indices into the distribution slice).
func tupleSet(flat []int, ls *tpo.LeafSet) []int {
	maxID := -1
	for _, id := range flat {
		if id < 0 || id > len(flat)+1024 {
			return ls.Tuples() // unusual ids: the map-based path
		}
		if id > maxID {
			maxID = id
		}
	}
	seen := make([]bool, maxID+1)
	count := 0
	for _, id := range flat {
		if !seen[id] {
			seen[id] = true
			count++
		}
	}
	out := make([]int, 0, count)
	for id, ok := range seen {
		if ok {
			out = append(out, id)
		}
	}
	return out
}

// Len returns the number of leaves in the arena.
func (a *Arena) Len() int { return a.n }

// Tuples returns the sorted distinct tuple ids (shared; do not mutate).
func (a *Arena) Tuples() []int { return a.tuples }

// buildGroups assigns the per-level prefix-group ids: a leaf's level-l id is
// determined by its level-(l-1) id and the tuple at position l-1, so one map
// pass per level suffices.
func (a *Arena) buildGroups() {
	a.groups = make([]int32, a.k*a.n)
	a.groupN = make([]int32, a.k)
	type prefix struct {
		parent int32
		tuple  int32
	}
	ids := make(map[prefix]int32, a.n)
	for l := 0; l < a.k; l++ {
		clear(ids)
		var next int32
		row := a.groups[l*a.n : (l+1)*a.n]
		for i := 0; i < a.n; i++ {
			var parent int32
			if l > 0 {
				parent = a.groups[(l-1)*a.n+i]
			}
			key := prefix{parent, a.dense[i*a.k+l]}
			id, ok := ids[key]
			if !ok {
				id = next
				next++
				ids[key] = id
			}
			row[i] = id
		}
		a.groupN[l] = next
	}
}

// Classification byte values, mirroring tpo.Consistency so index rows can be
// compared against tpo.PathConsistency directly.
const (
	classConsistent   = byte(tpo.Consistent)
	classInconsistent = byte(tpo.Inconsistent)
	classUndetermined = byte(tpo.Undetermined)
)

// classStats are one question's per-class aggregates over the arena's
// nonzero-weight leaves. They make the single-question (root) residual sweep
// O(1) per question for U_H — branch mass, leaf count and entropy numerator
// Σ w·log2 w all decompose over {Consistent, Inconsistent, Undetermined} —
// and O(1)+one dot pass for U_MPO (branch argmax from the per-class maxima).
type classStats struct {
	cnt   [3]int32   // leaves with w ≠ 0
	w     [3]float64 // Σ w
	wlog  [3]float64 // Σ w·log2(w) over w > 0
	maxW  [3]float64 // max w
	maxAt [3]int32   // first leaf attaining maxW (-1 when the class is empty)
}

// ConsistencyIndex precomputes, for every candidate question over the
// arena's tuples, the classification of every leaf against the question's
// "yes" answer (packed byte rows), the question's pairwise probability π,
// and the per-class aggregates above, in a single O(leaves·(K + pairs))
// pass. The relevant subset Q_K — the questions both of whose answers can
// prune something — falls out of the same pass.
type ConsistencyIndex struct {
	arena    *Arena
	all      []tpo.Question // every tuple pair, lexicographic
	class    []byte         // len(all)·n classification rows
	pi       []float64      // π per candidate question
	stats    []classStats   // per-question aggregates
	relevant []int32        // indices into all forming Q_K
	qrow     map[tpo.Question]int32
}

// NewConsistencyIndex builds the index, resolving each pair's π exactly once
// through ctx (which consults the dense per-tree matrix, not the pairwise
// cache, in the hot path).
func NewConsistencyIndex(a *Arena, ctx *Context) *ConsistencyIndex {
	tn := len(a.tuples)
	nq := tn * (tn - 1) / 2
	ci := &ConsistencyIndex{
		arena: a,
		all:   make([]tpo.Question, 0, nq),
		pi:    make([]float64, 0, nq),
		class: make([]byte, nq*a.n),
		qrow:  make(map[tpo.Question]int32, nq),
	}
	pim := ctx.piMatrix(a.tuples)
	for i := 0; i < tn; i++ {
		for j := i + 1; j < tn; j++ {
			ci.qrow[tpo.NewQuestion(a.tuples[i], a.tuples[j])] = int32(len(ci.all))
			ci.all = append(ci.all, tpo.NewQuestion(a.tuples[i], a.tuples[j]))
			ci.pi = append(ci.pi, pim.at(i, j))
		}
	}
	ci.stats = make([]classStats, nq)
	for q := range ci.stats {
		ci.stats[q].maxAt = [3]int32{-1, -1, -1}
	}
	pos := make([]int32, tn)
	for i := range pos {
		pos[i] = -1
	}
	for leaf := 0; leaf < a.n; leaf++ {
		base := leaf * a.k
		for d := 0; d < a.k; d++ {
			pos[a.dense[base+d]] = int32(d)
		}
		w := a.w[leaf]
		var wl float64
		if w > 0 {
			wl = w * math.Log2(w)
		}
		q := 0
		for i := 0; i < tn; i++ {
			pi := pos[i]
			for j := i + 1; j < tn; j++ {
				pj := pos[j]
				var cl byte
				switch {
				case pi >= 0 && pj >= 0:
					if pi < pj {
						cl = classConsistent
					} else {
						cl = classInconsistent
					}
				case pi >= 0:
					cl = classConsistent
				case pj >= 0:
					cl = classInconsistent
				default:
					cl = classUndetermined
				}
				ci.class[q*a.n+leaf] = cl
				if w != 0 {
					st := &ci.stats[q]
					st.cnt[cl]++
					st.w[cl] += w
					st.wlog[cl] += wl
					if w > st.maxW[cl] {
						st.maxW[cl] = w
						st.maxAt[cl] = int32(leaf)
					}
				}
				q++
			}
		}
		for d := 0; d < a.k; d++ {
			pos[a.dense[base+d]] = -1
		}
	}
	for q := 0; q < nq; q++ {
		// Relevant iff both answers carry mass. The per-class sums are plain
		// (uncompensated) accumulations of non-negative values, so positivity
		// is exact.
		if ci.stats[q].w[classConsistent] > 0 && ci.stats[q].w[classInconsistent] > 0 {
			ci.relevant = append(ci.relevant, int32(q))
		}
	}
	return ci
}

// Relevant returns Q_K in lexicographic order — identical to
// (*tpo.LeafSet).RelevantQuestions on the snapshotted set.
func (ci *ConsistencyIndex) Relevant() []tpo.Question {
	out := make([]tpo.Question, len(ci.relevant))
	for i, q := range ci.relevant {
		out[i] = ci.all[q]
	}
	return out
}

// Row returns the classification row and π for a question the index covers.
func (ci *ConsistencyIndex) Row(q tpo.Question) (row []byte, pi float64, ok bool) {
	r, ok := ci.qrow[q]
	if !ok {
		return nil, 0, false
	}
	return ci.class[int(r)*ci.arena.n:][:ci.arena.n], ci.pi[r], true
}

// cell is one partition cell: a subsequence of arena leaves with reweighted
// (unnormalized) weights. mass is the Kahan-summed total — the probability
// of the answer combination that produced the cell.
type cell struct {
	idx  []int32
	w    []float64
	mass float64
}

// rootCell returns the whole-arena cell.
func (a *Arena) rootCell() *cell {
	idx := make([]int32, a.n)
	for i := range idx {
		idx[i] = int32(i)
	}
	w := append([]float64(nil), a.w...)
	return &cell{idx: idx, w: w, mass: numeric.Sum(w)}
}

// splitCell partitions c by a classification row, appending into the yes/no
// buffers (reset by the caller). It mirrors (*tpo.LeafSet).Split exactly:
// zero-weight leaves are dropped, undetermined leaves flow into both
// branches weighted by π, and degenerate π values skip a branch.
func splitCell(c *cell, row []byte, pi float64, yi, ni []int32, yw, nw []float64) (yesIdx, noIdx []int32, yesW, noW []float64) {
	for p, leaf := range c.idx {
		w := c.w[p]
		if w == 0 {
			continue
		}
		switch row[leaf] {
		case classConsistent:
			yi = append(yi, leaf)
			yw = append(yw, w)
		case classInconsistent:
			ni = append(ni, leaf)
			nw = append(nw, w)
		default:
			if pi > 0 {
				yi = append(yi, leaf)
				yw = append(yw, w*pi)
			}
			if pi < 1 {
				ni = append(ni, leaf)
				nw = append(nw, w*(1-pi))
			}
		}
	}
	return yi, ni, yw, nw
}

// cellView adapts a cell (or any index/weight pair over an arena) to
// uncertainty.View: weights are normalized on the fly by the cell's inverse
// mass, paths are zero-copy headers into the arena.
type cellView struct {
	a   *Arena
	idx []int32
	w   []float64
	inv float64
}

func (v *cellView) K() int               { return v.a.k }
func (v *cellView) Len() int             { return len(v.idx) }
func (v *cellView) Weight(i int) float64 { return v.w[i] * v.inv }
func (v *cellView) Path(i int) rank.Ordering {
	return v.a.paths[v.idx[i]]
}

// PrefixGroup implements uncertainty.PrefixGrouper. (The sync.Once fast
// path is one atomic load — noise next to the group lookup itself.)
func (v *cellView) PrefixGroup(level, i int) int32 {
	v.a.groupsOnce.Do(v.a.buildGroups)
	return v.a.groups[(level-1)*v.a.n+int(v.idx[i])]
}

// GroupCount implements uncertainty.PrefixGrouper. It is the measure's
// entry point into the grouping (called once per level before any
// PrefixGroup), so it triggers the lazy build.
func (v *cellView) GroupCount(level int) int {
	v.a.groupsOnce.Do(v.a.buildGroups)
	return int(v.a.groupN[level-1])
}

// LeafID implements uncertainty.LeafIdentifier.
func (v *cellView) LeafID(i int) int32 { return v.idx[i] }

// DistRow implements uncertainty.LeafIdentifier via the arena's shared
// row cache.
func (v *cellView) DistRow(ref int32, penalty float64) []float64 {
	return v.a.DistRow(ref, penalty)
}

// DistRow returns the normalized distances of every arena leaf to the
// reference leaf, computed once per reference and shared by all cells and
// workers — residual sweeps re-reference the same few heavy leaves across
// most branches. Safe for concurrent use.
func (a *Arena) DistRow(ref int32, penalty float64) []float64 {
	if penalty == 0 {
		penalty = rank.DefaultPenalty
	}
	a.rowMu.Lock()
	defer a.rowMu.Unlock()
	if a.rows == nil || a.rowPenalty != penalty {
		a.rows = make(map[int32][]float64)
		a.rowPenalty = penalty
	}
	if row, ok := a.rows[ref]; ok {
		return row
	}
	row := make([]float64, a.n)
	a.fillDistRow(row, ref, penalty)
	a.rows[ref] = row
	return row
}

// migrateRowsFrom seeds a compacted arena's distance-row cache from its
// predecessor. Distances depend only on the immutable leaf orderings, and
// fillDistRow computes each leaf's entry independently, so a surviving
// reference's row filtered to surviving slots is float-for-float the row a
// fresh computation would produce. newSlot maps predecessor slots to
// compacted slots, -1 for tombstones; rows whose reference died are dropped.
func (a *Arena) migrateRowsFrom(old *Arena, newSlot []int32) {
	old.rowMu.Lock()
	rows, pen := old.rows, old.rowPenalty
	old.rowMu.Unlock()
	if len(rows) == 0 {
		return
	}
	migrated := make(map[int32][]float64, len(rows))
	for ref, row := range rows {
		nr := newSlot[ref]
		if nr < 0 {
			continue
		}
		out := make([]float64, a.n)
		for i, s := range newSlot {
			if s >= 0 {
				out[s] = row[i]
			}
		}
		migrated[nr] = out
	}
	a.rowMu.Lock()
	if a.rows == nil {
		a.rows, a.rowPenalty = migrated, pen
	}
	a.rowMu.Unlock()
}

// fillDistRow computes the normalized generalized Kendall distance of every
// arena leaf to the ref leaf. It is algebraically identical to
// rank.NewTopKDist(refPath, penalty).Normalized(path) — the distance is a
// sum of exactly-representable unit and half-penalty terms, so both paths
// produce the same floats for the default penalty — but specialized to the
// arena's equal-length dense paths: with s shared tuples between probe o and
// reference r,
//
//	K^(p)(o, r) = M + A + B + (k−s)² + p·(k−s)(k−s−1)
//
// where M counts order-flipped shared pairs, A counts probe pairs whose
// earlier element is probe-only and later element shared, B counts reference
// pairs whose earlier element is reference-only and later element shared,
// (k−s)² is the probe-only × reference-only block (one each), and the last
// term is the two within-only blocks at penalty p. Runs under rowMu.
func (a *Arena) fillDistRow(row []float64, ref int32, penalty float64) {
	k := a.k
	if cap(a.rowPosR) < len(a.tuples) {
		a.rowPosR = make([]int32, len(a.tuples))
	}
	if cap(a.rowPr) < k {
		a.rowPr = make([]int32, k)
	}
	posR := a.rowPosR[:len(a.tuples)]
	for i := range posR {
		posR[i] = -1
	}
	for d := 0; d < k; d++ {
		posR[a.dense[int(ref)*k+d]] = int32(d)
	}
	pr := a.rowPr[:k]
	max := rank.KendallTopKMax(k, k, penalty)
	if max == 0 {
		for i := range row {
			row[i] = 0
		}
		return
	}
	for leaf := 0; leaf < a.n; leaf++ {
		base := leaf * k
		s := 0
		for d := 0; d < k; d++ {
			p := posR[a.dense[base+d]]
			pr[d] = p
			if p >= 0 {
				s++
			}
		}
		var m1, across, b int32
		for d2 := 1; d2 < k; d2++ {
			p2 := pr[d2]
			for d1 := 0; d1 < d2; d1++ {
				p1 := pr[d1]
				switch {
				case p1 >= 0 && p2 >= 0:
					if p1 > p2 {
						m1++
					}
				case p2 >= 0: // p1 < 0: probe-only before shared
					across++
				}
			}
		}
		for d := 0; d < k; d++ {
			p := pr[d]
			if p < 0 {
				continue
			}
			before := int32(0)
			for d2 := 0; d2 < k; d2++ {
				if q := pr[d2]; q >= 0 && q < p {
					before++
				}
			}
			b += p - before
		}
		ks := k - s
		dist := float64(m1+across+b) + float64(ks*ks) + penalty*float64(ks*(ks-1))
		row[leaf] = dist / max
	}
}

// evalScratch is one worker's reusable state for residual evaluation: split
// buffers, the measure scratch, and the view shells. One per goroutine.
type evalScratch struct {
	us            uncertainty.Scratch
	view          cellView
	rootIdx       []int32
	yesIdx, noIdx []int32
	yesW, noW     []float64
}

// value evaluates the context's measure over (idx, w) with mass m.
func (e *ResidualEngine) value(s *evalScratch, idx []int32, w []float64, mass float64) float64 {
	s.view = cellView{a: e.arena, idx: idx, w: w, inv: 1 / mass}
	return uncertainty.ValueOf(e.ctx.Measure, &s.view, &s.us)
}
