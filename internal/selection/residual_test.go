package selection

import (
	"math/rand"
	"testing"

	"crowdtopk/internal/dist"
	"crowdtopk/internal/numeric"
	"crowdtopk/internal/tpo"
	"crowdtopk/internal/uncertainty"
)

// buildTestTree constructs a moderately uncertain 5-tuple K=3 tree.
func buildTestTree(t testing.TB, seed int64, n, k int) *tpo.Tree {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ds := make([]dist.Distribution, n)
	for i := range ds {
		c := float64(i)*0.5 + rng.Float64()*0.3
		u, err := dist.NewUniformAround(c, 1.6)
		if err != nil {
			t.Fatal(err)
		}
		ds[i] = u
	}
	tree, err := tpo.Build(ds, k, tpo.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func ctxFor(tree *tpo.Tree, m uncertainty.Measure) *Context {
	return &Context{Tree: tree, Measure: m}
}

func TestExpectedResidualEmptySequenceIsCurrentUncertainty(t *testing.T) {
	tree := buildTestTree(t, 1, 5, 3)
	ls := tree.LeafSet()
	for _, m := range []uncertainty.Measure{uncertainty.Entropy{}, uncertainty.MPO{}} {
		ctx := ctxFor(tree, m)
		got := ExpectedResidual(ls, nil, ctx)
		want := m.Value(ls)
		if !numeric.AlmostEqual(got, want, 1e-12) {
			t.Fatalf("%s: R_∅ = %g, want U = %g", m.Name(), got, want)
		}
	}
}

func TestExpectedResidualNeverIncreasesForEntropy(t *testing.T) {
	// Conditioning cannot increase expected Shannon entropy.
	tree := buildTestTree(t, 2, 5, 3)
	ls := tree.LeafSet()
	ctx := ctxFor(tree, uncertainty.Entropy{})
	u0 := ctx.Measure.Value(ls)
	for _, q := range ls.RelevantQuestions() {
		r := ExpectedResidual(ls, []tpo.Question{q}, ctx)
		if r > u0+1e-9 {
			t.Fatalf("R_%v = %g exceeds U = %g", q, r, u0)
		}
	}
}

func TestExpectedResidualMonotoneInSequenceLengthForEntropy(t *testing.T) {
	tree := buildTestTree(t, 3, 5, 3)
	ls := tree.LeafSet()
	ctx := ctxFor(tree, uncertainty.Entropy{})
	qk := ls.RelevantQuestions()
	if len(qk) < 3 {
		t.Skip("workload produced too few questions")
	}
	prev := ctx.Measure.Value(ls)
	for i := 1; i <= 3; i++ {
		r := ExpectedResidual(ls, qk[:i], ctx)
		if r > prev+1e-9 {
			t.Fatalf("R with %d questions (%g) exceeds R with %d (%g)", i, r, i-1, prev)
		}
		prev = r
	}
}

func TestExpectedResidualExactOnTwoLeafTree(t *testing.T) {
	// Two orderings with probabilities p and 1−p; the single relevant
	// question resolves everything: R_q must be 0.
	a, err := dist.NewUniform(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := dist.NewUniform(0.3, 1.3)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := tpo.Build([]dist.Distribution{a, b}, 2, tpo.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ls := tree.LeafSet()
	ctx := ctxFor(tree, uncertainty.Entropy{})
	q := tpo.NewQuestion(0, 1)
	if r := ExpectedResidual(ls, []tpo.Question{q}, ctx); r != 0 {
		t.Fatalf("R of the resolving question = %g, want 0", r)
	}
}

func TestExpectedResidualRepeatedQuestionAddsNothing(t *testing.T) {
	// On a full-depth tree (K = N) every leaf determines every pair, so a
	// repeated question splits nothing the second time and R is unchanged.
	// (With K < N, leaves containing neither tuple are split by independent
	// π coin flips — the documented approximation — so this identity only
	// holds for fully determined pairs.)
	tree := buildTestTree(t, 4, 4, 4)
	ls := tree.LeafSet()
	ctx := ctxFor(tree, uncertainty.Entropy{})
	q := ls.RelevantQuestions()[0]
	r1 := ExpectedResidual(ls, []tpo.Question{q}, ctx)
	r2 := ExpectedResidual(ls, []tpo.Question{q, q}, ctx)
	if !numeric.AlmostEqual(r1, r2, 1e-9) {
		t.Fatalf("asking the same question twice changed R: %g vs %g", r1, r2)
	}
}

func TestQuestionResiduals(t *testing.T) {
	tree := buildTestTree(t, 5, 5, 3)
	ls := tree.LeafSet()
	ctx := ctxFor(tree, uncertainty.Entropy{})
	qs, rs := QuestionResiduals(ls, ctx)
	if len(qs) == 0 || len(qs) != len(rs) {
		t.Fatalf("got %d questions, %d residuals", len(qs), len(rs))
	}
	u0 := ctx.Measure.Value(ls)
	for i, r := range rs {
		if r < -1e-12 || r > u0+1e-9 {
			t.Fatalf("residual of %v out of range: %g (U=%g)", qs[i], r, u0)
		}
	}
}

func TestBestQuestionDeterministicTieBreak(t *testing.T) {
	qs := []tpo.Question{tpo.NewQuestion(2, 3), tpo.NewQuestion(0, 1)}
	rs := []float64{0.5, 0.5}
	q, _ := bestQuestion(qs, rs)
	if q != tpo.NewQuestion(0, 1) {
		t.Fatalf("tie-break picked %v, want lexicographically smallest", q)
	}
}

func TestBranchEpsilonDefaults(t *testing.T) {
	c := &Context{}
	if c.branchEpsilon() != DefaultBranchEpsilon {
		t.Fatal("default branch epsilon not applied")
	}
	if c.maxExpansions() != DefaultMaxExpansions {
		t.Fatal("default max expansions not applied")
	}
	c.BranchEpsilon = 0.25
	c.MaxExpansions = 7
	if c.branchEpsilon() != 0.25 || c.maxExpansions() != 7 {
		t.Fatal("explicit knobs ignored")
	}
}
