// Package selection implements the paper's question-selection strategies for
// uncertainty reduction (§III): the offline algorithms TB-off, C-off and
// A*-off (offline-optimal), the online algorithms T1-on and A*-on, the
// Random and Naive baselines of §IV, and an exhaustive-search reference used
// to verify offline optimality on small instances.
//
// All strategies evaluate candidate questions through the expected residual
// uncertainty R_Q(T_K): the expectation, over the possible answers to the
// question set Q, of the uncertainty of the tree pruned by those answers.
package selection

import (
	"errors"
	"fmt"
	"sort"

	"crowdtopk/internal/numeric"
	"crowdtopk/internal/tpo"
	"crowdtopk/internal/uncertainty"
)

// Errors reported by strategies.
var (
	// ErrNoQuestions reports that the relevant question set Q_K is empty —
	// the tree already holds a single ordering (or none of the remaining
	// pairs can be pruned by any answer).
	ErrNoQuestions = errors.New("selection: no relevant questions remain")
	// ErrSearchBudget reports that A* exceeded its expansion budget.
	ErrSearchBudget = errors.New("selection: search expansion budget exceeded")
)

// DefaultBranchEpsilon is the probability mass below which a hypothetical
// answer branch is dropped during expected-residual recursion. Branches this
// unlikely contribute less than the quadrature error of the tree itself.
const DefaultBranchEpsilon = 1e-9

// Context bundles the inputs every strategy needs: the tree (for the
// pairwise score probabilities π_ij used to split undetermined leaves), the
// uncertainty measure being minimized, and numerical knobs.
type Context struct {
	Tree    *tpo.Tree
	Measure uncertainty.Measure
	// PairProb overrides the source of π_ij = Pr(s_i > s_j); when nil the
	// tree's score model is consulted. Exposed for tests and for callers
	// evaluating crafted leaf sets without a backing tree.
	PairProb func(i, j int) float64
	// BranchEpsilon prunes negligible answer branches in the residual
	// recursion; zero selects DefaultBranchEpsilon.
	BranchEpsilon float64
	// MaxExpansions caps the number of states the A* strategies may pop;
	// zero selects DefaultMaxExpansions.
	MaxExpansions int
}

// pairProb resolves π_ij from the override or the tree.
func (c *Context) pairProb(i, j int) float64 {
	if c.PairProb != nil {
		return c.PairProb(i, j)
	}
	return c.Tree.ProbGreater(i, j)
}

// DefaultMaxExpansions bounds A* search work.
const DefaultMaxExpansions = 200_000

func (c *Context) branchEpsilon() float64 {
	if c.BranchEpsilon == 0 {
		return DefaultBranchEpsilon
	}
	return c.BranchEpsilon
}

func (c *Context) maxExpansions() int {
	if c.MaxExpansions == 0 {
		return DefaultMaxExpansions
	}
	return c.MaxExpansions
}

// ExpectedResidual computes R_Q(T_K): the expected uncertainty of the leaf
// set after asking every question in qs and pruning by the (probabilistic)
// answers. The expectation recursively partitions the leaf set by each
// question; undetermined leaves flow into both branches weighted by π_ij.
// Branches whose probability falls below BranchEpsilon, and branches already
// reduced to a single ordering, terminate early.
//
// Approximation note: leaves that contain neither tuple of a question carry
// no information about the pair, so hypothetical answers are modelled as
// independent π_ij coin flips for them. Correlations among such answers
// through a shared tuple's score are therefore ignored — exactly the
// information the depth-K state of the TPO does not carry. Strategies never
// select duplicate questions, so the practical effect is limited to slight
// optimism of R over below-top-K pairs.
//
// ls must be normalized (mass 1); the result is in the measure's units.
func ExpectedResidual(ls *tpo.LeafSet, qs []tpo.Question, ctx *Context) float64 {
	return residualOfCells(Partition(ls, qs, ctx), ctx)
}

// Partition returns the *active* cells of the leaf-set partition induced by
// asking every question in qs: one (unnormalized) leaf multiset per
// distinguishable answer combination, with the cell mass equal to that
// combination's probability. Cells already resolved to a single ordering and
// cells below BranchEpsilon are dropped — their residual uncertainty is zero
// (respectively negligible) under every measure, now and after any further
// question, so ExpectedResidual(ls, qs) == Σ_cells mass(cell)·U(cell
// normalized) holds exactly over the returned cells.
//
// Conditional strategies evaluate R_{qs+q} for many candidates q by
// splitting these cells once per candidate instead of recursing from scratch.
func Partition(ls *tpo.LeafSet, qs []tpo.Question, ctx *Context) []*tpo.LeafSet {
	eps := ctx.branchEpsilon()
	cells := make([]*tpo.LeafSet, 0, 2)
	if ls.Len() > 1 && ls.Mass() >= eps {
		cells = append(cells, ls)
	}
	for _, q := range qs {
		cells = SplitCells(cells, q, ctx)
	}
	return cells
}

// SplitCells advances a partition by one question, dropping resolved and
// negligible cells (see Partition).
func SplitCells(cells []*tpo.LeafSet, q tpo.Question, ctx *Context) []*tpo.LeafSet {
	eps := ctx.branchEpsilon()
	pi := ctx.pairProb(q.I, q.J)
	next := make([]*tpo.LeafSet, 0, 2*len(cells))
	for _, cell := range cells {
		yes, no := cell.Split(q, pi)
		if yes.Len() > 1 && yes.Mass() >= eps {
			next = append(next, yes)
		}
		if no.Len() > 1 && no.Mass() >= eps {
			next = append(next, no)
		}
	}
	return next
}

// residualOfCells folds a partition of active cells into the expected
// residual uncertainty.
func residualOfCells(cells []*tpo.LeafSet, ctx *Context) float64 {
	var total numeric.KahanSum
	for _, c := range cells {
		total.Add(c.Mass() * ctx.Measure.Value(c.Normalized()))
	}
	return total.Sum()
}

// splitResidual returns the expected residual uncertainty after extending
// the partition `cells` with one more question — the inner loop of the
// conditional strategies.
func splitResidual(cells []*tpo.LeafSet, q tpo.Question, ctx *Context) float64 {
	eps := ctx.branchEpsilon()
	pi := ctx.pairProb(q.I, q.J)
	var total numeric.KahanSum
	for _, cell := range cells {
		yes, no := cell.Split(q, pi)
		if m := yes.Mass(); yes.Len() > 1 && m >= eps {
			total.Add(m * ctx.Measure.Value(yes.Normalized()))
		}
		if m := no.Mass(); no.Len() > 1 && m >= eps {
			total.Add(m * ctx.Measure.Value(no.Normalized()))
		}
	}
	return total.Sum()
}

// QuestionResiduals computes R_q for every relevant question of the leaf
// set, returning the questions and their expected residual uncertainties in
// matching order. This is the workhorse of TB-off and T1-on.
func QuestionResiduals(ls *tpo.LeafSet, ctx *Context) ([]tpo.Question, []float64) {
	qs := ls.RelevantQuestions()
	rs := make([]float64, len(qs))
	for i, q := range qs {
		rs[i] = ExpectedResidual(ls, []tpo.Question{q}, ctx)
	}
	return qs, rs
}

// bestQuestion returns the question with the lowest expected residual,
// breaking ties lexicographically for determinism.
func bestQuestion(qs []tpo.Question, rs []float64) (tpo.Question, float64) {
	best := 0
	for i := 1; i < len(qs); i++ {
		switch {
		case rs[i] < rs[best]-tieEpsilon:
			best = i
		case rs[i] < rs[best]+tieEpsilon && questionLess(qs[i], qs[best]):
			best = i
		}
	}
	return qs[best], rs[best]
}

// tieEpsilon treats residuals this close as equal so floating-point noise
// cannot flip deterministic tie-breaks.
const tieEpsilon = 1e-12

func questionLess(a, b tpo.Question) bool {
	if a.I != b.I {
		return a.I < b.I
	}
	return a.J < b.J
}

// sortQuestions orders questions lexicographically in place (for stable
// outputs across runs).
func sortQuestions(qs []tpo.Question) {
	sort.Slice(qs, func(i, j int) bool { return questionLess(qs[i], qs[j]) })
}

// Offline strategies choose a whole batch of questions before any answer
// arrives (§III.A) — the batch-publication crowdsourcing market model.
type Offline interface {
	// Name identifies the strategy in reports ("TB-off", "C-off", ...).
	Name() string
	// SelectBatch returns up to budget questions for the given tree state.
	// Fewer (possibly zero) questions are returned when Q_K is smaller
	// than the budget.
	SelectBatch(ls *tpo.LeafSet, budget int, ctx *Context) ([]tpo.Question, error)
}

// Online strategies choose one question at a time, seeing every earlier
// answer reflected in the tree (§III.B) — the incremental-publication model.
type Online interface {
	// Name identifies the strategy in reports ("T1-on", "A*-on").
	Name() string
	// NextQuestion returns the next question to ask given the current tree
	// state and the remaining budget. ok is false when no relevant
	// question remains (early termination).
	NextQuestion(ls *tpo.LeafSet, remaining int, ctx *Context) (q tpo.Question, ok bool, err error)
}

// validateBudget normalizes budget handling shared by the strategies.
func validateBudget(budget int) error {
	if budget < 0 {
		return fmt.Errorf("selection: negative budget %d", budget)
	}
	return nil
}
