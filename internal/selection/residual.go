package selection

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"crowdtopk/internal/numeric"
	"crowdtopk/internal/par"
	"crowdtopk/internal/tpo"
	"crowdtopk/internal/uncertainty"
)

// Errors reported by strategies.
var (
	// ErrNoQuestions reports that the relevant question set Q_K is empty —
	// the tree already holds a single ordering (or none of the remaining
	// pairs can be pruned by any answer).
	ErrNoQuestions = errors.New("selection: no relevant questions remain")
	// ErrSearchBudget reports that A* exceeded its expansion budget.
	ErrSearchBudget = errors.New("selection: search expansion budget exceeded")
)

// DefaultBranchEpsilon is the probability mass below which a hypothetical
// answer branch is dropped during expected-residual recursion. Branches this
// unlikely contribute less than the quadrature error of the tree itself.
const DefaultBranchEpsilon = 1e-9

// Context bundles the inputs every strategy needs: the tree (for the
// pairwise score probabilities π_ij used to split undetermined leaves), the
// uncertainty measure being minimized, and numerical knobs.
type Context struct {
	Tree    *tpo.Tree
	Measure uncertainty.Measure
	// PairProb overrides the source of π_ij = Pr(s_i > s_j); when nil the
	// tree's score model is consulted. Exposed for tests and for callers
	// evaluating crafted leaf sets without a backing tree.
	PairProb func(i, j int) float64
	// BranchEpsilon prunes negligible answer branches in the residual
	// recursion; zero selects DefaultBranchEpsilon.
	BranchEpsilon float64
	// MaxExpansions caps the number of states the A* strategies may pop;
	// zero selects DefaultMaxExpansions.
	MaxExpansions int
	// Workers caps the goroutines the expected-residual sweeps
	// (QuestionResiduals and the C-off candidate loop) fan candidate
	// questions across. 0 and 1 run sequentially; negative selects
	// GOMAXPROCS. Results are identical for every value: each candidate's
	// residual lands in its own slot.
	Workers int
	// Pool optionally draws the sweep parallelism from a shared worker
	// budget instead (the serving layer's process-wide pool): up to Workers
	// slots are claimed for a sweep's duration, or the pool's free share
	// when Workers <= 0.
	Pool *par.Budget
	// Live optionally carries a session's live engine: strategies then
	// reuse the residual engine it holds (kept current across answers by
	// in-place updates) instead of rebuilding the consistency index from
	// scratch, and attach fresh builds to it for later rounds. nil keeps
	// the stateless build-per-call behavior.
	Live *LiveEngine

	// pim caches the dense pairwise-probability matrix for the tuples in
	// play (see piMatrix). Lazily built by the residual engine; not for
	// concurrent mutation — engines are constructed single-threaded and
	// workers only read.
	pim *piMatrix
}

// pairProb resolves π_ij from the override, the dense matrix, or the tree.
func (c *Context) pairProb(i, j int) float64 {
	if c.PairProb != nil {
		return c.PairProb(i, j)
	}
	if c.pim != nil {
		if v, ok := c.pim.lookup(i, j); ok {
			return v
		}
	}
	return c.Tree.ProbGreater(i, j)
}

// piMatrix is the dense per-tree π matrix: π for every ordered pair of the
// tuples in play, resolved once per sweep so the inner loops index an array
// instead of hitting the process-global pairwise cache per lookup.
type piMatrix struct {
	tuples []int
	tidx   map[int]int32
	p      []float64 // row-major T×T; p[i*T+j] = π(tuples[i], tuples[j])
}

// piMatrix returns the context's dense matrix for the given sorted tuple
// set, building it on first use (or when the tuple set changed — trees
// shrink as answers prune them).
func (c *Context) piMatrix(tuples []int) *piMatrix {
	if c.pim != nil && equalInts(c.pim.tuples, tuples) {
		return c.pim
	}
	t := len(tuples)
	m := &piMatrix{
		tuples: append([]int(nil), tuples...),
		tidx:   make(map[int]int32, t),
		p:      make([]float64, t*t),
	}
	for i, id := range m.tuples {
		m.tidx[id] = int32(i)
	}
	src := func(i, j int) float64 {
		if c.PairProb != nil {
			return c.PairProb(i, j)
		}
		return c.Tree.ProbGreater(i, j)
	}
	for i := 0; i < t; i++ {
		m.p[i*t+i] = 0.5
		for j := i + 1; j < t; j++ {
			v := src(tuples[i], tuples[j])
			m.p[i*t+j] = v
			m.p[j*t+i] = 1 - v
		}
	}
	c.pim = m
	return m
}

// at returns π for dense tuple indices (i, j).
func (m *piMatrix) at(i, j int) float64 { return m.p[i*len(m.tuples)+j] }

// lookup returns π for original tuple ids when both are in the matrix.
func (m *piMatrix) lookup(i, j int) (float64, bool) {
	di, ok := m.tidx[i]
	if !ok {
		return 0, false
	}
	dj, ok := m.tidx[j]
	if !ok {
		return 0, false
	}
	return m.at(int(di), int(dj)), true
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sweepWorkers resolves the parallelism a sweep over n candidates may use
// right now and returns it with a release function for the pool share (a
// no-op when no pool is configured). The pool acquisition is clamped to n
// up front so a small sweep never reserves shared slots it cannot use.
func (c *Context) sweepWorkers(n int) (int, func()) {
	if n < 1 {
		n = 1
	}
	if c.Pool != nil {
		want := c.Workers
		if want < 1 || want > n {
			want = n
		}
		got := c.Pool.Acquire(want)
		return got, func() { c.Pool.Release(got) }
	}
	w := c.Workers
	if w < 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		w = 1
	}
	if w > n {
		w = n
	}
	return w, func() {}
}

// DefaultMaxExpansions bounds A* search work.
const DefaultMaxExpansions = 200_000

func (c *Context) branchEpsilon() float64 {
	if c.BranchEpsilon == 0 {
		return DefaultBranchEpsilon
	}
	return c.BranchEpsilon
}

func (c *Context) maxExpansions() int {
	if c.MaxExpansions == 0 {
		return DefaultMaxExpansions
	}
	return c.MaxExpansions
}

// ExpectedResidual computes R_Q(T_K): the expected uncertainty of the leaf
// set after asking every question in qs and pruning by the (probabilistic)
// answers. The expectation recursively partitions the leaf set by each
// question; undetermined leaves flow into both branches weighted by π_ij.
// Branches whose probability falls below BranchEpsilon, and branches already
// reduced to a single ordering, terminate early.
//
// Approximation note: leaves that contain neither tuple of a question carry
// no information about the pair, so hypothetical answers are modelled as
// independent π_ij coin flips for them. Correlations among such answers
// through a shared tuple's score are therefore ignored — exactly the
// information the depth-K state of the TPO does not carry. Strategies never
// select duplicate questions, so the practical effect is limited to slight
// optimism of R over below-top-K pairs.
//
// ls must be normalized (mass 1); the result is in the measure's units.
//
// This is an adapter over the flat ResidualEngine; callers evaluating many
// sequences over one leaf set (the search strategies) construct the engine
// once instead.
func ExpectedResidual(ls *tpo.LeafSet, qs []tpo.Question, ctx *Context) float64 {
	return engineFor(ls, ctx).ExpectedResidual(qs)
}

// Partition returns the *active* cells of the leaf-set partition induced by
// asking every question in qs: one (unnormalized) leaf multiset per
// distinguishable answer combination, with the cell mass equal to that
// combination's probability. Cells already resolved to a single ordering and
// cells below BranchEpsilon are dropped — their residual uncertainty is zero
// (respectively negligible) under every measure, now and after any further
// question, so ExpectedResidual(ls, qs) == Σ_cells mass(cell)·U(cell
// normalized) holds exactly over the returned cells.
//
// Conditional strategies evaluate R_{qs+q} for many candidates q by
// splitting these cells once per candidate instead of recursing from scratch.
func Partition(ls *tpo.LeafSet, qs []tpo.Question, ctx *Context) []*tpo.LeafSet {
	eps := ctx.branchEpsilon()
	cells := make([]*tpo.LeafSet, 0, 2)
	if ls.Len() > 1 && ls.Mass() >= eps {
		cells = append(cells, ls)
	}
	for _, q := range qs {
		cells = SplitCells(cells, q, ctx)
	}
	return cells
}

// SplitCells advances a partition by one question, dropping resolved and
// negligible cells (see Partition).
func SplitCells(cells []*tpo.LeafSet, q tpo.Question, ctx *Context) []*tpo.LeafSet {
	eps := ctx.branchEpsilon()
	pi := ctx.pairProb(q.I, q.J)
	next := make([]*tpo.LeafSet, 0, 2*len(cells))
	for _, cell := range cells {
		yes, no := cell.Split(q, pi)
		if yes.Len() > 1 && yes.Mass() >= eps {
			next = append(next, yes)
		}
		if no.Len() > 1 && no.Mass() >= eps {
			next = append(next, no)
		}
	}
	return next
}

// residualOfCells folds a partition of active cells into the expected
// residual uncertainty.
func residualOfCells(cells []*tpo.LeafSet, ctx *Context) float64 {
	var total numeric.KahanSum
	for _, c := range cells {
		total.Add(c.Mass() * ctx.Measure.Value(c.Normalized()))
	}
	return total.Sum()
}

// splitResidual returns the expected residual uncertainty after extending
// the partition `cells` with one more question — the inner loop of the
// conditional strategies.
func splitResidual(cells []*tpo.LeafSet, q tpo.Question, ctx *Context) float64 {
	eps := ctx.branchEpsilon()
	pi := ctx.pairProb(q.I, q.J)
	var total numeric.KahanSum
	for _, cell := range cells {
		yes, no := cell.Split(q, pi)
		if m := yes.Mass(); yes.Len() > 1 && m >= eps {
			total.Add(m * ctx.Measure.Value(yes.Normalized()))
		}
		if m := no.Mass(); no.Len() > 1 && m >= eps {
			total.Add(m * ctx.Measure.Value(no.Normalized()))
		}
	}
	return total.Sum()
}

// QuestionResiduals computes R_q for every relevant question of the leaf
// set, returning the questions and their expected residual uncertainties in
// matching order. This is the workhorse of TB-off and T1-on. Candidates are
// fanned across Context.Workers goroutines (sequential by default).
func QuestionResiduals(ls *tpo.LeafSet, ctx *Context) ([]tpo.Question, []float64) {
	return engineFor(ls, ctx).QuestionResiduals()
}

// ResidualEngine evaluates expected residuals over one leaf-set snapshot:
// the Arena/ConsistencyIndex machinery of cellset.go behind an API shaped
// like the package-level functions. Strategies build one engine per
// selection step and evaluate every candidate against it. The engine is
// safe for the package's own parallel sweeps (per-worker scratch); exported
// methods may be called from one goroutine at a time.
type ResidualEngine struct {
	ctx *Context
	ls  *tpo.LeafSet

	// Flat path; nil arena means the leaf set is ragged (hand-built) and
	// every method falls back to the slice-of-LeafSet implementation.
	arena *Arena
	index *ConsistencyIndex

	rootMass float64 // numeric.Sum over the arena weights, computed once

	mu    sync.Mutex
	extra map[tpo.Question]*extraRow // lazily classified out-of-index questions

	scratch []*evalScratch // per-worker evaluation state
}

type extraRow struct {
	row []byte
	pi  float64
}

// NewResidualEngine snapshots ls for residual evaluation under ctx.
func NewResidualEngine(ls *tpo.LeafSet, ctx *Context) *ResidualEngine {
	e := &ResidualEngine{ctx: ctx, ls: ls}
	if a, ok := NewArena(ls); ok {
		e.arena = a
		e.index = NewConsistencyIndex(a, ctx)
		e.rootMass = numeric.Sum(a.w)
	}
	return e
}

// Questions returns Q_K for the snapshot, lexicographically ordered.
func (e *ResidualEngine) Questions() []tpo.Question {
	if e.arena == nil {
		qs := e.ls.RelevantQuestions()
		sortQuestions(qs)
		return qs
	}
	return e.index.Relevant()
}

// scratchFor returns per-worker evaluation scratch, growing it on demand.
func (e *ResidualEngine) scratchFor(workers int) []*evalScratch {
	for len(e.scratch) < workers {
		e.scratch = append(e.scratch, &evalScratch{})
	}
	return e.scratch
}

// rowFor resolves a question's classification row and π, classifying and
// memoizing questions outside the index (non-canonical callers) on demand.
func (e *ResidualEngine) rowFor(q tpo.Question) ([]byte, float64) {
	if row, pi, ok := e.index.Row(q); ok {
		return row, pi
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if x, ok := e.extra[q]; ok {
		return x.row, x.pi
	}
	row := make([]byte, e.arena.n)
	ansYes := tpo.Answer{Q: q, Yes: true}
	for i, p := range e.arena.paths {
		row[i] = byte(tpo.PathConsistency(p, ansYes))
	}
	x := &extraRow{row: row, pi: e.ctx.pairProb(q.I, q.J)}
	if e.extra == nil {
		e.extra = make(map[tpo.Question]*extraRow)
	}
	e.extra[q] = x
	return x.row, x.pi
}

// QuestionResiduals computes R_q for every question in Q_K, in Q_K order,
// fanning candidates across the context's sweep workers.
func (e *ResidualEngine) QuestionResiduals() ([]tpo.Question, []float64) {
	qs := e.Questions()
	rs := e.Residuals(qs)
	return qs, rs
}

// Residuals computes R_q for each single question of qs (in matching order),
// in parallel.
func (e *ResidualEngine) Residuals(qs []tpo.Question) []float64 {
	rs := make([]float64, len(qs))
	if len(qs) == 0 {
		return rs
	}
	workers, release := e.ctx.sweepWorkers(len(qs))
	defer release()
	if e.arena == nil {
		par.For(len(qs), workers, func(_, i int) error {
			rs[i] = residualOfCells(Partition(e.ls, qs[i:i+1], e.ctx), e.ctx)
			return nil
		})
		return rs
	}
	scratch := e.scratchFor(workers)
	par.For(len(qs), workers, func(w, i int) error {
		rs[i] = e.rootResidual(qs[i], scratch[w])
		return nil
	})
	return rs
}

// rootResidual is R_q for a single question against the whole arena. For
// indexed questions it evaluates from the precomputed per-class aggregates
// when the measure supports it (O(1) for U_H, one fused dot pass for U_MPO);
// otherwise it splits into the worker's reusable buffers.
func (e *ResidualEngine) rootResidual(q tpo.Question, s *evalScratch) float64 {
	a := e.arena
	eps := e.ctx.branchEpsilon()
	if a.n <= 1 || e.rootMass < eps {
		return 0
	}
	if r, ok := e.index.qrow[q]; ok {
		st := &e.index.stats[r]
		pi := e.index.pi[r]
		switch m := e.ctx.Measure.(type) {
		case uncertainty.Entropy:
			return entropyBranchResidual(st, classConsistent, pi, eps) +
				entropyBranchResidual(st, classInconsistent, 1-pi, eps)
		case uncertainty.MPO:
			return e.mpoRootResidual(int(r), st, pi, m.Penalty, eps)
		}
	}
	row, pi := e.rowFor(q)
	root := cell{w: a.w}
	root.idx = rootIndices(a, s)
	yi, ni, yw, nw := splitCell(&root, row, pi,
		s.yesIdx[:0], s.noIdx[:0], s.yesW[:0], s.noW[:0])
	s.yesIdx, s.noIdx, s.yesW, s.noW = yi, ni, yw, nw // keep grown capacity
	var total numeric.KahanSum
	if len(yi) > 1 {
		if m := numeric.Sum(yw); m >= eps {
			total.Add(m * e.value(s, yi, yw, m))
		}
	}
	if len(ni) > 1 {
		if m := numeric.Sum(nw); m >= eps {
			total.Add(m * e.value(s, ni, nw, m))
		}
	}
	return total.Sum()
}

// entropyBranchResidual is one hypothetical-answer branch's m·H(branch)
// term, computed from aggregates: the branch holds the determined class
// `det` unscaled plus (when piU > 0) the undetermined class scaled by piU,
// and −Σ p·log2 p rearranges to log2(m) − (Σ w'·log2 w')/m with
// Σ w'·log2 w' = Σ wlog_det + piU·Σ wlog_und + piU·log2(piU)·Σ w_und.
func entropyBranchResidual(st *classStats, det byte, piU, eps float64) float64 {
	cnt := int(st.cnt[det])
	m := st.w[det]
	sum := st.wlog[det]
	if piU > 0 {
		cnt += int(st.cnt[classUndetermined])
		uw := st.w[classUndetermined]
		m += piU * uw
		sum += piU*st.wlog[classUndetermined] + piU*math.Log2(piU)*uw
	}
	if cnt <= 1 || m < eps {
		return 0
	}
	h := math.Log2(m) - sum/m
	if h < 0 { // rounding noise on a near-resolved branch
		h = 0
	}
	return m * h
}

// branchArgmax picks the branch's highest-weight leaf (first on ties, as
// numeric.ArgMax): the determined class's maximum against the undetermined
// class's π-scaled maximum.
func branchArgmax(st *classStats, det byte, piU float64) (int32, bool) {
	at := st.maxAt[det]
	v := st.maxW[det]
	if piU > 0 && st.cnt[classUndetermined] > 0 {
		uv := piU * st.maxW[classUndetermined]
		uAt := st.maxAt[classUndetermined]
		if at < 0 || uv > v || (uv == v && uAt < at) {
			at, v = uAt, uv
		}
	}
	return at, at >= 0
}

// mpoRootResidual evaluates both branch terms of R_q under U_MPO: branch
// mass, count and reference leaf come from the aggregates, the expected
// distances from one fused dot pass against the cached per-reference
// normalized-distance rows.
func (e *ResidualEngine) mpoRootResidual(r int, st *classStats, pi, penalty, eps float64) float64 {
	yesCnt := int(st.cnt[classConsistent])
	yesM := st.w[classConsistent]
	if pi > 0 {
		yesCnt += int(st.cnt[classUndetermined])
		yesM += pi * st.w[classUndetermined]
	}
	noCnt := int(st.cnt[classInconsistent])
	noM := st.w[classInconsistent]
	if pi < 1 {
		noCnt += int(st.cnt[classUndetermined])
		noM += (1 - pi) * st.w[classUndetermined]
	}
	yesOK := yesCnt > 1 && yesM >= eps
	noOK := noCnt > 1 && noM >= eps
	if !yesOK && !noOK {
		return 0
	}
	var rY, rN []float64
	if yesOK {
		ref, ok := branchArgmax(st, classConsistent, pi)
		if !ok {
			return math.NaN() // unreachable: yesCnt > 1 implies a leaf
		}
		rY = e.arena.DistRow(ref, penalty)
	}
	if noOK {
		ref, ok := branchArgmax(st, classInconsistent, 1-pi)
		if !ok {
			return math.NaN()
		}
		rN = e.arena.DistRow(ref, penalty)
	}
	row := e.index.class[r*e.arena.n:][:e.arena.n]
	var dotY, dotN numeric.KahanSum
	for i, w := range e.arena.w {
		if w == 0 {
			continue
		}
		switch row[i] {
		case classConsistent:
			if yesOK {
				dotY.Add(w * rY[i])
			}
		case classInconsistent:
			if noOK {
				dotN.Add(w * rN[i])
			}
		default:
			if yesOK && pi > 0 {
				dotY.Add(w * pi * rY[i])
			}
			if noOK && pi < 1 {
				dotN.Add(w * (1 - pi) * rN[i])
			}
		}
	}
	return dotY.Sum() + dotN.Sum()
}

// rootIndices returns the shared identity index vector [0, n) for the arena.
func rootIndices(a *Arena, s *evalScratch) []int32 {
	if cap(s.rootIdx) < a.n {
		s.rootIdx = make([]int32, a.n)
		for i := range s.rootIdx {
			s.rootIdx[i] = int32(i)
		}
	}
	return s.rootIdx[:a.n]
}

// ExpectedResidual computes R_qs over the snapshot — the engine form of the
// package-level function.
func (e *ResidualEngine) ExpectedResidual(qs []tpo.Question) float64 {
	if e.arena == nil {
		return residualOfCells(Partition(e.ls, qs, e.ctx), e.ctx)
	}
	return e.residualOfCells(e.partition(qs))
}

// partition mirrors Partition over arena cells: the active cells after
// asking every question in qs.
func (e *ResidualEngine) partition(qs []tpo.Question) []*cell {
	eps := e.ctx.branchEpsilon()
	cells := make([]*cell, 0, 2)
	if e.arena.n > 1 {
		root := e.arena.rootCell()
		if root.mass >= eps {
			cells = append(cells, root)
		}
	}
	for _, q := range qs {
		cells = e.splitCells(cells, q)
	}
	return cells
}

// splitCells mirrors SplitCells over arena cells.
func (e *ResidualEngine) splitCells(cells []*cell, q tpo.Question) []*cell {
	eps := e.ctx.branchEpsilon()
	row, pi := e.rowFor(q)
	next := make([]*cell, 0, 2*len(cells))
	for _, c := range cells {
		yi, ni, yw, nw := splitCell(c, row, pi, nil, nil, nil, nil)
		if len(yi) > 1 {
			if m := numeric.Sum(yw); m >= eps {
				next = append(next, &cell{idx: yi, w: yw, mass: m})
			}
		}
		if len(ni) > 1 {
			if m := numeric.Sum(nw); m >= eps {
				next = append(next, &cell{idx: ni, w: nw, mass: m})
			}
		}
	}
	return next
}

// residualOfCells folds arena cells into the expected residual uncertainty.
func (e *ResidualEngine) residualOfCells(cells []*cell) float64 {
	s := e.scratchFor(1)[0]
	var total numeric.KahanSum
	for _, c := range cells {
		total.Add(c.mass * e.value(s, c.idx, c.w, c.mass))
	}
	return total.Sum()
}

// splitResidual mirrors splitResidual over arena cells, splitting into the
// worker's buffers: the expected residual after extending the partition with
// one more question.
func (e *ResidualEngine) splitResidual(cells []*cell, q tpo.Question, s *evalScratch) float64 {
	eps := e.ctx.branchEpsilon()
	row, pi := e.rowFor(q)
	var total numeric.KahanSum
	for _, c := range cells {
		yi, ni, yw, nw := splitCell(c, row, pi,
			s.yesIdx[:0], s.noIdx[:0], s.yesW[:0], s.noW[:0])
		s.yesIdx, s.noIdx, s.yesW, s.noW = yi, ni, yw, nw
		if len(yi) > 1 {
			if m := numeric.Sum(yw); m >= eps {
				total.Add(m * e.value(s, yi, yw, m))
			}
		}
		if len(ni) > 1 {
			if m := numeric.Sum(nw); m >= eps {
				total.Add(m * e.value(s, ni, nw, m))
			}
		}
	}
	return total.Sum()
}

// splitResiduals evaluates splitResidual for every candidate in qs in
// parallel, skipping indices where skip reports true (already-chosen
// questions in C-off); skipped slots return NaN.
func (e *ResidualEngine) splitResiduals(cells []*cell, qs []tpo.Question, skip func(tpo.Question) bool) []float64 {
	rs := make([]float64, len(qs))
	workers, release := e.ctx.sweepWorkers(len(qs))
	defer release()
	scratch := e.scratchFor(workers)
	par.For(len(qs), workers, func(w, i int) error {
		if skip != nil && skip(qs[i]) {
			rs[i] = math.NaN()
			return nil
		}
		rs[i] = e.splitResidual(cells, qs[i], scratch[w])
		return nil
	})
	return rs
}

// bestQuestion returns the question with the lowest expected residual,
// breaking ties lexicographically for determinism.
func bestQuestion(qs []tpo.Question, rs []float64) (tpo.Question, float64) {
	best := 0
	for i := 1; i < len(qs); i++ {
		switch {
		case rs[i] < rs[best]-tieEpsilon:
			best = i
		case rs[i] < rs[best]+tieEpsilon && questionLess(qs[i], qs[best]):
			best = i
		}
	}
	return qs[best], rs[best]
}

// tieEpsilon treats residuals this close as equal so floating-point noise
// cannot flip deterministic tie-breaks.
const tieEpsilon = 1e-12

func questionLess(a, b tpo.Question) bool {
	if a.I != b.I {
		return a.I < b.I
	}
	return a.J < b.J
}

// sortQuestions orders questions lexicographically in place (for stable
// outputs across runs).
func sortQuestions(qs []tpo.Question) {
	sort.Slice(qs, func(i, j int) bool { return questionLess(qs[i], qs[j]) })
}

// Offline strategies choose a whole batch of questions before any answer
// arrives (§III.A) — the batch-publication crowdsourcing market model.
type Offline interface {
	// Name identifies the strategy in reports ("TB-off", "C-off", ...).
	Name() string
	// SelectBatch returns up to budget questions for the given tree state.
	// Fewer (possibly zero) questions are returned when Q_K is smaller
	// than the budget.
	SelectBatch(ls *tpo.LeafSet, budget int, ctx *Context) ([]tpo.Question, error)
}

// Online strategies choose one question at a time, seeing every earlier
// answer reflected in the tree (§III.B) — the incremental-publication model.
type Online interface {
	// Name identifies the strategy in reports ("T1-on", "A*-on").
	Name() string
	// NextQuestion returns the next question to ask given the current tree
	// state and the remaining budget. ok is false when no relevant
	// question remains (early termination).
	NextQuestion(ls *tpo.LeafSet, remaining int, ctx *Context) (q tpo.Question, ok bool, err error)
}

// validateBudget normalizes budget handling shared by the strategies.
func validateBudget(budget int) error {
	if budget < 0 {
		return fmt.Errorf("selection: negative budget %d", budget)
	}
	return nil
}
