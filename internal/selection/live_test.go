package selection

import (
	"context"
	"math/rand"
	"testing"

	"crowdtopk/internal/rank"
	"crowdtopk/internal/tpo"
	"crowdtopk/internal/uncertainty"
)

// The live engine applies answers as in-place updates (tombstones + aggregate
// patches) instead of rebuilding; these tests pin that every strategy selects
// byte-identical batches through a live context and a from-scratch engine
// across interleaved answer sequences — trusted prunes, noisy reweights,
// compactions, and out-of-band tree changes included.

// liveHarness owns one tree and one LiveEngine, mirroring how a session
// drives them: snapshot per round, Sync after every accepted answer.
type liveHarness struct {
	tree *tpo.Tree
	le   *LiveEngine
	m    uncertainty.Measure
}

func newLiveHarness(t *testing.T, seed int64, n, k int, m uncertainty.Measure) *liveHarness {
	return &liveHarness{tree: buildTestTree(t, seed, n, k), le: NewLiveEngine(), m: m}
}

// ctxs returns a fresh (stateless) and a live context over the same tree.
func (h *liveHarness) ctxs() (fresh, live *Context) {
	fresh = ctxFor(h.tree, h.m)
	live = ctxFor(h.tree, h.m)
	live.Live = h.le
	return fresh, live
}

// applyTrusted prunes by a relevant answer and syncs the live engine.
func (h *liveHarness) applyTrusted(t *testing.T, a tpo.Answer) {
	t.Helper()
	if err := h.tree.Prune(a); err != nil {
		t.Fatalf("prune %v: %v", a, err)
	}
	h.le.Sync(context.Background(), h.tree, true)
}

// applyNoisy reweights by an answer with the given accuracy and syncs.
func (h *liveHarness) applyNoisy(t *testing.T, a tpo.Answer, acc float64) {
	t.Helper()
	if err := h.tree.Reweight(a, acc); err != nil {
		t.Fatalf("reweight %v: %v", a, err)
	}
	h.le.Sync(context.Background(), h.tree, false)
}

// checkStrategies runs the given strategies over the current snapshot through
// both contexts and requires identical output. astar additionally runs the
// A*-off / A*-on / exhaustive trio (admissible heuristic permitting).
func (h *liveHarness) checkStrategies(t *testing.T, label string, astar bool) {
	t.Helper()
	ls := h.tree.LeafSet()
	freshCtx, liveCtx := h.ctxs()

	type offCase struct {
		name   string
		run    func(ctx *Context, rng *rand.Rand) ([]tpo.Question, error)
		budget int
	}
	cases := []offCase{
		{"random", func(ctx *Context, rng *rand.Rand) ([]tpo.Question, error) {
			return NewRandom(rng).SelectBatch(ls, 3, ctx)
		}, 3},
		{"naive", func(ctx *Context, rng *rand.Rand) ([]tpo.Question, error) {
			return NewNaive(rng).SelectBatch(ls, 3, ctx)
		}, 3},
		{"TB-off", func(ctx *Context, _ *rand.Rand) ([]tpo.Question, error) {
			return (TBOff{}).SelectBatch(ls, 3, ctx)
		}, 3},
		{"C-off", func(ctx *Context, _ *rand.Rand) ([]tpo.Question, error) {
			return (COff{}).SelectBatch(ls, 3, ctx)
		}, 3},
	}
	if astar {
		cases = append(cases,
			offCase{"A*-off", func(ctx *Context, _ *rand.Rand) ([]tpo.Question, error) {
				return (AStarOff{}).SelectBatch(ls, 3, ctx)
			}, 3},
			offCase{"exhaustive", func(ctx *Context, _ *rand.Rand) ([]tpo.Question, error) {
				return (Exhaustive{}).SelectBatch(ls, 2, ctx)
			}, 2},
		)
	}
	for _, c := range cases {
		// Identical rng seeds per path: the random baselines must draw the
		// same sequence, which they do iff the visible tree state matches.
		fb, err := c.run(freshCtx, rand.New(rand.NewSource(11)))
		if err != nil {
			t.Fatalf("%s/%s fresh: %v", label, c.name, err)
		}
		lb, err := c.run(liveCtx, rand.New(rand.NewSource(11)))
		if err != nil {
			t.Fatalf("%s/%s live: %v", label, c.name, err)
		}
		if !sameBatch(fb, lb) {
			t.Fatalf("%s/%s: live batch %v differs from fresh %v", label, c.name, lb, fb)
		}
	}

	onlines := []Online{T1On{}}
	if astar {
		onlines = append(onlines, AStarOn{})
	}
	for _, on := range onlines {
		fq, fok, err := on.NextQuestion(ls, 3, freshCtx)
		if err != nil {
			t.Fatalf("%s/%s fresh: %v", label, on.Name(), err)
		}
		lq, lok, err := on.NextQuestion(ls, 3, liveCtx)
		if err != nil {
			t.Fatalf("%s/%s live: %v", label, on.Name(), err)
		}
		if fok != lok || fq != lq {
			t.Fatalf("%s/%s: live %v/%v differs from fresh %v/%v", label, on.Name(), lq, lok, fq, fok)
		}
	}
}

// pickRelevant deterministically picks a relevant question and an answer side.
func pickRelevant(ls *tpo.LeafSet, rng *rand.Rand) (tpo.Answer, bool) {
	qk := ls.RelevantQuestions()
	if len(qk) == 0 {
		return tpo.Answer{}, false
	}
	q := qk[rng.Intn(len(qk))]
	return tpo.Answer{Q: q, Yes: rng.Intn(2) == 0}, true
}

// TestLiveStrategiesMatchFreshAcrossAnswers is the cross-check suite of the
// incremental engine: all 8 strategies, interleaved trusted answer
// sequences, live context vs from-scratch engine, byte-identical batches at
// every step.
func TestLiveStrategiesMatchFreshAcrossAnswers(t *testing.T) {
	before := LiveEngineStats()
	for seed := int64(0); seed < 3; seed++ {
		for _, m := range []uncertainty.Measure{uncertainty.Entropy{}, uncertainty.MPO{Penalty: rank.DefaultPenalty}} {
			// The A* trio needs the admissible entropy heuristic to stay
			// cheap; the other six run under both measures.
			astar := m.Name() == "H"
			h := newLiveHarness(t, 700+seed, 7, 3, m)
			rng := rand.New(rand.NewSource(seed))
			for round := 0; round < 6; round++ {
				h.checkStrategies(t, m.Name(), astar)
				a, ok := pickRelevant(h.tree.LeafSet(), rng)
				if !ok {
					break
				}
				h.applyTrusted(t, a)
			}
		}
	}
	after := LiveEngineStats()
	if after.Patches <= before.Patches {
		t.Fatal("no in-place patches recorded: the live path never ran")
	}
	if after.Reuses <= before.Reuses {
		t.Fatal("no engine reuses recorded: every round rebuilt from scratch")
	}
}

// TestLiveNoisyReweightOnTombstonedArena is the seeded fuzz-style check for
// noisy reweighting over an arena that already carries tombstones: a couple
// of trusted prunes first, then noisy answers (accuracy < 1) interleaved
// with more prunes, comparing strategy output against a from-scratch engine
// after every update.
func TestLiveNoisyReweightOnTombstonedArena(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		for _, m := range []uncertainty.Measure{uncertainty.Entropy{}, uncertainty.NewWeightedEntropy(0)} {
			h := newLiveHarness(t, 900+seed, 7, 3, m)
			rng := rand.New(rand.NewSource(seed))
			// Attach the engine, then tombstone some slots.
			h.checkStrategies(t, m.Name(), false)
			for i := 0; i < 2; i++ {
				if a, ok := pickRelevant(h.tree.LeafSet(), rng); ok {
					h.applyTrusted(t, a)
				}
			}
			h.checkStrategies(t, m.Name(), false)
			for round := 0; round < 6; round++ {
				a, ok := pickRelevant(h.tree.LeafSet(), rng)
				if !ok {
					break
				}
				if round%3 == 2 {
					// An answer against the heavier branch: the Bayesian
					// update then *raises* previously down-weighted leaves —
					// the contradicted-evidence shape.
					a.Yes = !a.Yes
					h.applyNoisy(t, a, 0.7)
				} else if round%2 == 0 {
					h.applyNoisy(t, a, 0.85)
				} else {
					h.applyTrusted(t, a)
				}
				h.checkStrategies(t, m.Name(), false)
			}
		}
	}
}

// TestLiveCompaction drives enough pruning answers through one engine to
// cross the tombstone-density threshold and verifies the compacted engine
// still matches a from-scratch build (and that compaction actually ran).
func TestLiveCompaction(t *testing.T) {
	before := LiveEngineStats()
	compacted := false
	for seed := int64(0); seed < 4 && !compacted; seed++ {
		h := newLiveHarness(t, 1100+seed, 8, 3, uncertainty.Entropy{})
		rng := rand.New(rand.NewSource(seed))
		for round := 0; round < 25; round++ {
			h.checkStrategies(t, "compact", false)
			a, ok := pickRelevant(h.tree.LeafSet(), rng)
			if !ok {
				break
			}
			h.applyTrusted(t, a)
			if LiveEngineStats().Compactions > before.Compactions {
				compacted = true
				h.checkStrategies(t, "post-compact", false)
				break
			}
		}
	}
	if !compacted {
		t.Fatal("no compaction triggered across all seeds")
	}
}

// TestLiveEngineRebuildsOnUnsyncedTree pins the safety net: when the tree
// changes without a Sync (an out-of-band prune), the held engine no longer
// matches the snapshot and engineFor must rebuild instead of serving stale
// state.
func TestLiveEngineRebuildsOnUnsyncedTree(t *testing.T) {
	h := newLiveHarness(t, 1300, 6, 3, uncertainty.Entropy{})
	h.checkStrategies(t, "attach", false)
	if h.le.eng == nil {
		t.Fatal("engine did not attach")
	}
	held := h.le.eng
	a, ok := pickRelevant(h.tree.LeafSet(), rand.New(rand.NewSource(1)))
	if !ok {
		t.Fatal("no relevant question")
	}
	if err := h.tree.Prune(a); err != nil { // deliberately no Sync
		t.Fatal(err)
	}
	h.checkStrategies(t, "unsynced", false)
	if h.le.eng == held {
		t.Fatal("engineFor reused a stale engine after an unsynced tree change")
	}
}

// TestLiveEngineInvalidate pins that Invalidate drops the held engine and
// the next round re-attaches a fresh one with correct output.
func TestLiveEngineInvalidate(t *testing.T) {
	h := newLiveHarness(t, 1400, 6, 3, uncertainty.Entropy{})
	h.checkStrategies(t, "attach", false)
	if h.le.eng == nil {
		t.Fatal("engine did not attach")
	}
	h.le.Invalidate()
	if h.le.eng != nil || h.le.snap != nil {
		t.Fatal("Invalidate left state behind")
	}
	h.checkStrategies(t, "reattached", false)
	if h.le.eng == nil {
		t.Fatal("engine did not re-attach after Invalidate")
	}
}

// TestLiveEngineORABypass pins the measure gate: ORA's aggregation input is
// not tombstone-transparent, so a live context under ORA must bypass the
// held engine (never attach) while still returning correct batches.
func TestLiveEngineORABypass(t *testing.T) {
	m := uncertainty.ORA{Penalty: rank.DefaultPenalty, Footrule: true}
	h := newLiveHarness(t, 1500, 6, 3, m)
	rng := rand.New(rand.NewSource(2))
	for round := 0; round < 3; round++ {
		h.checkStrategies(t, "ORA", false)
		if h.le.eng != nil {
			t.Fatal("live engine attached under a tombstone-unsafe measure")
		}
		a, ok := pickRelevant(h.tree.LeafSet(), rng)
		if !ok {
			break
		}
		h.applyTrusted(t, a)
	}
}

// TestLiveSyncNoEngineIsNoop pins the steady-state cost contract: Sync on a
// detached engine does nothing (no snapshot is even taken).
func TestLiveSyncNoEngineIsNoop(t *testing.T) {
	h := newLiveHarness(t, 1600, 6, 3, uncertainty.Entropy{})
	a, ok := pickRelevant(h.tree.LeafSet(), rand.New(rand.NewSource(3)))
	if !ok {
		t.Fatal("no relevant question")
	}
	h.applyTrusted(t, a) // no engine held yet
	if h.le.snap != nil {
		t.Fatal("Sync snapshotted the tree with no engine attached")
	}
	h.checkStrategies(t, "post-noop", false)
}
