package selection

import (
	"math/rand"
	"testing"

	"crowdtopk/internal/numeric"
	"crowdtopk/internal/rank"
	"crowdtopk/internal/tpo"
	"crowdtopk/internal/uncertainty"
)

func TestRandomSelectsFromAllPairs(t *testing.T) {
	tree := buildTestTree(t, 10, 5, 3)
	ls := tree.LeafSet()
	r := NewRandom(rand.New(rand.NewSource(1)))
	qs, err := r.SelectBatch(ls, 4, ctxFor(tree, uncertainty.Entropy{}))
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 4 {
		t.Fatalf("got %d questions, want 4", len(qs))
	}
	seen := map[tpo.Question]bool{}
	for _, q := range qs {
		if seen[q] {
			t.Fatalf("duplicate question %v", q)
		}
		seen[q] = true
	}
}

func TestRandomBudgetBeyondPairs(t *testing.T) {
	tree := buildTestTree(t, 11, 4, 2)
	ls := tree.LeafSet()
	r := NewRandom(rand.New(rand.NewSource(2)))
	qs, err := r.SelectBatch(ls, 1000, ctxFor(tree, uncertainty.Entropy{}))
	if err != nil {
		t.Fatal(err)
	}
	n := len(ls.Tuples())
	if len(qs) != n*(n-1)/2 {
		t.Fatalf("got %d questions, want all %d pairs", len(qs), n*(n-1)/2)
	}
}

func TestNaiveSelectsOnlyRelevant(t *testing.T) {
	tree := buildTestTree(t, 12, 5, 3)
	ls := tree.LeafSet()
	relevant := map[tpo.Question]bool{}
	for _, q := range ls.RelevantQuestions() {
		relevant[q] = true
	}
	nv := NewNaive(rand.New(rand.NewSource(3)))
	qs, err := nv.SelectBatch(ls, len(relevant)+10, ctxFor(tree, uncertainty.Entropy{}))
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != len(relevant) {
		t.Fatalf("naive returned %d questions, want |Q_K| = %d", len(qs), len(relevant))
	}
	for _, q := range qs {
		if !relevant[q] {
			t.Fatalf("naive selected irrelevant question %v", q)
		}
	}
}

func TestTBOffReturnsLowestResidualQuestions(t *testing.T) {
	tree := buildTestTree(t, 13, 5, 3)
	ls := tree.LeafSet()
	ctx := ctxFor(tree, uncertainty.Entropy{})
	batch, err := (TBOff{}).SelectBatch(ls, 3, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 3 {
		t.Fatalf("batch size %d", len(batch))
	}
	// Every selected question's residual must be <= every unselected one's.
	qs, rs := QuestionResiduals(ls, ctx)
	inBatch := map[tpo.Question]bool{}
	for _, q := range batch {
		inBatch[q] = true
	}
	maxSel := 0.0
	for i, q := range qs {
		if inBatch[q] && rs[i] > maxSel {
			maxSel = rs[i]
		}
	}
	for i, q := range qs {
		if !inBatch[q] && rs[i] < maxSel-1e-9 {
			t.Fatalf("unselected %v has residual %g below selected max %g", q, rs[i], maxSel)
		}
	}
}

func TestCOffAtLeastAsGoodAsTBOffBatch(t *testing.T) {
	// C-off conditions each pick on the previous ones, so the joint batch
	// value should never be worse than TB-off's independent picks.
	tree := buildTestTree(t, 14, 6, 3)
	ls := tree.LeafSet()
	ctx := ctxFor(tree, uncertainty.Entropy{})
	tb, err := (TBOff{}).SelectBatch(ls, 3, ctx)
	if err != nil {
		t.Fatal(err)
	}
	co, err := (COff{}).SelectBatch(ls, 3, ctx)
	if err != nil {
		t.Fatal(err)
	}
	vTB := BatchValue(ls, tb, ctx)
	vCO := BatchValue(ls, co, ctx)
	if vCO > vTB+1e-9 {
		t.Fatalf("C-off batch value %g worse than TB-off %g", vCO, vTB)
	}
}

func TestCOffNoDuplicates(t *testing.T) {
	tree := buildTestTree(t, 15, 5, 3)
	ls := tree.LeafSet()
	ctx := ctxFor(tree, uncertainty.Entropy{})
	batch, err := (COff{}).SelectBatch(ls, 5, ctx)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[tpo.Question]bool{}
	for _, q := range batch {
		if seen[q] {
			t.Fatalf("duplicate %v in C-off batch", q)
		}
		seen[q] = true
	}
}

func TestT1OnPicksGloballyBestSingleQuestion(t *testing.T) {
	tree := buildTestTree(t, 16, 5, 3)
	ls := tree.LeafSet()
	ctx := ctxFor(tree, uncertainty.Entropy{})
	q, ok, err := (T1On{}).NextQuestion(ls, 10, ctx)
	if err != nil || !ok {
		t.Fatalf("NextQuestion: %v ok=%v", err, ok)
	}
	rQ := ExpectedResidual(ls, []tpo.Question{q}, ctx)
	qs, rs := QuestionResiduals(ls, ctx)
	for i := range qs {
		if rs[i] < rQ-1e-9 {
			t.Fatalf("T1-on picked %v (R=%g) but %v has R=%g", q, rQ, qs[i], rs[i])
		}
	}
}

func TestT1OnTerminatesOnCertainTree(t *testing.T) {
	tree := buildTestTree(t, 17, 4, 3)
	// Prune down to a single ordering using perfect answers.
	ls := tree.LeafSet()
	target := ls.Paths[ls.MostProbable()]
	for _, q := range ls.RelevantQuestions() {
		yes := target.Before(q.I, q.J) >= 0
		if err := tree.Prune(tpo.Answer{Q: q, Yes: yes}); err != nil {
			t.Fatal(err)
		}
		ls = tree.LeafSet()
		if len(ls.RelevantQuestions()) == 0 {
			break
		}
	}
	_, ok, err := (T1On{}).NextQuestion(tree.LeafSet(), 5, ctxFor(tree, uncertainty.Entropy{}))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("T1-on should report no questions on a certain tree")
	}
}

func TestNegativeBudgetRejected(t *testing.T) {
	tree := buildTestTree(t, 18, 4, 2)
	ls := tree.LeafSet()
	ctx := ctxFor(tree, uncertainty.Entropy{})
	offlines := []Offline{NewRandom(rand.New(rand.NewSource(1))), NewNaive(rand.New(rand.NewSource(1))), TBOff{}, COff{}, AStarOff{}, Exhaustive{}}
	for _, s := range offlines {
		if _, err := s.SelectBatch(ls, -1, ctx); err == nil {
			t.Errorf("%s accepted negative budget", s.Name())
		}
	}
}

func TestStrategyNames(t *testing.T) {
	names := map[string]bool{}
	for _, s := range []interface{ Name() string }{
		NewRandom(nil), NewNaive(nil), TBOff{}, COff{}, T1On{}, AStarOff{}, AStarOn{}, Exhaustive{},
	} {
		n := s.Name()
		if n == "" || names[n] {
			t.Fatalf("empty or duplicate strategy name %q", n)
		}
		names[n] = true
	}
}

func TestZeroBudgetReturnsEmpty(t *testing.T) {
	tree := buildTestTree(t, 19, 4, 2)
	ls := tree.LeafSet()
	ctx := ctxFor(tree, uncertainty.Entropy{})
	for _, s := range []Offline{TBOff{}, COff{}, AStarOff{}, Exhaustive{}} {
		qs, err := s.SelectBatch(ls, 0, ctx)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if len(qs) != 0 {
			t.Fatalf("%s returned %d questions for zero budget", s.Name(), len(qs))
		}
	}
}

func TestSelectionImprovesOverNaiveInExpectation(t *testing.T) {
	// The informed strategies must produce batches with lower expected
	// residual uncertainty than a random relevant batch of the same size.
	tree := buildTestTree(t, 20, 6, 3)
	ls := tree.LeafSet()
	ctx := ctxFor(tree, uncertainty.Entropy{})
	const b = 3
	naiveAvg := 0.0
	rng := rand.New(rand.NewSource(77))
	const trials = 20
	for i := 0; i < trials; i++ {
		batch, err := NewNaive(rng).SelectBatch(ls, b, ctx)
		if err != nil {
			t.Fatal(err)
		}
		naiveAvg += BatchValue(ls, batch, ctx)
	}
	naiveAvg /= trials
	for _, s := range []Offline{TBOff{}, COff{}} {
		batch, err := s.SelectBatch(ls, b, ctx)
		if err != nil {
			t.Fatal(err)
		}
		if v := BatchValue(ls, batch, ctx); v > naiveAvg+1e-9 {
			t.Errorf("%s batch value %g worse than naive average %g", s.Name(), v, naiveAvg)
		}
	}
}

func TestTBOffDeterministic(t *testing.T) {
	tree := buildTestTree(t, 21, 5, 3)
	ls := tree.LeafSet()
	ctx := ctxFor(tree, uncertainty.Entropy{})
	a, err := (TBOff{}).SelectBatch(ls, 4, ctx)
	if err != nil {
		t.Fatal(err)
	}
	b, err := (TBOff{}).SelectBatch(ls, 4, ctx)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic TB-off: %v vs %v", a, b)
		}
	}
}

func TestMeasureChoiceChangesSelection(t *testing.T) {
	// Deterministic check that the measure is actually wired into
	// selection: sweep crafted leaf sets over the 6 permutations of three
	// tuples and require at least one weight configuration where the
	// entropy-optimal and MPO-optimal first questions differ.
	perms := []rank.Ordering{
		{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0},
	}
	ctxWith := func(m uncertainty.Measure) *Context {
		return &Context{
			Measure:  m,
			PairProb: func(i, j int) float64 { return 0.5 },
		}
	}
	differs := false
	for a := 1; a <= 5 && !differs; a++ {
		for b := 1; b <= 5 && !differs; b++ {
			ws := []float64{float64(a), 1, float64(b), 1, 2, float64(a + b)}
			numeric.Normalize(ws)
			ls := &tpo.LeafSet{K: 3, Paths: perms, W: ws}
			qsH, rsH := QuestionResiduals(ls, ctxWith(uncertainty.Entropy{}))
			qsM, rsM := QuestionResiduals(ls, ctxWith(uncertainty.MPO{}))
			if len(qsH) == 0 || len(qsM) == 0 {
				continue
			}
			qH, _ := bestQuestion(qsH, rsH)
			qM, _ := bestQuestion(qsM, rsM)
			if qH != qM {
				differs = true
			}
		}
	}
	if !differs {
		t.Fatal("entropy- and MPO-driven selection agreed on every configuration; measures likely not wired into selection")
	}
}

func TestNumericSanityOfResidualsAcrossMeasures(t *testing.T) {
	tree := buildTestTree(t, 22, 5, 3)
	ls := tree.LeafSet()
	for _, name := range []string{"H", "Hw", "ORA", "MPO"} {
		m, err := uncertainty.New(name)
		if err != nil {
			t.Fatal(err)
		}
		ctx := ctxFor(tree, m)
		qs, rs := QuestionResiduals(ls, ctx)
		for i, r := range rs {
			if r < 0 || numeric.AlmostEqual(r, -1, 0) {
				t.Fatalf("%s: negative residual %g for %v", name, r, qs[i])
			}
		}
	}
}

// TestRandomFullShuffleMatchesHistoricalOrder pins that a budget covering
// every pair reproduces the exact pre-partial-Fisher–Yates draw sequence: a
// full materialization shuffled with rng.Shuffle from the same seed.
func TestRandomFullShuffleMatchesHistoricalOrder(t *testing.T) {
	tree := buildTestTree(t, 12, 5, 3)
	ls := tree.LeafSet()
	qs, err := NewRandom(rand.New(rand.NewSource(7))).SelectBatch(ls, 1_000, ctxFor(tree, uncertainty.Entropy{}))
	if err != nil {
		t.Fatal(err)
	}
	tuples := ls.Tuples()
	var want []tpo.Question
	for a := 0; a < len(tuples); a++ {
		for b := a + 1; b < len(tuples); b++ {
			want = append(want, tpo.NewQuestion(tuples[a], tuples[b]))
		}
	}
	rng := rand.New(rand.NewSource(7))
	rng.Shuffle(len(want), func(i, j int) { want[i], want[j] = want[j], want[i] })
	if len(qs) != len(want) {
		t.Fatalf("got %d questions, want %d", len(qs), len(want))
	}
	for i := range qs {
		if qs[i] != want[i] {
			t.Fatalf("question %d = %v, historical shuffle has %v", i, qs[i], want[i])
		}
	}
}

// TestRandomPartialSampleProperties pins the partial Fisher–Yates path:
// deterministic per seed, duplicate-free, drawn from the full pair set, and
// covering every pair across enough seeds (no silently unreachable pairs).
func TestRandomPartialSampleProperties(t *testing.T) {
	tree := buildTestTree(t, 13, 6, 3)
	ls := tree.LeafSet()
	tuples := ls.Tuples()
	all := map[tpo.Question]bool{}
	for a := 0; a < len(tuples); a++ {
		for b := a + 1; b < len(tuples); b++ {
			all[tpo.NewQuestion(tuples[a], tuples[b])] = true
		}
	}
	covered := map[tpo.Question]bool{}
	for seed := int64(0); seed < 200; seed++ {
		qs, err := NewRandom(rand.New(rand.NewSource(seed))).SelectBatch(ls, 5, ctxFor(tree, uncertainty.Entropy{}))
		if err != nil {
			t.Fatal(err)
		}
		again, err := NewRandom(rand.New(rand.NewSource(seed))).SelectBatch(ls, 5, ctxFor(tree, uncertainty.Entropy{}))
		if err != nil {
			t.Fatal(err)
		}
		if len(qs) != 5 || len(again) != 5 {
			t.Fatalf("seed %d: got %d/%d questions, want 5", seed, len(qs), len(again))
		}
		seen := map[tpo.Question]bool{}
		for i, q := range qs {
			if q != again[i] {
				t.Fatalf("seed %d: non-deterministic draw %v vs %v", seed, q, again[i])
			}
			if seen[q] {
				t.Fatalf("seed %d: duplicate question %v", seed, q)
			}
			if !all[q] {
				t.Fatalf("seed %d: question %v outside the pair set", seed, q)
			}
			seen[q] = true
			covered[q] = true
		}
	}
	if len(covered) != len(all) {
		t.Fatalf("200 seeds covered %d of %d pairs", len(covered), len(all))
	}
}
