package selection

import (
	"testing"

	"crowdtopk/internal/rank"
	"crowdtopk/internal/tpo"
)

// TestTheorem31NoDeterministicAlgorithmIsOptimal demonstrates the paper's
// Theorem 3.1 on a concrete instance: whichever question a deterministic
// uncertainty-reduction algorithm asks first, there is a world (an answer
// pattern) in which a different first question would have resolved the tree
// with strictly fewer total questions. Optimality (always asking a minimal
// sequence) is therefore unattainable, which is why the paper targets
// expected uncertainty reduction instead.
func TestTheorem31NoDeterministicAlgorithmIsOptimal(t *testing.T) {
	// Three orderings over {0,1,2} with K = 2:
	//   ω1 = [0,1], ω2 = [1,0], ω3 = [2,0].
	// Question (0,1) splits {ω1} | {ω2, ω3}... verify via the machinery.
	ls := &tpo.LeafSet{
		K:     2,
		Paths: []rank.Ordering{{0, 1}, {1, 0}, {2, 0}},
		W:     []float64{1.0 / 3, 1.0 / 3, 1.0 / 3},
	}
	// minQuestionsFrom returns, for a starting question q and each of its
	// answers, the minimum number of further questions needed to reach a
	// single ordering (computed exhaustively).
	var solve func(cur *tpo.LeafSet) int
	solve = func(cur *tpo.LeafSet) int {
		if cur.Len() <= 1 {
			return 0
		}
		best := 1 << 20
		for _, q := range cur.RelevantQuestions() {
			yes, no := cur.Split(q, 0.5)
			worst := 0
			for _, side := range []*tpo.LeafSet{yes, no} {
				if side.Mass() == 0 {
					continue
				}
				if n := solve(side.Normalized()); n > worst {
					worst = n
				}
			}
			if 1+worst < best {
				best = 1 + worst
			}
		}
		return best
	}

	// For every possible deterministic first choice, find the worst-case
	// number of questions; compare with the hindsight optimum per world.
	type outcome struct {
		q     tpo.Question
		worst int
	}
	var outcomes []outcome
	for _, q := range ls.RelevantQuestions() {
		yes, no := ls.Split(q, 0.5)
		worst := 0
		for _, side := range []*tpo.LeafSet{yes, no} {
			if side.Mass() == 0 {
				continue
			}
			if n := solve(side.Normalized()); n > worst {
				worst = n
			}
		}
		outcomes = append(outcomes, outcome{q, 1 + worst})
	}
	if len(outcomes) < 2 {
		t.Fatalf("instance too small to demonstrate the theorem: %v", outcomes)
	}
	// The hindsight optimum for each single world: some ordering can be
	// isolated in 1 question (e.g. answering (0,1) with "yes" leaves ω1
	// alone when ω2, ω3 are pruned)…
	bestWorst := outcomes[0].worst
	for _, o := range outcomes {
		if o.worst < bestWorst {
			bestWorst = o.worst
		}
	}
	// …but NO first question achieves worst-case 1: every deterministic
	// choice has a world requiring at least 2 questions, while for every
	// world there exists a (different) 1-question resolution of at least
	// one answer branch. Hence no deterministic algorithm always asks a
	// minimal sequence.
	if bestWorst < 2 {
		t.Fatalf("expected every first question to have a ≥2-question worst case, got %v", outcomes)
	}
	oneShotExists := false
	for _, q := range ls.RelevantQuestions() {
		yes, no := ls.Split(q, 0.5)
		if (yes.Len() == 1 && yes.Mass() > 0) || (no.Len() == 1 && no.Mass() > 0) {
			oneShotExists = true
		}
	}
	if !oneShotExists {
		t.Fatal("expected some answer branch to resolve in one question")
	}
}
