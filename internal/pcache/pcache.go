// Package pcache is a process-wide, concurrency-safe cache of the pairwise
// order probabilities π_ij = Pr(s_i > s_j) computed by dist.ProbGreater.
//
// π_ij values are consumed everywhere: TPO leaf splitting, the expected
// residual sweeps of every selection strategy, and the Bayesian answer model
// for noisy crowds. A single experiment sweep asks for the same pairs
// thousands of times, and repeated trials over the same dataset re-ask them
// across tree rebuilds. Because distributions are immutable after
// construction, a probability keyed by the identity of the two distribution
// values can be computed once per process and shared by every tree, strategy
// and goroutine.
//
// The cache stores both directions of a pair on first computation (π_ji is
// the complement 1−π_ij, the same identity tree-level callers have always
// used), so a flipped lookup is a hit. All operations are safe for
// concurrent use; duplicated computation under a race is benign because
// dist.ProbGreater is deterministic.
package pcache

import (
	"sync"
	"sync/atomic"

	"crowdtopk/internal/dist"
)

// maxEntries bounds the number of cached pairs. Note the bound is on entry
// count, not bytes: a key pins its two distributions, so an entry can keep a
// histogram's edge/weight slices reachable after the dataset is dropped.
// When a process churns through more distinct pairs than this (only
// plausible for a long-lived service re-reading or re-conditioning many
// datasets), the cache is cleared wholesale rather than evicted piecemeal —
// correctness never depends on a value being present, and the active
// dataset re-populates its pairs on the next sweep.
const maxEntries = 1 << 20

var (
	cache   sync.Map // pairKey -> float64
	entries atomic.Int64
	hits    atomic.Int64
	misses  atomic.Int64
	resets  atomic.Int64
	resetMu sync.Mutex
)

// pairKey identifies an ordered distribution pair. Distribution
// implementations are pointer types, so interface equality is pointer
// identity and keys are cheaply comparable.
type pairKey struct {
	a, b dist.Distribution
}

// ProbGreater returns Pr(A > B) for independent scores A ~ a and B ~ b,
// memoizing the result (and its complement for the flipped pair) across the
// whole process. Values are exactly those of dist.ProbGreater for the (a, b)
// orientation actually computed first; the flipped orientation returns the
// complement, matching the symmetry convention used by tree-level callers.
func ProbGreater(a, b dist.Distribution) float64 {
	k := pairKey{a, b}
	if v, ok := cache.Load(k); ok {
		hits.Add(1)
		return v.(float64)
	}
	misses.Add(1)
	p := dist.ProbGreater(a, b)
	store(k, p)
	if a != b {
		store(pairKey{b, a}, 1-p)
	}
	return p
}

func store(k pairKey, p float64) {
	if _, loaded := cache.LoadOrStore(k, p); !loaded {
		if entries.Add(1) > maxEntries {
			Reset()
		}
	}
}

// Reset empties the cache and zeroes the hit/miss/entry statistics. It runs
// both on demand (tests, long-lived processes switching workloads) and
// wholesale when the entry bound is exceeded; each call bumps the
// process-cumulative Resets counter so deployments can observe cache churn
// against the maxEntries clearing behavior.
func Reset() {
	resetMu.Lock()
	defer resetMu.Unlock()
	cache.Range(func(k, _ any) bool {
		cache.Delete(k)
		return true
	})
	entries.Store(0)
	hits.Store(0)
	misses.Store(0)
	resets.Add(1)
}

// Snapshot is a point-in-time view of the cache counters. Hits, Misses and
// Entries count since the last Reset; Resets counts every wholesale clear
// (explicit or maxEntries-triggered) since process start.
type Snapshot struct {
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	Entries int64 `json:"entries"`
	Resets  int64 `json:"resets"`
}

// Stats reports the cache counters — exposed so tests can assert that
// repeated sweeps stop re-integrating pairs, and surfaced by the serving
// layer's stats endpoint so long-running deployments can watch churn.
func Stats() Snapshot {
	return Snapshot{
		Hits:    hits.Load(),
		Misses:  misses.Load(),
		Entries: entries.Load(),
		Resets:  resets.Load(),
	}
}
