// Package pcache is a process-wide, concurrency-safe cache of the pairwise
// order probabilities π_ij = Pr(s_i > s_j) computed by dist.ProbGreater.
//
// π_ij values are consumed everywhere: TPO leaf splitting, the expected
// residual sweeps of every selection strategy, and the Bayesian answer model
// for noisy crowds. A single experiment sweep asks for the same pairs
// thousands of times, and repeated trials over the same dataset re-ask them
// across tree rebuilds. Because distributions are immutable after
// construction, a probability keyed by the identity of the two distribution
// values can be computed once per process and shared by every tree, strategy
// and goroutine.
//
// The cache stores both directions of a pair on first computation (π_ji is
// the complement 1−π_ij, the same identity tree-level callers have always
// used), so a flipped lookup is a hit. All operations are safe for
// concurrent use; duplicated computation under a race is benign because
// dist.ProbGreater is deterministic.
package pcache

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"crowdtopk/internal/dist"
	"crowdtopk/internal/par"
)

// maxEntries bounds the number of cached pairs. Note the bound is on entry
// count, not bytes: a key pins its two distributions, so an entry can keep a
// histogram's edge/weight slices reachable after the dataset is dropped.
// When a process churns through more distinct pairs than this (only
// plausible for a long-lived service re-reading or re-conditioning many
// datasets), the cache is cleared wholesale rather than evicted piecemeal —
// correctness never depends on a value being present, and the active
// dataset re-populates its pairs on the next sweep.
const maxEntries = 1 << 20

var (
	cache   sync.Map // pairKey -> float64
	entries atomic.Int64
	hits    atomic.Int64
	misses  atomic.Int64
	resets  atomic.Int64
	resetMu sync.Mutex

	// Prewarm telemetry: process-cumulative (like resets, surviving Reset)
	// so served cold-starts stay diagnosable across workload switches.
	prewarmPairs atomic.Int64
	prewarmNanos atomic.Int64
)

// pairKey identifies an ordered distribution pair. Distribution
// implementations are pointer types, so interface equality is pointer
// identity and keys are cheaply comparable.
type pairKey struct {
	a, b dist.Distribution
}

// ProbGreater returns Pr(A > B) for independent scores A ~ a and B ~ b,
// memoizing the result (and its complement for the flipped pair) across the
// whole process. Values are exactly those of dist.ProbGreater for the (a, b)
// orientation actually computed first; the flipped orientation returns the
// complement, matching the symmetry convention used by tree-level callers.
func ProbGreater(a, b dist.Distribution) float64 {
	k := pairKey{a, b}
	if v, ok := cache.Load(k); ok {
		hits.Add(1)
		return v.(float64)
	}
	misses.Add(1)
	p := dist.ProbGreater(a, b)
	store(k, p)
	if a != b {
		store(pairKey{b, a}, 1-p)
	}
	return p
}

func store(k pairKey, p float64) {
	if _, loaded := cache.LoadOrStore(k, p); !loaded {
		if entries.Add(1) > maxEntries {
			Reset()
		}
	}
}

// Reset empties the cache and zeroes the hit/miss/entry statistics. It runs
// both on demand (tests, long-lived processes switching workloads) and
// wholesale when the entry bound is exceeded; each call bumps the
// process-cumulative Resets counter so deployments can observe cache churn
// against the maxEntries clearing behavior.
func Reset() {
	resetMu.Lock()
	defer resetMu.Unlock()
	cache.Range(func(k, _ any) bool {
		cache.Delete(k)
		return true
	})
	entries.Store(0)
	hits.Store(0)
	misses.Store(0)
	resets.Add(1)
}

// Prewarm bulk-fills the cache with π for every pair of dists (both
// orientations, as ProbGreater stores them), fanning the integrations across
// up to `workers` goroutines (< 1 selects GOMAXPROCS, clamped to the pair
// count). The serving layer calls it at
// session creation so the first residual sweep of a cold dataset finds every
// pair hot. It returns the number of pairs actually computed — already-warm
// pairs cost one cache hit. Fill time and pair counts accumulate into the
// Snapshot telemetry.
func Prewarm(dists []dist.Distribution, workers int) (computed int) {
	n := len(dists)
	if n < 2 {
		return 0
	}
	// A fill that cannot fit would cross maxEntries mid-way and trigger the
	// wholesale clear — paying the full O(n²) integration cost only to leave
	// the cache mostly empty. Skip it (and leave the telemetry untouched);
	// the sweeps populate the pairs they actually use organically.
	if pairs := n * (n - 1); pairs > maxEntries { // both orientations stored
		return 0
	}
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	start := time.Now()
	type pair struct{ a, b dist.Distribution }
	pairs := make([]pair, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pairs = append(pairs, pair{dists[i], dists[j]})
		}
	}
	var fresh atomic.Int64
	par.For(len(pairs), workers, func(_, p int) error {
		if _, ok := cache.Load(pairKey{pairs[p].a, pairs[p].b}); !ok {
			fresh.Add(1)
		}
		ProbGreater(pairs[p].a, pairs[p].b)
		return nil
	})
	prewarmPairs.Add(int64(len(pairs)))
	prewarmNanos.Add(time.Since(start).Nanoseconds())
	return int(fresh.Load())
}

// Snapshot is a point-in-time view of the cache counters. Hits, Misses and
// Entries count since the last Reset; Resets and the Prewarm counters are
// process-cumulative. HitRate is the cumulative Hits/(Hits+Misses) since the
// last Reset (0 before any lookup) — a lifetime average that stops moving on
// a long-lived process no matter what the cache is doing now; WindowStats
// reports the rate over a recent interval instead.
type Snapshot struct {
	Hits         int64   `json:"hits"`
	Misses       int64   `json:"misses"`
	Entries      int64   `json:"entries"`
	Resets       int64   `json:"resets"`
	HitRate      float64 `json:"hit_rate"`
	PrewarmPairs int64   `json:"prewarm_pairs"`
	PrewarmNanos int64   `json:"prewarm_ns"`
}

// Stats reports the cache counters — exposed so tests can assert that
// repeated sweeps stop re-integrating pairs, and surfaced by the serving
// layer's stats endpoint so long-running deployments can watch churn and
// diagnose cold-start fill cost.
func Stats() Snapshot {
	s := Snapshot{
		Hits:         hits.Load(),
		Misses:       misses.Load(),
		Entries:      entries.Load(),
		Resets:       resets.Load(),
		PrewarmPairs: prewarmPairs.Load(),
		PrewarmNanos: prewarmNanos.Load(),
	}
	if total := s.Hits + s.Misses; total > 0 {
		s.HitRate = float64(s.Hits) / float64(total)
	}
	return s
}

// Window state: the counter values the previous WindowStats call observed.
var (
	windowMu   sync.Mutex
	lastHits   int64
	lastMisses int64
	lastResets int64
)

// WindowSnapshot reports cache traffic over one observation window: the
// interval between two consecutive WindowStats calls. HitRate here is the
// rate for that interval only, 0 when the window saw no lookups.
type WindowSnapshot struct {
	Hits    int64   `json:"hits"`
	Misses  int64   `json:"misses"`
	HitRate float64 `json:"hit_rate"`
}

// WindowStats returns the hit/miss deltas since the previous WindowStats
// call and starts the next window. Unlike the cumulative Snapshot.HitRate —
// which a long warm stretch pins near 1 (or a cold rebuild near 0) forever —
// the windowed rate tracks what the cache is doing now, so a deployment
// watching /v1/stats sees churn when it happens. The window is process-global
// (one cursor, like the cache itself): concurrent observers each get the
// interval since whoever called last. If Reset ran inside the window the
// cumulative counters restarted, so the window restarts from zero too rather
// than reporting negative deltas.
func WindowStats() WindowSnapshot {
	windowMu.Lock()
	defer windowMu.Unlock()
	h, m, r := hits.Load(), misses.Load(), resets.Load()
	var w WindowSnapshot
	if r == lastResets && h >= lastHits && m >= lastMisses {
		w.Hits, w.Misses = h-lastHits, m-lastMisses
	} else {
		// A Reset landed inside the window; everything counted since it is
		// the best available approximation of the window's traffic.
		w.Hits, w.Misses = h, m
	}
	lastHits, lastMisses, lastResets = h, m, r
	if total := w.Hits + w.Misses; total > 0 {
		w.HitRate = float64(w.Hits) / float64(total)
	}
	return w
}
