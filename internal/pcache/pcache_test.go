package pcache

import (
	"sync"
	"testing"

	"crowdtopk/internal/dist"
)

func mustUniform(t *testing.T, lo, hi float64) dist.Distribution {
	t.Helper()
	u, err := dist.NewUniform(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

// TestCachedEqualsUncached is the cache-correctness contract: a cached π_ij
// is bit-identical to the uncached dist.ProbGreater value, and the flipped
// orientation returns the exact complement.
func TestCachedEqualsUncached(t *testing.T) {
	Reset()
	pairs := [][2]dist.Distribution{
		{mustUniform(t, 0, 1), mustUniform(t, 0.5, 1.5)},
		{mustUniform(t, 0, 2), mustUniform(t, 1, 1.2)},
		{mustUniform(t, 0, 1), mustUniform(t, 2, 3)},
	}
	if g, err := dist.NewGaussian(0.3, 0.2); err == nil {
		pairs = append(pairs, [2]dist.Distribution{g, mustUniform(t, 0, 1)})
	}
	for i, pr := range pairs {
		want := dist.ProbGreater(pr[0], pr[1])
		if got := ProbGreater(pr[0], pr[1]); got != want {
			t.Errorf("pair %d: first lookup = %v, want uncached %v", i, got, want)
		}
		if got := ProbGreater(pr[0], pr[1]); got != want {
			t.Errorf("pair %d: cached lookup = %v, want %v", i, got, want)
		}
		if got := ProbGreater(pr[1], pr[0]); got != 1-want {
			t.Errorf("pair %d: flipped lookup = %v, want complement %v", i, got, 1-want)
		}
	}
	st := Stats()
	// Per pair: one miss, then one forward hit and one flipped hit; both
	// orientations are stored on the miss.
	if wantMisses := int64(len(pairs)); st.Misses != wantMisses {
		t.Errorf("misses = %d, want %d", st.Misses, wantMisses)
	}
	if wantHits := int64(2 * len(pairs)); st.Hits != wantHits {
		t.Errorf("hits = %d, want %d", st.Hits, wantHits)
	}
	if wantEntries := int64(2 * len(pairs)); st.Entries != wantEntries {
		t.Errorf("entries = %d, want %d", st.Entries, wantEntries)
	}
}

// TestSamePair: a distribution compared against itself keeps the exact
// ProbGreater convention (0.5) and does not corrupt the complement entry.
func TestSamePair(t *testing.T) {
	Reset()
	u := mustUniform(t, 0, 1)
	for i := 0; i < 3; i++ {
		if got := ProbGreater(u, u); got != 0.5 {
			t.Fatalf("ProbGreater(u, u) = %v, want 0.5", got)
		}
	}
}

// TestConcurrentAccess hammers one pair from many goroutines; run under
// -race this pins the concurrency-safety claim, and every goroutine must see
// the same value.
func TestConcurrentAccess(t *testing.T) {
	Reset()
	a, b := mustUniform(t, 0, 1), mustUniform(t, 0.3, 1.3)
	want := ProbGreater(a, b) // prime: fixes which orientation was computed
	var wg sync.WaitGroup
	errs := make(chan float64, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				// Both orientations; the flipped one must be the exact
				// stored complement (compare in the stored domain —
				// 1-(1-p) can re-round away from p).
				got, expect := ProbGreater(a, b), want
				if (g+i)%2 == 1 {
					got, expect = ProbGreater(b, a), 1-want
				}
				if got != expect {
					select {
					case errs <- got:
					default:
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for got := range errs {
		t.Fatalf("concurrent lookup = %v, want %v", got, want)
	}
}

// TestReset: statistics and entries drop to zero and the next lookup
// recomputes.
func TestReset(t *testing.T) {
	Reset()
	a, b := mustUniform(t, 0, 1), mustUniform(t, 0.2, 1.2)
	before := Stats().Resets
	ProbGreater(a, b)
	ProbGreater(a, b)
	Reset()
	st := Stats()
	if st.Hits != 0 || st.Misses != 0 || st.Entries != 0 {
		t.Fatalf("after Reset: %+v, want zero hits/misses/entries", st)
	}
	if st.Resets != before+1 {
		t.Fatalf("resets = %d, want %d (counter must survive Reset)", st.Resets, before+1)
	}
	ProbGreater(a, b)
	if st := Stats(); st.Misses != 1 {
		t.Fatalf("post-Reset lookup should recompute; misses = %d", st.Misses)
	}
}

// TestPrewarm: the bulk fill computes every pair once (both orientations
// stored), reports the fresh-pair count, accumulates cumulative telemetry,
// and turns subsequent lookups into pure hits.
func TestPrewarm(t *testing.T) {
	Reset()
	dists := []dist.Distribution{
		mustUniform(t, 0, 1),
		mustUniform(t, 0.3, 1.3),
		mustUniform(t, 0.6, 1.6),
		mustUniform(t, 0.9, 1.9),
	}
	pairsBefore := Stats().PrewarmPairs
	const pairs = 4 * 3 / 2
	if got := Prewarm(dists, 3); got != pairs {
		t.Fatalf("cold Prewarm computed %d pairs, want %d", got, pairs)
	}
	st := Stats()
	if st.Entries != 2*pairs {
		t.Fatalf("entries = %d, want %d (both orientations)", st.Entries, 2*pairs)
	}
	if st.PrewarmPairs != pairsBefore+pairs {
		t.Fatalf("prewarm pairs = %d, want %d", st.PrewarmPairs, pairsBefore+pairs)
	}
	if st.PrewarmNanos <= 0 {
		t.Fatal("prewarm fill time not recorded")
	}
	// A warm repeat computes nothing new.
	if got := Prewarm(dists, 0); got != 0 {
		t.Fatalf("warm Prewarm recomputed %d pairs, want 0", got)
	}
	missesBefore := Stats().Misses
	for i := range dists {
		for j := range dists {
			if i != j {
				ProbGreater(dists[i], dists[j])
			}
		}
	}
	st = Stats()
	if st.Misses != missesBefore {
		t.Fatalf("lookups after Prewarm missed (%d → %d misses)", missesBefore, st.Misses)
	}
	if st.HitRate <= 0 || st.HitRate > 1 {
		t.Fatalf("hit rate = %g, want in (0, 1]", st.HitRate)
	}
}

// TestPrewarmSkipsOversizedDatasets: a fill that cannot fit under
// maxEntries would clear itself mid-way; Prewarm must refuse it outright
// and leave the telemetry untouched.
func TestPrewarmSkipsOversizedDatasets(t *testing.T) {
	Reset()
	// 1025·1024 ordered pairs > maxEntries (1<<20).
	dists := make([]dist.Distribution, 1025)
	for i := range dists {
		dists[i] = mustUniform(t, float64(i), float64(i)+1)
	}
	before := Stats()
	if got := Prewarm(dists, 2); got != 0 {
		t.Fatalf("oversized Prewarm computed %d pairs, want 0 (skipped)", got)
	}
	after := Stats()
	if after.PrewarmPairs != before.PrewarmPairs || after.Entries != before.Entries {
		t.Fatalf("oversized Prewarm touched the cache: %+v → %+v", before, after)
	}
}

// TestWindowStats: the windowed rate reflects only the traffic between two
// WindowStats calls, where the cumulative Snapshot.HitRate keeps averaging
// over everything since Reset.
func TestWindowStats(t *testing.T) {
	Reset()
	a, b := mustUniform(t, 0, 1), mustUniform(t, 0.5, 1.5)
	WindowStats() // close out whatever earlier tests left in the window

	// Window 1: one miss (first lookup) + two hits.
	ProbGreater(a, b)
	ProbGreater(a, b)
	ProbGreater(b, a)
	w := WindowStats()
	if w.Misses != 1 || w.Hits != 2 {
		t.Fatalf("window 1 = %+v, want 2 hits / 1 miss", w)
	}
	if want := 2.0 / 3.0; w.HitRate != want {
		t.Fatalf("window 1 hit rate = %g, want %g", w.HitRate, want)
	}

	// Window 2: all hits. The cumulative rate still remembers the miss; the
	// window must not.
	for i := 0; i < 5; i++ {
		ProbGreater(a, b)
	}
	w = WindowStats()
	if w.Hits != 5 || w.Misses != 0 || w.HitRate != 1 {
		t.Fatalf("window 2 = %+v, want 5 hits / 0 misses / rate 1", w)
	}
	if cum := Stats().HitRate; cum >= 1 {
		t.Fatalf("cumulative rate = %g, should still count the window-1 miss", cum)
	}

	// An empty window reports zeros, not NaN.
	if w = WindowStats(); w.Hits != 0 || w.Misses != 0 || w.HitRate != 0 {
		t.Fatalf("empty window = %+v, want zeros", w)
	}

	// A Reset inside the window restarts the cursor instead of going
	// negative: only traffic after the Reset is reported.
	ProbGreater(a, b)
	Reset()
	ProbGreater(a, b) // miss again: the cache was cleared
	w = WindowStats()
	if w.Hits != 0 || w.Misses != 1 {
		t.Fatalf("window across Reset = %+v, want 0 hits / 1 miss", w)
	}
}
