package tpo

import (
	"fmt"
	"math/rand"

	"crowdtopk/internal/numeric"
	"crowdtopk/internal/rank"
)

// Stats summarizes the shape of a tree of possible orderings.
type Stats struct {
	// Depth is the materialized depth, K the target depth.
	Depth, K int
	// NodesPerLevel[d] counts nodes at depth d+1 (level 1 is the first
	// ranked position).
	NodesPerLevel []int
	// MeanBranching[d] is the average child count of level-d nodes
	// (d = 0 is the root).
	MeanBranching []float64
	// LevelEntropy[d] is the Shannon entropy (bits) of the aggregated
	// prefix distribution at depth d+1 — the per-level uncertainty profile
	// that the U_Hw measure weights.
	LevelEntropy []float64
	// Leaves is the number of possible orderings; Tuples the number of
	// distinct tuples appearing in the tree.
	Leaves, Tuples int
}

// ComputeStats walks the tree once and returns its shape summary.
//
// The per-level prefix distributions are aggregated by node identity: the
// children of a node carry distinct tuples, so each depth-l node terminates
// exactly one distinct length-l prefix and its subtree leaf mass is that
// prefix's aggregated weight. No per-prefix keys (previously O(K·leaves)
// fmt.Sprint allocations per call) are needed.
func (t *Tree) ComputeStats() Stats {
	st := Stats{Depth: t.depth, K: t.K}
	st.NodesPerLevel = make([]int, t.depth)
	childCount := make([]int, t.depth+1)  // children per level
	parentCount := make([]int, t.depth+1) // nodes with children per level
	levelMasses := make([][]float64, t.depth)
	var rec func(n *Node) float64
	rec = func(n *Node) float64 {
		if n.depth < t.depth {
			childCount[n.depth] += len(n.Children)
			parentCount[n.depth]++
		}
		var mass float64
		if n.depth == t.depth && n != t.Root {
			st.Leaves++
			mass = n.Prob
		}
		for _, c := range n.Children {
			mass += rec(c)
		}
		if n.Tuple >= 0 {
			st.NodesPerLevel[n.depth-1]++
			levelMasses[n.depth-1] = append(levelMasses[n.depth-1], mass)
		}
		return mass
	}
	rec(t.Root)
	st.MeanBranching = make([]float64, t.depth)
	for d := 0; d < t.depth; d++ {
		if parentCount[d] > 0 {
			st.MeanBranching[d] = float64(childCount[d]) / float64(parentCount[d])
		}
	}
	st.LevelEntropy = make([]float64, t.depth)
	for d, ws := range levelMasses {
		st.LevelEntropy[d] = numeric.EntropyBits(ws)
	}
	st.Tuples = len(t.Tuples())
	return st
}

// String implements fmt.Stringer.
func (s Stats) String() string {
	return fmt.Sprintf("tpo{depth %d/%d, leaves %d, tuples %d, nodes/level %v}",
		s.Depth, s.K, s.Leaves, s.Tuples, s.NodesPerLevel)
}

// SampleOrdering draws one ordering from the leaf distribution by inverse
// CDF over the (normalized) leaf weights. It is the Monte-Carlo counterpart
// of the exact machinery, used for cross-checks and downstream estimators.
func (ls *LeafSet) SampleOrdering(rng *rand.Rand) rank.Ordering {
	if ls.Len() == 0 {
		return nil
	}
	u := rng.Float64() * numeric.Sum(ls.W)
	acc := 0.0
	for i, w := range ls.W {
		acc += w
		if u <= acc {
			return ls.Paths[i].Clone()
		}
	}
	return ls.Paths[ls.Len()-1].Clone()
}

// TopKProbability returns, for each tuple, the probability that it appears
// anywhere in the top-K result — the per-tuple marginal applications often
// report alongside the ranking.
func (ls *LeafSet) TopKProbability() map[int]float64 {
	out := make(map[int]float64)
	for i, p := range ls.Paths {
		for _, id := range p {
			out[id] += ls.W[i]
		}
	}
	for id, v := range out {
		out[id] = numeric.Clamp(v, 0, 1)
	}
	return out
}

// RankProbability returns Pr(tuple id occupies rank r) for r in [0, K).
func (ls *LeafSet) RankProbability(id int) []float64 {
	out := make([]float64, ls.K)
	for i, p := range ls.Paths {
		for r, t := range p {
			if t == id && r < len(out) {
				out[r] += ls.W[i]
			}
		}
	}
	return out
}
