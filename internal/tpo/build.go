package tpo

import (
	"fmt"

	"crowdtopk/internal/dist"
	"crowdtopk/internal/numeric"
	"crowdtopk/internal/rank"
)

// BuildOptions configures TPO construction.
type BuildOptions struct {
	// GridSize is the number of points of the shared evaluation grid.
	// Zero selects DefaultGridSize.
	GridSize int
	// MaxLeaves aborts construction with ErrTooLarge when the number of
	// depth-K prefixes exceeds it. Zero selects DefaultMaxLeaves.
	MaxLeaves int
	// ProbEpsilon drops prefixes whose raw probability falls below it;
	// this bounds the tree by the numerically meaningful orderings.
	// Zero selects DefaultProbEpsilon.
	ProbEpsilon float64
}

// Defaults for BuildOptions.
const (
	DefaultGridSize    = 1024
	DefaultMaxLeaves   = 500_000
	DefaultProbEpsilon = 1e-9
)

func (o BuildOptions) withDefaults() BuildOptions {
	if o.GridSize == 0 {
		o.GridSize = DefaultGridSize
	}
	if o.MaxLeaves == 0 {
		o.MaxLeaves = DefaultMaxLeaves
	}
	if o.ProbEpsilon == 0 {
		o.ProbEpsilon = DefaultProbEpsilon
	}
	return o
}

// Build materializes the tree of possible orderings of the given score
// distributions down to depth k. The prefix probability of each node is the
// exact joint probability Pr(s_{t_1} > … > s_{t_d} > max of the rest),
// evaluated by chained cumulative integrals on a grid shared by all tuples:
//
//	P(prefix) = ∫ f_{t_d}(x) · C_{d−1}(x) · Π_{u∉prefix} F_u(x) dx
//	C_d(x)    = ∫_x^∞ f_{t_d}(y) · C_{d−1}(y) dy,   C_0 ≡ 1
//
// Leaf probabilities are renormalized to sum to one; the pre-normalization
// mass (≈1 up to quadrature error) is returned in the tree diagnostics.
func Build(ds []dist.Distribution, k int, opt BuildOptions) (*Tree, error) {
	t, err := prepare(ds, k, opt)
	if err != nil {
		return nil, err
	}
	t.opt = opt.withDefaults()
	b := newBuilder(t, t.opt)
	c0 := make([]float64, t.grid.Len())
	for i := range c0 {
		c0[i] = 1
	}
	if err := b.expand(t.Root, c0, allRemaining(len(ds)), k); err != nil {
		return nil, err
	}
	t.depth = k
	t.buildMass = t.LeafMass()
	if err := t.renormalize(); err != nil {
		return nil, fmt.Errorf("tpo: build produced no orderings: %w", err)
	}
	return t, nil
}

// BuildMass returns the unnormalized probability mass found by the last full
// Build — a quadrature diagnostic that should be within grid error of 1.
func (t *Tree) BuildMass() float64 { return t.buildMass }

// prepare validates inputs and precomputes the shared grid samples.
func prepare(ds []dist.Distribution, k int, opt BuildOptions) (*Tree, error) {
	if len(ds) == 0 {
		return nil, fmt.Errorf("%w: empty dataset", ErrInvalidInput)
	}
	if k < 1 || k > len(ds) {
		return nil, fmt.Errorf("%w: k=%d with %d tuples", ErrInvalidInput, k, len(ds))
	}
	opt = opt.withDefaults()
	grid, err := dist.SharedGrid(ds, opt.GridSize)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidInput, err)
	}
	for i, d := range ds {
		lo, hi := d.Support()
		if hi-lo < 2*grid.Step {
			return nil, fmt.Errorf("%w: tuple %d support [%g, %g] narrower than two grid steps; use a finer grid or a wider distribution", ErrInvalidInput, i, lo, hi)
		}
	}
	t := &Tree{
		Root:  &Node{Tuple: -1, Prob: 1},
		K:     k,
		Dists: ds,
		grid:  grid,
		pdfs:  make([][]float64, len(ds)),
		cdfs:  make([][]float64, len(ds)),
	}
	for i, d := range ds {
		t.pdfs[i] = grid.Sample(d.PDF)
		t.cdfs[i] = grid.Sample(d.CDF)
	}
	return t, nil
}

func allRemaining(n int) []int {
	r := make([]int, n)
	for i := range r {
		r[i] = i
	}
	return r
}

// builder carries per-depth scratch buffers so a full DFS allocates O(K·N·G)
// once instead of per node.
type builder struct {
	t       *Tree
	opt     BuildOptions
	leaves  int
	scratch []*depthScratch
}

type depthScratch struct {
	prefixProd [][]float64 // prefixProd[i] = Π_{j<i} F_{remaining[j]}
	suffixProd [][]float64 // suffixProd[i] = Π_{j>=i} F_{remaining[j]}
	integrand  []float64
	childC     []float64
}

func newBuilder(t *Tree, opt BuildOptions) *builder {
	return &builder{t: t, opt: opt}
}

func (b *builder) scratchAt(depth, nRemaining int) *depthScratch {
	for len(b.scratch) <= depth {
		b.scratch = append(b.scratch, &depthScratch{})
	}
	s := b.scratch[depth]
	g := b.t.grid.Len()
	for len(s.prefixProd) <= nRemaining {
		s.prefixProd = append(s.prefixProd, make([]float64, g))
		s.suffixProd = append(s.suffixProd, make([]float64, g))
	}
	if s.integrand == nil {
		s.integrand = make([]float64, g)
		s.childC = make([]float64, g)
	}
	return s
}

// expand grows the subtree under n (whose survival chain is c) with the
// remaining candidate tuples, down to depth k.
func (b *builder) expand(n *Node, c []float64, remaining []int, k int) error {
	g := b.t.grid
	gl := g.Len()
	s := b.scratchAt(n.depth, len(remaining))

	// Exclude-one CDF products over the remaining tuples.
	for i := 0; i < gl; i++ {
		s.prefixProd[0][i] = 1
		s.suffixProd[len(remaining)][i] = 1
	}
	for ri, id := range remaining {
		cdf := b.t.cdfs[id]
		pp, prev := s.prefixProd[ri+1], s.prefixProd[ri]
		for i := 0; i < gl; i++ {
			pp[i] = prev[i] * cdf[i]
		}
	}
	for ri := len(remaining) - 1; ri >= 0; ri-- {
		cdf := b.t.cdfs[remaining[ri]]
		sp, next := s.suffixProd[ri], s.suffixProd[ri+1]
		for i := 0; i < gl; i++ {
			sp[i] = next[i] * cdf[i]
		}
	}

	// Fast support filter: a candidate must be able to exceed every other
	// remaining tuple's lower bound.
	maxLo1, maxLo2 := maxTwoLowerBounds(b.t.Dists, remaining)

	loOwner := loBoundOwner(b.t.Dists, remaining)
	for ri, id := range remaining {
		_, hi := b.t.Dists[id].Support()
		bound := maxLo1
		if id == loOwner {
			bound = maxLo2
		}
		if hi <= bound {
			continue // cannot be the maximum of the remaining set
		}
		pdf := b.t.pdfs[id]
		for i := 0; i < gl; i++ {
			s.integrand[i] = pdf[i] * c[i] * s.prefixProd[ri][i] * s.suffixProd[ri+1][i]
		}
		p := g.Trapezoid(s.integrand)
		if p <= b.opt.ProbEpsilon {
			continue
		}
		child := &Node{Tuple: id, Prob: p, depth: n.depth + 1}
		n.Children = append(n.Children, child)
		if child.depth == k {
			b.leaves++
			if b.leaves > b.opt.MaxLeaves {
				return fmt.Errorf("%w: more than %d depth-%d prefixes", ErrTooLarge, b.opt.MaxLeaves, k)
			}
			continue
		}
		// Child survival chain: C'(x) = ∫_x^Hi f_id(y)·C(y) dy.
		// s.childC belongs to this depth's scratch: the recursive call only
		// writes scratch at deeper levels and returns before the next
		// sibling overwrites it, so no copy is needed.
		for i := 0; i < gl; i++ {
			s.childC[i] = pdf[i] * c[i]
		}
		g.CumTrapezoidRight(s.childC, s.childC)
		if err := b.expand(child, s.childC, excluding(remaining, ri), k); err != nil {
			return err
		}
	}
	return nil
}

// maxTwoLowerBounds returns the largest and second-largest support lower
// bounds among the remaining tuples.
func maxTwoLowerBounds(ds []dist.Distribution, remaining []int) (float64, float64) {
	m1, m2 := negInf(), negInf()
	for _, id := range remaining {
		lo, _ := ds[id].Support()
		if lo > m1 {
			m2 = m1
			m1 = lo
		} else if lo > m2 {
			m2 = lo
		}
	}
	return m1, m2
}

// loBoundOwner returns the id of the remaining tuple holding the largest
// lower bound (first on ties).
func loBoundOwner(ds []dist.Distribution, remaining []int) int {
	best, owner := negInf(), -1
	for _, id := range remaining {
		lo, _ := ds[id].Support()
		if lo > best {
			best, owner = lo, id
		}
	}
	return owner
}

func negInf() float64 { return -1.797e308 }

func excluding(xs []int, i int) []int {
	out := make([]int, 0, len(xs)-1)
	out = append(out, xs[:i]...)
	return append(out, xs[i+1:]...)
}

// LeafMass returns the sum of the current leaf probabilities (1 after any
// renormalizing operation; useful as a diagnostic mid-construction).
func (t *Tree) LeafMass() float64 {
	var k numeric.KahanSum
	t.walkLeaves(func(n *Node, _ rank.Ordering) { k.Add(n.Prob) })
	return k.Sum()
}
