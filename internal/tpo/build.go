package tpo

import (
	"fmt"
	"math"
	"runtime"
	"sync/atomic"

	"crowdtopk/internal/dist"
	"crowdtopk/internal/numeric"
	"crowdtopk/internal/par"
	"crowdtopk/internal/rank"
)

// BuildOptions configures TPO construction.
type BuildOptions struct {
	// GridSize is the number of points of the shared evaluation grid.
	// Zero selects DefaultGridSize.
	GridSize int
	// MaxLeaves aborts construction with ErrTooLarge when the number of
	// depth-K prefixes exceeds it. Zero selects DefaultMaxLeaves.
	MaxLeaves int
	// ProbEpsilon drops prefixes whose raw probability falls below it;
	// this bounds the tree by the numerically meaningful orderings.
	// Zero selects DefaultProbEpsilon.
	ProbEpsilon float64
	// Workers is the number of goroutines expanding independent subtrees
	// during Build (and growing leaves during Extend). Zero selects
	// GOMAXPROCS; 1 forces the sequential build. The resulting tree —
	// child order, leaf order, and every probability bit — is identical
	// for every worker count.
	Workers int
}

// Defaults for BuildOptions.
const (
	DefaultGridSize    = 1024
	DefaultMaxLeaves   = 500_000
	DefaultProbEpsilon = 1e-9
)

func (o BuildOptions) withDefaults() BuildOptions {
	if o.GridSize == 0 {
		o.GridSize = DefaultGridSize
	}
	if o.MaxLeaves == 0 {
		o.MaxLeaves = DefaultMaxLeaves
	}
	if o.ProbEpsilon == 0 {
		o.ProbEpsilon = DefaultProbEpsilon
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// Build materializes the tree of possible orderings of the given score
// distributions down to depth k. The prefix probability of each node is the
// exact joint probability Pr(s_{t_1} > … > s_{t_d} > max of the rest),
// evaluated by chained cumulative integrals on a grid shared by all tuples:
//
//	P(prefix) = ∫ f_{t_d}(x) · C_{d−1}(x) · Π_{u∉prefix} F_u(x) dx
//	C_d(x)    = ∫_x^∞ f_{t_d}(y) · C_{d−1}(y) dy,   C_0 ≡ 1
//
// Leaf probabilities are renormalized to sum to one; the pre-normalization
// mass (≈1 up to quadrature error) is returned in the tree diagnostics.
//
// Construction parallelizes across disjoint subtrees when opt.Workers
// permits; the result is byte-identical to the sequential build.
func Build(ds []dist.Distribution, k int, opt BuildOptions) (*Tree, error) {
	t, err := prepare(ds, k, opt)
	if err != nil {
		return nil, err
	}
	t.opt = opt.withDefaults()
	c0 := make([]float64, t.grid.Len())
	for i := range c0 {
		c0[i] = 1
	}
	root := buildJob{node: t.Root, c: c0, remaining: allRemaining(len(ds))}
	if err := expandAll(t, t.opt, []buildJob{root}, k); err != nil {
		return nil, err
	}
	t.depth = k
	t.buildMass = t.LeafMass()
	if err := t.renormalize(); err != nil {
		return nil, fmt.Errorf("tpo: build produced no orderings: %w", err)
	}
	return t, nil
}

// BuildMass returns the unnormalized probability mass found by the last full
// Build — a quadrature diagnostic that should be within grid error of 1.
func (t *Tree) BuildMass() float64 { return t.buildMass }

// prepare validates inputs and precomputes the shared grid samples.
func prepare(ds []dist.Distribution, k int, opt BuildOptions) (*Tree, error) {
	if len(ds) == 0 {
		return nil, fmt.Errorf("%w: empty dataset", ErrInvalidInput)
	}
	if k < 1 || k > len(ds) {
		return nil, fmt.Errorf("%w: k=%d with %d tuples", ErrInvalidInput, k, len(ds))
	}
	opt = opt.withDefaults()
	grid, err := dist.SharedGrid(ds, opt.GridSize)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidInput, err)
	}
	for i, d := range ds {
		lo, hi := d.Support()
		if hi-lo < 2*grid.Step {
			return nil, fmt.Errorf("%w: tuple %d support [%g, %g] narrower than two grid steps; use a finer grid or a wider distribution", ErrInvalidInput, i, lo, hi)
		}
	}
	t := &Tree{
		Root:  &Node{Tuple: -1, Prob: 1},
		K:     k,
		Dists: ds,
		grid:  grid,
		pdfs:  make([][]float64, len(ds)),
		cdfs:  make([][]float64, len(ds)),
	}
	for i, d := range ds {
		t.pdfs[i] = grid.Sample(d.PDF)
		t.cdfs[i] = grid.Sample(d.CDF)
	}
	return t, nil
}

func allRemaining(n int) []int {
	r := make([]int, n)
	for i := range r {
		r[i] = i
	}
	return r
}

// buildJob is one independent unit of parallel construction: a subtree root
// together with the survival chain and candidate set it needs. Jobs own
// disjoint subtrees and share nothing mutable besides the leaf budget, so
// any number of them can expand concurrently.
type buildJob struct {
	node      *Node
	c         []float64
	remaining []int
}

// frontierFactor·workers is the number of independent subtree jobs targeted
// before handing the frontier to the pool. Oversplitting keeps the pool busy
// when subtree sizes are skewed (tuples whose support reaches high carry far
// more orderings than tail tuples).
const frontierFactor = 8

// expandAll grows every job's subtree down to depth k using opt.Workers
// goroutines. The result is byte-identical to a sequential build: children
// are emitted in candidate order regardless of scheduling, each subtree is
// produced by exactly the floating-point operations the sequential recursion
// would perform, and jobs never touch each other's nodes.
func expandAll(t *Tree, opt BuildOptions, jobs []buildJob, k int) error {
	leaves := new(atomic.Int64)
	workers := opt.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > 1 {
		// Widen the frontier one level at a time until there is enough
		// independent work to occupy the pool. Frontier chains are owned
		// copies, so the jobs outlive the builder's scratch.
		fb := newBuilder(t, opt, leaves)
		for len(jobs) > 0 && len(jobs) < frontierFactor*workers {
			var next []buildJob
			for _, j := range jobs {
				if err := fb.expand(j.node, j.c, j.remaining, k, &next); err != nil {
					return err
				}
			}
			jobs = next
		}
	}
	builders := make([]*builder, workers)
	return par.FirstError(par.For(len(jobs), workers, func(w, i int) error {
		if builders[w] == nil {
			builders[w] = newBuilder(t, opt, leaves)
		}
		j := jobs[i]
		return builders[w].expand(j.node, j.c, j.remaining, k, nil)
	}))
}

// builder carries one worker's per-depth scratch buffers so a full subtree
// DFS allocates O(K·N·G) once instead of per node. Builders are never shared
// between goroutines; the only cross-worker state is the leaf budget.
type builder struct {
	t       *Tree
	opt     BuildOptions
	leaves  *atomic.Int64 // shared across the workers of one Build/Extend
	scratch []*depthScratch
}

type depthScratch struct {
	prefixProd [][]float64 // prefixProd[i] = Π_{j<i} F_{remaining[j]}
	suffixProd [][]float64 // suffixProd[i] = Π_{j>=i} F_{remaining[j]}
	integrand  []float64
	childC     []float64
}

func newBuilder(t *Tree, opt BuildOptions, leaves *atomic.Int64) *builder {
	return &builder{t: t, opt: opt, leaves: leaves}
}

func (b *builder) scratchAt(depth, nRemaining int) *depthScratch {
	for len(b.scratch) <= depth {
		b.scratch = append(b.scratch, &depthScratch{})
	}
	s := b.scratch[depth]
	g := b.t.grid.Len()
	for len(s.prefixProd) <= nRemaining {
		s.prefixProd = append(s.prefixProd, make([]float64, g))
		s.suffixProd = append(s.suffixProd, make([]float64, g))
	}
	if s.integrand == nil {
		s.integrand = make([]float64, g)
		s.childC = make([]float64, g)
	}
	return s
}

// expand materializes the children of n from its survival chain c and the
// remaining candidate tuples, appending them to n.Children in candidate
// order (which keeps the tree layout independent of goroutine scheduling),
// and continues down to depth k. Depth-k children are leaves and counted
// against the shared budget.
//
// When frontier is nil, expand recurses: the child survival chain
// C'(x) = ∫_x^Hi f_id(y)·C(y) dy lives in this depth's scratch (the
// recursive call only writes scratch at deeper levels and returns before
// the next sibling overwrites it, so no copy is needed). When frontier is
// non-nil, expand instead stops after this one level and appends each
// non-leaf child — with a freshly allocated, job-owned chain — to *frontier
// for a worker pool to pick up. The frontier mode is deliberately folded
// into the same function (rather than an indirect descend callback) so the
// grid-sized inner loops below stay directly optimizable: they are the
// hottest code in the package.
func (b *builder) expand(n *Node, c []float64, remaining []int, k int, frontier *[]buildJob) error {
	g := b.t.grid
	gl := g.Len()
	s := b.scratchAt(n.depth, len(remaining))

	// Exclude-one CDF products over the remaining tuples.
	for i := 0; i < gl; i++ {
		s.prefixProd[0][i] = 1
		s.suffixProd[len(remaining)][i] = 1
	}
	for ri, id := range remaining {
		cdf := b.t.cdfs[id]
		pp, prev := s.prefixProd[ri+1], s.prefixProd[ri]
		for i := 0; i < gl; i++ {
			pp[i] = prev[i] * cdf[i]
		}
	}
	for ri := len(remaining) - 1; ri >= 0; ri-- {
		cdf := b.t.cdfs[remaining[ri]]
		sp, next := s.suffixProd[ri], s.suffixProd[ri+1]
		for i := 0; i < gl; i++ {
			sp[i] = next[i] * cdf[i]
		}
	}

	// Fast support filter: a candidate must be able to exceed every other
	// remaining tuple's lower bound.
	maxLo1, maxLo2 := maxTwoLowerBounds(b.t.Dists, remaining)

	loOwner := loBoundOwner(b.t.Dists, remaining)
	for ri, id := range remaining {
		_, hi := b.t.Dists[id].Support()
		bound := maxLo1
		if id == loOwner {
			bound = maxLo2
		}
		if hi <= bound {
			continue // cannot be the maximum of the remaining set
		}
		pdf := b.t.pdfs[id]
		for i := 0; i < gl; i++ {
			s.integrand[i] = pdf[i] * c[i] * s.prefixProd[ri][i] * s.suffixProd[ri+1][i]
		}
		p := g.Trapezoid(s.integrand)
		if p <= b.opt.ProbEpsilon {
			continue
		}
		child := &Node{Tuple: id, Prob: p, depth: n.depth + 1}
		n.Children = append(n.Children, child)
		if child.depth == k {
			if b.leaves.Add(1) > int64(b.opt.MaxLeaves) {
				return fmt.Errorf("%w: more than %d depth-%d prefixes", ErrTooLarge, b.opt.MaxLeaves, k)
			}
			continue
		}
		if frontier != nil {
			childC := make([]float64, gl)
			for i := 0; i < gl; i++ {
				childC[i] = pdf[i] * c[i]
			}
			g.CumTrapezoidRight(childC, childC)
			*frontier = append(*frontier, buildJob{child, childC, excluding(remaining, ri)})
			continue
		}
		childC := s.childC
		for i := 0; i < gl; i++ {
			childC[i] = pdf[i] * c[i]
		}
		g.CumTrapezoidRight(childC, childC)
		if err := b.expand(child, childC, excluding(remaining, ri), k, nil); err != nil {
			return err
		}
	}
	return nil
}

// maxTwoLowerBounds returns the largest and second-largest support lower
// bounds among the remaining tuples.
func maxTwoLowerBounds(ds []dist.Distribution, remaining []int) (float64, float64) {
	m1, m2 := math.Inf(-1), math.Inf(-1)
	for _, id := range remaining {
		lo, _ := ds[id].Support()
		if lo > m1 {
			m2 = m1
			m1 = lo
		} else if lo > m2 {
			m2 = lo
		}
	}
	return m1, m2
}

// loBoundOwner returns the id of the remaining tuple holding the largest
// lower bound (first on ties).
func loBoundOwner(ds []dist.Distribution, remaining []int) int {
	best, owner := math.Inf(-1), -1
	for _, id := range remaining {
		lo, _ := ds[id].Support()
		if lo > best {
			best, owner = lo, id
		}
	}
	return owner
}

func excluding(xs []int, i int) []int {
	out := make([]int, 0, len(xs)-1)
	out = append(out, xs[:i]...)
	return append(out, xs[i+1:]...)
}

// LeafMass returns the sum of the current leaf probabilities (1 after any
// renormalizing operation; useful as a diagnostic mid-construction).
func (t *Tree) LeafMass() float64 {
	var k numeric.KahanSum
	t.walkLeaves(func(n *Node, _ rank.Ordering) { k.Add(n.Prob) })
	return k.Sum()
}
