package tpo

import (
	"errors"
	"fmt"
	"sort"

	"crowdtopk/internal/dist"
	"crowdtopk/internal/numeric"
	"crowdtopk/internal/pcache"
	"crowdtopk/internal/rank"
)

// Errors reported by tree operations.
var (
	// ErrTooLarge reports that construction would exceed the configured
	// leaf budget; callers should reduce K, reduce overlap, or use the
	// incremental build.
	ErrTooLarge = errors.New("tpo: tree exceeds configured size limit")
	// ErrContradiction reports that an answer (applied with full trust)
	// eliminated every ordering in the tree.
	ErrContradiction = errors.New("tpo: answer contradicts all remaining orderings")
	// ErrInvalidInput reports unusable construction inputs.
	ErrInvalidInput = errors.New("tpo: invalid input")
)

// Node is a TPO node: the tuple it places at its depth, the (posterior)
// probability mass of the prefix ordering it terminates, and its children.
// The root carries Tuple = -1 and probability 1.
type Node struct {
	Tuple    int
	Prob     float64
	Children []*Node
	depth    int
}

// Depth returns the node's depth (root = 0; depth-d nodes fix the first d
// ranks).
func (n *Node) Depth() int { return n.depth }

// Tree is a tree of possible orderings truncated at depth K, together with
// the score model it was built from and the shared evaluation grid.
type Tree struct {
	Root  *Node
	K     int
	Dists []dist.Distribution

	grid *numeric.Grid
	pdfs [][]float64 // per-tuple PDF samples on grid
	cdfs [][]float64 // per-tuple CDF samples on grid

	depth     int          // current construction depth (== K after a full Build)
	buildMass float64      // unnormalized mass found by Build, ≈1
	opt       BuildOptions // options carried over to incremental Extend calls
}

// Depth returns the depth the tree is currently materialized to. It equals K
// after a full Build and grows during incremental construction.
func (t *Tree) Depth() int { return t.depth }

// Grid exposes the shared evaluation grid (for diagnostics and tests).
func (t *Tree) Grid() *numeric.Grid { return t.grid }

// SetWorkers adjusts the goroutine count used by subsequent Extend calls.
// The extended tree is identical for every value; the serving layer uses
// this to run each extension with whatever share of a process-wide worker
// budget is currently free. n < 1 selects GOMAXPROCS.
func (t *Tree) SetWorkers(n int) {
	if n < 0 {
		n = 0 // withDefaults maps 0 (not negatives) to GOMAXPROCS
	}
	t.opt.Workers = n
}

// NumLeaves returns the number of depth-Depth() leaves.
func (t *Tree) NumLeaves() int {
	n := 0
	t.walkLeaves(func(*Node, rank.Ordering) { n++ })
	return n
}

// NumNodes returns the total node count excluding the root.
func (t *Tree) NumNodes() int {
	n := -1 // uncount the root
	var rec func(*Node)
	rec = func(nd *Node) {
		n++
		for _, c := range nd.Children {
			rec(c)
		}
	}
	rec(t.Root)
	return n
}

// walkLeaves invokes fn for every node at the current construction depth,
// passing the path (prefix ordering) leading to it. The path slice is reused
// between calls; fn must copy it to retain it.
func (t *Tree) walkLeaves(fn func(leaf *Node, path rank.Ordering)) {
	path := make(rank.Ordering, 0, t.depth)
	var rec func(n *Node)
	rec = func(n *Node) {
		if n.depth == t.depth {
			if n != t.Root {
				fn(n, path)
			}
			return
		}
		for _, c := range n.Children {
			path = append(path, c.Tuple)
			rec(c)
			path = path[:len(path)-1]
		}
	}
	rec(t.Root)
}

// LeafSet is the flat view of a tree's leaves: the possible top-K prefix
// orderings and their normalized probabilities. All uncertainty measures and
// question-selection strategies operate on this view, which makes what-if
// evaluation (pruning under hypothetical answers) cheap array filtering
// rather than tree surgery.
type LeafSet struct {
	K     int
	Paths []rank.Ordering
	W     []float64

	// flat is the contiguous path backing when the set was snapshotted from
	// a tree: Paths[i] aliases flat[i*K : (i+1)*K]. Derived sets (Split,
	// Clone, deserialization) leave it nil. See Flat.
	flat []int
}

// LeafSet snapshots the tree's current leaves. Paths are copies laid out in
// one contiguous backing array (one allocation instead of one per leaf);
// mutating the result does not affect the tree.
func (t *Tree) LeafSet() *LeafSet {
	ls := &LeafSet{K: t.depth}
	n := 0
	t.walkLeaves(func(*Node, rank.Ordering) { n++ })
	ls.flat = make([]int, 0, n*t.depth)
	ls.Paths = make([]rank.Ordering, 0, n)
	ls.W = make([]float64, 0, n)
	t.walkLeaves(func(nd *Node, path rank.Ordering) {
		ls.flat = append(ls.flat, path...)
		ls.W = append(ls.W, nd.Prob)
	})
	for i := 0; i < n; i++ {
		ls.Paths = append(ls.Paths, rank.Ordering(ls.flat[i*t.depth:(i+1)*t.depth:(i+1)*t.depth]))
	}
	numeric.Normalize(ls.W)
	return ls
}

// LeafSetInto is LeafSet reusing a previous snapshot's backing arrays: ls's
// flat/path/weight storage is truncated and refilled in place when its
// capacity suffices (nil ls, or one too small, allocates). The result is
// element-for-element identical to LeafSet() — same layout, same
// normalization arithmetic — and remains flat-backed (Flat reports ok), so
// downstream arena snapshots take the zero-copy path. Callers that hand the
// result to a consumer which retains the backing (selection's live-engine
// compaction) must stop reusing it afterwards.
func (t *Tree) LeafSetInto(ls *LeafSet) *LeafSet {
	if ls == nil {
		return t.LeafSet()
	}
	n := 0
	t.walkLeaves(func(*Node, rank.Ordering) { n++ })
	if cap(ls.flat) < n*t.depth {
		return t.LeafSet()
	}
	ls.K = t.depth
	ls.flat = ls.flat[:0]
	ls.Paths = ls.Paths[:0]
	ls.W = ls.W[:0]
	t.walkLeaves(func(nd *Node, path rank.Ordering) {
		ls.flat = append(ls.flat, path...)
		ls.W = append(ls.W, nd.Prob)
	})
	for i := 0; i < n; i++ {
		ls.Paths = append(ls.Paths, rank.Ordering(ls.flat[i*t.depth:(i+1)*t.depth:(i+1)*t.depth]))
	}
	numeric.Normalize(ls.W)
	return ls
}

// Flat exposes the arena layout of the leaf set: all paths of length K
// back to back in one array, leaf i occupying flat[i*K : (i+1)*K]. ok is
// false when the set was not snapshotted from a tree (derived or hand-built
// sets), in which case callers flatten or fall back themselves. The returned
// slice is shared with Paths and must not be mutated.
func (ls *LeafSet) Flat() (flat []int, ok bool) {
	if ls.flat == nil || len(ls.flat) != len(ls.Paths)*ls.K {
		return nil, false
	}
	return ls.flat, true
}

// Len returns the number of leaves.
func (ls *LeafSet) Len() int { return len(ls.Paths) }

// Clone deep-copies the leaf set.
func (ls *LeafSet) Clone() *LeafSet {
	out := &LeafSet{
		K:     ls.K,
		Paths: make([]rank.Ordering, len(ls.Paths)),
		W:     append([]float64(nil), ls.W...),
	}
	for i, p := range ls.Paths {
		out.Paths[i] = p.Clone()
	}
	return out
}

// Tuples returns the sorted set of tuple ids appearing in any leaf path.
func (ls *LeafSet) Tuples() []int {
	return rank.Union(ls.Paths...)
}

// MostProbable returns the index of the highest-weight leaf (first on ties).
// It panics on an empty set.
func (ls *LeafSet) MostProbable() int {
	i, _ := numeric.ArgMax(ls.W)
	return i
}

// Entropy returns the Shannon entropy (bits) of the leaf distribution.
func (ls *LeafSet) Entropy() float64 { return numeric.EntropyBits(ls.W) }

// Tuples returns the sorted tuple ids present in the materialized tree.
func (t *Tree) Tuples() []int {
	seen := map[int]struct{}{}
	var rec func(n *Node)
	rec = func(n *Node) {
		if n != t.Root {
			seen[n.Tuple] = struct{}{}
		}
		for _, c := range n.Children {
			rec(c)
		}
	}
	rec(t.Root)
	out := make([]int, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// ProbGreater returns Pr(s_i > s_j) from the score model, memoized in the
// process-wide pairwise cache (internal/pcache) so concurrent trials and
// repeated selection sweeps over the same dataset never re-integrate a pair.
// It is the π_ij used to split undetermined leaves when computing answer
// probabilities. The canonical (i < j) orientation is the one computed;
// flipped queries return the complement, as before the cache existed.
func (t *Tree) ProbGreater(i, j int) float64 {
	if i == j {
		return 0.5
	}
	if i > j {
		return 1 - pcache.ProbGreater(t.Dists[j], t.Dists[i])
	}
	return pcache.ProbGreater(t.Dists[i], t.Dists[j])
}

// Clone deep-copies the tree structure. The score model, grid and cached
// samples are shared (they are immutable after construction).
func (t *Tree) Clone() *Tree {
	nt := &Tree{
		K:         t.K,
		Dists:     t.Dists,
		grid:      t.grid,
		pdfs:      t.pdfs,
		cdfs:      t.cdfs,
		depth:     t.depth,
		buildMass: t.buildMass,
		opt:       t.opt,
	}
	var rec func(n *Node) *Node
	rec = func(n *Node) *Node {
		cp := &Node{Tuple: n.Tuple, Prob: n.Prob, depth: n.depth}
		if len(n.Children) > 0 {
			cp.Children = make([]*Node, len(n.Children))
			for i, c := range n.Children {
				cp.Children[i] = rec(c)
			}
		}
		return cp
	}
	nt.Root = rec(t.Root)
	return nt
}

// renormalize rescales all leaf probabilities to sum to one and recomputes
// internal node probabilities as the sum of their children, dropping
// zero-probability subtrees. It returns ErrContradiction if no mass remains.
func (t *Tree) renormalize() error {
	total := 0.0
	t.walkLeaves(func(n *Node, _ rank.Ordering) { total += n.Prob })
	if total <= 0 {
		return ErrContradiction
	}
	var rec func(n *Node) float64
	rec = func(n *Node) float64 {
		if n.depth == t.depth {
			n.Prob /= total
			return n.Prob
		}
		sum := 0.0
		kept := n.Children[:0]
		for _, c := range n.Children {
			m := rec(c)
			if m > 0 {
				sum += m
				kept = append(kept, c)
			}
		}
		n.Children = kept
		n.Prob = sum
		return sum
	}
	rec(t.Root)
	t.Root.Prob = 1
	return nil
}

// Validate checks structural invariants: node depths, children probability
// conservation, and leaf normalization. Intended for tests and debugging.
func (t *Tree) Validate() error {
	var leafSum float64
	var rec func(n *Node) error
	rec = func(n *Node) error {
		for _, c := range n.Children {
			if c.depth != n.depth+1 {
				return fmt.Errorf("tpo: child depth %d under parent depth %d", c.depth, n.depth)
			}
			if err := rec(c); err != nil {
				return err
			}
		}
		if n.depth == t.depth && n != t.Root {
			if n.Prob < 0 {
				return fmt.Errorf("tpo: negative leaf probability %g", n.Prob)
			}
			leafSum += n.Prob
		}
		if n.depth < t.depth && len(n.Children) > 0 {
			sum := 0.0
			for _, c := range n.Children {
				sum += c.Prob
			}
			if !numeric.AlmostEqual(sum, n.Prob, 1e-6) {
				return fmt.Errorf("tpo: node prob %g != children sum %g at depth %d", n.Prob, sum, n.depth)
			}
		}
		return nil
	}
	if err := rec(t.Root); err != nil {
		return err
	}
	if t.NumLeaves() > 0 && !numeric.AlmostEqual(leafSum, 1, 1e-6) {
		return fmt.Errorf("tpo: leaf probabilities sum to %g", leafSum)
	}
	return nil
}
