package tpo

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"crowdtopk/internal/dist"
)

// CheckpointSchema is the version number written into leaf-set checkpoint
// envelopes. Bump it when the envelope or the embedded leaf-set encoding
// changes incompatibly; readers reject other versions with a MismatchError
// instead of guessing.
const CheckpointSchema = 1

// checkpointKind tags the envelope so unrelated JSON is rejected early.
const checkpointKind = "crowdtopk/leafset"

// MismatchError reports a checkpoint that cannot be restored against the
// caller's expectations: wrong schema version, wrong payload kind, or a
// dataset digest that does not match the dataset the caller is resuming
// with. It is a typed error so servers can distinguish "stale or foreign
// checkpoint" (client error) from I/O and decoding failures.
type MismatchError struct {
	Field string // "schema", "kind" or "dataset digest"
	Want  string
	Got   string
}

func (e *MismatchError) Error() string {
	// No package prefix: the session envelope reuses this type for its own
	// mismatches (session.MismatchError is an alias).
	return fmt.Sprintf("checkpoint %s mismatch: want %s, got %s", e.Field, e.Want, e.Got)
}

// checkpointJSON is the versioned envelope around the leaf-set encoding.
type checkpointJSON struct {
	Schema  int             `json:"schema"`
	Kind    string          `json:"kind"`
	Dataset string          `json:"dataset,omitempty"` // content digest of the score model
	Leaves  json.RawMessage `json:"leaves"`
}

// WriteCheckpoint serializes the leaf set inside a versioned envelope that
// records the schema version and a content digest of the dataset the leaves
// were computed from (see internal/dataset.Digest). ReadCheckpoint refuses
// to restore the payload against a different schema or dataset, which
// WriteJSON alone cannot detect.
func (ls *LeafSet) WriteCheckpoint(w io.Writer, datasetDigest string) error {
	var buf bytes.Buffer
	if err := ls.WriteJSON(&buf); err != nil {
		return err
	}
	return json.NewEncoder(w).Encode(checkpointJSON{
		Schema:  CheckpointSchema,
		Kind:    checkpointKind,
		Dataset: datasetDigest,
		Leaves:  json.RawMessage(buf.Bytes()),
	})
}

// ReadCheckpoint restores a leaf set written by WriteCheckpoint, validating
// the envelope before touching the payload: the schema version must equal
// CheckpointSchema and, when wantDatasetDigest is non-empty, the recorded
// dataset digest must match it exactly. Mismatches return a *MismatchError;
// malformed payloads return the leaf-set decoder's errors.
func ReadCheckpoint(r io.Reader, wantDatasetDigest string) (*LeafSet, error) {
	var env checkpointJSON
	if err := json.NewDecoder(r).Decode(&env); err != nil {
		return nil, fmt.Errorf("tpo: decoding checkpoint envelope: %w", err)
	}
	if env.Kind != checkpointKind {
		return nil, &MismatchError{Field: "kind", Want: checkpointKind, Got: fmt.Sprintf("%q", env.Kind)}
	}
	if env.Schema != CheckpointSchema {
		return nil, &MismatchError{Field: "schema", Want: fmt.Sprint(CheckpointSchema), Got: fmt.Sprint(env.Schema)}
	}
	if wantDatasetDigest != "" && env.Dataset != wantDatasetDigest {
		return nil, &MismatchError{Field: "dataset digest", Want: wantDatasetDigest, Got: env.Dataset}
	}
	return ReadLeafSetJSON(bytes.NewReader(env.Leaves))
}

// FromLeafSet reconstructs a live tree from a leaf-set snapshot and the
// score model it was computed from: the trie of the snapshot's paths with
// the snapshot's (normalized) weights as leaf posteriors, over a freshly
// prepared evaluation grid. It is the restore half of session checkpointing
// — the returned tree prunes, reweights and (for partially built incr trees,
// ls.K < k) extends exactly as the original would.
//
// Paths are inserted in snapshot order and children appended in first-
// appearance order, which reproduces the original tree's leaf enumeration
// order exactly; downstream float summations (residual sweeps, measure
// values) therefore run over the same operands in the same order. Weights
// agree with the original tree's up to renormalization rounding (a few
// ulps — LeafSet snapshots are normalized, in-tree posteriors only nearly
// so), which never moves a ranking or a question choice: all selection
// tie-breaks use epsilon comparisons.
func FromLeafSet(ds []dist.Distribution, k int, ls *LeafSet, opt BuildOptions) (*Tree, error) {
	if ls == nil || ls.Len() == 0 {
		return nil, fmt.Errorf("%w: empty leaf set", ErrInvalidInput)
	}
	if ls.K < 1 || ls.K > k {
		return nil, fmt.Errorf("%w: leaf set depth %d outside [1, K=%d]", ErrInvalidInput, ls.K, k)
	}
	t, err := prepare(ds, k, opt)
	if err != nil {
		return nil, err
	}
	t.opt = opt.withDefaults()
	t.depth = ls.K
	// The snapshot carries posteriors, not raw build mass; record the unit
	// mass the posteriors sum to so BuildMass stays a sane diagnostic.
	t.buildMass = 1
	for i, p := range ls.Paths {
		if len(p) != ls.K {
			return nil, fmt.Errorf("%w: path %d has length %d, want snapshot depth %d", ErrInvalidInput, i, len(p), ls.K)
		}
		n := t.Root
		for d, id := range p {
			if id < 0 || id >= len(ds) {
				return nil, fmt.Errorf("%w: path %d references tuple %d outside dataset of %d", ErrInvalidInput, i, id, len(ds))
			}
			var child *Node
			for _, c := range n.Children {
				if c.Tuple == id {
					child = c
					break
				}
			}
			if child == nil {
				child = &Node{Tuple: id, depth: d + 1}
				n.Children = append(n.Children, child)
			}
			n = child
		}
		n.Prob += ls.W[i]
	}
	if err := t.renormalize(); err != nil {
		return nil, err
	}
	return t, nil
}
