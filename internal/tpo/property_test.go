package tpo

import (
	"errors"
	"math/rand"
	"testing"

	"crowdtopk/internal/dist"
	"crowdtopk/internal/numeric"
)

// randomTree builds a tree over a random overlapping workload.
func randomTree(t *testing.T, rng *rand.Rand, n, k int) *Tree {
	t.Helper()
	ds := make([]dist.Distribution, n)
	for i := range ds {
		c := float64(i)*0.4 + rng.Float64()*0.3
		u, err := dist.NewUniformAround(c, 1+rng.Float64()*1.5)
		if err != nil {
			t.Fatal(err)
		}
		ds[i] = u
	}
	tree, err := Build(ds, k, BuildOptions{GridSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

// TestTreeInvariantsUnderRandomAnswerSequences applies random answers —
// some pruning, some reweighting, possibly contradictory — and checks that
// the tree never violates its structural invariants.
func TestTreeInvariantsUnderRandomAnswerSequences(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 25; trial++ {
		tree := randomTree(t, rng, 5+rng.Intn(4), 2+rng.Intn(3))
		for step := 0; step < 12; step++ {
			ls := tree.LeafSet()
			qs := ls.RelevantQuestions()
			if len(qs) == 0 {
				break
			}
			q := qs[rng.Intn(len(qs))]
			ans := Answer{Q: q, Yes: rng.Intn(2) == 0}
			var err error
			if rng.Intn(2) == 0 {
				err = tree.Prune(ans)
			} else {
				err = tree.Reweight(ans, 0.6+0.4*rng.Float64())
			}
			if err != nil && !errors.Is(err, ErrContradiction) {
				t.Fatalf("trial %d step %d: unexpected error %v", trial, step, err)
			}
			if err := tree.Validate(); err != nil {
				t.Fatalf("trial %d step %d: invariants violated: %v", trial, step, err)
			}
			if mass := tree.LeafMass(); !numeric.AlmostEqual(mass, 1, 1e-6) {
				t.Fatalf("trial %d step %d: mass %g", trial, step, mass)
			}
		}
	}
}

// TestPruneConsistentWithConditional verifies the probabilistic semantics of
// pruning: the posterior of a surviving leaf equals its prior divided by the
// total surviving prior (Bayes with a 0/1 likelihood).
func TestPruneConsistentWithConditional(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for trial := 0; trial < 20; trial++ {
		tree := randomTree(t, rng, 6, 3)
		before := tree.LeafSet()
		qs := before.RelevantQuestions()
		if len(qs) == 0 {
			continue
		}
		q := qs[rng.Intn(len(qs))]
		ans := Answer{Q: q, Yes: rng.Intn(2) == 0}

		surviving := map[string]float64{}
		total := 0.0
		for i, p := range before.Paths {
			if PathConsistency(p, ans) != Inconsistent {
				surviving[p.String()] = before.W[i]
				total += before.W[i]
			}
		}
		if total == 0 {
			continue
		}
		if err := tree.Prune(ans); err != nil {
			t.Fatal(err)
		}
		after := tree.LeafSet()
		for i, p := range after.Paths {
			prior, ok := surviving[p.String()]
			if !ok {
				t.Fatalf("leaf %v appeared from nowhere", p)
			}
			if want := prior / total; !numeric.AlmostEqual(after.W[i], want, 1e-9) {
				t.Fatalf("posterior of %v = %g, want %g", p, after.W[i], want)
			}
		}
	}
}

// TestReweightSequenceOrderIndependence: Bayesian updates commute, so
// applying two answers in either order must give the same posterior.
func TestReweightSequenceOrderIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	for trial := 0; trial < 15; trial++ {
		tree := randomTree(t, rng, 6, 3)
		qs := tree.LeafSet().RelevantQuestions()
		if len(qs) < 2 {
			continue
		}
		a1 := Answer{Q: qs[0], Yes: rng.Intn(2) == 0}
		a2 := Answer{Q: qs[1], Yes: rng.Intn(2) == 0}

		t12 := tree.Clone()
		if err := t12.Reweight(a1, 0.8); err != nil {
			t.Fatal(err)
		}
		if err := t12.Reweight(a2, 0.7); err != nil {
			t.Fatal(err)
		}
		t21 := tree.Clone()
		if err := t21.Reweight(a2, 0.7); err != nil {
			t.Fatal(err)
		}
		if err := t21.Reweight(a1, 0.8); err != nil {
			t.Fatal(err)
		}
		l12, l21 := t12.LeafSet(), t21.LeafSet()
		if l12.Len() != l21.Len() {
			t.Fatalf("orders disagree on leaf count: %d vs %d", l12.Len(), l21.Len())
		}
		w21 := map[string]float64{}
		for i, p := range l21.Paths {
			w21[p.String()] = l21.W[i]
		}
		for i, p := range l12.Paths {
			if !numeric.AlmostEqual(l12.W[i], w21[p.String()], 1e-9) {
				t.Fatalf("posterior of %v differs by order: %g vs %g", p, l12.W[i], w21[p.String()])
			}
		}
	}
}

// TestAnswerProbabilitiesAreCoherent: over random trees and questions,
// Pr(yes) + Pr(no) = 1 and pruning by an answer with probability p rescales
// the surviving mass by exactly p (for leaves that determine the pair).
func TestAnswerProbabilitiesAreCoherent(t *testing.T) {
	rng := rand.New(rand.NewSource(109))
	for trial := 0; trial < 20; trial++ {
		tree := randomTree(t, rng, 6, 3)
		ls := tree.LeafSet()
		for _, q := range ls.RelevantQuestions() {
			pi := tree.ProbGreater(q.I, q.J)
			pYes := ls.AnswerProb(q, pi)
			pNo := ls.AnswerProb(Question{I: q.I, J: q.J}, 1-pi)
			// AnswerProb of the same question with flipped pi equals the
			// complementary direction only when no undetermined leaves
			// exist; use Split masses for the strict identity instead.
			yes, no := ls.Split(q, pi)
			if !numeric.AlmostEqual(yes.Mass()+no.Mass(), 1, 1e-9) {
				t.Fatalf("split masses %g + %g != 1", yes.Mass(), no.Mass())
			}
			if !numeric.AlmostEqual(pYes, yes.Mass(), 1e-9) {
				t.Fatalf("AnswerProb %g != yes mass %g", pYes, yes.Mass())
			}
			_ = pNo
		}
	}
}

// TestCloneEqualsOriginalEverywhere does a deep structural comparison.
func TestCloneEqualsOriginalEverywhere(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	tree := randomTree(t, rng, 7, 3)
	cp := tree.Clone()
	var walk func(a, b *Node)
	walk = func(a, b *Node) {
		if a.Tuple != b.Tuple || a.Prob != b.Prob || a.depth != b.depth || len(a.Children) != len(b.Children) {
			t.Fatalf("clone mismatch at tuple %d", a.Tuple)
		}
		for i := range a.Children {
			walk(a.Children[i], b.Children[i])
		}
	}
	walk(tree.Root, cp.Root)
	if tree.K != cp.K || tree.Depth() != cp.Depth() {
		t.Fatal("clone header mismatch")
	}
}

// TestLeafSetTupleMarginalsSumToK: Σ_t Pr(t ∈ top-K) = K exactly.
func TestLeafSetTupleMarginalsSumToK(t *testing.T) {
	rng := rand.New(rand.NewSource(127))
	for trial := 0; trial < 10; trial++ {
		tree := randomTree(t, rng, 7, 1+rng.Intn(4))
		ls := tree.LeafSet()
		sum := 0.0
		for _, p := range ls.TopKProbability() {
			sum += p
		}
		if !numeric.AlmostEqual(sum, float64(ls.K), 1e-6) {
			t.Fatalf("marginals sum to %g, want K=%d", sum, ls.K)
		}
	}
}

// TestRankProbabilitiesRowsAndColumns: for every rank r the probabilities
// over tuples sum to 1, and for every tuple the rank probabilities sum to
// its top-K marginal.
func TestRankProbabilitiesRowsAndColumns(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	tree := randomTree(t, rng, 6, 3)
	ls := tree.LeafSet()
	marginals := ls.TopKProbability()
	rankSums := make([]float64, ls.K)
	for _, id := range ls.Tuples() {
		rp := ls.RankProbability(id)
		rowSum := 0.0
		for r, v := range rp {
			rankSums[r] += v
			rowSum += v
		}
		if !numeric.AlmostEqual(rowSum, marginals[id], 1e-9) {
			t.Fatalf("tuple %d: Σ_r Pr(rank r) = %g, marginal %g", id, rowSum, marginals[id])
		}
	}
	for r, s := range rankSums {
		if !numeric.AlmostEqual(s, 1, 1e-6) {
			t.Fatalf("rank %d probabilities sum to %g", r, s)
		}
	}
}
