package tpo

import (
	"errors"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"crowdtopk/internal/dist"
	"crowdtopk/internal/numeric"
	"crowdtopk/internal/rank"
)

// mustUniform builds a uniform distribution or fails the test.
func mustUniform(t *testing.T, lo, hi float64) dist.Distribution {
	t.Helper()
	u, err := dist.NewUniform(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

// iidUniforms returns n identical U[0,1] score distributions.
func iidUniforms(t *testing.T, n int) []dist.Distribution {
	t.Helper()
	ds := make([]dist.Distribution, n)
	for i := range ds {
		ds[i] = mustUniform(t, 0, 1)
	}
	return ds
}

func TestBuildValidation(t *testing.T) {
	u := iidUniforms(t, 3)
	if _, err := Build(nil, 1, BuildOptions{}); !errors.Is(err, ErrInvalidInput) {
		t.Errorf("empty dataset err = %v", err)
	}
	if _, err := Build(u, 0, BuildOptions{}); !errors.Is(err, ErrInvalidInput) {
		t.Errorf("k=0 err = %v", err)
	}
	if _, err := Build(u, 4, BuildOptions{}); !errors.Is(err, ErrInvalidInput) {
		t.Errorf("k>N err = %v", err)
	}
	withPoint := append(iidUniforms(t, 2), dist.NewPoint(0.5))
	if _, err := Build(withPoint, 1, BuildOptions{}); !errors.Is(err, ErrInvalidInput) {
		t.Errorf("point-mass tuple err = %v", err)
	}
}

func TestBuildDisjointSupportsSingleOrdering(t *testing.T) {
	ds := []dist.Distribution{
		mustUniform(t, 0, 1),
		mustUniform(t, 2, 3),
		mustUniform(t, 4, 5),
	}
	tree, err := Build(ds, 3, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.NumLeaves(); got != 1 {
		t.Fatalf("leaves = %d, want 1", got)
	}
	ls := tree.LeafSet()
	want := rank.Ordering{2, 1, 0}
	if !ls.Paths[0].Equal(want) {
		t.Fatalf("ordering = %v, want %v", ls.Paths[0], want)
	}
	if !numeric.AlmostEqual(ls.W[0], 1, 1e-9) {
		t.Fatalf("probability = %g, want 1", ls.W[0])
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildTwoOverlappingTuplesMatchesPairwise(t *testing.T) {
	a := mustUniform(t, 0, 1)
	b := mustUniform(t, 0.4, 1.6)
	// A fine grid bounds the trapezoid error at the uniform-density jumps.
	tree, err := Build([]dist.Distribution{a, b}, 2, BuildOptions{GridSize: 8192})
	if err != nil {
		t.Fatal(err)
	}
	ls := tree.LeafSet()
	if ls.Len() != 2 {
		t.Fatalf("leaves = %d, want 2", ls.Len())
	}
	pBFirst := dist.ProbGreater(b, a)
	for i, p := range ls.Paths {
		want := pBFirst
		if p[0] == 0 {
			want = 1 - pBFirst
		}
		if !numeric.AlmostEqual(ls.W[i], want, 5e-4) {
			t.Fatalf("Pr(%v) = %g, want %g", p, ls.W[i], want)
		}
	}
}

func TestBuildIIDUniformsSymmetric(t *testing.T) {
	tree, err := Build(iidUniforms(t, 3), 3, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ls := tree.LeafSet()
	if ls.Len() != 6 {
		t.Fatalf("leaves = %d, want 3! = 6", ls.Len())
	}
	for i := range ls.W {
		if !numeric.AlmostEqual(ls.W[i], 1.0/6, 1e-3) {
			t.Fatalf("Pr(%v) = %g, want 1/6", ls.Paths[i], ls.W[i])
		}
	}
	if !numeric.AlmostEqual(tree.BuildMass(), 1, 1e-3) {
		t.Fatalf("raw build mass = %g, want ≈1", tree.BuildMass())
	}
}

func TestBuildTopKPrefixOfIID(t *testing.T) {
	// K=2 of 3 iid uniforms: each of the 6 prefixes has probability 1/6.
	tree, err := Build(iidUniforms(t, 3), 2, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ls := tree.LeafSet()
	if ls.Len() != 6 {
		t.Fatalf("leaves = %d, want 6", ls.Len())
	}
	for i := range ls.W {
		if !numeric.AlmostEqual(ls.W[i], 1.0/6, 1e-3) {
			t.Fatalf("Pr(%v) = %g, want 1/6", ls.Paths[i], ls.W[i])
		}
	}
}

// TestBuildMatchesMonteCarlo is the strongest correctness check of the
// chained-integral construction: leaf probabilities must match the empirical
// frequency of top-K prefixes over independent score draws.
func TestBuildMatchesMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	ds := []dist.Distribution{}
	for i := 0; i < 6; i++ {
		c := rng.Float64() * 2
		w := 0.8 + rng.Float64()
		u, err := dist.NewUniformAround(c, w)
		if err != nil {
			t.Fatal(err)
		}
		ds = append(ds, u)
	}
	const k = 3
	tree, err := Build(ds, k, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ls := tree.LeafSet()

	const samples = 200_000
	counts := make(map[string]int)
	scores := make([]float64, len(ds))
	idx := make([]int, len(ds))
	for s := 0; s < samples; s++ {
		for i, d := range ds {
			scores[i] = dist.Sample(d, rng)
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
		key := keyOf(idx[:k])
		counts[key]++
	}
	// Every analytic leaf must match its empirical frequency.
	for i, p := range ls.Paths {
		emp := float64(counts[keyOf(p)]) / samples
		if diff := emp - ls.W[i]; diff > 0.006 || diff < -0.006 {
			t.Errorf("Pr(%v): analytic %.4f, empirical %.4f", p, ls.W[i], emp)
		}
	}
	// And no empirical prefix may be missing from the tree.
	known := map[string]bool{}
	for _, p := range ls.Paths {
		known[keyOf(p)] = true
	}
	for key, c := range counts {
		if !known[key] && float64(c)/samples > 0.002 {
			t.Errorf("prefix %s seen with frequency %.4f but absent from tree", key, float64(c)/samples)
		}
	}
}

func keyOf(ids []int) string {
	var b strings.Builder
	for _, id := range ids {
		b.WriteByte(byte('A' + id))
	}
	return b.String()
}

func TestBuildMaxLeaves(t *testing.T) {
	_, err := Build(iidUniforms(t, 6), 6, BuildOptions{MaxLeaves: 100})
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge (6! = 720 > 100)", err)
	}
}

func TestBuildGaussianAndTriangularFamilies(t *testing.T) {
	g1, _ := dist.NewGaussian(0.4, 0.25)
	g2, _ := dist.NewGaussian(0.6, 0.25)
	tr, _ := dist.NewTriangular(0, 0.5, 1)
	tree, err := Build([]dist.Distribution{g1, g2, tr}, 3, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	if tree.NumLeaves() != 6 {
		t.Fatalf("heavily overlapping trio should admit all 6 orderings, got %d", tree.NumLeaves())
	}
	// Pairwise sanity: Pr(g2 first among {g1,g2}) should exceed 1/2.
	firstLevel := map[int]float64{}
	for _, c := range tree.Root.Children {
		firstLevel[c.Tuple] = c.Prob
	}
	if firstLevel[1] <= firstLevel[0] {
		t.Fatalf("level-1 mass: g2=%g should exceed g1=%g", firstLevel[1], firstLevel[0])
	}
}

func TestTreeCounts(t *testing.T) {
	tree, err := Build(iidUniforms(t, 3), 3, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.NumNodes(); got != 3+6+6 {
		t.Fatalf("NumNodes = %d, want 15 (3 + 6 + 6)", got)
	}
	if got := tree.Depth(); got != 3 {
		t.Fatalf("Depth = %d", got)
	}
	tuples := tree.Tuples()
	if len(tuples) != 3 {
		t.Fatalf("Tuples = %v", tuples)
	}
}

func TestTreeCloneIndependence(t *testing.T) {
	tree, err := Build(iidUniforms(t, 3), 2, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cp := tree.Clone()
	if err := tree.Prune(Answer{Q: NewQuestion(0, 1), Yes: true}); err != nil {
		t.Fatal(err)
	}
	if cp.NumLeaves() == tree.NumLeaves() {
		t.Fatal("prune affected the clone (or removed nothing)")
	}
	if err := cp.Validate(); err != nil {
		t.Fatalf("clone invalid after original mutation: %v", err)
	}
}

func TestProbGreaterCacheAndSymmetry(t *testing.T) {
	a := mustUniform(t, 0, 1)
	b := mustUniform(t, 0.5, 1.5)
	tree, err := Build([]dist.Distribution{a, b}, 2, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pij := tree.ProbGreater(0, 1)
	pji := tree.ProbGreater(1, 0)
	if !numeric.AlmostEqual(pij+pji, 1, 1e-9) {
		t.Fatalf("π01 + π10 = %g", pij+pji)
	}
	if got := tree.ProbGreater(0, 0); got != 0.5 {
		t.Fatalf("self comparison = %g", got)
	}
	if again := tree.ProbGreater(0, 1); again != pij {
		t.Fatalf("cache returned different value: %g vs %g", again, pij)
	}
}

func TestWriteDOT(t *testing.T) {
	tree, err := Build(iidUniforms(t, 2), 2, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tree.WriteDOT(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"digraph tpo", "root", "t0", "t1", "->"} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func TestQuestionCanonicalization(t *testing.T) {
	q := NewQuestion(5, 2)
	if q.I != 2 || q.J != 5 {
		t.Fatalf("NewQuestion(5,2) = %+v, want I=2 J=5", q)
	}
	a := Answer{Q: q, Yes: true}
	if a.Higher() != 2 || a.Lower() != 5 {
		t.Fatalf("yes answer: higher=%d lower=%d", a.Higher(), a.Lower())
	}
	n := Answer{Q: q, Yes: false}
	if n.Higher() != 5 || n.Lower() != 2 {
		t.Fatalf("no answer: higher=%d lower=%d", n.Higher(), n.Lower())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on self-comparison")
		}
	}()
	NewQuestion(3, 3)
}

func TestAnswerString(t *testing.T) {
	q := NewQuestion(1, 2)
	if s := (Answer{Q: q, Yes: true}).String(); !strings.Contains(s, "t1 ≺ t2") {
		t.Fatalf("yes answer string = %q", s)
	}
	if s := (Answer{Q: q, Yes: false}).String(); !strings.Contains(s, "t2 ≺ t1") {
		t.Fatalf("no answer string = %q", s)
	}
	if s := q.String(); s == "" {
		t.Fatal("empty question string")
	}
}
