package tpo

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"crowdtopk/internal/dist"
)

// overlapLadder builds n uniform scores with centers spacing apart and the
// given support width — enough overlap that the tree has many orderings and
// every subtree job carries real work.
func overlapLadder(t *testing.T, n int, spacing, width float64) []dist.Distribution {
	t.Helper()
	ds := make([]dist.Distribution, n)
	for i := range ds {
		c := float64(i) * spacing
		u, err := dist.NewUniform(c-width/2, c+width/2)
		if err != nil {
			t.Fatal(err)
		}
		ds[i] = u
	}
	return ds
}

// treeFingerprint serializes the complete tree structure with exact float64
// bit patterns, so two trees compare byte-identical — not merely almost
// equal.
func treeFingerprint(tr *Tree) string {
	var out []byte
	var rec func(n *Node)
	rec = func(n *Node) {
		out = fmt.Appendf(out, "%d:%d:%x(", n.Tuple, n.Depth(), math.Float64bits(n.Prob))
		for _, c := range n.Children {
			rec(c)
		}
		out = append(out, ')')
	}
	rec(tr.Root)
	return string(out)
}

// TestBuildParallelDeterminism is the tentpole contract: the parallel build
// must produce child order, leaf order and every probability bit identical
// to the sequential build, for any worker count.
func TestBuildParallelDeterminism(t *testing.T) {
	ds := overlapLadder(t, 14, 0.5, 3.0)
	const k = 4
	opt := BuildOptions{GridSize: 256, Workers: 1}
	seq, err := Build(ds, k, opt)
	if err != nil {
		t.Fatal(err)
	}
	want := treeFingerprint(seq)
	for _, workers := range []int{2, 3, 4, 8} {
		opt.Workers = workers
		par, err := Build(ds, k, opt)
		if err != nil {
			t.Fatalf("Workers=%d: %v", workers, err)
		}
		if got := treeFingerprint(par); got != want {
			t.Errorf("Workers=%d: tree differs from sequential build", workers)
		}
		if par.BuildMass() != seq.BuildMass() {
			t.Errorf("Workers=%d: build mass %g != %g", workers, par.BuildMass(), seq.BuildMass())
		}
	}
}

// TestExtendParallelDeterminism covers the incremental path: level-wise
// extension with a worker pool must equal the sequential extension exactly,
// including after pruning reshapes the leaf population.
func TestExtendParallelDeterminism(t *testing.T) {
	ds := overlapLadder(t, 12, 0.5, 2.8)
	const k = 4
	grow := func(workers int) *Tree {
		t.Helper()
		tr, err := StartIncremental(ds, k, BuildOptions{GridSize: 256, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		// Prune mid-construction so Extend also runs on a reweighted tree.
		if err := tr.Prune(Answer{Q: NewQuestion(0, 11), Yes: false}); err != nil {
			t.Fatal(err)
		}
		for tr.Depth() < k {
			if err := tr.Extend(); err != nil {
				t.Fatal(err)
			}
		}
		return tr
	}
	want := treeFingerprint(grow(1))
	for _, workers := range []int{2, 4} {
		if got := treeFingerprint(grow(workers)); got != want {
			t.Errorf("Workers=%d: extended tree differs from sequential", workers)
		}
	}
}

// TestBuildParallelTooLarge: the leaf budget must abort the parallel build
// with the same sentinel as the sequential one.
func TestBuildParallelTooLarge(t *testing.T) {
	ds := overlapLadder(t, 12, 0.1, 4.0) // heavy overlap: thousands of orderings
	for _, workers := range []int{1, 4} {
		_, err := Build(ds, 4, BuildOptions{GridSize: 128, MaxLeaves: 50, Workers: workers})
		if !errors.Is(err, ErrTooLarge) {
			t.Errorf("Workers=%d: err = %v, want ErrTooLarge", workers, err)
		}
	}
}

// TestBuildWorkersDefault: the zero value must keep working (and means "all
// CPUs", which still has to validate against the sequential result — covered
// above; here we only pin that it builds and normalizes).
func TestBuildWorkersDefault(t *testing.T) {
	ds := overlapLadder(t, 8, 0.5, 2.0)
	tr, err := Build(ds, 3, BuildOptions{GridSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}
