package tpo

import (
	"encoding/json"
	"fmt"
	"io"

	"crowdtopk/internal/numeric"
	"crowdtopk/internal/rank"
)

// leafSetJSON is the stable on-disk form of a LeafSet.
type leafSetJSON struct {
	K     int       `json:"k"`
	Paths [][]int   `json:"paths"`
	W     []float64 `json:"weights"`
}

// WriteJSON serializes the leaf set (the complete posterior over top-K
// orderings) for consumption by external tooling — plotting, audits, or
// resuming an uncertainty-reduction session in another process.
func (ls *LeafSet) WriteJSON(w io.Writer) error {
	out := leafSetJSON{K: ls.K, Paths: make([][]int, ls.Len()), W: ls.W}
	for i, p := range ls.Paths {
		out.Paths[i] = p
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// ReadLeafSetJSON loads a leaf set written by WriteJSON, validating that
// weights are non-negative, paths are duplicate-free and lengths agree.
func ReadLeafSetJSON(r io.Reader) (*LeafSet, error) {
	var in leafSetJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("tpo: decoding leaf set: %w", err)
	}
	if len(in.Paths) != len(in.W) {
		return nil, fmt.Errorf("%w: %d paths but %d weights", ErrInvalidInput, len(in.Paths), len(in.W))
	}
	ls := &LeafSet{K: in.K}
	for i, p := range in.Paths {
		if len(p) > in.K {
			return nil, fmt.Errorf("%w: path %d longer than K=%d", ErrInvalidInput, i, in.K)
		}
		seen := make(map[int]bool, len(p))
		for _, id := range p {
			if id < 0 {
				return nil, fmt.Errorf("%w: negative tuple id in path %d", ErrInvalidInput, i)
			}
			if seen[id] {
				return nil, fmt.Errorf("%w: duplicate tuple %d in path %d", ErrInvalidInput, id, i)
			}
			seen[id] = true
		}
		if in.W[i] < 0 {
			return nil, fmt.Errorf("%w: negative weight at %d", ErrInvalidInput, i)
		}
		ls.Paths = append(ls.Paths, rank.Ordering(p))
		ls.W = append(ls.W, in.W[i])
	}
	numeric.Normalize(ls.W)
	return ls, nil
}
