package tpo

import (
	"errors"
	"math/rand"
	"testing"

	"crowdtopk/internal/dist"
	"crowdtopk/internal/numeric"
	"crowdtopk/internal/rank"
)

func TestPathConsistency(t *testing.T) {
	q := NewQuestion(1, 2)
	yes := Answer{Q: q, Yes: true} // 1 ≺ 2
	cases := []struct {
		name string
		path rank.Ordering
		want Consistency
	}{
		{"both present agreeing", rank.Ordering{1, 3, 2}, Consistent},
		{"both present disagreeing", rank.Ordering{2, 1, 3}, Inconsistent},
		{"only higher present", rank.Ordering{3, 1}, Consistent},
		{"only lower present", rank.Ordering{3, 2}, Inconsistent},
		{"neither present", rank.Ordering{3, 4}, Undetermined},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := PathConsistency(c.path, yes); got != c.want {
				t.Fatalf("consistency = %v, want %v", got, c.want)
			}
		})
	}
	no := Answer{Q: q, Yes: false} // 2 ≺ 1
	if got := PathConsistency(rank.Ordering{2, 1}, no); got != Consistent {
		t.Fatalf("no-answer consistency = %v", got)
	}
}

func TestPruneRemovesDisagreeingLeaves(t *testing.T) {
	tree, err := Build(iidUniforms(t, 3), 3, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ans := Answer{Q: NewQuestion(0, 1), Yes: true} // 0 ≺ 1
	if err := tree.Prune(ans); err != nil {
		t.Fatal(err)
	}
	ls := tree.LeafSet()
	if ls.Len() != 3 {
		t.Fatalf("leaves after prune = %d, want 3 of 6", ls.Len())
	}
	for i, p := range ls.Paths {
		if PathConsistency(p, ans) == Inconsistent {
			t.Fatalf("inconsistent leaf %v survived with w=%g", p, ls.W[i])
		}
	}
	if !numeric.AlmostEqual(numeric.Sum(ls.W), 1, 1e-9) {
		t.Fatalf("weights sum to %g after prune", numeric.Sum(ls.W))
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	// Conditional probabilities: iid symmetric, so the three survivors are
	// equally likely.
	for i := range ls.W {
		if !numeric.AlmostEqual(ls.W[i], 1.0/3, 1e-3) {
			t.Fatalf("Pr(%v | 0≺1) = %g, want 1/3", ls.Paths[i], ls.W[i])
		}
	}
}

func TestPruneToSingleOrdering(t *testing.T) {
	tree, err := Build(iidUniforms(t, 3), 3, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []Answer{
		{Q: NewQuestion(0, 1), Yes: true},
		{Q: NewQuestion(1, 2), Yes: true},
	} {
		if err := tree.Prune(a); err != nil {
			t.Fatal(err)
		}
	}
	ls := tree.LeafSet()
	if ls.Len() != 1 || !ls.Paths[0].Equal(rank.Ordering{0, 1, 2}) {
		t.Fatalf("expected unique ordering [0 1 2], got %v", ls.Paths)
	}
}

func TestPruneContradictionRollsBack(t *testing.T) {
	tree, err := Build(iidUniforms(t, 2), 2, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	a := Answer{Q: NewQuestion(0, 1), Yes: true}
	if err := tree.Prune(a); err != nil {
		t.Fatal(err)
	}
	before := tree.LeafSet()
	// The opposite answer now contradicts the only remaining ordering.
	err = tree.Prune(Answer{Q: NewQuestion(0, 1), Yes: false})
	if !errors.Is(err, ErrContradiction) {
		t.Fatalf("err = %v, want ErrContradiction", err)
	}
	after := tree.LeafSet()
	if after.Len() != before.Len() {
		t.Fatal("tree mutated despite contradiction")
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReweightAccuracyOneEqualsPrune(t *testing.T) {
	a, err := Build(iidUniforms(t, 3), 3, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b := a.Clone()
	ans := Answer{Q: NewQuestion(1, 2), Yes: false}
	if err := a.Prune(ans); err != nil {
		t.Fatal(err)
	}
	if err := b.Reweight(ans, 1); err != nil {
		t.Fatal(err)
	}
	la, lb := a.LeafSet(), b.LeafSet()
	if la.Len() != lb.Len() {
		t.Fatalf("prune %d leaves vs reweight(1) %d", la.Len(), lb.Len())
	}
	for i := range la.Paths {
		if !la.Paths[i].Equal(lb.Paths[i]) || !numeric.AlmostEqual(la.W[i], lb.W[i], 1e-12) {
			t.Fatalf("leaf %d differs: %v %g vs %v %g", i, la.Paths[i], la.W[i], lb.Paths[i], lb.W[i])
		}
	}
}

func TestReweightHalfAccuracyIsNoOp(t *testing.T) {
	tree, err := Build(iidUniforms(t, 3), 2, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	before := tree.LeafSet()
	if err := tree.Reweight(Answer{Q: NewQuestion(0, 2), Yes: true}, 0.5); err != nil {
		t.Fatal(err)
	}
	after := tree.LeafSet()
	if before.Len() != after.Len() {
		t.Fatalf("accuracy-0.5 answer changed leaf count %d → %d", before.Len(), after.Len())
	}
	for i := range before.W {
		if !numeric.AlmostEqual(before.W[i], after.W[i], 1e-9) {
			t.Fatalf("weight %d changed: %g → %g", i, before.W[i], after.W[i])
		}
	}
}

func TestReweightShiftsMassTowardConsistent(t *testing.T) {
	tree, err := Build(iidUniforms(t, 3), 3, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ans := Answer{Q: NewQuestion(0, 1), Yes: true}
	if err := tree.Reweight(ans, 0.8); err != nil {
		t.Fatal(err)
	}
	ls := tree.LeafSet()
	if ls.Len() != 6 {
		t.Fatalf("reweight must keep all leaves, got %d", ls.Len())
	}
	var consistentW, inconsistentW float64
	for i, p := range ls.Paths {
		switch PathConsistency(p, ans) {
		case Consistent:
			consistentW += ls.W[i]
		case Inconsistent:
			inconsistentW += ls.W[i]
		}
	}
	// Posterior odds 0.8 : 0.2 over a symmetric prior.
	if !numeric.AlmostEqual(consistentW, 0.8, 1e-3) || !numeric.AlmostEqual(inconsistentW, 0.2, 1e-3) {
		t.Fatalf("posterior masses %g / %g, want 0.8 / 0.2", consistentW, inconsistentW)
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReweightValidation(t *testing.T) {
	tree, err := Build(iidUniforms(t, 2), 2, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, acc := range []float64{0, -0.5, 1.5} {
		if err := tree.Reweight(Answer{Q: NewQuestion(0, 1), Yes: true}, acc); !errors.Is(err, ErrInvalidInput) {
			t.Fatalf("accuracy %g err = %v, want ErrInvalidInput", acc, err)
		}
	}
}

func TestSplitMassesMatchAnswerProb(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ds := make([]dist.Distribution, 5)
	for i := range ds {
		u, err := dist.NewUniformAround(rng.Float64()*2, 1+rng.Float64())
		if err != nil {
			t.Fatal(err)
		}
		ds[i] = u
	}
	tree, err := Build(ds, 3, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ls := tree.LeafSet()
	for _, q := range ls.RelevantQuestions() {
		pi := tree.ProbGreater(q.I, q.J)
		yes, no := ls.Split(q, pi)
		pYes := ls.AnswerProb(q, pi)
		if !numeric.AlmostEqual(yes.Mass(), pYes, 1e-9) {
			t.Fatalf("q=%v: yes mass %g vs AnswerProb %g", q, yes.Mass(), pYes)
		}
		if !numeric.AlmostEqual(yes.Mass()+no.Mass(), 1, 1e-9) {
			t.Fatalf("q=%v: masses %g + %g != 1", q, yes.Mass(), no.Mass())
		}
	}
}

func TestSplitKeepsDeterminedLeavesOnOneSide(t *testing.T) {
	tree, err := Build(iidUniforms(t, 3), 3, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ls := tree.LeafSet()
	q := NewQuestion(0, 1)
	yes, no := ls.Split(q, tree.ProbGreater(0, 1))
	if yes.Len() != 3 || no.Len() != 3 {
		t.Fatalf("split sizes %d / %d, want 3 / 3 (full orderings determine every pair)", yes.Len(), no.Len())
	}
	ay := Answer{Q: q, Yes: true}
	for _, p := range yes.Paths {
		if PathConsistency(p, ay) != Consistent {
			t.Fatalf("yes branch contains %v", p)
		}
	}
	for _, p := range no.Paths {
		if PathConsistency(p, ay) != Inconsistent {
			t.Fatalf("no branch contains %v", p)
		}
	}
}

func TestRelevantQuestionsIIDAllPairs(t *testing.T) {
	tree, err := Build(iidUniforms(t, 4), 4, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	qs := tree.LeafSet().RelevantQuestions()
	if len(qs) != 6 {
		t.Fatalf("relevant questions = %d, want C(4,2) = 6", len(qs))
	}
}

func TestRelevantQuestionsShrinkAfterPrune(t *testing.T) {
	tree, err := Build(iidUniforms(t, 4), 4, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	before := len(tree.LeafSet().RelevantQuestions())
	if err := tree.Prune(Answer{Q: NewQuestion(0, 1), Yes: true}); err != nil {
		t.Fatal(err)
	}
	after := tree.LeafSet().RelevantQuestions()
	if len(after) >= before {
		t.Fatalf("relevant questions %d → %d, expected shrink", before, len(after))
	}
	for _, q := range after {
		if q == NewQuestion(0, 1) {
			t.Fatal("answered question still reported relevant")
		}
	}
}

func TestRelevantQuestionsEmptyForCertainTree(t *testing.T) {
	ds := []dist.Distribution{mustUniform(t, 0, 1), mustUniform(t, 2, 3)}
	tree, err := Build(ds, 2, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if qs := tree.LeafSet().RelevantQuestions(); len(qs) != 0 {
		t.Fatalf("certain ordering has relevant questions %v", qs)
	}
}

func TestLeafSetCloneAndNormalized(t *testing.T) {
	tree, err := Build(iidUniforms(t, 3), 2, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ls := tree.LeafSet()
	cp := ls.Clone()
	cp.W[0] = 99
	cp.Paths[0][0] = 77
	if ls.W[0] == 99 || ls.Paths[0][0] == 77 {
		t.Fatal("Clone shares storage")
	}
	un := &LeafSet{K: 2, Paths: ls.Paths, W: []float64{2, 2, 4}}
	norm := un.Normalized()
	if !numeric.AlmostEqual(norm.Mass(), 1, 1e-12) {
		t.Fatalf("Normalized mass = %g", norm.Mass())
	}
	if un.W[0] != 2 {
		t.Fatal("Normalized mutated the receiver")
	}
}

func TestMostProbableAndEntropy(t *testing.T) {
	ls := &LeafSet{
		K:     2,
		Paths: []rank.Ordering{{0, 1}, {1, 0}},
		W:     []float64{0.75, 0.25},
	}
	if got := ls.MostProbable(); got != 0 {
		t.Fatalf("MostProbable = %d", got)
	}
	wantH := -(0.75*log2(0.75) + 0.25*log2(0.25))
	if got := ls.Entropy(); !numeric.AlmostEqual(got, wantH, 1e-12) {
		t.Fatalf("Entropy = %g, want %g", got, wantH)
	}
}

func log2(x float64) float64 { return numeric.Log2Safe(x) }
