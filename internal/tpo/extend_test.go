package tpo

import (
	"errors"
	"math/rand"
	"sort"
	"testing"

	"crowdtopk/internal/dist"
	"crowdtopk/internal/numeric"
	"crowdtopk/internal/rank"
)

// randomOverlappingUniforms builds n uniform score distributions with
// centers on a lattice and widths that force moderate overlap.
func randomOverlappingUniforms(t *testing.T, rng *rand.Rand, n int) []dist.Distribution {
	t.Helper()
	ds := make([]dist.Distribution, n)
	for i := range ds {
		c := float64(i) + rng.Float64()*0.4
		u, err := dist.NewUniformAround(c, 2.2)
		if err != nil {
			t.Fatal(err)
		}
		ds[i] = u
	}
	return ds
}

func TestIncrementalMatchesFullBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	ds := randomOverlappingUniforms(t, rng, 6)
	const k = 4
	full, err := Build(ds, k, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	inc, err := StartIncremental(ds, k, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for inc.Depth() < k {
		if err := inc.Extend(); err != nil {
			t.Fatal(err)
		}
	}
	lf, li := sortedLeaves(full.LeafSet()), sortedLeaves(inc.LeafSet())
	if len(lf) != len(li) {
		t.Fatalf("full build %d leaves, incremental %d", len(lf), len(li))
	}
	for i := range lf {
		if !lf[i].path.Equal(li[i].path) {
			t.Fatalf("leaf %d: %v vs %v", i, lf[i].path, li[i].path)
		}
		if !numeric.AlmostEqual(lf[i].w, li[i].w, 1e-3) {
			t.Fatalf("leaf %v: full %g vs incremental %g", lf[i].path, lf[i].w, li[i].w)
		}
	}
}

type leafEntry struct {
	path rank.Ordering
	w    float64
}

func sortedLeaves(ls *LeafSet) []leafEntry {
	out := make([]leafEntry, ls.Len())
	for i := range out {
		out[i] = leafEntry{ls.Paths[i], ls.W[i]}
	}
	sort.Slice(out, func(a, b int) bool {
		pa, pb := out[a].path, out[b].path
		for i := 0; i < len(pa) && i < len(pb); i++ {
			if pa[i] != pb[i] {
				return pa[i] < pb[i]
			}
		}
		return len(pa) < len(pb)
	})
	return out
}

func TestExtendAfterPruneConditionsCorrectly(t *testing.T) {
	// Extending a pruned depth-1 tree must weight new levels by the
	// conditional (post-answer) probabilities. Cross-check against pruning
	// the fully built tree with the same answer.
	ds := iidUniforms(t, 3)
	ans := Answer{Q: NewQuestion(0, 1), Yes: true}

	full, err := Build(ds, 3, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := full.Prune(ans); err != nil {
		t.Fatal(err)
	}

	inc, err := StartIncremental(ds, 3, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Depth-1 tree: t1-first branch is inconsistent with 0 ≺ 1 only via
	// paths where 1 appears and 0 doesn't — at depth 1 the leaf {1} IS
	// inconsistent (1 in top-1 implies 1 above 0).
	if err := inc.Prune(ans); err != nil {
		t.Fatal(err)
	}
	for inc.Depth() < 3 {
		if err := inc.Extend(); err != nil {
			t.Fatal(err)
		}
	}
	// The incremental tree prunes earlier, so it may retain paths the full
	// prune killed only if they were undetermined at depth 1... at depth 1
	// every leaf containing 1 is inconsistent; leaf {0} and {2} survive.
	// After extension, orderings starting with 2 then 1 violate the answer
	// only through positions of 0 and 1: 2,1,0 has 1 before 0 → the full
	// prune removed it. Prune again to apply the answer to the new levels.
	if err := inc.Prune(ans); err != nil {
		t.Fatal(err)
	}
	lf, li := sortedLeaves(full.LeafSet()), sortedLeaves(inc.LeafSet())
	if len(lf) != len(li) {
		t.Fatalf("full-then-prune %d leaves, incr-prune-extend %d", len(lf), len(li))
	}
	for i := range lf {
		if !lf[i].path.Equal(li[i].path) || !numeric.AlmostEqual(lf[i].w, li[i].w, 1e-3) {
			t.Fatalf("leaf %d: (%v, %g) vs (%v, %g)", i, lf[i].path, lf[i].w, li[i].path, li[i].w)
		}
	}
}

func TestExtendAtFullDepthErrors(t *testing.T) {
	tree, err := Build(iidUniforms(t, 3), 3, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Extend(); !errors.Is(err, ErrInvalidInput) {
		t.Fatalf("Extend at depth K err = %v", err)
	}
}

func TestExtendRespectsMaxLeaves(t *testing.T) {
	inc, err := StartIncremental(iidUniforms(t, 6), 6, BuildOptions{MaxLeaves: 40})
	if err != nil {
		t.Fatal(err)
	}
	var lastErr error
	for inc.Depth() < 6 {
		if lastErr = inc.Extend(); lastErr != nil {
			break
		}
	}
	if !errors.Is(lastErr, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge before depth 6 (6!=720 leaves)", lastErr)
	}
}

func TestIncrementalDepthProgression(t *testing.T) {
	inc, err := StartIncremental(iidUniforms(t, 4), 3, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if inc.Depth() != 1 {
		t.Fatalf("StartIncremental depth = %d, want 1", inc.Depth())
	}
	if inc.NumLeaves() != 4 {
		t.Fatalf("depth-1 leaves = %d, want 4", inc.NumLeaves())
	}
	if err := inc.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := inc.Extend(); err != nil {
		t.Fatal(err)
	}
	if inc.Depth() != 2 || inc.NumLeaves() != 12 {
		t.Fatalf("depth-2: depth=%d leaves=%d, want 2 and 12", inc.Depth(), inc.NumLeaves())
	}
	if err := inc.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestIncrementalLeafWeightsNormalizedEachLevel(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	ds := randomOverlappingUniforms(t, rng, 7)
	inc, err := StartIncremental(ds, 5, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for inc.Depth() < 5 {
		if mass := inc.LeafMass(); !numeric.AlmostEqual(mass, 1, 1e-9) {
			t.Fatalf("depth %d mass = %g", inc.Depth(), mass)
		}
		if err := inc.Extend(); err != nil {
			t.Fatal(err)
		}
	}
	if mass := inc.LeafMass(); !numeric.AlmostEqual(mass, 1, 1e-9) {
		t.Fatalf("final mass = %g", mass)
	}
}
