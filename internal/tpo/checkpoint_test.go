package tpo

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"crowdtopk/internal/dist"
)

// ulpClose compares leaf weights across a checkpoint boundary: snapshot
// weights are normalized while in-tree posteriors are only nearly so, which
// leaves ulp-level differences that never affect rankings or selections.
func ulpClose(a, b float64) bool {
	return math.Abs(a-b) <= 1e-12*math.Max(math.Abs(a), 1e-300)
}

func checkpointDists(t *testing.T, n int) []dist.Distribution {
	t.Helper()
	ds := make([]dist.Distribution, n)
	for i := range ds {
		u, err := dist.NewUniformAround(1+0.3*float64(i), 1.6)
		if err != nil {
			t.Fatal(err)
		}
		ds[i] = u
	}
	return ds
}

// TestCheckpointRoundTrip: envelope → ReadCheckpoint reproduces the leaf set
// exactly (paths, order and weights), and the digest is enforced.
func TestCheckpointRoundTrip(t *testing.T) {
	ds := checkpointDists(t, 6)
	tree, err := Build(ds, 3, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ls := tree.LeafSet()
	var buf bytes.Buffer
	const digest = "sha256:feedface"
	if err := ls.WriteCheckpoint(&buf, digest); err != nil {
		t.Fatal(err)
	}

	got, err := ReadCheckpoint(bytes.NewReader(buf.Bytes()), digest)
	if err != nil {
		t.Fatal(err)
	}
	if got.K != ls.K || got.Len() != ls.Len() {
		t.Fatalf("restored K=%d len=%d, want K=%d len=%d", got.K, got.Len(), ls.K, ls.Len())
	}
	for i := range ls.Paths {
		if got.W[i] != ls.W[i] {
			t.Fatalf("leaf %d weight drift: %v vs %v", i, got.W[i], ls.W[i])
		}
		for d := range ls.Paths[i] {
			if got.Paths[i][d] != ls.Paths[i][d] {
				t.Fatalf("leaf %d path drift: %v vs %v", i, got.Paths[i], ls.Paths[i])
			}
		}
	}

	// Digest mismatch: typed error naming the field.
	_, err = ReadCheckpoint(bytes.NewReader(buf.Bytes()), "sha256:other")
	var mm *MismatchError
	if !errors.As(err, &mm) || mm.Field != "dataset digest" {
		t.Fatalf("digest mismatch error = %v, want *MismatchError on dataset digest", err)
	}
	// Empty expectation skips the digest check (caller opted out).
	if _, err := ReadCheckpoint(bytes.NewReader(buf.Bytes()), ""); err != nil {
		t.Fatalf("digest check opt-out failed: %v", err)
	}
}

func TestCheckpointRejectsForeignPayloads(t *testing.T) {
	// Wrong kind.
	_, err := ReadCheckpoint(strings.NewReader(`{"schema":1,"kind":"other","leaves":{}}`), "")
	var mm *MismatchError
	if !errors.As(err, &mm) || mm.Field != "kind" {
		t.Fatalf("kind mismatch error = %v", err)
	}
	// Future schema.
	_, err = ReadCheckpoint(strings.NewReader(`{"schema":99,"kind":"crowdtopk/leafset","leaves":{}}`), "")
	if !errors.As(err, &mm) || mm.Field != "schema" {
		t.Fatalf("schema mismatch error = %v", err)
	}
	// A bare WriteJSON payload (no envelope) must be rejected, not silently
	// mis-restored.
	ds := checkpointDists(t, 4)
	tree, err := Build(ds, 2, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var bare bytes.Buffer
	if err := tree.LeafSet().WriteJSON(&bare); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCheckpoint(&bare, ""); err == nil {
		t.Fatal("bare leaf-set JSON accepted as a checkpoint")
	}
}

// TestFromLeafSet: a tree rebuilt from a snapshot enumerates the identical
// leaf set and behaves identically under pruning and extension.
func TestFromLeafSet(t *testing.T) {
	ds := checkpointDists(t, 6)
	orig, err := Build(ds, 3, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Condition the original a little so weights are non-uniformly scaled.
	if err := orig.Prune(Answer{Q: NewQuestion(0, 5), Yes: false}); err != nil {
		t.Fatal(err)
	}
	ls := orig.LeafSet()

	restored, err := FromLeafSet(ds, 3, ls, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.Validate(); err != nil {
		t.Fatal(err)
	}
	rls := restored.LeafSet()
	if rls.Len() != ls.Len() || rls.K != ls.K {
		t.Fatalf("restored leaf set %d@%d, want %d@%d", rls.Len(), rls.K, ls.Len(), ls.K)
	}
	for i := range ls.Paths {
		if rls.W[i] != ls.W[i] {
			t.Fatalf("leaf %d: weight %v vs %v", i, rls.W[i], ls.W[i])
		}
		for d := range ls.Paths[i] {
			if rls.Paths[i][d] != ls.Paths[i][d] {
				t.Fatalf("leaf %d: path order not preserved: %v vs %v", i, rls.Paths[i], ls.Paths[i])
			}
		}
	}

	// Same future: prune both with the same answer and compare exactly.
	a := Answer{Q: NewQuestion(2, 4), Yes: true}
	if err := orig.Prune(a); err != nil {
		t.Fatal(err)
	}
	if err := restored.Prune(a); err != nil {
		t.Fatal(err)
	}
	ols, rls2 := orig.LeafSet(), restored.LeafSet()
	if ols.Len() != rls2.Len() {
		t.Fatalf("post-prune leaf counts diverge: %d vs %d", ols.Len(), rls2.Len())
	}
	for i := range ols.W {
		if !ulpClose(ols.W[i], rls2.W[i]) {
			t.Fatalf("post-prune leaf %d: weight %v vs %v", i, ols.W[i], rls2.W[i])
		}
	}
}

// TestFromLeafSetExtends: a partially built (incr) tree restored from its
// snapshot extends to the same next level as the original.
func TestFromLeafSetExtends(t *testing.T) {
	ds := checkpointDists(t, 6)
	orig, err := StartIncremental(ds, 3, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := orig.Extend(); err != nil { // depth 2 of 3
		t.Fatal(err)
	}
	ls := orig.LeafSet()
	restored, err := FromLeafSet(ds, 3, ls, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if restored.Depth() != 2 {
		t.Fatalf("restored depth = %d, want 2", restored.Depth())
	}
	if err := orig.Extend(); err != nil {
		t.Fatal(err)
	}
	if err := restored.Extend(); err != nil {
		t.Fatal(err)
	}
	ols, rls := orig.LeafSet(), restored.LeafSet()
	if ols.Len() != rls.Len() {
		t.Fatalf("extended leaf counts diverge: %d vs %d", ols.Len(), rls.Len())
	}
	for i := range ols.W {
		if !ulpClose(ols.W[i], rls.W[i]) {
			t.Fatalf("extended leaf %d: weight %v vs %v", i, ols.W[i], rls.W[i])
		}
		for d := range ols.Paths[i] {
			if ols.Paths[i][d] != rls.Paths[i][d] {
				t.Fatalf("extended leaf %d: path %v vs %v", i, ols.Paths[i], rls.Paths[i])
			}
		}
	}
}

func TestFromLeafSetRejectsBadInput(t *testing.T) {
	ds := checkpointDists(t, 4)
	tree, err := Build(ds, 2, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ls := tree.LeafSet()
	if _, err := FromLeafSet(ds, 2, &LeafSet{K: 2}, BuildOptions{}); !errors.Is(err, ErrInvalidInput) {
		t.Fatalf("empty leaf set: %v", err)
	}
	if _, err := FromLeafSet(ds, 1, ls, BuildOptions{}); !errors.Is(err, ErrInvalidInput) {
		t.Fatalf("depth beyond K: %v", err)
	}
	bad := ls.Clone()
	bad.Paths[0][0] = 99
	if _, err := FromLeafSet(ds, 2, bad, BuildOptions{}); !errors.Is(err, ErrInvalidInput) {
		t.Fatalf("out-of-range tuple id: %v", err)
	}
}
