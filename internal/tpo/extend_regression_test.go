package tpo

import (
	"math/rand"
	"testing"

	"crowdtopk/internal/dist"
	"crowdtopk/internal/numeric"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// TestExtendLowMassPrefixRegression reproduces a failure found running the
// Fig. 1 workload: a depth-4 prefix whose raw probability is barely above
// the build epsilon has extensions that all fall below it in absolute terms,
// which used to abort incremental construction with ErrContradiction.
// The fix retries the level expansion thresholdlessly, because only the
// relative split of the parent's (posterior) mass matters.
func TestExtendLowMassPrefixRegression(t *testing.T) {
	// The exact Fig. 1 default workload that exposed the bug.
	ds := make([]dist.Distribution, 20)
	rngSeeded := newLatticeUniforms(t, 20, 0.5, 3.5, 2016)
	copy(ds, rngSeeded)
	inc, err := StartIncremental(ds, 5, BuildOptions{GridSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	for inc.Depth() < 5 {
		if err := inc.Extend(); err != nil {
			t.Fatalf("extend to depth %d: %v", inc.Depth()+1, err)
		}
	}
	if err := inc.Validate(); err != nil {
		t.Fatal(err)
	}
	if mass := inc.LeafMass(); !numeric.AlmostEqual(mass, 1, 1e-9) {
		t.Fatalf("leaf mass = %g", mass)
	}
}

// newLatticeUniforms mirrors dataset.Generate's uniform lattice without
// importing it (the dataset package depends on dist only, but keeping tpo's
// tests free of it preserves the dependency layering).
func newLatticeUniforms(t *testing.T, n int, spacing, width float64, seed int64) []dist.Distribution {
	t.Helper()
	// Replicate dataset.Generate(Spec{N, Spacing, Width, Seed}) exactly:
	// center = i·spacing + U[-jitter, jitter], jitter = spacing/2.
	rng := newRand(seed)
	out := make([]dist.Distribution, n)
	for i := range out {
		center := float64(i)*spacing + (rng.Float64()*2-1)*spacing/2
		u, err := dist.NewUniformAround(center, width)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = u
	}
	return out
}
