package tpo

import (
	"fmt"
	"io"
)

// WriteDOT renders the tree in Graphviz DOT format: one node per TPO node
// labelled with its tuple id and prefix probability, edges top rank to
// bottom. Useful with `cmd/crowdtopk viz` to inspect small trees.
func (t *Tree) WriteDOT(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "digraph tpo {"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, `  rankdir=TB; node [shape=box, fontname="monospace"];`); err != nil {
		return err
	}
	id := 0
	var rec func(n *Node, parentID int) error
	rec = func(n *Node, parentID int) error {
		myID := id
		id++
		label := "root"
		if n.Tuple >= 0 {
			label = fmt.Sprintf("t%d\\np=%.4f", n.Tuple, n.Prob)
		}
		if _, err := fmt.Fprintf(w, "  n%d [label=\"%s\"];\n", myID, label); err != nil {
			return err
		}
		if parentID >= 0 {
			if _, err := fmt.Fprintf(w, "  n%d -> n%d;\n", parentID, myID); err != nil {
				return err
			}
		}
		for _, c := range n.Children {
			if err := rec(c, myID); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(t.Root, -1); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
