package tpo

import (
	"testing"

	"crowdtopk/internal/dist"
)

// overlappingDists builds n overlapping uniforms (the standard shape the
// selection tests use) so trees carry several leaves per level.
func overlappingDists(t *testing.T, n int) []dist.Distribution {
	t.Helper()
	ds := make([]dist.Distribution, n)
	for i := range ds {
		u, err := dist.NewUniformAround(float64(i)*0.5, 1.6)
		if err != nil {
			t.Fatal(err)
		}
		ds[i] = u
	}
	return ds
}

// TestLeafSetIntoMatchesLeafSet pins that the buffer-reusing snapshot is
// element-for-element identical to LeafSet (bitwise weights included), stays
// flat-backed, and actually reuses the backing array across calls.
func TestLeafSetIntoMatchesLeafSet(t *testing.T) {
	tree, err := Build(overlappingDists(t, 6), 3, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf *LeafSet
	for step := 0; step < 4; step++ {
		want := tree.LeafSet()
		buf = tree.LeafSetInto(buf)
		if buf.K != want.K || buf.Len() != want.Len() {
			t.Fatalf("step %d: shape (%d,%d) != (%d,%d)", step, buf.K, buf.Len(), want.K, want.Len())
		}
		if _, ok := buf.Flat(); !ok {
			t.Fatalf("step %d: LeafSetInto result is not flat-backed", step)
		}
		for i := 0; i < want.Len(); i++ {
			if buf.W[i] != want.W[i] {
				t.Fatalf("step %d leaf %d: weight %v != %v", step, i, buf.W[i], want.W[i])
			}
			if !buf.Paths[i].Equal(want.Paths[i]) {
				t.Fatalf("step %d leaf %d: path %v != %v", step, i, buf.Paths[i], want.Paths[i])
			}
		}
		// Shrink the tree so the next iteration refills a smaller set into
		// the same (now oversized) backing.
		qs := want.RelevantQuestions()
		if len(qs) == 0 {
			break
		}
		if err := tree.Prune(Answer{Q: qs[0], Yes: true}); err != nil {
			t.Fatal(err)
		}
	}
	if buf == nil {
		t.Fatal("no snapshots taken")
	}
	// Reuse check: refilling into a sufficient buffer must keep the backing.
	flatBefore, _ := buf.Flat()
	again := tree.LeafSetInto(buf)
	flatAfter, _ := again.Flat()
	if again != buf || (len(flatBefore) > 0 && len(flatAfter) > 0 && &flatBefore[0] != &flatAfter[0]) {
		t.Fatal("LeafSetInto did not reuse the provided buffer")
	}
	if got := tree.LeafSetInto(nil); got == nil || got.Len() != buf.Len() {
		t.Fatal("LeafSetInto(nil) did not fall back to LeafSet")
	}
}
