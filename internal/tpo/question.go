// Package tpo implements the Tree of Possible Orderings (TPO) of Soliman &
// Ilyas: the space of total orderings compatible with a set of uncertain
// tuple scores, truncated at depth K for top-K query processing. It provides
// exact construction on a shared numerical grid (chained one-dimensional
// integrals in the style of Li & Deshpande), pruning under crowd answers,
// Bayesian reweighting for noisy workers, and level-wise incremental
// extension for the paper's incr algorithm.
package tpo

import "fmt"

// Question is the crowd task q = t_I ?≺ t_J: "does tuple I rank higher than
// tuple J?". Questions are canonicalized so that I < J; use the Yes/No answer
// to encode direction.
type Question struct {
	I, J int
}

// NewQuestion returns the canonical question comparing tuples a and b.
// It panics if a == b, which would be a meaningless self-comparison.
func NewQuestion(a, b int) Question {
	if a == b {
		panic(fmt.Sprintf("tpo: question comparing tuple %d with itself", a))
	}
	if a > b {
		a, b = b, a
	}
	return Question{I: a, J: b}
}

// String implements fmt.Stringer.
func (q Question) String() string { return fmt.Sprintf("t%d ?≺ t%d", q.I, q.J) }

// Answer is a crowd worker's reply to a Question. Yes means t_I ≺ t_J
// (I ranks higher); No means t_J ≺ t_I.
type Answer struct {
	Q   Question
	Yes bool
}

// String implements fmt.Stringer.
func (a Answer) String() string {
	if a.Yes {
		return fmt.Sprintf("t%d ≺ t%d", a.Q.I, a.Q.J)
	}
	return fmt.Sprintf("t%d ≺ t%d", a.Q.J, a.Q.I)
}

// Higher returns the tuple the answer asserts ranks higher, and Lower the
// other one.
func (a Answer) Higher() int {
	if a.Yes {
		return a.Q.I
	}
	return a.Q.J
}

// Lower returns the tuple the answer asserts ranks lower.
func (a Answer) Lower() int {
	if a.Yes {
		return a.Q.J
	}
	return a.Q.I
}
