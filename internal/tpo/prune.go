package tpo

import (
	"fmt"

	"crowdtopk/internal/numeric"
	"crowdtopk/internal/rank"
)

// Consistency describes how a leaf path relates to an answer.
type Consistency int

// Consistency values.
const (
	// Consistent: the path implies the answered order.
	Consistent Consistency = iota
	// Inconsistent: the path implies the opposite order.
	Inconsistent
	// Undetermined: the path contains neither tuple, so the answer carries
	// no information about it.
	Undetermined
)

// PathConsistency classifies the prefix ordering against an answer. A top-K
// prefix implies x ≺ y when x appears before y, or when x appears and y does
// not (y is then ranked below the K-th position, hence below x).
func PathConsistency(path rank.Ordering, a Answer) Consistency {
	switch path.Before(a.Higher(), a.Lower()) {
	case 1:
		return Consistent
	case -1:
		return Inconsistent
	default:
		return Undetermined
	}
}

// Prune removes every leaf inconsistent with the answer and renormalizes.
// It is the trusted-worker (accuracy 1) update of §III. ErrContradiction is
// returned when the answer conflicts with every remaining ordering; the tree
// is left unchanged in that case.
func (t *Tree) Prune(a Answer) error {
	return t.applyAnswer(a, 1)
}

// Reweight applies the noisy-worker Bayesian update of §III.C: each leaf's
// probability is multiplied by the likelihood of the observed answer given
// the ordering — accuracy for consistent leaves, 1−accuracy for inconsistent
// ones, and the model marginal for undetermined ones — and the tree is
// renormalized. accuracy must lie in (0, 1]; Reweight(a, 1) equals Prune(a).
func (t *Tree) Reweight(a Answer, accuracy float64) error {
	if accuracy <= 0 || accuracy > 1 {
		return fmt.Errorf("%w: worker accuracy %g outside (0, 1]", ErrInvalidInput, accuracy)
	}
	return t.applyAnswer(a, accuracy)
}

func (t *Tree) applyAnswer(a Answer, accuracy float64) error {
	type saved struct {
		n *Node
		p float64
	}
	var undo []saved
	t.walkLeaves(func(n *Node, path rank.Ordering) {
		undo = append(undo, saved{n, n.Prob})
		switch PathConsistency(path, a) {
		case Consistent:
			n.Prob *= accuracy
		case Inconsistent:
			n.Prob *= 1 - accuracy
		case Undetermined:
			// The answer observation likelihood is the same for both
			// hypothetical orders of the pair below rank K; it cancels in
			// the renormalization, so the weight is unchanged.
		}
	})
	if err := t.renormalize(); err != nil {
		for _, s := range undo {
			s.n.Prob = s.p
		}
		return fmt.Errorf("%s: %w", a, err)
	}
	return nil
}

// Split partitions the leaf set by a question: the probability-weighted
// outcome of answering q "yes" (I ≺ J) and "no". Undetermined leaves appear
// in both branches with weight scaled by the score-model pairwise
// probability piYes = Pr(s_I > s_J). The returned sets are unnormalized;
// their masses are the answer probabilities Pr(yes) and Pr(no).
func (ls *LeafSet) Split(q Question, piYes float64) (yes, no *LeafSet) {
	yes = &LeafSet{K: ls.K}
	no = &LeafSet{K: ls.K}
	ansYes := Answer{Q: q, Yes: true}
	for i, p := range ls.Paths {
		w := ls.W[i]
		if w == 0 {
			continue
		}
		switch PathConsistency(p, ansYes) {
		case Consistent:
			yes.Paths = append(yes.Paths, p)
			yes.W = append(yes.W, w)
		case Inconsistent:
			no.Paths = append(no.Paths, p)
			no.W = append(no.W, w)
		case Undetermined:
			if piYes > 0 {
				yes.Paths = append(yes.Paths, p)
				yes.W = append(yes.W, w*piYes)
			}
			if piYes < 1 {
				no.Paths = append(no.Paths, p)
				no.W = append(no.W, w*(1-piYes))
			}
		}
	}
	return yes, no
}

// Mass returns the total weight of the (possibly unnormalized) leaf set.
func (ls *LeafSet) Mass() float64 { return numeric.Sum(ls.W) }

// Normalized returns a copy of the leaf set scaled to unit mass. A zero-mass
// set is returned unchanged.
func (ls *LeafSet) Normalized() *LeafSet {
	out := &LeafSet{K: ls.K, Paths: ls.Paths, W: append([]float64(nil), ls.W...)}
	numeric.Normalize(out.W)
	return out
}

// AnswerProb returns Pr(answer = yes) for question q over the (normalized)
// leaf set: determined leaves vote with their weight, undetermined leaves
// contribute their weight times the model probability piYes.
func (ls *LeafSet) AnswerProb(q Question, piYes float64) float64 {
	ansYes := Answer{Q: q, Yes: true}
	var pk numeric.KahanSum
	for i, p := range ls.Paths {
		switch PathConsistency(p, ansYes) {
		case Consistent:
			pk.Add(ls.W[i])
		case Undetermined:
			pk.Add(ls.W[i] * piYes)
		case Inconsistent:
		}
	}
	return numeric.Clamp(pk.Sum(), 0, 1)
}

// RelevantQuestions returns Q_K: the canonical questions over tuple pairs
// whose relative order the tree leaves leave uncertain — i.e. both answers
// have positive probability of pruning something. These are exactly the
// informative crowd tasks of §III.
func (ls *LeafSet) RelevantQuestions() []Question {
	tuples := ls.Tuples()
	var out []Question
	for a := 0; a < len(tuples); a++ {
		for b := a + 1; b < len(tuples); b++ {
			q := NewQuestion(tuples[a], tuples[b])
			ansYes := Answer{Q: q, Yes: true}
			var yesW, noW float64
			for i, p := range ls.Paths {
				switch PathConsistency(p, ansYes) {
				case Consistent:
					yesW += ls.W[i]
				case Inconsistent:
					noW += ls.W[i]
				case Undetermined:
				}
			}
			if yesW > 0 && noW > 0 {
				out = append(out, q)
			}
		}
	}
	return out
}
