package tpo

import (
	"fmt"
	"testing"

	"crowdtopk/internal/dist"
)

// benchLadder mirrors the paper-scale workload (N=20, K=5, width/spacing=7)
// without importing internal/dataset (which would cycle through the engine
// tests' helpers).
func benchLadder(b *testing.B, n int, spacing, width float64) []dist.Distribution {
	b.Helper()
	ds := make([]dist.Distribution, n)
	for i := range ds {
		c := float64(i) * spacing
		u, err := dist.NewUniform(c-width/2, c+width/2)
		if err != nil {
			b.Fatal(err)
		}
		ds[i] = u
	}
	return ds
}

// BenchmarkBuildWorkers measures the tentpole claim: the N=20, K=5 full
// build with Workers=4 must be ≥2× faster than Workers=1, with byte-
// identical output (pinned by TestBuildParallelDeterminism). Compare the
// per-worker-count ns/op columns.
func BenchmarkBuildWorkers(b *testing.B) {
	ds := benchLadder(b, 20, 0.5, 3.5)
	const k = 5
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("N=20/K=5/workers=%d", workers), func(b *testing.B) {
			opt := BuildOptions{GridSize: 512, Workers: workers}
			for i := 0; i < b.N; i++ {
				tree, err := Build(ds, k, opt)
				if err != nil {
					b.Fatal(err)
				}
				if tree.NumLeaves() == 0 {
					b.Fatal("empty tree")
				}
			}
		})
	}
}

// BenchmarkExtendWorkers measures the incremental path: growing one level of
// a wide tree is a per-leaf fan-out, the unit of Extend's worker pool.
func BenchmarkExtendWorkers(b *testing.B) {
	ds := benchLadder(b, 16, 0.5, 3.0)
	const k = 4
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opt := BuildOptions{GridSize: 512, Workers: workers}
			for i := 0; i < b.N; i++ {
				tr, err := StartIncremental(ds, k, opt)
				if err != nil {
					b.Fatal(err)
				}
				for tr.Depth() < k {
					if err := tr.Extend(); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}
