package tpo

import (
	"fmt"
	"sync/atomic"

	"crowdtopk/internal/dist"
	"crowdtopk/internal/par"
	"crowdtopk/internal/rank"
)

// StartIncremental prepares a depth-1 tree for the incr algorithm of §III.D:
// the TPO is materialized one level at a time (Extend), alternating with
// question rounds and pruning, instead of paying the full depth-K
// construction up front.
func StartIncremental(ds []dist.Distribution, k int, opt BuildOptions) (*Tree, error) {
	t, err := prepare(ds, k, opt)
	if err != nil {
		return nil, err
	}
	t.opt = opt.withDefaults()
	if err := t.Extend(); err != nil {
		return nil, err
	}
	return t, nil
}

// Extend materializes one more level of the tree, splitting each current
// leaf's posterior probability among its children in proportion to the exact
// prefix-extension probabilities. It returns ErrTooLarge when the new level
// would exceed the leaf budget and leaves the tree unchanged in that case,
// and ErrInvalidInput once the tree is already at depth K.
//
// Leaves grow concurrently when opt.Workers permits: each leaf's children
// are an independent job (the survival chain is rebuilt from its path, so
// jobs share only the immutable grid samples and the leaf budget), and the
// staged results are attached in leaf order, making the extended tree
// identical for every worker count.
func (t *Tree) Extend() error {
	if t.depth >= t.K {
		return fmt.Errorf("%w: tree already at depth %d = K", ErrInvalidInput, t.depth)
	}
	opt := t.opt.withDefaults()

	type job struct {
		leaf *Node
		path rank.Ordering
	}
	var jobs []job
	if t.depth == 0 {
		jobs = append(jobs, job{t.Root, rank.Ordering{}})
	} else {
		t.walkLeaves(func(n *Node, path rank.Ordering) {
			jobs = append(jobs, job{n, path.Clone()})
		})
	}

	// Children are staged per leaf and only attached once every job
	// succeeded, so a failed extension leaves the tree unchanged.
	staged := make([][]*Node, len(jobs))
	leaves := new(atomic.Int64)
	workers := opt.Workers
	if workers < 1 {
		workers = 1
	}
	builders := make([]*builder, workers)
	errs := par.For(len(jobs), workers, func(w, i int) error {
		if builders[w] == nil {
			builders[w] = newBuilder(t, opt, leaves)
		}
		var err error
		staged[i], err = builders[w].childrenOf(jobs[i].path, jobs[i].leaf.Prob)
		return err
	})
	if err := par.FirstError(errs); err != nil {
		return err
	}
	for i, children := range staged {
		jobs[i].leaf.Children = children
	}
	t.depth++
	return t.renormalize()
}

// childrenOf computes the children of the prefix `path`, assigning them the
// parent's posterior mass split by the relative raw extension probabilities.
// The survival chain C is rebuilt by walking the path from the root, so the
// method works on pruned and reweighted trees whose stored chains are gone.
func (b *builder) childrenOf(path rank.Ordering, parentPosterior float64) ([]*Node, error) {
	g := b.t.grid
	gl := g.Len()
	c := make([]float64, gl)
	for i := range c {
		c[i] = 1
	}
	for _, id := range path {
		pdf := b.t.pdfs[id]
		for i := 0; i < gl; i++ {
			c[i] *= pdf[i]
		}
		g.CumTrapezoidRight(c, c)
	}
	inPath := make(map[int]bool, len(path))
	for _, id := range path {
		inPath[id] = true
	}
	remaining := make([]int, 0, len(b.t.Dists)-len(path))
	for id := range b.t.Dists {
		if !inPath[id] {
			remaining = append(remaining, id)
		}
	}

	parent := &Node{Tuple: -1, Prob: parentPosterior, depth: len(path)}
	// expand with k = depth+1 materializes exactly one level.
	if err := b.expand(parent, c, remaining, len(path)+1, nil); err != nil {
		return nil, err
	}
	if len(parent.Children) == 0 {
		// Every extension fell below ProbEpsilon: the prefix itself carries
		// tiny raw mass, so its children's absolute masses vanish even
		// though they must sum to the parent's. Retry thresholdless with a
		// dedicated builder (same tree, same shared leaf budget) — the
		// relative split is what matters here.
		noEps := newBuilder(b.t, b.opt, b.leaves)
		noEps.opt.ProbEpsilon = 1e-300
		if err := noEps.expand(parent, c, remaining, len(path)+1, nil); err != nil {
			return nil, err
		}
	}
	raw := 0.0
	for _, ch := range parent.Children {
		raw += ch.Prob
	}
	if raw <= 0 {
		return nil, fmt.Errorf("%w: prefix %v admits no extension", ErrContradiction, path)
	}
	for _, ch := range parent.Children {
		ch.Prob = parentPosterior * ch.Prob / raw
	}
	return parent.Children, nil
}
