package tpo

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"crowdtopk/internal/numeric"
	"crowdtopk/internal/rank"
)

func TestComputeStatsIID(t *testing.T) {
	tree, err := Build(iidUniforms(t, 3), 3, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	st := tree.ComputeStats()
	if st.Leaves != 6 || st.Tuples != 3 || st.Depth != 3 {
		t.Fatalf("stats = %+v", st)
	}
	wantNodes := []int{3, 6, 6}
	for i, w := range wantNodes {
		if st.NodesPerLevel[i] != w {
			t.Fatalf("NodesPerLevel = %v, want %v", st.NodesPerLevel, wantNodes)
		}
	}
	// Root has 3 children; level-1 nodes have 2 each; level-2 have 1.
	wantBranch := []float64{3, 2, 1}
	for i, w := range wantBranch {
		if !numeric.AlmostEqual(st.MeanBranching[i], w, 1e-9) {
			t.Fatalf("MeanBranching = %v, want %v", st.MeanBranching, wantBranch)
		}
	}
	// Level entropies of the iid tree: log2(3), log2(6), log2(6).
	want := []float64{math.Log2(3), math.Log2(6), math.Log2(6)}
	for i, w := range want {
		if math.Abs(st.LevelEntropy[i]-w) > 0.01 {
			t.Fatalf("LevelEntropy = %v, want %v", st.LevelEntropy, want)
		}
	}
	if s := st.String(); !strings.Contains(s, "leaves 6") {
		t.Fatalf("String = %q", s)
	}
}

func TestComputeStatsAfterPrune(t *testing.T) {
	tree, err := Build(iidUniforms(t, 3), 3, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Prune(Answer{Q: NewQuestion(0, 1), Yes: true}); err != nil {
		t.Fatal(err)
	}
	st := tree.ComputeStats()
	if st.Leaves != 3 {
		t.Fatalf("leaves after prune = %d", st.Leaves)
	}
	// Level-1 entropy covers the 3 possible leaders {0, 2} — tuple 1 can
	// no longer lead.
	if st.LevelEntropy[0] >= math.Log2(3) {
		t.Fatalf("level-1 entropy %g did not drop below log2(3)", st.LevelEntropy[0])
	}
}

func TestSampleOrderingMatchesWeights(t *testing.T) {
	ls := &LeafSet{
		K:     2,
		Paths: []rank.Ordering{{0, 1}, {1, 0}},
		W:     []float64{0.8, 0.2},
	}
	rng := rand.New(rand.NewSource(9))
	const n = 20000
	first := 0
	for i := 0; i < n; i++ {
		o := ls.SampleOrdering(rng)
		if o.Equal(rank.Ordering{0, 1}) {
			first++
		}
	}
	frac := float64(first) / n
	if math.Abs(frac-0.8) > 0.02 {
		t.Fatalf("sampled frequency %g, want ≈0.8", frac)
	}
	if got := (&LeafSet{}).SampleOrdering(rng); got != nil {
		t.Fatalf("empty set sample = %v", got)
	}
	// Sampling must return a copy.
	o := ls.SampleOrdering(rng)
	o[0] = 99
	if ls.Paths[0][0] == 99 || ls.Paths[1][0] == 99 {
		t.Fatal("SampleOrdering returned shared storage")
	}
}

func TestTopKProbability(t *testing.T) {
	ls := &LeafSet{
		K:     2,
		Paths: []rank.Ordering{{0, 1}, {0, 2}},
		W:     []float64{0.6, 0.4},
	}
	pr := ls.TopKProbability()
	if !numeric.AlmostEqual(pr[0], 1, 1e-12) {
		t.Fatalf("Pr(0 in top-2) = %g", pr[0])
	}
	if !numeric.AlmostEqual(pr[1], 0.6, 1e-12) || !numeric.AlmostEqual(pr[2], 0.4, 1e-12) {
		t.Fatalf("marginals = %v", pr)
	}
}

func TestRankProbability(t *testing.T) {
	ls := &LeafSet{
		K:     2,
		Paths: []rank.Ordering{{0, 1}, {1, 0}},
		W:     []float64{0.7, 0.3},
	}
	p0 := ls.RankProbability(0)
	if !numeric.AlmostEqual(p0[0], 0.7, 1e-12) || !numeric.AlmostEqual(p0[1], 0.3, 1e-12) {
		t.Fatalf("rank probabilities of 0 = %v", p0)
	}
	pAbsent := ls.RankProbability(9)
	if pAbsent[0] != 0 || pAbsent[1] != 0 {
		t.Fatalf("absent tuple probabilities = %v", pAbsent)
	}
}

func TestLeafSetJSONRoundTrip(t *testing.T) {
	tree, err := Build(iidUniforms(t, 3), 2, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ls := tree.LeafSet()
	var buf bytes.Buffer
	if err := ls.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadLeafSetJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.K != ls.K || back.Len() != ls.Len() {
		t.Fatalf("round trip: K %d→%d, len %d→%d", ls.K, back.K, ls.Len(), back.Len())
	}
	for i := range ls.Paths {
		if !ls.Paths[i].Equal(back.Paths[i]) {
			t.Fatalf("path %d changed: %v vs %v", i, ls.Paths[i], back.Paths[i])
		}
		if !numeric.AlmostEqual(ls.W[i], back.W[i], 1e-12) {
			t.Fatalf("weight %d changed: %g vs %g", i, ls.W[i], back.W[i])
		}
	}
}

func TestReadLeafSetJSONValidation(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"garbage", "not json"},
		{"length mismatch", `{"k":2,"paths":[[0,1]],"weights":[0.5,0.5]}`},
		{"path too long", `{"k":1,"paths":[[0,1]],"weights":[1]}`},
		{"duplicate id", `{"k":2,"paths":[[1,1]],"weights":[1]}`},
		{"negative id", `{"k":2,"paths":[[-1,1]],"weights":[1]}`},
		{"negative weight", `{"k":2,"paths":[[0,1]],"weights":[-1]}`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ReadLeafSetJSON(strings.NewReader(c.in)); err == nil {
				t.Fatalf("accepted %q", c.in)
			}
		})
	}
}

func TestSampledOrderingsAgreeWithLevelEntropy(t *testing.T) {
	// Property link between two independent code paths: the empirical
	// first-rank distribution of sampled orderings must match the tree's
	// level-1 entropy profile source (root children probabilities).
	tree, err := Build(iidUniforms(t, 4), 2, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ls := tree.LeafSet()
	rng := rand.New(rand.NewSource(31))
	counts := map[int]int{}
	const n = 40000
	for i := 0; i < n; i++ {
		counts[ls.SampleOrdering(rng)[0]]++
	}
	for _, c := range tree.Root.Children {
		emp := float64(counts[c.Tuple]) / n
		if math.Abs(emp-c.Prob) > 0.01 {
			t.Fatalf("tuple %d: empirical first-rank %g vs tree %g", c.Tuple, emp, c.Prob)
		}
	}
}
