package uncertainty

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"crowdtopk/internal/rank"
	"crowdtopk/internal/tpo"
)

// lsView adapts a normalized LeafSet to View for testing, optionally with
// prefix grouping (computed the slow way, by hashing prefixes).
type lsView struct {
	ls      *tpo.LeafSet
	grouped bool
	groups  [][]int32
	counts  []int
}

func newLSView(ls *tpo.LeafSet, grouped bool) *lsView {
	v := &lsView{ls: ls, grouped: grouped}
	if grouped {
		v.groups = make([][]int32, ls.K)
		v.counts = make([]int, ls.K)
		for l := 1; l <= ls.K; l++ {
			ids := map[string]int32{}
			row := make([]int32, ls.Len())
			for i, p := range ls.Paths {
				key := fmt.Sprint(p[:min(l, len(p))])
				id, ok := ids[key]
				if !ok {
					id = int32(len(ids))
					ids[key] = id
				}
				row[i] = id
			}
			v.groups[l-1] = row
			v.counts[l-1] = len(ids)
		}
	}
	return v
}

func (v *lsView) K() int                   { return v.ls.K }
func (v *lsView) Len() int                 { return v.ls.Len() }
func (v *lsView) Weight(i int) float64     { return v.ls.W[i] }
func (v *lsView) Path(i int) rank.Ordering { return v.ls.Paths[i] }

type groupedView struct{ *lsView }

func (v groupedView) PrefixGroup(level, i int) int32 { return v.groups[level-1][i] }
func (v groupedView) GroupCount(level int) int       { return v.counts[level-1] }

func randomLeafSet(rng *rand.Rand, k int) *tpo.LeafSet {
	n := 3 + rng.Intn(8)
	ls := &tpo.LeafSet{K: k}
	for i := 0; i < n; i++ {
		perm := rng.Perm(k + 2)
		ls.Paths = append(ls.Paths, rank.Ordering(perm[:k]))
		ls.W = append(ls.W, rng.Float64())
	}
	total := 0.0
	for _, w := range ls.W {
		total += w
	}
	for i := range ls.W {
		ls.W[i] /= total
	}
	return ls
}

// TestValueViewMatchesValue pins that every measure's in-place evaluation
// equals the materialized Value on the same (normalized) leaf set.
func TestValueViewMatchesValue(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	measures := []Measure{
		Entropy{},
		NewWeightedEntropy(0),
		ORA{Penalty: rank.DefaultPenalty},
		ORA{Penalty: rank.DefaultPenalty, Footrule: true},
		MPO{Penalty: rank.DefaultPenalty},
	}
	for trial := 0; trial < 20; trial++ {
		ls := randomLeafSet(rng, 3)
		for _, m := range measures {
			vm, ok := m.(ViewMeasure)
			if !ok {
				t.Fatalf("%s does not implement ViewMeasure", m.Name())
			}
			want := m.Value(ls)
			var s Scratch
			// Grouped, scratch-backed, and nil-scratch paths must all agree.
			gv := groupedView{newLSView(ls, true)}
			for name, got := range map[string]float64{
				"grouped+scratch": vm.ValueView(gv, &s),
				"flat+scratch":    vm.ValueView(newLSView(ls, false), &s),
				"flat+nil":        vm.ValueView(newLSView(ls, false), nil),
				"ValueOf":         ValueOf(m, gv, &s),
			} {
				if math.Abs(got-want) > 1e-12 {
					t.Fatalf("trial %d %s %s: ValueView %.17g, Value %.17g", trial, m.Name(), name, got, want)
				}
			}
		}
	}
}

// TestValueOfFallbackMaterializes pins the path for third-party measures
// that only implement Measure.
func TestValueOfFallbackMaterializes(t *testing.T) {
	ls := randomLeafSet(rand.New(rand.NewSource(7)), 3)
	m := countingMeasure{}
	got := ValueOf(m, newLSView(ls, false), nil)
	if got != float64(ls.Len()) {
		t.Fatalf("fallback ValueOf = %g, want %d", got, ls.Len())
	}
}

type countingMeasure struct{}

func (countingMeasure) Name() string                  { return "count" }
func (countingMeasure) Value(ls *tpo.LeafSet) float64 { return float64(ls.Len()) }
func (countingMeasure) MaxDropPerQuestion() float64   { return 0 }
